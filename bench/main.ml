(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (see DESIGN.md §3 for the experiment index and
   EXPERIMENTS.md for recorded paper-vs-measured results).

   Usage:  dune exec bench/main.exe [-- EXPERIMENT... [--budget S] [--sync-ms MS]]
   Experiments: table1 table2 table3 table4 table5 fig5 fig6 scalability
                ablation_reuse ablation_dirty ablation_boundary
                ablation_remirror bechamel parallel_smoke snapshot_matrix
                mutation_matrix hotpath peer_matrix faultcheck statecheck all
   Flags:
     --budget S      parallel_smoke virtual budget in seconds
                     (default NYX_BENCH_SMOKE_BUDGET_S, then 10)
     --sync-ms MS    parallel_smoke corpus-sync interval in virtual ms
                     (default NYX_BENCH_SMOKE_SYNC_MS, then 250)
   Environment:
     NYX_BENCH_BUDGET_S    virtual seconds per campaign (default 20)
     NYX_BENCH_REPS        repetitions per cell (default 1; paper used 10)
     NYX_BENCH_MAX_EXECS   execution cap per campaign (default 30000)
     NYX_BENCH_MARIO       comma-separated levels for table4
                           (default "1-1,1-2,1-3,1-4,2-1"; "all" = 32 levels)
     NYX_BENCH_OUT         CSV output directory (default "bench_out")
     NYX_DOMAINS           worker domains for matrix cells / fleets
                           (default: recommended count; 1 = sequential).
                           Tables and CSVs are byte-identical either way:
                           cells are deterministic functions of the seed
                           and results merge in submission order.
     NYX_BENCH_SMOKE_BUDGET_S  virtual budget for parallel_smoke (default 10)
     NYX_BENCH_SMOKE_SYNC_MS   corpus-sync interval for parallel_smoke (default 250)
     NYX_BENCH_SCALE_GATE  if set (e.g. "0.7"), parallel_smoke fails when any
                           fleet size N scores mean speedup < gate * N
     NYX_BENCH_SNAP_TARGETS    comma-separated snapshot_matrix target list
     NYX_BENCH_SNAP_BUDGET_S   virtual budget for snapshot_matrix (default 8)
     NYX_BENCH_SNAP_MAX_EXECS  execution cap for snapshot_matrix (default 25000)
     NYX_BENCH_SNAP_GATE   if set, snapshot_matrix fails unless the dynamic
                           policy beats the best static policy (virtual
                           time-to-frontier) on at least half the targets
     NYX_BENCH_MUT_TARGETS     comma-separated mutation_matrix target list
     NYX_BENCH_MUT_BUDGET_S    virtual budget for mutation_matrix (default 8)
     NYX_BENCH_MUT_MAX_EXECS   execution cap for mutation_matrix (default 25000)
     NYX_BENCH_MUT_GATE    if set, mutation_matrix fails unless the typed
                           engine reaches the per-target coverage frontier
                           in <= the havoc engine's executions on at least
                           half the targets
     NYX_BENCH_HOTPATH_EXECS   coverage-bound execs for hotpath (default 3000)
     NYX_BENCH_HOTPATH_PHASE_ITERS  per-phase iterations for hotpath (default 2000)
     NYX_BENCH_PEER_TARGETS    comma-separated peer_matrix target list
     NYX_BENCH_PEER_BUDGET_S   virtual budget for peer_matrix (default 6)
     NYX_BENCH_PEER_MAX_EXECS  execution cap for peer_matrix (default 20000)
     NYX_BENCH_PEER_GATE   if set, peer_matrix fails unless peer mode beats
                           bytecode (strictly more edges, or a peer-only
                           crash kind) on at least 2 of its 3 targets
     NYX_STATECHECK_MUTANTS    statecheck mutants per seed (default 3) *)

open Nyx_core

let env_int name default =
  match Sys.getenv_opt name with Some v -> int_of_string v | None -> default

(* Command-line flags. Domain-safety invariant (domain-safe): written
   once during argv parsing in [main], before any worker domain exists;
   read-only afterwards. *)
let flag_budget_s : int option ref = ref None

(* domain-safe: same write-once-before-domains invariant as above. *)
let flag_sync_ms : int option ref = ref None

let budget_ns = env_int "NYX_BENCH_BUDGET_S" 30 * 1_000_000_000
let reps = env_int "NYX_BENCH_REPS" 1
let max_execs = env_int "NYX_BENCH_MAX_EXECS" 30_000
let out_dir = Option.value ~default:"bench_out" (Sys.getenv_opt "NYX_BENCH_OUT")

let mario_levels () =
  match Sys.getenv_opt "NYX_BENCH_MARIO" with
  | Some "all" -> List.map (fun l -> l.Nyx_mario.Level.name) (Nyx_mario.Level.all ())
  | Some s -> String.split_on_char ',' s
  | None -> [ "1-1"; "1-2"; "1-3"; "1-4"; "2-1" ]

let ensure_out_dir () = if not (Sys.file_exists out_dir) then Sys.mkdir out_dir 0o755

let write_csv name lines =
  ensure_out_dir ();
  let path = Filename.concat out_dir name in
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      List.iter (fun l -> output_string oc (l ^ "\n")) lines);
  Printf.printf "  [csv] %s\n%!" path

(* ------------------------------------------------------------------ *)
(* The campaign matrix: fuzzer x target x repetition, computed lazily. *)

type fuzzer = Nyx of Policy.kind | Baseline of Nyx_baselines.Fuzzers.spec

let fuzzer_name = function
  | Nyx p -> Policy.name p
  | Baseline s -> s.Nyx_baselines.Fuzzers.name

let all_fuzzers =
  [
    Baseline Nyx_baselines.Fuzzers.aflnet;
    Baseline Nyx_baselines.Fuzzers.aflnet_no_state;
    Baseline Nyx_baselines.Fuzzers.aflnwe;
    Baseline Nyx_baselines.Fuzzers.aflpp_preeny;
    Nyx Policy.None_;
    Nyx Policy.Balanced;
    Nyx Policy.Aggressive;
  ]

let run_one ?(asan = false) ?(stop_on_solve = false) ?budget fuzzer entry seed =
  let budget_ns = Option.value ~default:budget_ns budget in
  match fuzzer with
  | Nyx policy ->
    Some
      (Campaign.run
         {
           Campaign.policy;
           budget_ns;
           max_execs;
           seed;
           asan;
           stop_on_solve;
           trim = false;
           sample_interval_ns = 250_000_000;
           engine = Engines.Havoc;
           mutator_weights = [];
         }
         entry)
  | Baseline spec -> Nyx_baselines.Fuzzers.run spec ~budget_ns ~max_execs ~seed entry

(* Domain-safety: the matrix cache is the only mutable state shared across
   bench tasks; every access holds [matrix_mutex] so prewarm workers and
   table code can never race on it. *)
let matrix : (string * string, Report.campaign_result list option) Hashtbl.t =
  Hashtbl.create 128

let matrix_mutex = Mutex.create ()

let matrix_find key =
  Mutex.lock matrix_mutex;
  let r = Hashtbl.find_opt matrix key in
  Mutex.unlock matrix_mutex;
  r

let matrix_store key results =
  Mutex.lock matrix_mutex;
  Hashtbl.replace matrix key results;
  Mutex.unlock matrix_mutex

(* Fold per-rep results exactly the way the original sequential cell did
   (any failing rep poisons the cell; list ends up in reverse rep order),
   so parallel and sequential runs agree byte-for-byte downstream. *)
let fold_reps rep_results =
  List.fold_left
    (fun acc r -> match (acc, r) with Some l, Some r -> Some (r :: l) | _ -> None)
    (Some []) rep_results

let cell fuzzer entry =
  let tname = entry.Nyx_targets.Registry.target.Nyx_targets.Target.info.Nyx_targets.Target.name in
  let key = (fuzzer_name fuzzer, tname) in
  match matrix_find key with
  | Some r -> r
  | None ->
    Printf.eprintf "  running %-18s on %-14s (%d rep%s)...\n%!" (fst key) tname reps
      (if reps = 1 then "" else "s");
    let results = fold_reps (List.init reps (fun i -> run_one fuzzer entry (1 + i))) in
    matrix_store key results;
    results

let targets = Nyx_targets.Registry.profuzzbench ()

let target_name e =
  e.Nyx_targets.Registry.target.Nyx_targets.Target.info.Nyx_targets.Target.name

(* Compute every (fuzzer, target, rep) campaign of the matrix concurrently,
   then assemble cells in submission order. Each campaign is a pure
   function of (fuzzer, target, seed), so the populated cache — and every
   table/CSV derived from it — is byte-identical to the lazy sequential
   path; only wall-clock changes. *)
let prewarm_matrix () =
  let domains = Nyx_parallel.Pool.default_domains () in
  if domains > 1 then begin
    let cells =
      List.concat_map (fun f -> List.map (fun e -> (f, e)) targets) all_fuzzers
      |> List.filter (fun (f, e) -> matrix_find (fuzzer_name f, target_name e) = None)
    in
    let tasks =
      List.concat_map (fun (f, e) -> List.init reps (fun i -> (f, e, 1 + i))) cells
    in
    Printf.eprintf "  [pool] prewarming %d matrix cells (%d campaigns) on %d domains\n%!"
      (List.length cells) (List.length tasks) domains;
    let results =
      Nyx_parallel.Pool.map_list ~domains (fun (f, e, seed) -> run_one f e seed) tasks
    in
    (* Regroup the flat rep stream cell by cell, in submission order. *)
    let rest = ref results in
    List.iter
      (fun (f, e) ->
        let rec take n acc l =
          if n = 0 then (List.rev acc, l)
          else match l with [] -> assert false | x :: tl -> take (n - 1) (x :: acc) tl
        in
        let rep_results, tl = take reps [] !rest in
        rest := tl;
        matrix_store (fuzzer_name f, target_name e) (fold_reps rep_results))
      cells
  end

(* ------------------------------------------------------------------ *)
(* Table 1: crashes found by each fuzzer.                              *)

let interesting_crash (c : Report.crash_report) = c.Report.kind <> "level-solved"

let table1 () =
  Printf.printf "\n== Table 1: crashes found in ProFuzzBench targets ==\n";
  Printf.printf "   (x = crash found; (x) = found only with ASan; - = none; n/a = cannot run)\n\n";
  Printf.printf "%-14s" "Target";
  List.iter (fun f -> Printf.printf " %-16s" (fuzzer_name f)) all_fuzzers;
  Printf.printf "\n";
  let rows = ref [] in
  List.iter
    (fun entry ->
      Printf.printf "%-14s" (target_name entry);
      let row =
        List.map
          (fun fuzzer ->
            let mark =
              match cell fuzzer entry with
              | None -> "n/a"
              | Some results ->
                if List.exists (fun r -> List.exists interesting_crash r.Report.crashes) results
                then "x"
                else begin
                  (* The dcmtk footnote: silent corruption is reliably
                     caught only under ASan for snapshot fuzzers. *)
                  match fuzzer with
                  | Nyx _ when target_name entry = "dcmtk" -> (
                    match run_one ~asan:true fuzzer entry 1 with
                    | Some r when List.exists interesting_crash r.Report.crashes -> "(x)"
                    | _ -> "-")
                  | _ -> "-"
                end
            in
            Printf.printf " %-16s" mark;
            mark)
          all_fuzzers
      in
      rows := (target_name entry, row) :: !rows;
      Printf.printf "\n")
    targets;
  write_csv "table1.csv"
    (("target," ^ String.concat "," (List.map fuzzer_name all_fuzzers))
    :: List.rev_map (fun (t, row) -> t ^ "," ^ String.concat "," row) !rows)

(* ------------------------------------------------------------------ *)
(* Table 2: median branch coverage vs AFLNet.                          *)

let median_edges results =
  Nyx_sim.Stats.median (List.map (fun r -> float_of_int r.Report.final_edges) results)

let table2 () =
  Printf.printf "\n== Table 2: median branch coverage (vs aflnet; * = p<0.05 Mann-Whitney U) ==\n\n";
  Printf.printf "%-14s %9s" "Target" "aflnet";
  List.iter
    (fun f -> if fuzzer_name f <> "aflnet" then Printf.printf " %15s" (fuzzer_name f))
    all_fuzzers;
  Printf.printf "\n";
  let csv = ref [] in
  List.iter
    (fun entry ->
      let base = cell (Baseline Nyx_baselines.Fuzzers.aflnet) entry in
      match base with
      | None -> ()
      | Some base_results ->
        let base_median = median_edges base_results in
        Printf.printf "%-14s %9.1f" (target_name entry) base_median;
        let row = ref [ Printf.sprintf "%.1f" base_median ] in
        List.iter
          (fun fuzzer ->
            if fuzzer_name fuzzer <> "aflnet" then begin
              match cell fuzzer entry with
              | None ->
                Printf.printf " %15s" "n/a";
                row := "n/a" :: !row
              | Some results ->
                let m = median_edges results in
                let delta = 100.0 *. (m -. base_median) /. Float.max 1.0 base_median in
                let signif =
                  List.length results >= 3
                  && Nyx_sim.Stats.mann_whitney_u
                       (List.map (fun r -> float_of_int r.Report.final_edges) results)
                       (List.map (fun r -> float_of_int r.Report.final_edges) base_results)
                     < 0.05
                in
                let s = Printf.sprintf "%+.1f%%%s" delta (if signif then "*" else "") in
                Printf.printf " %15s" s;
                row := s :: !row
            end)
          all_fuzzers;
        Printf.printf "\n";
        csv := (target_name entry ^ "," ^ String.concat "," (List.rev !row)) :: !csv)
    targets;
  write_csv "table2.csv" (List.rev !csv)

(* ------------------------------------------------------------------ *)
(* Table 3: throughput (executions per virtual second).                *)

let table3 () =
  Printf.printf "\n== Table 3: test throughput (execs per virtual second, mean +/- stddev) ==\n\n";
  Printf.printf "%-14s" "Target";
  List.iter (fun f -> Printf.printf " %18s" (fuzzer_name f)) all_fuzzers;
  Printf.printf "\n";
  let csv = ref [] in
  List.iter
    (fun entry ->
      Printf.printf "%-14s" (target_name entry);
      let row = ref [] in
      List.iter
        (fun fuzzer ->
          match cell fuzzer entry with
          | None ->
            Printf.printf " %18s" "-";
            row := "-" :: !row
          | Some results ->
            let rates = List.map (fun r -> r.Report.execs_per_sec) results in
            let s =
              Printf.sprintf "%.1f +/- %.1f" (Nyx_sim.Stats.mean rates)
                (Nyx_sim.Stats.stddev rates)
            in
            Printf.printf " %18s" s;
            row := s :: !row)
        all_fuzzers;
      Printf.printf "\n";
      csv := (target_name entry ^ "," ^ String.concat "," (List.rev !row)) :: !csv)
    targets;
  write_csv "table3.csv" (List.rev !csv)

(* ------------------------------------------------------------------ *)
(* Table 5: time to equal coverage.                                    *)

let table5 () =
  Printf.printf "\n== Table 5: how much faster Nyx-Net reaches AFLNet's final coverage ==\n\n";
  Printf.printf "%-14s %18s %12s %12s %12s\n" "Target" "aflnet final time" "nyx-none"
    "balanced" "aggressive";
  let csv = ref [] in
  List.iter
    (fun entry ->
      match cell (Baseline Nyx_baselines.Fuzzers.aflnet) entry with
      | None -> ()
      | Some base_results ->
        let base = Campaign.median_result base_results in
        let final_cov = float_of_int base.Report.final_edges in
        let final_time =
          Option.value ~default:base.Report.virtual_ns
            (Nyx_sim.Stats.Timeline.first_time_reaching base.Report.timeline final_cov)
        in
        let speedup policy =
          match cell (Nyx policy) entry with
          | None -> "-"
          | Some results -> (
            let r = Campaign.median_result results in
            match Nyx_sim.Stats.Timeline.first_time_reaching r.Report.timeline final_cov with
            | None -> "-"
            | Some t -> Printf.sprintf "%.0fx" (float_of_int final_time /. float_of_int (max 1 t)))
        in
        let n = speedup Policy.None_
        and b = speedup Policy.Balanced
        and a = speedup Policy.Aggressive in
        Printf.printf "%-14s %18s %12s %12s %12s\n" (target_name entry)
          (Format.asprintf "%a" Nyx_sim.Clock.pp_duration final_time)
          n b a;
        csv := Printf.sprintf "%s,%d,%s,%s,%s" (target_name entry) final_time n b a :: !csv)
    targets;
  write_csv "table5.csv" (List.rev !csv)

(* ------------------------------------------------------------------ *)
(* Figure 5: median coverage over time.                                *)

let fig5 () =
  Printf.printf "\n== Figure 5: coverage over time (CSV per target) ==\n";
  List.iter
    (fun entry ->
      let grid = List.init 60 (fun i -> (i + 1) * (budget_ns / 60)) in
      let series =
        List.filter_map
          (fun fuzzer ->
            match cell fuzzer entry with
            | None -> None
            | Some results ->
              let timelines = List.map (fun r -> r.Report.timeline) results in
              Some (fuzzer_name fuzzer, Nyx_sim.Stats.Timeline.median_across timelines grid))
          all_fuzzers
      in
      let header = "time_s," ^ String.concat "," (List.map fst series) in
      let lines =
        List.mapi
          (fun i t ->
            let vals =
              List.map
                (fun (_, pts) ->
                  let _, v = List.nth pts i in
                  Printf.sprintf "%.0f" v)
                series
            in
            Printf.sprintf "%.2f,%s" (float_of_int t /. 1e9) (String.concat "," vals))
          grid
      in
      write_csv (Printf.sprintf "fig5_%s.csv" (target_name entry)) (header :: lines))
    targets

(* ------------------------------------------------------------------ *)
(* Table 4: Super Mario time-to-solve.                                 *)

let mario_reps = env_int "NYX_BENCH_MARIO_REPS" 3
let mario_budget = 2 * 3_600_000_000_000 (* 2 virtual hours per attempt *)

let mario_cell level_name config_name runner =
  let level = Option.get (Nyx_mario.Level.find level_name) in
  let entry =
    {
      Nyx_targets.Registry.target = Nyx_mario.Mario_target.target level;
      seeds = Nyx_mario.Mario_target.seeds level;
    }
  in
  (* Repetitions fan out across domains; Pool.map_list keeps them in rep
     order, so the median and solve counts match the sequential run. *)
  let times =
    Nyx_parallel.Pool.map_list
      (fun i -> match runner entry (1 + i) with Some r -> r.Report.solved_ns | None -> None)
      (List.init mario_reps Fun.id)
  in
  let solved = List.filter_map Fun.id times in
  ignore config_name;
  (Nyx_sim.Stats.median (List.map float_of_int solved), List.length solved)

let table4 () =
  Printf.printf "\n== Table 4: Super Mario time to solve (median of %d; virtual time) ==\n\n"
    mario_reps;
  Printf.printf "%-6s %14s %14s %14s %14s %10s\n" "Level" "ijon" "nyx-none" "balanced"
    "aggressive" "speedup";
  let nyx policy entry seed =
    Some
      (Campaign.run
         {
           Campaign.policy;
           budget_ns = mario_budget;
           max_execs = 150_000;
           seed;
           asan = false;
           stop_on_solve = true;
           trim = false;
           sample_interval_ns = 10_000_000_000;
           engine = Engines.Havoc;
           mutator_weights = [];
         }
         entry)
  in
  let ijon entry seed =
    Nyx_baselines.Fuzzers.ijon ~budget_ns:mario_budget ~max_execs:150_000 ~seed entry
  in
  let csv = ref [] in
  List.iter
    (fun level ->
      let cells =
        [
          ("ijon", mario_cell level "ijon" ijon);
          ("none", mario_cell level "none" (nyx Policy.None_));
          ("balanced", mario_cell level "balanced" (nyx Policy.Balanced));
          ("aggressive", mario_cell level "aggressive" (nyx Policy.Aggressive));
        ]
      in
      let fmt (median, solved) =
        if solved = 0 then "-"
        else begin
          let s = Format.asprintf "%a" Nyx_sim.Clock.pp_duration (int_of_float median) in
          if solved < mario_reps then Printf.sprintf "%s %d/%d" s solved mario_reps else s
        end
      in
      let ijon_t, ijon_solved = List.assoc "ijon" cells in
      let best =
        List.fold_left
          (fun acc (name, (t, solved)) ->
            if name <> "ijon" && solved > 0 then
              match acc with Some (_, bt) when bt <= t -> acc | _ -> Some (name, t)
            else acc)
          None cells
      in
      let speedup =
        match best with
        | Some (_, t) when ijon_solved > 0 && t > 0.0 ->
          Printf.sprintf "(%.1fx)" (ijon_t /. t)
        | _ -> ""
      in
      Printf.printf "%-6s %14s %14s %14s %14s %10s\n%!" level
        (fmt (List.assoc "ijon" cells))
        (fmt (List.assoc "none" cells))
        (fmt (List.assoc "balanced" cells))
        (fmt (List.assoc "aggressive" cells))
        speedup;
      csv :=
        Printf.sprintf "%s,%s,%s,%s,%s,%s" level
          (fmt (List.assoc "ijon" cells))
          (fmt (List.assoc "none" cells))
          (fmt (List.assoc "balanced" cells))
          (fmt (List.assoc "aggressive" cells))
          speedup
        :: !csv)
    (mario_levels ());
  write_csv "table4.csv"
    ("level,ijon,nyx-none,nyx-balanced,nyx-aggressive,speedup" :: List.rev !csv)

(* ------------------------------------------------------------------ *)
(* Figure 6: incremental-snapshot create/restore vs dirty pages.       *)

let dirty_n_pages vm rng n =
  let pages = Nyx_vm.Memory.num_pages vm.Nyx_vm.Vm.mem in
  let seen = Hashtbl.create n in
  let rec pick () =
    let p = 1 + Nyx_sim.Rng.int rng (pages - 1) in
    if Hashtbl.mem seen p then pick () else (Hashtbl.replace seen p (); p)
  in
  for _ = 1 to n do
    Nyx_vm.Memory.write_u8 vm.Nyx_vm.Vm.mem (pick () * Nyx_vm.Page.size) 1
  done

let fig6_engine config n =
  (* Nyx-Net: dirty n pages, take an incremental snapshot, dirty n pages
     again, restore — the paper's measurement loop. *)
  let clock = Nyx_sim.Clock.create () in
  let vm = Nyx_vm.Vm.create ~config clock in
  let aux = Nyx_snapshot.Aux_state.create () in
  let eng = Nyx_snapshot.Engine.create vm aux in
  let rng = Nyx_sim.Rng.create 42 in
  dirty_n_pages vm rng n;
  let t0 = Nyx_sim.Clock.now_ns clock in
  Nyx_snapshot.Engine.take_incremental eng;
  let create_ns = Nyx_sim.Clock.now_ns clock - t0 in
  dirty_n_pages vm rng n;
  let t1 = Nyx_sim.Clock.now_ns clock in
  Nyx_snapshot.Engine.restore eng;
  let restore_ns = Nyx_sim.Clock.now_ns clock - t1 in
  (create_ns, restore_ns)

let fig6_agamotto config n =
  let clock = Nyx_sim.Clock.create () in
  let vm = Nyx_vm.Vm.create ~config clock in
  let aux = Nyx_snapshot.Aux_state.create () in
  let ag = Nyx_snapshot.Agamotto.create vm aux in
  let rng = Nyx_sim.Rng.create 42 in
  dirty_n_pages vm rng n;
  let t0 = Nyx_sim.Clock.now_ns clock in
  let cp = Nyx_snapshot.Agamotto.checkpoint ag in
  let create_ns = Nyx_sim.Clock.now_ns clock - t0 in
  dirty_n_pages vm rng n;
  let t1 = Nyx_sim.Clock.now_ns clock in
  Nyx_snapshot.Agamotto.restore ag cp;
  let restore_ns = Nyx_sim.Clock.now_ns clock - t1 in
  (create_ns, restore_ns)

let fig6 () =
  Printf.printf
    "\n== Figure 6: incremental snapshot create/restore cost vs dirty pages ==\n";
  Printf.printf "   (virtual microseconds; VM sizes match the paper's page counts)\n\n";
  Printf.printf "%-10s %-8s %15s %15s %15s %15s\n" "vm" "pages" "nyx create" "nyx restore"
    "agamotto create" "agamotto restore";
  let csv = ref [ "vm,n,nyx_create_us,nyx_restore_us,aga_create_us,aga_restore_us" ] in
  List.iter
    (fun (vm_name, config) ->
      List.iter
        (fun n ->
          let mem_pages = config.Nyx_vm.Vm.mem_pages in
          if n * 4 > mem_pages * 3 then
            (* The paper's 512MB VM could not allocate 10^5 pages. *)
            Printf.printf "%-10s %-8d %15s %15s %15s %15s\n" vm_name n "-" "-" "-" "-"
          else begin
            let nc, nr = fig6_engine config n in
            let ac, ar = fig6_agamotto config n in
            Printf.printf "%-10s %-8d %15.1f %15.1f %15.1f %15.1f\n%!" vm_name n
              (float_of_int nc /. 1e3) (float_of_int nr /. 1e3) (float_of_int ac /. 1e3)
              (float_of_int ar /. 1e3);
            csv :=
              Printf.sprintf "%s,%d,%.1f,%.1f,%.1f,%.1f" vm_name n (float_of_int nc /. 1e3)
                (float_of_int nr /. 1e3) (float_of_int ac /. 1e3) (float_of_int ar /. 1e3)
              :: !csv
          end)
        [ 10; 100; 1_000; 10_000; 100_000; 500_000 ])
    [ ("512MB", Nyx_vm.Vm.small_config); ("4GB", Nyx_vm.Vm.large_config) ];
  write_csv "fig6.csv" (List.rev !csv)

(* ------------------------------------------------------------------ *)
(* Scalability: shared root snapshots across instances (§5.3).         *)

let scalability () =
  Printf.printf "\n== Scalability: memory for N instances with a shared root snapshot ==\n\n";
  let entry = Option.get (Nyx_targets.Registry.find "lightftp") in
  let spec = Campaign.net_spec () in
  let exec = Executor.create ~net_spec:spec entry.Nyx_targets.Registry.target in
  (* Warm one instance (snapshot sessions included) so the mirror carries
     a typical working set. *)
  let seed = List.hd (Campaign.make_seeds entry spec) in
  ignore (Executor.run_full exec seed);
  let with_snap =
    Nyx_spec.Program.with_snapshot_at seed (Nyx_spec.Program.packet_count seed - 1)
  in
  (match Executor.start_session exec with_snap with
  | Ok session ->
    for _ = 1 to 50 do
      ignore (Executor.run_suffix exec session with_snap)
    done;
    Executor.end_session exec session
  | Error _ -> ());
  (* A real root snapshot owns the guest's whole physical image (the
     paper's VMs are 512MB-4GB); our sparse memory only materializes
     touched pages, so account for the logical image size, which is what
     sharing avoids copying. *)
  let root_logical = Nyx_vm.Vm.fuzz_config.Nyx_vm.Vm.mem_pages * Nyx_vm.Page.size in
  let root_materialized = Executor.root_stored_bytes exec in
  let per_instance = max Nyx_vm.Page.size (Executor.mirror_bytes exec) in
  Printf.printf
    "  logical root image: %d KiB (%d KiB materialized); per-instance private state: %d B\n\n"
    (root_logical / 1024) (root_materialized / 1024) per_instance;
  Printf.printf "%-12s %18s %18s %8s\n" "instances" "shared root (KiB)" "naive copies (KiB)"
    "saving";
  List.iter
    (fun n ->
      let shared = root_logical + (n * per_instance) in
      let naive = n * (root_logical + per_instance) in
      Printf.printf "%-12d %18d %18d %7.1fx\n" n (shared / 1024) (naive / 1024)
        (float_of_int naive /. float_of_int shared))
    [ 1; 8; 80 ];
  let eighty =
    float_of_int (root_logical + (80 * per_instance))
    /. float_of_int (root_logical + per_instance)
  in
  Printf.printf
    "\n  80 instances need %.2fx the memory of one instance (the paper reports ~2x).\n"
    eighty

(* ------------------------------------------------------------------ *)
(* Ablations.                                                          *)

let ablation_reuse () =
  Printf.printf
    "\n== Ablation: incremental-snapshot reuse count (exim; 50 = paper's choice) ==\n\n";
  let entry = Option.get (Nyx_targets.Registry.find "exim") in
  let spec = Campaign.net_spec () in
  let exec = Executor.create ~net_spec:spec entry.Nyx_targets.Registry.target in
  let seed = List.hd (Campaign.make_seeds entry spec) in
  ignore (Executor.run_full exec seed);
  let full = Executor.run_full exec seed in
  let with_snap =
    Nyx_spec.Program.with_snapshot_at seed (Nyx_spec.Program.packet_count seed - 1)
  in
  Printf.printf "%-8s %18s %14s\n" "reuses" "ns/exec (amortized)" "vs full exec";
  List.iter
    (fun reuses ->
      match Executor.start_session exec with_snap with
      | Error _ -> ()
      | Ok session ->
        let clock = Executor.clock exec in
        let t0 = Nyx_sim.Clock.now_ns clock in
        for _ = 1 to reuses do
          ignore (Executor.run_suffix exec session with_snap)
        done;
        Executor.end_session exec session;
        (* Amortize the prefix execution over the reuses. *)
        let total = Nyx_sim.Clock.now_ns clock - t0 in
        let per_exec = (total / reuses) + (full.Report.exec_ns / reuses) in
        Printf.printf "%-8d %18d %13.1fx\n%!" reuses per_exec
          (float_of_int full.Report.exec_ns /. float_of_int per_exec))
    [ 1; 5; 10; 25; 50; 100; 250 ]

let ablation_dirty () =
  Printf.printf
    "\n== Ablation: dirty-stack vs full-bitmap-scan enumeration (restore path) ==\n\n";
  Printf.printf "%-10s %15s %18s\n" "dirty" "stack walk (us)" "bitmap scan (us)";
  let config = Nyx_vm.Vm.large_config in
  List.iter
    (fun n ->
      let clock = Nyx_sim.Clock.create () in
      let vm = Nyx_vm.Vm.create ~config clock in
      let rng = Nyx_sim.Rng.create 1 in
      dirty_n_pages vm rng n;
      let dirty = Nyx_vm.Memory.dirty vm.Nyx_vm.Vm.mem in
      let t0 = Nyx_sim.Clock.now_ns clock in
      Nyx_vm.Dirty_log.iter_stack dirty clock ignore;
      let stack_ns = Nyx_sim.Clock.now_ns clock - t0 in
      let t1 = Nyx_sim.Clock.now_ns clock in
      Nyx_vm.Dirty_log.iter_bitmap dirty clock ignore;
      let bitmap_ns = Nyx_sim.Clock.now_ns clock - t1 in
      Printf.printf "%-10d %15.1f %18.1f\n" n (float_of_int stack_ns /. 1e3)
        (float_of_int bitmap_ns /. 1e3))
    [ 10; 100; 1_000; 10_000; 100_000; 1_000_000 ]

let ablation_boundary () =
  Printf.printf
    "\n== Ablation: packet-boundary emulation on/off (seed replay as one burst) ==\n";
  Printf.printf "   (\"a frightening amount of servers assume one recv = one packet\" - section 3.3)\n\n";
  Printf.printf "%-14s %12s %12s\n" "target" "boundaries" "coalesced";
  List.iter
    (fun name ->
      let entry = Option.get (Nyx_targets.Registry.find name) in
      (* Deliver a whole seed session in one burst: with boundary emulation
         each send is one recv; without it, queued packets coalesce into a
         single read, as a real TCP stack is allowed to do. *)
      let run boundaries =
        let clock = Nyx_sim.Clock.create () in
        let vm = Nyx_vm.Vm.create clock in
        let net = Nyx_netemu.Net.create ~boundaries clock in
        let ctx = Nyx_targets.Ctx.of_vm ~net vm in
        let rt = Nyx_targets.Target.boot entry.Nyx_targets.Registry.target ctx in
        Nyx_targets.Target.pump rt;
        (match Nyx_netemu.Net.connect_peer net
                 ~port:entry.Nyx_targets.Registry.target.Nyx_targets.Target.info
                        .Nyx_targets.Target.port
         with
        | Some flow ->
          Nyx_targets.Target.pump rt;
          List.iter
            (fun packets ->
              List.iter (fun p -> Nyx_netemu.Net.send_peer net flow p) packets)
            entry.Nyx_targets.Registry.seeds;
          (try Nyx_targets.Target.pump rt with Nyx_targets.Ctx.Crash _ -> ())
        | None -> ());
        Nyx_targets.Coverage.edge_count ctx.Nyx_targets.Ctx.cov
      in
      Printf.printf "%-14s %12d %12d\n%!" name (run true) (run false))
    [ "lightftp"; "exim"; "bftpd"; "proftpd" ]

let ablation_remirror () =
  Printf.printf "\n== Ablation: re-mirror interval vs mirror accumulation ==\n\n";
  Printf.printf "%-10s %16s %12s\n" "interval" "mirror pages" "remirrors";
  List.iter
    (fun interval ->
      let clock = Nyx_sim.Clock.create () in
      let vm = Nyx_vm.Vm.create clock in
      let aux = Nyx_snapshot.Aux_state.create () in
      let eng = Nyx_snapshot.Engine.create ~remirror_interval:interval vm aux in
      let rng = Nyx_sim.Rng.create 7 in
      for _ = 1 to 500 do
        (* Each round dirties a random small working set. *)
        dirty_n_pages vm rng (1 + Nyx_sim.Rng.int rng 8);
        Nyx_snapshot.Engine.take_incremental eng;
        Nyx_snapshot.Engine.restore eng;
        Nyx_snapshot.Engine.restore_root eng
      done;
      let stats = Nyx_snapshot.Engine.stats eng in
      Printf.printf "%-10d %16d %12d\n" interval
        (Nyx_snapshot.Engine.mirror_pages eng)
        stats.Nyx_snapshot.Engine.remirrors)
    [ 10; 50; 200; 2000 ]



let ablation_typed_spec () =
  Printf.printf
    "\n== Ablation: raw-packet spec vs typed spec (time to the IPC use-after-free) ==\n\n";
  let entry = Option.get (Nyx_targets.Registry.find "firefox-ipc") in
  let cfg seed =
    {
      Campaign.policy = Policy.Aggressive;
      budget_ns = 120_000_000_000;
      max_execs = 40_000;
      seed;
      asan = false;
      stop_on_solve = false;
      trim = false;
      sample_interval_ns = 1_000_000_000;
      engine = Engines.Havoc;
      mutator_weights = [];
    }
  in
  let time_to_uaf r =
    List.find_map
      (fun c ->
        if c.Report.kind = "use-after-free" then Some c.Report.found_ns else None)
      r.Report.crashes
  in
  Printf.printf "%-6s %16s %8s %16s %8s\n" "seed" "raw UAF" "edges" "typed UAF" "edges";
  List.iter
    (fun seed ->
      let raw = Campaign.run (cfg seed) entry in
      let ts = Nyx_targets.Ipc_spec.create () in
      let typed =
        Campaign.run
          ~seeds:[ Nyx_targets.Ipc_spec.seed ts ]
          ~custom:(Nyx_targets.Ipc_spec.handler ts) (cfg seed) entry
      in
      let fmt = function
        | Some t -> Format.asprintf "%a" Nyx_sim.Clock.pp_duration t
        | None -> "-"
      in
      Printf.printf "%-6d %16s %8d %16s %8d\n%!" seed (fmt (time_to_uaf raw))
        raw.Report.final_edges
        (fmt (time_to_uaf typed))
        typed.Report.final_edges)
    [ 1; 2; 3 ]


(* ------------------------------------------------------------------ *)
(* Case studies (§5.4 MySQL client, §5.5 Lighttpd, §5.6 Firefox IPC).  *)

let case_studies () =
  Printf.printf "\n== Case studies: the bugs of sections 5.4-5.6 ==\n\n";
  Printf.printf "%-14s %-6s %-18s %14s %10s\n" "target" "asan" "bug" "found at" "execs";
  List.iter
    (fun (name, asan, expected_kind) ->
      let entry = Option.get (Nyx_targets.Registry.find name) in
      let cfg =
        {
          Campaign.policy = Policy.Aggressive;
          budget_ns = 120_000_000_000;
          max_execs = 60_000;
          seed = 1;
          asan;
          stop_on_solve = false;
          trim = false;
          sample_interval_ns = 1_000_000_000;
          engine = Engines.Havoc;
          mutator_weights = [];
        }
      in
      let r = Campaign.run cfg entry in
      match
        List.find_opt (fun c -> c.Report.kind = expected_kind) r.Report.crashes
      with
      | Some c ->
        Printf.printf "%-14s %-6b %-18s %14s %10d\n%!" name asan expected_kind
          (Format.asprintf "%a" Nyx_sim.Clock.pp_duration c.Report.found_ns)
          c.Report.found_exec
      | None ->
        Printf.printf "%-14s %-6b %-18s %14s %10d\n%!" name asan expected_kind "-"
          r.Report.execs)
    [
      ("mysql-client", true, "asan-heap-oob");
      ("mysql-client", false, "oob-read");
      ("lighttpd", false, "alloc-underflow");
      ("firefox-ipc", true, "use-after-free");
    ]

(* ------------------------------------------------------------------ *)
(* "Faster than light": 52 parallel instances vs a flawless speedrun.  *)

let faster_than_light () =
  Printf.printf
    "\n== Faster than light: 52-instance fleet vs a 60-FPS speedrun (level 1-1) ==\n\n";
  let level = Option.get (Nyx_mario.Level.find "1-1") in
  let entry =
    {
      Nyx_targets.Registry.target = Nyx_mario.Mario_target.target level;
      seeds = Nyx_mario.Mario_target.seeds level;
    }
  in
  let speedrun_s = float_of_int (Nyx_mario.Level.speedrun_frames level) /. 60.0 in
  let config =
    {
      Campaign.policy = Policy.Aggressive;
      budget_ns = 600_000_000_000;
      max_execs = 100_000;
      seed = 1;
      asan = false;
      stop_on_solve = true;
      trim = false;
      sample_interval_ns = 10_000_000_000;
      engine = Engines.Havoc;
      mutator_weights = [];
    }
  in
  let fleet = Fleet.run ~instances:52 ~config entry in
  Printf.printf "  flawless speedrun at 60 FPS:    %.2f s (%d frames)\n" speedrun_s
    (Nyx_mario.Level.speedrun_frames level);
  (match fleet.Fleet.first_solve_ns with
  | Some t ->
    let solve_s = float_of_int t /. 1e9 in
    Printf.printf "  first fleet solve (52 cores):   %.2f s  (%d/%d instances solved)\n"
      solve_s fleet.Fleet.solves fleet.Fleet.instances;
    Printf.printf "  => %s: the fuzzer finds a solution %s the level can be played once.\n"
      (if solve_s < speedrun_s then "FASTER THAN LIGHT" else "slower than light")
      (if solve_s < speedrun_s then "before" else "after")
  | None -> Printf.printf "  fleet did not solve within the budget\n")

(* ------------------------------------------------------------------ *)
(* Parallel smoke: NYX_DOMAINS scaling gate for the shared-corpus fleet.

   For each fleet size N in {2, 4} the synced fleet runs twice — once on
   1 domain, once on N — and must produce bit-identical deterministic
   results. Speedup is the fleet's deterministic scaling model,
   work_ns / makespan_ns (per-epoch instance segments list-scheduled
   onto N workers; see Fleet's mli): reproducible on any host, honest
   about stragglers and sync charges. Real wall execs/s for both runs
   ride along as informational columns. A dedup experiment then compares
   the synced fleet against an observer fleet (same epoch stepping, no
   imports): execs needed to reach a full-budget sequential campaign's
   coverage frontier. *)

let fleet_core (o : Fleet.outcome) =
  ( o.Fleet.instances,
    o.Fleet.first_solve_ns,
    o.Fleet.solves,
    o.Fleet.total_execs,
    o.Fleet.restarts,
    o.Fleet.quarantined,
    o.Fleet.union_edges,
    o.Fleet.sync_epochs,
    o.Fleet.work_ns )

let same_fleet a b =
  fleet_core a = fleet_core b
  && List.length a.Fleet.results = List.length b.Fleet.results
  && List.for_all2 Report.same_deterministic a.Fleet.results b.Fleet.results

(* Fraction of fleet virtual time spent in the corpus-sync phase,
   summed over the per-instance profiles. *)
let sync_share (o : Fleet.outcome) =
  let total = ref 0 and sync = ref 0 in
  List.iter
    (fun r ->
      match r.Report.phase_profile with
      | None -> ()
      | Some s ->
        total := !total + s.Nyx_obs.Profile.total_virtual_ns;
        List.iter
          (fun e ->
            if e.Nyx_obs.Profile.phase = Nyx_obs.Profile.Corpus_sync then
              sync := !sync + e.Nyx_obs.Profile.virtual_ns)
          s.Nyx_obs.Profile.entries)
    o.Fleet.results;
  if !total = 0 then 0.0 else float_of_int !sync /. float_of_int !total

(* First sync epoch whose union map reaches [frontier] edges, as
   (epoch ordinal, fleet execs spent by then). *)
let execs_to_frontier (o : Fleet.outcome) frontier =
  List.find_map
    (fun (e : Fleet.sync_epoch) ->
      if e.Fleet.se_union_edges >= frontier then
        Some (e.Fleet.se_epoch, e.Fleet.se_total_execs)
      else None)
    o.Fleet.sync_epochs

let parallel_smoke () =
  Printf.printf "\n== Parallel smoke: shared-corpus fleet scaling (NYX_DOMAINS gate) ==\n\n";
  let budget_s =
    match !flag_budget_s with
    | Some s -> s
    | None -> env_int "NYX_BENCH_SMOKE_BUDGET_S" 10
  in
  let sync_ms =
    match !flag_sync_ms with
    | Some m -> m
    | None -> env_int "NYX_BENCH_SMOKE_SYNC_MS" 250
  in
  let budget_ns = budget_s * 1_000_000_000 in
  let sync_ns = sync_ms * 1_000_000 in
  let config =
    {
      Campaign.default_config with
      Campaign.budget_ns;
      max_execs = 200_000;
      policy = Policy.Balanced;
      seed = 1;
    }
  in
  let targets = [ "echo"; "lightftp" ] in
  Printf.printf "  %ds virtual budget, sync every %dms, targets: %s\n\n" budget_s
    sync_ms (String.concat " " targets);
  let scaling =
    List.map
      (fun n ->
        Printf.printf "  -- fleet size N=%d: 1 domain vs %d domains --\n" n n;
        Printf.printf "%-12s %8s %12s %12s %12s %12s %8s %10s\n" "target" "speedup"
          "seq wall (s)" "par wall (s)" "seq execs/s" "par execs/s" "sync" "identical";
        let rows =
          List.map
            (fun name ->
              let entry = Option.get (Nyx_targets.Registry.find name) in
              let seq =
                Fleet.run ~instances:n ~domains:1 ~sync_ns ~profile:true ~config entry
              in
              let par =
                Fleet.run ~instances:n ~domains:n ~sync_ns ~profile:true ~config entry
              in
              let identical = same_fleet seq par in
              let speedup =
                float_of_int par.Fleet.work_ns
                /. float_of_int (max 1 par.Fleet.makespan_ns)
              in
              let eps (o : Fleet.outcome) =
                float_of_int o.Fleet.total_execs /. Float.max 1e-9 o.Fleet.wall_s
              in
              let share = sync_share par in
              Printf.printf "%-12s %7.2fx %12.3f %12.3f %12.0f %12.0f %7.2f%% %10b\n%!"
                name speedup seq.Fleet.wall_s par.Fleet.wall_s (eps seq) (eps par)
                (100.0 *. share) identical;
              (name, seq, par, speedup, share, identical))
            targets
        in
        let mean =
          List.fold_left (fun acc (_, _, _, s, _, _) -> acc +. s) 0.0 rows
          /. float_of_int (List.length rows)
        in
        Printf.printf "  N=%d mean speedup: %.2fx (ideal %d.00x)\n\n" n mean n;
        (n, rows, mean))
      [ 2; 4 ]
  in
  let all_identical =
    List.for_all
      (fun (_, rows, _) -> List.for_all (fun (_, _, _, _, _, i) -> i) rows)
      scaling
  in
  (* Corpus dedup: on lightftp, how many fleet execs until the union map
     reaches the coverage a single full-budget sequential campaign ends
     at? The observer fleet (sync_import:false) is the controlled
     baseline: identical epoch stepping, no sharing. *)
  let dedup_n = 4 in
  let dedup_target = "lightftp" in
  let entry = Option.get (Nyx_targets.Registry.find dedup_target) in
  let frontier = (Campaign.run config entry).Report.final_edges in
  let synced =
    match List.assoc_opt dedup_n (List.map (fun (n, r, m) -> (n, (r, m))) scaling) with
    | Some (rows, _) ->
      let _, _, par, _, _, _ =
        List.find (fun (name, _, _, _, _, _) -> name = dedup_target) rows
      in
      par
    | None -> Fleet.run ~instances:dedup_n ~domains:1 ~sync_ns ~config entry
  in
  let observer =
    Fleet.run ~instances:dedup_n ~domains:1 ~sync_ns ~sync_import:false ~config entry
  in
  let synced_hit = execs_to_frontier synced frontier in
  let observer_hit = execs_to_frontier observer frontier in
  let pp_hit = function
    | Some (epoch, execs) -> Printf.sprintf "%d execs (epoch %d)" execs epoch
    | None -> "not reached"
  in
  Printf.printf
    "  dedup (%s, N=%d): sequential frontier %d edges\n\
    \    synced fleet:   %s\n\
    \    observer fleet: %s\n\n"
    dedup_target dedup_n frontier (pp_hit synced_hit) (pp_hit observer_hit);
  let mean_speedup =
    match List.rev scaling with (_, _, m) :: _ -> m | [] -> 0.0
  in
  Printf.printf "  mean speedup %.2fx at N=4; parallel==sequential: %b\n" mean_speedup
    all_identical;
  let hit_json = function
    | Some (epoch, execs) ->
      Printf.sprintf "{\"reached\": true, \"execs\": %d, \"epoch\": %d}" execs epoch
    | None -> "{\"reached\": false}"
  in
  let json =
    Printf.sprintf
      "{\n\
      \  \"virtual_budget_s\": %d,\n\
      \  \"sync_interval_ms\": %d,\n\
      \  \"scaling\": [\n%s\n\
      \  ],\n\
      \  \"dedup\": {\n\
      \    \"target\": %S,\n\
      \    \"instances\": %d,\n\
      \    \"sequential_frontier_edges\": %d,\n\
      \    \"synced\": %s,\n\
      \    \"observer\": %s\n\
      \  },\n\
      \  \"mean_speedup\": %.3f,\n\
      \  \"parallel_identical_to_sequential\": %b\n\
       }"
      budget_s sync_ms
      (String.concat ",\n"
         (List.map
            (fun (n, rows, mean) ->
              Printf.sprintf
                "    {\"n\": %d, \"mean_speedup\": %.3f, \"targets\": [\n%s\n    ]}"
                n mean
                (String.concat ",\n"
                   (List.map
                      (fun (name, seq, par, speedup, share, identical) ->
                        let eps (o : Fleet.outcome) =
                          float_of_int o.Fleet.total_execs
                          /. Float.max 1e-9 o.Fleet.wall_s
                        in
                        Printf.sprintf
                          "      {\"target\": %S, \"speedup\": %.3f, \
                           \"work_ns\": %d, \"makespan_ns\": %d, \
                           \"seq_wall_s\": %.4f, \"par_wall_s\": %.4f, \
                           \"seq_execs_per_wall_s\": %.0f, \
                           \"par_execs_per_wall_s\": %.0f, \
                           \"sync_share\": %.4f, \"identical\": %b}"
                          name speedup par.Fleet.work_ns par.Fleet.makespan_ns
                          seq.Fleet.wall_s par.Fleet.wall_s (eps seq) (eps par)
                          share identical)
                      rows)))
            scaling))
      dedup_target dedup_n frontier (hit_json synced_hit) (hit_json observer_hit)
      mean_speedup all_identical
  in
  let path = "BENCH_parallel.json" in
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_string oc (json ^ "\n"));
  Printf.printf "  [json] %s\n" path;
  if not all_identical then
    failwith "parallel_smoke: fleet results differ across domain counts";
  match Sys.getenv_opt "NYX_BENCH_SCALE_GATE" with
  | None -> ()
  | Some g -> (
    match float_of_string_opt g with
    | None -> failwith ("parallel_smoke: bad NYX_BENCH_SCALE_GATE " ^ g)
    | Some gate ->
      List.iter
        (fun (n, _, mean) ->
          if mean < gate *. float_of_int n then
            failwith
              (Printf.sprintf
                 "parallel_smoke: N=%d mean speedup %.2fx below gate %.2f*N=%.2fx" n
                 mean gate (gate *. float_of_int n)))
        scaling)

(* ------------------------------------------------------------------ *)
(* Hotpath: O(touched) journaled coverage + O(1) corpus scheduling vs
   the before-style O(map)/O(corpus) paths, on a coverage-bound
   fixed-seed smoke campaign. Emits BENCH_hotpath.json.                *)

(* The pre-change corpus, reproduced for the before gear: reversed list,
   List.nth indexing, per-call frequency-table rebuild, per-round
   programs-array reallocation. *)
module Before_corpus = struct
  type entry = { id : int; program : Nyx_spec.Program.t; state_code : int }
  type t = { mutable rev_entries : entry list; mutable count : int }

  let create () = { rev_entries = []; count = 0 }

  let add t ~program ~state_code =
    let entry = { id = t.count; program; state_code } in
    t.rev_entries <- entry :: t.rev_entries;
    t.count <- t.count + 1;
    entry

  let nth_newest t i = List.nth t.rev_entries i

  let schedule t rng =
    if Nyx_sim.Rng.bool rng then nth_newest t (Nyx_sim.Rng.int rng t.count)
    else nth_newest t (Nyx_sim.Rng.int rng (max 1 (t.count / 4)))

  let programs t =
    Array.of_list (List.map (fun e -> e.program) t.rev_entries)
end

let hotpath () =
  Printf.printf
    "\n== Hotpath: journaled coverage + O(1) scheduling vs full-scan paths ==\n\n";
  let execs = env_int "NYX_BENCH_HOTPATH_EXECS" 3_000 in
  let module Cov = Nyx_targets.Coverage in
  let spec = Campaign.net_spec () in
  let program = Nyx_spec.Net_spec.seed_of_packets spec [ Bytes.of_string "x" ] in
  (* One coverage-bound exec: the coverage/corpus bookkeeping of the
     fuzzing hot loop with the target execution itself stripped out, so
     wall-clock measures exactly the mechanical cost this PR attacks.
     Both gears replay identical RNG-driven hit sequences. *)
  let run_campaign ~slow =
    let rng = Nyx_sim.Rng.create 42 in
    let sched_rng = Nyx_sim.Rng.create 43 in
    let cov = Cov.create () in
    let cumulative = Cov.Cumulative.create () in
    let corpus = Corpus.create () in
    let before_corpus = Before_corpus.create () in
    let add prog state_code =
      if slow then ignore (Before_corpus.add before_corpus ~program:prog ~state_code)
      else ignore (Corpus.add corpus ~program:prog ~exec_ns:0 ~discovered_ns:0 ~state_code)
    in
    add program 0;
    let edges = ref 0 and corpus_size = ref 1 and splice_picks = ref 0 in
    let t0 = Nyx_parallel.Wall.now_s () in
    for _ = 1 to execs do
      (* Scheduling round: pick an entry, snapshot the splice pool. *)
      let progs =
        if slow then begin
          ignore (Before_corpus.schedule before_corpus sched_rng);
          Before_corpus.programs before_corpus
        end
        else begin
          ignore (Corpus.schedule corpus sched_rng);
          Corpus.programs corpus
        end
      in
      splice_picks := !splice_picks + Array.length progs;
      (* Execution: reset, replay a touched-set of edges. *)
      if slow then Cov.reset_slow cov else Cov.reset cov;
      let touched = 32 + Nyx_sim.Rng.int rng 96 in
      for _ = 1 to touched do
        Cov.hit cov (Nyx_sim.Rng.int rng 4096)
      done;
      (* Triage: merge, count, grow the corpus on novelty. *)
      let novel =
        if slow then Cov.Cumulative.merge_slow cumulative cov
        else Cov.Cumulative.merge cumulative cov
      in
      edges :=
        (if slow then Cov.Cumulative.edge_count_slow cumulative
         else Cov.Cumulative.edge_count cumulative);
      if novel then begin
        add program (Nyx_sim.Rng.int rng 8);
        incr corpus_size
      end
    done;
    let wall = Nyx_parallel.Wall.now_s () -. t0 in
    (wall, !edges, !corpus_size, !splice_picks)
  in
  let before_wall, before_edges, before_corpus_n, before_picks =
    run_campaign ~slow:true
  in
  let after_wall, after_edges, after_corpus_n, after_picks =
    run_campaign ~slow:false
  in
  if
    before_edges <> after_edges
    || before_corpus_n <> after_corpus_n
    || before_picks <> after_picks
  then failwith "hotpath: before/after gears diverged — semantics changed";
  let eps w = float_of_int execs /. Float.max 1e-9 w in
  let npe w = w *. 1e9 /. float_of_int execs in
  let speedup = eps after_wall /. eps before_wall in
  Printf.printf "  %d coverage-bound execs, identical results both gears\n" execs;
  Printf.printf "  (final edges %d, corpus %d)\n\n" after_edges after_corpus_n;
  Printf.printf "%-10s %14s %14s\n" "gear" "execs/sec" "ns/exec";
  Printf.printf "%-10s %14.0f %14.0f\n" "before" (eps before_wall) (npe before_wall);
  Printf.printf "%-10s %14.0f %14.0f\n" "after" (eps after_wall) (npe after_wall);
  Printf.printf "  speedup: %.1fx\n\n" speedup;
  (* Per-phase split: time each hot-loop primitive in isolation. *)
  let phase_iters = env_int "NYX_BENCH_HOTPATH_PHASE_ITERS" 2_000 in
  let time f =
    let t0 = Nyx_parallel.Wall.now_s () in
    for _ = 1 to phase_iters do
      f ()
    done;
    (Nyx_parallel.Wall.now_s () -. t0) *. 1e9 /. float_of_int phase_iters
  in
  let touch cov rng =
    for _ = 1 to 80 do
      Cov.hit cov (Nyx_sim.Rng.int rng 4096)
    done
  in
  let reset_phase slow =
    let cov = Cov.create () in
    let rng = Nyx_sim.Rng.create 5 in
    time (fun () ->
        touch cov rng;
        if slow then Cov.reset_slow cov else Cov.reset cov)
  in
  let merge_phase slow =
    let cov = Cov.create () in
    let rng = Nyx_sim.Rng.create 5 in
    touch cov rng;
    let cumulative = Cov.Cumulative.create () in
    time (fun () ->
        ignore
          (if slow then Cov.Cumulative.merge_slow cumulative cov
           else Cov.Cumulative.merge cumulative cov);
        ignore
          (if slow then Cov.Cumulative.edge_count_slow cumulative
           else Cov.Cumulative.edge_count cumulative))
  in
  let schedule_phase slow =
    let rng = Nyx_sim.Rng.create 5 in
    let corpus = Corpus.create () in
    let before_corpus = Before_corpus.create () in
    for i = 0 to 511 do
      ignore (Corpus.add corpus ~program ~exec_ns:0 ~discovered_ns:0 ~state_code:(i mod 8));
      ignore (Before_corpus.add before_corpus ~program ~state_code:(i mod 8))
    done;
    time (fun () ->
        if slow then begin
          ignore (Before_corpus.schedule before_corpus rng);
          ignore (Before_corpus.programs before_corpus)
        end
        else begin
          ignore (Corpus.schedule corpus rng);
          ignore (Corpus.programs corpus)
        end)
  in
  let phases =
    [
      ("reset", reset_phase true, reset_phase false);
      ("merge", merge_phase true, merge_phase false);
      ("schedule", schedule_phase true, schedule_phase false);
    ]
  in
  Printf.printf "%-10s %14s %14s %9s\n" "phase" "before ns" "after ns" "ratio";
  List.iter
    (fun (name, b, a) ->
      Printf.printf "%-10s %14.0f %14.0f %8.1fx\n" name b a (b /. Float.max 1e-9 a))
    phases;
  let json =
    Printf.sprintf
      "{\n\
      \  \"execs\": %d,\n\
      \  \"identical_results\": true,\n\
      \  \"final_edges\": %d,\n\
      \  \"corpus_size\": %d,\n\
      \  \"before\": {\"execs_per_sec\": %.1f, \"ns_per_exec\": %.1f},\n\
      \  \"after\": {\"execs_per_sec\": %.1f, \"ns_per_exec\": %.1f},\n\
      \  \"speedup\": %.2f,\n\
      \  \"phases_ns_per_iter\": {\n%s\n  }\n\
       }"
      execs after_edges after_corpus_n (eps before_wall) (npe before_wall)
      (eps after_wall) (npe after_wall) speedup
      (String.concat ",\n"
         (List.map
            (fun (name, b, a) ->
              Printf.sprintf "    \"%s\": {\"before\": %.1f, \"after\": %.1f}" name b a)
            phases))
  in
  let path = "BENCH_hotpath.json" in
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_string oc (json ^ "\n"));
  Printf.printf "  [json] %s\n" path;
  if speedup < 2.0 then failwith "hotpath: expected >= 2x execs/sec on the smoke campaign"

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: real wall-clock per table's core loop.   *)

let bechamel_suite () =
  Printf.printf "\n== Bechamel wall-clock micro-benchmarks ==\n\n";
  let open Bechamel in
  let entry = Option.get (Nyx_targets.Registry.find "lightftp") in
  let spec = Campaign.net_spec () in
  let exec = Executor.create ~net_spec:spec entry.Nyx_targets.Registry.target in
  let seed = List.hd (Campaign.make_seeds entry spec) in
  let mk_snapshot_bench config n =
    Test.make
      ~name:(Printf.sprintf "fig6/nyx-create-restore-%d" n)
      (Staged.stage (fun () -> ignore (fig6_engine config n)))
  in
  let tests =
    [
      (* Table 2/3's inner loop: one full Nyx-Net execution. *)
      Test.make ~name:"table2-3/nyx-exec"
        (Staged.stage (fun () -> ignore (Executor.run_full exec seed)));
      (* Table 1's crash path: a crashing execution. *)
      Test.make ~name:"table1/crash-exec"
        (Staged.stage
           (let echo = Option.get (Nyx_targets.Registry.find "echo") in
            let e2 = Executor.create ~net_spec:spec echo.Nyx_targets.Registry.target in
            let boom =
              Nyx_spec.Net_spec.seed_of_packets spec
                [ Bytes.of_string "MODE raw\r\n"; Bytes.of_string "BOOM\r\n" ]
            in
            fun () -> ignore (Executor.run_full e2 boom)));
      (* Table 4's inner loop: a Mario frame burst. *)
      Test.make ~name:"table4/mario-64-frames"
        (Staged.stage
           (let level = Option.get (Nyx_mario.Level.find "1-1") in
            let clock = Nyx_sim.Clock.create () in
            let vm = Nyx_vm.Vm.create clock in
            let net = Nyx_netemu.Net.create clock in
            let ctx = Nyx_targets.Ctx.of_vm ~net vm in
            let game = Nyx_mario.Game.boot ctx level in
            let input = Bytes.make 16 '\x09' in
            fun () -> try Nyx_mario.Game.run_input game input with
              | Nyx_mario.Game.Level_solved _ -> ()));
      (* Figure 6's loops at two dirty-set sizes. *)
      mk_snapshot_bench Nyx_vm.Vm.small_config 100;
      mk_snapshot_bench Nyx_vm.Vm.small_config 1000;
      (* Table 5 derives from timelines: benchmark the query. *)
      Test.make ~name:"table5/timeline-query"
        (Staged.stage
           (let tl = Nyx_sim.Stats.Timeline.create () in
            for i = 0 to 999 do
              Nyx_sim.Stats.Timeline.record tl (i * 1000) (float_of_int i)
            done;
            fun () -> ignore (Nyx_sim.Stats.Timeline.first_time_reaching tl 900.0)));
    ]
  in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
  let clock = Toolkit.Instance.monotonic_clock in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ clock ] (Test.make_grouped ~name:"" [ test ]) in
      Hashtbl.iter
        (fun name raws ->
          match
            Analyze.one
              (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
              clock raws
          with
          | ols -> (
            match Analyze.OLS.estimates ols with
            | Some [ est ] -> Printf.printf "  %-36s %14.1f ns/run\n%!" name est
            | _ -> Printf.printf "  %-36s (no estimate)\n%!" name)
          | exception _ -> Printf.printf "  %-36s (analysis failed)\n%!" name)
        results)
    tests

(* ------------------------------------------------------------------ *)
(* Fault-injection smoke campaign (make faultcheck / CI): every fault
   site armed at a rate high enough to fire hundreds of times, asserting
   the campaign recovers from all of them and stays deterministic.       *)

let faultcheck () =
  Printf.printf "\n== Fault-injection smoke campaign ==\n\n";
  let entry = Option.get (Nyx_targets.Registry.find "echo") in
  let cfg =
    {
      Campaign.default_config with
      Campaign.policy = Policy.Aggressive;
      budget_ns = 8_000_000_000;
      max_execs = 25_000;
      seed = 7;
    }
  in
  let faults =
    match Nyx_resilience.Plan.parse_spec "all:0.02" with
    | Ok sp -> sp
    | Error m -> failwith ("faultcheck: " ^ m)
  in
  let r1 = Campaign.run ~faults cfg entry in
  let r2 = Campaign.run ~faults cfg entry in
  let res =
    match r1.Report.resilience with
    | Some r -> r
    | None -> failwith "faultcheck: faulted campaign returned no resilience block"
  in
  Printf.printf
    "  injected=%d recovered=%d aborted=%d | edges=%d execs=%d corpus=%d\n%!"
    res.Report.faults_injected res.Report.faults_recovered
    res.Report.faults_aborted r1.Report.final_edges r1.Report.execs
    r1.Report.corpus_size;
  (* Supervisor smoke: one instance that always dies must be quarantined
     without taking down the fleet or losing the healthy instances. *)
  let fleet =
    Fleet.run ~instances:3 ~domains:1 ~max_restarts:2
      ~run_instance:(fun c ->
        if c.Campaign.seed = cfg.Campaign.seed + 1000 then
          failwith "faultcheck: injected instance failure"
        else Campaign.run ~faults c entry)
      ~config:cfg entry
  in
  Printf.printf "  fleet: %d survivors, %d restarts, %d quarantined\n%!"
    (List.length fleet.Fleet.results) fleet.Fleet.restarts
    fleet.Fleet.quarantined;
  if res.Report.faults_recovered = 0 then
    failwith "faultcheck: no faults recovered (rate too low?)";
  if res.Report.faults_aborted <> 0 then
    failwith "faultcheck: some injected faults were not recovered";
  if res.Report.faults_recovered <> res.Report.faults_injected then
    failwith "faultcheck: injected/recovered mismatch";
  if not (Report.same_deterministic r1 r2) then
    failwith "faultcheck: same-seed faulted campaigns diverged";
  if fleet.Fleet.quarantined <> 1 || List.length fleet.Fleet.results <> 2 then
    failwith "faultcheck: supervisor did not quarantine exactly the bad instance";
  if fleet.Fleet.restarts <> 2 then
    failwith "faultcheck: supervisor retry budget not honoured";
  (* Peer encoder sites: a peer-mode campaign with every encoder fault
     armed must likewise recover everything — supervised desync recovery
     turns encoder lies into partial results, never campaign aborts. *)
  let peer_entry = Option.get (Nyx_targets.Registry.find "lightftp") in
  let peer_script = Option.get (Nyx_peer.Peer_script.find "lightftp") in
  let peer_faults =
    match Nyx_peer.Peer_fault.parse_spec "all:0.5" with
    | Ok sp -> sp
    | Error m -> failwith ("faultcheck: " ^ m)
  in
  let pr = Campaign.run ~peer:peer_script ~peer_faults cfg peer_entry in
  let pres =
    match pr.Report.resilience with
    | Some r -> r
    | None -> failwith "faultcheck: peer campaign returned no resilience block"
  in
  let pstats =
    match pr.Report.peer with
    | Some p -> p
    | None -> failwith "faultcheck: peer campaign returned no peer block"
  in
  Printf.printf
    "  peer: injected=%d recovered=%d aborted=%d | actions=%d desyncs=%d \
     quarantines=%d\n\
     %!"
    pres.Report.faults_injected pres.Report.faults_recovered
    pres.Report.faults_aborted pstats.Report.peer_actions
    pstats.Report.peer_desyncs pstats.Report.peer_quarantines;
  if pres.Report.faults_recovered = 0 then
    failwith "faultcheck: no peer encoder faults fired (rate too low?)";
  if pres.Report.faults_aborted <> 0 then
    failwith "faultcheck: some peer encoder faults were not recovered";
  let json =
    Printf.sprintf
      "{\n\
      \  \"target\": %S,\n\
      \  \"spec\": \"all:0.02\",\n\
      \  \"injected\": %d,\n\
      \  \"recovered\": %d,\n\
      \  \"aborted\": %d,\n\
      \  \"deterministic\": true,\n\
      \  \"edges\": %d,\n\
      \  \"execs\": %d,\n\
      \  \"fleet_restarts\": %d,\n\
      \  \"fleet_quarantined\": %d,\n\
      \  \"peer_injected\": %d,\n\
      \  \"peer_recovered\": %d,\n\
      \  \"peer_aborted\": %d,\n\
      \  \"peer_desyncs\": %d,\n\
      \  \"peer_quarantines\": %d\n\
       }"
      r1.Report.target res.Report.faults_injected res.Report.faults_recovered
      res.Report.faults_aborted r1.Report.final_edges r1.Report.execs
      fleet.Fleet.restarts fleet.Fleet.quarantined pres.Report.faults_injected
      pres.Report.faults_recovered pres.Report.faults_aborted
      pstats.Report.peer_desyncs pstats.Report.peer_quarantines
  in
  let path = "FAULTCHECK.json" in
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_string oc (json ^ "\n"));
  Printf.printf "  [json] %s\n  faultcheck OK\n%!" path

(* ------------------------------------------------------------------ *)
(* Static-vs-dynamic boundary conformance (make statecheck / CI): on
   every registry target, every dynamically observed protocol-state
   boundary must lie inside the static feasible set computed by
   Nyx_analysis.Dataflow — the soundness claim the probe prior rests on.
   Checked over the shipped seeds, deterministic mutants of them, and
   empty-payload variants that specifically exercise the statically-
   inert classification. The residue (feasible indices the probe never
   saw change the hash) is reported as the precision metric. Emits
   STATECHECK.json; any violation is fatal.                             *)

let statecheck () =
  Printf.printf "\n== Static-vs-dynamic boundary conformance (statecheck) ==\n\n";
  let mutants_per_seed = env_int "NYX_STATECHECK_MUTANTS" 3 in
  let nspec = Campaign.net_spec () in
  let empty_variant stride p =
    let i = ref 0 in
    let ops =
      Array.map
        (fun (op : Nyx_spec.Program.op) ->
          incr i;
          if !i mod stride = 0 then
            {
              op with
              Nyx_spec.Program.data =
                Array.map (fun _ -> Bytes.empty) op.Nyx_spec.Program.data;
            }
          else op)
        p.Nyx_spec.Program.ops
    in
    { p with Nyx_spec.Program.ops = ops }
  in
  let total_obs = ref 0 and total_feas = ref 0 in
  let total_viol = ref 0 and total_progs = ref 0 in
  let rows =
    List.map
      (fun (entry : Nyx_targets.Registry.entry) ->
        let info = entry.Nyx_targets.Registry.target.Nyx_targets.Target.info in
        let name = info.Nyx_targets.Target.name in
        let udp = info.Nyx_targets.Target.proto = Nyx_netemu.Net.Udp in
        let seeds = Nyx_targets.Registry.seed_programs entry nspec in
        let rng = Nyx_sim.Rng.create 7 in
        let programs =
          List.concat_map
            (fun p ->
              (p :: List.init mutants_per_seed (fun _ -> Nyx_spec.Mutator.mutate rng p))
              @ [ empty_variant 1 p; empty_variant 2 p ])
            seeds
        in
        let exec =
          Executor.create ~net_spec:nspec entry.Nyx_targets.Registry.target
        in
        let observed = ref 0 and feasible_n = ref 0 and violations = ref [] in
        List.iter
          (fun p ->
            let feasible = Nyx_analysis.Dataflow.feasible_boundaries ~udp p in
            let bounds = Executor.state_boundaries exec p in
            observed := !observed + List.length bounds;
            feasible_n := !feasible_n + List.length feasible;
            List.iter
              (fun b -> if not (List.mem b feasible) then violations := b :: !violations)
              bounds)
          programs;
        let residue = !feasible_n - (!observed - List.length !violations) in
        total_obs := !total_obs + !observed;
        total_feas := !total_feas + !feasible_n;
        total_viol := !total_viol + List.length !violations;
        total_progs := !total_progs + List.length programs;
        Printf.printf
          "  %-14s %3d programs | observed %4d  feasible %4d  residue %4d  \
           violations %d\n%!"
          name (List.length programs) !observed !feasible_n residue
          (List.length !violations);
        (name, List.length programs, !observed, !feasible_n, residue,
         List.length !violations))
      (Nyx_targets.Registry.all ())
  in
  let precision =
    if !total_feas = 0 then 1.0
    else float_of_int !total_obs /. float_of_int !total_feas
  in
  Printf.printf
    "\n  %d programs over %d targets: %d observed within %d feasible \
     (precision %.3f), %d violation(s)\n"
    !total_progs (List.length rows) !total_obs !total_feas precision !total_viol;
  let json =
    Printf.sprintf
      "{\n\
      \  \"programs\": %d,\n\
      \  \"observed_boundaries\": %d,\n\
      \  \"feasible_boundaries\": %d,\n\
      \  \"residue\": %d,\n\
      \  \"precision\": %.4f,\n\
      \  \"violations\": %d,\n\
      \  \"targets\": [\n%s\n  ]\n\
       }"
      !total_progs !total_obs !total_feas (!total_feas - !total_obs + !total_viol)
      precision !total_viol
      (String.concat ",\n"
         (List.map
            (fun (name, progs, obs, feas, residue, viol) ->
              Printf.sprintf
                "    {\"target\": %S, \"programs\": %d, \"observed\": %d, \
                 \"feasible\": %d, \"residue\": %d, \"violations\": %d}"
                name progs obs feas residue viol)
            rows))
  in
  let path = "STATECHECK.json" in
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_string oc (json ^ "\n"));
  Printf.printf "  [json] %s\n%!" path;
  if !total_viol > 0 then
    failwith
      (Printf.sprintf
         "statecheck: %d dynamically observed boundary(ies) outside the static \
          feasible set — the Dataflow inertness classification is unsound"
         !total_viol);
  Printf.printf "  statecheck OK\n%!"

(* ------------------------------------------------------------------ *)
(* Snapshot placement matrix: all four policies on the long-session
   targets, scored by virtual time-to-coverage. The frontier per target
   is the weakest policy's final coverage — every policy reaches it, so
   "first virtual ns reaching the frontier" is a fair race. The dynamic
   policy must strictly beat the best *static* policy on at least half
   the matrix when NYX_BENCH_SNAP_GATE is set (the CI snapshot-gate).
   Emits BENCH_snapshot.json.                                           *)

let snap_policies = [ Policy.None_; Policy.Balanced; Policy.Aggressive; Policy.Dynamic ]

let snapshot_matrix () =
  Printf.printf "\n== Snapshot placement matrix: virtual time-to-coverage per policy ==\n\n";
  let budget_s = env_int "NYX_BENCH_SNAP_BUDGET_S" 8 in
  let snap_execs = env_int "NYX_BENCH_SNAP_MAX_EXECS" 25_000 in
  let budget_ns = budget_s * 1_000_000_000 in
  (* Protocol-diverse targets whose seed sessions are long enough for
     mid-stream placement (>= Policy.min_packets_for_snapshot program
     packets): SMTP, FTP x3, RTSP and TLS. *)
  let names =
    match Sys.getenv_opt "NYX_BENCH_SNAP_TARGETS" with
    | Some s when String.trim s <> "" ->
      List.filter (fun n -> n <> "") (String.split_on_char ',' (String.trim s))
    | _ -> [ "exim"; "lightftp"; "live555"; "openssl"; "proftpd"; "pure-ftpd" ]
  in
  let cfg policy =
    {
      Campaign.policy;
      budget_ns;
      max_execs = snap_execs;
      seed = 7;
      asan = false;
      stop_on_solve = false;
      trim = false;
      sample_interval_ns = 100_000_000;
      engine = Engines.Havoc;
      mutator_weights = [];
    }
  in
  Printf.printf "  %ds virtual budget, %d exec cap, targets: %s\n\n" budget_s
    snap_execs (String.concat " " names);
  (* One campaign per (target, policy); each is a pure function of the
     seed, so the fan-out is deterministic whatever NYX_DOMAINS says. *)
  let tasks =
    List.concat_map (fun n -> List.map (fun pol -> (n, pol)) snap_policies) names
  in
  let results =
    Nyx_parallel.Pool.map_list
      (fun (n, pol) ->
        let entry = Option.get (Nyx_targets.Registry.find n) in
        (n, pol, Campaign.run (cfg pol) entry))
      tasks
  in
  let by_target n = List.filter (fun (tn, _, _) -> tn = n) results in
  Printf.printf "%-12s %10s" "target" "frontier";
  List.iter (fun pol -> Printf.printf " %14s" (Policy.name pol)) snap_policies;
  Printf.printf "   %s\n" "winner";
  let wins = ref 0 in
  let rows =
    List.map
      (fun n ->
        let cells = by_target n in
        let frontier =
          List.fold_left
            (fun acc (_, _, r) -> min acc r.Report.final_edges)
            max_int cells
        in
        let ttc (r : Report.campaign_result) =
          Option.value ~default:r.Report.virtual_ns
            (Nyx_sim.Stats.Timeline.first_time_reaching r.Report.timeline
               (float_of_int frontier))
        in
        let cell pol =
          let _, _, r = List.find (fun (_, p, _) -> p = pol) cells in
          (r, ttc r)
        in
        let per_policy = List.map (fun pol -> (pol, cell pol)) snap_policies in
        let dyn_ttc = snd (List.assoc Policy.Dynamic per_policy) in
        let best_static =
          List.fold_left
            (fun acc (pol, (_, t)) -> if pol = Policy.Dynamic then acc else min acc t)
            max_int per_policy
        in
        let dynamic_wins = dyn_ttc < best_static in
        if dynamic_wins then incr wins;
        Printf.printf "%-12s %10d" n frontier;
        List.iter
          (fun pol ->
            let _, t = List.assoc pol per_policy in
            Printf.printf " %12.3fs%s" (float_of_int t /. 1e9)
              (if pol = Policy.Dynamic && dynamic_wins then "*" else " "))
          snap_policies;
        Printf.printf "   %s\n%!" (if dynamic_wins then "dynamic" else "static");
        (n, frontier, per_policy, dynamic_wins))
      names
  in
  Printf.printf "\n  dynamic beats the best static policy on %d/%d targets\n" !wins
    (List.length names);
  (* Probe-cost ablation: rerun every seed's boundary probe with the
     static feasibility prior (Nyx_analysis.Dataflow) off and on. The
     prior may only skip hashes, never change the result — boundaries
     must match exactly, and prior-on must hash strictly fewer indices
     (it always skips at least the useless hash after the last packet). *)
  let nspec = Campaign.net_spec () in
  let prior_rows =
    List.map
      (fun n ->
        let entry = Option.get (Nyx_targets.Registry.find n) in
        let udp =
          entry.Nyx_targets.Registry.target.Nyx_targets.Target.info
            .Nyx_targets.Target.proto = Nyx_netemu.Net.Udp
        in
        let seeds = Nyx_targets.Registry.seed_programs entry nspec in
        let exec =
          Executor.create ~net_spec:nspec entry.Nyx_targets.Registry.target
        in
        let dense = ref 0 and prior = ref 0 and probed = ref 0 in
        List.iter
          (fun p ->
            let feasible = Nyx_analysis.Dataflow.feasible_boundaries ~udp p in
            let b_off = Executor.state_boundaries exec p in
            let h_off = Executor.last_probe_hashed exec in
            let b_on = Executor.state_boundaries ~feasible exec p in
            let h_on = Executor.last_probe_hashed exec in
            if b_off <> b_on then
              failwith
                (Printf.sprintf
                   "snapshot_matrix: static prior changed probe result on %s \
                    ([%s] vs [%s])"
                   n
                   (String.concat ";" (List.map string_of_int b_off))
                   (String.concat ";" (List.map string_of_int b_on)));
            dense := !dense + h_off;
            prior := !prior + h_on;
            incr probed)
          seeds;
        (n, !probed, !dense, !prior))
      names
  in
  let prior_wins =
    List.length (List.filter (fun (_, _, d, p) -> p < d) prior_rows)
  in
  Printf.printf "\n  probe-cost ablation (state hashes across all seed probes):\n";
  Printf.printf "  %-12s %6s %12s %12s %8s\n" "target" "seeds" "dense" "prior" "saved";
  List.iter
    (fun (n, probed, dense, prior) ->
      Printf.printf "  %-12s %6d %12d %12d %7.1f%%\n" n probed dense prior
        (if dense = 0 then 0.0
         else 100.0 *. float_of_int (dense - prior) /. float_of_int dense))
    prior_rows;
  Printf.printf
    "  prior hashes strictly fewer indices on %d/%d targets (boundaries \
     identical)\n"
    prior_wins (List.length names);
  let json =
    Printf.sprintf
      "{\n\
      \  \"virtual_budget_s\": %d,\n\
      \  \"max_execs\": %d,\n\
      \  \"seed\": 7,\n\
      \  \"targets\": [\n%s\n  ],\n\
      \  \"probe_prior\": [\n%s\n  ],\n\
      \  \"prior_strictly_fewer\": %d,\n\
      \  \"dynamic_wins\": %d,\n\
      \  \"matrix_size\": %d\n\
       }"
      budget_s snap_execs
      (String.concat ",\n"
         (List.map
            (fun (n, frontier, per_policy, dynamic_wins) ->
              Printf.sprintf
                "    {\"target\": %S, \"frontier_edges\": %d, \"dynamic_wins\": %b, \
                 \"policies\": [\n%s\n    ]}"
                n frontier dynamic_wins
                (String.concat ",\n"
                   (List.map
                      (fun (pol, ((r : Report.campaign_result), t)) ->
                        let placement =
                          match r.Report.placement with
                          | None -> ""
                          | Some p ->
                            Printf.sprintf
                              ", \"probes\": %d, \"moves\": %d, \"boundaries\": %d"
                              p.Report.probes p.Report.moves p.Report.boundary_count
                        in
                        Printf.sprintf
                          "      {\"policy\": %S, \"ttc_ns\": %d, \
                           \"final_edges\": %d, \"execs\": %d%s}"
                          (Policy.name pol) t r.Report.final_edges r.Report.execs
                          placement)
                      per_policy)))
            rows))
      (String.concat ",\n"
         (List.map
            (fun (n, probed, dense, prior) ->
              Printf.sprintf
                "    {\"target\": %S, \"programs\": %d, \"hashes_dense\": %d, \
                 \"hashes_prior\": %d, \"boundaries_identical\": true}"
                n probed dense prior)
            prior_rows))
      prior_wins !wins (List.length names)
  in
  let path = "BENCH_snapshot.json" in
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_string oc (json ^ "\n"));
  Printf.printf "  [json] %s\n" path;
  match Sys.getenv_opt "NYX_BENCH_SNAP_GATE" with
  | None -> ()
  | Some _ ->
    if !wins * 2 < List.length names then
      failwith
        (Printf.sprintf
           "snapshot_matrix: dynamic beat the best static policy on only %d/%d \
            targets (gate requires at least half)"
           !wins (List.length names));
    if prior_wins * 2 < List.length names then
      failwith
        (Printf.sprintf
           "snapshot_matrix: static prior hashed strictly fewer indices on only \
            %d/%d targets (gate requires at least half)"
           prior_wins (List.length names))

(* ------------------------------------------------------------------ *)
(* Mutation-engine matrix: havoc vs typed on the protocol targets,
   scored by executions-to-coverage (the exec-keyed timeline records
   every frontier advance, so the race is exact and budget-independent).
   The frontier per target is the weaker engine's final coverage — both
   engines reach it, so "first exec count reaching the frontier" is a
   fair race. When NYX_BENCH_MUT_GATE is set (the CI mutation-gate), the
   typed engine must reach the frontier in <= the havoc engine's execs
   on at least half the matrix. Emits BENCH_mutation.json.              *)

let mut_engines = [ Engines.Havoc; Engines.Typed ]

let mutation_matrix () =
  Printf.printf
    "\n== Mutation engine matrix: executions-to-coverage, havoc vs typed ==\n\n";
  let budget_s = env_int "NYX_BENCH_MUT_BUDGET_S" 8 in
  let mut_execs = env_int "NYX_BENCH_MUT_MAX_EXECS" 25_000 in
  let budget_ns = budget_s * 1_000_000_000 in
  let names =
    match Sys.getenv_opt "NYX_BENCH_MUT_TARGETS" with
    | Some s when String.trim s <> "" ->
      List.filter (fun n -> n <> "") (String.split_on_char ',' (String.trim s))
    | _ -> [ "exim"; "lightftp"; "live555"; "openssl"; "proftpd"; "pure-ftpd" ]
  in
  let cfg engine =
    {
      Campaign.policy = Policy.Aggressive;
      budget_ns;
      max_execs = mut_execs;
      seed = 7;
      asan = false;
      stop_on_solve = false;
      trim = false;
      sample_interval_ns = 100_000_000;
      engine;
      mutator_weights = [];
    }
  in
  Printf.printf "  %ds virtual budget, %d exec cap, seed 7, targets: %s\n\n"
    budget_s mut_execs (String.concat " " names);
  (* One campaign per (target, engine); each is a pure function of the
     seed, so the fan-out is deterministic whatever NYX_DOMAINS says. *)
  let tasks =
    List.concat_map (fun n -> List.map (fun e -> (n, e)) mut_engines) names
  in
  let results =
    Nyx_parallel.Pool.map_list
      (fun (n, e) ->
        let entry = Option.get (Nyx_targets.Registry.find n) in
        (n, e, Campaign.run (cfg e) entry))
      tasks
  in
  let by_target n = List.filter (fun (tn, _, _) -> tn = n) results in
  Printf.printf "%-12s %10s" "target" "frontier";
  List.iter (fun e -> Printf.printf " %14s" (Engines.name e)) mut_engines;
  Printf.printf "   %s\n" "winner";
  let wins = ref 0 in
  let rows =
    List.map
      (fun n ->
        let cells = by_target n in
        let frontier =
          List.fold_left
            (fun acc (_, _, r) -> min acc r.Report.final_edges)
            max_int cells
        in
        (* Execs at which the engine first reached the frontier; an
           engine that never did (impossible by construction, since the
           frontier is the min) scores its full exec count. *)
        let tte (r : Report.campaign_result) =
          Option.value ~default:r.Report.execs
            (Nyx_sim.Stats.Timeline.first_time_reaching r.Report.exec_timeline
               (float_of_int frontier))
        in
        let cell e =
          let _, _, r = List.find (fun (_, e', _) -> e' = e) cells in
          (r, tte r)
        in
        let per_engine = List.map (fun e -> (e, cell e)) mut_engines in
        let typed_execs = snd (List.assoc Engines.Typed per_engine) in
        let havoc_execs = snd (List.assoc Engines.Havoc per_engine) in
        let typed_wins = typed_execs <= havoc_execs in
        if typed_wins then incr wins;
        Printf.printf "%-12s %10d" n frontier;
        List.iter
          (fun e ->
            let _, t = List.assoc e per_engine in
            Printf.printf " %13d%s" t
              (if e = Engines.Typed && typed_wins then "*" else " "))
          mut_engines;
        Printf.printf "   %s\n%!" (if typed_wins then "typed" else "havoc");
        (n, frontier, per_engine, typed_wins))
      names
  in
  Printf.printf
    "\n  typed reaches the frontier in <= havoc's execs on %d/%d targets\n"
    !wins (List.length names);
  let json =
    Printf.sprintf
      "{\n\
      \  \"virtual_budget_s\": %d,\n\
      \  \"max_execs\": %d,\n\
      \  \"seed\": 7,\n\
      \  \"targets\": [\n%s\n  ],\n\
      \  \"typed_wins\": %d,\n\
      \  \"matrix_size\": %d\n\
       }"
      budget_s mut_execs
      (String.concat ",\n"
         (List.map
            (fun (n, frontier, per_engine, typed_wins) ->
              Printf.sprintf
                "    {\"target\": %S, \"frontier_edges\": %d, \"typed_wins\": %b, \
                 \"engines\": [\n%s\n    ]}"
                n frontier typed_wins
                (String.concat ",\n"
                   (List.map
                      (fun (e, ((r : Report.campaign_result), t)) ->
                        let mutators =
                          match r.Report.mutation with
                          | None -> ""
                          | Some m ->
                            Printf.sprintf ", \"mutators\": [%s]"
                              (String.concat ", "
                                 (List.map
                                    (fun (s : Report.mutator_stat) ->
                                      Printf.sprintf
                                        "{\"name\": %S, \"attempts\": %d, \
                                         \"rejected\": %d, \"accepts\": %d, \
                                         \"credit\": %.6f}"
                                        s.Report.mut_name s.Report.mut_attempts
                                        s.Report.mut_rejected s.Report.mut_accepts
                                        s.Report.mut_credit)
                                    m.Report.mutators))
                        in
                        Printf.sprintf
                          "      {\"engine\": %S, \"execs_to_frontier\": %d, \
                           \"final_edges\": %d, \"execs\": %d%s}"
                          (Engines.name e) t r.Report.final_edges r.Report.execs
                          mutators)
                      per_engine)))
            rows))
      !wins (List.length names)
  in
  let path = "BENCH_mutation.json" in
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_string oc (json ^ "\n"));
  Printf.printf "  [json] %s\n" path;
  match Sys.getenv_opt "NYX_BENCH_MUT_GATE" with
  | None -> ()
  | Some _ ->
    if !wins * 2 < List.length names then
      failwith
        (Printf.sprintf
           "mutation_matrix: typed reached the frontier within havoc's execs on \
            only %d/%d targets (gate requires at least half)"
           !wins (List.length names))

(* ------------------------------------------------------------------ *)
(* Peer-vs-bytecode gate (make bench-peer / CI): on every peer-scripted
   matrix target, a peer-mode campaign with encoder faults armed runs
   against a bytecode campaign with the same seed and budget. A target
   is a win when peer mode reaches strictly more unique edges, or finds
   a crash kind the bytecode campaign never saw (the Fuzztruction-style
   claim: protocol-correct traffic carrying semantic encoder lies
   reaches parser states raw byte mutation cannot). Also asserts peer
   campaigns are deterministic and that every fired encoder fault was
   recovered. Emits BENCH_peer.json; with NYX_BENCH_PEER_GATE set,
   fails unless peer mode wins on at least 2 of the 3 targets.          *)

let peer_matrix () =
  Printf.printf "\n== Peer-vs-bytecode matrix (peer_matrix) ==\n\n";
  let budget_ns = env_int "NYX_BENCH_PEER_BUDGET_S" 6 * 1_000_000_000 in
  let max_execs = env_int "NYX_BENCH_PEER_MAX_EXECS" 20_000 in
  let names =
    match Sys.getenv_opt "NYX_BENCH_PEER_TARGETS" with
    | Some s -> String.split_on_char ',' s
    | None -> [ "lightftp"; "tinydtls"; "mysql-client" ]
  in
  (* length-lie at full rate: the semantic lie that reaches the planted
     trusted-length bugs; the other sites at 0.5 keep the mix broad. *)
  let fault_spec =
    "flip:0.5,truncate:0.5,duplicate:0.5,length-lie:1.0,desync-frame:0.5,drop-field:0.5"
  in
  let peer_faults =
    match Nyx_peer.Peer_fault.parse_spec fault_spec with
    | Ok sp -> sp
    | Error m -> failwith ("peer_matrix: " ^ m)
  in
  let wins = ref 0 in
  let rows =
    List.map
      (fun name ->
        let entry =
          match Nyx_targets.Registry.find name with
          | Some e -> e
          | None -> failwith ("peer_matrix: unknown target " ^ name)
        in
        let script =
          match Nyx_peer.Peer_script.find name with
          | Some s -> s
          | None -> failwith ("peer_matrix: no peer script for " ^ name)
        in
        let cfg =
          {
            Campaign.default_config with
            Campaign.policy = Policy.Aggressive;
            budget_ns;
            max_execs;
            seed = 11;
            asan = true;
          }
        in
        let peer = Campaign.run ~peer:script ~peer_faults cfg entry in
        let peer2 = Campaign.run ~peer:script ~peer_faults cfg entry in
        if not (Report.same_deterministic peer peer2) then
          failwith
            (Printf.sprintf "peer_matrix: same-seed %s peer campaigns diverged"
               name);
        (match peer.Report.resilience with
        | Some res when res.Report.faults_aborted <> 0 ->
          failwith
            (Printf.sprintf
               "peer_matrix: %s aborted %d encoder faults (supervised \
                recovery must absorb all of them)"
               name res.Report.faults_aborted)
        | Some _ -> ()
        | None ->
          failwith (Printf.sprintf "peer_matrix: %s armed no fault plan" name));
        let bytecode = Campaign.run cfg entry in
        let kinds r = List.map (fun c -> c.Report.kind) r.Report.crashes in
        let peer_only =
          List.filter
            (fun k -> not (List.mem k (kinds bytecode)))
            (kinds peer)
        in
        let win =
          peer.Report.final_edges > bytecode.Report.final_edges
          || peer_only <> []
        in
        if win then incr wins;
        Printf.printf
          "  %-14s peer %3d edges, %d crash kinds | bytecode %3d edges, %d \
           crash kinds | %s%s\n\
           %!"
          name peer.Report.final_edges
          (List.length peer.Report.crashes)
          bytecode.Report.final_edges
          (List.length bytecode.Report.crashes)
          (if win then "peer wins" else "no win")
          (match peer_only with
          | [] -> ""
          | ks -> Printf.sprintf " (peer-only: %s)" (String.concat "," ks));
        (name, peer, bytecode, peer_only, win))
      names
  in
  let row_json (name, (peer : Report.campaign_result), bytecode, peer_only, win)
      =
    let ps =
      match peer.Report.peer with
      | Some p -> p
      | None -> failwith ("peer_matrix: " ^ name ^ " returned no peer block")
    in
    Printf.sprintf
      "    {\"target\": %S, \"peer_edges\": %d, \"bytecode_edges\": %d, \
       \"peer_crash_kinds\": [%s], \"bytecode_crash_kinds\": [%s], \
       \"peer_only_crash_kinds\": [%s], \"peer_actions\": %d, \
       \"faults_fired\": %d, \"desyncs\": %d, \"restarts\": %d, \
       \"quarantines\": %d, \"win\": %b}"
      name peer.Report.final_edges bytecode.Report.final_edges
      (String.concat ", "
         (List.map
            (fun c -> Printf.sprintf "%S" c.Report.kind)
            peer.Report.crashes))
      (String.concat ", "
         (List.map
            (fun (c : Report.crash_report) -> Printf.sprintf "%S" c.Report.kind)
            bytecode.Report.crashes))
      (String.concat ", " (List.map (fun k -> Printf.sprintf "%S" k) peer_only))
      ps.Report.peer_actions
      (List.fold_left (fun a (_, n) -> a + n) 0 ps.Report.peer_fired)
      ps.Report.peer_desyncs ps.Report.peer_restarts ps.Report.peer_quarantines
      win
  in
  let json =
    Printf.sprintf
      "{\n\
      \  \"fault_spec\": %S,\n\
      \  \"budget_ns\": %d,\n\
      \  \"seed\": 11,\n\
      \  \"wins\": %d,\n\
      \  \"targets\": [\n\
       %s\n\
      \  ]\n\
       }"
      fault_spec budget_ns !wins
      (String.concat ",\n" (List.map row_json rows))
  in
  let path = "BENCH_peer.json" in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (json ^ "\n"));
  Printf.printf "  [json] %s\n" path;
  match Sys.getenv_opt "NYX_BENCH_PEER_GATE" with
  | None -> ()
  | Some _ ->
    if !wins * 3 < 2 * List.length rows then
      failwith
        (Printf.sprintf
           "peer_matrix: peer mode won on only %d/%d targets (gate requires \
            at least 2 of 3)"
           !wins (List.length rows))

(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("table1", table1);
    ("table2", table2);
    ("table3", table3);
    ("table4", table4);
    ("table5", table5);
    ("fig5", fig5);
    ("fig6", fig6);
    ("scalability", scalability);
    ("faster_than_light", faster_than_light);
    ("ablation_reuse", ablation_reuse);
    ("ablation_dirty", ablation_dirty);
    ("ablation_boundary", ablation_boundary);
    ("ablation_remirror", ablation_remirror);
    ("ablation_typed", ablation_typed_spec);
    ("case_studies", case_studies);
    ("bechamel", bechamel_suite);
    ("parallel_smoke", parallel_smoke);
    ("snapshot_matrix", snapshot_matrix);
    ("mutation_matrix", mutation_matrix);
    ("hotpath", hotpath);
    ("peer_matrix", peer_matrix);
    ("faultcheck", faultcheck);
    ("statecheck", statecheck);
  ]

(* Experiments whose cells come from the shared fuzzer x target matrix. *)
let matrix_experiments = [ "table1"; "table2"; "table3"; "table5"; "fig5" ]

let () =
  let rec parse acc = function
    | [] -> List.rev acc
    | ("--budget" | "--sync-ms") :: [] ->
      Printf.eprintf "missing value for flag\n";
      exit 1
    | "--budget" :: v :: rest -> (
      match int_of_string_opt v with
      | Some s when s > 0 ->
        flag_budget_s := Some s;
        parse acc rest
      | _ ->
        Printf.eprintf "--budget expects a positive integer, got %S\n" v;
        exit 1)
    | "--sync-ms" :: v :: rest -> (
      match int_of_string_opt v with
      | Some m when m > 0 ->
        flag_sync_ms := Some m;
        parse acc rest
      | _ ->
        Printf.eprintf "--sync-ms expects a positive integer, got %S\n" v;
        exit 1)
    | a :: rest -> parse (a :: acc) rest
  in
  let args = parse [] (List.tl (Array.to_list Sys.argv)) in
  let args = if args = [] || args = [ "all" ] then List.map fst experiments else args in
  Printf.printf
    "Nyx-Net benchmark harness: budget=%ds (virtual), reps=%d, max_execs=%d\n%!"
    (budget_ns / 1_000_000_000) reps max_execs;
  (* Domain count goes to stderr only: stdout must stay byte-identical
     whatever NYX_DOMAINS says. *)
  Printf.eprintf "  [pool] NYX_DOMAINS resolves to %d\n%!"
    (Nyx_parallel.Pool.default_domains ());
  if List.exists (fun a -> List.mem a matrix_experiments) args then prewarm_matrix ();
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some f -> f ()
      | None ->
        Printf.eprintf "unknown experiment %S; available: %s\n" name
          (String.concat " " (List.map fst experiments));
        exit 1)
    args
