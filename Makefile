# Convenience entry points; see README.md for the full bench matrix.

.PHONY: all check build test bench-smoke bench-hotpath bench clean

all: check

build:
	dune build @all

test:
	dune runtest

# Tier-1 verify: what CI runs. Both smoke benches are asserted
# crash-free under NYX_DOMAINS=4 (hotpath additionally fails if the
# before/after gears diverge or the speedup drops below 2x).
check:
	dune build @all && dune runtest
	NYX_DOMAINS=4 NYX_BENCH_SMOKE_BUDGET_S=1 NYX_BENCH_FLEET=2 dune exec bench/main.exe -- parallel_smoke
	NYX_DOMAINS=4 NYX_BENCH_HOTPATH_EXECS=1500 NYX_BENCH_HOTPATH_PHASE_ITERS=1000 dune exec bench/main.exe -- hotpath

# Tiny-budget parallel smoke bench: measures the NYX_DOMAINS speedup on
# small fleets, checks parallel==sequential, writes BENCH_parallel.json.
bench-smoke:
	NYX_BENCH_SMOKE_BUDGET_S=2 NYX_BENCH_FLEET=4 dune exec bench/main.exe -- parallel_smoke

# Coverage-bound hot-loop bench: journaled coverage + O(1) scheduling vs
# the before-style full-scan paths; writes BENCH_hotpath.json.
bench-hotpath:
	dune exec bench/main.exe -- hotpath

# The full paper evaluation (slow).
bench:
	dune exec bench/main.exe -- all

clean:
	dune clean
