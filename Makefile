# Convenience entry points; see README.md for the full bench matrix.

.PHONY: all check build test bench-smoke bench clean

all: check

build:
	dune build @all

test:
	dune runtest

# Tier-1 verify: what CI runs.
check:
	dune build @all && dune runtest

# Tiny-budget parallel smoke bench: measures the NYX_DOMAINS speedup on
# small fleets, checks parallel==sequential, writes BENCH_parallel.json.
bench-smoke:
	NYX_BENCH_SMOKE_BUDGET_S=2 NYX_BENCH_FLEET=4 dune exec bench/main.exe -- parallel_smoke

# The full paper evaluation (slow).
bench:
	dune exec bench/main.exe -- all

clean:
	dune clean
