# Convenience entry points; see README.md for the full bench matrix.

.PHONY: all check build test lint faultcheck statecheck profile ci-local bench-smoke bench-hotpath bench-snapshot bench-mutation bench-peer bench clean

all: check

build:
	dune build @all

test:
	dune runtest

# Static analysis: the domain-safety source lint over every shared
# library and executable, then the spec linter + program verifier over
# all registered targets' specs and seed programs. Both exit non-zero on
# error-severity findings.
lint:
	dune build @all
	dune exec bin/domain_lint.exe -- lib bin bench test
	dune exec bin/nyx_net_fuzz.exe -- lint --all-targets

# Tier-1 verify: exactly what .github/workflows/ci.yml runs (build-test
# job = build + tests + sanitized tests + smoke benches + profile;
# lint job = the lint suite). Build + tests, the lint suite, the test
# suite again under the interpreter sanitizer (NYX_SANITIZE asserts the
# verifier's facts at runtime; --force because dune does not track env
# vars), both smoke benches asserted crash-free under NYX_DOMAINS=4
# (hotpath additionally fails if the before/after gears diverge or the
# speedup drops below 2x), and the static-vs-dynamic conformance gate.
check:
	dune build @all && dune runtest
	$(MAKE) lint
	NYX_SANITIZE=1 dune runtest --force
	NYX_DOMAINS=4 dune exec bench/main.exe -- parallel_smoke --budget 1 --sync-ms 100
	NYX_DOMAINS=4 NYX_BENCH_HOTPATH_EXECS=1500 NYX_BENCH_HOTPATH_PHASE_ITERS=1000 dune exec bench/main.exe -- hotpath
	$(MAKE) bench-snapshot
	$(MAKE) bench-mutation
	$(MAKE) bench-peer
	$(MAKE) faultcheck
	$(MAKE) statecheck

# Fault-injection smoke campaign (lib/resilience): runs a full campaign
# with every fault site armed at 2%, asserts zero aborted faults (every
# injection recovered via the recreate-on-demand path), bit-identical
# same-seed results, and the fleet supervisor's restart/quarantine
# behaviour; writes FAULTCHECK.json.
faultcheck:
	dune build @all
	dune exec bench/main.exe -- faultcheck

# Static-vs-dynamic conformance gate (lib/analysis): for every registry
# target, seeds plus deterministic mutants are probed densely and every
# observed state boundary must be statically feasible; a sanitized
# shadow-hash pass asserts no boundary escapes the static prior. Fails
# on any violation; writes STATECHECK.json (residue = feasible-but-
# unobserved indices is reported, not gated).
statecheck:
	dune build @all
	dune exec bench/main.exe -- statecheck

# Per-phase snapshot-cost profiles (lib/obs): a short profiled campaign
# per flagship target, table on stdout, JSON artifact next to the
# BENCH_*.json files.
profile:
	dune build @all
	dune exec bin/nyx_net_fuzz.exe -- profile echo -b 10 -s 7 -o PROFILE_echo.json
	dune exec bin/nyx_net_fuzz.exe -- profile lightftp -b 10 -s 7 -o PROFILE_lightftp.json

# Everything CI runs, locally, in CI's order.
ci-local:
	$(MAKE) check
	$(MAKE) profile

# Shared-corpus fleet scaling bench on the full multi-second budget:
# synced fleets at N in {2,4}, 1 domain vs N, deterministic
# work/makespan speedup gated at >= 0.7*N, parallel==sequential
# asserted, corpus-dedup experiment included; writes BENCH_parallel.json.
bench-smoke:
	NYX_BENCH_SCALE_GATE=0.7 dune exec bench/main.exe -- parallel_smoke

# Coverage-bound hot-loop bench: journaled coverage + O(1) scheduling vs
# the before-style full-scan paths; writes BENCH_hotpath.json.
bench-hotpath:
	dune exec bench/main.exe -- hotpath

# Snapshot placement matrix: all four policies across protocol-diverse
# targets, scored by virtual time-to-coverage; the gate fails unless the
# dynamic policy strictly beats the best static policy on at least half
# the matrix. Writes BENCH_snapshot.json. Fully deterministic (virtual
# clock), so the gate result is reproducible bit-for-bit.
bench-snapshot:
	NYX_BENCH_SNAP_GATE=1 dune exec bench/main.exe -- snapshot_matrix

# Mutation-engine matrix: havoc vs typed (splice + generate) across the
# protocol targets, scored by executions-to-coverage on the exec-keyed
# timeline; the gate fails unless the typed engine reaches the per-target
# frontier within the havoc engine's exec count on at least half the
# matrix. Writes BENCH_mutation.json. Fully deterministic.
bench-mutation:
	NYX_BENCH_MUT_GATE=1 dune exec bench/main.exe -- mutation_matrix

# Peer-vs-bytecode matrix: --mode peer campaigns (scripted peer with
# encoder faults armed) vs bytecode campaigns at the same seed/budget on
# lightftp, tinydtls and mysql-client; the gate fails unless peer mode
# finds strictly more unique edges or a peer-only crash kind on at least
# 2 of the 3 targets. Also asserts peer determinism and zero aborted
# encoder faults. Writes BENCH_peer.json. Fully deterministic.
bench-peer:
	NYX_BENCH_PEER_GATE=1 dune exec bench/main.exe -- peer_matrix

# The full paper evaluation (slow).
bench:
	dune exec bench/main.exe -- all

clean:
	dune clean
