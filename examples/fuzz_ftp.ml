(* The §5.4 workflow end to end, against the proftpd analogue:

   1. obtain the target,
   2. use the generic raw-packet specification,
   3. obtain seed inputs as a network capture and import it,
   4. (the share-folder bundling step is implicit here),
   5. run the fuzzer — and compare policies while we are at it.

   Run with: dune exec examples/fuzz_ftp.exe *)

let budget_ns = 60_000_000_000 (* one virtual minute *)

let () =
  let entry = Option.get (Nyx_targets.Registry.find "proftpd") in

  (* Step 3: a capture of FTP traffic. Normally this comes from Wireshark;
     here we record the canned session and round-trip it through the
     capture container to exercise the same import path. *)
  let capture = Nyx_targets.Registry.seed_capture entry in
  let path = Filename.temp_file "proftpd" ".npcap" in
  Nyx_pcap.Capture.save capture path;
  Format.printf "Recorded %d packets of seed traffic to %s@."
    (List.length capture.Nyx_pcap.Capture.records)
    path;
  let capture = Result.get_ok (Nyx_pcap.Capture.load path) in
  let spec = Nyx_core.Campaign.net_spec () in
  let seed =
    Nyx_pcap.Importer.to_seed spec
      entry.Nyx_targets.Registry.target.Nyx_targets.Target.info.Nyx_targets.Target.dissector
      capture
  in
  Format.printf "Imported seed program (%d ops):@.%a@."
    (Array.length seed.Nyx_spec.Program.ops)
    Nyx_spec.Program.pp seed;

  (* Audit the import before spending budget on it: the verifier proves
     the seed well-formed and warns about degenerate snapshot placements
     (a leading or trailing snapshot would waste the incremental-snapshot
     machinery on this very seed). *)
  let audit = Nyx_analysis.Audit.of_entries [ Nyx_analysis.Audit.program ~subject:"proftpd seed" seed ] in
  Format.printf "Verifier: %a" Nyx_analysis.Audit.pp audit;
  assert (Nyx_analysis.Audit.is_clean audit);

  (* Step 5: run all three snapshot policies on the same budget. *)
  List.iter
    (fun policy ->
      let config =
        {
          Nyx_core.Campaign.default_config with
          Nyx_core.Campaign.policy;
          budget_ns;
          max_execs = 100_000;
        }
      in
      let r = Nyx_core.Campaign.run ~seeds:[ seed ] config entry in
      Format.printf "@.%a@." Nyx_core.Report.pp_summary r;
      List.iter
        (fun c ->
          Format.printf "  %s at %a: %s@." c.Nyx_core.Report.kind Nyx_sim.Clock.pp_duration
            c.Nyx_core.Report.found_ns c.Nyx_core.Report.detail)
        r.Nyx_core.Report.crashes)
    [ Nyx_core.Policy.None_; Nyx_core.Policy.Balanced; Nyx_core.Policy.Aggressive ];

  (* And the AFLNet baseline on the same seeds, for contrast. *)
  (match
     Nyx_baselines.Fuzzers.run Nyx_baselines.Fuzzers.aflnet ~budget_ns ~max_execs:100_000
       ~seed:1 entry
   with
  | Some r -> Format.printf "@.%a@." Nyx_core.Report.pp_summary r
  | None -> ());
  Sys.remove path
