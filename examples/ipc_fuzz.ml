(* Fuzzing the Firefox-IPC analogue (§5.6): a multi-connection,
   actor-based message broker over Unix-domain sockets.

   This example also shows writing a custom multi-connection seed with the
   builder API (the Listing 1 / Listing 2 shape) instead of importing a
   capture: two simultaneous connections exchanging actor messages.

   Run with: dune exec examples/ipc_fuzz.exe *)

let () =
  let entry = Option.get (Nyx_targets.Registry.find "firefox-ipc") in
  let spec = Nyx_core.Campaign.net_spec () in

  (* A hand-written seed: two connections, interleaved actor traffic —
     the pattern desock-style emulation fundamentally cannot express. *)
  let b = Nyx_spec.Builder.create spec.Nyx_spec.Net_spec.spec in
  let msg = Nyx_targets.Ipc.make_msg in
  let con1 = List.hd (Nyx_spec.Builder.call b "connect" []) in
  let con2 = List.hd (Nyx_spec.Builder.call b "connect" []) in
  let send con payload = ignore (Nyx_spec.Builder.call b "packet" ~data:[ payload ] [ con ]) in
  send con1 (msg ~actor:1 ~msg_type:1 Bytes.empty) (* create actor 1 *);
  send con2 (msg ~actor:2 ~msg_type:1 Bytes.empty) (* create actor 2 *);
  send con1 (msg ~actor:1 ~msg_type:4 (Bytes.of_string "\x00\x02")) (* share handle *);
  send con2 (msg ~actor:1 ~msg_type:3 (Bytes.of_string "cross-connection message"));
  send con1 (msg ~actor:2 ~msg_type:5 Bytes.empty) (* ping *);
  send con2 (msg ~actor:2 ~msg_type:2 Bytes.empty) (* destroy actor 2 *);
  let seed = Nyx_spec.Builder.build b in
  Format.printf "Hand-built multi-connection seed:@.%a@." Nyx_spec.Program.pp seed;

  (* Hand-written seeds are exactly where the static verifier earns its
     keep: check affine discipline and snapshot placement before fuzzing. *)
  let audit =
    Nyx_analysis.Audit.of_entries
      [ Nyx_analysis.Audit.program ~subject:"hand-built ipc seed" seed ]
  in
  Format.printf "Verifier: %a" Nyx_analysis.Audit.pp audit;
  assert (Nyx_analysis.Audit.is_clean audit);

  (* Fuzz it. Firefox IPC messages are long sequences, so incremental
     snapshots pay off; asan is on, as Mozilla's fuzzing builds are. *)
  let config =
    {
      Nyx_core.Campaign.default_config with
      Nyx_core.Campaign.policy = Nyx_core.Policy.Aggressive;
      budget_ns = 120_000_000_000;
      max_execs = 60_000;
      asan = true;
    }
  in
  let r = Nyx_core.Campaign.run ~seeds:[ seed ] config entry in
  Format.printf "@.%a@." Nyx_core.Report.pp_summary r;
  List.iter
    (fun c ->
      Format.printf "  %-16s %a  %s@." c.Nyx_core.Report.kind Nyx_sim.Clock.pp_duration
        c.Nyx_core.Report.found_ns c.Nyx_core.Report.detail)
    r.Nyx_core.Report.crashes;
  if Nyx_core.Report.found_kind r "use-after-free" then
    Format.printf
      "@.The use-after-free needs create -> destroy -> message on one actor@.\
       across a multi-message session: snapshot fuzzing territory.@.";

  (* Phase two: the same campaign through the typed IPC spec — every
     generated input is a well-formed actor session (§2.2's approach). *)
  let ts = Nyx_targets.Ipc_spec.create () in
  let typed_audit =
    Nyx_analysis.Audit.of_entries
      [
        Nyx_analysis.Audit.spec ~subject:"firefox-ipc-typed spec"
          ts.Nyx_targets.Ipc_spec.spec;
        Nyx_analysis.Audit.program ~subject:"typed ipc seed"
          (Nyx_targets.Ipc_spec.seed ts);
      ]
  in
  assert (Nyx_analysis.Audit.is_clean typed_audit);
  let r2 =
    Nyx_core.Campaign.run
      ~seeds:[ Nyx_targets.Ipc_spec.seed ts ]
      ~custom:(Nyx_targets.Ipc_spec.handler ts) config entry
  in
  Format.printf "@.Typed-spec campaign on the same budget:@.%a@."
    Nyx_core.Report.pp_summary r2;
  Format.printf
    "Note the trade-off: the typed spec reaches the stateful bug just as@.\
     fast, but finds less total coverage — well-formed inputs never touch@.\
     the broker's parser-error paths.@."
