(* Quickstart: fuzz the built-in echo server for a few virtual seconds.

   Demonstrates the minimal public API surface:
   - pick a target from the registry,
   - configure a campaign (policy, budget),
   - run it and inspect coverage, throughput and crashes.

   Run with: dune exec examples/quickstart.exe *)

let () =
  let entry =
    match Nyx_targets.Registry.find "echo" with
    | Some e -> e
    | None -> failwith "echo target missing"
  in
  Format.printf "Fuzzing %s with incremental snapshots (aggressive policy)...@."
    entry.Nyx_targets.Registry.target.Nyx_targets.Target.info.Nyx_targets.Target.name;
  let config =
    {
      Nyx_core.Campaign.default_config with
      Nyx_core.Campaign.policy = Nyx_core.Policy.Aggressive;
      budget_ns = 20_000_000_000 (* 20 virtual seconds *);
      max_execs = 60_000;
    }
  in
  let result = Nyx_core.Campaign.run config entry in
  Format.printf "@.%a@.@." Nyx_core.Report.pp_summary result;
  (match result.Nyx_core.Report.crashes with
  | [] -> Format.printf "No crashes this time — try a different --seed.@."
  | crashes ->
    List.iter
      (fun c ->
        Format.printf "Found a %s after %d executions (%a of virtual time):@.  %s@."
          c.Nyx_core.Report.kind c.Nyx_core.Report.found_exec Nyx_sim.Clock.pp_duration
          c.Nyx_core.Report.found_ns c.Nyx_core.Report.detail;
        (* Reproducers are serialized bytecode programs. *)
        let spec = Nyx_core.Campaign.net_spec () in
        match Nyx_spec.Program.parse spec.Nyx_spec.Net_spec.spec c.Nyx_core.Report.input with
        | Ok program ->
          Format.printf "Reproducer:@.%a@." Nyx_spec.Program.pp program;
          (* Anything the fuzzer hands back must satisfy the same static
             verifier the seeds pass through. *)
          (match Nyx_analysis.Verifier.errors program with
          | [] -> ()
          | errs ->
            Format.printf "Verifier rejected the reproducer:@.";
            List.iter (fun d -> Format.printf "  %a@." Nyx_analysis.Diag.pp d) errs;
            failwith "reproducer failed verification")
        | Error m -> Format.printf "(reproducer parse error: %s)@." m)
      crashes);
  Format.printf "Snapshot mechanics: the campaign above replayed common packet@.";
  Format.printf "prefixes from incremental snapshots instead of re-executing them.@."
