(* The Super Mario experiment (§5.3 / Figure 2): fuzz level 1-1 with
   incremental snapshots until the fuzzer finds an input that reaches the
   flag, then replay the winning input and render its trajectory.

   Run with: dune exec examples/mario_demo.exe *)

let packets_of_program (p : Nyx_spec.Program.t) =
  Array.to_list p.Nyx_spec.Program.ops
  |> List.filter_map (fun (op : Nyx_spec.Program.op) ->
         if Array.length op.Nyx_spec.Program.data > 0 then
           Some op.Nyx_spec.Program.data.(0)
         else None)

(* Replay an input frame by frame, recording the trajectory. *)
let replay level program =
  let clock = Nyx_sim.Clock.create () in
  let vm = Nyx_vm.Vm.create clock in
  let net = Nyx_netemu.Net.create clock in
  let ctx = Nyx_targets.Ctx.of_vm ~net vm in
  let game = Nyx_mario.Game.boot ctx level in
  let path = ref [] in
  (try
     List.iter
       (fun packet ->
         Bytes.iter
           (fun c ->
             let b = Nyx_mario.Game.buttons_of_byte (Char.code c) in
             for _ = 1 to Nyx_mario.Game.frames_per_byte do
               Nyx_mario.Game.step game b;
               path := (Nyx_mario.Game.x_px game, Nyx_mario.Game.y_px game) :: !path
             done)
           packet)
       (packets_of_program program)
   with Nyx_mario.Game.Level_solved _ -> ());
  List.rev !path

let () =
  let level = Option.get (Nyx_mario.Level.find "1-1") in
  Format.printf "Level 1-1 (%d columns, flag at column %d):@.%s@." level.Nyx_mario.Level.width
    level.Nyx_mario.Level.flag_col
    (Nyx_mario.Level.render level);
  let entry =
    {
      Nyx_targets.Registry.target = Nyx_mario.Mario_target.target level;
      seeds = Nyx_mario.Mario_target.seeds level;
    }
  in
  Format.printf "Fuzzing with the aggressive snapshot policy until solved...@.";
  let config =
    {
      Nyx_core.Campaign.default_config with
      Nyx_core.Campaign.policy = Nyx_core.Policy.Aggressive;
      budget_ns = 3_600_000_000_000 (* one virtual hour *);
      max_execs = 200_000;
      stop_on_solve = true;
    }
  in
  let r = Nyx_core.Campaign.run config entry in
  match
    List.find_opt (fun c -> c.Nyx_core.Report.kind = "level-solved") r.Nyx_core.Report.crashes
  with
  | None ->
    Format.printf "Not solved within the budget (%d execs) — try another seed.@."
      r.Nyx_core.Report.execs
  | Some win ->
    Format.printf "Solved after %d executions, %a of virtual time!@."
      win.Nyx_core.Report.found_exec Nyx_sim.Clock.pp_duration win.Nyx_core.Report.found_ns;
    let spec = Nyx_core.Campaign.net_spec () in
    (match Nyx_spec.Program.parse spec.Nyx_spec.Net_spec.spec win.Nyx_core.Report.input with
    | Error m -> Format.printf "reproducer parse error: %s@." m
    | Ok program ->
      let path = replay level program in
      Format.printf "@.The winning run (Figure 2-style visualization):@.%s@."
        (Nyx_mario.Level.render ~path level);
      Format.printf "Trajectory of %d frames across %d input packets.@." (List.length path)
        (List.length (packets_of_program program)))
