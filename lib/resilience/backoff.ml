(* Capped exponential backoff in virtual time. Pure: the fleet supervisor
   accounts these delays in the resilience block rather than spinning a
   clock (a restarted instance's own clock starts from zero). *)

let delay_ns ~base_ns ~cap_ns ~attempt =
  if base_ns <= 0 then invalid_arg "Backoff.delay_ns: base must be positive";
  if cap_ns < base_ns then invalid_arg "Backoff.delay_ns: cap below base";
  if attempt < 0 then invalid_arg "Backoff.delay_ns: negative attempt";
  (* 2^attempt * base, saturating at cap without overflow: stop doubling
     as soon as the cap is reached. *)
  let rec go d n = if n = 0 || d >= cap_ns then d else go (d * 2) (n - 1) in
  min cap_ns (go base_ns attempt)

let total_ns ~base_ns ~cap_ns ~attempts =
  let rec go acc i =
    if i >= attempts then acc else go (acc + delay_ns ~base_ns ~cap_ns ~attempt:i) (i + 1)
  in
  go 0 0
