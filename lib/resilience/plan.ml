type spec = (Fault.site * float) list

(* Every parse error names the offending item verbatim and lists the
   valid site names, so a bad NYX_FAULTS / --faults / --peer-faults spec
   is diagnosable without reading the source. *)
let valid_sites () =
  String.concat "|" (List.map Fault.site_name Fault.all_sites) ^ "|all"

let parse_rate ~item s =
  match float_of_string_opt (String.trim s) with
  | Some r when r >= 0.0 && r <= 1.0 -> Ok r
  | _ ->
    Error
      (Printf.sprintf "invalid fault rate %S in item %S (want a float in [0,1])"
         s item)

let parse_spec s =
  let items = String.split_on_char ',' s in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | item :: rest -> (
      match String.index_opt item ':' with
      | None ->
        Error
          (Printf.sprintf "invalid fault spec item %S (want site:rate with site one of %s)"
             item (valid_sites ()))
      | Some i -> (
        let name = String.trim (String.sub item 0 i) in
        let rate = String.sub item (i + 1) (String.length item - i - 1) in
        match parse_rate ~item rate with
        | Error _ as e -> e
        | Ok r ->
          if name = "all" then
            go (List.rev_append (List.map (fun s -> (s, r)) Fault.all_sites) acc) rest
          else (
            match Fault.site_of_name name with
            | Some site -> go ((site, r) :: acc) rest
            | None ->
              Error
                (Printf.sprintf "unknown fault site %S in item %S (want one of %s)"
                   name item (valid_sites ())))))
  in
  match String.trim s with
  | "" -> Error (Printf.sprintf "empty fault spec (want site:rate,... with site one of %s)" (valid_sites ()))
  | _ -> go [] items

(* Canonical rendering: per-site rates in site order, later spec items
   having overridden earlier ones. Checkpoints store this string so a
   resumed run rebuilds the exact same plan. *)
let spec_to_string sp =
  let rates = Array.make Fault.num_sites 0.0 in
  List.iter (fun (site, r) -> rates.(Fault.site_index site) <- r) sp;
  String.concat ","
    (List.filter_map
       (fun site ->
         let r = rates.(Fault.site_index site) in
         if r > 0.0 then Some (Printf.sprintf "%s:%.17g" (Fault.site_name site) r)
         else None)
       Fault.all_sites)

let of_env () =
  match Sys.getenv_opt "NYX_FAULTS" with
  | None | Some "" -> None
  | Some s -> (
    match parse_spec s with
    | Ok sp -> Some sp
    | Error m -> invalid_arg ("NYX_FAULTS: " ^ m))

type t = {
  rates : float array; (* per site, Fault.site_index order *)
  rng : Nyx_sim.Rng.t;
  mutable seq : int;
  injected : int array;
  recovered : int array;
  mutable suppress : int; (* >0 while a recovery runs: no nested faults *)
  spec_str : string;
}

let create sp rng =
  let rates = Array.make Fault.num_sites 0.0 in
  List.iter (fun (site, r) -> rates.(Fault.site_index site) <- r) sp;
  {
    rates;
    rng;
    seq = 0;
    injected = Array.make Fault.num_sites 0;
    recovered = Array.make Fault.num_sites 0;
    suppress = 0;
    spec_str = spec_to_string sp;
  }

let spec_string t = t.spec_str

let fire t site ~vns =
  if t.suppress > 0 then None
  else begin
    let i = Fault.site_index site in
    let rate = t.rates.(i) in
    (* Zero-rate sites draw nothing, so a spec naming only some sites has
       the same draw sequence whatever the other sites would have done. *)
    if rate <= 0.0 then None
    else if Nyx_sim.Rng.chance t.rng rate then begin
      let f = { Fault.site; seq = t.seq; site_seq = t.injected.(i); vns } in
      t.seq <- t.seq + 1;
      t.injected.(i) <- t.injected.(i) + 1;
      Some f
    end
    else None
  end

let suppressed t f =
  t.suppress <- t.suppress + 1;
  Fun.protect ~finally:(fun () -> t.suppress <- t.suppress - 1) f

let record_recovered (t : t) (fault : Fault.t) =
  let i = Fault.site_index fault.Fault.site in
  t.recovered.(i) <- t.recovered.(i) + 1

type counts = { injected : int; recovered : int }

let totals (t : t) =
  {
    injected = Array.fold_left ( + ) 0 t.injected;
    recovered = Array.fold_left ( + ) 0 t.recovered;
  }

let by_site (t : t) =
  List.map
    (fun site ->
      let i = Fault.site_index site in
      (site, { injected = t.injected.(i); recovered = t.recovered.(i) }))
    Fault.all_sites

(* Checkpoint support: a plan is its rng state, ordinal and counters. *)

type state = {
  st_rng : int64;
  st_seq : int;
  st_injected : int array;
  st_recovered : int array;
}

let state (t : t) =
  {
    st_rng = Nyx_sim.Rng.state t.rng;
    st_seq = t.seq;
    st_injected = Array.copy t.injected;
    st_recovered = Array.copy t.recovered;
  }

let restore_state (t : t) (s : state) =
  if
    Array.length s.st_injected <> Fault.num_sites
    || Array.length s.st_recovered <> Fault.num_sites
  then invalid_arg "Plan.restore_state: counter arity mismatch";
  Nyx_sim.Rng.set_state t.rng s.st_rng;
  t.seq <- s.st_seq;
  Array.blit s.st_injected 0 t.injected 0 Fault.num_sites;
  Array.blit s.st_recovered 0 t.recovered 0 Fault.num_sites
