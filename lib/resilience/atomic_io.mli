(** Crash-safe file writes: temp file + rename.

    POSIX [rename] within a directory is atomic, so a checkpoint file on
    disk is always a complete, parseable image — a campaign killed in the
    middle of a checkpoint write leaves the previous checkpoint intact. *)

val write_file : string -> bytes -> (unit, string) result
(** Write to [path ^ ".tmp"], then rename onto [path]. On error the temp
    file is removed (best effort) and the destination is untouched. *)

val read_file : string -> (bytes, string) result
