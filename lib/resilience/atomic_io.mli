(** Crash-safe file writes: temp file + fsync + rename.

    POSIX [rename] within a directory is atomic, so a checkpoint file on
    disk is always a complete, parseable image — a campaign killed in the
    middle of a checkpoint write leaves the previous checkpoint intact.
    The temp file is fsynced before the rename (no renamed-but-empty
    window on power loss), and a stale [.tmp] orphan left by a writer
    killed between write and rename is swept on the next write. *)

val write_file : string -> bytes -> (unit, string) result
(** Write to [path ^ ".tmp"] (removing any orphaned temp from a previous
    crashed write first), flush + fsync, then rename onto [path]. On
    error the temp file is removed (best effort) and the destination is
    untouched. *)

val read_file : string -> (bytes, string) result
