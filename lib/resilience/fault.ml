type site =
  | Snap_corrupt
  | Restore_fail
  | Dirty_loss
  | Guest_wedge
  | Trace_sink

let all_sites = [ Snap_corrupt; Restore_fail; Dirty_loss; Guest_wedge; Trace_sink ]

let num_sites = List.length all_sites

let site_index = function
  | Snap_corrupt -> 0
  | Restore_fail -> 1
  | Dirty_loss -> 2
  | Guest_wedge -> 3
  | Trace_sink -> 4

let site_name = function
  | Snap_corrupt -> "snap-corrupt"
  | Restore_fail -> "restore-fail"
  | Dirty_loss -> "dirty-loss"
  | Guest_wedge -> "wedge"
  | Trace_sink -> "trace-sink"

let site_of_name = function
  | "snap-corrupt" -> Some Snap_corrupt
  | "restore-fail" -> Some Restore_fail
  | "dirty-loss" -> Some Dirty_loss
  | "wedge" -> Some Guest_wedge
  | "trace-sink" -> Some Trace_sink
  | _ -> None

type t = {
  site : site;
  seq : int;
  site_seq : int;
  vns : int;
}

exception Injected of t

let pp ppf f =
  Format.fprintf ppf "%s#%d (injection %d, vtime %dns)" (site_name f.site)
    f.site_seq f.seq f.vns

let () =
  Printexc.register_printer (function
    | Injected f ->
      Some
        (Printf.sprintf "Fault.Injected(%s#%d seq %d vns %d)" (site_name f.site)
           f.site_seq f.seq f.vns)
    | _ -> None)
