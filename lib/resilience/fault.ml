type site =
  | Snap_corrupt
  | Restore_fail
  | Dirty_loss
  | Guest_wedge
  | Trace_sink
  | Peer_flip
  | Peer_truncate
  | Peer_duplicate
  | Peer_length_lie
  | Peer_desync_frame
  | Peer_drop_field

let all_sites =
  [
    Snap_corrupt; Restore_fail; Dirty_loss; Guest_wedge; Trace_sink;
    Peer_flip; Peer_truncate; Peer_duplicate; Peer_length_lie;
    Peer_desync_frame; Peer_drop_field;
  ]

let peer_sites =
  [
    Peer_flip; Peer_truncate; Peer_duplicate; Peer_length_lie;
    Peer_desync_frame; Peer_drop_field;
  ]

let num_sites = List.length all_sites

let site_index = function
  | Snap_corrupt -> 0
  | Restore_fail -> 1
  | Dirty_loss -> 2
  | Guest_wedge -> 3
  | Trace_sink -> 4
  | Peer_flip -> 5
  | Peer_truncate -> 6
  | Peer_duplicate -> 7
  | Peer_length_lie -> 8
  | Peer_desync_frame -> 9
  | Peer_drop_field -> 10

let site_name = function
  | Snap_corrupt -> "snap-corrupt"
  | Restore_fail -> "restore-fail"
  | Dirty_loss -> "dirty-loss"
  | Guest_wedge -> "wedge"
  | Trace_sink -> "trace-sink"
  | Peer_flip -> "peer-flip"
  | Peer_truncate -> "peer-truncate"
  | Peer_duplicate -> "peer-duplicate"
  | Peer_length_lie -> "peer-length-lie"
  | Peer_desync_frame -> "peer-desync-frame"
  | Peer_drop_field -> "peer-drop-field"

let site_of_name = function
  | "snap-corrupt" -> Some Snap_corrupt
  | "restore-fail" -> Some Restore_fail
  | "dirty-loss" -> Some Dirty_loss
  | "wedge" -> Some Guest_wedge
  | "trace-sink" -> Some Trace_sink
  | "peer-flip" -> Some Peer_flip
  | "peer-truncate" -> Some Peer_truncate
  | "peer-duplicate" -> Some Peer_duplicate
  | "peer-length-lie" -> Some Peer_length_lie
  | "peer-desync-frame" -> Some Peer_desync_frame
  | "peer-drop-field" -> Some Peer_drop_field
  | _ -> None

let is_peer_site = function
  | Peer_flip | Peer_truncate | Peer_duplicate | Peer_length_lie
  | Peer_desync_frame | Peer_drop_field ->
    true
  | Snap_corrupt | Restore_fail | Dirty_loss | Guest_wedge | Trace_sink -> false

type t = {
  site : site;
  seq : int;
  site_seq : int;
  vns : int;
}

exception Injected of t

let pp ppf f =
  Format.fprintf ppf "%s#%d (injection %d, vtime %dns)" (site_name f.site)
    f.site_seq f.seq f.vns

let () =
  Printexc.register_printer (function
    | Injected f ->
      Some
        (Printf.sprintf "Fault.Injected(%s#%d seq %d vns %d)" (site_name f.site)
           f.site_seq f.seq f.vns)
    | _ -> None)
