(** Capped exponential backoff (virtual time, pure). *)

val delay_ns : base_ns:int -> cap_ns:int -> attempt:int -> int
(** [delay_ns ~base_ns ~cap_ns ~attempt] is [min cap_ns (base_ns * 2^attempt)]
    computed without overflow; [attempt] is 0-based.
    @raise Invalid_argument on a non-positive base, a cap below the base,
    or a negative attempt. *)

val total_ns : base_ns:int -> cap_ns:int -> attempts:int -> int
(** Sum of the first [attempts] delays. *)
