(* Atomic file replacement: write a sibling temp file, then rename over
   the destination. A reader (or a resume after a kill) sees either the
   old complete file or the new complete file, never a torn write. *)

let write_file path data =
  let tmp = path ^ ".tmp" in
  match
    let oc = open_out_bin tmp in
    Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_bytes oc data);
    Sys.rename tmp path
  with
  | () -> Ok ()
  | exception Sys_error m ->
    (if Sys.file_exists tmp then try Sys.remove tmp with Sys_error _ -> ());
    Error m

let read_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> Bytes.of_string (really_input_string ic (in_channel_length ic)))
  with
  | data -> Ok data
  | exception Sys_error m -> Error m
  | exception End_of_file -> Error (path ^ ": truncated read")
