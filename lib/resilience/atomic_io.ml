(* Atomic file replacement: write a sibling temp file, fsync it, then
   rename over the destination. A reader (or a resume after a kill) sees
   either the old complete file or the new complete file, never a torn
   write. A process killed between write and rename leaves the temp
   file behind; the next write to the same path sweeps such orphans
   first, so crash loops cannot accumulate stale [.tmp] litter. *)

let tmp_path path = path ^ ".tmp"

(* Remove a stale temp left by a previous crashed writer (best effort:
   the sweep must never turn a clean write into a failure). *)
let sweep_orphan path =
  let tmp = tmp_path path in
  if Sys.file_exists tmp then try Sys.remove tmp with Sys_error _ -> ()

let write_file path data =
  let tmp = tmp_path path in
  sweep_orphan path;
  match
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        output_bytes oc data;
        (* Flush to the OS and fsync before the rename: otherwise a
           power loss can leave a renamed-but-empty file, which is
           exactly the torn state the temp+rename dance exists to
           prevent. *)
        flush oc;
        try Unix.fsync (Unix.descr_of_out_channel oc)
        with Unix.Unix_error _ -> ());
    Sys.rename tmp path
  with
  | () -> Ok ()
  | exception Sys_error m ->
    (if Sys.file_exists tmp then try Sys.remove tmp with Sys_error _ -> ());
    Error m

let read_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> Bytes.of_string (really_input_string ic (in_channel_length ic)))
  with
  | data -> Ok data
  | exception Sys_error m -> Error m
  | exception End_of_file -> Error (path ^ ": truncated read")
