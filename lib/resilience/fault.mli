(** Typed faults with provenance.

    Each injection site models one way the real Nyx-Net substrate can
    misbehave under load: a corrupted incremental snapshot image, a failed
    snapshot restore, lost dirty-page log entries, a guest that wedges
    past the hang budget, and a trace sink whose writes start failing.
    Faults are deterministic — see {!Plan} — and recoverable: the paper's
    recreate-on-demand semantics (§3.4) means any damaged incremental
    snapshot can be discarded and rebuilt from the root. *)

type site =
  | Snap_corrupt  (** incremental snapshot image corrupted at creation *)
  | Restore_fail  (** incremental snapshot restore fails outright *)
  | Dirty_loss  (** dirty-page log lost entries: the incremental image is
                    incomplete (injected in [lib/vm]) *)
  | Guest_wedge  (** guest wedges beyond the hang budget; the watchdog
                     resets it at {!Nyx_sim.Cost.guest_wedge} cost *)
  | Trace_sink  (** trace-sink write failure (observability only) *)

val all_sites : site list
val num_sites : int
val site_index : site -> int
(** Dense index in [0, num_sites), in [all_sites] order. *)

val site_name : site -> string
(** The spec-syntax name: ["snap-corrupt"], ["restore-fail"],
    ["dirty-loss"], ["wedge"], ["trace-sink"]. *)

val site_of_name : string -> site option

type t = {
  site : site;
  seq : int;  (** plan-wide injection ordinal (0-based) *)
  site_seq : int;  (** per-site injection ordinal (0-based) *)
  vns : int;  (** virtual time at which the fault fired *)
}
(** One injected fault, with enough provenance to locate it in a trace. *)

exception Injected of t
(** Raised at a detection point (e.g. restoring a corrupted incremental
    snapshot). Never escapes the executor: the recovery path catches it,
    rebuilds from the root snapshot and counts the recovery. *)

val pp : Format.formatter -> t -> unit
