(** Typed faults with provenance.

    Each injection site models one way the real Nyx-Net substrate can
    misbehave under load: a corrupted incremental snapshot image, a failed
    snapshot restore, lost dirty-page log entries, a guest that wedges
    past the hang budget, and a trace sink whose writes start failing.
    Faults are deterministic — see {!Plan} — and recoverable: the paper's
    recreate-on-demand semantics (§3.4) means any damaged incremental
    snapshot can be discarded and rebuilt from the root.

    The [Peer_*] sites live in the cooperating peer's {e encoder}
    (lib/peer, the "No Peer, no Cry" / Fuzztruction-Net direction): the
    peer still speaks the protocol correctly, but an armed site perturbs
    one outgoing message — flipped bytes, truncation, duplication, a
    length field that lies, a desynchronized frame boundary, or a dropped
    field. Peer faults share the plan's RNG-split-only-when-armed
    discipline, so campaigns without a peer (or with every peer rate at
    zero) are byte-identical to pre-peer goldens. *)

type site =
  | Snap_corrupt  (** incremental snapshot image corrupted at creation *)
  | Restore_fail  (** incremental snapshot restore fails outright *)
  | Dirty_loss  (** dirty-page log lost entries: the incremental image is
                    incomplete (injected in [lib/vm]) *)
  | Guest_wedge  (** guest wedges beyond the hang budget; the watchdog
                     resets it at {!Nyx_sim.Cost.guest_wedge} cost *)
  | Trace_sink  (** trace-sink write failure (observability only) *)
  | Peer_flip  (** peer encoder: deterministic byte flips in the payload *)
  | Peer_truncate  (** peer encoder: message cut short mid-field *)
  | Peer_duplicate  (** peer encoder: the encoded message is sent twice *)
  | Peer_length_lie  (** peer encoder: a length field overstates the body *)
  | Peer_desync_frame  (** peer encoder: frame boundary shifted, desyncing
                           the target's parser *)
  | Peer_drop_field  (** peer encoder: a whole field elided from the wire
                          image *)

val all_sites : site list

val peer_sites : site list
(** The six [Peer_*] sites, in [all_sites] order. *)

val num_sites : int

val site_index : site -> int
(** Dense index in [0, num_sites), in [all_sites] order. *)

val site_name : site -> string
(** The spec-syntax name: ["snap-corrupt"], ["restore-fail"],
    ["dirty-loss"], ["wedge"], ["trace-sink"], ["peer-flip"],
    ["peer-truncate"], ["peer-duplicate"], ["peer-length-lie"],
    ["peer-desync-frame"], ["peer-drop-field"]. *)

val site_of_name : string -> site option

val is_peer_site : site -> bool

type t = {
  site : site;
  seq : int;  (** plan-wide injection ordinal (0-based) *)
  site_seq : int;  (** per-site injection ordinal (0-based) *)
  vns : int;  (** virtual time at which the fault fired *)
}
(** One injected fault, with enough provenance to locate it in a trace. *)

exception Injected of t
(** Raised at a detection point (e.g. restoring a corrupted incremental
    snapshot). Never escapes the executor: the recovery path catches it,
    rebuilds from the root snapshot and counts the recovery. *)

val pp : Format.formatter -> t -> unit
