(** Deterministic fault-injection plans.

    A plan is seeded from the campaign RNG (a {!Nyx_sim.Rng.split} of it),
    so the whole fault schedule is a pure function of the campaign seed
    and the spec: same seed, same spec — bit-identical faults, recoveries
    and final results. Each instrumented point consults {!fire} with the
    current virtual time; a site only draws from the plan RNG when its
    rate is positive, and never while a recovery is in progress
    ({!suppressed}), so recovery work cannot inject nested faults.

    Specs are comma-separated [site:rate] pairs, e.g.
    ["snap-corrupt:0.05,restore-fail:0.02,wedge:0.01"]; the pseudo-site
    [all] sets every rate at once. [NYX_FAULTS] carries the spec in the
    environment ({!of_env}). *)

type spec = (Fault.site * float) list

val parse_spec : string -> (spec, string) result
(** Rates must be floats in [0,1]; unknown sites and malformed items are
    errors. Later items override earlier ones for the same site. *)

val spec_to_string : spec -> string
(** Canonical spec string (site order, full float precision) —
    [parse_spec] of it round-trips. Stored in checkpoints. *)

val of_env : unit -> spec option
(** The [NYX_FAULTS] spec, if set and non-empty.
    @raise Invalid_argument when set but malformed — a campaign must not
    silently run fault-free when faults were requested. *)

type t

val create : spec -> Nyx_sim.Rng.t -> t
(** The plan owns the given generator (conventionally a split of the
    campaign RNG). *)

val spec_string : t -> string

val fire : t -> Fault.site -> vns:int -> Fault.t option
(** Consult the plan at an instrumented point: [Some fault] when the site
    fires. Counts the injection. Returns [None] without drawing when the
    site's rate is zero or a recovery is in progress. *)

val suppressed : t -> (unit -> 'a) -> 'a
(** Run a recovery action with injection disabled (re-entrant). *)

val record_recovered : t -> Fault.t -> unit
(** Count a fault as recovered: its damage was discarded and rebuilt
    (root-snapshot rebuild, watchdog reset, sink disable). *)

type counts = { injected : int; recovered : int }

val totals : t -> counts
(** Aborted faults are the difference: [injected - recovered] is whatever
    was still latent and unretired when the campaign ended. *)

val by_site : t -> (Fault.site * counts) list

(** {2 Checkpoint support} *)

type state = {
  st_rng : int64;
  st_seq : int;
  st_injected : int array;
  st_recovered : int array;
}

val state : t -> state
val restore_state : t -> state -> unit
(** @raise Invalid_argument if the counter arrays do not match
    {!Fault.num_sites}. *)
