open Nyx_spec

(* Abstract value: everything the lattice needs about one produced value.
   A value starts Available when its producer op executes and moves to
   Consumed at most once; [uses]/[consumed_at] record the provenance chain
   reported with affine violations and dead-value warnings. *)
type absval = {
  ty : Spec.edge_ty;
  producer : int; (* op index that output this value *)
  mutable uses : int list; (* op indices that borrowed it, newest first *)
  mutable consumed_at : int option;
}

let op_site i = Printf.sprintf "op %d" i

(* Hotspot threshold: a data field that saturates a generous bound leaves
   the mutator no growth headroom. Tiny bounds (mode bytes, slot hints)
   are saturated by design and stay quiet. *)
let hotspot_min_bound = 8

let check (p : Program.t) : Diag.t list =
  let diags = ref [] in
  let emit d = diags := d :: !diags in
  let values : absval array = Array.make 16 { ty = { Spec.et_id = -1; et_name = "" }; producer = -1; uses = []; consumed_at = None } in
  let values = ref values in
  let n_values = ref 0 in
  let push v =
    if !n_values >= Array.length !values then begin
      let bigger = Array.make (2 * Array.length !values) v in
      Array.blit !values 0 bigger 0 !n_values;
      values := bigger
    end;
    !values.(!n_values) <- v;
    incr n_values
  in
  let snapshot_seen = ref false in
  let n_ops = Array.length p.Program.ops in
  Array.iteri
    (fun opi (op : Program.op) ->
      match Spec.node p.Program.spec op.Program.node with
      | exception Invalid_argument _ ->
        emit
          (Diag.error ~code:"unknown-opcode" ~site:(op_site opi)
             (Printf.sprintf "node type %d is not declared by spec %S" op.Program.node
                (Spec.name p.Program.spec)))
      | nt ->
        let name = nt.Spec.nt_name in
        if nt.Spec.nt_id = Spec.snapshot_node_id then begin
          if !snapshot_seen then
            emit
              (Diag.error ~code:"multiple-snapshots" ~site:(op_site opi)
                 "second snapshot opcode: at most one incremental snapshot per program");
          snapshot_seen := true;
          if Array.length op.Program.args <> 0 || Array.length op.Program.data <> 0 then
            emit
              (Diag.error ~code:"snapshot-carries-payload" ~site:(op_site opi)
                 "the snapshot opcode takes no arguments and carries no data");
          (* Degenerate placements: an incremental snapshot of an empty
             prefix restores nothing the root snapshot does not already
             give us; a snapshot with an empty suffix never serves a
             single mutated run (cf. §4.3). *)
          if opi = 0 then
            emit
              (Diag.warning ~code:"leading-snapshot" ~site:(op_site opi)
                 "snapshot before any interaction: the incremental snapshot \
                  duplicates the root snapshot");
          if opi = n_ops - 1 then
            emit
              (Diag.warning ~code:"trailing-snapshot" ~site:(op_site opi)
                 "snapshot after the last interaction: no suffix is ever fuzzed \
                  from it")
        end
        else begin
          let inputs = nt.Spec.borrows @ nt.Spec.consumes in
          let n_inputs = List.length inputs in
          let n_borrows = List.length nt.Spec.borrows in
          if Array.length op.Program.args <> n_inputs then
            emit
              (Diag.error ~code:"bad-arity" ~site:(op_site opi)
                 (Printf.sprintf "%s expects %d argument(s), got %d" name n_inputs
                    (Array.length op.Program.args)));
          (* Check the slots both sides agree on, so arity errors do not
             suppress independent findings. *)
          List.iteri
            (fun i expected ->
              if i < Array.length op.Program.args then begin
                let idx = op.Program.args.(i) in
                if idx < 0 || idx >= !n_values then
                  emit
                    (Diag.error ~code:"dangling-arg" ~site:(op_site opi)
                       (Printf.sprintf
                          "%s argument %d references value %d, but only values \
                           0..%d exist here"
                          name i idx (!n_values - 1)))
                else begin
                  let v = !values.(idx) in
                  (match v.consumed_at with
                  | Some at ->
                    emit
                      (Diag.error ~code:"affine-use-after-consume" ~site:(op_site opi)
                         (Printf.sprintf
                            "%s argument %d uses value %d (%s) after it was \
                             consumed: produced at op %d, consumed at op %d"
                            name i idx v.ty.Spec.et_name v.producer at))
                  | None -> ());
                  if v.ty.Spec.et_id <> expected.Spec.et_id then
                    emit
                      (Diag.error ~code:"type-mismatch" ~site:(op_site opi)
                         (Printf.sprintf
                            "%s argument %d has type %s (value %d, produced at op \
                             %d), expected %s"
                            name i v.ty.Spec.et_name idx v.producer
                            expected.Spec.et_name));
                  if i >= n_borrows then begin
                    (* A consume slot takes the value out of the available
                       set — even when its type was wrong, mirroring
                       [Program.validate]'s single-pass semantics. *)
                    if v.consumed_at = None then v.consumed_at <- Some opi
                  end
                  else v.uses <- opi :: v.uses
                end
              end)
            inputs;
          (* Data fields. *)
          let n_data = List.length nt.Spec.data in
          if Array.length op.Program.data <> n_data then
            emit
              (Diag.error ~code:"bad-data-arity" ~site:(op_site opi)
                 (Printf.sprintf "%s expects %d data field(s), got %d" name n_data
                    (Array.length op.Program.data)));
          List.iteri
            (fun i (dt : Spec.data_ty) ->
              if i < Array.length op.Program.data then begin
                let len = Bytes.length op.Program.data.(i) in
                if len > dt.Spec.max_len then
                  emit
                    (Diag.error ~code:"data-too-long" ~site:(op_site opi)
                       (Printf.sprintf "%s data field %d (%s) is %d bytes, bound is %d"
                          name i dt.Spec.dt_name len dt.Spec.max_len))
                else if len = dt.Spec.max_len && dt.Spec.max_len >= hotspot_min_bound
                then
                  emit
                    (Diag.warning ~code:"data-at-bound" ~site:(op_site opi)
                       (Printf.sprintf
                          "%s data field %d (%s) saturates its %d-byte bound: \
                           mutations cannot grow it"
                          name i dt.Spec.dt_name dt.Spec.max_len))
              end)
            nt.Spec.data;
          (* No-op interaction: carries data fields, all empty, and neither
             produces nor consumes values — executing it cannot change the
             target-visible state (an empty packet is never delivered). *)
          if
            n_data > 0
            && Array.for_all (fun d -> Bytes.length d = 0) op.Program.data
            && nt.Spec.outputs = [] && nt.Spec.consumes = []
          then
            emit
              (Diag.warning ~code:"noop-interaction" ~site:(op_site opi)
                 (Printf.sprintf "%s with every data field empty has no effect" name));
          List.iter
            (fun ty -> push { ty; producer = opi; uses = []; consumed_at = None })
            nt.Spec.outputs
        end)
    p.Program.ops;
  (* Dead values: produced but never borrowed or consumed. The op that
     produced them still ran for a reason (side effects), but the value
     itself is noise the mutator keeps rebinding to. *)
  for idx = 0 to !n_values - 1 do
    let v = !values.(idx) in
    if v.uses = [] && v.consumed_at = None then
      emit
        (Diag.warning ~code:"dead-value" ~site:(op_site v.producer)
           (Printf.sprintf "value %d (%s) is produced but never borrowed or consumed"
              idx v.ty.Spec.et_name))
  done;
  List.rev !diags

let errors p = List.filter Diag.is_error (check p)
let is_clean p = errors p = []
