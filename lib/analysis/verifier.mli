(** Program verifier: eBPF-verifier-style abstract interpretation of a
    bytecode program over an available/consumed value lattice.

    Where {!Nyx_spec.Program.validate} stops at the first structural
    problem, this pass walks the whole program, tracks every value's
    provenance (producer op, borrow sites, consume site) and reports all
    findings with precise op indices.

    Error diagnostics (any one means [Program.validate] also fails):
    [unknown-opcode], [bad-arity], [dangling-arg], [type-mismatch],
    [affine-use-after-consume] (with the produced-at / consumed-at
    provenance chain), [multiple-snapshots], [snapshot-carries-payload],
    [bad-data-arity], [data-too-long].

    Warning diagnostics (legal but wasteful, invisible to [validate]):
    [dead-value] (produced, never borrowed/consumed), [noop-interaction]
    (all data fields empty, no outputs/consumes), [leading-snapshot] /
    [trailing-snapshot] (degenerate incremental-snapshot placement,
    cf. §4.3), [data-at-bound] (a field saturating its [max_len] leaves
    mutations no growth headroom). *)

val check : Nyx_spec.Program.t -> Diag.t list
(** All diagnostics, in op order (dead-value warnings last). *)

val errors : Nyx_spec.Program.t -> Diag.t list
(** Error-severity findings only. Empty iff [validate] would accept the
    program (modulo the first-error-only difference). *)

val is_clean : Nyx_spec.Program.t -> bool
(** [errors p = []]. *)

val hotspot_min_bound : int
(** Smallest [max_len] the [data-at-bound] hotspot warning applies to. *)
