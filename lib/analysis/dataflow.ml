open Nyx_spec

(* Typestate pass over programs: the per-program side of the static
   protocol state machine in [State_graph].

   Two analyses share the value-tracking walk:

   - the abstract state path (which edge types have a live value after
     each op), used for the [state-unreachable-op] diagnostic;

   - a per-op "affecting" classification under-approximating which ops
     can change the observable protocol state the dynamic boundary probe
     hashes (netemu tables + target memory, with pure telemetry
     normalized out). An op is *statically inert* only in the one case
     the standard handlers provably cannot touch that state: a TCP
     [packet] with an empty payload on a connection whose response queue
     was already drained — [Net.send_peer] drops zero-length sends, so
     no target code runs and no queue moves. Everything else (connect,
     close, UDP datagrams — delivered even when empty — non-empty or
     undrained packets, unknown opcodes) is conservatively affecting.

   Drained tracking: a value is "drained" when the server can have
   nothing queued for it. A delivered packet runs target code that may
   write to *any* connection, so it re-taints every other value; its own
   connection is drained last in the handler ([Net.responses]). An empty
   TCP packet delivers nothing — the target never runs — so it only
   drains its own connection. The feasible-boundary prior and the
   NYX_SANITIZE conformance gate both consume this classification, so
   soundness (never call an affecting op inert) is the invariant; missing
   inert ops only costs probe hashes. *)

let inputs (nt : Spec.node_ty) = nt.Spec.borrows @ nt.Spec.consumes

let node_of spec id =
  match Spec.node spec id with nt -> Some nt | exception Invalid_argument _ -> None

let all_data_empty (op : Program.op) =
  Array.for_all (fun b -> Bytes.length b = 0) op.Program.data

(* [affecting ?udp p] classifies each non-snapshot op of [p], in
   snapshot-stripped order. *)
let affecting ?(udp = false) (p : Program.t) =
  let p = Program.strip_snapshots p in
  let n = Array.length p.Program.ops in
  let affecting = Array.make n true in
  let drained = ref [||] in
  let taint_all () = Array.fill !drained 0 (Array.length !drained) false in
  Array.iteri
    (fun i (op : Program.op) ->
      (match node_of p.Program.spec op.Program.node with
      | Some nt
        when nt.Spec.nt_name = "packet"
             && Array.length op.Program.args = 1
             && op.Program.args.(0) >= 0
             && op.Program.args.(0) < Array.length !drained ->
        let v = op.Program.args.(0) in
        let empty = all_data_empty op in
        if (not udp) && empty && !drained.(v) then affecting.(i) <- false
        else if (not udp) && empty then !drained.(v) <- true
        else begin
          (* A delivered datagram/segment runs the target, which may
             queue replies on any connection. *)
          taint_all ();
          !drained.(v) <- true
        end
      | _ -> taint_all ());
      let outs =
        match node_of p.Program.spec op.Program.node with
        | Some nt -> List.length nt.Spec.outputs
        | None -> 0
      in
      if outs > 0 then drained := Array.append !drained (Array.make outs false))
    p.Program.ops;
  affecting

(* Statically feasible snapshot-boundary indices: the dynamic probe
   hashes after each op of the stripped program and reports a boundary at
   [i + 1] when the hash moved; only an affecting op can move it, and
   boundary [n] is never interior. *)
let feasible_boundaries ?udp (p : Program.t) =
  let aff = affecting ?udp p in
  let n = Array.length aff in
  List.filter (fun b -> aff.(b - 1)) (List.init (max 0 (n - 1)) (fun i -> i + 1))

(* Abstract state path: the set of edge types with a live (unconsumed)
   value after each op of the *original* program (index 0 = before any
   op). Snapshot ops leave the state unchanged. *)
let state_path (p : Program.t) =
  let n = Array.length p.Program.ops in
  let path = Array.make (n + 1) 0 in
  let value_ty = ref [||] in
  let alive = ref [||] in
  let mask () =
    let m = ref 0 in
    Array.iteri (fun i ty -> if !alive.(i) then m := !m lor (1 lsl ty)) !value_ty;
    !m
  in
  Array.iteri
    (fun i (op : Program.op) ->
      (match node_of p.Program.spec op.Program.node with
      | Some nt when nt.Spec.nt_id <> Spec.snapshot_node_id ->
        let n_borrows = List.length nt.Spec.borrows in
        Array.iteri
          (fun slot v ->
            if slot >= n_borrows && v >= 0 && v < Array.length !alive then
              !alive.(v) <- false)
          op.Program.args;
        let outs = Array.of_list (List.map (fun e -> e.Spec.et_id) nt.Spec.outputs) in
        value_ty := Array.append !value_ty outs;
        alive := Array.append !alive (Array.make (Array.length outs) true)
      | _ -> ());
      path.(i + 1) <- mask ())
    p.Program.ops;
  path

let check ?udp (p : Program.t) : Diag.t list =
  let diags = ref [] in
  let emit d = diags := d :: !diags in
  let site i = Printf.sprintf "op %d" i in
  (* state-unreachable-op: an input edge type outside the monotone may-set
     of previously producible types — no binding of the argument slots can
     make the op executable at this position. *)
  let may = ref 0 in
  Array.iteri
    (fun i (op : Program.op) ->
      match node_of p.Program.spec op.Program.node with
      | Some nt when nt.Spec.nt_id <> Spec.snapshot_node_id ->
        List.iter
          (fun (e : Spec.edge_ty) ->
            if !may land (1 lsl e.Spec.et_id) = 0 then
              emit
                (Diag.error ~code:"state-unreachable-op" ~site:(site i)
                   (Printf.sprintf
                      "opcode %s needs a %s value but no preceding op can produce \
                       one: the abstract protocol state cannot reach this op"
                      nt.Spec.nt_name e.Spec.et_name)))
          (inputs nt);
        List.iter
          (fun (e : Spec.edge_ty) -> may := !may lor (1 lsl e.Spec.et_id))
          nt.Spec.outputs
      | _ -> ())
    p.Program.ops;
  (* redundant-prefix: maximal runs of statically inert ops. Reported in
     stripped-program indices mapped back to original op positions. *)
  let aff = affecting ?udp p in
  let orig_index =
    (* stripped index -> original index *)
    let idxs = ref [] in
    Array.iteri
      (fun i (op : Program.op) ->
        if op.Program.node <> Spec.snapshot_node_id then idxs := i :: !idxs)
      p.Program.ops;
    Array.of_list (List.rev !idxs)
  in
  let n = Array.length aff in
  let i = ref 0 in
  while !i < n do
    if not aff.(!i) then begin
      let j = ref !i in
      while !j + 1 < n && not aff.(!j + 1) do
        incr j
      done;
      emit
        (Diag.warning ~code:"redundant-prefix"
           ~site:(site orig_index.(!i))
           (Printf.sprintf
              "op%s %d..%d %s statically inert (empty packet on a drained \
               connection): the abstract protocol state repeats, so no snapshot \
               boundary is feasible inside"
              (if !j > !i then "s" else "")
              orig_index.(!i) orig_index.(!j)
              (if !j > !i then "are" else "is")));
      i := !j + 1
    end
    else incr i
  done;
  (* snapshot-past-last-transition: the ops between the last feasible
     boundary and the snapshot are inert, so the deeper placement buys no
     protocol state over the boundary itself. *)
  (match Program.snapshot_index p with
  | Some s when s > 0 && s < n ->
    let last = List.fold_left max 0 (feasible_boundaries ?udp p) in
    if s > last then
      let snap_pos =
        let pos = ref 0 in
        Array.iteri
          (fun i (op : Program.op) ->
            if op.Program.node = Spec.snapshot_node_id then pos := i)
          p.Program.ops;
        !pos
      in
      emit
        (Diag.warning ~code:"snapshot-past-last-transition" ~site:(site snap_pos)
           (Printf.sprintf
              "snapshot at packet index %d, past the last statically feasible \
               protocol-state boundary %d: every op in between is inert"
              s last))
  | _ -> ());
  List.rev !diags
