(* Domain-safety source lint: a lexical scan for top-level mutable state.

   Since PR 1, campaigns fan out across OCaml 5 domains. Every module
   shared by workers must either hold no top-level mutable state or
   document (and implement) its synchronization — the convention is a
   comment containing "domain-safe" (e.g. "Domain-safety invariant: ...")
   on or just above the binding. This lint flags top-level *value*
   bindings whose right-hand side allocates something mutable and that
   carry no such annotation. Function bindings are exempt: state they
   allocate is per call.

   It is a line-level heuristic, not a parser: good enough to catch the
   `let cache = Hashtbl.create 64` class of races before review does,
   cheap enough to run on every `make lint`. *)

type finding = { file : string; line : int; binding : string; pattern : string }

let annotation = "domain-safe"

(* Domain-safety patterns: constructors whose result is shared mutable
   state when bound at top level. Mutex/Condition are deliberately
   absent: they are the synchronization, not the hazard. *)
let patterns =
  [
    "ref"; "Hashtbl.create"; "Queue.create"; "Stack.create"; "Buffer.create";
    "Atomic.make"; "Array.make"; "Array.create"; "Array.init"; "Bytes.make";
    "Bytes.create"; "Weak.create"; "Lazy.from_fun"; "lazy";
  ]

let is_word_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  || c = '_' || c = '\''

(* Word-boundary substring search; the "word" may contain dots. *)
let contains_token line tok =
  let ll = String.length line and tl = String.length tok in
  let rec scan i =
    if i + tl > ll then false
    else if
      String.sub line i tl = tok
      && (i = 0 || not (is_word_char line.[i - 1] || line.[i - 1] = '.'))
      && (i + tl >= ll || not (is_word_char line.[i + tl] || line.[i + tl] = '.'))
    then true
    else scan (i + 1)
  in
  scan 0

let find_pattern line = List.find_opt (contains_token line) patterns

let lowercase = String.lowercase_ascii

let has_annotation line =
  let l = lowercase line in
  let al = String.length annotation and ll = String.length l in
  let rec scan i =
    if i + al > ll then false
    else if String.sub l i al = annotation then true
    else scan (i + 1)
  in
  scan 0

(* How far above a binding the annotation comment may sit. *)
let annotation_window = 5

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* A top-level `let` that binds a plain value: `let name =` or
   `let name : ty =` with nothing else between name and `=`. Returns the
   bound name. Function definitions (parameters before `=`, or we never
   find a bare `=` on the line) return None. *)
let value_binding line =
  if not (starts_with ~prefix:"let " line) then None
  else
    let rest = String.sub line 4 (String.length line - 4) in
    let rest =
      if starts_with ~prefix:"rec " rest then String.sub rest 4 (String.length rest - 4)
      else rest
    in
    let len = String.length rest in
    let rec name_end i =
      if i < len && is_word_char rest.[i] then name_end (i + 1) else i
    in
    let e = name_end 0 in
    if e = 0 then None
    else begin
      let name = String.sub rest 0 e in
      if name = "_" then None
      else
        (* Between the name and `=` only whitespace or a `:`-annotation may
           appear; a parameter means this is a function definition. *)
        let rec scan i saw_colon =
          if i >= len then if saw_colon then Some name else None (* `let x :` split across lines: treat as value *)
          else
            match rest.[i] with
            | ' ' | '\t' -> scan (i + 1) saw_colon
            | ':' -> scan (i + 1) true
            | '=' when i + 1 >= len || rest.[i + 1] <> '=' -> Some name
            | _ when saw_colon -> scan (i + 1) saw_colon (* inside the type annotation *)
            | _ -> None
        in
        scan e false
    end

let lint_string ~file contents =
  let lines = Array.of_list (String.split_on_char '\n' contents) in
  let n = Array.length lines in
  let findings = ref [] in
  let annotated_near i =
    let lo = max 0 (i - annotation_window) in
    let rec any j = j <= i && (has_annotation lines.(j) || any (j + 1)) in
    any lo
  in
  let i = ref 0 in
  while !i < n do
    (match value_binding lines.(!i) with
    | None -> incr i
    | Some name ->
      let start = !i in
      (* The binding's right-hand side: the rest of this line plus every
         continuation (indented or blank) line. *)
      let rhs = Buffer.create 64 in
      Buffer.add_string rhs lines.(start);
      incr i;
      while
        !i < n
        && (lines.(!i) = ""
           || lines.(!i).[0] = ' '
           || lines.(!i).[0] = '\t')
      do
        Buffer.add_char rhs '\n';
        Buffer.add_string rhs lines.(!i);
        incr i
      done;
      let rhs = Buffer.contents rhs in
      (* A value whose body is a closure allocates nothing shared. *)
      let body =
        match String.index_opt rhs '=' with
        | None -> ""
        | Some eq -> String.trim (String.sub rhs (eq + 1) (String.length rhs - eq - 1))
      in
      let is_closure =
        starts_with ~prefix:"fun " body || starts_with ~prefix:"function" body
        || starts_with ~prefix:"fun\n" body
      in
      if not is_closure then
        match find_pattern rhs with
        | Some pattern when not (annotated_near start || has_annotation rhs) ->
          findings := { file; line = start + 1; binding = name; pattern } :: !findings
        | _ -> ())
  done;
  List.rev !findings

let lint_file path =
  let ic = open_in_bin path in
  let contents =
    Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
        really_input_string ic (in_channel_length ic))
  in
  lint_string ~file:path contents

(* Source-tree walk for lint drivers. Build/VCS/switch directories are
   skipped wherever they appear — handing the repo root (or `.`) to a
   lint must never descend into `_build` and lint generated copies of
   the sources it just linted. *)
let skip_dir name =
  name = "_build" || name = "_opam" || name = ".git"
  || (String.length name > 0 && name.[0] = '.')

let rec ml_files_under path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort compare
    |> List.concat_map (fun f ->
           if skip_dir f then [] else ml_files_under (Filename.concat path f))
  else if Filename.check_suffix path ".ml" then [ path ]
  else []

let pp_finding ppf f =
  Format.fprintf ppf
    "%s:%d: top-level binding `%s` allocates mutable state (%s) without a %S \
     annotation"
    f.file f.line f.binding f.pattern annotation
