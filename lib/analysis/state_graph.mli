(** Static protocol state machine over a spec declaration.

    Abstract states are the sets of edge types with at least one live
    value (bitmasks over [et_id]); the start state is the empty set.
    Transitions are the constructible non-snapshot opcodes (the
    {!Spec_lint.constructible_nodes} fixpoint); a consumed edge type may
    or may not disappear, so consuming opcodes branch both ways. The
    graph over-approximates every abstract state path a valid program
    can take — the foundation for the typestate pass in {!Dataflow} and
    the DOT/JSON exports of the [lint] CLI. *)

type transition = { src : int; node : Nyx_spec.Spec.node_ty; dst : int }

type t

val build : Nyx_spec.Spec.t -> t
(** Exhaustive BFS from the empty state.
    @raise Invalid_argument if an edge-type id exceeds the bitmask range
    (60 edge types). *)

val state_count : t -> int

val reachable : t -> int list
(** All reachable state masks, sorted. *)

val dead_states : t -> int list
(** Reachable states enabling no opcode: programs reaching one can only
    stop. *)

val chatter_regions : t -> int list list
(** Strongly-connected components containing a cycle — regions where
    programs can loop without changing the abstract state, i.e. where
    only the dynamic boundary probe can tell protocol states apart. *)

val state_label : t -> int -> string
(** ["{conn,payload}"], ["{}"] for the start state. *)

val check : Nyx_spec.Spec.t -> Diag.t list
(** Spec-level findings: [state-graph-dead-state] (warning) per dead
    state. *)

val to_dot : t -> string
val to_json : t -> string
