(** Diagnostics shared by every analysis pass.

    A diagnostic names the check that fired ([code], a stable kebab-case
    identifier suitable for allowlists), where it fired ([site], e.g.
    ["op 5"] or ["node packet"]), and what went wrong. [Error] means the
    subject is broken (a program the interpreter would misexecute, a spec
    the mutator cannot use soundly); [Warning] flags constructs that are
    legal but waste fuzzing effort (dead values, degenerate snapshot
    placement); [Info] is advisory. Only errors affect exit codes. *)

type severity = Error | Warning | Info

type t = { code : string; severity : severity; site : string; msg : string }

val make : severity -> code:string -> site:string -> string -> t
val error : code:string -> site:string -> string -> t
val warning : code:string -> site:string -> string -> t
val info : code:string -> site:string -> string -> t

val severity_name : severity -> string
val is_error : t -> bool

val count : severity -> t list -> int
(** Number of diagnostics of the given severity. *)

val pp : Format.formatter -> t -> unit
(** ["error[affine-use-after-consume] op 5: ..."] *)

val to_json : t -> string
(** One JSON object; strings are escaped. *)

val json_escape : string -> string
