type entry = { subject : string; diags : Diag.t list }

type t = { entries : entry list }

let program ?udp ~subject p =
  { subject; diags = Verifier.check p @ Dataflow.check ?udp p }

let spec ~subject s = { subject; diags = Spec_lint.check s @ State_graph.check s }

let capture ~subject net_spec dissector cap =
  program ~subject (Nyx_pcap.Importer.to_seed net_spec dissector cap)

let of_entries entries = { entries }
let merge a b = { entries = a.entries @ b.entries }

let subjects t = List.length t.entries

let count sev t =
  List.fold_left (fun acc e -> acc + Diag.count sev e.diags) 0 t.entries

let errors t = count Diag.Error t
let warnings t = count Diag.Warning t
let infos t = count Diag.Info t
let is_clean t = errors t = 0

let flagged t = List.filter (fun e -> e.diags <> []) t.entries

let pp ppf t =
  let flagged = flagged t in
  Format.fprintf ppf "findings: %d error(s), %d warning(s), %d info in %d of %d subject(s)@."
    (errors t) (warnings t) (infos t) (List.length flagged) (subjects t);
  List.iter
    (fun e ->
      Format.fprintf ppf "%s:@." e.subject;
      List.iter (fun d -> Format.fprintf ppf "  %a@." Diag.pp d) e.diags)
    flagged

let to_json t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf {|{"subjects":%d,"errors":%d,"warnings":%d,"infos":%d,"entries":[|}
       (subjects t) (errors t) (warnings t) (infos t));
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf {|{"subject":"%s","diags":[%s]}|} (Diag.json_escape e.subject)
           (String.concat "," (List.map Diag.to_json e.diags))))
    (flagged t);
  Buffer.add_string buf "]}";
  Buffer.contents buf
