type severity = Error | Warning | Info

type t = { code : string; severity : severity; site : string; msg : string }

let make severity ~code ~site msg = { code; severity; site; msg }
let error ~code ~site msg = make Error ~code ~site msg
let warning ~code ~site msg = make Warning ~code ~site msg
let info ~code ~site msg = make Info ~code ~site msg

let severity_name = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let is_error d = d.severity = Error

let count sev diags = List.length (List.filter (fun d -> d.severity = sev) diags)

let pp ppf d =
  Format.fprintf ppf "%s[%s] %s: %s" (severity_name d.severity) d.code d.site d.msg

(* Minimal JSON string escaping: the diagnostics only ever carry ASCII
   produced by our own printers, but data-derived names could contain
   anything. *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when c < ' ' -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json d =
  Printf.sprintf {|{"severity":"%s","code":"%s","site":"%s","msg":"%s"}|}
    (severity_name d.severity) (json_escape d.code) (json_escape d.site)
    (json_escape d.msg)
