open Nyx_spec

(* Static protocol state machine derived from a spec declaration.

   An abstract state is the *set of edge types with at least one live
   value* (a bitmask over [et_id]s); the start state is the empty set. A
   node type is enabled in a state when every input edge type is present,
   and only constructible nodes (the [Spec_lint] fixpoint) transition at
   all — an unconstructible opcode never appears in any program. Firing a
   node adds its output types; a consumed type *may* disappear (the
   consumed value might be the last of its type) or *may* survive
   (another value of the type is still live), so consuming transitions
   branch both ways. The result over-approximates the set of abstract
   state paths any valid program can take, which is what makes
   reachability, dead states and chatter regions meaningful as spec
   lints. *)

type transition = { src : int; node : Spec.node_ty; dst : int }

type t = {
  spec_name : string;
  edge_types : (int * string) list; (* et_id, name — sorted by id *)
  states : int list; (* reachable state masks, sorted *)
  transitions : transition list;
  dead : int list; (* reachable states with no enabled transition *)
  chatter : int list list; (* SCCs that contain a cycle, each sorted *)
}

let max_edge_types = 60

let edge_types_of (nodes : Spec.node_ty array) =
  let tbl = Hashtbl.create 16 in
  Array.iter
    (fun (nt : Spec.node_ty) ->
      List.iter
        (fun (e : Spec.edge_ty) -> Hashtbl.replace tbl e.Spec.et_id e.Spec.et_name)
        (nt.Spec.borrows @ nt.Spec.consumes @ nt.Spec.outputs))
    nodes;
  Hashtbl.fold (fun id name acc -> (id, name) :: acc) tbl []
  |> List.sort compare

let mask_of edges =
  List.fold_left (fun m (e : Spec.edge_ty) -> m lor (1 lsl e.Spec.et_id)) 0 edges

(* Tarjan SCC over the reachable state graph; returns the components that
   actually contain a cycle (size > 1, or a self-loop) — the "chatter"
   regions where programs can loop without leaving the abstract state
   set, i.e. where only the dynamic probe can tell boundaries apart. *)
let chatter_sccs states succs self_loops =
  let index = Hashtbl.create 16 in
  let lowlink = Hashtbl.create 16 in
  let on_stack = Hashtbl.create 16 in
  let stack = ref [] in
  let next = ref 0 in
  let sccs = ref [] in
  let rec strongconnect v =
    Hashtbl.replace index v !next;
    Hashtbl.replace lowlink v !next;
    incr next;
    stack := v :: !stack;
    Hashtbl.replace on_stack v ();
    List.iter
      (fun w ->
        if not (Hashtbl.mem index w) then begin
          strongconnect w;
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w))
        end
        else if Hashtbl.mem on_stack w then
          Hashtbl.replace lowlink v (min (Hashtbl.find lowlink v) (Hashtbl.find index w)))
      (succs v);
    if Hashtbl.find lowlink v = Hashtbl.find index v then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
          stack := rest;
          Hashtbl.remove on_stack w;
          if w = v then w :: acc else pop (w :: acc)
      in
      sccs := pop [] :: !sccs
    end
  in
  List.iter (fun v -> if not (Hashtbl.mem index v) then strongconnect v) states;
  List.rev !sccs
  |> List.filter (fun scc ->
         match scc with
         | [ s ] -> List.mem s self_loops
         | _ -> List.length scc > 1)
  |> List.map (List.sort compare)

let build (spec : Spec.t) =
  let nodes = Spec.nodes spec in
  List.iter
    (fun (id, _) ->
      if id < 0 || id >= max_edge_types then
        invalid_arg "State_graph.build: edge-type id out of bitmask range")
    (edge_types_of nodes);
  let constructible, _ = Spec_lint.constructible_nodes nodes in
  let fireable =
    Array.to_list nodes
    |> List.filter (fun (nt : Spec.node_ty) ->
           nt.Spec.nt_id <> Spec.snapshot_node_id && constructible.(nt.Spec.nt_id))
  in
  let seen = Hashtbl.create 64 in
  let transitions = ref [] in
  let queue = Queue.create () in
  Hashtbl.replace seen 0 ();
  Queue.add 0 queue;
  while not (Queue.is_empty queue) do
    let s = Queue.pop queue in
    List.iter
      (fun (nt : Spec.node_ty) ->
        let needs = mask_of (nt.Spec.borrows @ nt.Spec.consumes) in
        if needs land s = needs then begin
          let out = mask_of nt.Spec.outputs in
          let cons = mask_of nt.Spec.consumes in
          let dsts =
            if cons = 0 then [ s lor out ]
            else [ s lor out; (s land lnot cons) lor out ]
          in
          List.sort_uniq compare dsts
          |> List.iter (fun dst ->
                 transitions := { src = s; node = nt; dst } :: !transitions;
                 if not (Hashtbl.mem seen dst) then begin
                   Hashtbl.replace seen dst ();
                   Queue.add dst queue
                 end)
        end)
      fireable
  done;
  let states = Hashtbl.fold (fun s () acc -> s :: acc) seen [] |> List.sort compare in
  let transitions = List.rev !transitions in
  let dead =
    List.filter (fun s -> not (List.exists (fun t -> t.src = s) transitions)) states
  in
  let succs v =
    List.filter_map (fun t -> if t.src = v then Some t.dst else None) transitions
    |> List.sort_uniq compare
  in
  let self_loops = List.filter (fun s -> List.mem s (succs s)) states in
  let chatter = chatter_sccs states succs self_loops in
  {
    spec_name = Spec.name spec;
    edge_types = edge_types_of nodes;
    states;
    transitions;
    dead;
    chatter;
  }

let state_count t = List.length t.states
let dead_states t = t.dead
let chatter_regions t = t.chatter
let reachable t = t.states

let state_label t mask =
  if mask = 0 then "{}"
  else
    "{"
    ^ String.concat ","
        (List.filter_map
           (fun (id, name) -> if mask land (1 lsl id) <> 0 then Some name else None)
           t.edge_types)
    ^ "}"

let check (spec : Spec.t) : Diag.t list =
  let g = build spec in
  List.map
    (fun s ->
      Diag.warning ~code:"state-graph-dead-state"
        ~site:(Printf.sprintf "state %s" (state_label g s))
        "abstract protocol state is reachable but enables no opcode: programs \
         reaching it can only stop"
    )
    g.dead

let to_dot t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "digraph %S {\n  rankdir=LR;\n" t.spec_name);
  let chatter_members = List.concat t.chatter in
  List.iter
    (fun s ->
      let attrs =
        String.concat ","
          (List.filter_map
             (fun x -> x)
             [
               Some (Printf.sprintf "label=%S" (state_label t s));
               (if s = 0 then Some "style=bold" else None);
               (if List.mem s t.dead then Some "color=red" else None);
               (if List.mem s chatter_members then Some "peripheries=2" else None);
             ])
      in
      Buffer.add_string buf (Printf.sprintf "  s%d [%s];\n" s attrs))
    t.states;
  List.iter
    (fun tr ->
      Buffer.add_string buf
        (Printf.sprintf "  s%d -> s%d [label=%S];\n" tr.src tr.dst
           tr.node.Spec.nt_name))
    t.transitions;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let to_json t =
  let buf = Buffer.create 512 in
  let str s = "\"" ^ Diag.json_escape s ^ "\"" in
  Buffer.add_string buf
    (Printf.sprintf {|{"spec":%s,"edge_types":[%s],"state_count":%d,"states":[%s]|}
       (str t.spec_name)
       (String.concat ","
          (List.map
             (fun (id, name) -> Printf.sprintf {|{"id":%d,"name":%s}|} id (str name))
             t.edge_types))
       (state_count t)
       (String.concat ","
          (List.map
             (fun s ->
               Printf.sprintf
                 {|{"mask":%d,"label":%s,"start":%b,"dead":%b,"chatter":%b}|} s
                 (str (state_label t s))
                 (s = 0) (List.mem s t.dead)
                 (List.mem s (List.concat t.chatter)))
             t.states)));
  Buffer.add_string buf
    (Printf.sprintf {|,"transitions":[%s],"dead_states":[%s],"chatter_regions":[%s]}|}
       (String.concat ","
          (List.map
             (fun tr ->
               Printf.sprintf {|{"src":%d,"node":%s,"dst":%d}|} tr.src
                 (str tr.node.Spec.nt_name) tr.dst)
             t.transitions))
       (String.concat "," (List.map string_of_int t.dead))
       (String.concat ","
          (List.map
             (fun scc -> "[" ^ String.concat "," (List.map string_of_int scc) ^ "]")
             t.chatter)));
  Buffer.contents buf
