(* Typed splicing + spec-driven generation over the affine IR. *)

open Nyx_sim
open Nyx_spec

let snap = Spec.snapshot_node_id

(* Non-snapshot node types the mutator can ever assemble the inputs of
   (the Spec_lint constructibility fixpoint, shared with State_graph). *)
let usable_nodes spec =
  let nodes = Spec.nodes spec in
  let constructible, _ = Spec_lint.constructible_nodes nodes in
  List.filter
    (fun (nt : Spec.node_ty) -> nt.Spec.nt_id <> snap && constructible.(nt.Spec.nt_id))
    (Array.to_list nodes)

let generative spec = List.length (usable_nodes spec) > 1

(* Cap a candidate to [max_ops] total ops, trimming the tail (the frozen
   prefix always fits: frozen <= original length <= max_ops). *)
let cap_ops max_ops ops =
  if Array.length ops > max_ops then Array.sub ops 0 max_ops else ops

(* Repair the affine environment, then verify offline: only clean
   candidates ever reach the executor. *)
let finish rng (p : Program.t) ops =
  let cand = Program.repair ~rng { p with Program.ops } in
  if Array.length cand.Program.ops = 0 then None
  else if Verifier.is_clean cand then Some cand
  else None

(* ------------------------------------------------------------------ *)
(* Splice: cut at state_path-compatible points.                        *)

let splice rng (ctx : Mutation_engine.ctx) (p : Program.t) =
  if Array.length ctx.mx_corpus = 0 then None
  else begin
    let frozen = min ctx.mx_frozen (Array.length p.Program.ops) in
    let donor = Rng.choose rng ctx.mx_corpus in
    let donor = Program.strip_snapshots donor in
    let dlen = Array.length donor.Program.ops in
    if dlen = 0 then None
    else begin
      let sa = Dataflow.state_path p in
      let sb = Dataflow.state_path donor in
      (* Compatible cut pairs: the abstract state after the kept prefix
         equals the state the donor suffix was built in, so every edge
         type the graft needs has at least one live value for repair to
         bind. The graft must be nonempty. *)
      let pairs = ref [] in
      let n_pairs = ref 0 in
      for i = Array.length p.Program.ops downto frozen do
        for j = dlen - 1 downto 0 do
          if sa.(i) = sb.(j) then begin
            pairs := (i, j) :: !pairs;
            incr n_pairs
          end
        done
      done;
      if !n_pairs = 0 then None
      else begin
        let cuts = Array.of_list !pairs in
        let i, j = cuts.(Rng.int rng !n_pairs) in
        let ops =
          Array.append
            (Array.sub p.Program.ops 0 i)
            (Array.sub donor.Program.ops j (dlen - j))
        in
        finish rng p (cap_ops ctx.mx_max_ops ops)
      end
    end
  end

let splice_mutator =
  { Mutation_engine.m_name = "splice"; m_base = 1.0; m_fn = splice }

(* ------------------------------------------------------------------ *)
(* Generate: concrete walk over the constructible-opcode transitions.  *)

(* The affine environment of a walk: live (unconsumed) values by edge
   type, plus the global value counter arg slots index into. *)
type env = { mutable avail : (int * Spec.edge_ty) list; mutable n_values : int }

let env_mask env =
  List.fold_left (fun m (_, (et : Spec.edge_ty)) -> m lor (1 lsl et.Spec.et_id)) 0
    env.avail

(* Replay [ops] (assumed valid) to seed the environment with the frozen
   prefix's live values, mirroring Program.validate's accounting. *)
let env_of_prefix spec ops =
  let env = { avail = []; n_values = 0 } in
  Array.iter
    (fun (op : Program.op) ->
      let nt = Spec.node spec op.Program.node in
      let n_borrows = List.length nt.Spec.borrows in
      List.iteri
        (fun i _ ->
          let v = op.Program.args.(n_borrows + i) in
          env.avail <- List.filter (fun (v', _) -> v' <> v) env.avail)
        nt.Spec.consumes;
      List.iter
        (fun ty ->
          env.avail <- (env.n_values, ty) :: env.avail;
          env.n_values <- env.n_values + 1)
        nt.Spec.outputs)
    ops;
  env

(* A node is enabled when every input type has enough live values —
   borrows may share a value, consumes need distinct ones. *)
let enabled env (nt : Spec.node_ty) =
  let have et =
    List.length
      (List.filter (fun (_, (e : Spec.edge_ty)) -> e.Spec.et_id = et) env.avail)
  in
  List.for_all (fun (et : Spec.edge_ty) -> have et.Spec.et_id >= 1) nt.Spec.borrows
  && List.for_all
       (fun (et : Spec.edge_ty) ->
         let needed =
           List.length
             (List.filter
                (fun (e : Spec.edge_ty) -> e.Spec.et_id = et.Spec.et_id)
                nt.Spec.consumes)
         in
         have et.Spec.et_id >= needed)
       nt.Spec.consumes

(* Bind one op of type [nt] against the environment and advance it. *)
let emit rng dict env (nt : Spec.node_ty) =
  let pick_of ty exclude =
    let cands =
      List.filter
        (fun (v, (e : Spec.edge_ty)) ->
          e.Spec.et_id = ty.Spec.et_id && not (List.mem v exclude))
        env.avail
    in
    fst (Rng.choose_list rng cands)
  in
  let borrow_args =
    List.map (fun ty -> pick_of ty []) nt.Spec.borrows
  in
  let consumed = ref [] in
  let consume_args =
    List.map
      (fun ty ->
        let v = pick_of ty !consumed in
        consumed := v :: !consumed;
        v)
      nt.Spec.consumes
  in
  env.avail <- List.filter (fun (v, _) -> not (List.mem v !consumed)) env.avail;
  let data =
    Array.of_list
      (List.map
         (fun (dt : Spec.data_ty) ->
           if dict <> [] && Rng.chance rng 0.5 then begin
             let tok = Rng.choose_list rng dict in
             if Bytes.length tok > dt.Spec.max_len then
               Bytes.sub tok 0 dt.Spec.max_len
             else tok
           end
           else Rng.bytes rng (Rng.int rng (min 64 (dt.Spec.max_len + 1))))
         nt.Spec.data)
  in
  List.iter
    (fun ty ->
      env.avail <- (env.n_values, ty) :: env.avail;
      env.n_values <- env.n_values + 1)
    nt.Spec.outputs;
  { Program.node = nt.Spec.nt_id; args = Array.of_list (borrow_args @ consume_args); data }

let generate ~usable ~reachable rng (ctx : Mutation_engine.ctx) (p : Program.t) =
  let frozen = min ctx.mx_frozen (Array.length p.Program.ops) in
  let room = ctx.mx_max_ops - frozen in
  if room <= 0 then None
  else begin
    let prefix = Array.sub p.Program.ops 0 frozen in
    let env = env_of_prefix p.Program.spec prefix in
    (* Half the walks steer toward a random reachable abstract state (a
       state-reaching prefix for later mutation rounds to build on);
       the other half wander freely. *)
    let target =
      if Array.length reachable > 0 && Rng.bool rng then
        Some (Rng.choose rng reachable)
      else None
    in
    let len = 1 + Rng.int rng room in
    let out = ref [] in
    (try
       for _ = 1 to len do
         let en = List.filter (enabled env) usable in
         if en = [] then raise Exit;
         let nt =
           match target with
           | Some tgt ->
             let missing = tgt land lnot (env_mask env) in
             let productive =
               List.filter
                 (fun (nt : Spec.node_ty) ->
                   List.exists
                     (fun (et : Spec.edge_ty) ->
                       missing land (1 lsl et.Spec.et_id) <> 0)
                     nt.Spec.outputs)
                 en
             in
             if productive <> [] && Rng.chance rng 0.75 then
               Rng.choose_list rng productive
             else Rng.choose_list rng en
           | None -> Rng.choose_list rng en
         in
         out := emit rng ctx.mx_dict env nt :: !out
       done
     with Exit -> ());
    match !out with
    | [] -> None
    | ops ->
      finish rng p (Array.append prefix (Array.of_list (List.rev ops)))
  end

let generate_mutator spec =
  if not (generative spec) then
    invalid_arg
      (Printf.sprintf
         "Typed_mutators.generate_mutator: spec %S is dynamic-degenerate \
          (single constructible opcode); use the havoc fallback"
         (Spec.name spec));
  let usable = usable_nodes spec in
  let graph = State_graph.build spec in
  (* Exclude the empty start state: reaching it requires no prefix. *)
  let reachable =
    Array.of_list (List.filter (fun m -> m <> 0) (State_graph.reachable graph))
  in
  {
    Mutation_engine.m_name = "generate";
    m_base = 0.35;
    m_fn = generate ~usable ~reachable;
  }

let mutators spec =
  let base = [ Mutation_engine.havoc_mutator; splice_mutator ] in
  if generative spec then base @ [ generate_mutator spec ] else base
