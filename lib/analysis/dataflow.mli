(** Typestate analysis over programs: the per-program side of
    {!State_graph}.

    Computes each program's abstract protocol state path, a sound
    per-op classification of which ops can change the observable
    protocol state (the thing the dynamic boundary probe hashes), and
    from it the {e statically feasible} snapshot-boundary indices that
    [Policy] consumes as a probe prior and the NYX_SANITIZE conformance
    gate asserts against.

    Soundness invariant: an op is classified inert only when the
    standard op handlers provably cannot touch hashed state — a TCP
    [packet] with an empty payload on an already-drained connection
    ([Net.send_peer] drops zero-length sends, so no target code runs).
    Custom handlers are outside the model: callers must not apply the
    prior when one is installed. *)

val affecting : ?udp:bool -> Nyx_spec.Program.t -> bool array
(** Per-op classification over the snapshot-stripped program; [true]
    means the op may change the hashed protocol state. [udp] marks the
    target's transport: empty datagrams are still delivered, so every
    UDP packet is affecting. *)

val feasible_boundaries : ?udp:bool -> Nyx_spec.Program.t -> int list
(** Sorted interior boundary indices [b] (in [1 .. packets-1]) at which
    the dynamic probe can possibly observe a state change: op [b-1] is
    affecting. Over-approximates the dynamically observed boundaries. *)

val state_path : Nyx_spec.Program.t -> int array
(** Edge-type bitmask of live values after each op of the original
    program ([length = ops + 1], index 0 = initial state). *)

val check : ?udp:bool -> Nyx_spec.Program.t -> Diag.t list
(** Diagnostics: [state-unreachable-op] (error — an input edge type no
    preceding op can produce), [redundant-prefix] (warning — a run of
    statically inert ops; no boundary can exist inside it),
    [snapshot-past-last-transition] (warning — the snapshot sits past
    the last feasible boundary). *)
