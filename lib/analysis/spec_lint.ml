open Nyx_spec

(* Lints a spec declaration itself: problems here are invisible to
   [Program.validate] (every individual program may be well-formed) but
   cripple fuzzing — an opcode the mutator can never construct arguments
   for is an opcode that never appears in any generated input. *)

let node_site (nt : Spec.node_ty) = Printf.sprintf "node %s" nt.Spec.nt_name

let inputs nt = nt.Spec.borrows @ nt.Spec.consumes

(* Constructibility fixpoint: a node type is constructible when every
   input edge type is producible, and an edge type is producible when
   some already-constructible node outputs it. This catches both "no node
   outputs this type at all" and bootstrap cycles (the only producer of X
   itself needs an X). *)
let constructible_nodes (nodes : Spec.node_ty array) =
  let n = Array.length nodes in
  let constructible = Array.make n false in
  let producible = Hashtbl.create 16 in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iteri
      (fun i nt ->
        if not constructible.(i)
           && List.for_all
                (fun (e : Spec.edge_ty) -> Hashtbl.mem producible e.Spec.et_id)
                (inputs nt)
        then begin
          constructible.(i) <- true;
          List.iter
            (fun (e : Spec.edge_ty) ->
              if not (Hashtbl.mem producible e.Spec.et_id) then begin
                Hashtbl.replace producible e.Spec.et_id ();
                changed := true
              end)
            nt.Spec.outputs;
          changed := true
        end)
      nodes
  done;
  (constructible, producible)

let check (spec : Spec.t) : Diag.t list =
  let diags = ref [] in
  let emit d = diags := d :: !diags in
  let nodes = Spec.nodes spec in
  (* Reserved snapshot opcode: node 0, bare. The builder API guarantees
     this; a spec assembled any other way must still honour it because the
     policies and the interpreter special-case node id 0. *)
  (if Array.length nodes = 0 then
     emit
       (Diag.error ~code:"snapshot-node-malformed" ~site:"node 0"
          "spec declares no node types; node 0 must be the reserved snapshot opcode")
   else
     let s = nodes.(0) in
     if
       s.Spec.nt_id <> Spec.snapshot_node_id
       || s.Spec.nt_name <> "snapshot"
       || inputs s <> [] || s.Spec.outputs <> [] || s.Spec.data <> []
     then
       emit
         (Diag.error ~code:"snapshot-node-malformed" ~site:"node 0"
            "node 0 must be the reserved snapshot opcode with no inputs, outputs \
             or data"));
  (* Name collisions. A duplicate node name breaks [Spec.node_by_name]
     (and with it the builder API) silently: only the first wins. *)
  let seen = Hashtbl.create 16 in
  Array.iter
    (fun (nt : Spec.node_ty) ->
      match Hashtbl.find_opt seen nt.Spec.nt_name with
      | Some first ->
        emit
          (Diag.error ~code:"node-name-collision" ~site:(node_site nt)
             (Printf.sprintf "node name %S already used by node id %d" nt.Spec.nt_name
                first))
      | None -> Hashtbl.replace seen nt.Spec.nt_name nt.Spec.nt_id)
    nodes;
  (* Edge/data name collisions are confusing in diagnostics and dumps but
     do not break dispatch (lookups are by id): warning. *)
  let edge_names = Hashtbl.create 16 and edge_ids = Hashtbl.create 16 in
  let data_names = Hashtbl.create 16 and data_ids = Hashtbl.create 16 in
  Array.iter
    (fun (nt : Spec.node_ty) ->
      List.iter
        (fun (e : Spec.edge_ty) ->
          if not (Hashtbl.mem edge_ids e.Spec.et_id) then begin
            Hashtbl.replace edge_ids e.Spec.et_id e;
            match Hashtbl.find_opt edge_names e.Spec.et_name with
            | Some other when other <> e.Spec.et_id ->
              emit
                (Diag.warning ~code:"edge-name-collision"
                   ~site:(Printf.sprintf "edge %s" e.Spec.et_name)
                   (Printf.sprintf "edge types %d and %d share the name %S" other
                      e.Spec.et_id e.Spec.et_name))
            | _ -> Hashtbl.replace edge_names e.Spec.et_name e.Spec.et_id
          end)
        (inputs nt @ nt.Spec.outputs);
      List.iter
        (fun (d : Spec.data_ty) ->
          if not (Hashtbl.mem data_ids d.Spec.dt_id) then begin
            Hashtbl.replace data_ids d.Spec.dt_id d;
            (match Hashtbl.find_opt data_names d.Spec.dt_name with
            | Some other when other <> d.Spec.dt_id ->
              emit
                (Diag.warning ~code:"data-name-collision"
                   ~site:(Printf.sprintf "data %s" d.Spec.dt_name)
                   (Printf.sprintf "data types %d and %d share the name %S" other
                      d.Spec.dt_id d.Spec.dt_name))
            | _ -> Hashtbl.replace data_names d.Spec.dt_name d.Spec.dt_id);
            (* Zero/negative bounds: the only legal payload is empty, so
               the field (and any havoc on it) is dead weight. *)
            if d.Spec.max_len <= 0 then
              emit
                (Diag.error ~code:"zero-data-bound"
                   ~site:(Printf.sprintf "data %s" d.Spec.dt_name)
                   (Printf.sprintf "data type %S has max_len %d; no payload can ever \
                                    be carried"
                      d.Spec.dt_name d.Spec.max_len))
          end)
        nt.Spec.data)
    nodes;
  (* Constructibility. *)
  let constructible, producible = constructible_nodes nodes in
  Array.iteri
    (fun i (nt : Spec.node_ty) ->
      if not constructible.(i) then begin
        let missing =
          List.filter
            (fun (e : Spec.edge_ty) -> not (Hashtbl.mem producible e.Spec.et_id))
            (inputs nt)
          |> List.map (fun (e : Spec.edge_ty) -> e.Spec.et_name)
          |> List.sort_uniq compare
        in
        emit
          (Diag.error ~code:"unconstructible-node" ~site:(node_site nt)
             (Printf.sprintf
                "no constructible node outputs %s: the mutator can never generate \
                 this opcode"
                (match missing with
                | [] -> "its input types" (* cycle through constructible deps *)
                | l -> String.concat ", " l)))
      end)
    nodes;
  (* Degenerate dynamic placement: the adaptive snapshot policy snaps
     its candidate indices to protocol-state boundaries, which need at
     least two distinct constructible opcodes to exist — a spec whose
     whole constructible surface is one non-snapshot node type generates
     single-opcode runs, the state probe can never see a boundary after
     index 0, and the policy collapses to the deepest-index heuristic.
     The provenance names the surviving node type so the spec author
     knows which half of the protocol is missing. *)
  (let usable =
     ref []
     (* constructible, non-snapshot node types *)
   in
   Array.iteri
     (fun i (nt : Spec.node_ty) ->
       if constructible.(i) && nt.Spec.nt_id <> Spec.snapshot_node_id then
         usable := nt.Spec.nt_name :: !usable)
     nodes;
   match List.rev !usable with
   | ([] | [ _ ]) as l ->
     let provenance =
       match l with
       | [ only ] -> Printf.sprintf "only constructible node type is %S" only
       | _ -> "no non-snapshot node type is constructible"
     in
     emit
       (Diag.warning ~code:"dynamic-degenerate" ~site:"spec"
          (Printf.sprintf
             "%s: generated programs repeat one opcode, so the dynamic \
              placement policy can never find a state boundary after index 0"
             provenance))
   | _ -> ());
  (* Unused edge types: producible but never an input anywhere — every
     value of this type is born dead. *)
  let input_edges = Hashtbl.create 16 in
  Array.iter
    (fun nt ->
      List.iter
        (fun (e : Spec.edge_ty) -> Hashtbl.replace input_edges e.Spec.et_id ())
        (inputs nt))
    nodes;
  Hashtbl.iter
    (fun id (e : Spec.edge_ty) ->
      if not (Hashtbl.mem input_edges id)
         && Array.exists
              (fun nt ->
                List.exists (fun (o : Spec.edge_ty) -> o.Spec.et_id = id) nt.Spec.outputs)
              nodes
      then
        emit
          (Diag.warning ~code:"unused-edge-type"
             ~site:(Printf.sprintf "edge %s" e.Spec.et_name)
             (Printf.sprintf "edge type %S is output but no node borrows or consumes \
                              it"
                e.Spec.et_name)))
    edge_ids;
  List.rev !diags

let errors spec = List.filter Diag.is_error (check spec)
let is_clean spec = errors spec = []
