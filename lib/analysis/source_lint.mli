(** Domain-safety source lint.

    A lexical scan of OCaml sources for top-level value bindings that
    allocate mutable state ([ref], [Hashtbl.create], [Array.make], ...)
    without the repo's domain-safety annotation — a comment containing
    ["domain-safe"] (case-insensitive) on the binding or within a few
    lines above it. Campaigns run across OCaml 5 domains (PR 1), so any
    unannotated top-level mutable binding in a shared library is a
    candidate data race. Function definitions are exempt: what they
    allocate is per call.

    This is a heuristic line scanner, not a parser; it is meant to run
    from [make lint] and flag candidates for human review. *)

type finding = {
  file : string;
  line : int;  (** 1-based line of the [let]. *)
  binding : string;  (** Name bound at top level. *)
  pattern : string;  (** The mutable-state constructor that matched. *)
}

val annotation : string
(** The substring that suppresses a finding: ["domain-safe"]. *)

val lint_string : file:string -> string -> finding list
(** Lint source text; [file] is used only for reporting. *)

val lint_file : string -> finding list
(** Read and lint one [.ml] file. *)

val ml_files_under : string -> string list
(** All [.ml] files under a path (a file is returned as itself),
    deterministic order, skipping [_build], [_opam], [.git] and any
    other dot-directory at every level — so lint drivers handed [.] or
    a parent directory never descend into build artifacts. *)

val pp_finding : Format.formatter -> finding -> unit
