(** Seed/corpus auditor: runs the verifier/linter over collections of
    subjects (PCAP-imported seeds, live corpus entries, spec declarations)
    and aggregates the diagnostics into one findings report with pretty
    and JSON renderings. *)

type entry = { subject : string; diags : Diag.t list }

type t

val program : ?udp:bool -> subject:string -> Nyx_spec.Program.t -> entry
(** Verifier + {!Dataflow} typestate findings for one program. [udp]
    marks the target transport for the inertness classification. *)

val spec : subject:string -> Nyx_spec.Spec.t -> entry
(** Spec-linter + {!State_graph} findings for one spec declaration. *)

val capture :
  subject:string ->
  Nyx_spec.Net_spec.t ->
  Nyx_pcap.Dissector.t ->
  Nyx_pcap.Capture.t ->
  entry
(** Import a capture through the standard PCAP→seed pipeline and audit
    the resulting seed program. *)

val of_entries : entry list -> t
val merge : t -> t -> t

val subjects : t -> int
val errors : t -> int
val warnings : t -> int
val infos : t -> int

val is_clean : t -> bool
(** No error-severity findings (warnings allowed). *)

val flagged : t -> entry list
(** Only the entries with at least one diagnostic. *)

val pp : Format.formatter -> t -> unit
val to_json : t -> string
