(** Typed mutators over the affine IR: the analysis-backed half of the
    {!Nyx_spec.Mutation_engine} (ISSUE 9; Fuzzilli direction).

    Two mutators ride on the static machinery this library already has:

    - {b splice} cuts the program and a corpus donor at
      {!Dataflow.state_path}-compatible points (equal live edge-type
      bitmasks) and grafts the donor suffix onto the program prefix;
      {!Nyx_spec.Program.repair} rebinds the grafted args against the
      live affine environment.
    - {b generate} synthesizes a fresh suffix (whole program when no
      prefix is frozen) by concretely walking the constructible-opcode
      transitions of {!State_graph}: half the walks are free, half
      steer toward a random reachable abstract state (a state-reaching
      prefix), with data fields drawn from the token dictionary.

    Every candidate is verified offline with {!Verifier} before it is
    returned — generate, verify, execute clean programs only. Both
    mutators return [None] (engine falls back to havoc) when no
    candidate survives. *)

val generative : Nyx_spec.Spec.t -> bool
(** Whether the generator is armed for [spec]: false exactly when the
    spec is {!Spec_lint} [dynamic-degenerate] (at most one
    constructible non-snapshot node type) — walking a one-node graph
    would only replay the same opcode, so such specs fall back to
    havoc. *)

val splice_mutator : Nyx_spec.Mutation_engine.mutator
(** Name ["splice"], base weight 1.0. *)

val generate_mutator : Nyx_spec.Spec.t -> Nyx_spec.Mutation_engine.mutator
(** Name ["generate"], base weight 0.35 (tuned on the mutation_matrix
    bench: whole-program synthesis pays off as occasional exploration,
    not as the main course). Precomputes the state graph and the
    constructibility fixpoint for [spec].
    @raise Invalid_argument when [generative spec] is false. *)

val mutators : Nyx_spec.Spec.t -> Nyx_spec.Mutation_engine.mutator list
(** The typed engine's mutator list: [havoc; splice; generate], with
    [generate] omitted on degenerate specs (havoc stays at index 0 as
    the total fallback). *)
