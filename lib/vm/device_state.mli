(** Emulated-device state.

    QEMU devices (interrupt controller, timers, virtio queues...) carry
    state outside guest memory that a whole-VM snapshot must capture. We
    model it as one opaque blob. Two reset paths exist, matching §5.3's
    "faster emulated device resets": Nyx's custom fast reset and QEMU's
    generic serialize/deserialize (used by the Agamotto baseline). *)

type t

val create : size:int -> t
val size : t -> int

val write : t -> int -> bytes -> unit
(** Guest/device activity mutating the state. @raise Invalid_argument on
    out-of-range. *)

val read : t -> int -> int -> bytes

val capture : t -> bytes
(** Copy of the full blob (snapshot create side; cost charged by caller). *)

val restore_fast : t -> Nyx_sim.Clock.t -> bytes -> unit
(** Nyx's custom device reset: charges {!Nyx_sim.Cost.device_fast_reset}. *)

val restore_serialized : t -> Nyx_sim.Clock.t -> bytes -> unit
(** QEMU's generic route: charges {!Nyx_sim.Cost.device_serialize_reset}. *)
