type t = { mem : Memory.t; clock : Nyx_sim.Clock.t }

exception Out_of_memory
exception Heap_oob of { base : int; off : int; len : int }

(* Guest address 0 holds the break pointer; allocations start at 16. *)
let brk_addr = 0
let heap_start = 16

let init mem clock =
  let t = { mem; clock } in
  if Memory.read_i64 mem brk_addr = 0 then Memory.write_i64 mem brk_addr heap_start;
  t

let memory t = t.mem

let charge t n =
  Nyx_sim.Clock.advance t.clock (Nyx_sim.Cost.guest_mem_op + Nyx_sim.Cost.guest_mem_per_byte n)

let align8 n = (n + 7) land lnot 7

let alloc t n =
  if n < 0 then invalid_arg "Guest_heap.alloc: negative size";
  let brk = Memory.read_i64 t.mem brk_addr in
  let total = 8 + align8 n in
  if brk + total > Memory.size_bytes t.mem then raise Out_of_memory;
  Memory.write_i64 t.mem brk n;
  Memory.write_i64 t.mem brk_addr (brk + total);
  charge t total;
  brk + 8

let size_of t base = Memory.read_i64 t.mem (base - 8)

let get_u8 t a = charge t 1; Memory.read_u8 t.mem a
let set_u8 t a v = charge t 1; Memory.write_u8 t.mem a v
let get_u16 t a = charge t 2; Memory.read_u16 t.mem a
let set_u16 t a v = charge t 2; Memory.write_u16 t.mem a v
let get_i32 t a = charge t 4; Memory.read_i32 t.mem a
let set_i32 t a v = charge t 4; Memory.write_i32 t.mem a v
let get_i64 t a = charge t 8; Memory.read_i64 t.mem a
let set_i64 t a v = charge t 8; Memory.write_i64 t.mem a v

let get_bytes t a len =
  charge t len;
  Memory.read t.mem a len

let set_bytes t a b =
  charge t (Bytes.length b);
  Memory.write t.mem a b

let checked_get t ~base ~off ~len =
  if off < 0 || len < 0 || off + len > size_of t base then
    raise (Heap_oob { base; off; len });
  get_bytes t (base + off) len

let checked_set t ~base ~off data =
  let len = Bytes.length data in
  if off < 0 || off + len > size_of t base then raise (Heap_oob { base; off; len });
  set_bytes t (base + off) data
