(** Dirty-page tracking.

    Models the two mechanisms contrasted in §2.3 of the paper: KVM keeps a
    dirty {e bitmap} with one byte per guest page, which a consumer such as
    Agamotto must scan in full to enumerate dirty pages; Nyx additionally
    maintains a {e stack} of dirtied page frame numbers so enumeration is
    proportional to the number of dirty pages only. Both views are kept
    here, and the two [iter_*] functions charge their respective costs so
    the Figure 6 crossover arises from the real data structures. *)

type t

val create : num_pages:int -> t

val mark : t -> int -> bool
(** [mark t pfn] records a write to page [pfn]. Returns [true] when the
    page was clean before (first dirtying pushes onto the stack; repeats
    are absorbed by the bitmap check, as in KVM's dirty logging). *)

val is_dirty : t -> int -> bool
val count : t -> int
(** Number of distinct dirty pages. *)

val num_pages : t -> int

val iter_stack : t -> Nyx_sim.Clock.t -> (int -> unit) -> unit
(** Enumerate dirty pages via Nyx's stack, charging
    {!Nyx_sim.Cost.dirty_stack_entry} per entry. *)

val iter_bitmap : t -> Nyx_sim.Clock.t -> (int -> unit) -> unit
(** Enumerate dirty pages by scanning the whole bitmap, charging
    {!Nyx_sim.Cost.bitmap_scan_per_page} per page in the VM — the
    Agamotto strategy. *)

val to_list : t -> int list
(** Dirty page frame numbers in dirtying order (no cost; test helper). *)

val clear : t -> unit
(** Reset all entries using the stack (cost-free; folded into the restore
    costs charged by the snapshot engines). *)
