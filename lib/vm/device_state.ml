type t = { blob : Bytes.t }

let create ~size = { blob = Bytes.make size '\000' }

let size t = Bytes.length t.blob

let write t off data =
  if off < 0 || off + Bytes.length data > Bytes.length t.blob then
    invalid_arg "Device_state.write: out of range";
  Bytes.blit data 0 t.blob off (Bytes.length data)

let read t off len =
  if off < 0 || off + len > Bytes.length t.blob then
    invalid_arg "Device_state.read: out of range";
  Bytes.sub t.blob off len

let capture t = Bytes.copy t.blob

let apply t saved =
  if Bytes.length saved <> Bytes.length t.blob then
    invalid_arg "Device_state.restore: size mismatch";
  Bytes.blit saved 0 t.blob 0 (Bytes.length saved)

let restore_fast t clock saved =
  Nyx_sim.Clock.advance clock Nyx_sim.Cost.device_fast_reset;
  apply t saved

let restore_serialized t clock saved =
  Nyx_sim.Clock.advance clock Nyx_sim.Cost.device_serialize_reset;
  apply t saved
