type t = {
  bitmap : Bytes.t;
  mutable stack : int array;
  mutable stack_len : int;
  pages : int;
}

let create ~num_pages =
  if num_pages <= 0 then invalid_arg "Dirty_log.create: num_pages must be positive";
  { bitmap = Bytes.make num_pages '\000'; stack = Array.make 64 0; stack_len = 0; pages = num_pages }

let num_pages t = t.pages

let is_dirty t pfn = Bytes.get t.bitmap pfn <> '\000'

let push t pfn =
  if t.stack_len = Array.length t.stack then begin
    let bigger = Array.make (2 * Array.length t.stack) 0 in
    Array.blit t.stack 0 bigger 0 t.stack_len;
    t.stack <- bigger
  end;
  t.stack.(t.stack_len) <- pfn;
  t.stack_len <- t.stack_len + 1

let mark t pfn =
  if pfn < 0 || pfn >= t.pages then invalid_arg "Dirty_log.mark: pfn out of range";
  if is_dirty t pfn then false
  else begin
    Bytes.set t.bitmap pfn '\001';
    push t pfn;
    true
  end

let count t = t.stack_len

let iter_stack t clock f =
  Nyx_sim.Clock.advance clock (t.stack_len * Nyx_sim.Cost.dirty_stack_entry);
  for i = 0 to t.stack_len - 1 do
    f t.stack.(i)
  done

let iter_bitmap t clock f =
  Nyx_sim.Clock.advance clock (t.pages * Nyx_sim.Cost.bitmap_scan_per_page);
  for pfn = 0 to t.pages - 1 do
    if is_dirty t pfn then f pfn
  done

let to_list t = Array.to_list (Array.sub t.stack 0 t.stack_len)

let clear t =
  for i = 0 to t.stack_len - 1 do
    Bytes.set t.bitmap t.stack.(i) '\000'
  done;
  t.stack_len <- 0
