type t = {
  base : (int, Bytes.t) Hashtbl.t;
  mutable incremental : (int, Bytes.t) Hashtbl.t option;
  mutable overlay : (int, Bytes.t) Hashtbl.t;
  sectors : int;
  sector_size : int;
  clock : Nyx_sim.Clock.t;
}

let create ?(sector_size = 512) ~sectors clock =
  if sectors <= 0 then invalid_arg "Disk.create: sectors must be positive";
  {
    base = Hashtbl.create 64;
    incremental = None;
    overlay = Hashtbl.create 64;
    sectors;
    sector_size;
    clock;
  }

let sectors t = t.sectors
let sector_size t = t.sector_size

let check t sector len =
  if sector < 0 || sector >= t.sectors then invalid_arg "Disk: sector out of range";
  if len <> t.sector_size then invalid_arg "Disk: payload must be one sector"

let write_base t sector data =
  check t sector (Bytes.length data);
  Hashtbl.replace t.base sector (Bytes.copy data)

let read_sector t sector =
  check t sector t.sector_size;
  Nyx_sim.Clock.advance t.clock Nyx_sim.Cost.disk_sector_op;
  let lookup table = Hashtbl.find_opt table sector in
  let found =
    match lookup t.overlay with
    | Some s -> Some s
    | None -> (
      match t.incremental with
      | Some inc -> (
        match lookup inc with Some s -> Some s | None -> lookup t.base)
      | None -> lookup t.base)
  in
  match found with
  | Some s -> Bytes.copy s
  | None -> Bytes.make t.sector_size '\000'

let write_sector t sector data =
  check t sector (Bytes.length data);
  Nyx_sim.Clock.advance t.clock Nyx_sim.Cost.disk_sector_op;
  Hashtbl.replace t.overlay sector (Bytes.copy data)

let dirty_sectors t = Hashtbl.length t.overlay

let discard_overlays t =
  t.overlay <- Hashtbl.create 64;
  t.incremental <- None

let freeze_incremental t =
  (match t.incremental with
  | None -> t.incremental <- Some t.overlay
  | Some inc ->
    (* A second freeze merges the running overlay into the incremental
       layer: newer sectors win. *)
    Hashtbl.iter (fun k v -> Hashtbl.replace inc k v) t.overlay);
  t.overlay <- Hashtbl.create 64

let reset_to_incremental t = t.overlay <- Hashtbl.create 64

let drop_incremental t =
  t.incremental <- None;
  t.overlay <- Hashtbl.create 64
