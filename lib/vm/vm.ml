type config = { mem_pages : int; device_size : int; disk_sectors : int }

let fuzz_config = { mem_pages = 32_768; device_size = 4_096; disk_sectors = 1_024 }
let small_config = { mem_pages = 131_072; device_size = 4_096; disk_sectors = 1_024 }
let large_config = { mem_pages = 1_048_576; device_size = 4_096; disk_sectors = 1_024 }

type t = {
  mem : Memory.t;
  heap : Guest_heap.t;
  device : Device_state.t;
  disk : Disk.t;
  clock : Nyx_sim.Clock.t;
  mutable faults : Nyx_resilience.Plan.t option;
}

let create ?(config = fuzz_config) clock =
  let mem = Memory.create ~num_pages:config.mem_pages in
  {
    mem;
    heap = Guest_heap.init mem clock;
    device = Device_state.create ~size:config.device_size;
    disk = Disk.create ~sectors:config.disk_sectors clock;
    clock;
    faults = None;
  }

let arm_faults t plan = t.faults <- Some plan

let faults t = t.faults

(* The dirty-page log is the VM-layer structure the snapshot engine trusts
   to enumerate what changed; losing entries from it silently truncates
   the next incremental snapshot. This is the lib/vm injection point — the
   engine consults it while copying the dirty set. *)
let dirty_loss_fault t =
  match t.faults with
  | None -> None
  | Some plan ->
    Nyx_resilience.Plan.fire plan Nyx_resilience.Fault.Dirty_loss
      ~vns:(Nyx_sim.Clock.now_ns t.clock)

let dirty_pages t = Dirty_log.count (Memory.dirty t.mem)
