type config = { mem_pages : int; device_size : int; disk_sectors : int }

let fuzz_config = { mem_pages = 32_768; device_size = 4_096; disk_sectors = 1_024 }
let small_config = { mem_pages = 131_072; device_size = 4_096; disk_sectors = 1_024 }
let large_config = { mem_pages = 1_048_576; device_size = 4_096; disk_sectors = 1_024 }

type t = {
  mem : Memory.t;
  heap : Guest_heap.t;
  device : Device_state.t;
  disk : Disk.t;
  clock : Nyx_sim.Clock.t;
}

let create ?(config = fuzz_config) clock =
  let mem = Memory.create ~num_pages:config.mem_pages in
  {
    mem;
    heap = Guest_heap.init mem clock;
    device = Device_state.create ~size:config.device_size;
    disk = Disk.create ~sectors:config.disk_sectors clock;
    clock;
  }

let dirty_pages t = Dirty_log.count (Memory.dirty t.mem)
