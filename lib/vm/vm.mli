(** A simulated virtual machine: guest memory, device state, and disk,
    sharing one virtual clock. This is the substrate the snapshot engines
    operate on, substituting for the paper's KVM/QEMU VM (DESIGN.md §1). *)

type config = {
  mem_pages : int;
  device_size : int;  (** bytes of emulated-device state *)
  disk_sectors : int;
}

val fuzz_config : config
(** Small guest used for fuzzing campaigns (32 Ki pages). *)

val small_config : config
(** The paper's 512 MB VM: 131,072 pages (Figure 6). *)

val large_config : config
(** The paper's 4 GB VM: 1,048,576 pages (Figure 6). *)

type t = {
  mem : Memory.t;
  heap : Guest_heap.t;
  device : Device_state.t;
  disk : Disk.t;
  clock : Nyx_sim.Clock.t;
  mutable faults : Nyx_resilience.Plan.t option;
      (** armed fault-injection plan, if any (see {!arm_faults}) *)
}

val create : ?config:config -> Nyx_sim.Clock.t -> t
(** Fresh VM with all-zero memory ([config] defaults to
    {!fuzz_config}); no fault plan armed. *)

val arm_faults : t -> Nyx_resilience.Plan.t -> unit
(** Attach a deterministic fault plan. The VM and the layers above it
    (snapshot engine, executor) consult it at their instrumented points;
    with no plan armed every consultation is one option branch. *)

val faults : t -> Nyx_resilience.Plan.t option

val dirty_loss_fault : t -> Nyx_resilience.Fault.t option
(** Consult the plan's [Dirty_loss] site at the current virtual time —
    the VM-layer injection point, fired while the snapshot engine copies
    the dirty-page set (a lost log entry silently truncates the
    incremental image). [None] when no plan is armed. *)

val dirty_pages : t -> int
(** Pages dirtied since the last {!Memory.clear_dirty}. *)
