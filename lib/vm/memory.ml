type t = {
  pages : (int, Bytes.t) Hashtbl.t;
  num_pages : int;
  dirty : Dirty_log.t;
}

exception Fault of { addr : int; size : int }

let create ~num_pages =
  { pages = Hashtbl.create 256; num_pages; dirty = Dirty_log.create ~num_pages }

let num_pages t = t.num_pages
let size_bytes t = t.num_pages * Page.size
let dirty t = t.dirty

let check t addr len =
  if addr < 0 || len < 0 || addr + len > size_bytes t then
    raise (Fault { addr; size = len })

let materialize t pfn =
  match Hashtbl.find_opt t.pages pfn with
  | Some p -> p
  | None ->
    let p = Page.zero () in
    Hashtbl.replace t.pages pfn p;
    p

let read t addr len =
  check t addr len;
  let out = Bytes.create len in
  let pos = ref 0 in
  while !pos < len do
    let a = addr + !pos in
    let pfn = Page.number a and off = Page.offset a in
    let chunk = min (len - !pos) (Page.size - off) in
    (match Hashtbl.find_opt t.pages pfn with
    | Some p -> Bytes.blit p off out !pos chunk
    | None -> Bytes.fill out !pos chunk '\000');
    pos := !pos + chunk
  done;
  out

let write t addr data =
  let len = Bytes.length data in
  check t addr len;
  let pos = ref 0 in
  while !pos < len do
    let a = addr + !pos in
    let pfn = Page.number a and off = Page.offset a in
    let chunk = min (len - !pos) (Page.size - off) in
    let p = materialize t pfn in
    Bytes.blit data !pos p off chunk;
    ignore (Dirty_log.mark t.dirty pfn);
    pos := !pos + chunk
  done

let read_u8 t addr = Char.code (Bytes.get (read t addr 1) 0)

let write_u8 t addr v =
  let b = Bytes.create 1 in
  Bytes.set b 0 (Char.chr (v land 0xff));
  write t addr b

let read_u16 t addr =
  let b = read t addr 2 in
  Char.code (Bytes.get b 0) lor (Char.code (Bytes.get b 1) lsl 8)

let write_u16 t addr v =
  let b = Bytes.create 2 in
  Bytes.set b 0 (Char.chr (v land 0xff));
  Bytes.set b 1 (Char.chr ((v lsr 8) land 0xff));
  write t addr b

let read_i32 t addr =
  let b = read t addr 4 in
  let v = ref 0 in
  for i = 3 downto 0 do
    v := (!v lsl 8) lor Char.code (Bytes.get b i)
  done;
  (* Sign-extend from 32 bits. *)
  (!v lsl (Sys.int_size - 32)) asr (Sys.int_size - 32)

let write_i32 t addr v =
  let b = Bytes.create 4 in
  for i = 0 to 3 do
    Bytes.set b i (Char.chr ((v lsr (8 * i)) land 0xff))
  done;
  write t addr b

let read_i64 t addr =
  let b = read t addr 8 in
  let v = ref 0L in
  for i = 7 downto 0 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code (Bytes.get b i)))
  done;
  Int64.to_int !v

let write_i64 t addr v =
  let b = Bytes.create 8 in
  let v64 = Int64.of_int v in
  for i = 0 to 7 do
    let byte = Int64.to_int (Int64.logand (Int64.shift_right_logical v64 (8 * i)) 0xFFL) in
    Bytes.set b i (Char.chr byte)
  done;
  write t addr b

let clear_dirty t = Dirty_log.clear t.dirty

let page_content t pfn =
  match Hashtbl.find_opt t.pages pfn with
  | Some p -> Some (Bytes.copy p)
  | None -> None

let set_page t pfn content =
  if Bytes.length content <> Page.size then
    invalid_arg "Memory.set_page: wrong page size";
  match Hashtbl.find_opt t.pages pfn with
  | Some p -> Bytes.blit content 0 p 0 Page.size
  | None -> Hashtbl.replace t.pages pfn (Bytes.copy content)

let drop_page t pfn = Hashtbl.remove t.pages pfn

let materialized t =
  Hashtbl.to_seq t.pages

let materialized_count t = Hashtbl.length t.pages
