type t = {
  pages : (int, Bytes.t) Hashtbl.t;
  num_pages : int;
  dirty : Dirty_log.t;
}

exception Fault of { addr : int; size : int }

let create ~num_pages =
  { pages = Hashtbl.create 256; num_pages; dirty = Dirty_log.create ~num_pages }

let num_pages t = t.num_pages
let size_bytes t = t.num_pages * Page.size
let dirty t = t.dirty

let check t addr len =
  if addr < 0 || len < 0 || addr + len > size_bytes t then
    raise (Fault { addr; size = len })

let materialize t pfn =
  match Hashtbl.find_opt t.pages pfn with
  | Some p -> p
  | None ->
    let p = Page.zero () in
    Hashtbl.replace t.pages pfn p;
    p

let read t addr len =
  check t addr len;
  let out = Bytes.create len in
  let pos = ref 0 in
  while !pos < len do
    let a = addr + !pos in
    let pfn = Page.number a and off = Page.offset a in
    let chunk = min (len - !pos) (Page.size - off) in
    (match Hashtbl.find_opt t.pages pfn with
    | Some p -> Bytes.blit p off out !pos chunk
    | None -> Bytes.fill out !pos chunk '\000');
    pos := !pos + chunk
  done;
  out

let write t addr data =
  let len = Bytes.length data in
  check t addr len;
  let pos = ref 0 in
  while !pos < len do
    let a = addr + !pos in
    let pfn = Page.number a and off = Page.offset a in
    let chunk = min (len - !pos) (Page.size - off) in
    let p = materialize t pfn in
    Bytes.blit data !pos p off chunk;
    ignore (Dirty_log.mark t.dirty pfn);
    pos := !pos + chunk
  done

(* Scalar accessors: the interpreter, guest heap and targets hammer these
   on every emulated instruction, so accesses that stay inside one page
   take a non-allocating fast path (direct page lookup, little-endian
   Bytes accessors, one dirty mark). Only page-straddling accesses fall
   back to the generic multi-page read/write loop. *)

let single_page addr len = Page.offset addr + len <= Page.size

let read_u8 t addr =
  check t addr 1;
  match Hashtbl.find_opt t.pages (Page.number addr) with
  | Some p -> Char.code (Bytes.get p (Page.offset addr))
  | None -> 0

let write_u8 t addr v =
  check t addr 1;
  let pfn = Page.number addr in
  let p = materialize t pfn in
  Bytes.set p (Page.offset addr) (Char.chr (v land 0xff));
  ignore (Dirty_log.mark t.dirty pfn)

let read_u16 t addr =
  if single_page addr 2 then begin
    check t addr 2;
    match Hashtbl.find_opt t.pages (Page.number addr) with
    | Some p -> Bytes.get_uint16_le p (Page.offset addr)
    | None -> 0
  end
  else begin
    let b = read t addr 2 in
    Char.code (Bytes.get b 0) lor (Char.code (Bytes.get b 1) lsl 8)
  end

let write_u16 t addr v =
  if single_page addr 2 then begin
    check t addr 2;
    let pfn = Page.number addr in
    let p = materialize t pfn in
    Bytes.set_uint16_le p (Page.offset addr) (v land 0xffff);
    ignore (Dirty_log.mark t.dirty pfn)
  end
  else begin
    let b = Bytes.create 2 in
    Bytes.set b 0 (Char.chr (v land 0xff));
    Bytes.set b 1 (Char.chr ((v lsr 8) land 0xff));
    write t addr b
  end

let read_i32 t addr =
  if single_page addr 4 then begin
    check t addr 4;
    match Hashtbl.find_opt t.pages (Page.number addr) with
    | Some p -> Int32.to_int (Bytes.get_int32_le p (Page.offset addr))
    | None -> 0
  end
  else begin
    let b = read t addr 4 in
    let v = ref 0 in
    for i = 3 downto 0 do
      v := (!v lsl 8) lor Char.code (Bytes.get b i)
    done;
    (* Sign-extend from 32 bits. *)
    (!v lsl (Sys.int_size - 32)) asr (Sys.int_size - 32)
  end

let write_i32 t addr v =
  if single_page addr 4 then begin
    check t addr 4;
    let pfn = Page.number addr in
    let p = materialize t pfn in
    Bytes.set_int32_le p (Page.offset addr) (Int32.of_int v);
    ignore (Dirty_log.mark t.dirty pfn)
  end
  else begin
    let b = Bytes.create 4 in
    for i = 0 to 3 do
      Bytes.set b i (Char.chr ((v lsr (8 * i)) land 0xff))
    done;
    write t addr b
  end

let read_i64 t addr =
  if single_page addr 8 then begin
    check t addr 8;
    match Hashtbl.find_opt t.pages (Page.number addr) with
    | Some p -> Int64.to_int (Bytes.get_int64_le p (Page.offset addr))
    | None -> 0
  end
  else begin
    let b = read t addr 8 in
    let v = ref 0L in
    for i = 7 downto 0 do
      v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code (Bytes.get b i)))
    done;
    Int64.to_int !v
  end

let write_i64 t addr v =
  if single_page addr 8 then begin
    check t addr 8;
    let pfn = Page.number addr in
    let p = materialize t pfn in
    Bytes.set_int64_le p (Page.offset addr) (Int64.of_int v);
    ignore (Dirty_log.mark t.dirty pfn)
  end
  else begin
    let b = Bytes.create 8 in
    let v64 = Int64.of_int v in
    for i = 0 to 7 do
      let byte =
        Int64.to_int (Int64.logand (Int64.shift_right_logical v64 (8 * i)) 0xFFL)
      in
      Bytes.set b i (Char.chr byte)
    done;
    write t addr b
  end

let clear_dirty t = Dirty_log.clear t.dirty

let page_content t pfn =
  match Hashtbl.find_opt t.pages pfn with
  | Some p -> Some (Bytes.copy p)
  | None -> None

let set_page t pfn content =
  if Bytes.length content <> Page.size then
    invalid_arg "Memory.set_page: wrong page size";
  match Hashtbl.find_opt t.pages pfn with
  | Some p -> Bytes.blit content 0 p 0 Page.size
  | None -> Hashtbl.replace t.pages pfn (Bytes.copy content)

let drop_page t pfn = Hashtbl.remove t.pages pfn

let materialized t =
  Hashtbl.to_seq t.pages

let materialized_count t = Hashtbl.length t.pages
