(** Sparse guest-physical memory.

    Pages are materialized on first write; unmaterialized pages read as
    zeroes. Every write marks the touched pages in the {!Dirty_log}, which
    is what the snapshot engines consume. Reads and writes are cost-free at
    this layer — costs are charged by the callers that model an actual
    mechanism (guest heap accessors, snapshot engines). *)

type t

exception Fault of { addr : int; size : int }
(** Guest-physical access outside the address space — the simulated
    equivalent of an EPT violation the fuzzer reports as a crash. *)

val create : num_pages:int -> t
val num_pages : t -> int
val size_bytes : t -> int
val dirty : t -> Dirty_log.t

val read : t -> int -> int -> bytes
(** [read t addr len] may span pages. @raise Fault on out-of-range. *)

val write : t -> int -> bytes -> unit
(** May span pages; marks all touched pages dirty. @raise Fault. *)

val read_u8 : t -> int -> int
val write_u8 : t -> int -> int -> unit
val read_u16 : t -> int -> int
val write_u16 : t -> int -> int -> unit
val read_i32 : t -> int -> int
val write_i32 : t -> int -> int -> unit
val read_i64 : t -> int -> int
val write_i64 : t -> int -> int -> unit
(** Little-endian fixed-width accessors ([i64] uses OCaml's 63-bit int).
    Accesses contained in a single page take a non-allocating fast path;
    page-straddling accesses fall back to {!read}/{!write} with identical
    semantics (zero-fill reads, per-page dirty marking, {!Fault}s). *)

val clear_dirty : t -> unit

(** {1 Snapshot-engine interface}

    These bypass dirty tracking: they implement snapshot create/restore
    rather than guest execution. *)

val page_content : t -> int -> bytes option
(** [None] when the page was never materialized (all zero). The returned
    bytes are a copy. *)

val set_page : t -> int -> bytes -> unit
(** Overwrite a page without marking it dirty. *)

val drop_page : t -> int -> unit
(** Return a page to the pristine zero state without marking it dirty. *)

val materialized : t -> (int * bytes) Seq.t
(** All materialized pages (live references; do not mutate). *)

val materialized_count : t -> int
