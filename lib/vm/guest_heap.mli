(** Guest heap: typed, cost-charged access to state living in guest memory.

    Targets keep {e all} mutable protocol state in guest memory through this
    API so that dirty-page tracking and snapshot restore genuinely reset
    them (DESIGN.md §4). The allocator is a bump allocator whose break
    pointer itself lives at guest address 0, so allocations made during a
    test case are rolled back by a snapshot restore like any other state.

    Each allocation carries an 8-byte size header (also in guest memory),
    enabling the bounds-checked accessors that model ASan: Table 1's dcmtk
    crash is only reliably detected when such checking is enabled. *)

type t

exception Out_of_memory
exception Heap_oob of { base : int; off : int; len : int }
(** Raised by checked accessors on an out-of-bounds access — the ASan
    analogue. *)

val init : Memory.t -> Nyx_sim.Clock.t -> t
(** Wrap a memory; initializes the break pointer on first use. *)

val memory : t -> Memory.t

val alloc : t -> int -> int
(** [alloc t n] returns the guest address of a fresh [n]-byte region.
    @raise Out_of_memory when the guest address space is exhausted. *)

val size_of : t -> int -> int
(** Allocation size recorded in the header of a region returned by
    {!alloc}. *)

(** {1 Charged accessors}

    Each call charges {!Nyx_sim.Cost.guest_mem_op} plus a per-byte cost. *)

val get_u8 : t -> int -> int
val set_u8 : t -> int -> int -> unit
val get_u16 : t -> int -> int
val set_u16 : t -> int -> int -> unit
val get_i32 : t -> int -> int
val set_i32 : t -> int -> int -> unit
val get_i64 : t -> int -> int
val set_i64 : t -> int -> int -> unit
val get_bytes : t -> int -> int -> bytes
val set_bytes : t -> int -> bytes -> unit

(** {1 Bounds-checked (ASan-style) accessors} *)

val checked_get : t -> base:int -> off:int -> len:int -> bytes
(** @raise Heap_oob when [off + len] exceeds the allocation size of
    [base]. *)

val checked_set : t -> base:int -> off:int -> bytes -> unit
(** @raise Heap_oob on overflow of the allocation. *)
