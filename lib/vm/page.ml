let size = 512
let shift = 9
let number addr = addr lsr shift
let offset addr = addr land (size - 1)
let zero () = Bytes.make size '\000'
