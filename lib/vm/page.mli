(** Guest page geometry.

    Real KVM guests use 4 KiB pages; we use 512-byte pages so that the
    page *counts* of the paper's VM configurations (512 MB and 4 GB)
    stay faithful while host memory usage stays laptop-scale. All snapshot
    asymptotics are in pages, not bytes, so this preserves behaviour. *)

val size : int
(** Bytes per page (512). *)

val shift : int
(** log2 [size]. *)

val number : int -> int
(** Page frame number of a guest-physical address. *)

val offset : int -> int
(** Offset of an address within its page. *)

val zero : unit -> bytes
(** A fresh all-zero page. *)
