(** Emulated block device with snapshot overlays.

    Mirrors §4.2: reads consult the incremental overlay first (the "second
    caching layer" of dirtied sectors), then the root overlay of sectors
    dirtied since boot, then the base image — each a hashmap lookup.
    Restoring the root snapshot discards both overlays; creating an
    incremental snapshot freezes the running overlay as the incremental
    layer. Sector operations charge {!Nyx_sim.Cost.disk_sector_op}. *)

type t

val create : ?sector_size:int -> sectors:int -> Nyx_sim.Clock.t -> t
val sectors : t -> int
val sector_size : t -> int

val write_base : t -> int -> bytes -> unit
(** Populate the base image before the root snapshot is taken. *)

val read_sector : t -> int -> bytes
val write_sector : t -> int -> bytes -> unit
(** Guest I/O during execution. @raise Invalid_argument on bad sector. *)

val dirty_sectors : t -> int
(** Sectors in the running overlay (dirtied since the last snapshot
    boundary). *)

(** {1 Snapshot-engine interface} *)

val discard_overlays : t -> unit
(** Root-snapshot restore: drop both overlays. *)

val freeze_incremental : t -> unit
(** Incremental-snapshot create: current overlay becomes the incremental
    layer; a fresh running overlay starts empty. *)

val reset_to_incremental : t -> unit
(** Incremental-snapshot restore: drop only the running overlay. *)

val drop_incremental : t -> unit
(** Discard the incremental layer, folding nothing back (used when the
    fuzzer returns to the root snapshot). *)
