open Nyx_resilience
open Nyx_netemu

(* Session state: captured/restored with the snapshots (see
   [register_aux]), so an incremental snapshot taken mid-handshake
   resumes the peer mid-handshake and every reset rewinds it. *)
type sess = {
  mutable s_stage : int;
  mutable s_flow : int option;
  mutable s_adopted : int; (* client targets: outbound flows claimed *)
  mutable s_streak : int; (* consecutive desyncs *)
  mutable s_quar : bool;
}

type t = {
  script : Peer_script.t;
  clock : Nyx_sim.Clock.t;
  net : Net.t;
  runtime : Nyx_targets.Target.runtime;
  target : Nyx_targets.Target.t;
  profile : Nyx_obs.Profile.t option;
  sess : sess;
  mutable plan : Plan.t option;
  (* Cumulative campaign-level counters (not snapshot state). *)
  mutable n_actions : int;
  fired : int array; (* per peer site, Fault.peer_sites order *)
  mutable n_desyncs : int;
  mutable n_restarts : int;
  mutable n_quarantines : int;
  mutable backoff_ns : int;
}

let num_peer_sites = List.length Fault.peer_sites

let peer_site_index site =
  let rec go i = function
    | [] -> invalid_arg "Peer_driver: not a peer site"
    | s :: tl -> if s = site then i else go (i + 1) tl
  in
  go 0 Fault.peer_sites

let create ?profile ~clock ~net ~runtime ~target script =
  {
    script;
    clock;
    net;
    runtime;
    target;
    profile;
    sess = { s_stage = 0; s_flow = None; s_adopted = 0; s_streak = 0; s_quar = false };
    plan = None;
    n_actions = 0;
    fired = Array.make num_peer_sites 0;
    n_desyncs = 0;
    n_restarts = 0;
    n_quarantines = 0;
    backoff_ns = 0;
  }

let arm t plan = t.plan <- Some plan
let script t = t.script

let register_aux t aux =
  Nyx_snapshot.Aux_state.register aux
    {
      Nyx_snapshot.Aux_state.name = "peer";
      save =
        (fun () ->
          Marshal.to_bytes
            (t.sess.s_stage, t.sess.s_flow, t.sess.s_adopted, t.sess.s_streak,
             t.sess.s_quar)
            []);
      load =
        (fun b ->
          let stage, flow, adopted, streak, quar =
            (Marshal.from_bytes b 0 : int * int option * int * int * bool)
          in
          t.sess.s_stage <- stage;
          t.sess.s_flow <- flow;
          t.sess.s_adopted <- adopted;
          t.sess.s_streak <- streak;
          t.sess.s_quar <- quar);
    }

(* ------------------------------------------------------------------ *)

let prof t f =
  match t.profile with
  | None -> f ()
  | Some p -> Nyx_obs.Profile.span p Nyx_obs.Profile.Peer t.clock f

let is_udp t = t.target.Nyx_targets.Target.info.Nyx_targets.Target.proto = Net.Udp

let is_client t =
  t.target.Nyx_targets.Target.info.Nyx_targets.Target.role = Nyx_targets.Target.Client

let port t = t.target.Nyx_targets.Target.info.Nyx_targets.Target.port

let drain t =
  match t.sess.s_flow with
  | None -> Bytes.empty
  | Some fl -> (
    try Bytes.concat Bytes.empty (Net.responses t.net fl)
    with Invalid_argument _ -> Bytes.empty)

let close_flow t =
  (match t.sess.s_flow with
  | Some fl when not (is_udp t) -> (
    try
      Net.close_peer t.net fl;
      Nyx_targets.Target.pump t.runtime
    with Invalid_argument _ -> ())
  | _ -> ());
  t.sess.s_flow <- None

(* Open (or adopt) the peer's connection and validate the banner, if the
   script expects one. Returns false when the session could not start
   cleanly — the caller decides whether that counts as a desync. *)
let open_session t =
  t.sess.s_stage <- 0;
  if is_client t then begin
    (* The target dialed out during boot: the peer is the server end and
       adopts the next unclaimed outbound flow. *)
    match List.nth_opt (Net.outbound_flows t.net) t.sess.s_adopted with
    | Some fl ->
      t.sess.s_adopted <- t.sess.s_adopted + 1;
      t.sess.s_flow <- Some fl;
      true
    | None ->
      t.sess.s_flow <- None;
      false
  end
  else if is_udp t then begin
    (* Datagram flows materialize on the first send. *)
    t.sess.s_flow <- None;
    true
  end
  else begin
    match Net.connect_peer t.net ~port:(port t) with
    | Some fl ->
      Nyx_targets.Target.pump t.runtime;
      t.sess.s_flow <- Some fl;
      (match t.script.Peer_script.p_banner with
      | None -> true
      | Some ok -> ok (drain t))
    | None ->
      t.sess.s_flow <- None;
      false
  end

(* Supervised recovery: charge a capped exponential backoff to virtual
   time, then either restart the session or — after too many consecutive
   desyncs — quarantine it so the rest of the program completes with
   partial results. Never raises: a wedged peer degrades, it does not
   abort the campaign. *)
let note_desync t ~what ~reconnect =
  t.n_desyncs <- t.n_desyncs + 1;
  t.sess.s_streak <- t.sess.s_streak + 1;
  let delay =
    Backoff.delay_ns ~base_ns:1_000_000 ~cap_ns:64_000_000
      ~attempt:(min (t.sess.s_streak - 1) 30)
  in
  Nyx_sim.Clock.advance t.clock delay;
  t.backoff_ns <- t.backoff_ns + delay;
  if Nyx_obs.Trace.on () then
    Nyx_obs.Trace.instant
      ~vns:(Nyx_sim.Clock.now_ns t.clock)
      "peer-desync"
      [
        ("action", Nyx_obs.Trace.Str what);
        ("streak", Nyx_obs.Trace.Int t.sess.s_streak);
        ("backoff_ns", Nyx_obs.Trace.Int delay);
      ];
  if t.sess.s_streak >= t.script.Peer_script.p_quarantine_after then begin
    t.n_quarantines <- t.n_quarantines + 1;
    t.sess.s_quar <- true;
    close_flow t
  end
  else if reconnect then begin
    t.n_restarts <- t.n_restarts + 1;
    if is_client t then
      (* A client target dialed out once; there is no second outbound
         flow to adopt, so the restart just rewinds the script stage. *)
      t.sess.s_stage <- 0
    else begin
      close_flow t;
      ignore (open_session t)
    end
  end

let send_wire t wire =
  if is_udp t then begin
    match Net.udp_send_peer t.net ~port:(port t) ?flow:t.sess.s_flow wire with
    | Some fl ->
      t.sess.s_flow <- Some fl;
      Nyx_targets.Target.pump t.runtime
    | None -> ()
  end
  else
    match t.sess.s_flow with
    | None -> ()
    | Some fl -> (
      (* EPIPE on a server-closed connection loses the message, like a
         real socket; target crashes raised while pumping propagate. *)
      match Net.send_peer t.net fl wire with
      | () -> Nyx_targets.Target.pump t.runtime
      | exception Invalid_argument _ -> ())

let handle_connect t =
  t.sess.s_streak <- 0;
  t.sess.s_quar <- false;
  if not (open_session t) then note_desync t ~what:"connect" ~reconnect:false;
  [ 1 ]

let encode_with_fault t msg site =
  match (t.plan, site) with
  | Some plan, Some s -> (
    match Plan.fire plan s ~vns:(Nyx_sim.Clock.now_ns t.clock) with
    | Some f ->
      let wires, detail = Peer_fault.apply f msg in
      (* By construction every peer fault is recovered: the supervision
         above restores the session, never the campaign. Count it now so
         an abort elsewhere can never leave it dangling. *)
      Plan.record_recovered plan f;
      t.fired.(peer_site_index s) <- t.fired.(peer_site_index s) + 1;
      if Nyx_obs.Trace.on () then
        Nyx_obs.Trace.instant
          ~vns:(Nyx_sim.Clock.now_ns t.clock)
          "peer-fault"
          [
            ("site", Nyx_obs.Trace.Str (Fault.site_name s));
            ("seq", Nyx_obs.Trace.Int f.Fault.seq);
            ("message", Nyx_obs.Trace.Str msg.Peer_fault.m_name);
            ("detail", Nyx_obs.Trace.Str detail);
          ];
      wires
    | None -> [ msg.Peer_fault.m_bytes ])
  | _ -> [ msg.Peer_fault.m_bytes ]

let handle_packet t data =
  let payload = if Array.length data > 0 then data.(0) else Bytes.empty in
  if t.sess.s_quar then () (* quarantined: the peer stays silent *)
  else
    match Peer_script.decode_payload t.script payload with
    | None -> ()
    | Some (idx, site) ->
      let action = t.script.Peer_script.p_actions.(idx) in
      t.n_actions <- t.n_actions + 1;
      let stage = t.sess.s_stage in
      List.iteri
        (fun i m ->
          let wires =
            if i = 0 then encode_with_fault t m site else [ m.Peer_fault.m_bytes ]
          in
          List.iter (send_wire t) wires)
        (action.Peer_script.a_messages ~stage);
      let resp = drain t in
      if action.Peer_script.a_expect ~stage resp then begin
        t.sess.s_stage <- action.Peer_script.a_next ~stage;
        t.sess.s_streak <- 0
      end
      else note_desync t ~what:action.Peer_script.a_name ~reconnect:true

let handle_close t =
  close_flow t;
  t.sess.s_stage <- 0

let handler t ~send:_ (nt : Nyx_spec.Spec.node_ty) _inputs data =
  match nt.Nyx_spec.Spec.nt_name with
  | "connect" -> Some (prof t (fun () -> handle_connect t))
  | "packet" ->
    prof t (fun () -> handle_packet t data);
    Some []
  | "close" ->
    prof t (fun () -> handle_close t);
    Some []
  | _ -> None

(* ------------------------------------------------------------------ *)

type state = {
  pd_actions : int;
  pd_fired : int array;
  pd_desyncs : int;
  pd_restarts : int;
  pd_quarantines : int;
  pd_backoff_ns : int;
}

let state t =
  {
    pd_actions = t.n_actions;
    pd_fired = Array.copy t.fired;
    pd_desyncs = t.n_desyncs;
    pd_restarts = t.n_restarts;
    pd_quarantines = t.n_quarantines;
    pd_backoff_ns = t.backoff_ns;
  }

let restore_state t s =
  if Array.length s.pd_fired <> num_peer_sites then
    invalid_arg "Peer_driver.restore_state: fired-counter arity mismatch";
  t.n_actions <- s.pd_actions;
  Array.blit s.pd_fired 0 t.fired 0 num_peer_sites;
  t.n_desyncs <- s.pd_desyncs;
  t.n_restarts <- s.pd_restarts;
  t.n_quarantines <- s.pd_quarantines;
  t.backoff_ns <- s.pd_backoff_ns

let fired_by_site t =
  List.mapi (fun i s -> (Fault.site_name s, t.fired.(i))) Fault.peer_sites
