open Nyx_resilience

type field_kind = Outer_len | Inner_len | Field

type field = {
  f_name : string;
  f_kind : field_kind;
  f_pos : int;
  f_len : int;
  f_big_endian : bool;
}

type message = {
  m_name : string;
  m_bytes : bytes;
  m_fields : field list;
  m_reframe : (bytes -> bytes) option;
}

let plain name bytes = { m_name = name; m_bytes = bytes; m_fields = []; m_reframe = None }

(* ------------------------------------------------------------------ *)
(* Deterministic choice: every transform derives its positions, deltas
   and field picks from a small integer hash of the fault's provenance
   and the message length. No RNG — the plan's RNG already decided
   whether the fault fires; what it does must be replayable from the
   fault record alone (checkpoint resume re-applies the same surgery). *)

let mix a b = ((((a lxor 0x9E3779B1) * 31) + b) land 0x3FFFFFFF)

let salt (f : Fault.t) m =
  mix (mix f.Fault.seq f.Fault.site_seq) (Bytes.length m.m_bytes)

let in_range m f =
  f.f_pos >= 0 && f.f_len > 0 && f.f_pos + f.f_len <= Bytes.length m.m_bytes

let fields_of_kind m kind =
  List.filter (fun f -> f.f_kind = kind && in_range m f) m.m_fields

let read_uint b ~pos ~len ~be =
  let v = ref 0 in
  if be then
    for i = 0 to len - 1 do
      v := (!v lsl 8) lor Char.code (Bytes.get b (pos + i))
    done
  else
    for i = len - 1 downto 0 do
      v := (!v lsl 8) lor Char.code (Bytes.get b (pos + i))
    done;
  !v

let write_uint b ~pos ~len ~be v =
  if be then
    for i = 0 to len - 1 do
      Bytes.set b (pos + i) (Char.chr ((v lsr (8 * (len - 1 - i))) land 0xff))
    done
  else
    for i = 0 to len - 1 do
      Bytes.set b (pos + i) (Char.chr ((v lsr (8 * i)) land 0xff))
    done

let reframe m b = match m.m_reframe with Some f -> f b | None -> b

let has_crlf b =
  let n = Bytes.length b in
  n >= 2 && Bytes.get b (n - 2) = '\r' && Bytes.get b (n - 1) = '\n'

(* ------------------------------------------------------------------ *)
(* The transforms. Each returns (wire images, detail). *)

let flip h m =
  let b = Bytes.copy m.m_bytes in
  let n = Bytes.length b in
  if n = 0 then ([ b ], "flip:empty-noop")
  else begin
    let pos = h mod n in
    let bit = mix h 7 mod 8 in
    Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor (1 lsl bit)));
    ([ b ], Printf.sprintf "flip byte %d bit %d" pos bit)
  end

let truncate h m =
  let n = Bytes.length m.m_bytes in
  if n < 2 then flip h m
  else begin
    (* Cut mid-message but re-seal the outer framing: a well-framed short
       body reaches the parser's short-field paths instead of being
       discarded by a length check at the door. *)
    let keep = 1 + (h mod (n - 1)) in
    let b = reframe m (Bytes.sub m.m_bytes 0 keep) in
    ([ b ], Printf.sprintf "truncate %d -> %d bytes" n keep)
  end

let duplicate _h m =
  ([ Bytes.copy m.m_bytes; Bytes.copy m.m_bytes ], "duplicate")

(* A length field that lies. Preferred surgery: pick an [Inner_len]
   field, append filler the inner length now claims as real data, bump
   the field and re-seal the outer framing — the message stays
   transport-valid while a nested length exceeds what the peer actually
   encoded (the classic over-read shape). Without an inner length the
   outer one is overstated in place; without any length field (line
   protocols) junk is padded before the terminator. *)
let length_lie h m =
  match fields_of_kind m Inner_len with
  | _ :: _ as inner ->
    let f = List.nth inner (h mod List.length inner) in
    let delta = 1 + (mix h 5 mod 64) in
    let n = Bytes.length m.m_bytes in
    let b = Bytes.make (n + delta) 'A' in
    Bytes.blit m.m_bytes 0 b 0 n;
    let cap = (1 lsl (8 * f.f_len)) - 1 in
    let v = read_uint b ~pos:f.f_pos ~len:f.f_len ~be:f.f_big_endian in
    write_uint b ~pos:f.f_pos ~len:f.f_len ~be:f.f_big_endian (min cap (v + delta));
    ( [ reframe m b ],
      Printf.sprintf "length-lie %s %d -> %d (+%d filler)" f.f_name v
        (min cap (v + delta)) delta )
  | [] -> (
    match fields_of_kind m Outer_len with
    | _ :: _ as outer ->
      let f = List.nth outer (h mod List.length outer) in
      let delta = 1 + (mix h 5 mod 64) in
      let b = Bytes.copy m.m_bytes in
      let cap = (1 lsl (8 * f.f_len)) - 1 in
      let v = read_uint b ~pos:f.f_pos ~len:f.f_len ~be:f.f_big_endian in
      write_uint b ~pos:f.f_pos ~len:f.f_len ~be:f.f_big_endian (min cap (v + delta));
      ([ b ], Printf.sprintf "length-lie %s %d -> %d" f.f_name v (min cap (v + delta)))
    | [] ->
      let pad = 8 + (mix h 5 mod 24) in
      let n = Bytes.length m.m_bytes in
      let body = if has_crlf m.m_bytes then n - 2 else n in
      let b = Bytes.make (body + pad + (n - body)) 'x' in
      Bytes.blit m.m_bytes 0 b 0 body;
      Bytes.blit m.m_bytes body b (body + pad) (n - body);
      ([ b ], Printf.sprintf "length-lie: pad %d junk bytes" pad))

(* Shift the outer frame boundary without re-sealing anything: the bytes
   on the wire no longer line up with the framing, so the target's
   de-framer reads into the next message or stalls mid-frame. *)
let desync_frame h m =
  match fields_of_kind m Outer_len with
  | _ :: _ as outer ->
    let f = List.nth outer (h mod List.length outer) in
    let delta = 1 + (mix h 11 mod 7) in
    let delta = if mix h 13 mod 2 = 0 then delta else -delta in
    let b = Bytes.copy m.m_bytes in
    let v = read_uint b ~pos:f.f_pos ~len:f.f_len ~be:f.f_big_endian in
    let cap = (1 lsl (8 * f.f_len)) - 1 in
    let v' = max 0 (min cap (v + delta)) in
    write_uint b ~pos:f.f_pos ~len:f.f_len ~be:f.f_big_endian v';
    ([ b ], Printf.sprintf "desync-frame %s %d -> %d" f.f_name v v')
  | [] ->
    if has_crlf m.m_bytes then begin
      let b = Bytes.sub m.m_bytes 0 (Bytes.length m.m_bytes - 2) in
      ([ b ], "desync-frame: strip line terminator")
    end
    else flip h m

let drop_field h m =
  match fields_of_kind m Field with
  | _ :: _ as fs ->
    let f = List.nth fs (h mod List.length fs) in
    let n = Bytes.length m.m_bytes in
    let b = Bytes.create (n - f.f_len) in
    Bytes.blit m.m_bytes 0 b 0 f.f_pos;
    Bytes.blit m.m_bytes (f.f_pos + f.f_len) b f.f_pos (n - f.f_pos - f.f_len);
    ([ reframe m b ], Printf.sprintf "drop-field %s (%d bytes)" f.f_name f.f_len)
  | [] -> truncate h m

let apply (fault : Fault.t) m =
  let h = salt fault m in
  match fault.Fault.site with
  | Fault.Peer_flip -> flip h m
  | Fault.Peer_truncate -> truncate h m
  | Fault.Peer_duplicate -> duplicate h m
  | Fault.Peer_length_lie -> length_lie h m
  | Fault.Peer_desync_frame -> desync_frame h m
  | Fault.Peer_drop_field -> drop_field h m
  | site ->
    invalid_arg
      (Printf.sprintf "Peer_fault.apply: %s is not a peer site" (Fault.site_name site))

(* ------------------------------------------------------------------ *)
(* --peer-faults spec parsing: peer sites only, short names welcome. *)

let short_names =
  [
    ("flip", Fault.Peer_flip);
    ("truncate", Fault.Peer_truncate);
    ("duplicate", Fault.Peer_duplicate);
    ("length-lie", Fault.Peer_length_lie);
    ("desync-frame", Fault.Peer_desync_frame);
    ("drop-field", Fault.Peer_drop_field);
  ]

let valid_peer_sites () =
  String.concat "|" (List.map fst short_names) ^ "|all"

let site_of_peer_name name =
  match List.assoc_opt name short_names with
  | Some s -> Some s
  | None -> (
    match Fault.site_of_name name with
    | Some s when Fault.is_peer_site s -> Some s
    | _ -> None)

let parse_spec s =
  let items = String.split_on_char ',' s in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | item :: rest -> (
      match String.index_opt item ':' with
      | None ->
        Error
          (Printf.sprintf
             "invalid peer-fault spec item %S (want site:rate with site one of %s)"
             item (valid_peer_sites ()))
      | Some i -> (
        let name = String.trim (String.sub item 0 i) in
        let rate = String.sub item (i + 1) (String.length item - i - 1) in
        match float_of_string_opt (String.trim rate) with
        | Some r when r >= 0.0 && r <= 1.0 ->
          if name = "all" then
            go (List.rev_append (List.map (fun s -> (s, r)) Fault.peer_sites) acc) rest
          else (
            match site_of_peer_name name with
            | Some site -> go ((site, r) :: acc) rest
            | None ->
              Error
                (Printf.sprintf
                   "unknown peer fault site %S in item %S (want one of %s)" name item
                   (valid_peer_sites ())))
        | _ ->
          Error
            (Printf.sprintf
               "invalid peer fault rate %S in item %S (want a float in [0,1])" rate
               item)))
  in
  match String.trim s with
  | "" ->
    Error
      (Printf.sprintf "empty peer-fault spec (want site:rate,... with site one of %s)"
         (valid_peer_sites ()))
  | _ -> go [] items
