(** The cooperating-peer executor driver.

    In [--mode peer] the executor routes every [connect]/[packet]/[close]
    opcode here instead of the raw-network dispatch: the program's
    payloads select {!Peer_script} actions (and optionally an encoder
    fault site), the driver encodes them honestly, applies any fired
    {!Peer_fault} and converses with the booted target over the emulated
    network.

    Session state (stage, flow, adoption cursor, desync streak,
    quarantine flag) lives in an {!Nyx_snapshot.Aux_state} handler, so it
    is captured by the root and incremental snapshots exactly like kernel
    socket state: an incremental snapshot taken mid-handshake resumes the
    peer mid-handshake, and every per-execution reset restores the peer
    alongside the target.

    Supervised recovery: when the conversation desynchronizes (an
    expectation fails — usually because an armed encoder fault broke the
    dialogue), the driver charges a capped exponential backoff to virtual
    time, restarts the session, and after [p_quarantine_after]
    consecutive desyncs quarantines it (the peer goes silent and the
    execution completes with partial results). A peer fault therefore
    {e never} aborts a campaign; each fired fault is recorded as
    recovered the moment it is applied. Crashes surfaced by the target
    while pumping propagate untouched — they are the findings. *)

type t

val create :
  ?profile:Nyx_obs.Profile.t ->
  clock:Nyx_sim.Clock.t ->
  net:Nyx_netemu.Net.t ->
  runtime:Nyx_targets.Target.runtime ->
  target:Nyx_targets.Target.t ->
  Peer_script.t ->
  t

val register_aux : t -> Nyx_snapshot.Aux_state.t -> unit
(** Must run before the root snapshot is taken (the engine restores only
    handler sets identical to the capture's). *)

val handler :
  t ->
  send:(bytes -> unit) ->
  Nyx_spec.Spec.node_ty ->
  int list ->
  bytes array ->
  int list option
(** The executor's custom opcode handler: [Some] for connect / packet /
    close, [None] otherwise. *)

val arm : t -> Nyx_resilience.Plan.t -> unit
(** Share the campaign's fault plan; peer sites fire through it. *)

val script : t -> Peer_script.t

(** {2 Cumulative statistics and checkpointing}

    The counters below accumulate across executions (they are {e not}
    snapshot state) and are the deterministic peer half of a campaign
    checkpoint. *)

type state = {
  pd_actions : int;  (** peer actions executed *)
  pd_fired : int array;  (** fired encoder faults per peer site,
                             {!Nyx_resilience.Fault.peer_sites} order *)
  pd_desyncs : int;
  pd_restarts : int;
  pd_quarantines : int;
  pd_backoff_ns : int;  (** virtual time spent backing off *)
}

val state : t -> state

val restore_state : t -> state -> unit
(** @raise Invalid_argument on a fired-counter arity mismatch. *)

val fired_by_site : t -> (string * int) list
(** Site name to fired count, peer sites order. *)
