(** Typed fault transforms for the cooperating peer's encoder.

    The peer (see {!Peer_script} / {!Peer_driver}) always {e encodes} a
    protocol-correct message first; an armed fault from the campaign's
    {!Nyx_resilience.Plan} then perturbs the encoded wire image in one of
    six typed ways (the [Peer_*] sites of {!Nyx_resilience.Fault}). Each
    transform is a pure function of the fault's provenance (its plan-wide
    and per-site ordinals) and the message — no RNG is consulted — so a
    resumed or re-run campaign perturbs the exact same bytes.

    Messages carry a light field annotation (length fields, droppable
    fields, an optional reframe function that re-seals the outer framing
    after surgery), which is what lets the faults be {e semantic}: a
    length field that lies while the framing stays valid reaches much
    deeper parser states than a random byte flip ever would. *)

type field_kind =
  | Outer_len  (** the transport framing length (e.g. MySQL's 3-byte LE
                   packet length, the DTLS record length) *)
  | Inner_len  (** a nested length the parser trusts (e.g. MySQL's
                   auth-plugin-data length, a DTLS fragment length) *)
  | Field  (** an ordinary droppable region (argument, cookie, salt) *)

type field = {
  f_name : string;
  f_kind : field_kind;
  f_pos : int;  (** byte offset in the wire image *)
  f_len : int;
  f_big_endian : bool;  (** length-field byte order (ignored for [Field]) *)
}

type message = {
  m_name : string;
  m_bytes : bytes;  (** the honest wire image *)
  m_fields : field list;  (** annotations; out-of-range entries ignored *)
  m_reframe : (bytes -> bytes) option;
      (** re-seal outer framing after the body changed length *)
}

val plain : string -> bytes -> message
(** A message with no annotations (line protocols). *)

val apply : Nyx_resilience.Fault.t -> message -> bytes list * string
(** [apply fault msg] is the perturbed wire image(s) — a list because
    [Peer_duplicate] emits the message twice — plus a human-readable
    detail string for traces. Deterministic in [(fault.seq,
    fault.site_seq, msg)]. Every transform degrades gracefully on
    messages too small or unannotated for its preferred surgery (falling
    back to a byte flip at worst), so it never raises on a peer site.
    @raise Invalid_argument if [fault.site] is not a peer site. *)

val parse_spec : string -> (Nyx_resilience.Plan.spec, string) result
(** Parse a [--peer-faults] spec ([site:rate,...]). Accepts the full site
    names ([peer-flip], ...), their short forms ([flip], [truncate],
    [duplicate], [length-lie], [desync-frame], [drop-field]) and [all]
    (every peer site). Errors name the offending item and list the valid
    sites. Non-peer sites (e.g. [wedge]) are rejected — those belong in
    [--faults]. *)
