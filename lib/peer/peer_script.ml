type action = {
  a_name : string;
  a_messages : stage:int -> Peer_fault.message list;
  a_next : stage:int -> int;
  a_expect : stage:int -> bytes -> bool;
}

type t = {
  p_target : string;
  p_actions : action array;
  p_banner : (bytes -> bool) option;
  p_quarantine_after : int;
  p_seed_actions : int list list;
}

let field ?(be = true) name kind pos len =
  { Peer_fault.f_name = name; f_kind = kind; f_pos = pos; f_len = len; f_big_endian = be }

let msg ?(fields = []) ?reframe name bytes =
  { Peer_fault.m_name = name; m_bytes = bytes; m_fields = fields; m_reframe = reframe }

(* ------------------------------------------------------------------ *)
(* FTP peers (lightftp, proftpd): a scripted client driving the RFC 959
   state machine. Stages: 0 fresh, 1 USER sent, 2 logged in, 3 passive
   data channel requested. Expectations match on reply codes. *)

let expect_code codes ~stage:_ resp =
  let lines = String.split_on_char '\n' (Bytes.to_string resp) in
  List.exists
    (fun line ->
      let line = String.trim line in
      List.exists
        (fun code -> String.length line >= 3 && String.sub line 0 3 = code)
        codes)
    lines

let ftp_line ?(fields = []) name line =
  msg ~fields name (Bytes.of_string (line ^ "\r\n"))

let ftp_cmd ?fields ~expect ~next name line =
  {
    a_name = name;
    a_messages = (fun ~stage:_ -> [ ftp_line ?fields name line ]);
    a_next = next;
    a_expect = expect_code expect;
  }

let same ~stage = stage

let ftp_actions ~extended =
  let base =
    [
      ftp_cmd "user" "USER fuzz"
        ~fields:[ field "arg" Peer_fault.Field 4 5 ]
        ~expect:[ "331" ] ~next:(fun ~stage:_ -> 1);
      ftp_cmd "pass" "PASS fuzz"
        ~fields:[ field "arg" Peer_fault.Field 4 5 ]
        ~expect:[ "230" ] ~next:(fun ~stage:_ -> 2);
      ftp_cmd "syst" "SYST" ~expect:[ "215" ] ~next:same;
      ftp_cmd "type-i" "TYPE I"
        ~fields:[ field "arg" Peer_fault.Field 4 2 ]
        ~expect:[ "200" ] ~next:same;
      ftp_cmd "pasv" "PASV" ~expect:[ "227" ] ~next:(fun ~stage:_ -> 3);
      ftp_cmd "port" "PORT 127,0,0,1,200,10"
        ~fields:[ field "arg" Peer_fault.Field 4 17 ]
        ~expect:[ "200" ]
        ~next:(fun ~stage -> if stage = 3 then 2 else stage);
      ftp_cmd "list" "LIST" ~expect:[ "226" ] ~next:same;
      ftp_cmd "stor" "STOR upload.txt"
        ~fields:[ field "arg" Peer_fault.Field 4 11 ]
        ~expect:[ "226" ] ~next:same;
      ftp_cmd "retr" "RETR upload.txt"
        ~fields:[ field "arg" Peer_fault.Field 4 11 ]
        ~expect:[ "226" ] ~next:same;
      ftp_cmd "pwd" "PWD" ~expect:[ "257" ] ~next:same;
      ftp_cmd "cwd" "CWD sub"
        ~fields:[ field "arg" Peer_fault.Field 3 4 ]
        ~expect:[ "250" ] ~next:same;
      ftp_cmd "noop" "NOOP" ~expect:[ "200" ] ~next:same;
      ftp_cmd "feat" "FEAT" ~expect:[ "211" ] ~next:same;
      ftp_cmd "abor" "ABOR" ~expect:[ "226" ] ~next:same;
      ftp_cmd "quit" "QUIT" ~expect:[ "221" ] ~next:same;
    ]
  in
  let extra =
    if not extended then []
    else
      [
        ftp_cmd "site-chmod" "SITE CHMOD 644 upload.txt"
          ~fields:
            [
              field "mode" Peer_fault.Field 10 4;
              field "name" Peer_fault.Field 14 11;
            ]
          ~expect:[ "200" ] ~next:same;
        ftp_cmd "rnfr" "RNFR upload.txt"
          ~fields:[ field "arg" Peer_fault.Field 4 11 ]
          ~expect:[ "350" ] ~next:same;
        ftp_cmd "rnto" "RNTO renamed.txt"
          ~fields:[ field "arg" Peer_fault.Field 4 12 ]
          ~expect:[ "250" ] ~next:same;
        ftp_cmd "rest" "REST 128"
          ~fields:[ field "arg" Peer_fault.Field 4 4 ]
          ~expect:[ "350" ] ~next:same;
        ftp_cmd "mkd" "MKD adir"
          ~fields:[ field "arg" Peer_fault.Field 3 5 ]
          ~expect:[ "250" ] ~next:same;
        ftp_cmd "cdup" "CDUP" ~expect:[ "200" ] ~next:same;
      ]
  in
  Array.of_list (base @ extra)

let ftp_script ~extended target =
  {
    p_target = target;
    p_actions = ftp_actions ~extended;
    p_banner = Some (fun b -> expect_code [ "220" ] ~stage:0 b);
    p_quarantine_after = 3;
    p_seed_actions =
      (if extended then
         [
           [ 0; 1; 7; 15 ];
           [ 0; 1; 16; 17; 18 ];
           [ 0; 1; 2; 4; 6; 19; 10; 20 ];
         ]
       else [ [ 0; 1; 2; 3; 4; 6 ]; [ 0; 1; 7; 8 ]; [ 0; 1; 9; 10; 4; 6; 5; 11 ] ]);
  }

(* ------------------------------------------------------------------ *)
(* tinydtls peer: a scripted DTLS client. Stages: 0 fresh, 1 hello sent
   (HelloVerifyRequest expected), 2 cookie echoed (handshake running),
   3 key exchange done. *)

let dtls_record content_type payload =
  let buf = Buffer.create 64 in
  Buffer.add_char buf (Char.chr content_type);
  Buffer.add_string buf "\xfe\xfd";
  Buffer.add_string buf "\x00\x00";
  Buffer.add_string buf "\x00\x00\x00\x00\x00\x01";
  Buffer.add_char buf (Char.chr ((Bytes.length payload lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr (Bytes.length payload land 0xff));
  Buffer.add_bytes buf payload;
  Buffer.to_bytes buf

let dtls_handshake msg_type body =
  let buf = Buffer.create 32 in
  let be n v =
    for i = n - 1 downto 0 do
      Buffer.add_char buf (Char.chr ((v lsr (8 * i)) land 0xff))
    done
  in
  Buffer.add_char buf (Char.chr msg_type);
  be 3 (Bytes.length body);
  be 2 0;
  be 3 0;
  be 3 (Bytes.length body);
  Buffer.add_bytes buf body;
  Buffer.to_bytes buf

(* Re-seal the record length after body surgery. *)
let dtls_reframe b =
  let n = Bytes.length b in
  if n < 13 then b
  else begin
    let b = Bytes.copy b in
    let len = n - 13 in
    Bytes.set b 11 (Char.chr ((len lsr 8) land 0xff));
    Bytes.set b 12 (Char.chr (len land 0xff));
    b
  end

let dtls_outer_len = field "record-len" Peer_fault.Outer_len 11 2
let dtls_msg_len = field "msg-len" Peer_fault.Inner_len 14 3
let dtls_frag_len = field "frag-len" Peer_fault.Inner_len 22 3

let dtls_hello ~with_cookie =
  let body = Buffer.create 48 in
  Buffer.add_string body "\xfe\xfd";
  Buffer.add_string body (String.make 32 'r');
  Buffer.add_char body '\000';
  if with_cookie then begin
    Buffer.add_char body '\016';
    Buffer.add_string body (String.make 16 'c')
  end
  else Buffer.add_char body '\000';
  Buffer.add_string body "\x00\x02\xc0\xa8";
  Buffer.add_string body "\x01\x00";
  let wire = dtls_record 22 (dtls_handshake 1 (Buffer.to_bytes body)) in
  let fields =
    [ dtls_outer_len; dtls_msg_len; dtls_frag_len;
      field "random" Peer_fault.Field 27 32 ]
    @ if with_cookie then [ field "cookie" Peer_fault.Field 61 16 ] else []
  in
  msg ~fields ~reframe:dtls_reframe
    (if with_cookie then "client-hello-cookie" else "client-hello")
    wire

let dtls_hs_msg name msg_type body =
  msg
    ~fields:[ dtls_outer_len; dtls_msg_len; dtls_frag_len ]
    ~reframe:dtls_reframe name
    (dtls_record 22 (dtls_handshake msg_type body))

let dtls_raw name content_type payload =
  msg
    ~fields:
      [ dtls_outer_len; field "payload" Peer_fault.Field 13 (Bytes.length payload) ]
    ~reframe:dtls_reframe name
    (dtls_record content_type payload)

let dtls_reply_is ?hs_type content_type resp =
  Bytes.length resp >= 13
  && Char.code (Bytes.get resp 0) = content_type
  &&
  match hs_type with
  | None -> true
  | Some ty -> Bytes.length resp >= 14 && Char.code (Bytes.get resp 13) = ty

let dtls_script () =
  let act name messages ~next ~expect =
    { a_name = name; a_messages = messages; a_next = next; a_expect = expect }
  in
  let always ~stage:_ _ = true in
  {
    p_target = "tinydtls";
    p_actions =
      [|
        act "hello"
          (fun ~stage:_ -> [ dtls_hello ~with_cookie:false ])
          ~next:(fun ~stage -> max stage 1)
          ~expect:(fun ~stage:_ resp -> dtls_reply_is 22 resp);
        act "hello-cookie"
          (fun ~stage:_ -> [ dtls_hello ~with_cookie:true ])
          ~next:(fun ~stage:_ -> 2)
          ~expect:(fun ~stage:_ resp -> dtls_reply_is ~hs_type:2 22 resp);
        act "key-exchange"
          (fun ~stage:_ ->
            [ dtls_hs_msg "client-key-exchange" 16
                (Bytes.of_string "client-key-exchange") ])
          ~next:(fun ~stage -> max stage 3)
          ~expect:(fun ~stage:_ resp ->
            Bytes.length resp >= 1 && Char.code (Bytes.get resp 0) = 20);
        act "appdata"
          (fun ~stage:_ -> [ dtls_raw "appdata" 23 (Bytes.of_string "hello-from-peer") ])
          ~next:same
          ~expect:(fun ~stage:_ resp ->
            Bytes.length resp >= 1 && Char.code (Bytes.get resp 0) = 23);
        act "certificate"
          (fun ~stage:_ -> [ dtls_hs_msg "certificate" 11 (Bytes.make 16 '\000') ])
          ~next:same ~expect:always;
        act "finished"
          (fun ~stage:_ -> [ dtls_hs_msg "finished" 20 (Bytes.make 12 'f') ])
          ~next:same ~expect:always;
        act "ccs"
          (fun ~stage:_ -> [ dtls_raw "change-cipher-spec" 20 (Bytes.of_string "\x01") ])
          ~next:same ~expect:always;
        act "alert"
          (fun ~stage:_ -> [ dtls_raw "alert" 21 (Bytes.of_string "\x02\x28") ])
          ~next:(fun ~stage:_ -> 0)
          ~expect:always;
      |];
    p_banner = None;
    p_quarantine_after = 3;
    p_seed_actions = [ [ 0; 1; 2; 3 ]; [ 0; 1; 4; 5; 6; 3 ]; [ 0; 1; 2; 3; 7 ] ];
  }

(* ------------------------------------------------------------------ *)
(* mysql-client peer: a scripted MySQL *server* (the target dials out).
   Stages: 0 fresh (client awaits the greeting), 1 authenticating,
   2 connected (client issued its query). *)

let mysql_frame seq payload =
  let len = Bytes.length payload in
  let buf = Buffer.create (4 + len) in
  Buffer.add_char buf (Char.chr (len land 0xff));
  Buffer.add_char buf (Char.chr ((len lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr ((len lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr (seq land 0xff));
  Buffer.add_bytes buf payload;
  Buffer.to_bytes buf

let mysql_reframe b =
  if Bytes.length b < 4 then b
  else begin
    let b = Bytes.copy b in
    let len = Bytes.length b - 4 in
    Bytes.set b 0 (Char.chr (len land 0xff));
    Bytes.set b 1 (Char.chr ((len lsr 8) land 0xff));
    Bytes.set b 2 (Char.chr ((len lsr 16) land 0xff));
    b
  end

let mysql_outer_len = field ~be:false "packet-len" Peer_fault.Outer_len 0 3

let mysql_msg ?(fields = []) name wire =
  msg ~fields:(mysql_outer_len :: fields) ~reframe:mysql_reframe name wire

(* The honest protocol-10 greeting, annotated: the 1-byte
   auth-plugin-data length at payload offset 32 (wire offset 36) is the
   inner length the client trusts when filling its 21-byte scramble
   buffer — the planted over-read from the paper's §5.4 case study. *)
let mysql_greeting () =
  mysql_msg "server-greeting"
    ~fields:
      [
        field "version" Peer_fault.Field 5 10;
        field "salt1" Peer_fault.Field 20 8;
        field ~be:false "auth-len" Peer_fault.Inner_len 36 1;
        field "salt2" Peer_fault.Field 47 13;
      ]
    (Nyx_targets.Mysql_client.make_handshake ())

let mysql_payload_msg name seq payload =
  mysql_msg name
    ~fields:[ field "payload" Peer_fault.Field 4 (Bytes.length payload) ]
    (mysql_frame seq payload)

let mysql_script () =
  let act name messages ~next ~expect =
    { a_name = name; a_messages = messages; a_next = next; a_expect = expect }
  in
  let client_speaks ~stage:_ resp = Bytes.length resp >= 5 in
  let client_silent ~stage:_ resp = Bytes.length resp = 0 in
  {
    p_target = "mysql-client";
    p_actions =
      [|
        act "greeting"
          (fun ~stage:_ -> [ mysql_greeting () ])
          ~next:(fun ~stage:_ -> 1)
          ~expect:client_speaks;
        act "auth-ok"
          (fun ~stage:_ ->
            [ mysql_payload_msg "auth-ok" 2 (Bytes.of_string "\x00\x00\x00\x02\x00\x00\x00") ])
          ~next:(fun ~stage:_ -> 2)
          ~expect:client_speaks;
        act "auth-err"
          (fun ~stage:_ ->
            [ mysql_payload_msg "auth-err" 2
                (Bytes.of_string "\xff\x15\x04#28000Access denied") ])
          ~next:same ~expect:client_silent;
        act "auth-switch"
          (fun ~stage:_ ->
            [ mysql_payload_msg "auth-switch" 2
                (Bytes.of_string "\xfemysql_native_password\000") ])
          ~next:same ~expect:client_speaks;
        act "result-columns"
          (fun ~stage:_ -> [ mysql_payload_msg "result-columns" 1 (Bytes.of_string "\x05") ])
          ~next:same ~expect:client_silent;
        act "result-row"
          (fun ~stage:_ -> [ mysql_payload_msg "result-row" 1 (Bytes.of_string "\xfb") ])
          ~next:same ~expect:client_silent;
        act "result-eof"
          (fun ~stage:_ ->
            [ mysql_payload_msg "result-eof" 1 (Bytes.of_string "\xfe\x00\x00\x02\x00") ])
          ~next:same ~expect:client_silent;
        act "result-err"
          (fun ~stage:_ ->
            [ mysql_payload_msg "result-err" 1
                (Bytes.of_string "\xff\x15\x04#28000bad query") ])
          ~next:same ~expect:client_silent;
        act "many-columns"
          (fun ~stage:_ -> [ mysql_payload_msg "many-columns" 1 (Bytes.of_string "\x20") ])
          ~next:same ~expect:client_silent;
      |];
    p_banner = None;
    p_quarantine_after = 3;
    p_seed_actions = [ [ 0; 1; 4; 5; 6 ]; [ 0; 3; 1; 8; 7 ]; [ 0; 2; 3 ] ];
  }

(* ------------------------------------------------------------------ *)

let find = function
  | "lightftp" -> Some (ftp_script ~extended:false "lightftp")
  | "proftpd" -> Some (ftp_script ~extended:true "proftpd")
  | "tinydtls" -> Some (dtls_script ())
  | "mysql-client" -> Some (mysql_script ())
  | _ -> None

let supported () = [ "lightftp"; "proftpd"; "tinydtls"; "mysql-client" ]

(* ------------------------------------------------------------------ *)
(* Peer-mode payload codec: byte 0 selects the action, byte 1 the
   encoder fault site (0 = none). Mutators flip these small payloads
   into other actions and fault arms; splice reorders whole actions. *)

let payload_of ?(fault = 0) action =
  let b = Bytes.create 2 in
  Bytes.set b 0 (Char.chr (action land 0xff));
  Bytes.set b 1 (Char.chr (fault land 0xff));
  b

let decode_payload t payload =
  if Bytes.length payload = 0 then None
  else begin
    let action = Char.code (Bytes.get payload 0) mod Array.length t.p_actions in
    let sel =
      if Bytes.length payload >= 2 then Char.code (Bytes.get payload 1) mod 7 else 0
    in
    let site =
      if sel = 0 then None else List.nth_opt Nyx_resilience.Fault.peer_sites (sel - 1)
    in
    Some (action, site)
  end

let seed_programs t net_spec =
  List.map
    (fun session ->
      Nyx_spec.Net_spec.seed_of_packets net_spec
        (List.map (fun i -> payload_of i) session))
    t.p_seed_actions
