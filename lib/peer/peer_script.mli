(** Scripted protocol-correct peers.

    A peer script is the cooperating endpoint for one target: a client
    for server targets (the FTP servers, tinydtls), a server for client
    targets (mysql-client). It exposes a palette of {e actions} — each
    one honest protocol step, encoded through {!Peer_fault.message} so
    the encoder's fault sites know where the length fields and droppable
    regions live — plus a tiny expectation machine ([a_expect]) the
    driver uses to detect that the conversation has desynchronized.

    In [--mode peer] the affine program's packet payloads select actions
    and fault sites instead of carrying raw bytes: byte 0 picks the
    action (mod the palette size), byte 1 picks the encoder fault site to
    arm for that action (0 = none; the plan's rate still decides whether
    it fires). The mutation engines therefore explore the product of
    protocol-correct action orderings and typed encoder faults — the
    Fuzztruction-Net observation that a slightly-wrong peer reaches
    states a byte-level mutator cannot. *)

type action = {
  a_name : string;
  a_messages : stage:int -> Peer_fault.message list;
      (** the honest wire image(s) for this action at the given stage *)
  a_next : stage:int -> int;  (** stage transition on met expectation *)
  a_expect : stage:int -> bytes -> bool;
      (** does the (concatenated) response satisfy the protocol? *)
}

type t = {
  p_target : string;  (** target name this script cooperates with *)
  p_actions : action array;
  p_banner : (bytes -> bool) option;
      (** greeting expected right after connect (TCP client peers) *)
  p_quarantine_after : int;
      (** consecutive desyncs before the session is quarantined *)
  p_seed_actions : int list list;
      (** canned honest sessions, as action indices — the peer-mode seed
          corpus *)
}

val find : string -> t option
(** The script cooperating with the named target, if one exists. *)

val supported : unit -> string list
(** Target names with a peer script, for CLI diagnostics. *)

val payload_of : ?fault:int -> int -> bytes
(** [payload_of ~fault action] encodes one peer-mode packet payload:
    byte 0 the action index, byte 1 the fault selector (0 = none,
    1..6 = {!Nyx_resilience.Fault.peer_sites} in order). *)

val decode_payload : t -> bytes -> (int * Nyx_resilience.Fault.site option) option
(** Decode a packet payload into (action index, armed fault site).
    [None] for an empty payload (a no-op packet). *)

val seed_programs : t -> Nyx_spec.Net_spec.t -> Nyx_spec.Program.t list
(** One program per canned session: connect, then one packet per action
    (fault selector 0 — seeds are honest). *)
