(* Real wall-clock time. Everything else in the reproduction runs on the
   virtual clock; wall time exists only to measure the speedup the domain
   pool buys, never to drive fuzzing decisions. *)

let now_s () = Unix.gettimeofday ()

let timed f =
  let t0 = now_s () in
  let r = f () in
  (r, now_s () -. t0)
