(** Real wall-clock time.

    Everything else in the reproduction runs on the virtual clock; wall
    time exists only to measure the speedup the domain pool buys, never
    to drive fuzzing decisions — keeping campaign results independent of
    machine load and domain count (the pool's determinism contract,
    {!Pool}). *)

val now_s : unit -> float
(** [Unix.gettimeofday]. *)

val timed : (unit -> 'a) -> 'a * float
(** [timed f] runs [f] and returns its result with the elapsed wall
    seconds. *)
