(** A bounded domain pool (OCaml 5 Domains + Mutex/Condition, no deps).

    {2 Domain-safety contract}

    The pool provides scheduling, ordered result collection and exception
    capture — {e nothing else}. Callers must uphold:

    - Tasks share no mutable state with each other or with the caller
      while the pool runs them. The campaign layers satisfy this by
      construction: every instance owns its virtual clock, VM, RNG and
      corpus. Modules that must share state at top level document it with
      the repo's ["domain-safe"] comment convention (enforced by
      [make lint] via {!Nyx_analysis.Source_lint}).
    - {!map}/{!map_list} results are in submission order and each task is
      a pure function of its input, so output is byte-identical whatever
      the domain count. [domains = 1] (or [NYX_DOMAINS=1]) bypasses the
      pool and runs on the calling domain — exactly the pre-parallel
      sequential path.
    - Internally, each result slot is written by exactly one task; the
      [wait] mutex publishes the writes to the caller (OCaml memory
      model), so no atomics are needed. *)

exception Task_error of { index : int; exn : exn }
(** Raised by {!map}/{!map_list} when a task raised: the lowest failing
    submission index, carrying the original exception. *)

exception Cancelled
(** The payload recorded for tasks skipped after an earlier task failed
    (see the error contract under {!map}). Never escapes {!map} itself —
    the [Task_error] it raises always carries a real failure. *)

val max_domains : int
(** Hard cap (48), well under the runtime's ~128-domain limit so nested
    users (a fleet inside a bench) cannot exhaust the budget. *)

val recommended : unit -> int
(** [min max_domains (Domain.recommended_domain_count ())]. *)

val default_domains : unit -> int
(** Worker count from [NYX_DOMAINS] (clamped to [max_domains]; unset or
    invalid falls back to {!recommended}; [1] means sequential). *)

(** {1 Explicit pools} *)

type t

val create : ?domains:int -> unit -> t
(** Spawn a pool of [domains] workers (default {!default_domains}). *)

val size : t -> int

val submit : t -> (unit -> unit) -> unit
(** Enqueue a job. Jobs must capture their own exceptions.
    @raise Invalid_argument after {!shutdown}. *)

val submit_all : t -> (unit -> unit) list -> unit
(** Enqueue a whole batch under one lock acquisition and one condition
    broadcast — one wake-up round for an epoch's worth of work instead of
    one signal per job. Same contract as {!submit} otherwise. *)

val wait : t -> unit
(** Block until every submitted task has finished. *)

val shutdown : t -> unit
(** Drain the queue, then join every worker. Idempotent. *)

val with_pool : ?domains:int -> (t -> 'a) -> 'a
(** [create], run, and always [shutdown]. *)

(** {1 Ordered maps} *)

val map : ?domains:int -> ?batch:int -> ('a -> 'b) -> 'a array -> 'b array
(** Parallel map with results in input order.

    [batch] (default 1) chunks the input into contiguous runs of that
    many tasks per pool job, amortizing the Mutex/Condition wake-up per
    job over the whole chunk; results and the error contract are
    identical at any batch size (values < 1 behave as 1).

    Error contract: when a task raises, tasks at higher indices that have
    not started yet are cancelled — they are skipped, not run — and
    [Task_error] is raised for the lowest {e real} failing index (the
    index a sequential run would have failed at first; cancellations are
    never reported). Tasks already running on other domains complete, and
    their results are discarded. A fleet that must survive individual
    instance failures should catch inside its tasks instead — see
    [Fleet.run]'s supervisor. *)

val map_list : ?domains:int -> ?batch:int -> ('a -> 'b) -> 'a list -> 'b list

val map_pool : t -> ?batch:int -> ('a -> 'b) -> 'a array -> 'b array
(** {!map} on a caller-owned pool: repeated fan-outs (a fleet's sync
    epochs) reuse the worker domains instead of spawning a fresh set per
    round. The caller must be the pool's only submitter for the duration
    (completion is detected via the pool-wide {!wait}). A one-worker pool
    (or a 0/1-task input) runs sequentially on the calling domain,
    preserving the [NYX_DOMAINS=1] bypass contract. *)
