(* A bounded domain pool (OCaml 5 Domains + Mutex/Condition, no deps).

   The campaign layers above (Fleet, bench matrix) are embarrassingly
   parallel: every instance owns its virtual clock, VM, RNG and corpus,
   so tasks never share mutable state. The pool therefore only has to
   provide scheduling, ordered result collection and exception capture.

   Determinism contract: [map] and [map_list] return results in
   submission order and every task is a pure function of its input, so
   the output is byte-identical whatever the domain count. [domains = 1]
   (or NYX_DOMAINS=1) bypasses the pool entirely and runs on the calling
   domain — exactly the pre-parallel sequential path. *)

exception Task_error of { index : int; exn : exn }

let () =
  Printexc.register_printer (function
    | Task_error { index; exn } ->
      Some (Printf.sprintf "Pool.Task_error(task %d: %s)" index (Printexc.to_string exn))
    | _ -> None)

(* OCaml's runtime supports ~128 domains; stay well under it so nested
   users (a fleet inside a bench) cannot exhaust the budget. *)
let max_domains = 48

let recommended () = min max_domains (Domain.recommended_domain_count ())

(* NYX_DOMAINS: worker-domain count for every Pool consumer.
   unset / invalid -> Domain.recommended_domain_count; 1 -> sequential. *)
let env_domains () =
  match Sys.getenv_opt "NYX_DOMAINS" with
  | None | Some "" -> None
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> Some (min n max_domains)
    | _ -> None)

let default_domains () =
  match env_domains () with Some n -> n | None -> recommended ()

let resolve = function
  | Some n when n >= 1 -> min n max_domains
  | Some _ -> 1
  | None -> default_domains ()

(* ------------------------------------------------------------------ *)
(* The pool proper: a task queue drained by [size] worker domains.     *)

type t = {
  m : Mutex.t;
  nonempty : Condition.t; (* queue gained work, or shutdown started *)
  idle : Condition.t; (* live count fell to zero *)
  queue : (unit -> unit) Queue.t;
  mutable live : int; (* tasks queued or running *)
  mutable stop : bool;
  mutable workers : unit Domain.t array;
  size : int;
}

let size t = t.size

let rec worker t =
  Mutex.lock t.m;
  while Queue.is_empty t.queue && not t.stop do
    Condition.wait t.nonempty t.m
  done;
  if Queue.is_empty t.queue then Mutex.unlock t.m (* shutdown, queue drained *)
  else begin
    let job = Queue.pop t.queue in
    Mutex.unlock t.m;
    (try job () with _ -> () (* jobs capture their own exceptions *));
    Mutex.lock t.m;
    t.live <- t.live - 1;
    if t.live = 0 then Condition.broadcast t.idle;
    Mutex.unlock t.m;
    worker t
  end

let create ?domains () =
  let size = resolve domains in
  let t =
    {
      m = Mutex.create ();
      nonempty = Condition.create ();
      idle = Condition.create ();
      queue = Queue.create ();
      live = 0;
      stop = false;
      workers = [||];
      size;
    }
  in
  t.workers <- Array.init size (fun _ -> Domain.spawn (fun () -> worker t));
  t

let submit t job =
  Mutex.lock t.m;
  if t.stop then begin
    Mutex.unlock t.m;
    invalid_arg "Pool.submit: pool is shut down"
  end;
  t.live <- t.live + 1;
  Queue.push job t.queue;
  Condition.signal t.nonempty;
  Mutex.unlock t.m

(* Enqueue a whole batch under one lock acquisition and one broadcast —
   the amortization [map ~batch] builds on: an epoch's worth of work
   costs one wake-up round instead of one signal per task. *)
let submit_all t jobs =
  Mutex.lock t.m;
  if t.stop then begin
    Mutex.unlock t.m;
    invalid_arg "Pool.submit: pool is shut down"
  end;
  List.iter
    (fun job ->
      t.live <- t.live + 1;
      Queue.push job t.queue)
    jobs;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.m

(* Block until every submitted task has finished. *)
let wait t =
  Mutex.lock t.m;
  while t.live > 0 do
    Condition.wait t.idle t.m
  done;
  Mutex.unlock t.m

(* Drain the queue, then join every worker. Idempotent. *)
let shutdown t =
  Mutex.lock t.m;
  let was_stopped = t.stop in
  t.stop <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.m;
  if not was_stopped then Array.iter Domain.join t.workers

let with_pool ?domains f =
  let t = create ?domains () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* ------------------------------------------------------------------ *)
(* Ordered maps.                                                       *)

exception Cancelled

(* Sequential reference path: stop at the first failure; later tasks
   never run. *)
let run_sequential (tasks : (unit -> 'a) array) : ('a, exn) result array =
  let n = Array.length tasks in
  let results = Array.make n (Error Cancelled) in
  let failed = ref false in
  Array.iteri
    (fun i task ->
      if not !failed then
        results.(i) <-
          (try Ok (task ())
           with e ->
             failed := true;
             Error e))
    tasks;
  results

(* [batch]: tasks per pool job. 1 reproduces one-job-per-task; larger
   batches amortize the Mutex/Condition round per job over [batch]
   tasks. Chunks are contiguous index ranges, so results stay ordered
   and the cancel index stays exact. *)
let resolve_batch = function Some b when b >= 1 -> b | Some _ | None -> 1

(* Run every task on an existing pool and return per-task results in
   index order. The caller must be the pool's only submitter for the
   duration (we [wait] on the pool's global live count). *)
let run_tasks_on pool ~batch (tasks : (unit -> 'a) array) :
    ('a, exn) result array =
  let n = Array.length tasks in
  (* Cancellation flag: the LOWEST index of a real failure so far.
     A queued task skips itself only when a lower-indexed task already
     failed, so the first Error slot in the results is always a real
     failure — never a cancellation — whatever order the domains ran
     the tasks in. (A boolean flag would let a later failure cancel an
     earlier task, making the reported index racy.) *)
  let cancel_from = Atomic.make max_int in
  let rec note_failure i =
    let cur = Atomic.get cancel_from in
    if i < cur && not (Atomic.compare_and_set cancel_from cur i) then
      note_failure i
  in
  (* Each slot is written by exactly one task, so plain stores suffice
     under the OCaml memory model; [wait]'s mutex publishes them. *)
  let results = Array.make n None in
  let chunk lo () =
    let hi = min n (lo + batch) - 1 in
    for i = lo to hi do
      let r =
        if Atomic.get cancel_from < i then Error Cancelled
        else
          try Ok (tasks.(i) ())
          with e ->
            note_failure i;
            Error e
      in
      results.(i) <- Some r
    done
  in
  let jobs =
    List.init ((n + batch - 1) / batch) (fun k -> chunk (k * batch))
  in
  submit_all pool jobs;
  wait pool;
  Array.map (function Some r -> r | None -> assert false) results

let run_tasks ~domains ?batch (tasks : (unit -> 'a) array) :
    ('a, exn) result array =
  let n = Array.length tasks in
  if domains <= 1 || n <= 1 then run_sequential tasks
  else
    with_pool ~domains:(min domains n) (fun pool ->
        run_tasks_on pool ~batch:(resolve_batch batch) tasks)

let collect results =
  (* Surface the lowest failing index, matching what the sequential run
     would have raised first. *)
  Array.iteri
    (fun index -> function Error exn -> raise (Task_error { index; exn }) | Ok _ -> ())
    results;
  Array.map (function Ok v -> v | Error _ -> assert false) results

let map ?domains ?batch f arr =
  let domains = resolve domains in
  collect (run_tasks ~domains ?batch (Array.map (fun x () -> f x) arr))

let map_list ?domains ?batch f l =
  Array.to_list (map ?domains ?batch f (Array.of_list l))

(* Same contract as [map], on a caller-owned pool: repeated fan-outs (a
   fleet's sync epochs) reuse the worker domains instead of spawning a
   fresh set per round. A one-worker pool degrades to the sequential
   path on the calling domain, preserving the NYX_DOMAINS=1 contract. *)
let map_pool pool ?batch f arr =
  let tasks = Array.map (fun x () -> f x) arr in
  let n = Array.length tasks in
  if size pool <= 1 || n <= 1 then collect (run_sequential tasks)
  else collect (run_tasks_on pool ~batch:(resolve_batch batch) tasks)
