let packets_of_capture dissector capture =
  Capture.streams capture
  |> List.filter_map (fun stream ->
         let records =
           Capture.stream_records capture ~dir:Capture.To_server stream
           |> List.map (fun r -> r.Capture.payload)
         in
         match Dissector.split dissector records with
         | [] -> None
         | packets -> Some packets)

let to_seed net_spec dissector capture =
  match packets_of_capture dissector capture with
  | [] -> Nyx_spec.Net_spec.seed_of_packets net_spec []
  | [ packets ] -> Nyx_spec.Net_spec.seed_of_packets net_spec packets
  | streams -> Nyx_spec.Net_spec.seed_of_connections net_spec streams
