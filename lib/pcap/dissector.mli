(** Stream dissectors: fragment a TCP byte stream into logical packets
    (§4.4 — "the same logic that AFLNet uses"). *)

type t =
  | Raw  (** each capture record is one logical packet *)
  | Crlf  (** split at CRLF, the common line-based protocols *)
  | Length_prefixed of int
      (** [Length_prefixed n]: each packet is an [n]-byte big-endian
          length followed by that many payload bytes; the prefix is kept
          in the packet *)
  | Datagram  (** record = datagram (DNS, SIP/UDP, DTLS) *)

val split : t -> bytes list -> bytes list
(** [split t records] fragments the concatenation of [records] (for
    [Raw]/[Datagram], records pass through unchanged). Trailing bytes that
    do not form a complete packet become a final packet of their own. *)

val name : t -> string
(** CLI/report name of the dissector; inverse of {!of_string} for the
    spellings it accepts. *)

val of_string : string -> (t, string) result
(** Parse a dissector name from the CLI: ["raw"], ["crlf"], ["dgram"],
    ["len2"], ["len4"]. *)
