type direction = To_server | To_client

type record = { stream : int; dir : direction; ts_us : int; payload : bytes }

type t = { records : record list }

let empty = { records = [] }

let add t r = { records = t.records @ [ r ] }

let streams t =
  List.fold_left
    (fun acc r -> if List.mem r.stream acc then acc else acc @ [ r.stream ])
    [] t.records

let stream_records t ?dir stream =
  List.filter
    (fun r -> r.stream = stream && match dir with None -> true | Some d -> r.dir = d)
    t.records

let magic = "NPCAP1"

let serialize t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf magic;
  let u32 v =
    for i = 0 to 3 do
      Buffer.add_char buf (Char.chr ((v lsr (8 * i)) land 0xff))
    done
  in
  u32 (List.length t.records);
  List.iter
    (fun r ->
      Buffer.add_char buf (match r.dir with To_server -> '\000' | To_client -> '\001');
      u32 r.stream;
      u32 r.ts_us;
      u32 (Bytes.length r.payload);
      Buffer.add_bytes buf r.payload)
    t.records;
  Buffer.to_bytes buf

let parse b =
  let exception Bad of string in
  let pos = ref 0 in
  let len = Bytes.length b in
  let u8 () =
    if !pos >= len then raise (Bad "truncated");
    let v = Char.code (Bytes.get b !pos) in
    incr pos;
    v
  in
  let u32 () =
    let a = u8 () and b' = u8 () and c = u8 () and d = u8 () in
    a lor (b' lsl 8) lor (c lsl 16) lor (d lsl 24)
  in
  try
    if len < String.length magic || Bytes.sub_string b 0 (String.length magic) <> magic
    then raise (Bad "bad magic");
    pos := String.length magic;
    let n = u32 () in
    if n > 1_000_000 then raise (Bad "unreasonable record count");
    let records =
      List.init n (fun _ ->
          let dir = match u8 () with 0 -> To_server | 1 -> To_client | _ -> raise (Bad "bad direction") in
          let stream = u32 () in
          let ts_us = u32 () in
          let plen = u32 () in
          if !pos + plen > len then raise (Bad "truncated payload");
          let payload = Bytes.sub b !pos plen in
          pos := !pos + plen;
          { stream; dir; ts_us; payload })
    in
    if !pos <> len then raise (Bad "trailing bytes");
    Ok { records }
  with Bad m -> Error m

let save t path =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_bytes oc (serialize t))

let load path =
  match
    let ic = open_in_bin path in
    Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
        really_input_string ic (in_channel_length ic))
  with
  | s -> parse (Bytes.of_string s)
  | exception Sys_error m -> Error m
