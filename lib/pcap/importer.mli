(** PCAP → bytecode seed conversion (§4.4).

    Takes the client-to-server side of each stream in a capture, fragments
    it with a dissector, and emits a bytecode program through the builder —
    the full trace-to-seed pipeline of the paper (capture → pyshark →
    builder → flat bytecode). *)

val to_seed : Nyx_spec.Net_spec.t -> Dissector.t -> Capture.t -> Nyx_spec.Program.t
(** One [connect] per stream, one [packet] per dissected fragment. Streams
    with no client payload are skipped; an empty capture yields a program
    with a single connection and no packets. *)

val packets_of_capture : Dissector.t -> Capture.t -> bytes list list
(** The dissected client-side packets, one list per stream. *)
