(** Network capture container.

    A small self-describing capture format standing in for PCAP (the real
    system reads Wireshark dumps via pyshark, §4.4). A capture is a list
    of timestamped records, each belonging to a stream (one TCP connection
    or UDP flow) with a direction. *)

type direction = To_server | To_client

type record = {
  stream : int;
  dir : direction;
  ts_us : int;  (** microseconds since capture start *)
  payload : bytes;
}

type t = { records : record list }

val empty : t
val add : t -> record -> t
(** Appends (records stay in insertion order). *)

val streams : t -> int list
(** Distinct stream ids, in first-seen order. *)

val stream_records : t -> ?dir:direction -> int -> record list

(** {1 Wire format} *)

val serialize : t -> bytes
val parse : bytes -> (t, string) result

val save : t -> string -> unit
(** Write to a file. *)

val load : string -> (t, string) result
