type t = Raw | Crlf | Length_prefixed of int | Datagram

let concat records = Bytes.concat Bytes.empty records

let split_crlf data =
  let s = Bytes.to_string data in
  let out = ref [] in
  let start = ref 0 in
  let i = ref 0 in
  let len = String.length s in
  while !i < len - 1 do
    if s.[!i] = '\r' && s.[!i + 1] = '\n' then begin
      out := String.sub s !start (!i + 2 - !start) :: !out;
      start := !i + 2;
      i := !i + 2
    end
    else incr i
  done;
  if !start < len then out := String.sub s !start (len - !start) :: !out;
  List.rev_map Bytes.of_string !out

let split_length_prefixed n data =
  let len = Bytes.length data in
  let read_be pos =
    let v = ref 0 in
    for i = 0 to n - 1 do
      v := (!v lsl 8) lor Char.code (Bytes.get data (pos + i))
    done;
    !v
  in
  let out = ref [] in
  let pos = ref 0 in
  (try
     while !pos + n <= len do
       let plen = read_be !pos in
       let total = n + plen in
       if !pos + total > len then raise Exit;
       out := Bytes.sub data !pos total :: !out;
       pos := !pos + total
     done
   with Exit -> ());
  if !pos < len then out := Bytes.sub data !pos (len - !pos) :: !out;
  List.rev !out

let split t records =
  match t with
  | Raw | Datagram -> records
  | Crlf -> split_crlf (concat records)
  | Length_prefixed n -> split_length_prefixed n (concat records)

let name = function
  | Raw -> "raw"
  | Crlf -> "crlf"
  | Datagram -> "dgram"
  | Length_prefixed n -> Printf.sprintf "len%d" n

let of_string = function
  | "raw" -> Ok Raw
  | "crlf" -> Ok Crlf
  | "dgram" -> Ok Datagram
  | "len2" -> Ok (Length_prefixed 2)
  | "len4" -> Ok (Length_prefixed 4)
  | s -> Error (Printf.sprintf "unknown dissector %S (raw|crlf|dgram|len2|len4)" s)
