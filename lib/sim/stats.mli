(** Descriptive statistics and significance testing for campaign results.

    The evaluation follows Klees et al.'s recommendations as the paper does:
    medians across repetitions and Mann–Whitney U tests for significance
    (Table 2 renders significant changes in bold). *)

val mean : float list -> float
val median : float list -> float
val stddev : float list -> float

val mann_whitney_u : float list -> float list -> float
(** [mann_whitney_u xs ys] is the two-sided p-value of the Mann–Whitney U
    test (normal approximation with tie correction), the significance test
    the paper applies to per-target coverage across repetitions. *)

(** Time-series of a monotonically growing metric (e.g. branch coverage)
    sampled against the virtual clock. *)
module Timeline : sig
  type t

  val create : unit -> t

  val record : t -> int -> float -> unit
  (** [record tl t_ns v] appends a sample. Samples must arrive in
      non-decreasing time order. *)

  val value_at : t -> int -> float
  (** Latest recorded value at or before [t_ns]; 0.0 before the first
      sample. *)

  val final : t -> float
  (** Last recorded value; 0.0 when empty. *)

  val first_time_reaching : t -> float -> int option
  (** Earliest virtual time at which the series reached [v], if ever —
      the primitive behind Table 5 ("time to equal coverage"). *)

  val samples : t -> (int * float) list
  (** All samples, oldest first. *)

  val median_across : t list -> int list -> (int * float) list
  (** [median_across tls grid] evaluates each timeline on [grid] and takes
      the per-point median — how the paper aggregates 10 runs into one
      coverage curve (Figures 5 and 7). *)
end

(** Named monotonic counters for executor/campaign bookkeeping. *)
module Counters : sig
  type t

  val create : unit -> t
  val incr : t -> string -> unit
  val add : t -> string -> int -> unit
  val get : t -> string -> int
  val to_list : t -> (string * int) list
  (** Sorted by name. *)
end
