(** Virtual time.

    All Nyx-Net simulation components charge their work to a virtual clock
    measured in nanoseconds. Campaign budgets, executions per second and
    time-to-coverage are expressed in virtual time, which makes throughput
    comparisons between fuzzers a property of the documented cost model
    rather than of the host machine (see DESIGN.md §4). *)

type t

val create : unit -> t
(** A fresh clock at virtual time zero. *)

val now_ns : t -> int
(** Current virtual time in nanoseconds since creation. *)

val now_s : t -> float
(** Current virtual time in seconds. *)

val advance : t -> int -> unit
(** [advance t ns] moves the clock forward by [ns] nanoseconds.
    @raise Invalid_argument if [ns] is negative. *)

val reset : t -> unit
(** Rewind to zero (used between campaign repetitions). *)

val set_ns : t -> int -> unit
(** Set the clock to an absolute virtual time — used when resuming a
    checkpointed campaign, which must continue at the exact instant the
    checkpoint was taken.
    @raise Invalid_argument if [ns] is negative. *)

val pp_duration : Format.formatter -> int -> unit
(** Render a nanosecond duration as a human-readable [HH:MM:SS.mmm]. *)
