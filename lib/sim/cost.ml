let edge = 5
let guest_mem_op = 20
let guest_mem_per_byte n = n / 2

let emulated_syscall = 250
let snapshot_hypercall = 2_000

let real_syscall = 3_000
let real_connect = 150_000
let real_packet len = 8_000 + (2 * len)
let response_wait = 1_000_000
let server_init_wait = 50_000_000
let cleanup_script = 30_000_000

let fork = 400_000
let spawn = 2_000_000

(* A guest that wedges burns the executor's whole hang budget before the
   watchdog gives up and resets — the worst-case per-execution price of a
   misbehaving target (injected by Nyx_resilience fault plans). *)
let guest_wedge = 30_000_000

(* Fleet corpus sync (AFL -S style secondary-instance import, scheduled
   on the virtual clock): judging one exported program against a shared
   virgin map, walking its saved hit cells, and — when it is novel —
   parsing + enqueueing it into the importer's corpus. *)
let sync_judge_program = 5_000
let sync_merge_per_cell = 16
let sync_import_program = 25_000

(* Adaptive snapshot placement (StateAFL/SNPSFuzzer direction): hashing
   the captured aux state into a fuzzy protocol-state signature, and one
   evaluation of the dynamic policy's amortized cost model. *)
let state_hash = 3_000
let place_decide = 1_500

let page_copy = 700
let dirty_stack_entry = 16
let bitmap_scan_per_page = 2
let device_fast_reset = 8_000
let device_serialize_reset = 150_000
let disk_sector_op = 1_000
let aux_state_per_byte n = n / 4
