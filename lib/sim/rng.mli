(** Deterministic pseudo-random numbers (splitmix64).

    All randomness in campaigns flows through a single [Rng.t] so that any
    run is reproducible from its seed. The generator is splittable: derived
    streams do not perturb the parent stream, which keeps components
    (mutator, scheduler, policy) independent of each other's draw counts. *)

type t

val create : int -> t
(** [create seed] builds a generator from a 63-bit seed. *)

val split : t -> t
(** An independent generator derived from (and advancing) [t]. *)

val state : t -> int64
(** The full internal splitmix64 state — everything a generator is.
    Saved by campaign checkpoints so a resumed run replays the exact
    draw sequence. *)

val set_state : t -> int64 -> unit
(** Overwrite the internal state with one captured by {!state}. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val bool : t -> bool

val chance : t -> float -> bool
(** [chance t p] is true with probability [p]. *)

val float : t -> float -> float
(** Uniform in [\[0, x)]. *)

val byte : t -> char

val bytes : t -> int -> bytes
(** [bytes t n] is [n] uniform random bytes. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val choose_list : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val weighted : t -> ('a * float) list -> 'a
(** Pick proportionally to the (positive) weights. *)
