type t = { mutable now : int }

let create () = { now = 0 }

let now_ns t = t.now

let now_s t = float_of_int t.now /. 1e9

let advance t ns =
  if ns < 0 then invalid_arg "Clock.advance: negative duration";
  t.now <- t.now + ns

let reset t = t.now <- 0

let set_ns t ns =
  if ns < 0 then invalid_arg "Clock.set_ns: negative time";
  t.now <- ns

let pp_duration ppf ns =
  let ms = ns / 1_000_000 in
  let s = ms / 1000 in
  let h = s / 3600 and m = s / 60 mod 60 and sec = s mod 60 in
  Format.fprintf ppf "%02d:%02d:%02d.%03d" h m sec (ms mod 1000)
