type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

(* splitmix64 step: one 64-bit output per call. *)
let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t = { state = next_int64 t }

let state t = t.state
let set_state t s = t.state <- s

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Mask to 62 bits: Int64.to_int keeps the low 63 bits, so a raw
     63-bit value could still come out negative. *)
  let v = Int64.to_int (Int64.logand (next_int64 t) 0x3FFF_FFFF_FFFF_FFFFL) in
  v mod bound

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (next_int64 t) 1L = 1L

let float t x =
  let v = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  x *. v /. 9007199254740992.0 (* 2^53 *)

let chance t p = float t 1.0 < p

let byte t = Char.chr (int t 256)

let bytes t n =
  let b = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.set b i (byte t)
  done;
  b

let choose t a =
  if Array.length a = 0 then invalid_arg "Rng.choose: empty array";
  a.(int t (Array.length a))

let choose_list t l =
  match l with
  | [] -> invalid_arg "Rng.choose_list: empty list"
  | _ -> List.nth l (int t (List.length l))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let weighted t pairs =
  let total = List.fold_left (fun acc (_, w) -> acc +. w) 0.0 pairs in
  if total <= 0.0 then invalid_arg "Rng.weighted: non-positive total weight";
  let target = float t total in
  let rec pick acc = function
    | [] -> invalid_arg "Rng.weighted: empty list"
    | [ (x, _) ] -> x
    | (x, w) :: rest -> if acc +. w > target then x else pick (acc +. w) rest
  in
  pick 0.0 pairs
