(** The virtual-time cost model.

    Every constant is a duration in virtual nanoseconds charged to a
    {!Clock.t} when the corresponding operation is simulated. The constants
    are chosen to match the magnitudes reported by the paper (§2.3, §4.2,
    Table 3, Figure 6) and public measurements of the real mechanisms:
    e.g. a loopback TCP connect costs ~100µs, Nyx restores a small root
    snapshot at ~12,000 resets/s, and KVM keeps one dirty-bitmap byte per
    page, which is why the dirty-stack (8 bytes/entry) loses to the bitmap
    only once almost every page is dirty.

    Relative — not absolute — costs are what the reproduction relies on;
    see DESIGN.md §1 for the substitution argument. *)

(** {1 Target execution} *)

val edge : int
(** Compile-time instrumentation callback at a branch edge. *)

val guest_mem_op : int
(** Base cost of a guest heap read or write. *)

val guest_mem_per_byte : int -> int
(** Additional cost for touching [n] bytes of guest memory. *)

(** {1 Emulated networking (Nyx-Net agent hooks)} *)

val emulated_syscall : int
(** One hooked libc call served from the bytecode stream. *)

val snapshot_hypercall : int
(** Agent-to-hypervisor hypercall issued by the snapshot opcode. *)

(** {1 Real networking (baseline fuzzers)} *)

val real_syscall : int
(** A genuine syscall crossing the kernel boundary. *)

val real_connect : int
(** TCP three-way handshake on loopback. *)

val real_packet : int -> int
(** [real_packet len] sends or receives one packet of [len] bytes
    through the real network stack. *)

val response_wait : int
(** Fixed response-timeout wait AFLNet inserts after each packet. *)

val server_init_wait : int
(** Fixed sleep AFLNet inserts while waiting for the server to come up. *)

val cleanup_script : int
(** Running the user-supplied environment cleanup script between tests. *)

(** {1 Processes} *)

val fork : int
(** Forking an already-running process (AFL forkserver). *)

val spawn : int
(** Spawning a process from scratch, excluding target-specific startup. *)

val guest_wedge : int
(** A wedged guest burning the executor's whole hang budget before the
    watchdog resets it (injected by [Nyx_resilience] fault plans). *)

(** {1 Fleet corpus sync (§5.3 shared-corpus fleets)} *)

val sync_judge_program : int
(** Judging one exported program against a shared virgin map (fixed
    overhead per candidate, on top of the per-cell walk). *)

val sync_merge_per_cell : int
(** Walking one saved hit cell of an exported coverage checkpoint during
    a sync-epoch merge — the O(touched) unit of the shared-map merge. *)

val sync_import_program : int
(** Importing one coverage-novel program into a peer instance's corpus
    (parse + enqueue, AFL's secondary-instance sync step). *)

(** {1 Adaptive snapshot placement (StateAFL/SNPSFuzzer direction)} *)

val state_hash : int
(** Hashing the captured auxiliary state into a fuzzy protocol-state
    signature (one boundary-probe sample), on top of the per-byte
    capture cost. *)

val place_decide : int
(** One evaluation of the dynamic placement policy's amortized cost
    model when an input is scheduled. *)

(** {1 Snapshots (Figure 6 cost structure)} *)

val page_copy : int
(** Copying one guest page (create or restore). *)

val dirty_stack_entry : int
(** Touching one 8-byte entry of Nyx's dirty stack. *)

val bitmap_scan_per_page : int
(** Scanning one byte of KVM's 1-byte-per-page dirty bitmap
    (Agamotto walks the whole bitmap; Nyx-Net does not). *)

val device_fast_reset : int
(** Nyx's custom emulated-device reset. *)

val device_serialize_reset : int
(** QEMU's generic device (de)serialization, used by Agamotto. *)

val disk_sector_op : int
(** One sector lookup/copy in the overlay cache. *)

val aux_state_per_byte : int -> int
(** Capturing or restoring [n] bytes of auxiliary (kernel/agent) state. *)
