let mean xs =
  match xs with
  | [] -> 0.0
  | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let median xs =
  match xs with
  | [] -> 0.0
  | _ ->
    let a = Array.of_list xs in
    Array.sort compare a;
    let n = Array.length a in
    if n mod 2 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.0

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
    let m = mean xs in
    let sq = List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs in
    sqrt (sq /. float_of_int (List.length xs - 1))

(* Standard normal CDF via the Abramowitz–Stegun erf approximation. *)
let normal_cdf z =
  let t = 1.0 /. (1.0 +. (0.2316419 *. abs_float z)) in
  let poly =
    t
    *. (0.319381530
       +. (t
          *. (-0.356563782
             +. (t *. (1.781477937 +. (t *. (-1.821255978 +. (t *. 1.330274429))))))))
  in
  let pdf = exp (-.(z *. z) /. 2.0) /. sqrt (2.0 *. Float.pi) in
  let tail = pdf *. poly in
  if z >= 0.0 then 1.0 -. tail else tail

let mann_whitney_u xs ys =
  let n1 = List.length xs and n2 = List.length ys in
  if n1 = 0 || n2 = 0 then 1.0
  else begin
    let tagged =
      List.map (fun x -> (x, `X)) xs @ List.map (fun y -> (y, `Y)) ys
      |> List.sort (fun (a, _) (b, _) -> compare a b)
      |> Array.of_list
    in
    let n = Array.length tagged in
    (* Assign mid-ranks to ties and collect tie-group sizes. *)
    let ranks = Array.make n 0.0 in
    let ties = ref [] in
    let i = ref 0 in
    while !i < n do
      let j = ref !i in
      while !j < n - 1 && fst tagged.(!j + 1) = fst tagged.(!i) do
        incr j
      done;
      let mid = float_of_int (!i + !j + 2) /. 2.0 in
      for k = !i to !j do
        ranks.(k) <- mid
      done;
      let group = !j - !i + 1 in
      if group > 1 then ties := group :: !ties;
      i := !j + 1
    done;
    let r1 = ref 0.0 in
    Array.iteri (fun k (_, tag) -> if tag = `X then r1 := !r1 +. ranks.(k)) tagged;
    let fn1 = float_of_int n1 and fn2 = float_of_int n2 in
    let u1 = !r1 -. (fn1 *. (fn1 +. 1.0) /. 2.0) in
    let mu = fn1 *. fn2 /. 2.0 in
    let fn = fn1 +. fn2 in
    let tie_term =
      List.fold_left
        (fun acc g ->
          let fg = float_of_int g in
          acc +. ((fg ** 3.0) -. fg))
        0.0 !ties
    in
    let sigma2 =
      fn1 *. fn2 /. 12.0 *. (fn +. 1.0 -. (tie_term /. (fn *. (fn -. 1.0))))
    in
    if sigma2 <= 0.0 then 1.0
    else begin
      let z = (u1 -. mu) /. sqrt sigma2 in
      2.0 *. (1.0 -. normal_cdf (abs_float z))
    end
  end

module Timeline = struct
  type t = { mutable rev_samples : (int * float) list; mutable last_t : int }

  let create () = { rev_samples = []; last_t = -1 }

  let record tl t v =
    if t < tl.last_t then invalid_arg "Timeline.record: time went backwards";
    tl.last_t <- t;
    tl.rev_samples <- (t, v) :: tl.rev_samples

  let value_at tl t =
    let rec find = function
      | [] -> 0.0
      | (ts, v) :: rest -> if ts <= t then v else find rest
    in
    find tl.rev_samples

  let final tl = match tl.rev_samples with [] -> 0.0 | (_, v) :: _ -> v

  let first_time_reaching tl v =
    let rec scan best = function
      | [] -> best
      | (ts, value) :: rest ->
        scan (if value >= v then Some ts else best) rest
    in
    scan None tl.rev_samples

  let samples tl = List.rev tl.rev_samples

  let median_across tls grid =
    List.map
      (fun t ->
        let vs = List.map (fun tl -> value_at tl t) tls in
        (t, median vs))
      grid
end

module Counters = struct
  type t = (string, int) Hashtbl.t

  let create () = Hashtbl.create 16

  let add t name n =
    let cur = Option.value ~default:0 (Hashtbl.find_opt t name) in
    Hashtbl.replace t name (cur + n)

  let incr t name = add t name 1
  let get t name = Option.value ~default:0 (Hashtbl.find_opt t name)

  let to_list t =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) t []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
end
