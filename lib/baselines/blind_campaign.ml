open Nyx_core

type mutation = Packets | Blob

type config = {
  fuzzer : string;
  mode : Bexec.mode;
  mutation : mutation;
  state_aware : bool;
  budget_ns : int;
  max_execs : int;
  seed : int;
  asan : bool;
  stop_on_solve : bool;
  sample_interval_ns : int;
}

let payloads_of_program (p : Nyx_spec.Program.t) =
  Array.to_list p.Nyx_spec.Program.ops
  |> List.filter_map (fun (op : Nyx_spec.Program.op) ->
         if Array.length op.Nyx_spec.Program.data > 0 then
           Some op.Nyx_spec.Program.data.(0)
         else None)

let blob_of_program net_spec p =
  let blob = Bytes.concat Bytes.empty (payloads_of_program p) in
  let max_len = net_spec.Nyx_spec.Net_spec.payload.Nyx_spec.Spec.max_len in
  let blob = if Bytes.length blob > max_len then Bytes.sub blob 0 max_len else blob in
  Nyx_spec.Net_spec.seed_of_packets net_spec [ blob ]

let batch_size = 20

let run ?seeds cfg entry =
  let wall0 = Nyx_parallel.Wall.now_s () in
  let target = entry.Nyx_targets.Registry.target in
  match
    Bexec.create ~asan:cfg.asan
      ~layout_cookie:(Nyx_sim.Rng.int (Nyx_sim.Rng.create cfg.seed) 1_000_000)
      ~mode:cfg.mode target
  with
  | exception Bexec.Incompatible _ -> None
  | exec ->
    let net_spec = Campaign.net_spec () in
    let rng = Nyx_sim.Rng.create (cfg.seed + 77) in
    let mut_rng = Nyx_sim.Rng.split rng in
    let corpus = Corpus.create () in
    let cumulative = Nyx_targets.Coverage.Cumulative.create () in
    let timeline = Nyx_sim.Stats.Timeline.create () in
    let crashes = ref [] in
    let solved_ns = ref None in
    let execs = ref 0 in
    let last_sample = ref 0 in
    let stop = ref false in
    let now () = Nyx_sim.Clock.now_ns (Bexec.clock exec) in
    let over () = !stop || now () >= cfg.budget_ns || !execs >= cfg.max_execs in
    let sample ?(force = false) () =
      if force || now () - !last_sample >= cfg.sample_interval_ns then begin
        last_sample := now ();
        Nyx_sim.Stats.Timeline.record timeline (now ())
          (float_of_int (Nyx_targets.Coverage.Cumulative.edge_count cumulative))
      end
    in
    let triage (r : Report.exec_result) program =
      incr execs;
      let novel = Nyx_targets.Coverage.Cumulative.merge cumulative (Bexec.coverage exec) in
      if novel then begin
        ignore
          (Corpus.add corpus ~program ~exec_ns:r.Report.exec_ns ~discovered_ns:(now ())
             ~state_code:r.Report.state_code);
        sample ~force:true ()
      end
      else sample ();
      (match r.Report.status with
      | Report.Pass | Report.Hang -> ()
      | Report.Crash { kind; detail } ->
        if not (List.exists (fun c -> c.Report.kind = kind) !crashes) then
          crashes :=
            {
              Report.kind;
              detail;
              found_ns = now ();
              found_exec = !execs;
              input = Nyx_spec.Program.serialize program;
            }
            :: !crashes;
        if kind = "level-solved" then begin
          if !solved_ns = None then solved_ns := Some (now ());
          if cfg.stop_on_solve then stop := true
        end)
    in
    let raw_seeds =
      match seeds with Some s -> s | None -> Campaign.make_seeds entry net_spec
    in
    let seed_programs =
      match cfg.mutation with
      | Packets -> raw_seeds
      | Blob -> List.map (blob_of_program net_spec) raw_seeds
    in
    List.iter
      (fun program ->
        if not (over ()) then triage (Bexec.run exec program) program)
      seed_programs;
    if Corpus.size corpus = 0 then
      ignore
        (Corpus.add corpus
           ~program:(Nyx_spec.Net_spec.seed_of_packets net_spec [])
           ~exec_ns:0 ~discovered_ns:(now ()) ~state_code:0);
    let dict =
      Nyx_spec.Auto_dict.merge
        (List.map Bytes.of_string target.Nyx_targets.Target.info.Nyx_targets.Target.dict)
        (Nyx_spec.Auto_dict.extract raw_seeds)
    in
    let max_ops =
      List.fold_left
        (fun acc p -> max acc (2 * Array.length p.Nyx_spec.Program.ops))
        24 seed_programs
    in
    let mutate corpus_progs program =
      match cfg.mutation with
      | Packets ->
        Nyx_spec.Mutator.mutate mut_rng ~max_ops ~dict ~corpus:corpus_progs program
      | Blob ->
        let blob = Bytes.concat Bytes.empty (payloads_of_program program) in
        let max_len = net_spec.Nyx_spec.Net_spec.payload.Nyx_spec.Spec.max_len in
        let mutated = Nyx_spec.Havoc.mutate mut_rng ~dict ~max_len blob in
        Nyx_spec.Net_spec.seed_of_packets net_spec [ mutated ]
    in
    while not (over ()) do
      (* Both paths are now O(touched) per round: [schedule] indexes the
         corpus array directly, [schedule_state_aware] reuses the
         frequency table maintained on add, and [programs] is a cached
         snapshot — the baselines stay cost-comparable with the Nyx
         campaign's scheduling. *)
      let entry_sched =
        if cfg.state_aware then Corpus.schedule_state_aware corpus rng
        else Corpus.schedule corpus rng
      in
      let corpus_progs = Corpus.programs corpus in
      let i = ref 0 in
      while !i < batch_size && not (over ()) do
        incr i;
        let mutated = mutate corpus_progs entry_sched.Corpus.program in
        triage (Bexec.run exec mutated) mutated
      done
    done;
    sample ~force:true ();
    let virtual_ns = now () in
    Some
      {
        Report.fuzzer = cfg.fuzzer;
        target = target.Nyx_targets.Target.info.Nyx_targets.Target.name;
        run_seed = cfg.seed;
        timeline;
        exec_timeline = Nyx_sim.Stats.Timeline.create ();
        final_edges = Nyx_targets.Coverage.Cumulative.edge_count cumulative;
        execs = !execs;
        virtual_ns;
        execs_per_sec =
          (if virtual_ns = 0 then 0.0
           else float_of_int !execs /. (float_of_int virtual_ns /. 1e9));
        crashes = List.rev !crashes;
        corpus_size = Corpus.size corpus;
        solved_ns = !solved_ns;
        snapshot_stats = None;
        wall_s = Nyx_parallel.Wall.now_s () -. wall0;
        phase_profile = None;
        resilience = None;
        placement = None;
        mutation = None;
        peer = None;
      }
