(** The baseline executor: restart-based fuzzing of the same targets.

    Models how AFL-family fuzzers drive a network service (§2.1):

    - the target runs in a plain process; each test case restarts it
      (fork + target startup) and waits a fixed period for the server to
      come up;
    - traffic crosses the real network stack (per-connection handshakes,
      per-packet kernel costs) unless desock-style emulation is on;
    - AFLNet inserts a response-timeout wait after every packet and runs
      a user-supplied cleanup script between test cases — which misses
      the spool on the emulated disk, so filesystem-ish state leaks
      between test cases (the dcmtk accumulation effect);
    - desock mode ([`Desock]) feeds input through a single emulated
      stdin-like stream without packet boundaries and pays a kill-timeout
      per execution because servers never exit on their own.

    Memory is reset per test case through the root-snapshot mechanism
    (standing in for fork-based copy-on-write), but its cost is replaced
    by the restart costs above. *)

type mode =
  | Aflnet  (** real sockets, per-packet response waits, cleanup script *)
  | Aflnwe  (** like AFLNet but the input is one unstructured stream *)
  | Desock  (** AFL++ + libpreeny: emulated single stream, kill timeout *)
  | Fork_replay
      (** plain fork-per-exec with emulated delivery — the IJON setup *)

type t

exception Incompatible of string
(** Raised by {!create} when the target cannot run under this mode
    (desock on a multi-connection/UDP-incompatible target — Table 2's
    n/a cells). *)

val create :
  ?asan:bool ->
  ?layout_cookie:int ->
  mode:mode ->
  Nyx_targets.Target.t ->
  t

val clock : t -> Nyx_sim.Clock.t
val coverage : t -> Nyx_targets.Coverage.t
val state_code : t -> int

val run : t -> Nyx_spec.Program.t -> Nyx_core.Report.exec_result
(** One test case: restart, replay the program, tear down. *)
