(** Campaign loop for the restart-based baseline fuzzers.

    Same triage as the Nyx-Net campaign (coverage-novelty corpus growth,
    crash dedup, virtual-time timelines) but every test case is a full
    restart-and-replay through {!Bexec}; there are no snapshots. *)

type mutation = Packets | Blob
(** [Packets]: AFLNet-style region-aware mutation of the opcode program.
    [Blob]: AFLNwe/AFL++-style havoc of the concatenated byte stream,
    replayed as one unstructured send. *)

type config = {
  fuzzer : string;
  mode : Bexec.mode;
  mutation : mutation;
  state_aware : bool;  (** AFLNet's state-feedback scheduling *)
  budget_ns : int;
  max_execs : int;
  seed : int;
  asan : bool;
  stop_on_solve : bool;
  sample_interval_ns : int;
}

val run :
  ?seeds:Nyx_spec.Program.t list ->
  config ->
  Nyx_targets.Registry.entry ->
  Nyx_core.Report.campaign_result option
(** [None] when the target is incompatible with the mode (Table 2's
    n/a cells). *)

val blob_of_program : Nyx_spec.Net_spec.t -> Nyx_spec.Program.t -> Nyx_spec.Program.t
(** Flatten to a single connect + one concatenated payload. *)
