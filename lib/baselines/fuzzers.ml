type spec = {
  name : string;
  config : budget_ns:int -> max_execs:int -> seed:int -> Blind_campaign.config;
}

let base name mode mutation state_aware =
  {
    name;
    config =
      (fun ~budget_ns ~max_execs ~seed ->
        {
          Blind_campaign.fuzzer = name;
          mode;
          mutation;
          state_aware;
          budget_ns;
          max_execs;
          seed;
          asan = false;
          stop_on_solve = false;
          sample_interval_ns = 250_000_000;
        });
  }

let aflnet = base "aflnet" Bexec.Aflnet Blind_campaign.Packets true
let aflnet_no_state = base "aflnet-no-state" Bexec.Aflnet Blind_campaign.Packets false
let aflnwe = base "aflnwe" Bexec.Aflnwe Blind_campaign.Blob false
let aflpp_preeny = base "afl++" Bexec.Desock Blind_campaign.Blob false

let all = [ aflnet; aflnet_no_state; aflnwe; aflpp_preeny ]

let run spec ~budget_ns ~max_execs ~seed entry =
  Blind_campaign.run (spec.config ~budget_ns ~max_execs ~seed) entry

let ijon ~budget_ns ~max_execs ~seed entry =
  let cfg =
    {
      Blind_campaign.fuzzer = "ijon";
      mode = Bexec.Fork_replay;
      mutation = Blind_campaign.Packets;
      state_aware = false;
      budget_ns;
      max_execs;
      seed;
      asan = false;
      stop_on_solve = true;
      sample_interval_ns = 1_000_000_000;
    }
  in
  Blind_campaign.run cfg entry
