(** Pre-configured baseline fuzzers (the comparison columns of
    Tables 1–3). *)

type spec = {
  name : string;
  config :
    budget_ns:int -> max_execs:int -> seed:int -> Blind_campaign.config;
}

val aflnet : spec
val aflnet_no_state : spec
val aflnwe : spec
val aflpp_preeny : spec

val all : spec list
(** In the paper's column order: AFLNet, AFLNet-no-state, AFLNwe,
    AFL++. *)

val run :
  spec ->
  budget_ns:int ->
  max_execs:int ->
  seed:int ->
  Nyx_targets.Registry.entry ->
  Nyx_core.Report.campaign_result option

val ijon :
  budget_ns:int ->
  max_execs:int ->
  seed:int ->
  Nyx_targets.Registry.entry ->
  Nyx_core.Report.campaign_result option
(** The IJON configuration for the Mario experiment: fork-per-exec replay
    from the level start with position feedback, stopping at the first
    solve. *)
