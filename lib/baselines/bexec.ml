open Nyx_targets
open Nyx_netemu

type mode = Aflnet | Aflnwe | Desock | Fork_replay

exception Incompatible of string

type t = {
  mode : mode;
  clock : Nyx_sim.Clock.t;
  ctx : Ctx.t;
  root : Nyx_snapshot.Root.t;
  aux : Nyx_snapshot.Aux_state.t;
  vm : Nyx_vm.Vm.t;
  ops : Nyx_core.Op_handlers.t;
  target : Target.t;
}

(* How long AFL++ waits before killing a desock'd server that never
   exits on its own. *)
let desock_kill_timeout_ns = 30_000_000

let backend_of_mode = function
  | Aflnet | Aflnwe -> Net.Real
  | Desock | Fork_replay -> Net.Emulated

let boundaries_of_mode = function
  | Aflnet | Fork_replay -> true
  | Aflnwe | Desock -> false (* unstructured streams lose packet framing *)

let create ?(asan = false) ?(layout_cookie = 0) ~mode target =
  if mode = Desock && not target.Target.info.Target.desock_compat then
    raise
      (Incompatible
         (Printf.sprintf "%s cannot run under libpreeny's desock emulation"
            target.Target.info.Target.name));
  let clock = Nyx_sim.Clock.create () in
  let vm = Nyx_vm.Vm.create clock in
  let net = Net.create ~backend:(backend_of_mode mode) ~boundaries:(boundaries_of_mode mode) clock in
  let aux = Nyx_snapshot.Aux_state.create () in
  Net.register_aux net aux;
  let ctx = Ctx.of_vm ~asan ~layout_cookie ~net vm in
  let runtime = Target.boot target ctx in
  Target.pump runtime;
  let root = Nyx_snapshot.Root.create vm aux in
  let after_packet () =
    match mode with
    | Aflnet | Aflnwe ->
      (* AFLNet waits for the server's response with a fixed timeout. *)
      Nyx_sim.Clock.advance clock Nyx_sim.Cost.response_wait
    | Desock | Fork_replay -> ()
  in
  let ops = Nyx_core.Op_handlers.create ~net ~runtime ~target ~after_packet () in
  { mode; clock; ctx; root; aux; vm; ops; target }

let clock t = t.clock
let coverage t = t.ctx.Ctx.cov
let state_code t = t.ctx.Ctx.state_code

let restart_costs t =
  let info = t.target.Target.info in
  match t.mode with
  | Aflnet | Aflnwe ->
    (* Re-exec the server, wait for it to come up, and run the cleanup
       script for the previous test case. *)
    Nyx_sim.Cost.fork + info.Target.startup_ns + Nyx_sim.Cost.server_init_wait
    + Nyx_sim.Cost.cleanup_script
  | Desock ->
    (* Deferred forkserver skips most init; the kill timeout dominates. *)
    Nyx_sim.Cost.fork + desock_kill_timeout_ns
  | Fork_replay -> Nyx_sim.Cost.fork + info.Target.startup_ns

let run t program =
  let t0 = Nyx_sim.Clock.now_ns t.clock in
  (* Restart the process: memory and kernel state reset (fork semantics),
     but restart-based cleanup misses the disk spool. *)
  let keep_disk = t.mode = Aflnet || t.mode = Aflnwe in
  ignore (Nyx_snapshot.Root.restore ~disk:(not keep_disk) t.vm t.aux t.root);
  Nyx_sim.Clock.advance t.clock (restart_costs t);
  Coverage.reset t.ctx.Ctx.cov;
  t.ctx.Ctx.state_code <- 0;
  Nyx_core.Op_handlers.reset t.ops;
  let status =
    Nyx_core.Executor.status_of_run (fun () ->
        ignore (Nyx_spec.Interp.run program (Nyx_core.Op_handlers.handlers t.ops)))
  in
  {
    Nyx_core.Report.status;
    exec_ns = Nyx_sim.Clock.now_ns t.clock - t0;
    state_code = t.ctx.Ctx.state_code;
  }
