open Nyx_vm

let name = "live555"
let site s = name ^ "/" ^ s

(* Connection state offsets. *)
let f_described = 0
let f_session = 4
let f_playing = 8

let header_lines text =
  match Proto_util.find_blank_line text with
  | Some i -> String.sub text 0 i
  | None -> text

let get_header text hname =
  String.split_on_char '\n' (header_lines text)
  |> List.map String.trim
  |> List.find_map (fun l -> Proto_util.header_value ~name:hname l)

let parse_transport ctx value =
  (* Returns the parsed transport spec, or None when no key=value pair is
     present — the condition the SETUP handler fails to check. *)
  let parts = String.split_on_char ';' value in
  List.iter
    (fun p ->
      let p = String.trim p in
      if Ctx.branch ctx (site "transport:rtp-avp") (Proto_util.starts_with_ci ~prefix:"RTP/AVP" p)
      then ()
      else if Ctx.branch ctx (site "transport:unicast") (Proto_util.upper p = "UNICAST")
      then ()
      else if Ctx.branch ctx (site "transport:interleaved")
                (Proto_util.starts_with_ci ~prefix:"interleaved" p)
      then ()
      else Ctx.hit ctx (site "transport:other"))
    parts;
  List.find_opt (fun p -> String.contains p '=') parts

let on_packet ctx ~g:_ ~conn ~reply data =
  let heap = ctx.Ctx.heap in
  let text = Bytes.to_string data in
  let cseq = Option.value ~default:"0" (get_header text "CSeq") in
  let r code reason extra =
    Ctx.set_state ctx code;
    reply
      (Bytes.of_string
         (Printf.sprintf "RTSP/1.0 %d %s\r\nCSeq: %s\r\n%s\r\n" code reason cseq extra))
  in
  Ctx.hit ctx (site "packet");
  match String.split_on_char '\n' text |> List.map String.trim with
  | [] | [ "" ] -> Ctx.hit ctx (site "empty")
  | request_line :: _ -> (
    match Proto_util.tokens request_line with
    | [ verb; url; version ] -> (
      let verb = Proto_util.upper verb in
      ignore (Ctx.branch ctx (site "version") (version = "RTSP/1.0"));
      ignore (Ctx.branch ctx (site "url:rtsp") (Proto_util.starts_with_ci ~prefix:"rtsp://" url));
      match verb with
      | "OPTIONS" ->
        Ctx.hit ctx (site "verb:options");
        r 200 "OK" "Public: OPTIONS, DESCRIBE, SETUP, PLAY, PAUSE, TEARDOWN\r\n"
      | "DESCRIBE" ->
        Ctx.hit ctx (site "verb:describe");
        (match get_header text "Accept" with
        | Some accept when Proto_util.starts_with_ci ~prefix:"application/sdp" accept ->
          Ctx.hit ctx (site "describe:sdp")
        | Some _ -> Ctx.hit ctx (site "describe:other-accept")
        | None -> Ctx.hit ctx (site "describe:no-accept"));
        Guest_heap.set_i32 heap (conn + f_described) 1;
        r 200 "OK" "Content-Type: application/sdp\r\nContent-Length: 0\r\n"
      | "SETUP" ->
        Ctx.hit ctx (site "verb:setup");
        if Ctx.branch ctx (site "setup:undescribed")
             (Guest_heap.get_i32 heap (conn + f_described) = 0)
        then r 455 "Method Not Valid in This State" ""
        else begin
          match get_header text "Transport" with
          | None ->
            Ctx.hit ctx (site "setup:no-transport");
            r 461 "Unsupported Transport" ""
          | Some value -> (
            match parse_transport ctx value with
            | None ->
              (* The unchecked null: session setup dereferences the parsed
                 transport spec. *)
              Ctx.crash ctx ~kind:"null-deref"
                "SETUP with Transport header lacking key=value dereferences null spec"
            | Some _ ->
              Guest_heap.set_i32 heap (conn + f_session) 7;
              r 200 "OK" "Session: 00000007\r\nTransport: RTP/AVP;unicast\r\n")
        end
      | "PLAY" ->
        Ctx.hit ctx (site "verb:play");
        if Ctx.branch ctx (site "play:nosession")
             (Guest_heap.get_i32 heap (conn + f_session) = 0)
        then r 454 "Session Not Found" ""
        else begin
          Guest_heap.set_i32 heap (conn + f_playing) 1;
          r 200 "OK" "Range: npt=0.000-\r\n"
        end
      | "PAUSE" ->
        Ctx.hit ctx (site "verb:pause");
        if Ctx.branch ctx (site "pause:notplaying")
             (Guest_heap.get_i32 heap (conn + f_playing) = 0)
        then r 455 "Method Not Valid in This State" ""
        else r 200 "OK" ""
      | "TEARDOWN" ->
        Ctx.hit ctx (site "verb:teardown");
        Guest_heap.set_i32 heap (conn + f_session) 0;
        Guest_heap.set_i32 heap (conn + f_playing) 0;
        r 200 "OK" ""
      | "GET_PARAMETER" | "SET_PARAMETER" ->
        Ctx.hit ctx (site "verb:parameter");
        r 200 "OK" ""
      | _ ->
        Ctx.hit ctx (site "verb:unknown");
        r 501 "Not Implemented" "")
    | _ ->
      Ctx.hit ctx (site "reqline:malformed");
      r 400 "Bad Request" "")

let target =
  {
    Target.info =
      {
        Target.name;
        role = Target.Server;
        port = 8554;
        proto = Nyx_netemu.Net.Tcp;
        dissector = Nyx_pcap.Dissector.Raw;
        startup_ns = 60_000_000;
        work_ns = 3_800_000;
        desock_compat = false;
        forking = false;
        max_recv = 4096;
        dict = [ "DESCRIBE"; "SETUP"; "PLAY"; "PAUSE"; "TEARDOWN"; "RTSP/1.0"; "CSeq:"; "Transport:"; "RTP/AVP"; "unicast"; "application/sdp"; "Session:" ];
      };
    hooks = { Target.default_hooks with conn_state_size = 12; on_packet };
  }

let seeds =
  [
    List.map Bytes.of_string
      [
        "OPTIONS rtsp://server/stream RTSP/1.0\r\nCSeq: 1\r\n\r\n";
        "DESCRIBE rtsp://server/stream RTSP/1.0\r\nCSeq: 2\r\nAccept: application/sdp\r\n\r\n";
        "SETUP rtsp://server/stream/track1 RTSP/1.0\r\nCSeq: 3\r\n\
         Transport: RTP/AVP;unicast;client_port=5000-5001\r\n\r\n";
        "PLAY rtsp://server/stream RTSP/1.0\r\nCSeq: 4\r\nSession: 00000007\r\n\r\n";
      ];
  ]
