open Nyx_netemu

type role = Server | Client

type info = {
  name : string;
  role : role;
  port : int;
  proto : Net.proto;
  dissector : Nyx_pcap.Dissector.t;
  startup_ns : int;
  work_ns : int;
  desock_compat : bool;
  forking : bool;
  max_recv : int;
  dict : string list;
}

type hooks = {
  global_state_size : int;
  conn_state_size : int;
  on_init : Ctx.t -> g:int -> unit;
  on_connect : Ctx.t -> g:int -> conn:int -> reply:(bytes -> unit) -> unit;
  on_packet : Ctx.t -> g:int -> conn:int -> reply:(bytes -> unit) -> bytes -> unit;
  on_disconnect : Ctx.t -> g:int -> conn:int -> unit;
}

type t = { info : info; hooks : hooks }

let default_hooks =
  {
    global_state_size = 16;
    conn_state_size = 16;
    on_init = (fun _ ~g:_ -> ());
    on_connect = (fun _ ~g:_ ~conn:_ ~reply:_ -> ());
    on_packet = (fun _ ~g:_ ~conn:_ ~reply:_ _ -> ());
    on_disconnect = (fun _ ~g:_ ~conn:_ -> ());
  }

type runtime = {
  t : t;
  rt_ctx : Ctx.t;
  g : int;
  conns : Conn_table.t;
  listen_fd : Net.fd;
}

let boot t ctx =
  Nyx_sim.Clock.advance ctx.Ctx.clock t.info.startup_ns;
  let g = Nyx_vm.Guest_heap.alloc ctx.Ctx.heap (max 4 t.hooks.global_state_size) in
  t.hooks.on_init ctx ~g;
  let conns = Conn_table.create ctx ~conn_state_size:(max 4 t.hooks.conn_state_size) in
  let fd = Net.socket ctx.Ctx.net t.info.proto in
  (match t.info.role with
  | Server ->
    Net.setsockopt ctx.Ctx.net fd "SO_REUSEADDR" 1;
    Net.bind ctx.Ctx.net fd t.info.port;
    if t.info.proto <> Net.Udp then Net.listen ctx.Ctx.net fd
  | Client ->
    (* The client dials out during startup; the fuzzer will play the
       remote service on the resulting flow. *)
    ignore (Net.connect_out ctx.Ctx.net fd ~port:t.info.port);
    (match Conn_table.insert conns ~key:fd with
    | Some conn ->
      let reply data = ignore (Net.send ctx.Ctx.net fd data) in
      t.hooks.on_connect ctx ~g ~conn ~reply
    | None -> ()));
  { t; rt_ctx = ctx; g; conns; listen_fd = fd }

(* Event-loop iteration budget before the pump declares the guest wedged.
   Overridable via NYX_HANG_BUDGET (read once at load, like NYX_DOMAINS)
   for targets whose event loops legitimately need more rounds. *)
let default_hang_budget = 4096

let env_hang_budget =
  match Sys.getenv_opt "NYX_HANG_BUDGET" with
  | None | Some "" -> None
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> Some n
    | _ -> None)

(* In-process override for tests (beats the environment). Domain-safe:
   set before any campaign runs, read-only from worker domains. *)
let hang_budget_override : int option ref = ref None

let set_hang_budget_override n = hang_budget_override := n

let hang_budget () =
  match !hang_budget_override with
  | Some n -> n
  | None -> ( match env_hang_budget with Some n -> n | None -> default_hang_budget)

let pump rt =
  let ctx = rt.rt_ctx in
  let net = ctx.Ctx.net in
  let hooks = rt.t.hooks in
  let info = rt.t.info in
  let budget = hang_budget () in
  let iterations = ref 0 in
  let continue = ref true in
  while !continue do
    incr iterations;
    if !iterations > budget then
      Ctx.crash ctx ~kind:"hang"
        (Printf.sprintf "event loop did not quiesce within %d iterations (hang budget)"
           budget);
    match Net.poll net with
    | None -> continue := false
    | Some (`Accept fd) -> (
      let conn_fd = Net.accept net fd in
      match Conn_table.insert rt.conns ~key:conn_fd with
      | None ->
        (* Connection table full: refuse, as real servers do. *)
        Ctx.hit ctx (info.name ^ "/refuse");
        Net.close net conn_fd
      | Some conn ->
        if info.forking then ignore (Net.fork net);
        let reply data = ignore (Net.send net conn_fd data) in
        hooks.on_connect ctx ~g:rt.g ~conn ~reply)
    | Some (`Read fd) when info.proto = Net.Udp && fd = rt.listen_fd ->
      let data, flow = Net.recvfrom net fd ~max:info.max_recv in
      if Bytes.length data > 0 then begin
        let conn =
          match Conn_table.find rt.conns ~key:flow with
          | Some addr -> Some addr
          | None -> (
            match Conn_table.insert rt.conns ~key:flow with
            | None ->
              Ctx.hit ctx (info.name ^ "/refuse");
              None
            | Some addr ->
              let reply data = ignore (Net.sendto net fd flow data) in
              hooks.on_connect ctx ~g:rt.g ~conn:addr ~reply;
              Some addr)
        in
        match conn with
        | None -> ()
        | Some conn ->
          Ctx.work ctx info.work_ns;
          let reply data = ignore (Net.sendto net fd flow data) in
          hooks.on_packet ctx ~g:rt.g ~conn ~reply data
      end
    | Some (`Read fd) ->
      let data = Net.recv net fd ~max:info.max_recv in
      if Bytes.length data = 0 then begin
        (match Conn_table.find rt.conns ~key:fd with
        | Some conn ->
          hooks.on_disconnect ctx ~g:rt.g ~conn;
          Conn_table.remove rt.conns ~key:fd
        | None -> ());
        Net.close net fd
      end
      else begin
        match Conn_table.find rt.conns ~key:fd with
        | None -> () (* data on an untracked fd: drop, as servers do *)
        | Some conn ->
          Ctx.work ctx info.work_ns;
          let reply data = ignore (Net.send net fd data) in
          hooks.on_packet ctx ~g:rt.g ~conn ~reply data
      end
  done

let ctx rt = rt.rt_ctx
let target rt = rt.t

(* StateAFL-style protocol-state identification (used by the dynamic
   snapshot-placement policy): fuzzy-hash the auxiliary snapshot state —
   the emulated network stack is registered there, so socket tables and
   flow structure feed in — and fold in the target's explicit state-code
   annotation. Charges Cost.state_hash plus the aux capture's per-byte
   cost, all on the virtual clock, so probing is deterministic. *)
let state_hash ctx aux =
  Nyx_sim.Clock.advance ctx.Ctx.clock Nyx_sim.Cost.state_hash;
  let cap = Nyx_snapshot.Aux_state.hash_capture aux ctx.Ctx.clock in
  (Nyx_snapshot.Aux_state.fuzzy_hash cap lxor Ctx.state_signature ctx) land max_int

let sample_capture_of_packets ?(stream = 0) packets =
  List.fold_left
    (fun (cap, ts) payload ->
      ( Nyx_pcap.Capture.add cap
          { Nyx_pcap.Capture.stream; dir = Nyx_pcap.Capture.To_server; ts_us = ts; payload },
        ts + 1000 ))
    (Nyx_pcap.Capture.empty, 0) packets
  |> fst
