(** Small parsing helpers shared by the protocol servers. *)

val line_of : bytes -> string
(** Payload as a string with one trailing CR/LF pair stripped. *)

val tokens : string -> string list
(** Split on runs of spaces/tabs. *)

val upper : string -> string
(** ASCII uppercase. *)

val starts_with_ci : prefix:string -> string -> bool

val read_be : bytes -> pos:int -> len:int -> int option
(** Big-endian unsigned integer, [None] when out of range. *)

val byte_at : bytes -> int -> int option

val int_of_string_bounded : ?max:int -> string -> int option
(** Parse a non-negative decimal integer, rejecting values above [max]
    (default [max_int]) — servers must bound attacker-controlled sizes. *)

val iter_frames :
  header_len:int ->
  frame_len:(bytes -> int option) ->
  bytes ->
  (bytes -> unit) ->
  unit
(** [iter_frames ~header_len ~frame_len data f] splits [data] into
    length-framed protocol messages: [frame_len] inspects a frame's first
    [header_len] bytes and returns the total frame size. [f] is called per
    complete frame; a trailing partial frame (or an undecodable header) is
    passed to [f] as-is and ends iteration — how stream parsers treat
    truncated input. This is what lets binary targets consume several
    PDUs from one coalesced TCP read. *)

val find_blank_line : string -> int option
(** Index just past the first blank line ([\r\n\r\n] or [\n\n]) separating
    headers from body, if any. *)

val header_value : name:string -> string -> string option
(** [header_value ~name "Name: value"] extracts the value of a
    ["Name: value"] header line, case-insensitive on the name. *)
