(** dnsmasq analogue: a DNS forwarder/parser over UDP.

    Carries the compressed-name pointer-loop bug that every fuzzer in the
    paper's evaluation finds (Table 1): a compression pointer chain deeper
    than the implementation's recursion budget exhausts the stack. One
    crafted datagram suffices. *)

val target : Target.t
val seeds : bytes list list

val make_query : ?id:int -> ?qtype:int -> string -> bytes
(** A well-formed single-question query for a dotted name (test/seed
    helper). *)
