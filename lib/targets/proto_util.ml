let line_of b =
  let s = Bytes.to_string b in
  let len = String.length s in
  if len >= 2 && s.[len - 2] = '\r' && s.[len - 1] = '\n' then String.sub s 0 (len - 2)
  else if len >= 1 && (s.[len - 1] = '\n' || s.[len - 1] = '\r') then
    String.sub s 0 (len - 1)
  else s

let tokens s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun t -> t <> "")

let upper = String.uppercase_ascii

let starts_with_ci ~prefix s =
  String.length s >= String.length prefix
  && upper (String.sub s 0 (String.length prefix)) = upper prefix

let read_be b ~pos ~len =
  if pos < 0 || len <= 0 || pos + len > Bytes.length b then None
  else begin
    let v = ref 0 in
    for i = 0 to len - 1 do
      v := (!v lsl 8) lor Char.code (Bytes.get b (pos + i))
    done;
    Some !v
  end

let byte_at b i =
  if i < 0 || i >= Bytes.length b then None else Some (Char.code (Bytes.get b i))

let int_of_string_bounded ?(max = max_int) s =
  match int_of_string_opt s with
  | Some v when v >= 0 && v <= max -> Some v
  | _ -> None

let iter_frames ~header_len ~frame_len data f =
  let len = Bytes.length data in
  let rec next pos =
    if pos >= len then ()
    else if pos + header_len > len then f (Bytes.sub data pos (len - pos))
    else begin
      let header = Bytes.sub data pos header_len in
      match frame_len header with
      | Some total when total >= header_len && pos + total <= len ->
        f (Bytes.sub data pos total);
        next (pos + total)
      | Some _ | None -> f (Bytes.sub data pos (len - pos))
    end
  in
  next 0

let find_blank_line s =
  let len = String.length s in
  let rec scan i =
    if i + 3 < len && s.[i] = '\r' && s.[i + 1] = '\n' && s.[i + 2] = '\r' && s.[i + 3] = '\n'
    then Some (i + 4)
    else if i + 1 < len && s.[i] = '\n' && s.[i + 1] = '\n' then Some (i + 2)
    else if i >= len then None
    else scan (i + 1)
  in
  scan 0

let header_value ~name s =
  match String.index_opt s ':' with
  | None -> None
  | Some i ->
    if upper (String.sub s 0 i) = upper name then
      Some (String.trim (String.sub s (i + 1) (String.length s - i - 1)))
    else None
