open Nyx_vm

let name = "dcmtk"
let site s = name ^ "/" ^ s

(* PDU: type(1) reserved(1) length(4 BE) payload. *)
let make_pdu pdu_type payload =
  let buf = Buffer.create (6 + Bytes.length payload) in
  Buffer.add_char buf (Char.chr pdu_type);
  Buffer.add_char buf '\000';
  let len = Bytes.length payload in
  for i = 3 downto 0 do
    Buffer.add_char buf (Char.chr ((len lsr (8 * i)) land 0xff))
  done;
  Buffer.add_bytes buf payload;
  Buffer.to_bytes buf

let make_associate_rq () =
  let payload = Buffer.create 32 in
  Buffer.add_string payload "\x00\x01" (* protocol version *);
  Buffer.add_string payload "\x00\x00" (* reserved *);
  Buffer.add_string payload (Printf.sprintf "%-16s" "CALLED-AE");
  Buffer.add_string payload (Printf.sprintf "%-16s" "CALLING-AE");
  make_pdu 1 (Buffer.to_bytes payload)

let make_echo_data () =
  (* P-DATA with one element: tag(4) length(2 BE) value. *)
  let payload = Buffer.create 16 in
  Buffer.add_string payload "\x00\x08\x00\x18" (* tag *);
  Buffer.add_string payload "\x00\x04" (* element length *);
  Buffer.add_string payload "ECHO";
  make_pdu 4 (Buffer.to_bytes payload)

(* Connection state offsets. *)
let f_associated = 0
let f_pdus = 4
let f_corrupted = 8

(* How many silently corrupting executions one process survives without
   ASan before the heap metadata finally gives out. The counter lives in
   the spool file on the emulated disk: AFLNet-style cleanup scripts miss
   it, so corruption accumulates across their test cases, while whole-VM
   snapshots roll it back every execution (the Table 1 footnote). *)
let corruption_budget = 3

let spool_sector = 0

let read_corruption ctx =
  Char.code (Bytes.get (Nyx_vm.Disk.read_sector ctx.Ctx.disk spool_sector) 0)

let write_corruption ctx v =
  let sector = Bytes.make (Nyx_vm.Disk.sector_size ctx.Ctx.disk) '\000' in
  Bytes.set sector 0 (Char.chr (v land 0xff));
  Nyx_vm.Disk.write_sector ctx.Ctx.disk spool_sector sector

let parse_elements ctx ~conn ~buffer_addr payload =
  (* Copy the payload into a fixed 64-byte parse buffer, then walk data
     elements: tag(4) length(2) value. Oversized element lengths read past
     the buffer — the planted OOB. *)
  let heap = ctx.Ctx.heap in
  let copy_len = min (Bytes.length payload) 64 in
  Guest_heap.checked_set heap ~base:buffer_addr ~off:0 (Bytes.sub payload 0 copy_len);
  let pos = ref 4 (* skip tag of first element *) in
  let elements = ref 0 in
  let continue = ref true in
  while !continue && !pos + 2 <= copy_len do
    match Proto_util.read_be payload ~pos:!pos ~len:2 with
    | None -> continue := false
    | Some elen ->
      incr elements;
      if Ctx.branch ctx (site "elem:oversized") (!pos + 2 + elen > 64) then begin
        (* Out-of-bounds read of the parse buffer. *)
        if ctx.Ctx.asan then
          ignore (Guest_heap.checked_get heap ~base:buffer_addr ~off:(!pos + 2) ~len:elen)
        else begin
          (* Silent corruption: at most one spool write per association,
             surviving until the budget is exhausted in this environment —
             or crashing outright on an unlucky layout. *)
          let corrupt =
            if Guest_heap.get_i32 heap (conn + f_corrupted) = 1 then read_corruption ctx
            else begin
              Guest_heap.set_i32 heap (conn + f_corrupted) 1;
              let c = read_corruption ctx + 1 in
              write_corruption ctx c;
              c
            end
          in
          if corrupt >= corruption_budget then
            Ctx.crash ctx ~kind:"heap-corruption"
              (Printf.sprintf "accumulated %d corrupting reads" corrupt);
          if ctx.Ctx.layout_cookie land 7 = 0 then
            Ctx.crash ctx ~kind:"segfault" "oversized element read crossed a guard page"
        end;
        continue := false
      end
      else begin
        (match elen with
        | 0 -> Ctx.hit ctx (site "elem:empty")
        | n when n <= 4 -> Ctx.hit ctx (site "elem:small")
        | _ -> Ctx.hit ctx (site "elem:large"));
        pos := !pos + 2 + elen + 4 (* value + next tag *)
      end
  done;
  !elements

(* The parse buffer's guest address is stored in the global state block so
   each booted instance has its own (and it snapshots like everything
   else). *)
let g_buffer_addr = 4

let on_init ctx ~g =
  let addr = Guest_heap.alloc ctx.Ctx.heap 64 in
  Guest_heap.set_i32 ctx.Ctx.heap (g + g_buffer_addr) addr

let handle_pdu ctx ~g ~conn ~reply data =
  let heap = ctx.Ctx.heap in
  Ctx.hit ctx (site "packet");
  if Ctx.branch ctx (site "short") (Bytes.length data < 6) then ()
  else begin
    let pdu_type = Char.code (Bytes.get data 0) in
    let declared = Option.value ~default:0 (Proto_util.read_be data ~pos:2 ~len:4) in
    let payload_len = Bytes.length data - 6 in
    ignore (Ctx.branch ctx (site "len:exact") (declared = payload_len));
    let payload = Bytes.sub data 6 payload_len in
    Guest_heap.set_i32 heap (conn + f_pdus) (Guest_heap.get_i32 heap (conn + f_pdus) + 1);
    match pdu_type with
    | 1 ->
      Ctx.hit ctx (site "pdu:associate-rq");
      if Ctx.branch ctx (site "assoc:short") (payload_len < 36) then
        reply (make_pdu 3 (Bytes.of_string "\x00\x01")) (* reject *)
      else begin
        let version = Option.value ~default:0 (Proto_util.read_be payload ~pos:0 ~len:2) in
        if Ctx.branch ctx (site "assoc:version") (version <> 1) then
          reply (make_pdu 3 (Bytes.of_string "\x00\x02"))
        else begin
          Guest_heap.set_i32 heap (conn + f_associated) 1;
          Ctx.set_state ctx 2;
          reply (make_pdu 2 (Bytes.of_string "\x00\x01\x00\x00accepted"))
        end
      end
    | 4 ->
      Ctx.hit ctx (site "pdu:data");
      if Ctx.branch ctx (site "data:unassociated")
           (Guest_heap.get_i32 heap (conn + f_associated) = 0)
      then reply (make_pdu 7 Bytes.empty) (* abort *)
      else begin
        let buffer_addr = Guest_heap.get_i32 heap (g + g_buffer_addr) in
        let n = parse_elements ctx ~conn ~buffer_addr payload in
        ignore (Ctx.branch ctx (site "data:multi") (n > 2));
        Ctx.set_state ctx 4;
        reply (make_pdu 4 (Bytes.of_string "\x00\x00"))
      end
    | 5 ->
      Ctx.hit ctx (site "pdu:release-rq");
      Guest_heap.set_i32 heap (conn + f_associated) 0;
      Ctx.set_state ctx 6;
      reply (make_pdu 6 Bytes.empty)
    | 7 -> Ctx.hit ctx (site "pdu:abort")
    | 2 | 3 | 6 -> Ctx.hit ctx (site "pdu:server-only")
    | _ -> Ctx.hit ctx (site "pdu:unknown")
  end

(* A TCP read may contain several PDUs (or a partial one): walk them by
   the declared length, as the real DUL state machine does. *)
let on_packet ctx ~g ~conn ~reply data =
  Proto_util.iter_frames ~header_len:6
    ~frame_len:(fun h -> Option.map (fun l -> 6 + l) (Proto_util.read_be h ~pos:2 ~len:4))
    data
    (fun frame -> handle_pdu ctx ~g ~conn ~reply frame)

let target =
  {
    Target.info =
      {
        Target.name;
        role = Target.Server;
        port = 104;
        proto = Nyx_netemu.Net.Tcp;
        dissector = Nyx_pcap.Dissector.Raw;
        startup_ns = 120_000_000;
        work_ns = 150_000;
        desock_compat = false;
        forking = false;
        max_recv = 8192;
        dict = [ "\x00\x01"; "\x00\x08\x00\x18" ];
      };
    hooks =
      {
        Target.default_hooks with
        global_state_size = 8;
        conn_state_size = 12;
        on_init;
        on_packet;
      };
  }

let seeds = [ [ make_associate_rq (); make_echo_data (); make_pdu 5 Bytes.empty ] ]
