(** pure-ftpd analogue.

    Its only latent fault is an internal upload-quota exhaustion (an OOM
    behind an internal limit, the [*] footnote of Table 1): it needs 20
    stored files to accumulate in one server process, which only fuzzers
    that do not reset state between test cases (AFLNet-family) can reach. *)

val target : Target.t
val seeds : bytes list list
