(** kamailio analogue: a SIP proxy's request parser over UDP.

    No planted bug; it is the coverage-depth target — the paper reports
    the biggest coverage gap here (+45–47% over AFLNet), coming from a
    large header-parsing surface only reachable with many diverse
    packets. *)

val target : Target.t
val seeds : bytes list list
