(** exim analogue: an SMTP server.

    Carries the deep stateful header-rewriting bug that only Nyx-Net finds
    in the paper (Table 1): inside DATA (reached only after EHLO → MAIL →
    RCPT), a header line longer than the rewrite buffer with its colon
    beyond the fold point overflows the continuation logic. Triggering it
    needs a 5-packet protocol prefix plus payload growth — exactly the
    scenario where throughput and incremental snapshots matter. *)

val target : Target.t
val seeds : bytes list list
