(** Shared FTP server engine.

    ProFuzzBench contains four FTP servers (bftpd, lightftp, proftpd,
    pure-ftpd) that differ in command surface, authentication behaviour
    and bugs. This engine implements the common RFC 959 state machine;
    each target instantiates it with its own command subset, coverage
    namespace and a [special] hook for target-specific commands and
    planted bugs. *)

type special_args = {
  ctx : Ctx.t;
  g : int;  (** global state guest address *)
  conn : int;  (** per-connection state guest address *)
  cmd : string;  (** uppercased verb *)
  arg : string;
  reply : bytes -> unit;
}

type config = {
  name : string;  (** coverage namespace — keeps per-target edges distinct *)
  banner : string;
  require_auth : bool;
  commands : string list;  (** supported verbs (uppercase) *)
  special : (special_args -> bool) option;
      (** Runs before generic dispatch; return [true] when handled. *)
}

val conn_state_size : int
val global_state_size : int

(** Guest-state field offsets, exposed for [special] hooks and tests. *)
module Field : sig
  val auth : int  (** 0 = none, 1 = USER given, 2 = logged in *)

  val ty : int  (** 0 = ASCII, 1 = binary *)

  val passive : int
  val rnfr_pending : int
  val rest_offset : int
  val cwd_depth : int
  val g_connections : int
  val g_stored_count : int
  val g_stored_hash : int
end

val hooks : config -> Target.hooks

val standard_commands : string list
(** The full command set; targets usually pass a subset. *)

val sample_session : string list
(** A canned command sequence (CRLF-terminated) usable as seed traffic. *)
