(** lightftp analogue: a minimal FTP server supporting only a core command
    subset; works under libpreeny's desock emulation. *)

val target : Target.t
val seeds : bytes list list
