(** dcmtk analogue: a DICOM upper-layer (DUL) PDU parser.

    Carries the silent-corruption out-of-bounds read of Table 1's
    footnote: a data element whose declared length exceeds the PDU buffer
    reads past the allocation. With ASan the first occurrence crashes
    (within seconds); without it the read only corrupts bookkeeping, and a
    crash needs either an unlucky initial memory layout or corruption
    accumulated across several test cases in one process — which only
    no-reset fuzzers (the AFLNet family) exhibit. *)

val target : Target.t
val seeds : bytes list list

val make_pdu : int -> bytes -> bytes
(** [make_pdu pdu_type payload] with a correct length field. *)

val make_associate_rq : unit -> bytes
val make_echo_data : unit -> bytes
