open Nyx_vm

let name = "echo"
let site s = name ^ "/" ^ s

let f_mode = 0 (* 0 = line mode, 1 = raw mode *)

let on_packet ctx ~g:_ ~conn ~reply data =
  let heap = ctx.Ctx.heap in
  Ctx.hit ctx (site "packet");
  let line = Proto_util.line_of data in
  if Ctx.branch ctx (site "cmd:mode") (Proto_util.starts_with_ci ~prefix:"MODE " line)
  then begin
    let arg = String.sub line 5 (String.length line - 5) in
    if Ctx.branch ctx (site "mode:raw") (Proto_util.upper arg = "RAW") then begin
      Guest_heap.set_i32 heap (conn + f_mode) 1;
      reply (Bytes.of_string "mode: raw\r\n")
    end
    else begin
      Guest_heap.set_i32 heap (conn + f_mode) 0;
      reply (Bytes.of_string "mode: line\r\n")
    end
  end
  else if
    (* Character-by-character keyword match: each prefix is its own branch,
       so coverage-guided fuzzers ratchet towards the full keyword. *)
    Guest_heap.get_i32 heap (conn + f_mode) = 1
    && (let keyword = "BOOM" in
        let rec matches i =
          i >= String.length keyword
          || Ctx.branch ctx
               (site (Printf.sprintf "boom:%d" i))
               (String.length line > i
               && Char.uppercase_ascii line.[i] = keyword.[i])
             && matches (i + 1)
        in
        matches 0)
  then Ctx.crash ctx ~kind:"assertion" "BOOM in raw mode"
  else begin
    ignore (Ctx.branch ctx (site "len:big") (String.length line > 64));
    reply data
  end

let target =
  {
    Target.info =
      {
        Target.name;
        role = Target.Server;
        port = 7;
        proto = Nyx_netemu.Net.Tcp;
        dissector = Nyx_pcap.Dissector.Crlf;
        startup_ns = 5_000_000;
        work_ns = 50_000;
        desock_compat = true;
        forking = false;
        max_recv = 512;
        dict = [ "MODE"; "raw"; "BOOM" ];
      };
    hooks = { Target.default_hooks with conn_state_size = 4; on_packet };
  }

let seeds = [ List.map Bytes.of_string [ "MODE raw\r\n"; "hello world\r\n" ] ]
