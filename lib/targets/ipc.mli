(** Firefox-IPC analogue (§5.6): an actor-based IPC broker over multiple
    simultaneous Unix-domain connections.

    Messages are [actor(2) | msg_type(2) | len(4) | payload]. Actors are
    created and destroyed dynamically and some messages carry a descriptor
    handle to another connection — the fd-passing pattern the agent must
    track. Messaging a destroyed actor dereferences a dangling pointer
    (use-after-free), reachable only with a multi-message, multi-connection
    sequence. Incompatible with desock (needs several connections at
    once). *)

val target : Target.t
val seeds : bytes list list

val make_msg : actor:int -> msg_type:int -> bytes -> bytes
