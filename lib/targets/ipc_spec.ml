type t = {
  spec : Nyx_spec.Spec.t;
  actor : Nyx_spec.Spec.edge_ty;
  create : Nyx_spec.Spec.node_ty;
  destroy : Nyx_spec.Spec.node_ty;
  message : Nyx_spec.Spec.node_ty;
  share : Nyx_spec.Spec.node_ty;
  ping : Nyx_spec.Spec.node_ty;
}

let create () =
  let b = Nyx_spec.Spec.start "firefox-ipc-typed" in
  let actor = Nyx_spec.Spec.edge_type b "actor" in
  let slot = Nyx_spec.Spec.data_type b ~max_len:1 "slot-hint" in
  let payload = Nyx_spec.Spec.data_type b ~max_len:256 "payload" in
  let create = Nyx_spec.Spec.node_type b ~outputs:[ actor ] ~data:[ slot ] "create" in
  (* destroy borrows: the wire protocol happily accepts further messages
     to a destroyed actor id, which is exactly the bug surface. *)
  let destroy = Nyx_spec.Spec.node_type b ~borrows:[ actor ] "destroy" in
  let message = Nyx_spec.Spec.node_type b ~borrows:[ actor ] ~data:[ payload ] "message" in
  let share = Nyx_spec.Spec.node_type b ~borrows:[ actor; actor ] "share" in
  let ping = Nyx_spec.Spec.node_type b ~borrows:[ actor ] "ping" in
  { spec = Nyx_spec.Spec.finalize b; actor; create; destroy; message; share; ping }

let slot_of_data data =
  if Array.length data > 0 && Bytes.length data.(0) > 0 then
    Char.code (Bytes.get data.(0) 0) land 7
  else 1

let handler t ~send (nt : Nyx_spec.Spec.node_ty) inputs data =
  let msg ~actor ~msg_type payload = send (Ipc.make_msg ~actor ~msg_type payload) in
  if nt.Nyx_spec.Spec.nt_id = t.create.Nyx_spec.Spec.nt_id then begin
    let slot = slot_of_data data in
    msg ~actor:slot ~msg_type:1 Bytes.empty;
    Some [ slot ]
  end
  else if nt.Nyx_spec.Spec.nt_id = t.destroy.Nyx_spec.Spec.nt_id then begin
    (match inputs with [ a ] -> msg ~actor:a ~msg_type:2 Bytes.empty | _ -> ());
    Some []
  end
  else if nt.Nyx_spec.Spec.nt_id = t.message.Nyx_spec.Spec.nt_id then begin
    (match inputs with
    | [ a ] ->
      let payload = if Array.length data > 0 then data.(0) else Bytes.empty in
      msg ~actor:a ~msg_type:3 payload
    | _ -> ());
    Some []
  end
  else if nt.Nyx_spec.Spec.nt_id = t.share.Nyx_spec.Spec.nt_id then begin
    (match inputs with
    | [ a; other ] ->
      msg ~actor:a ~msg_type:4
        (Bytes.of_string (Printf.sprintf "%c%c" (Char.chr (other lsr 8)) (Char.chr (other land 0xff))))
    | _ -> ());
    Some []
  end
  else if nt.Nyx_spec.Spec.nt_id = t.ping.Nyx_spec.Spec.nt_id then begin
    (match inputs with [ a ] -> msg ~actor:a ~msg_type:5 Bytes.empty | _ -> ());
    Some []
  end
  else None

let seed t =
  let b = Nyx_spec.Builder.create t.spec in
  let a1 =
    List.hd (Nyx_spec.Builder.call b "create" ~data:[ Bytes.of_string "\x01" ] [])
  in
  let a2 =
    List.hd (Nyx_spec.Builder.call b "create" ~data:[ Bytes.of_string "\x02" ] [])
  in
  ignore (Nyx_spec.Builder.call b "ping" [ a1 ]);
  ignore (Nyx_spec.Builder.call b "message" ~data:[ Bytes.of_string "hello actor" ] [ a1 ]);
  ignore (Nyx_spec.Builder.call b "share" [ a1; a2 ]);
  ignore (Nyx_spec.Builder.call b "message" ~data:[ Bytes.of_string "to two" ] [ a2 ]);
  ignore (Nyx_spec.Builder.call b "destroy" [ a2 ]);
  Nyx_spec.Builder.build b
