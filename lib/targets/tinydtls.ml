let name = "tinydtls"
let site s = name ^ "/" ^ s

(* DTLS record: type(1) ver(2) epoch(2) seq(6) len(2) payload.
   Handshake fragment: msg_type(1) length(3) msg_seq(2) frag_off(3)
   frag_len(3) body. *)

let record_header_len = 13
let hs_header_len = 12

let make_record content_type payload =
  let buf = Buffer.create 64 in
  Buffer.add_char buf (Char.chr content_type);
  Buffer.add_string buf "\xfe\xfd" (* DTLS 1.2 *);
  Buffer.add_string buf "\x00\x00" (* epoch *);
  Buffer.add_string buf "\x00\x00\x00\x00\x00\x01" (* seq *);
  Buffer.add_char buf (Char.chr ((Bytes.length payload lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr (Bytes.length payload land 0xff));
  Buffer.add_bytes buf payload;
  Buffer.to_bytes buf

let make_handshake msg_type body =
  let buf = Buffer.create 32 in
  let be n v =
    for i = n - 1 downto 0 do
      Buffer.add_char buf (Char.chr ((v lsr (8 * i)) land 0xff))
    done
  in
  Buffer.add_char buf (Char.chr msg_type);
  be 3 (Bytes.length body);
  be 2 0 (* msg_seq *);
  be 3 0 (* frag_off *);
  be 3 (Bytes.length body) (* frag_len *);
  Buffer.add_bytes buf body;
  Buffer.to_bytes buf

let make_client_hello ?(with_cookie = false) () =
  let body = Buffer.create 48 in
  Buffer.add_string body "\xfe\xfd" (* client_version *);
  Buffer.add_string body (String.make 32 'r') (* random *);
  Buffer.add_char body '\000' (* session id len *);
  if with_cookie then begin
    Buffer.add_char body '\016';
    Buffer.add_string body (String.make 16 'c')
  end
  else Buffer.add_char body '\000';
  Buffer.add_string body "\x00\x02\xc0\xa8" (* one cipher suite *);
  Buffer.add_string body "\x01\x00" (* null compression *);
  make_record 22 (make_handshake 1 (Buffer.to_bytes body))

(* Per-flow state offsets. *)
let f_state = 0 (* 0 = fresh, 1 = cookie sent, 2 = handshake started *)

let on_packet ctx ~g:_ ~conn ~reply data =
  let heap = ctx.Ctx.heap in
  Ctx.hit ctx (site "packet");
  if Ctx.branch ctx (site "short-record") (Bytes.length data < record_header_len) then ()
  else begin
    let be pos len = Option.value ~default:0 (Proto_util.read_be data ~pos ~len) in
    let content_type = be 0 1 in
    let version = be 1 2 in
    let epoch = be 3 2 in
    let rec_len = be 11 2 in
    ignore (Ctx.branch ctx (site "ver:dtls12") (version = 0xFEFD));
    ignore (Ctx.branch ctx (site "epoch:zero") (epoch = 0));
    if Ctx.branch ctx (site "len:mismatch") (record_header_len + rec_len > Bytes.length data)
    then () (* truncated record dropped *)
    else begin
      match content_type with
      | 20 -> Ctx.hit ctx (site "ccs")
      | 21 ->
        Ctx.hit ctx (site "alert");
        Ctx.set_state ctx 21
      | 23 ->
        Ctx.hit ctx (site "appdata");
        if Ctx.branch ctx (site "appdata:early")
             (Nyx_vm.Guest_heap.get_i32 heap (conn + f_state) < 2)
        then () (* app data before handshake: dropped *)
        else reply (make_record 23 (Bytes.of_string "ok"))
      | 22 ->
        Ctx.hit ctx (site "handshake");
        if Ctx.branch ctx (site "hs:short") (rec_len < hs_header_len) then ()
        else begin
          let msg_type = be record_header_len 1 in
          let msg_len = be (record_header_len + 1) 3 in
          let frag_off = be (record_header_len + 6) 3 in
          let frag_len = be (record_header_len + 9) 3 in
          (* The planted bug: reassembly computes msg_len - frag_len
             without checking frag_len <= msg_len. *)
          if Ctx.branch ctx (site "hs:frag-underflow") (frag_len > msg_len) then
            Ctx.crash ctx ~kind:"integer-underflow"
              (Printf.sprintf "fragment_length %d exceeds message length %d" frag_len
                 msg_len);
          if Ctx.branch ctx (site "hs:frag-offset") (frag_off + frag_len > msg_len) then ()
          else begin
            match msg_type with
            | 1 ->
              Ctx.hit ctx (site "hs:client-hello");
              let st = Nyx_vm.Guest_heap.get_i32 heap (conn + f_state) in
              if Ctx.branch ctx (site "hs:need-cookie") (st = 0) then begin
                Nyx_vm.Guest_heap.set_i32 heap (conn + f_state) 1;
                Ctx.set_state ctx 3;
                reply (make_record 22 (make_handshake 3 (Bytes.of_string "cookie")))
              end
              else begin
                Nyx_vm.Guest_heap.set_i32 heap (conn + f_state) 2;
                Ctx.set_state ctx 2;
                reply (make_record 22 (make_handshake 2 (Bytes.of_string "server-hello")))
              end
            | 16 ->
              Ctx.hit ctx (site "hs:client-key-exchange");
              reply (make_record 20 (Bytes.of_string "\x01"))
            | 11 -> Ctx.hit ctx (site "hs:certificate")
            | 20 -> Ctx.hit ctx (site "hs:finished")
            | _ -> Ctx.hit ctx (site "hs:other")
          end
        end
      | _ -> Ctx.hit ctx (site "ctype:other")
    end
  end

let target =
  {
    Target.info =
      {
        Target.name;
        role = Target.Server;
        port = 20220;
        proto = Nyx_netemu.Net.Udp;
        dissector = Nyx_pcap.Dissector.Datagram;
        startup_ns = 30_000_000;
        work_ns = 450_000;
        desock_compat = false;
        forking = false;
        max_recv = 1500;
        dict = [ "\xfe\xfd"; "\x16"; "\x01"; "\x03" ];
      };
    hooks = { Target.default_hooks with conn_state_size = 8; on_packet };
  }

let seeds =
  [ [ make_client_hello (); make_client_hello ~with_cookie:true () ] ]
