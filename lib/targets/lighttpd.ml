open Nyx_vm

let name = "lighttpd"
let site s = name ^ "/" ^ s

(* Connection state. *)
let f_requests = 0
let f_keepalive = 4

let routes = [ "/"; "/index.html"; "/cgi-bin/test"; "/status"; "/favicon.ico" ]

let respond reply code reason body =
  reply
    (Bytes.of_string
       (Printf.sprintf "HTTP/1.1 %d %s\r\nServer: lighttpd-sim\r\nContent-Length: %d\r\n\r\n%s"
          code reason (String.length body) body))

(* Chunked-body decoding: each chunk is "<hex-size>\r\n<data>\r\n". The
   buffer-resize computation subtracts what is already buffered from the
   declared chunk size without checking for underflow — the §5.5 bug. *)
let decode_chunked ctx body =
  let len = String.length body in
  let rec next pos chunks =
    if pos >= len then chunks
    else begin
      match String.index_from_opt body pos '\n' with
      | None ->
        Ctx.hit ctx (site "chunk:no-header-end");
        chunks
      | Some nl ->
        let header = String.trim (String.sub body pos (nl - pos)) in
        (* Strip chunk extensions. *)
        let header =
          match String.index_opt header ';' with
          | Some i ->
            Ctx.hit ctx (site "chunk:extension");
            String.sub header 0 i
          | None -> header
        in
        (match int_of_string_opt ("0x" ^ header) with
        | None ->
          Ctx.hit ctx (site "chunk:bad-size");
          chunks
        | Some 0 ->
          Ctx.hit ctx (site "chunk:final");
          chunks
        | Some size when size < 0 || size > 0x100000 ->
          Ctx.hit ctx (site "chunk:absurd-size");
          chunks
        | Some size ->
          let data_start = nl + 1 in
          let buffered = len - data_start in
          ignore (Ctx.branch ctx (site "chunk:partial") (buffered < size));
          (* The resize: needed = size - buffered, allocated without a
             sign check. A chunk header promising more than the declared
             request leaves 'needed' dominated by attacker data; crafted
             sizes drive the allocation negative. *)
          let needed = size - buffered in
          if Ctx.branch ctx (site "chunk:underflow") (needed > 0 && buffered > 0 && size > 255)
          then
            Ctx.crash ctx ~kind:"alloc-underflow"
              (Printf.sprintf
                 "chunk of %d bytes with %d buffered: resize allocates %d (wraps negative as size_t arithmetic)"
                 size buffered (buffered - size));
          next (data_start + size + 2) (chunks + 1))
    end
  in
  next 0 0

let on_packet ctx ~g:_ ~conn ~reply data =
  let heap = ctx.Ctx.heap in
  Ctx.hit ctx (site "packet");
  Guest_heap.set_i32 heap (conn + f_requests)
    (Guest_heap.get_i32 heap (conn + f_requests) + 1);
  let text = Bytes.to_string data in
  let head, body =
    match Proto_util.find_blank_line text with
    | Some i -> (String.sub text 0 i, String.sub text i (String.length text - i))
    | None -> (text, "")
  in
  let lines = String.split_on_char '\n' head |> List.map String.trim in
  match lines with
  | [] -> Ctx.hit ctx (site "empty")
  | request_line :: headers -> (
    match Proto_util.tokens request_line with
    | [ meth; path; version ] -> (
      let meth = Proto_util.upper meth in
      ignore (Ctx.branch ctx (site "http11") (version = "HTTP/1.1"));
      let chunked = ref false in
      List.iter
        (fun h ->
          (match Proto_util.header_value ~name:"Transfer-Encoding" h with
          | Some v ->
            if Ctx.branch ctx (site "te:chunked") (Proto_util.starts_with_ci ~prefix:"chunked" v)
            then chunked := true
            else Ctx.hit ctx (site "te:other")
          | None -> ());
          (match Proto_util.header_value ~name:"Connection" h with
          | Some v ->
            if Ctx.branch ctx (site "conn:keepalive") (Proto_util.upper v = "KEEP-ALIVE")
            then Guest_heap.set_i32 heap (conn + f_keepalive) 1
          | None -> ());
          match Proto_util.header_value ~name:"Content-Length" h with
          | Some v -> (
            match Proto_util.int_of_string_bounded ~max:1_000_000 v with
            | Some _ -> Ctx.hit ctx (site "cl:ok")
            | None -> Ctx.hit ctx (site "cl:bad"))
          | None -> ())
        headers;
      match meth with
      | "GET" | "HEAD" ->
        if List.mem path routes then begin
          Ctx.hit ctx (site ("route:" ^ path));
          Ctx.set_state ctx 200;
          respond reply 200 "OK" (if meth = "HEAD" then "" else "<html>ok</html>")
        end
        else if Ctx.branch ctx (site "route:traversal") (String.length path >= 2
                                                         && String.sub path 0 2 = "..")
        then begin
          Ctx.set_state ctx 403;
          respond reply 403 "Forbidden" ""
        end
        else begin
          Ctx.hit ctx (site "route:miss");
          Ctx.set_state ctx 404;
          respond reply 404 "Not Found" ""
        end
      | "POST" | "PUT" ->
        Ctx.hit ctx (site ("method:" ^ meth));
        if !chunked && String.length body > 0 then begin
          let chunks = decode_chunked ctx body in
          ignore (Ctx.branch ctx (site "chunks:multi") (chunks > 1))
        end;
        Ctx.set_state ctx 200;
        respond reply 200 "OK" ""
      | "OPTIONS" ->
        Ctx.hit ctx (site "method:options");
        respond reply 204 "No Content" ""
      | _ ->
        Ctx.hit ctx (site "method:other");
        Ctx.set_state ctx 501;
        respond reply 501 "Not Implemented" "")
    | _ ->
      Ctx.hit ctx (site "reqline:malformed");
      Ctx.set_state ctx 400;
      respond reply 400 "Bad Request" "")

let target =
  {
    Target.info =
      {
        Target.name;
        role = Target.Server;
        port = 8080;
        proto = Nyx_netemu.Net.Tcp;
        dissector = Nyx_pcap.Dissector.Raw;
        startup_ns = 40_000_000;
        work_ns = 300_000;
        desock_compat = true;
        forking = false;
        max_recv = 8192;
        dict =
          [ "GET"; "POST"; "HTTP/1.1"; "Transfer-Encoding: chunked"; "Content-Length:";
            "Connection: keep-alive"; "/index.html"; "ffff" ];
      };
    hooks = { Target.default_hooks with conn_state_size = 8; on_packet };
  }

let seeds =
  [
    List.map Bytes.of_string
      [
        "GET /index.html HTTP/1.1\r\nHost: www\r\nConnection: keep-alive\r\n\r\n";
        "POST /cgi-bin/test HTTP/1.1\r\nHost: www\r\nTransfer-Encoding: chunked\r\n\r\n\
         1f\r\nthirty-one byte chunk of body!!\r\n0\r\n\r\n";
      ];
  ]
