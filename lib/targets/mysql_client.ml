open Nyx_vm

let name = "mysql-client"
let site s = name ^ "/" ^ s

(* MySQL wire packets: [len:3 LE][seq:1][payload]. *)
let frame seq payload =
  let len = Bytes.length payload in
  let buf = Buffer.create (4 + len) in
  Buffer.add_char buf (Char.chr (len land 0xff));
  Buffer.add_char buf (Char.chr ((len lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr ((len lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr (seq land 0xff));
  Buffer.add_bytes buf payload;
  Buffer.to_bytes buf

(* Server greeting (protocol 10): proto(1) version(NUL-str) thread(4)
   salt1(8) filler(1) caps(2) charset(1) status(2) caps2(2)
   auth_data_len(1) reserved(10) salt2(...). *)
let make_handshake ?(salt_len = 21) ?(version = "8.0.36-sim") () =
  let p = Buffer.create 64 in
  Buffer.add_char p '\x0a';
  Buffer.add_string p version;
  Buffer.add_char p '\000';
  Buffer.add_string p "\x01\x00\x00\x00" (* thread id *);
  Buffer.add_string p (String.make 8 's') (* salt part 1 *);
  Buffer.add_char p '\000';
  Buffer.add_string p "\xff\xf7" (* capabilities *);
  Buffer.add_char p '\x21' (* charset *);
  Buffer.add_string p "\x02\x00" (* status *);
  Buffer.add_string p "\xff\x81" (* capabilities 2 *);
  Buffer.add_char p (Char.chr (salt_len land 0xff));
  Buffer.add_string p (String.make 10 '\000');
  Buffer.add_string p (String.make (max 0 (min 13 (salt_len - 8))) 't');
  frame 0 (Buffer.to_bytes p)

let make_ok () = frame 2 (Bytes.of_string "\x00\x00\x00\x02\x00\x00\x00")

let make_err msg =
  frame 2 (Bytes.of_string (Printf.sprintf "\xff\x15\x04#28000%s" msg))

(* Connection phases. *)
let f_phase = 0 (* 0 awaiting greeting, 1 authenticating, 2 connected *)
let f_columns = 4

(* The client copies salt bytes into a fixed 21-byte scramble buffer; the
   advertised auth-plugin-data length is trusted — the planted OOB read.
   The buffer's guest address lives in the global state block. *)
let g_scramble_addr = 0
let scramble_len = 21

let on_init ctx ~g =
  let addr = Guest_heap.alloc ctx.Ctx.heap scramble_len in
  Guest_heap.set_i32 ctx.Ctx.heap (g + g_scramble_addr) addr

let parse_greeting ctx ~g payload =
  let heap = ctx.Ctx.heap in
  if Ctx.branch ctx (site "greet:short") (Bytes.length payload < 5) then false
  else begin
    let proto = Char.code (Bytes.get payload 0) in
    if Ctx.branch ctx (site "greet:proto10") (proto = 10) then begin
      (* Version string: NUL-terminated. *)
      let nul = Bytes.index_opt payload '\000' in
      match nul with
      | None ->
        Ctx.hit ctx (site "greet:unterminated-version");
        false
      | Some vend ->
        ignore (Ctx.branch ctx (site "greet:long-version") (vend > 24));
        let fixed = vend + 1 + 4 + 8 + 1 + 2 + 1 + 2 + 2 in
        if Ctx.branch ctx (site "greet:truncated") (fixed + 1 > Bytes.length payload)
        then false
        else begin
          let auth_len = Char.code (Bytes.get payload fixed) in
          (match auth_len with
          | 0 -> Ctx.hit ctx (site "greet:no-auth-data")
          | n when n <= 21 -> Ctx.hit ctx (site "greet:auth-normal")
          | _ -> Ctx.hit ctx (site "greet:auth-long"));
          (* Copy salt2 into the scramble buffer, trusting auth_len. *)
          let scramble = Guest_heap.get_i32 heap (g + g_scramble_addr) in
          let want = max 0 (auth_len - 8) in
          let from = fixed + 1 + 10 in
          let avail = max 0 (Bytes.length payload - from) in
          let n = min want avail in
          if Ctx.branch ctx (site "greet:salt-overflow") (n > scramble_len) then begin
            if ctx.Ctx.asan then
              (* ASan flags the first byte past the allocation. *)
              Guest_heap.checked_set heap ~base:scramble ~off:0
                (Bytes.sub payload from n)
            else if n > scramble_len + 16 then
              (* Far past the buffer: the read crosses into unmapped
                 memory even without a sanitizer. *)
              Ctx.crash ctx ~kind:"oob-read"
                (Printf.sprintf
                   "greeting advertises %d bytes of auth data; scramble buffer holds %d"
                   auth_len scramble_len)
            else Ctx.hit ctx (site "greet:silent-overread")
          end
          else if n > 0 then
            Guest_heap.set_bytes heap scramble (Bytes.sub payload from n);
          true
        end
    end
    else if Ctx.branch ctx (site "greet:err-instead") (proto = 0xFF) then false
    else begin
      Ctx.hit ctx (site "greet:unknown-proto");
      false
    end
  end

let on_packet ctx ~g ~conn ~reply data =
  let heap = ctx.Ctx.heap in
  Ctx.hit ctx (site "packet");
  Proto_util.iter_frames ~header_len:4
    ~frame_len:(fun h ->
      match Proto_util.read_be h ~pos:0 ~len:3 with
      | Some _ ->
        (* Length is little-endian in MySQL. *)
        let len =
          Char.code (Bytes.get h 0)
          lor (Char.code (Bytes.get h 1) lsl 8)
          lor (Char.code (Bytes.get h 2) lsl 16)
        in
        Some (4 + len)
      | None -> None)
    data
    (fun pkt ->
      if Ctx.branch ctx (site "frame:short") (Bytes.length pkt < 5) then ()
      else begin
        let payload = Bytes.sub pkt 4 (Bytes.length pkt - 4) in
        let phase = Guest_heap.get_i32 heap (conn + f_phase) in
        match phase with
        | 0 ->
          if parse_greeting ctx ~g payload then begin
            Guest_heap.set_i32 heap (conn + f_phase) 1;
            Ctx.set_state ctx 1;
            (* Send the login request. *)
            reply (frame 1 (Bytes.of_string "\x85\xa6\xff\x01root\000"))
          end
        | 1 -> (
          match Char.code (Bytes.get payload 0) with
          | 0x00 ->
            Ctx.hit ctx (site "auth:ok");
            Guest_heap.set_i32 heap (conn + f_phase) 2;
            Ctx.set_state ctx 2;
            (* Issue the query the user typed. *)
            reply (frame 0 (Bytes.of_string "\x03SELECT 1"))
          | 0xFF ->
            Ctx.hit ctx (site "auth:err");
            Ctx.set_state ctx 255
          | 0xFE ->
            Ctx.hit ctx (site "auth:switch");
            reply (frame 3 (Bytes.of_string "scrambled-response"))
          | _ -> Ctx.hit ctx (site "auth:unknown"))
        | _ -> (
          match Char.code (Bytes.get payload 0) with
          | 0x00 -> Ctx.hit ctx (site "result:ok")
          | 0xFF ->
            Ctx.hit ctx (site "result:err");
            if Ctx.branch ctx (site "err:short") (Bytes.length payload < 9) then ()
            else Ctx.hit ctx (site "err:with-state")
          | 0xFE -> Ctx.hit ctx (site "result:eof")
          | n when n <= 250 ->
            (* Column count, then that many column definitions follow. *)
            Ctx.hit ctx (site "result:columns");
            Guest_heap.set_i32 heap (conn + f_columns) n;
            ignore (Ctx.branch ctx (site "result:many-columns") (n > 16))
          | _ -> Ctx.hit ctx (site "result:lenenc"))
      end)

let target =
  {
    Target.info =
      {
        Target.name;
        role = Target.Client;
        port = 3306;
        proto = Nyx_netemu.Net.Tcp;
        dissector = Nyx_pcap.Dissector.Raw;
        startup_ns = 60_000_000;
        work_ns = 400_000;
        desock_compat = false;
        forking = false;
        max_recv = 16384;
        dict = [ "\x0a"; "8.0."; "\x00\x00\x00\x02"; "\xff\x15\x04#28000"; "\xfe" ];
      };
    hooks =
      {
        Target.default_hooks with
        global_state_size = 8;
        conn_state_size = 8;
        on_init;
        on_packet;
      };
  }

let seeds =
  [
    [ make_handshake (); make_ok (); make_ok () ];
    [ make_handshake (); make_err "Access denied" ];
  ]
