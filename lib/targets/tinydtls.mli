(** tinydtls analogue: DTLS record and handshake parsing over UDP.

    Carries the fragment-length underflow every fuzzer finds (Table 1):
    a handshake fragment whose [fragment_length] exceeds the declared
    message [length] underflows the reassembly arithmetic. *)

val target : Target.t
val seeds : bytes list list

val make_client_hello : ?with_cookie:bool -> unit -> bytes
(** A well-formed ClientHello record (seed/test helper). *)
