open Nyx_vm

let name = "openssh"
let site s = name ^ "/" ^ s

(* Connection phases. *)
let f_phase = 0 (* 0 version, 1 kex, 2 keys, 3 service, 4 auth, 5 session *)
let f_auth_failures = 4

let make_packet msg_type payload =
  let len = 1 + Bytes.length payload in
  let buf = Buffer.create (4 + len) in
  for i = 3 downto 0 do
    Buffer.add_char buf (Char.chr ((len lsr (8 * i)) land 0xff))
  done;
  Buffer.add_char buf (Char.chr msg_type);
  Buffer.add_bytes buf payload;
  Buffer.to_bytes buf

(* KEXINIT payload: cookie(16) then one length-prefixed algorithm list. *)
let make_kexinit () =
  let buf = Buffer.create 64 in
  Buffer.add_string buf (String.make 16 'k');
  let algs = "curve25519-sha256,diffie-hellman-group14-sha256" in
  for i = 3 downto 0 do
    Buffer.add_char buf (Char.chr ((String.length algs lsr (8 * i)) land 0xff))
  done;
  Buffer.add_string buf algs;
  make_packet 20 (Buffer.to_bytes buf)

let known_kex_algorithms =
  [ "curve25519-sha256"; "diffie-hellman-group14-sha256"; "ecdh-sha2-nistp256" ]

let parse_kexinit ctx payload =
  if Ctx.branch ctx (site "kex:short") (Bytes.length payload < 21) then false
  else begin
    match Proto_util.read_be payload ~pos:16 ~len:4 with
    | None -> false
    | Some alg_len ->
      if Ctx.branch ctx (site "kex:alg-overrun") (20 + alg_len > Bytes.length payload)
      then false
      else begin
        let algs = Bytes.sub_string payload 20 alg_len in
        let names = String.split_on_char ',' algs in
        (match List.length names with
        | 0 | 1 -> Ctx.hit ctx (site "kex:one-alg")
        | n when n <= 4 -> Ctx.hit ctx (site "kex:few-algs")
        | _ -> Ctx.hit ctx (site "kex:many-algs"));
        let matched = List.exists (fun a -> List.mem a known_kex_algorithms) names in
        ignore (Ctx.branch ctx (site "kex:match") matched);
        matched
      end
  end

let on_connect ctx ~g:_ ~conn:_ ~reply =
  Ctx.hit ctx (site "connect");
  reply (Bytes.of_string "SSH-2.0-OpenSSH_8.9\r\n")

let handle_packet ctx ~conn ~reply data =
  let heap = ctx.Ctx.heap in
  Ctx.hit ctx (site "packet");
  let phase = Guest_heap.get_i32 heap (conn + f_phase) in
  if Ctx.branch ctx (site "phase:version") (phase = 0) then begin
    let line = Proto_util.line_of data in
    if Ctx.branch ctx (site "version:ssh2") (Proto_util.starts_with_ci ~prefix:"SSH-2.0" line)
    then begin
      Guest_heap.set_i32 heap (conn + f_phase) 1;
      Ctx.set_state ctx 1
    end
    else if Ctx.branch ctx (site "version:ssh1") (Proto_util.starts_with_ci ~prefix:"SSH-1" line)
    then reply (Bytes.of_string "Protocol major versions differ.\r\n")
    else Ctx.hit ctx (site "version:garbage")
  end
  else begin
    if Ctx.branch ctx (site "pkt:short") (Bytes.length data < 5) then ()
    else begin
      let msg_type = Char.code (Bytes.get data 4) in
      let declared = Option.value ~default:0 (Proto_util.read_be data ~pos:0 ~len:4) in
      ignore (Ctx.branch ctx (site "pkt:len-ok") (declared = Bytes.length data - 4));
      let payload = Bytes.sub data 5 (Bytes.length data - 5) in
      match msg_type with
      | 20 ->
        Ctx.hit ctx (site "msg:kexinit");
        if Ctx.branch ctx (site "kexinit:reorder") (phase > 2) then
          (* Re-keying: allowed any time after keys. *)
          Ctx.hit ctx (site "rekey")
        else if parse_kexinit ctx payload then begin
          Guest_heap.set_i32 heap (conn + f_phase) 2;
          Ctx.set_state ctx 2;
          reply (make_kexinit ())
        end
        else reply (make_packet 1 (Bytes.of_string "no matching kex"))
      | 21 ->
        Ctx.hit ctx (site "msg:newkeys");
        if Ctx.branch ctx (site "newkeys:order") (phase <> 2) then
          reply (make_packet 1 (Bytes.of_string "protocol error"))
        else begin
          Guest_heap.set_i32 heap (conn + f_phase) 3;
          Ctx.set_state ctx 3;
          reply (make_packet 21 Bytes.empty)
        end
      | 5 ->
        Ctx.hit ctx (site "msg:service-request");
        if Ctx.branch ctx (site "service:order") (phase < 3) then
          reply (make_packet 1 (Bytes.of_string "no keys"))
        else begin
          let service = Bytes.to_string payload in
          if Ctx.branch ctx (site "service:userauth")
               (String.length service >= 12 && String.sub service 0 4 = "\x00\x00\x00\x0c")
             || Ctx.branch ctx (site "service:userauth-raw")
                  (Proto_util.starts_with_ci ~prefix:"ssh-userauth"
                     (String.concat "" (String.split_on_char '\000' service)))
          then begin
            Guest_heap.set_i32 heap (conn + f_phase) 4;
            Ctx.set_state ctx 4;
            reply (make_packet 6 payload)
          end
          else reply (make_packet 1 (Bytes.of_string "unknown service"))
        end
      | 50 ->
        Ctx.hit ctx (site "msg:userauth");
        if Ctx.branch ctx (site "auth:order") (phase < 4) then
          reply (make_packet 1 (Bytes.of_string "service first"))
        else begin
          let body = Bytes.to_string payload in
          if Ctx.branch ctx (site "auth:none")
               (String.length body > 4 && String.contains body 'n'
               && Proto_util.starts_with_ci ~prefix:"none"
                    (String.concat "" (String.split_on_char '\000' body)))
          then reply (make_packet 51 (Bytes.of_string "publickey,password"))
          else if Ctx.branch ctx (site "auth:password") (String.contains body 'p') then begin
            let failures = Guest_heap.get_i32 heap (conn + f_auth_failures) + 1 in
            Guest_heap.set_i32 heap (conn + f_auth_failures) failures;
            if Ctx.branch ctx (site "auth:lockout") (failures > 5) then
              reply (make_packet 1 (Bytes.of_string "too many failures"))
            else reply (make_packet 51 (Bytes.of_string "publickey,password"))
          end
          else begin
            Ctx.hit ctx (site "auth:other-method");
            reply (make_packet 51 (Bytes.of_string "publickey,password"))
          end
        end
      | 1 -> Ctx.hit ctx (site "msg:disconnect")
      | 2 -> Ctx.hit ctx (site "msg:ignore")
      | 4 -> Ctx.hit ctx (site "msg:debug")
      | _ -> Ctx.hit ctx (site "msg:unimplemented")
    end
  end

(* After the version exchange the transport is length-framed: one read
   may carry several SSH packets. *)
let on_packet ctx ~g:_ ~conn ~reply data =
  let heap = ctx.Ctx.heap in
  if Guest_heap.get_i32 heap (conn + f_phase) = 0 then handle_packet ctx ~conn ~reply data
  else
    Proto_util.iter_frames ~header_len:4
      ~frame_len:(fun h -> Option.map (fun l -> 4 + l) (Proto_util.read_be h ~pos:0 ~len:4))
      data
      (fun frame -> handle_packet ctx ~conn ~reply frame)

let target =
  {
    Target.info =
      {
        Target.name;
        role = Target.Server;
        port = 22;
        proto = Nyx_netemu.Net.Tcp;
        dissector = Nyx_pcap.Dissector.Raw;
        startup_ns = 80_000_000;
        work_ns = 1_700_000;
        desock_compat = true;
        forking = false;
        max_recv = 4096;
        dict = [ "SSH-2.0-"; "ssh-userauth"; "none"; "password"; "curve25519-sha256" ];
      };
    hooks =
      { Target.default_hooks with conn_state_size = 8; on_connect; on_packet };
  }

let seeds =
  [
    [
      Bytes.of_string "SSH-2.0-OpenSSH_9.0 client\r\n";
      make_kexinit ();
      make_packet 21 Bytes.empty;
      make_packet 5 (Bytes.of_string "\x00\x00\x00\x0cssh-userauth");
      make_packet 50 (Bytes.of_string "\x00\x00\x00\x04none");
    ];
  ]
