open Nyx_vm

let name = "exim"
let site s = name ^ "/" ^ s

(* Connection state offsets: the classic SMTP state machine. *)
let f_phase = 0 (* 0 start, 1 greeted, 2 mail, 3 rcpt, 4 data *)
let f_rcpts = 4
let f_data_lines = 8

let rewrite_buffer_len = 72
let fold_point = 24

let parse_address ctx arg =
  (* MAIL FROM:<a@b> / RCPT TO:<a@b> *)
  match (String.index_opt arg '<', String.index_opt arg '>') with
  | Some i, Some j when j > i ->
    let addr = String.sub arg (i + 1) (j - i - 1) in
    if Ctx.branch ctx (site "addr:null") (addr = "") then Some ""
    else if Ctx.branch ctx (site "addr:at") (String.contains addr '@') then begin
      let at = String.index addr '@' in
      ignore (Ctx.branch ctx (site "addr:local-empty") (at = 0));
      ignore (Ctx.branch ctx (site "addr:domain-empty") (at = String.length addr - 1));
      Some addr
    end
    else begin
      Ctx.hit ctx (site "addr:bare");
      Some addr
    end
  | _ ->
    Ctx.hit ctx (site "addr:unbracketed");
    None

(* Inside DATA: header rewriting. A header line longer than the rewrite
   buffer whose ':' lies beyond the fold point overflows the continuation
   buffer — the planted bug. *)
let process_data_line ctx ~conn line =
  let heap = ctx.Ctx.heap in
  Guest_heap.set_i32 heap (conn + f_data_lines)
    (Guest_heap.get_i32 heap (conn + f_data_lines) + 1);
  match String.index_opt line ':' with
  | Some colon when Guest_heap.get_i32 heap (conn + f_data_lines) <= 32 ->
    Ctx.hit ctx (site "data:header");
    (match Proto_util.upper (String.sub line 0 (min colon 16)) with
    | "SUBJECT" -> Ctx.hit ctx (site "hdr:subject")
    | "FROM" -> Ctx.hit ctx (site "hdr:from")
    | "TO" -> Ctx.hit ctx (site "hdr:to")
    | "RECEIVED" -> Ctx.hit ctx (site "hdr:received")
    | _ -> Ctx.hit ctx (site "hdr:other"));
    if Ctx.branch ctx (site "hdr:long") (String.length line > rewrite_buffer_len) then
      if Ctx.branch ctx (site "hdr:late-colon") (colon > fold_point) then
        Ctx.crash ctx ~kind:"buffer-overflow"
          (Printf.sprintf
             "header rewrite: %d-byte line with colon at %d overflows continuation buffer"
             (String.length line) colon)
  | Some _ -> Ctx.hit ctx (site "data:late-header")
  | None ->
    if Ctx.branch ctx (site "data:body") (String.length line > 0) then ()
    else Ctx.hit ctx (site "data:blank")

let on_connect ctx ~g:_ ~conn:_ ~reply =
  Ctx.hit ctx (site "connect");
  reply (Bytes.of_string "220 mail.example.com ESMTP Exim\r\n")

let on_packet ctx ~g:_ ~conn ~reply data =
  let heap = ctx.Ctx.heap in
  let r code text =
    Ctx.set_state ctx code;
    reply (Bytes.of_string (Printf.sprintf "%d %s\r\n" code text))
  in
  Ctx.hit ctx (site "packet");
  let phase = Guest_heap.get_i32 heap (conn + f_phase) in
  if Ctx.branch ctx (site "in-data") (phase = 4) then begin
    (* DATA mode: lines until "." terminator. *)
    let text = Bytes.to_string data in
    let lines = String.split_on_char '\n' text |> List.map String.trim in
    let finished = ref false in
    List.iter
      (fun line ->
        if !finished then ()
        else if line = "." then begin
          finished := true;
          Guest_heap.set_i32 heap (conn + f_phase) 1;
          Ctx.hit ctx (site "data:end");
          r 250 "message accepted"
        end
        else process_data_line ctx ~conn line)
      lines
  end
  else begin
    let line = Proto_util.line_of data in
    let cmd, arg =
      match String.index_opt line ' ' with
      | None -> (Proto_util.upper line, "")
      | Some i ->
        ( Proto_util.upper (String.sub line 0 i),
          String.trim (String.sub line (i + 1) (String.length line - i - 1)) )
    in
    match cmd with
    | "EHLO" | "HELO" ->
      Ctx.hit ctx (site ("cmd:" ^ cmd));
      if Ctx.branch ctx (site "helo:noarg") (arg = "") then r 501 "domain required"
      else begin
        Guest_heap.set_i32 heap (conn + f_phase) 1;
        if cmd = "EHLO" then r 250 "mail.example.com Hello [extensions: SIZE PIPELINING]"
        else r 250 "mail.example.com Hello"
      end
    | "MAIL" ->
      if Ctx.branch ctx (site "mail:order") (phase < 1) then r 503 "EHLO first"
      else if not (Proto_util.starts_with_ci ~prefix:"FROM:" arg) then begin
        Ctx.hit ctx (site "mail:syntax");
        r 501 "syntax: MAIL FROM:<address>"
      end
      else begin
        match parse_address ctx arg with
        | Some _ ->
          Guest_heap.set_i32 heap (conn + f_phase) 2;
          Guest_heap.set_i32 heap (conn + f_rcpts) 0;
          r 250 "sender ok"
        | None -> r 501 "bad sender address"
      end
    | "RCPT" ->
      if Ctx.branch ctx (site "rcpt:order") (phase < 2) then r 503 "MAIL first"
      else if not (Proto_util.starts_with_ci ~prefix:"TO:" arg) then begin
        Ctx.hit ctx (site "rcpt:syntax");
        r 501 "syntax: RCPT TO:<address>"
      end
      else begin
        match parse_address ctx arg with
        | Some _ ->
          let n = Guest_heap.get_i32 heap (conn + f_rcpts) + 1 in
          Guest_heap.set_i32 heap (conn + f_rcpts) n;
          if Ctx.branch ctx (site "rcpt:many") (n > 10) then r 452 "too many recipients"
          else begin
            Guest_heap.set_i32 heap (conn + f_phase) 3;
            r 250 "recipient ok"
          end
        | None -> r 501 "bad recipient address"
      end
    | "DATA" ->
      if Ctx.branch ctx (site "data:order") (phase < 3) then r 503 "RCPT first"
      else begin
        Guest_heap.set_i32 heap (conn + f_phase) 4;
        Guest_heap.set_i32 heap (conn + f_data_lines) 0;
        r 354 "end data with <CRLF>.<CRLF>"
      end
    | "RSET" ->
      Guest_heap.set_i32 heap (conn + f_phase) (min phase 1);
      r 250 "reset ok"
    | "NOOP" -> r 250 "ok"
    | "QUIT" -> r 221 "closing connection"
    | "VRFY" ->
      Ctx.hit ctx (site "cmd:vrfy");
      r 252 "cannot verify"
    | "EXPN" ->
      Ctx.hit ctx (site "cmd:expn");
      r 550 "access denied"
    | "AUTH" ->
      Ctx.hit ctx (site "cmd:auth");
      if Ctx.branch ctx (site "auth:plain") (Proto_util.starts_with_ci ~prefix:"PLAIN" arg)
      then r 235 "authentication successful"
      else r 504 "mechanism not supported"
    | "STARTTLS" ->
      Ctx.hit ctx (site "cmd:starttls");
      r 454 "TLS not available"
    | "" -> r 500 "empty command"
    | _ ->
      Ctx.hit ctx (site "cmd:unknown");
      r 500 "command unrecognized"
  end

let target =
  {
    Target.info =
      {
        Target.name;
        role = Target.Server;
        port = 25;
        proto = Nyx_netemu.Net.Tcp;
        dissector = Nyx_pcap.Dissector.Crlf;
        startup_ns = 200_000_000;
        work_ns = 550_000;
        desock_compat = false;
        forking = false;
        max_recv = 2048;
        dict = [ "EHLO"; "HELO"; "MAIL FROM:<"; "RCPT TO:<"; "DATA"; "Subject:"; "AUTH PLAIN"; "STARTTLS"; ":" ];
      };
    hooks =
      { Target.default_hooks with conn_state_size = 12; on_connect; on_packet };
  }

let seeds =
  [
    List.map Bytes.of_string
      [
        "EHLO client.example.com\r\n";
        "MAIL FROM:<alice@example.com>\r\n";
        "RCPT TO:<bob@example.com>\r\n";
        "DATA\r\n";
        "Subject: test message about the quarterly report\r\n\
         From: alice@example.com\r\n\
         \r\n\
         hello bob\r\n\
         .\r\n";
      ];
  ]
