open Nyx_vm

let name = "openssl"
let site s = name ^ "/" ^ s

let f_state = 0 (* 0 fresh, 1 hello-seen, 2 ccs-seen *)

(* Record: type(1) ver(2) len(2) payload. *)
let make_record ctype payload =
  let buf = Buffer.create (5 + Bytes.length payload) in
  Buffer.add_char buf (Char.chr ctype);
  Buffer.add_string buf "\x03\x03";
  Buffer.add_char buf (Char.chr ((Bytes.length payload lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr (Bytes.length payload land 0xff));
  Buffer.add_bytes buf payload;
  Buffer.to_bytes buf

let make_client_hello ?sni ?(n_suites = 2) () =
  let body = Buffer.create 128 in
  let u16 v =
    Buffer.add_char body (Char.chr ((v lsr 8) land 0xff));
    Buffer.add_char body (Char.chr (v land 0xff))
  in
  u16 0x0303 (* legacy version *);
  Buffer.add_string body (String.make 32 'R') (* random *);
  Buffer.add_char body '\000' (* session id *);
  u16 (2 * n_suites);
  for i = 0 to n_suites - 1 do
    u16 (0x1301 + i)
  done;
  Buffer.add_string body "\x01\x00" (* compression *);
  let exts = Buffer.create 64 in
  let ext id payload =
    Buffer.add_char exts (Char.chr ((id lsr 8) land 0xff));
    Buffer.add_char exts (Char.chr (id land 0xff));
    Buffer.add_char exts (Char.chr ((String.length payload lsr 8) land 0xff));
    Buffer.add_char exts (Char.chr (String.length payload land 0xff));
    Buffer.add_string exts payload
  in
  (match sni with
  | Some host ->
    let entry = Printf.sprintf "\x00%c%c%s"
        (Char.chr ((String.length host lsr 8) land 0xff))
        (Char.chr (String.length host land 0xff)) host in
    let list_ = Printf.sprintf "%c%c%s"
        (Char.chr (((String.length entry) lsr 8) land 0xff))
        (Char.chr ((String.length entry) land 0xff)) entry in
    ext 0 list_
  | None -> ());
  ext 43 "\x02\x03\x04" (* supported_versions: TLS 1.3 *);
  ext 13 "\x00\x02\x04\x03" (* signature_algorithms *);
  u16 (Buffer.length exts);
  Buffer.add_buffer body exts;
  (* Handshake header: type(1) len(3). *)
  let hs = Buffer.create 4 in
  Buffer.add_char hs '\x01';
  let blen = Buffer.length body in
  Buffer.add_char hs (Char.chr ((blen lsr 16) land 0xff));
  Buffer.add_char hs (Char.chr ((blen lsr 8) land 0xff));
  Buffer.add_char hs (Char.chr (blen land 0xff));
  Buffer.add_buffer hs body;
  make_record 22 (Buffer.to_bytes hs)

let parse_extensions ctx payload pos limit =
  let be p l = Proto_util.read_be payload ~pos:p ~len:l in
  let pos = ref pos in
  let count = ref 0 in
  let continue = ref true in
  while !continue && !pos + 4 <= limit do
    match (be !pos 2, be (!pos + 2) 2) with
    | Some ext_id, Some ext_len ->
      incr count;
      if Ctx.branch ctx (site "ext:overrun") (!pos + 4 + ext_len > limit) then
        continue := false
      else begin
        (match ext_id with
        | 0 ->
          Ctx.hit ctx (site "ext:sni");
          (* server_name list: len(2) type(1) hostlen(2) host *)
          (match be (!pos + 4) 2 with
          | Some list_len when list_len >= 3 && list_len <= ext_len - 2 -> (
            match be (!pos + 7) 2 with
            | Some host_len when host_len + 3 <= list_len ->
              let host = Bytes.sub_string payload (!pos + 9) host_len in
              ignore (Ctx.branch ctx (site "sni:dotted") (String.contains host '.'));
              ignore (Ctx.branch ctx (site "sni:long") (host_len > 64))
            | _ -> Ctx.hit ctx (site "sni:bad-hostlen"))
          | _ -> Ctx.hit ctx (site "sni:bad-list"))
        | 16 -> Ctx.hit ctx (site "ext:alpn")
        | 10 -> Ctx.hit ctx (site "ext:groups")
        | 13 -> Ctx.hit ctx (site "ext:sigalgs")
        | 43 ->
          Ctx.hit ctx (site "ext:versions");
          (match be (!pos + 5) 2 with
          | Some 0x0304 -> Ctx.hit ctx (site "ver:tls13")
          | Some 0x0303 -> Ctx.hit ctx (site "ver:tls12")
          | _ -> Ctx.hit ctx (site "ver:other"))
        | 51 -> Ctx.hit ctx (site "ext:keyshare")
        | 41 -> Ctx.hit ctx (site "ext:psk")
        | 42 -> Ctx.hit ctx (site "ext:early-data")
        | 44 -> Ctx.hit ctx (site "ext:cookie")
        | _ -> Ctx.hit ctx (site "ext:unknown"));
        pos := !pos + 4 + ext_len
      end
    | _ -> continue := false
  done;
  !count

let parse_client_hello ctx payload =
  let be p l = Proto_util.read_be payload ~pos:p ~len:l in
  if Ctx.branch ctx (site "ch:short") (Bytes.length payload < 38) then false
  else begin
    (match be 0 2 with
    | Some 0x0303 -> Ctx.hit ctx (site "ch:ver12")
    | Some 0x0301 -> Ctx.hit ctx (site "ch:ver10")
    | _ -> Ctx.hit ctx (site "ch:ver-other"));
    let sid_len = Option.value ~default:0 (be 34 1) in
    if Ctx.branch ctx (site "ch:sid-overrun") (35 + sid_len + 2 > Bytes.length payload)
    then false
    else begin
      ignore (Ctx.branch ctx (site "ch:resumption") (sid_len > 0));
      let suites_pos = 35 + sid_len in
      let suites_len = Option.value ~default:0 (be suites_pos 2) in
      if Ctx.branch ctx (site "ch:suites-overrun")
           (suites_pos + 2 + suites_len > Bytes.length payload)
      then false
      else begin
        (match suites_len / 2 with
        | 0 -> Ctx.hit ctx (site "suites:none")
        | n when n <= 4 -> Ctx.hit ctx (site "suites:few")
        | n when n <= 16 -> Ctx.hit ctx (site "suites:normal")
        | _ -> Ctx.hit ctx (site "suites:excessive"));
        let rec scan_suites i found13 =
          if i + 2 > suites_len then found13
          else
            match be (suites_pos + 2 + i) 2 with
            | Some s when s >= 0x1301 && s <= 0x1303 -> scan_suites (i + 2) true
            | Some 0x00ff ->
              Ctx.hit ctx (site "suites:scsv");
              scan_suites (i + 2) found13
            | _ -> scan_suites (i + 2) found13
        in
        ignore (Ctx.branch ctx (site "suites:tls13") (scan_suites 0 false));
        let comp_pos = suites_pos + 2 + suites_len in
        let comp_len = Option.value ~default:0 (be comp_pos 1) in
        let ext_pos = comp_pos + 1 + comp_len in
        if ext_pos + 2 <= Bytes.length payload then begin
          let ext_len = Option.value ~default:0 (be ext_pos 2) in
          let limit = min (Bytes.length payload) (ext_pos + 2 + ext_len) in
          let n = parse_extensions ctx payload (ext_pos + 2) limit in
          ignore (Ctx.branch ctx (site "ch:many-exts") (n > 4))
        end
        else Ctx.hit ctx (site "ch:no-exts");
        true
      end
    end
  end

let handle_record ctx ~conn ~reply data =
  let heap = ctx.Ctx.heap in
  Ctx.hit ctx (site "packet");
  if Ctx.branch ctx (site "rec:short") (Bytes.length data < 5) then ()
  else begin
    let ctype = Char.code (Bytes.get data 0) in
    let rec_len = Option.value ~default:0 (Proto_util.read_be data ~pos:3 ~len:2) in
    ignore (Ctx.branch ctx (site "rec:len-ok") (5 + rec_len = Bytes.length data));
    if Ctx.branch ctx (site "rec:oversize") (rec_len > 16384) then
      reply (make_record 21 (Bytes.of_string "\x02\x16" (* record_overflow *)))
    else begin
      match ctype with
      | 22 ->
        Ctx.hit ctx (site "rec:handshake");
        if Ctx.branch ctx (site "hs:short") (Bytes.length data < 9) then ()
        else begin
          let hs_type = Char.code (Bytes.get data 5) in
          let body = Bytes.sub data 9 (Bytes.length data - 9) in
          match hs_type with
          | 1 ->
            Ctx.hit ctx (site "hs:client-hello");
            if parse_client_hello ctx body then begin
              Guest_heap.set_i32 heap (conn + f_state) 1;
              Ctx.set_state ctx 1;
              reply (make_record 22 (Bytes.of_string "\x02\x00\x00\x26server-hello"))
            end
            else begin
              Ctx.set_state ctx 21;
              reply (make_record 21 (Bytes.of_string "\x02\x32" (* decode_error *)))
            end
          | 11 -> Ctx.hit ctx (site "hs:certificate")
          | 16 ->
            Ctx.hit ctx (site "hs:client-key-exchange");
            if Ctx.branch ctx (site "cke:early")
                 (Guest_heap.get_i32 heap (conn + f_state) = 0)
            then reply (make_record 21 (Bytes.of_string "\x02\x0a"))
          | 20 -> Ctx.hit ctx (site "hs:finished")
          | _ -> Ctx.hit ctx (site "hs:other")
        end
      | 20 ->
        Ctx.hit ctx (site "rec:ccs");
        if Ctx.branch ctx (site "ccs:order") (Guest_heap.get_i32 heap (conn + f_state) < 1)
        then reply (make_record 21 (Bytes.of_string "\x02\x0a" (* unexpected *)))
        else Guest_heap.set_i32 heap (conn + f_state) 2
      | 21 ->
        Ctx.hit ctx (site "rec:alert");
        if Bytes.length data >= 7 then begin
          let level = Char.code (Bytes.get data 5) in
          ignore (Ctx.branch ctx (site "alert:fatal") (level = 2))
        end
      | 23 ->
        Ctx.hit ctx (site "rec:appdata");
        if Ctx.branch ctx (site "appdata:encrypted")
             (Guest_heap.get_i32 heap (conn + f_state) = 2)
        then reply (make_record 23 (Bytes.of_string "ok"))
      | _ -> Ctx.hit ctx (site "rec:unknown")
    end
  end

(* One TCP read may carry several TLS records: walk them by the record
   length field. *)
let on_packet ctx ~g:_ ~conn ~reply data =
  Proto_util.iter_frames ~header_len:5
    ~frame_len:(fun h -> Option.map (fun l -> 5 + l) (Proto_util.read_be h ~pos:3 ~len:2))
    data
    (fun frame -> handle_record ctx ~conn ~reply frame)

let target =
  {
    Target.info =
      {
        Target.name;
        role = Target.Server;
        port = 4433;
        proto = Nyx_netemu.Net.Tcp;
        dissector = Nyx_pcap.Dissector.Raw;
        startup_ns = 100_000_000;
        work_ns = 650_000;
        desock_compat = true;
        forking = false;
        max_recv = 17000;
        dict = [ "\x16\x03\x03"; "\x01\x00"; "\x00\x2b"; "\x13\x01"; "\x03\x04" ];
      };
    hooks = { Target.default_hooks with conn_state_size = 8; on_packet };
  }

let seeds =
  [
    [
      make_client_hello ~sni:"server.example.com" ();
      make_record 20 (Bytes.of_string "\x01");
      make_record 23 (Bytes.of_string "GET / HTTP/1.1");
    ];
    [ make_client_hello ~n_suites:8 () ];
  ]
