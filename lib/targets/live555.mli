(** live555 analogue: an RTSP media server.

    Carries the SETUP Transport-header null dereference that the AFL-based
    fuzzers also find (Table 1): a [Transport:] header without any
    [key=value] pair leaves the parsed transport description null and the
    session setup dereferences it. Two packets (DESCRIBE, then the broken
    SETUP) suffice, and seeds contain both verbs. *)

val target : Target.t
val seeds : bytes list list
