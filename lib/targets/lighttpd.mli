(** lighttpd analogue — the §5.5 case study.

    An HTTP/1.1 server whose chunked-transfer decoding can compute a
    negative amount of memory to allocate (the integer underflow in a
    malloc-size computation the paper reported, fixed before it shipped):
    a chunk header larger than the remaining body length underflows the
    buffer-resize arithmetic. *)

val target : Target.t
val seeds : bytes list list
