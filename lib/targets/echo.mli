(** A tiny echo server with a trivially findable bug — the quickstart
    target. Sending a line starting with ["BOOM"] after an earlier
    ["MODE raw"] command crashes it. *)

val target : Target.t
val seeds : bytes list list
