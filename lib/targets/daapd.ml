open Nyx_vm

let name = "forked-daapd"
let site s = name ^ "/" ^ s

let f_requests = 0

let routes =
  [
    ("/server-info", "srvr");
    ("/login", "logi");
    ("/update", "mupd");
    ("/databases", "avdb");
    ("/content-codes", "mccr");
    ("/logout", "");
  ]

let parse_query ctx query =
  String.split_on_char '&' query
  |> List.iter (fun kv ->
         match String.index_opt kv '=' with
         | None -> Ctx.hit ctx (site "query:flag")
         | Some i -> (
           let key = String.sub kv 0 i in
           match key with
           | "session-id" -> (
             let v = String.sub kv (i + 1) (String.length kv - i - 1) in
             match Proto_util.int_of_string_bounded ~max:1_000_000 v with
             | Some _ -> Ctx.hit ctx (site "query:session-ok")
             | None -> Ctx.hit ctx (site "query:session-bad"))
           | "revision-number" -> Ctx.hit ctx (site "query:revision")
           | "meta" -> Ctx.hit ctx (site "query:meta")
           | "type" -> Ctx.hit ctx (site "query:type")
           | _ -> Ctx.hit ctx (site "query:other")))

let on_packet ctx ~g:_ ~conn ~reply data =
  let heap = ctx.Ctx.heap in
  Ctx.hit ctx (site "packet");
  Guest_heap.set_i32 heap (conn + f_requests)
    (Guest_heap.get_i32 heap (conn + f_requests) + 1);
  let text = Bytes.to_string data in
  let r code reason body =
    Ctx.set_state ctx code;
    reply
      (Bytes.of_string
         (Printf.sprintf "HTTP/1.1 %d %s\r\nContent-Length: %d\r\n\r\n%s" code reason
            (String.length body) body))
  in
  match String.split_on_char '\n' text |> List.map String.trim with
  | [] -> Ctx.hit ctx (site "empty")
  | request_line :: headers -> (
    match Proto_util.tokens request_line with
    | meth :: url :: _ -> (
      let meth = Proto_util.upper meth in
      (* Headers: Host, User-Agent, Accept-Encoding drive branches. *)
      List.iter
        (fun h ->
          match Proto_util.header_value ~name:"User-Agent" h with
          | Some ua ->
            ignore
              (Ctx.branch ctx (site "ua:itunes") (Proto_util.starts_with_ci ~prefix:"iTunes" ua))
          | None -> (
            match Proto_util.header_value ~name:"Accept-Encoding" h with
            | Some enc ->
              ignore (Ctx.branch ctx (site "enc:gzip") (String.length enc > 0
                                                        && String.contains enc 'g'))
            | None -> ()))
        headers;
      let path, query =
        match String.index_opt url '?' with
        | None -> (url, "")
        | Some i -> (String.sub url 0 i, String.sub url (i + 1) (String.length url - i - 1))
      in
      if query <> "" then parse_query ctx query;
      match meth with
      | "GET" -> (
        Ctx.hit ctx (site "method:get");
        (* Database items route: /databases/<n>/items *)
        if Ctx.branch ctx (site "route:db-items")
             (Proto_util.starts_with_ci ~prefix:"/databases/" path
             && String.length path > 11)
        then begin
          let rest = String.sub path 11 (String.length path - 11) in
          (match String.index_opt rest '/' with
          | Some i -> (
            let dbid = String.sub rest 0 i in
            match Proto_util.int_of_string_bounded ~max:100 dbid with
            | Some _ ->
              Ctx.hit ctx (site "db:id-ok");
              let sub = String.sub rest i (String.length rest - i) in
              if Ctx.branch ctx (site "db:items") (Proto_util.starts_with_ci ~prefix:"/items" sub)
              then r 200 "OK" "adbs"
              else if Ctx.branch ctx (site "db:containers")
                        (Proto_util.starts_with_ci ~prefix:"/containers" sub)
              then r 200 "OK" "aply"
              else r 404 "Not Found" ""
            | None ->
              Ctx.hit ctx (site "db:id-bad");
              r 400 "Bad Request" "")
          | None -> r 200 "OK" "avdb")
        end
        else begin
          match List.assoc_opt path routes with
          | Some body ->
            Ctx.hit ctx (site ("route:" ^ path));
            r 200 "OK" body
          | None ->
            Ctx.hit ctx (site "route:unknown");
            r 404 "Not Found" ""
        end)
      | "POST" ->
        Ctx.hit ctx (site "method:post");
        if Ctx.branch ctx (site "post:ctrl") (Proto_util.starts_with_ci ~prefix:"/ctrl-int" path)
        then r 204 "No Content" ""
        else r 405 "Method Not Allowed" ""
      | "HEAD" ->
        Ctx.hit ctx (site "method:head");
        r 200 "OK" ""
      | _ ->
        Ctx.hit ctx (site "method:other");
        r 501 "Not Implemented" "")
    | _ ->
      Ctx.hit ctx (site "reqline:malformed");
      r 400 "Bad Request" "")

let target =
  {
    Target.info =
      {
        Target.name;
        role = Target.Server;
        port = 3689;
        proto = Nyx_netemu.Net.Tcp;
        dissector = Nyx_pcap.Dissector.Raw;
        startup_ns = 800_000_000;
        work_ns = 25_000_000;
        desock_compat = true;
        forking = true;
        max_recv = 4096;
        dict = [ "GET"; "POST"; "/databases/"; "/login"; "/ctrl-int"; "session-id="; "User-Agent: iTunes" ];
      };
    hooks = { Target.default_hooks with conn_state_size = 8; on_packet };
  }

let seeds =
  [
    List.map Bytes.of_string
      [
        "GET /server-info HTTP/1.1\r\nHost: daap.local\r\nUser-Agent: iTunes/12.0\r\n\r\n";
        "GET /login HTTP/1.1\r\nHost: daap.local\r\n\r\n";
        "GET /databases/1/items?session-id=50&meta=dmap.itemname HTTP/1.1\r\n\r\n";
      ];
  ]
