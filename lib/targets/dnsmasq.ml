let name = "dnsmasq"
let site s = name ^ "/" ^ s

let make_query ?(id = 0x1234) ?(qtype = 1) host =
  let buf = Buffer.create 64 in
  let u16 v =
    Buffer.add_char buf (Char.chr ((v lsr 8) land 0xff));
    Buffer.add_char buf (Char.chr (v land 0xff))
  in
  u16 id;
  u16 0x0100 (* RD *);
  u16 1 (* qdcount *);
  u16 0;
  u16 0;
  u16 0;
  List.iter
    (fun label ->
      Buffer.add_char buf (Char.chr (String.length label));
      Buffer.add_string buf label)
    (String.split_on_char '.' host);
  Buffer.add_char buf '\000';
  u16 qtype;
  u16 1 (* IN *);
  Buffer.to_bytes buf

(* Parse one (possibly compressed) name starting at [pos]; returns the
   label count or crashes on a pointer chain deeper than the recursion
   budget — the planted stack-exhaustion bug. *)
let parse_name ctx data pos =
  let max_hops = 4 in
  let rec walk pos hops labels =
    if hops > max_hops then
      Ctx.crash ctx ~kind:"stack-exhaustion"
        "compressed-name pointer chain exceeds recursion budget";
    match Proto_util.byte_at data pos with
    | None ->
      Ctx.hit ctx (site "name:truncated");
      labels
    | Some 0 -> labels
    | Some len when len >= 0xC0 -> (
      Ctx.hit ctx (site "name:pointer");
      match Proto_util.byte_at data (pos + 1) with
      | None -> labels
      | Some lo ->
        let target = ((len land 0x3F) lsl 8) lor lo in
        if Ctx.branch ctx (site "name:fwdptr") (target >= pos) then
          (* Self- and forward-pointing compression pointers are never
             validated: following one loops until the stack is gone. *)
          Ctx.crash ctx ~kind:"stack-exhaustion"
            (Printf.sprintf "compression pointer at %d jumps forward to %d" pos target)
        else walk target (hops + 1) labels)
    | Some len when len > 63 ->
      Ctx.hit ctx (site "name:badlen");
      labels
    | Some len ->
      if Ctx.branch ctx (site "name:overrun") (pos + 1 + len > Bytes.length data) then
        labels
      else walk (pos + 1 + len) hops (labels + 1)
  in
  walk pos 0 0

let on_packet ctx ~g:_ ~conn:_ ~reply data =
  Ctx.hit ctx (site "packet");
  if Ctx.branch ctx (site "short") (Bytes.length data < 12) then ()
  else begin
    let be pos len = Option.value ~default:0 (Proto_util.read_be data ~pos ~len) in
    let id = be 0 2 in
    let flags = be 2 2 in
    let qdcount = be 4 2 in
    let qr = flags land 0x8000 <> 0 in
    let opcode = (flags lsr 11) land 0xF in
    let rd = flags land 0x0100 <> 0 in
    if Ctx.branch ctx (site "qr") qr then () (* responses to us are dropped *)
    else begin
      (match opcode with
      | 0 -> Ctx.hit ctx (site "op:query")
      | 1 -> Ctx.hit ctx (site "op:iquery")
      | 2 -> Ctx.hit ctx (site "op:status")
      | 4 -> Ctx.hit ctx (site "op:notify")
      | 5 -> Ctx.hit ctx (site "op:update")
      | _ -> Ctx.hit ctx (site "op:reserved"));
      ignore (Ctx.branch ctx (site "rd") rd);
      if Ctx.branch ctx (site "qd:none") (qdcount = 0) then ()
      else if Ctx.branch ctx (site "qd:many") (qdcount > 4) then
        (* dnsmasq rejects unreasonable question counts. *)
        reply (Bytes.of_string "\x00\x00\x80\x01")
      else begin
        let labels = parse_name ctx data 12 in
        (match labels with
        | 0 -> Ctx.hit ctx (site "root-query")
        | 1 -> Ctx.hit ctx (site "single-label")
        | _ when labels > 5 -> Ctx.hit ctx (site "deep-name")
        | _ -> Ctx.hit ctx (site "multi-label"));
        (* qtype sits after the name; rescan to find its position. *)
        let rec name_end pos =
          match Proto_util.byte_at data pos with
          | None -> pos
          | Some 0 -> pos + 1
          | Some len when len >= 0xC0 -> pos + 2
          | Some len -> name_end (pos + 1 + len)
        in
        let qpos = name_end 12 in
        let qtype = be qpos 2 in
        (match qtype with
        | 1 -> Ctx.hit ctx (site "qtype:A")
        | 28 -> Ctx.hit ctx (site "qtype:AAAA")
        | 15 -> Ctx.hit ctx (site "qtype:MX")
        | 16 -> Ctx.hit ctx (site "qtype:TXT")
        | 12 -> Ctx.hit ctx (site "qtype:PTR")
        | 33 -> Ctx.hit ctx (site "qtype:SRV")
        | 255 -> Ctx.hit ctx (site "qtype:ANY")
        | _ -> Ctx.hit ctx (site "qtype:other"));
        (* Answer: NOERROR with zero answers (we forward nothing). *)
        let resp = Bytes.make 12 '\000' in
        Bytes.set resp 0 (Char.chr ((id lsr 8) land 0xff));
        Bytes.set resp 1 (Char.chr (id land 0xff));
        Bytes.set resp 2 '\x80';
        Ctx.set_state ctx 1;
        reply resp
      end
    end
  end

let target =
  {
    Target.info =
      {
        Target.name;
        role = Target.Server;
        port = 53;
        proto = Nyx_netemu.Net.Udp;
        dissector = Nyx_pcap.Dissector.Datagram;
        startup_ns = 40_000_000;
        work_ns = 120_000;
        desock_compat = true;
        forking = false;
        max_recv = 512;
        dict = [ "\x00\x01"; "\x00\x0f"; "\x00\xff"; "\xc0\x0c" ];
      };
    hooks = { Target.default_hooks with global_state_size = 8; conn_state_size = 8; on_packet };
  }

let seeds =
  [
    [ make_query "router.local"; make_query ~qtype:28 "host.example.com" ];
    [ make_query ~qtype:12 "1.0.0.127.in-addr.arpa" ];
  ]
