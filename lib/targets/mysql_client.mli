(** MySQL client analogue — the §5.4 case study.

    This is a {e client} target: at startup it dials out to a MySQL
    server, and the fuzzer impersonates the server, feeding handshake,
    OK/ERR and result-set packets. Carries an out-of-bounds read like the
    one the paper found in the Ubuntu-shipped client: a server greeting
    whose advertised auth-plugin-data length exceeds the packet copies
    past the scramble buffer. *)

val target : Target.t
val seeds : bytes list list

val make_handshake : ?salt_len:int -> ?version:string -> unit -> bytes
(** A well-formed protocol-10 server greeting (seed/test helper). *)

val make_ok : unit -> bytes
val make_err : string -> bytes
