open Nyx_vm

type special_args = {
  ctx : Ctx.t;
  g : int;
  conn : int;
  cmd : string;
  arg : string;
  reply : bytes -> unit;
}

type config = {
  name : string;
  banner : string;
  require_auth : bool;
  commands : string list;
  special : (special_args -> bool) option;
}

module Field = struct
  let auth = 0
  let ty = 4
  let passive = 8
  let rnfr_pending = 12
  let rest_offset = 16
  let cwd_depth = 20
  let g_connections = 0
  let g_stored_count = 4
  let g_stored_hash = 8
end

let conn_state_size = 24
let global_state_size = 16

let standard_commands =
  [
    "USER"; "PASS"; "QUIT"; "SYST"; "TYPE"; "PWD"; "CWD"; "CDUP"; "MKD"; "RMD";
    "DELE"; "LIST"; "NLST"; "PASV"; "PORT"; "RETR"; "STOR"; "APPE"; "RNFR";
    "RNTO"; "SITE"; "NOOP"; "FEAT"; "HELP"; "ABOR"; "REST"; "SIZE"; "MDTM"; "STAT";
  ]

let sample_session =
  [
    "USER anonymous\r\n"; "PASS guest@example.com\r\n"; "SYST\r\n"; "PWD\r\n";
    "TYPE I\r\n"; "PASV\r\n"; "LIST\r\n"; "QUIT\r\n";
  ]

let reply_str reply code text =
  reply (Bytes.of_string (Printf.sprintf "%d %s\r\n" code text))

(* Commands allowed before authentication completes. *)
let pre_auth_ok cmd = List.mem cmd [ "USER"; "PASS"; "QUIT"; "FEAT"; "SYST"; "NOOP"; "HELP" ]

let hooks cfg =
  let site s = cfg.name ^ "/" ^ s in
  let get ctx addr off = Guest_heap.get_i32 ctx.Ctx.heap (addr + off) in
  let set ctx addr off v = Guest_heap.set_i32 ctx.Ctx.heap (addr + off) v in
  let on_init _ctx ~g:_ = () in
  let on_connect ctx ~g ~conn:_ ~reply =
    Ctx.hit ctx (site "connect");
    set ctx g Field.g_connections (get ctx g Field.g_connections + 1);
    reply (Bytes.of_string (cfg.banner ^ "\r\n"))
  in
  let handle_command ctx ~g ~conn ~reply cmd arg =
    let r code text =
      Ctx.set_state ctx code;
      reply_str reply code text
    in
    match cmd with
    | "USER" ->
      if Ctx.branch ctx (site "USER:empty") (arg = "") then r 501 "missing user name"
      else begin
        set ctx conn Field.auth 1;
        if Ctx.branch ctx (site "USER:anon") (Proto_util.upper arg = "ANONYMOUS") then
          r 331 "anonymous login ok, send email as password"
        else r 331 "password required"
      end
    | "PASS" ->
      if Ctx.branch ctx (site "PASS:order") (get ctx conn Field.auth <> 1) then
        r 503 "login with USER first"
      else begin
        set ctx conn Field.auth 2;
        r 230 "login successful"
      end
    | "QUIT" -> r 221 "goodbye"
    | "SYST" -> r 215 "UNIX Type: L8"
    | "NOOP" -> r 200 "ok"
    | "HELP" -> r 214 "commands recognized"
    | "FEAT" -> r 211 "features: MDTM REST SIZE"
    | "TYPE" ->
      if Ctx.branch ctx (site "TYPE:I") (Proto_util.upper arg = "I") then begin
        set ctx conn Field.ty 1;
        r 200 "type set to I"
      end
      else if Ctx.branch ctx (site "TYPE:A") (Proto_util.upper arg = "A") then begin
        set ctx conn Field.ty 0;
        r 200 "type set to A"
      end
      else r 504 "unsupported type"
    | "PWD" ->
      Ctx.hit ctx (site "PWD");
      r 257 (Printf.sprintf "\"/depth%d\" is current directory" (get ctx conn Field.cwd_depth))
    | "CWD" ->
      if Ctx.branch ctx (site "CWD:up") (arg = "..") then begin
        let d = get ctx conn Field.cwd_depth in
        if Ctx.branch ctx (site "CWD:root") (d = 0) then r 550 "already at root"
        else begin
          set ctx conn Field.cwd_depth (d - 1);
          r 250 "directory changed"
        end
      end
      else if Ctx.branch ctx (site "CWD:abs") (String.length arg > 0 && arg.[0] = '/') then begin
        set ctx conn Field.cwd_depth 0;
        r 250 "directory changed to root"
      end
      else if Ctx.branch ctx (site "CWD:deep") (get ctx conn Field.cwd_depth >= 7) then
        r 550 "directory nesting too deep"
      else begin
        set ctx conn Field.cwd_depth (get ctx conn Field.cwd_depth + 1);
        r 250 "directory changed"
      end
    | "CDUP" ->
      let d = get ctx conn Field.cwd_depth in
      if Ctx.branch ctx (site "CDUP:root") (d = 0) then r 550 "already at root"
      else begin
        set ctx conn Field.cwd_depth (d - 1);
        r 200 "ok"
      end
    | "MKD" | "RMD" | "DELE" ->
      if Ctx.branch ctx (site (cmd ^ ":noarg")) (arg = "") then r 501 "missing path"
      else if Ctx.branch ctx (site (cmd ^ ":dotdot")) (String.length arg >= 2
                                                       && String.sub arg 0 2 = "..")
      then r 550 "permission denied"
      else r 250 (cmd ^ " ok")
    | "PASV" ->
      set ctx conn Field.passive 1;
      r 227 "entering passive mode (127,0,0,1,200,10)"
    | "PORT" -> (
      match String.split_on_char ',' arg with
      | [ _; _; _; _; _; _ ] ->
        Ctx.hit ctx (site "PORT:ok");
        set ctx conn Field.passive 0;
        r 200 "port command successful"
      | _ ->
        Ctx.hit ctx (site "PORT:bad");
        r 501 "illegal port command")
    | "LIST" | "NLST" ->
      if Ctx.branch ctx (site (cmd ^ ":nodata")) (get ctx conn Field.passive = 0) then
        r 425 "use PASV first"
      else r 226 "transfer complete"
    | "RETR" ->
      if Ctx.branch ctx (site "RETR:noarg") (arg = "") then r 501 "missing file"
      else if Ctx.branch ctx (site "RETR:exists")
                (Hashtbl.hash arg = get ctx g Field.g_stored_hash
                 && get ctx g Field.g_stored_count > 0)
      then r 226 "transfer complete"
      else r 550 "no such file"
    | "STOR" | "APPE" ->
      if Ctx.branch ctx (site "STOR:noarg") (arg = "") then r 501 "missing file"
      else begin
        set ctx g Field.g_stored_count (get ctx g Field.g_stored_count + 1);
        set ctx g Field.g_stored_hash (Hashtbl.hash arg);
        r 226 "transfer complete"
      end
    | "RNFR" ->
      set ctx conn Field.rnfr_pending 1;
      r 350 "ready for RNTO"
    | "RNTO" ->
      if Ctx.branch ctx (site "RNTO:order") (get ctx conn Field.rnfr_pending = 0) then
        r 503 "RNFR required first"
      else begin
        set ctx conn Field.rnfr_pending 0;
        r 250 "rename successful"
      end
    | "REST" -> (
      match Proto_util.int_of_string_bounded ~max:1_000_000 arg with
      | Some off ->
        Ctx.hit ctx (site "REST:ok");
        set ctx conn Field.rest_offset off;
        r 350 "restarting at offset"
      | None ->
        Ctx.hit ctx (site "REST:bad");
        r 501 "bad offset")
    | "SIZE" | "MDTM" | "STAT" ->
      if Ctx.branch ctx (site (cmd ^ ":noarg")) (arg = "") then r 501 "missing argument"
      else r 213 "0"
    | "ABOR" -> r 226 "abort successful"
    | "SITE" -> r 500 "SITE not understood"
    | _ ->
      Ctx.hit ctx (site "unknown");
      r 500 "command not understood"
  in
  let on_packet ctx ~g ~conn ~reply data =
    let line = Proto_util.line_of data in
    let cmd, arg =
      match String.index_opt line ' ' with
      | None -> (Proto_util.upper line, "")
      | Some i ->
        ( Proto_util.upper (String.sub line 0 i),
          String.trim (String.sub line (i + 1) (String.length line - i - 1)) )
    in
    Ctx.hit ctx (site "packet");
    if Ctx.branch ctx (site "line:empty") (String.length line = 0) then
      reply_str reply 500 "empty command"
    else if Ctx.branch ctx (site "line:long") (String.length line > 512) then
      reply_str reply 500 "line too long"
    else begin
      let handled =
        match cfg.special with
        | Some f -> f { ctx; g; conn; cmd; arg; reply }
        | None -> false
      in
      if not handled then begin
        if
          Ctx.branch ctx (site "auth:gate")
            (cfg.require_auth && (not (pre_auth_ok cmd))
            && Guest_heap.get_i32 ctx.Ctx.heap (conn + Field.auth) <> 2)
        then reply_str reply 530 "please login with USER and PASS"
        else if not (List.mem cmd cfg.commands) then begin
          Ctx.hit ctx (site "unsupported");
          reply_str reply 502 "command not implemented"
        end
        else handle_command ctx ~g ~conn ~reply cmd arg
      end
    end
  in
  let on_disconnect ctx ~g:_ ~conn:_ = Ctx.hit ctx (site "disconnect") in
  {
    Target.global_state_size;
    conn_state_size;
    on_init;
    on_connect;
    on_packet;
    on_disconnect;
  }
