(** The target registry: every fuzz target with its seed traffic. *)

type entry = {
  target : Target.t;
  seeds : bytes list list;
      (** Seed sessions, each a list of logical client packets. *)
}

val profuzzbench : unit -> entry list
(** The 13 ProFuzzBench-analogue servers (Table 1/2/3 order). *)

val all : unit -> entry list
(** ProFuzzBench targets plus [echo], [firefox-ipc], and the case-study
    targets [mysql-client] (§5.4) and [lighttpd] (§5.5). *)

val find : string -> entry option

val seed_capture : entry -> Nyx_pcap.Capture.t
(** Seed packets as a capture (the "Wireshark dump" of the workflow). *)

val seed_programs : entry -> Nyx_spec.Net_spec.t -> Nyx_spec.Program.t list
(** Seeds converted to bytecode programs through the PCAP import
    pipeline. *)
