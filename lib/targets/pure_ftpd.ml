open Nyx_vm

let quota_limit = 20

let quota_check (a : Ftp_common.special_args) =
  let { Ftp_common.ctx; g; cmd; _ } = a in
  (* Observe, never handle: the generic STOR handler still runs. *)
  if cmd = "STOR" || cmd = "APPE" then begin
    let stored = Guest_heap.get_i32 ctx.Ctx.heap (g + Ftp_common.Field.g_stored_count) in
    if Ctx.branch ctx "pure-ftpd/quota" (stored >= quota_limit) then
      Ctx.crash ctx ~kind:"oom-internal"
        (Printf.sprintf "upload quota bookkeeping exhausted after %d files" stored)
  end;
  false

let config =
  {
    Ftp_common.name = "pure-ftpd";
    banner = "220 Pure-FTPd ready";
    require_auth = true;
    commands = Ftp_common.standard_commands;
    special = Some quota_check;
  }

let target =
  {
    Target.info =
      {
        Target.name = "pure-ftpd";
        role = Target.Server;
        port = 2101;
        proto = Nyx_netemu.Net.Tcp;
        dissector = Nyx_pcap.Dissector.Crlf;
        startup_ns = 50_000_000;
        work_ns = 250_000;
        desock_compat = false;
        forking = false;
        max_recv = 1024;
        dict = [ "USER"; "PASS"; "STOR"; "APPE"; "MKD"; "DELE" ];
      };
    hooks = Ftp_common.hooks config;
  }

let seeds =
  [
    List.map Bytes.of_string
      [ "USER fuzz\r\n"; "PASS fuzz\r\n"; "STOR a.txt\r\n"; "RETR a.txt\r\n"; "QUIT\r\n" ];
  ]
