(** forked-daapd analogue: an HTTP/DAAP media server that forks a worker
    per connection and does heavy per-request work — the slowest target in
    Table 3 (tens of milliseconds per request for every fuzzer). No
    planted bug. *)

val target : Target.t
val seeds : bytes list list
