(** Per-connection state table, stored in guest memory.

    Servers key per-connection protocol state by descriptor (TCP) or flow
    (UDP). The table lives in the guest heap so snapshot restore rolls it
    back together with the connections it describes. *)

type t

val capacity : int
(** Maximum simultaneous connections (32). *)

val create : Ctx.t -> conn_state_size:int -> t
(** Allocates the table and [capacity] state blocks up front (how real
    servers preallocate connection slots). *)

val insert : t -> key:int -> int option
(** Claim a slot for [key]; returns the guest address of its (zeroed)
    state block, or [None] when the table is full (the server then
    refuses the connection, as real ones do). *)

val find : t -> key:int -> int option
(** Guest address of the state block for [key]. *)

val remove : t -> key:int -> unit

val count : t -> int
