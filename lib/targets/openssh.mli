(** openssh analogue: the SSH transport-layer state machine (version
    exchange, KEXINIT negotiation, service request, userauth). No planted
    bug — a stateful binary-protocol coverage target that works under
    desock. *)

val target : Target.t
val seeds : bytes list list

val make_packet : int -> bytes -> bytes
(** [make_packet msg_type payload] framed as [len(4)][type(1)][payload]. *)

val make_kexinit : unit -> bytes
