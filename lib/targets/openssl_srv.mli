(** openssl analogue: TLS record and handshake parsing (s_server-style).

    The paper's largest coverage surface (9,744 branches); ours is the
    richest parser here — record layer, ClientHello with cipher-suite and
    extension loops (SNI, ALPN, supported-versions, key-share...), alerts
    and CCS. No planted bug; works under desock. *)

val target : Target.t
val seeds : bytes list list

val make_client_hello : ?sni:string -> ?n_suites:int -> unit -> bytes
