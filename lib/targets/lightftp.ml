let config =
  {
    Ftp_common.name = "lightftp";
    banner = "220 LightFTP ready";
    require_auth = true;
    commands =
      [ "USER"; "PASS"; "QUIT"; "SYST"; "TYPE"; "PWD"; "CWD"; "PASV"; "PORT";
        "LIST"; "RETR"; "STOR"; "NOOP"; "FEAT"; "ABOR" ];
    special = None;
  }

let target =
  {
    Target.info =
      {
        Target.name = "lightftp";
        role = Target.Server;
        port = 2121;
        proto = Nyx_netemu.Net.Tcp;
        dissector = Nyx_pcap.Dissector.Crlf;
        startup_ns = 25_000_000;
        work_ns = 120_000;
        desock_compat = true;
        forking = false;
        max_recv = 1024;
        dict = [ "USER"; "PASS"; "TYPE I"; "PASV"; "LIST"; "RETR"; "STOR" ];
      };
    hooks = Ftp_common.hooks config;
  }

let seeds =
  [
    List.map Bytes.of_string
      [ "USER fuzz\r\n"; "PASS fuzz\r\n"; "TYPE I\r\n"; "PASV\r\n"; "LIST\r\n" ];
  ]
