open Nyx_vm

let name = "firefox-ipc"
let site s = name ^ "/" ^ s

(* Message types. *)
let mt_create_actor = 1
let mt_destroy_actor = 2
let mt_actor_message = 3
let mt_share_handle = 4
let mt_ping = 5

let max_actors = 8

(* Global state layout: actor table of [state:i32] entries
   (0 free, 1 live, 2 destroyed-dangling). *)
let actor_off i = 4 * i
let g_size = 4 * max_actors

let make_msg ~actor ~msg_type payload =
  let buf = Buffer.create (8 + Bytes.length payload) in
  let u16 v =
    Buffer.add_char buf (Char.chr ((v lsr 8) land 0xff));
    Buffer.add_char buf (Char.chr (v land 0xff))
  in
  u16 actor;
  u16 msg_type;
  let len = Bytes.length payload in
  for i = 3 downto 0 do
    Buffer.add_char buf (Char.chr ((len lsr (8 * i)) land 0xff))
  done;
  Buffer.add_bytes buf payload;
  Buffer.to_bytes buf

let on_packet ctx ~g ~conn:_ ~reply data =
  let heap = ctx.Ctx.heap in
  Ctx.hit ctx (site "packet");
  if Ctx.branch ctx (site "short") (Bytes.length data < 8) then ()
  else begin
    let be pos len = Option.value ~default:0 (Proto_util.read_be data ~pos ~len) in
    let actor = be 0 2 in
    let msg_type = be 2 2 in
    let declared = be 4 4 in
    ignore (Ctx.branch ctx (site "len:ok") (declared = Bytes.length data - 8));
    if Ctx.branch ctx (site "actor:range") (actor >= max_actors) then
      reply (make_msg ~actor:0 ~msg_type:0xFF (Bytes.of_string "bad actor"))
    else begin
      let state () = Guest_heap.get_i32 heap (g + actor_off actor) in
      match msg_type with
      | t when t = mt_create_actor ->
        Ctx.hit ctx (site "msg:create");
        if Ctx.branch ctx (site "create:live") (state () = 1) then
          reply (make_msg ~actor ~msg_type:0xFE (Bytes.of_string "already live"))
        else begin
          Guest_heap.set_i32 heap (g + actor_off actor) 1;
          reply (make_msg ~actor ~msg_type:mt_create_actor Bytes.empty)
        end
      | t when t = mt_destroy_actor ->
        Ctx.hit ctx (site "msg:destroy");
        if Ctx.branch ctx (site "destroy:live") (state () = 1) then begin
          (* The handler marks the slot dangling instead of free: the
             use-after-free setup. *)
          Guest_heap.set_i32 heap (g + actor_off actor) 2;
          reply (make_msg ~actor ~msg_type:mt_destroy_actor Bytes.empty)
        end
        else reply (make_msg ~actor ~msg_type:0xFE (Bytes.of_string "not live"))
      | t when t = mt_actor_message ->
        Ctx.hit ctx (site "msg:actor-message");
        (match state () with
        | 1 ->
          Ctx.hit ctx (site "deliver:live");
          (match Bytes.length data - 8 with
          | 0 -> Ctx.hit ctx (site "deliver:empty")
          | n when n < 16 -> Ctx.hit ctx (site "deliver:small")
          | _ -> Ctx.hit ctx (site "deliver:large"));
          reply (make_msg ~actor ~msg_type:mt_actor_message (Bytes.of_string "ack"))
        | 2 ->
          Ctx.crash ctx ~kind:"use-after-free"
            (Printf.sprintf "message delivered to destroyed actor %d" actor)
        | _ ->
          Ctx.hit ctx (site "deliver:free");
          reply (make_msg ~actor ~msg_type:0xFE (Bytes.of_string "no actor")))
      | t when t = mt_share_handle ->
        Ctx.hit ctx (site "msg:share-handle");
        (* Payload names another actor slot to link; both must be live. *)
        let other = be 8 2 in
        if Ctx.branch ctx (site "share:range") (other >= max_actors) then ()
        else begin
          let other_state = Guest_heap.get_i32 heap (g + actor_off other) in
          if Ctx.branch ctx (site "share:both-live") (state () = 1 && other_state = 1)
          then begin
            (* Mimics dup(): the agent must track the aliased descriptor. *)
            let fd = Nyx_netemu.Net.socket ctx.Ctx.net Nyx_netemu.Net.Unix_sock in
            let fd2 = Nyx_netemu.Net.dup ctx.Ctx.net fd in
            Nyx_netemu.Net.close ctx.Ctx.net fd;
            Nyx_netemu.Net.close ctx.Ctx.net fd2;
            reply (make_msg ~actor ~msg_type:mt_share_handle Bytes.empty)
          end
        end
      | t when t = mt_ping ->
        Ctx.hit ctx (site "msg:ping");
        reply (make_msg ~actor ~msg_type:mt_ping (Bytes.of_string "pong"))
      | _ -> Ctx.hit ctx (site "msg:unknown")
    end
  end

let target =
  {
    Target.info =
      {
        Target.name;
        role = Target.Server;
        port = 9900;
        proto = Nyx_netemu.Net.Unix_sock;
        dissector = Nyx_pcap.Dissector.Raw;
        startup_ns = 1_500_000_000;
        work_ns = 2_000_000;
        desock_compat = false;
        forking = false;
        max_recv = 65536;
        dict = [ "\x00\x01"; "\x00\x02"; "\x00\x03"; "\x00\x04"; "\x00\x05" ];
      };
    hooks = { Target.default_hooks with global_state_size = g_size; on_packet };
  }

let seeds =
  [
    [
      make_msg ~actor:1 ~msg_type:mt_create_actor Bytes.empty;
      make_msg ~actor:1 ~msg_type:mt_ping Bytes.empty;
      make_msg ~actor:1 ~msg_type:mt_actor_message (Bytes.of_string "hello actor");
      make_msg ~actor:2 ~msg_type:mt_create_actor Bytes.empty;
      make_msg ~actor:1 ~msg_type:mt_share_handle (Bytes.of_string "\x00\x02");
      make_msg ~actor:1 ~msg_type:mt_destroy_actor Bytes.empty;
    ];
  ]
