open Nyx_vm

let site_chmod (a : Ftp_common.special_args) =
  let { Ftp_common.ctx; g; conn = _; cmd; arg; reply } = a in
  if cmd <> "SITE" then false
  else begin
    Ctx.hit ctx "proftpd/SITE";
    let parts = Proto_util.tokens arg in
    match parts with
    | sub :: rest when Proto_util.upper sub = "CHMOD" -> (
      Ctx.hit ctx "proftpd/SITE:chmod";
      match rest with
      | mode :: (_ :: _ as name_parts) -> (
        (* chmod modes are octal and parsed strtol-style: leading octal
           digits count, trailing junk is ignored. *)
        let octal_prefix =
          let n = ref 0 in
          (try
             String.iter (fun c -> if c >= '0' && c <= '7' then incr n else raise Exit) mode
           with Exit -> ());
          !n
        in
        match
          if octal_prefix = 0 then None
          else
            Proto_util.int_of_string_bounded ~max:0x3FFFFFFF
              ("0o" ^ String.sub mode 0 (min octal_prefix 10))
        with
        | None ->
          Ctx.hit ctx "proftpd/SITE:badmode";
          reply (Bytes.of_string "501 bad mode\r\n");
          true
        | Some m ->
          let name = String.concat " " name_parts in
          ignore (Ctx.branch ctx "proftpd/SITE:name-long" (String.length name > 16));
          let stored = Guest_heap.get_i32 ctx.Ctx.heap (g + Ftp_common.Field.g_stored_count) in
          if Ctx.branch ctx "proftpd/SITE:have-files" (stored > 0) then begin
            (* The permissions table has 512 slots (mode 0..0777): larger
               modes index out of bounds while rewriting the uploaded
               file's entry. *)
            if Ctx.branch ctx "proftpd/SITE:mode-range" (m > 511) then
              Ctx.crash ctx ~kind:"heap-overflow"
                (Printf.sprintf "SITE CHMOD mode %d overflows permission table" m)
            else begin
              reply (Bytes.of_string "200 SITE CHMOD ok\r\n");
              true
            end
          end
          else begin
            reply (Bytes.of_string "550 no files uploaded\r\n");
            true
          end)
      | _ ->
        Ctx.hit ctx "proftpd/SITE:chmod-arity";
        reply (Bytes.of_string "501 bad arguments\r\n");
        true)
    | sub :: _ when Proto_util.upper sub = "HELP" ->
      Ctx.hit ctx "proftpd/SITE:help";
      reply (Bytes.of_string "214 CHMOD HELP\r\n");
      true
    | _ ->
      Ctx.hit ctx "proftpd/SITE:unknown";
      reply (Bytes.of_string "500 SITE not understood\r\n");
      true
  end

let config =
  {
    Ftp_common.name = "proftpd";
    banner = "220 ProFTPD Server ready";
    require_auth = true;
    commands = Ftp_common.standard_commands;
    special = Some site_chmod;
  }

let target =
  {
    Target.info =
      {
        Target.name = "proftpd";
        role = Target.Server;
        port = 2100;
        proto = Nyx_netemu.Net.Tcp;
        dissector = Nyx_pcap.Dissector.Crlf;
        startup_ns = 150_000_000;
        work_ns = 550_000;
        desock_compat = false;
        forking = false;
        max_recv = 1024;
        dict = [ "USER"; "PASS"; "STOR"; "RETR"; "SITE"; "CHMOD"; "777"; "RNFR"; "RNTO"; "REST" ];
      };
    hooks = Ftp_common.hooks config;
  }

let seeds =
  [
    List.map Bytes.of_string
      [
        "USER fuzz\r\n"; "PASS fuzz\r\n"; "STOR upload.txt\r\n";
        "SITE CHMOD 644 upload.txt\r\n"; "QUIT\r\n";
      ];
    List.map Bytes.of_string Ftp_common.sample_session;
  ]
