let capacity = 32

(* Layout: [count:i32][ (key:i32, addr:i32) x capacity ]; free slots have
   key = -1. State blocks are allocated once and zeroed on insert. *)
type t = { ctx : Ctx.t; table : int; blocks : int array; state_size : int }

let entry_off i = 4 + (i * 8)

let create ctx ~conn_state_size =
  let heap = ctx.Ctx.heap in
  let table = Nyx_vm.Guest_heap.alloc heap (4 + (capacity * 8)) in
  let blocks =
    Array.init capacity (fun _ -> Nyx_vm.Guest_heap.alloc heap conn_state_size)
  in
  for i = 0 to capacity - 1 do
    Nyx_vm.Guest_heap.set_i32 heap (table + entry_off i) (-1)
  done;
  { ctx; table; blocks; state_size = conn_state_size }

let heap t = t.ctx.Ctx.heap

let key_at t i = Nyx_vm.Guest_heap.get_i32 (heap t) (t.table + entry_off i)

let insert t ~key =
  let rec scan i =
    if i >= capacity then None else if key_at t i = -1 then Some i else scan (i + 1)
  in
  match scan 0 with
  | None -> None
  | Some slot ->
    let h = heap t in
    Nyx_vm.Guest_heap.set_i32 h (t.table + entry_off slot) key;
    Nyx_vm.Guest_heap.set_i32 h (t.table + entry_off slot + 4) t.blocks.(slot);
    Nyx_vm.Guest_heap.set_i32 h t.table (Nyx_vm.Guest_heap.get_i32 h t.table + 1);
    (* Zero the state block for the new connection. *)
    Nyx_vm.Guest_heap.set_bytes h t.blocks.(slot) (Bytes.make t.state_size '\000');
    Some t.blocks.(slot)

let find t ~key =
  let rec scan i =
    if i >= capacity then None
    else if key_at t i = key then
      Some (Nyx_vm.Guest_heap.get_i32 (heap t) (t.table + entry_off i + 4))
    else scan (i + 1)
  in
  scan 0

let remove t ~key =
  let h = heap t in
  for i = 0 to capacity - 1 do
    if key_at t i = key then begin
      Nyx_vm.Guest_heap.set_i32 h (t.table + entry_off i) (-1);
      Nyx_vm.Guest_heap.set_i32 h t.table (Nyx_vm.Guest_heap.get_i32 h t.table - 1)
    end
  done

let count t = Nyx_vm.Guest_heap.get_i32 (heap t) t.table
