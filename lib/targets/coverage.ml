let map_size = 65536

type t = { map : Bytes.t; mutable prev : int }

let create () = { map = Bytes.make map_size '\000'; prev = 0 }

let reset t =
  Bytes.fill t.map 0 map_size '\000';
  t.prev <- 0

let hit t site =
  let site = site land (map_size - 1) in
  let idx = (site lxor t.prev) land (map_size - 1) in
  let c = Char.code (Bytes.get t.map idx) in
  if c < 255 then Bytes.set t.map idx (Char.chr (c + 1));
  t.prev <- site lsr 1

(* AFL's hit-count bucketing: 1, 2, 3, 4-7, 8-15, 16-31, 32-127, 128+. *)
let bucket c =
  if c = 0 then 0
  else if c = 1 then 1
  else if c = 2 then 2
  else if c = 3 then 4
  else if c <= 7 then 8
  else if c <= 15 then 16
  else if c <= 31 then 32
  else if c <= 127 then 64
  else 128

let edge_count t =
  let n = ref 0 in
  for i = 0 to map_size - 1 do
    if Bytes.get t.map i <> '\000' then incr n
  done;
  !n

let iter_hits t f =
  for i = 0 to map_size - 1 do
    let c = Char.code (Bytes.get t.map i) in
    if c <> 0 then f i (bucket c)
  done

type checkpoint = { saved_map : Bytes.t; saved_prev : int }

let save t = { saved_map = Bytes.copy t.map; saved_prev = t.prev }

let restore t cp =
  Bytes.blit cp.saved_map 0 t.map 0 map_size;
  t.prev <- cp.saved_prev

module Cumulative = struct
  type nonrec t = Bytes.t (* accumulated bucket bits per cell *)

  let create () = Bytes.make map_size '\000'

  let merge virgin cov =
    let novel = ref false in
    iter_hits cov (fun i b ->
        let seen = Char.code (Bytes.get virgin i) in
        if seen lor b <> seen then begin
          novel := true;
          Bytes.set virgin i (Char.chr (seen lor b))
        end);
    !novel

  let edge_count virgin =
    let n = ref 0 in
    for i = 0 to map_size - 1 do
      if Bytes.get virgin i <> '\000' then incr n
    done;
    !n
end
