let map_size = 65536

(* The hot-loop analogue of the paper's dirty *stack*: alongside the
   64 KiB map we keep a journal of the cells touched this execution, so
   every per-execution operation (reset, merge, save, restore, counting)
   walks only the touched cells instead of scanning the whole map —
   O(touched), not O(map).

   Invariant: [journal.(0 .. live-1)] lists exactly the indices of the
   nonzero cells of [map], each once.  [hit] only pushes on a 0->nonzero
   transition and counts never return to zero except through [reset] /
   [restore], which rebuild the journal, so the invariant is maintained
   everywhere. *)
type t = {
  map : Bytes.t;
  mutable prev : int;
  journal : int array;  (* dense prefix [0, live): indices of nonzero cells *)
  mutable live : int;
}

let create () =
  {
    map = Bytes.make map_size '\000';
    prev = 0;
    journal = Array.make map_size 0;
    live = 0;
  }

let reset t =
  for k = 0 to t.live - 1 do
    Bytes.unsafe_set t.map (Array.unsafe_get t.journal k) '\000'
  done;
  t.live <- 0;
  t.prev <- 0

(* Full-map reference path, kept for property tests: clears every cell
   whether journaled or not. *)
let reset_slow t =
  Bytes.fill t.map 0 map_size '\000';
  t.live <- 0;
  t.prev <- 0

let hit t site =
  let site = site land (map_size - 1) in
  let idx = (site lxor t.prev) land (map_size - 1) in
  let c = Char.code (Bytes.unsafe_get t.map idx) in
  if c = 0 then begin
    t.journal.(t.live) <- idx;
    t.live <- t.live + 1
  end;
  if c < 255 then Bytes.unsafe_set t.map idx (Char.unsafe_chr (c + 1));
  t.prev <- site lsr 1

(* AFL's hit-count bucketing: 1, 2, 3, 4-7, 8-15, 16-31, 32-127, 128+. *)
let bucket c =
  if c = 0 then 0
  else if c = 1 then 1
  else if c = 2 then 2
  else if c = 3 then 4
  else if c <= 7 then 8
  else if c <= 15 then 16
  else if c <= 31 then 32
  else if c <= 127 then 64
  else 128

let edge_count t = t.live

let edge_count_slow t =
  let n = ref 0 in
  for i = 0 to map_size - 1 do
    if Bytes.get t.map i <> '\000' then incr n
  done;
  !n

(* Reporting-only: O(map) full scan in cell-index order.  The hot paths
   (merge, save, matches) walk the journal directly instead. *)
let iter_hits t f =
  for i = 0 to map_size - 1 do
    let c = Char.code (Bytes.get t.map i) in
    if c <> 0 then f i (bucket c)
  done

let signature t =
  let sig_ = Array.init t.live (fun k ->
      let cell = t.journal.(k) in
      (cell, Char.code (Bytes.get t.map cell)))
  in
  Array.sort compare sig_;
  sig_

(* A checkpoint stores only the live cells: O(touched) to capture, and
   small enough that a session keeps one per incremental snapshot. *)
type checkpoint = {
  saved_cells : int array;
  saved_counts : Bytes.t;  (* raw count of saved_cells.(k) at position k *)
  saved_prev : int;
}

let save t =
  let cells = Array.sub t.journal 0 t.live in
  let counts = Bytes.create t.live in
  for k = 0 to t.live - 1 do
    Bytes.unsafe_set counts k (Bytes.unsafe_get t.map (Array.unsafe_get cells k))
  done;
  { saved_cells = cells; saved_counts = counts; saved_prev = t.prev }

let checkpoint_cells cp = Array.length cp.saved_cells

let restore t cp =
  reset t;
  let n = Array.length cp.saved_cells in
  for k = 0 to n - 1 do
    let cell = Array.unsafe_get cp.saved_cells k in
    Bytes.unsafe_set t.map cell (Bytes.unsafe_get cp.saved_counts k);
    t.journal.(k) <- cell
  done;
  t.live <- n;
  t.prev <- cp.saved_prev

let matches t cp =
  t.prev = cp.saved_prev
  && t.live = Array.length cp.saved_cells
  &&
  (* Both sides have exactly [live] nonzero cells, so count equality on
     every saved (nonzero) cell implies the cell sets coincide. *)
  (let ok = ref true in
   let n = Array.length cp.saved_cells in
   for k = 0 to n - 1 do
     if
       Bytes.unsafe_get t.map (Array.unsafe_get cp.saved_cells k)
       <> Bytes.unsafe_get cp.saved_counts k
     then ok := false
   done;
   !ok)

module Cumulative = struct
  type cov = t

  type t = {
    virgin : Bytes.t;  (* accumulated bucket bits per cell *)
    mutable edges : int;  (* distinct nonzero cells, maintained on merge *)
  }

  let create () = { virgin = Bytes.make map_size '\000'; edges = 0 }

  (* Direct journaled merge: walks the execution's journal, no closure,
     no full-map scan; keeps [edges] incrementally up to date. *)
  let merge t (cov : cov) =
    let novel = ref false in
    for k = 0 to cov.live - 1 do
      let i = Array.unsafe_get cov.journal k in
      let b = bucket (Char.code (Bytes.unsafe_get cov.map i)) in
      let seen = Char.code (Bytes.unsafe_get t.virgin i) in
      if seen lor b <> seen then begin
        novel := true;
        if seen = 0 then t.edges <- t.edges + 1;
        Bytes.unsafe_set t.virgin i (Char.unsafe_chr (seen lor b))
      end
    done;
    !novel

  (* Same merge, fed from a saved checkpoint instead of a live map: the
     corpus-sync path judges exported programs against a fleet-wide
     virgin map long after the exporting execution's map was reset, so it
     walks the checkpoint's cell list (raw counts, bucketed here).
     O(saved cells), identical verdict/state to [merge] on the map the
     checkpoint was taken from. *)
  let merge_saved t (cp : checkpoint) =
    let novel = ref false in
    let n = Array.length cp.saved_cells in
    for k = 0 to n - 1 do
      let i = Array.unsafe_get cp.saved_cells k in
      let b = bucket (Char.code (Bytes.unsafe_get cp.saved_counts k)) in
      let seen = Char.code (Bytes.unsafe_get t.virgin i) in
      if seen lor b <> seen then begin
        novel := true;
        if seen = 0 then t.edges <- t.edges + 1;
        Bytes.unsafe_set t.virgin i (Char.unsafe_chr (seen lor b))
      end
    done;
    !novel

  (* The pre-journal reference: full-scan via [iter_hits], kept for the
     equivalence property tests and the hotpath bench's before gear. *)
  let merge_slow t cov =
    let novel = ref false in
    iter_hits cov (fun i b ->
        let seen = Char.code (Bytes.get t.virgin i) in
        if seen lor b <> seen then begin
          novel := true;
          if seen = 0 then t.edges <- t.edges + 1;
          Bytes.set t.virgin i (Char.chr (seen lor b))
        end);
    !novel

  let edge_count t = t.edges

  let edge_count_slow t =
    let n = ref 0 in
    for i = 0 to map_size - 1 do
      if Bytes.get t.virgin i <> '\000' then incr n
    done;
    !n

  (* Checkpoint support: the virgin map is the whole state ([edges] is
     derived from it, recomputed on load). *)

  let state_bytes t = Bytes.copy t.virgin

  let load_state t b =
    if Bytes.length b <> map_size then
      invalid_arg "Coverage.Cumulative.load_state: wrong map size";
    Bytes.blit b 0 t.virgin 0 map_size;
    t.edges <- edge_count_slow t
end
