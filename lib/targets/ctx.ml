type t = {
  heap : Nyx_vm.Guest_heap.t;
  net : Nyx_netemu.Net.t;
  disk : Nyx_vm.Disk.t;
  cov : Coverage.t;
  clock : Nyx_sim.Clock.t;
  asan : bool;
  layout_cookie : int;
  mutable state_code : int;
}

exception Crash of { kind : string; detail : string }

let create ?(asan = false) ?(layout_cookie = 0) ~heap ~net ~disk clock =
  { heap; net; disk; cov = Coverage.create (); clock; asan; layout_cookie; state_code = 0 }

let of_vm ?asan ?layout_cookie ~net (vm : Nyx_vm.Vm.t) =
  create ?asan ?layout_cookie ~heap:vm.Nyx_vm.Vm.heap ~net ~disk:vm.Nyx_vm.Vm.disk
    vm.Nyx_vm.Vm.clock

let hit t site =
  Nyx_sim.Clock.advance t.clock Nyx_sim.Cost.edge;
  Coverage.hit t.cov (Hashtbl.hash site)

let hit_id t site =
  Nyx_sim.Clock.advance t.clock Nyx_sim.Cost.edge;
  Coverage.hit t.cov site

let branch t site cond =
  hit t (if cond then site ^ ":T" else site ^ ":F");
  cond

let crash _t ~kind detail = raise (Crash { kind; detail })

let work t ns = Nyx_sim.Clock.advance t.clock ns

let set_state t code = t.state_code <- code

(* Golden-ratio mix so adjacent response codes land far apart — the
   signature is xor-folded into the fuzzy aux-state hash and must not
   collide with its low-entropy chunk buckets. *)
let state_signature t = (t.state_code * 0x9E3779B9) land max_int
