(** bftpd analogue: a small FTP server with the standard command set and
    no known bugs — a pure coverage target. *)

val target : Target.t
val seeds : bytes list list
