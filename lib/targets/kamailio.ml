let name = "kamailio"
let site s = name ^ "/" ^ s

let methods =
  [ "INVITE"; "REGISTER"; "OPTIONS"; "BYE"; "ACK"; "CANCEL"; "SUBSCRIBE";
    "NOTIFY"; "MESSAGE"; "REFER"; "INFO"; "UPDATE"; "PRACK"; "PUBLISH" ]

let split_lines s =
  String.split_on_char '\n' s |> List.map (fun l -> String.trim l)

(* sip:user@host:port;params *)
let parse_uri ctx uri =
  if Ctx.branch ctx (site "uri:scheme") (Proto_util.starts_with_ci ~prefix:"sip:" uri)
  then begin
    let rest = String.sub uri 4 (String.length uri - 4) in
    (match String.index_opt rest '@' with
    | Some i ->
      Ctx.hit ctx (site "uri:user");
      if Ctx.branch ctx (site "uri:user-empty") (i = 0) then ()
    | None -> Ctx.hit ctx (site "uri:nouser"));
    (match String.index_opt rest ';' with
    | Some _ -> Ctx.hit ctx (site "uri:params")
    | None -> ());
    (match String.rindex_opt rest ':' with
    | Some i when i > 0 -> (
      let port = String.sub rest (i + 1) (String.length rest - i - 1) in
      match Proto_util.int_of_string_bounded ~max:65535 port with
      | Some p -> ignore (Ctx.branch ctx (site "uri:port-privileged") (p < 1024))
      | None -> Ctx.hit ctx (site "uri:port-bad"))
    | _ -> ());
    true
  end
  else if Ctx.branch ctx (site "uri:sips") (Proto_util.starts_with_ci ~prefix:"sips:" uri)
  then true
  else if Ctx.branch ctx (site "uri:tel") (Proto_util.starts_with_ci ~prefix:"tel:" uri)
  then true
  else false

let parse_header ctx line =
  match String.index_opt line ':' with
  | None -> Ctx.hit ctx (site "hdr:malformed")
  | Some i ->
    let hname = Proto_util.upper (String.trim (String.sub line 0 i)) in
    let value = String.trim (String.sub line (i + 1) (String.length line - i - 1)) in
    (match hname with
    | "VIA" | "V" ->
      Ctx.hit ctx (site "hdr:via");
      if Ctx.branch ctx (site "via:udp") (Proto_util.starts_with_ci ~prefix:"SIP/2.0/UDP" value)
      then ()
      else if Ctx.branch ctx (site "via:tcp")
                (Proto_util.starts_with_ci ~prefix:"SIP/2.0/TCP" value)
      then ()
      else Ctx.hit ctx (site "via:other");
      (match String.index_opt value ';' with
      | Some _ ->
        if Ctx.branch ctx (site "via:branch")
             (Proto_util.header_value ~name:"Via" ("Via:" ^ value) <> None
             && String.length value > 12)
        then ()
      | None -> Ctx.hit ctx (site "via:nobranch"))
    | "FROM" | "F" ->
      Ctx.hit ctx (site "hdr:from");
      (match String.index_opt value '<' with
      | Some i -> (
        match String.index_opt value '>' with
        | Some j when j > i ->
          ignore (parse_uri ctx (String.sub value (i + 1) (j - i - 1)))
        | _ -> Ctx.hit ctx (site "from:unclosed"))
      | None -> ignore (parse_uri ctx value));
      if Ctx.branch ctx (site "from:tag") (Proto_util.starts_with_ci ~prefix:"" value
                                           && String.length value > 0
                                           && String.length value < 2048) then ()
    | "TO" | "T" -> Ctx.hit ctx (site "hdr:to")
    | "CSEQ" -> (
      Ctx.hit ctx (site "hdr:cseq");
      match Proto_util.tokens value with
      | [ num; meth ] -> (
        (match Proto_util.int_of_string_bounded ~max:1_000_000 num with
        | Some _ -> Ctx.hit ctx (site "cseq:num-ok")
        | None -> Ctx.hit ctx (site "cseq:num-bad"));
        if List.mem (Proto_util.upper meth) methods then Ctx.hit ctx (site "cseq:method-ok")
        else Ctx.hit ctx (site "cseq:method-bad"))
      | _ -> Ctx.hit ctx (site "cseq:arity"))
    | "CALL-ID" | "I" ->
      Ctx.hit ctx (site "hdr:callid");
      ignore (Ctx.branch ctx (site "callid:host") (String.contains value '@'))
    | "CONTACT" | "M" ->
      Ctx.hit ctx (site "hdr:contact");
      ignore (Ctx.branch ctx (site "contact:star") (value = "*"))
    | "MAX-FORWARDS" -> (
      match Proto_util.int_of_string_bounded ~max:255 value with
      | Some 0 -> Ctx.hit ctx (site "maxfwd:zero")
      | Some _ -> Ctx.hit ctx (site "maxfwd:ok")
      | None -> Ctx.hit ctx (site "maxfwd:bad"))
    | "CONTENT-LENGTH" | "L" -> (
      match Proto_util.int_of_string_bounded ~max:65536 value with
      | Some _ -> Ctx.hit ctx (site "clen:ok")
      | None -> Ctx.hit ctx (site "clen:bad"))
    | "CONTENT-TYPE" | "C" ->
      if Ctx.branch ctx (site "ctype:sdp") (Proto_util.starts_with_ci ~prefix:"application/sdp" value)
      then ()
      else Ctx.hit ctx (site "ctype:other")
    | "EXPIRES" -> Ctx.hit ctx (site "hdr:expires")
    | "ROUTE" | "RECORD-ROUTE" -> Ctx.hit ctx (site "hdr:route")
    | "AUTHORIZATION" | "PROXY-AUTHORIZATION" ->
      Ctx.hit ctx (site "hdr:auth");
      ignore (Ctx.branch ctx (site "auth:digest") (Proto_util.starts_with_ci ~prefix:"Digest" value))
    | "USER-AGENT" -> Ctx.hit ctx (site "hdr:ua")
    | "SUPPORTED" | "REQUIRE" -> Ctx.hit ctx (site "hdr:ext")
    | "EVENT" | "O" -> Ctx.hit ctx (site "hdr:event")
    | _ -> Ctx.hit ctx (site "hdr:unknown"))

let parse_sdp ctx body =
  List.iter
    (fun line ->
      if String.length line >= 2 && line.[1] = '=' then
        match line.[0] with
        | 'v' -> Ctx.hit ctx (site "sdp:v")
        | 'o' -> Ctx.hit ctx (site "sdp:o")
        | 'c' -> Ctx.hit ctx (site "sdp:c")
        | 'm' ->
          Ctx.hit ctx (site "sdp:m");
          if Ctx.branch ctx (site "sdp:audio")
               (Proto_util.starts_with_ci ~prefix:"m=audio" line)
          then ()
        | 'a' -> Ctx.hit ctx (site "sdp:a")
        | _ -> Ctx.hit ctx (site "sdp:other")
      else if line <> "" then Ctx.hit ctx (site "sdp:junk"))
    (split_lines body)

let on_packet ctx ~g:_ ~conn:_ ~reply data =
  Ctx.hit ctx (site "packet");
  let text = Bytes.to_string data in
  let head, body =
    match Proto_util.find_blank_line text with
    | Some i -> (String.sub text 0 i, String.sub text i (String.length text - i))
    | None -> (text, "")
  in
  match split_lines head with
  | [] -> Ctx.hit ctx (site "empty")
  | request_line :: headers ->
    (match Proto_util.tokens request_line with
    | [ meth; uri; version ] ->
      let meth = Proto_util.upper meth in
      if List.mem meth methods then begin
        Ctx.hit ctx (site ("method:" ^ meth));
        ignore (parse_uri ctx uri);
        if Ctx.branch ctx (site "version") (version = "SIP/2.0") then ()
        else Ctx.hit ctx (site "version:bad");
        List.iter (fun l -> if l <> "" then parse_header ctx l) headers;
        if Ctx.branch ctx (site "has-body") (String.length body > 4) then
          parse_sdp ctx body;
        let code, text_resp =
          match meth with
          | "INVITE" -> (180, "Ringing")
          | "REGISTER" -> (200, "OK")
          | "OPTIONS" -> (200, "OK")
          | "SUBSCRIBE" -> (202, "Accepted")
          | _ -> (200, "OK")
        in
        Ctx.set_state ctx code;
        reply (Bytes.of_string (Printf.sprintf "SIP/2.0 %d %s\r\n\r\n" code text_resp))
      end
      else if Ctx.branch ctx (site "response") (Proto_util.starts_with_ci ~prefix:"SIP/2.0" meth)
      then Ctx.hit ctx (site "got-response")
      else begin
        Ctx.hit ctx (site "method:unknown");
        Ctx.set_state ctx 501;
        reply (Bytes.of_string "SIP/2.0 501 Not Implemented\r\n\r\n")
      end
    | _ ->
      Ctx.hit ctx (site "reqline:malformed");
      Ctx.set_state ctx 400;
      reply (Bytes.of_string "SIP/2.0 400 Bad Request\r\n\r\n"))

let target =
  {
    Target.info =
      {
        Target.name;
        role = Target.Server;
        port = 5060;
        proto = Nyx_netemu.Net.Udp;
        dissector = Nyx_pcap.Dissector.Datagram;
        startup_ns = 150_000_000;
        work_ns = 1_600_000;
        desock_compat = false;
        forking = false;
        max_recv = 4096;
        dict = [ "INVITE"; "REGISTER"; "OPTIONS"; "SUBSCRIBE"; "SIP/2.0"; "Via: SIP/2.0/UDP "; "From: <sip:"; "To: <sip:"; "CSeq:"; "Contact:"; "Max-Forwards:"; "Content-Length:"; "application/sdp"; "m=audio" ];
      };
    hooks = { Target.default_hooks with on_packet };
  }

let invite =
  "INVITE sip:bob@example.com SIP/2.0\r\n\
   Via: SIP/2.0/UDP client.example.com;branch=z9hG4bK776asdhds\r\n\
   Max-Forwards: 70\r\n\
   To: <sip:bob@example.com>\r\n\
   From: <sip:alice@example.com>;tag=1928301774\r\n\
   Call-ID: a84b4c76e66710@client.example.com\r\n\
   CSeq: 314159 INVITE\r\n\
   Contact: <sip:alice@client.example.com>\r\n\
   Content-Type: application/sdp\r\n\
   Content-Length: 55\r\n\
   \r\n\
   v=0\r\no=alice 2890844526 2890844526 IN IP4 client\r\nm=audio 49170 RTP/AVP 0\r\n"

let register =
  "REGISTER sip:example.com SIP/2.0\r\n\
   Via: SIP/2.0/UDP client.example.com;branch=z9hG4bKnashds7\r\n\
   To: <sip:alice@example.com>\r\n\
   From: <sip:alice@example.com>;tag=456248\r\n\
   Call-ID: 843817637684230@client\r\n\
   CSeq: 1826 REGISTER\r\n\
   Contact: <sip:alice@client.example.com>\r\n\
   Expires: 7200\r\n\r\n"

let seeds =
  [
    [ Bytes.of_string register; Bytes.of_string invite ];
    [ Bytes.of_string "OPTIONS sip:example.com SIP/2.0\r\nCSeq: 1 OPTIONS\r\n\r\n" ];
  ]
