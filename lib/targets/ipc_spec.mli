(** A typed specification for the Firefox-IPC analogue — the full
    affine-typed-bytecode machinery of §2.2 put to work.

    Where the generic raw-packet spec treats the protocol as opaque bytes,
    this spec models it: [create] mints an actor handle (an output edge),
    [message]/[share]/[ping] borrow handles, and the fuzzer can therefore
    only generate well-formed message sequences — every generated input
    parses. [destroy] deliberately {e borrows} instead of consuming: the
    wire protocol lets a peer keep using a destroyed actor id, and
    modeling destroy as consumption would make the use-after-free
    unexpressible (the spec-fidelity trade-off the paper discusses).

    Use with [Nyx_core.Campaign.run]'s [~custom] handler. *)

type t = {
  spec : Nyx_spec.Spec.t;
  actor : Nyx_spec.Spec.edge_ty;
  create : Nyx_spec.Spec.node_ty;
  destroy : Nyx_spec.Spec.node_ty;
  message : Nyx_spec.Spec.node_ty;
  share : Nyx_spec.Spec.node_ty;
  ping : Nyx_spec.Spec.node_ty;
}

val create : unit -> t

val handler :
  t ->
  send:(bytes -> unit) ->
  Nyx_spec.Spec.node_ty ->
  int list ->
  bytes array ->
  int list option
(** Translates typed ops into wire messages on the implicit connection;
    structurally an {!Nyx_core.Op_handlers.custom_handler}. Actor slots
    are assigned from each [create]'s one-byte slot hint. *)

val seed : t -> Nyx_spec.Program.t
(** A well-typed session: two actors created, messaged, shared, and one
    destroyed. *)
