(** proftpd analogue: the largest FTP command surface plus SITE extensions.

    Carries the deep stateful bug only Nyx-Net finds in the paper
    (Table 1): after authenticating and STOR-ing a file, a
    [SITE CHMOD <mode> <name>] on that same file with a mode above 0777
    octal overflows a permissions table — reaching it needs a 5-packet
    stateful sequence plus a crafted argument. *)

val target : Target.t
val seeds : bytes list list
