(** Target execution context: what "compiled" guest code sees.

    Bundles the guest heap (all mutable state), the emulated network stack,
    the coverage map and the virtual clock, plus sanitizer configuration.
    Instrumentation callbacks ({!hit}, {!branch}) are this reproduction's
    analogue of AFL compile-time instrumentation: sites are named by
    strings and hashed into the coverage map. *)

type t = {
  heap : Nyx_vm.Guest_heap.t;
  net : Nyx_netemu.Net.t;
  disk : Nyx_vm.Disk.t;
      (** the emulated block device — state written here survives an
          AFLNet-style restart (cleanup scripts are imperfect) but is
          rolled back by whole-VM snapshots *)
  cov : Coverage.t;
  clock : Nyx_sim.Clock.t;
  asan : bool;  (** bounds-checked heap accesses crash loudly *)
  layout_cookie : int;
      (** Per-campaign randomness standing in for the initial memory
          layout: silent-corruption bugs only crash for unlucky layouts
          (Table 1's dcmtk footnote). *)
  mutable state_code : int;
      (** Protocol state annotation (e.g. last response code) — what
          AFLNet's state-aware scheduling observes. *)
}

exception Crash of { kind : string; detail : string }
(** A detectable memory-safety violation or fatal fault in the target. *)

val create :
  ?asan:bool ->
  ?layout_cookie:int ->
  heap:Nyx_vm.Guest_heap.t ->
  net:Nyx_netemu.Net.t ->
  disk:Nyx_vm.Disk.t ->
  Nyx_sim.Clock.t ->
  t

val of_vm :
  ?asan:bool -> ?layout_cookie:int -> net:Nyx_netemu.Net.t -> Nyx_vm.Vm.t -> t
(** Convenience: heap, disk and clock taken from the VM. *)

val hit : t -> string -> unit
(** Record an edge at the site named by the string (hashed), charging
    {!Nyx_sim.Cost.edge}. *)

val hit_id : t -> int -> unit
(** Like {!hit} with a precomputed integer site id — for instrumentation
    in per-frame hot paths (the Mario position feedback). *)

val branch : t -> string -> bool -> bool
(** [branch t site cond] records the taken direction as an edge and
    returns [cond] — instrument-and-test in one expression. *)

val crash : t -> kind:string -> string -> 'a
(** Raise {!Crash}. *)

val work : t -> int -> unit
(** Charge [ns] of plain computation to the clock. *)

val set_state : t -> int -> unit

val state_signature : t -> int
(** Deterministic non-negative mix of the current [state_code] — the
    explicit protocol-state annotation's contribution to
    {!Target.state_hash}. *)
