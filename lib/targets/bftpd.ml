let config =
  {
    Ftp_common.name = "bftpd";
    banner = "220 bftpd ready";
    require_auth = true;
    commands = Ftp_common.standard_commands;
    special = None;
  }

let target =
  {
    Target.info =
      {
        Target.name = "bftpd";
        role = Target.Server;
        port = 21;
        proto = Nyx_netemu.Net.Tcp;
        dissector = Nyx_pcap.Dissector.Crlf;
        startup_ns = 30_000_000;
        work_ns = 300_000;
        desock_compat = false;
        forking = false;
        max_recv = 1024;
        dict = [ "USER"; "PASS"; "TYPE I"; "PASV"; "PORT"; "RETR"; "STOR"; "CWD"; "SITE"; "REST"; "anonymous" ];
      };
    hooks = Ftp_common.hooks config;
  }

let seeds = [ List.map Bytes.of_string Ftp_common.sample_session ]
