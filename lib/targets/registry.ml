(* Domain-safety invariant (audited for nyx_parallel): this module and
   every target it lists hold no toplevel mutable state. [Target.t] is a
   record of immutable info plus hook closures whose state lives in the
   per-campaign [Ctx.t]/guest heap, and the toplevel seed [bytes] are
   only ever read (mutators copy before editing, the net layer copies on
   send), so entries may be shared freely across domains. Keep it that
   way: new targets must allocate their state through the hooks' [Ctx.t],
   never in module-level refs/tables. *)

type entry = { target : Target.t; seeds : bytes list list }

let profuzzbench () =
  [
    { target = Bftpd.target; seeds = Bftpd.seeds };
    { target = Dcmtk.target; seeds = Dcmtk.seeds };
    { target = Dnsmasq.target; seeds = Dnsmasq.seeds };
    { target = Exim.target; seeds = Exim.seeds };
    { target = Daapd.target; seeds = Daapd.seeds };
    { target = Kamailio.target; seeds = Kamailio.seeds };
    { target = Lightftp.target; seeds = Lightftp.seeds };
    { target = Live555.target; seeds = Live555.seeds };
    { target = Openssh.target; seeds = Openssh.seeds };
    { target = Openssl_srv.target; seeds = Openssl_srv.seeds };
    { target = Proftpd.target; seeds = Proftpd.seeds };
    { target = Pure_ftpd.target; seeds = Pure_ftpd.seeds };
    { target = Tinydtls.target; seeds = Tinydtls.seeds };
  ]

let all () =
  profuzzbench ()
  @ [
      { target = Echo.target; seeds = Echo.seeds };
      { target = Ipc.target; seeds = Ipc.seeds };
      { target = Mysql_client.target; seeds = Mysql_client.seeds };
      { target = Lighttpd.target; seeds = Lighttpd.seeds };
    ]

let find name =
  List.find_opt (fun e -> e.target.Target.info.Target.name = name) (all ())

let seed_capture entry =
  List.concat
    (List.mapi
       (fun stream packets ->
         List.mapi
           (fun i payload ->
             {
               Nyx_pcap.Capture.stream;
               dir = Nyx_pcap.Capture.To_server;
               ts_us = i * 1000;
               payload;
             })
           packets)
       entry.seeds)
  |> List.fold_left Nyx_pcap.Capture.add Nyx_pcap.Capture.empty

(* Each seed session becomes its own program so the corpus starts with one
   entry per canned session. *)
let seed_programs entry net_spec =
  let dissector = entry.target.Target.info.Target.dissector in
  List.map
    (fun packets ->
      let cap = Target.sample_capture_of_packets packets in
      Nyx_pcap.Importer.to_seed net_spec dissector cap)
    entry.seeds
