(** AFL-style edge-coverage bitmap (§4.5 compile-time coverage).

    Targets are "compiled" with instrumentation callbacks at branch sites;
    each callback hashes the site id with the previous location into a
    64 KiB map, exactly like AFL's shared-memory bitmap that Nyx-Net
    redirects into QEMU's shared memory.

    The map carries a hit-site {e journal} — the coverage-layer analogue
    of the paper's dirty stack (§"fast reload"): every cell touched this
    execution is recorded once, so [reset], [save], [restore], [matches]
    and [Cumulative.merge] are O(touched cells), never O(map).  The
    [_slow] full-scan variants are the pre-journal reference
    implementations, kept only for property tests and benchmarks. *)

val map_size : int
(** 65536. *)

type t

val create : unit -> t

val reset : t -> unit
(** Clear per-execution state (map and previous-location register).
    O(touched cells): only journaled cells are cleared. *)

val reset_slow : t -> unit
(** Reference implementation: O(map) full fill. Behaviourally identical
    to [reset]; for property tests and the hotpath bench only. *)

val hit : t -> int -> unit
(** [hit t site] records an edge from the previous site to [site]
    (saturating 8-bit hit counts). *)

val edge_count : t -> int
(** Distinct map cells hit this execution. O(1): the journal length. *)

val edge_count_slow : t -> int
(** Reference implementation: O(map) full scan. *)

val iter_hits : t -> (int -> int -> unit) -> unit
(** [iter_hits t f] calls [f index bucketed_count] for each hit cell,
    with AFL's logarithmic hit-count bucketing applied.  Reporting-only:
    O(map) full scan in cell-index order; hot paths walk the journal. *)

val signature : t -> (int * int) array
(** Sorted [(cell, raw_count)] view of the nonzero cells — a canonical
    O(touched log touched) fingerprint of the map, independent of the
    order cells were hit in. Two maps are byte-identical iff their
    signatures and previous-location registers agree. *)

type checkpoint

val save : t -> checkpoint
(** Capture the per-execution map state — used when an incremental
    snapshot is taken so suffix executions replay the prefix coverage.
    O(touched cells): only live cells are stored. *)

val checkpoint_cells : checkpoint -> int
(** Number of saved hit cells — the size driver of every O(touched)
    operation on the checkpoint (restore, matches, fleet sync merges). *)

val restore : t -> checkpoint -> unit
(** O(currently touched + saved cells). *)

val matches : t -> checkpoint -> bool
(** [matches t cp] is [true] iff the current map state (cells, counts,
    and previous-location register) is exactly the checkpointed one —
    equivalent to structurally comparing two full-map copies, in
    O(touched cells) and without allocating. *)

(** Cumulative "virgin" map across a campaign. *)
module Cumulative : sig
  type cov := t
  type t

  val create : unit -> t

  val merge : t -> cov -> bool
  (** Fold one execution's map in; [true] if it contributed any new
      coverage (new cell or new hit-count bucket).  Walks the
      execution's journal directly: O(touched cells), closure-free. *)

  val merge_saved : t -> checkpoint -> bool
(** Fold a saved coverage checkpoint in (raw counts bucketed on the
      way): same verdict and resulting state as [merge] applied to the
      map the checkpoint was taken from, in O(saved cells). The fleet
      corpus-sync path uses this to judge exported programs against the
      shared virgin map without re-executing them. *)

  val merge_slow : t -> cov -> bool
  (** Reference implementation via [iter_hits]: O(map). Same verdict and
      same resulting state as [merge]; for property tests and the
      hotpath bench only. *)

  val edge_count : t -> int
  (** Distinct cells ever hit — the "branch coverage" metric of
      Table 2. O(1): maintained incrementally by merges. *)

  val edge_count_slow : t -> int
  (** Reference implementation: O(map) full scan. *)

  val state_bytes : t -> bytes
  (** Copy of the virgin map — the complete cumulative state, for
      campaign checkpoints. *)

  val load_state : t -> bytes -> unit
  (** Overwrite the virgin map and recompute the edge count.
      @raise Invalid_argument if the buffer is not [map_size] bytes. *)
end
