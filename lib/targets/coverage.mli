(** AFL-style edge-coverage bitmap (§4.5 compile-time coverage).

    Targets are "compiled" with instrumentation callbacks at branch sites;
    each callback hashes the site id with the previous location into a
    64 KiB map, exactly like AFL's shared-memory bitmap that Nyx-Net
    redirects into QEMU's shared memory. *)

val map_size : int
(** 65536. *)

type t

val create : unit -> t

val reset : t -> unit
(** Clear per-execution state (map and previous-location register). *)

val hit : t -> int -> unit
(** [hit t site] records an edge from the previous site to [site]
    (saturating 8-bit hit counts). *)

val edge_count : t -> int
(** Distinct map cells hit this execution. *)

val iter_hits : t -> (int -> int -> unit) -> unit
(** [iter_hits t f] calls [f index bucketed_count] for each hit cell,
    with AFL's logarithmic hit-count bucketing applied. *)

type checkpoint

val save : t -> checkpoint
(** Capture the per-execution map state — used when an incremental
    snapshot is taken so suffix executions replay the prefix coverage. *)

val restore : t -> checkpoint -> unit

(** Cumulative "virgin" map across a campaign. *)
module Cumulative : sig
  type cov := t
  type t

  val create : unit -> t

  val merge : t -> cov -> bool
  (** Fold one execution's map in; [true] if it contributed any new
      coverage (new cell or new hit-count bucket). *)

  val edge_count : t -> int
  (** Distinct cells ever hit — the "branch coverage" metric of
      Table 2. *)
end
