(** Target definition and the shared server event loop.

    A target is a protocol server "compiled" against the agent's hook
    surface ({!Nyx_netemu.Net}) with instrumentation ({!Ctx}). All mutable
    protocol state lives in guest memory (global block + per-connection
    blocks), so snapshots genuinely reset it.

    The {!pump} function is the server's main loop: it drains readiness
    events until the target would block — exactly the point where the real
    agent signals the hypervisor that the test step is complete. *)

type role =
  | Server  (** binds and accepts: the fuzzer connects in *)
  | Client
      (** connects out: the fuzzer impersonates the remote service, as in
          the MySQL-client case study (§5.4) *)

type info = {
  name : string;
  role : role;
  port : int;
  proto : Nyx_netemu.Net.proto;
  dissector : Nyx_pcap.Dissector.t;
  startup_ns : int;  (** simulated process initialization cost *)
  work_ns : int;  (** per-packet base compute cost *)
  desock_compat : bool;
      (** whether libpreeny's desock emulation can drive this target
          (single TCP connection, no early server banner) — Table 2's
          n/a rows are targets where this is false *)
  forking : bool;  (** forks a worker per connection (forked-daapd) *)
  max_recv : int;
  dict : string list;
      (** protocol tokens for the mutators — the dictionary a fuzzing
          campaign against this protocol would ship (AFLNet bundles
          protocol templates; AFL users pass -x dictionaries) *)
}

type hooks = {
  global_state_size : int;
  conn_state_size : int;
  on_init : Ctx.t -> g:int -> unit;
  on_connect : Ctx.t -> g:int -> conn:int -> reply:(bytes -> unit) -> unit;
  on_packet : Ctx.t -> g:int -> conn:int -> reply:(bytes -> unit) -> bytes -> unit;
  on_disconnect : Ctx.t -> g:int -> conn:int -> unit;
}

type t = { info : info; hooks : hooks }

val default_hooks : hooks
(** No-op hooks with minimal state sizes; override what you need. *)

type runtime

val boot : t -> Ctx.t -> runtime
(** Simulate process startup: charge [startup_ns], allocate state in the
    guest heap, run [on_init], create and bind the listening socket. The
    root snapshot is taken after this returns. *)

val hang_budget : unit -> int
(** Event-loop iteration budget before {!pump} declares the guest wedged:
    the in-process override if set, else [NYX_HANG_BUDGET] (read once at
    load; positive integers only), else 4096. The budget used is embedded
    in the ["hang"] crash's detail string. *)

val set_hang_budget_override : int option -> unit
(** Test hook: force {!hang_budget} regardless of the environment
    ([None] returns to the environment/default). Set it before any
    campaign domain runs. *)

val pump : runtime -> unit
(** Drain all pending events (accepts, packets, EOFs) until the server
    would block. Crashes propagate as {!Ctx.Crash},
    {!Nyx_vm.Guest_heap.Heap_oob} or {!Nyx_vm.Memory.Fault}. A run-away
    loop raises {!Ctx.Crash} with kind ["hang"]. *)

val ctx : runtime -> Ctx.t
val target : runtime -> t

val state_hash : Ctx.t -> Nyx_snapshot.Aux_state.t -> int
(** Fuzzy protocol-state signature of the running target: the
    {!Nyx_snapshot.Aux_state.fuzzy_hash} of a fresh aux-state capture
    (socket tables, agent bookkeeping) xor-folded with the target's
    explicit {!Ctx.state_signature}. Deterministic; charges
    {!Nyx_sim.Cost.state_hash} plus the capture's per-byte cost. The
    dynamic placement policy probes this between packets to find
    state-machine boundaries (the StateAFL idea). *)

val sample_capture_of_packets : ?stream:int -> bytes list -> Nyx_pcap.Capture.t
(** Helper for targets' canned seed traffic. *)
