type fd = int
type flow = int
type proto = Tcp | Udp | Unix_sock
type backend = Emulated | Real

exception Would_block of fd
exception Bad_fd of fd

type sock = {
  sid : int;
  proto : proto;
  mutable port : int;
  mutable listening : bool;
  mutable backlog : int list; (* pending connection sids, oldest first *)
  mutable inbox : (int * Bytes.t) list; (* (flow, packet), oldest first *)
  mutable partial : (int * Bytes.t) option; (* unconsumed tail of a packet *)
  mutable out_rev : (int * Bytes.t) list;
  mutable peer_open : bool;
  mutable eof_pending : bool;
  mutable refcount : int;
  mutable conn_flow : int; (* TCP/Unix connection's flow id; -1 otherwise *)
  mutable reply_flow : int; (* last recvfrom peer, for connectionless send *)
  mutable write_shut : bool;
  mutable options : (string * int) list;
  mutable outbound : bool;
}

(* Everything the kernel would snapshot: closure-free, Marshal-safe. *)
type state = {
  socks : (int, sock) Hashtbl.t;
  fds : (int, int * int) Hashtbl.t; (* fd -> (sid, per-process refcount) *)
  flows : (int, int) Hashtbl.t; (* flow -> sid *)
  listeners : (int, int) Hashtbl.t; (* port -> sid *)
  mutable next_fd : int;
  mutable next_sid : int;
  mutable next_flow : int;
  mutable processes : int;
  mutable syscalls : int;
}

type t = {
  mutable st : state;
  clock : Nyx_sim.Clock.t;
  backend : backend;
  boundaries : bool;
}

let fresh_state () =
  {
    socks = Hashtbl.create 16;
    fds = Hashtbl.create 16;
    flows = Hashtbl.create 16;
    listeners = Hashtbl.create 4;
    next_fd = 3; (* 0-2 are stdio *)
    next_sid = 1;
    next_flow = 1;
    processes = 1;
    syscalls = 0;
  }

let create ?(backend = Emulated) ?(boundaries = true) clock =
  { st = fresh_state (); clock; backend; boundaries }

let backend t = t.backend

let register_aux t aux =
  Nyx_snapshot.Aux_state.register aux
    {
      Nyx_snapshot.Aux_state.name = "netemu";
      save = (fun () -> Marshal.to_bytes t.st []);
      load = (fun b -> t.st <- Marshal.from_bytes b 0);
    };
  (* The syscall counter is pure telemetry: it advances on every poll, so
     leaving it in the hashed image would make every op look like a new
     protocol state (the Marshal varint grows and shifts all later bytes
     across hash chunks). Zero it for the hash view only — snapshots keep
     capturing the exact state. *)
  Nyx_snapshot.Aux_state.register_hash_view aux ~name:"netemu" (fun () ->
      let saved = t.st.syscalls in
      t.st.syscalls <- 0;
      Fun.protect
        ~finally:(fun () -> t.st.syscalls <- saved)
        (fun () -> Marshal.to_bytes t.st []))

let charge t cost_real =
  t.st.syscalls <- t.st.syscalls + 1;
  let ns = match t.backend with Emulated -> Nyx_sim.Cost.emulated_syscall | Real -> cost_real in
  Nyx_sim.Clock.advance t.clock ns

let charge_syscall t = charge t Nyx_sim.Cost.real_syscall

let sock_of_fd t fd =
  match Hashtbl.find_opt t.st.fds fd with
  | None -> raise (Bad_fd fd)
  | Some (sid, _) -> Hashtbl.find t.st.socks sid

let new_sock t proto =
  let st = t.st in
  let s =
    {
      sid = st.next_sid;
      proto;
      port = 0;
      listening = false;
      backlog = [];
      inbox = [];
      partial = None;
      out_rev = [];
      peer_open = true;
      eof_pending = false;
      refcount = 0;
      conn_flow = -1;
      reply_flow = -1;
      write_shut = false;
      options = [];
      outbound = false;
    }
  in
  st.next_sid <- st.next_sid + 1;
  Hashtbl.replace st.socks s.sid s;
  s

let attach_fd t sid =
  let st = t.st in
  let fd = st.next_fd in
  st.next_fd <- st.next_fd + 1;
  Hashtbl.replace st.fds fd (sid, 1);
  (Hashtbl.find st.socks sid).refcount <- (Hashtbl.find st.socks sid).refcount + 1;
  fd

(* Target-side API *)

let socket t proto =
  charge_syscall t;
  let s = new_sock t proto in
  attach_fd t s.sid

let bind t fd port =
  charge_syscall t;
  let s = sock_of_fd t fd in
  if Hashtbl.mem t.st.listeners port then
    invalid_arg (Printf.sprintf "Net.bind: port %d already bound" port);
  s.port <- port;
  Hashtbl.replace t.st.listeners port s.sid;
  (* A bound UDP socket is immediately able to receive. *)
  if s.proto = Udp then s.listening <- true

let listen t fd =
  charge_syscall t;
  let s = sock_of_fd t fd in
  if s.port = 0 then invalid_arg "Net.listen: socket not bound";
  s.listening <- true

let accept t fd =
  charge t Nyx_sim.Cost.real_connect;
  let s = sock_of_fd t fd in
  if not s.listening then invalid_arg "Net.accept: not listening";
  match s.backlog with
  | [] -> raise (Would_block fd)
  | sid :: rest ->
    s.backlog <- rest;
    attach_fd t sid

let take_packet s ~max ~datagram =
  match s.partial with
  | Some (fl, data) when not datagram ->
    if Bytes.length data <= max then begin
      s.partial <- None;
      (data, fl)
    end
    else begin
      s.partial <- Some (fl, Bytes.sub data max (Bytes.length data - max));
      (Bytes.sub data 0 max, fl)
    end
  | Some (fl, data) ->
    (* Datagram semantics: the tail beyond [max] is dropped. *)
    s.partial <- None;
    (Bytes.sub data 0 (min max (Bytes.length data)), fl)
  | None -> (
    match s.inbox with
    | [] ->
      if s.eof_pending || not s.peer_open then begin
        s.eof_pending <- false;
        (Bytes.empty, s.conn_flow)
      end
      else raise (Would_block (-1))
    | (fl, data) :: rest ->
      s.inbox <- rest;
      if datagram then (Bytes.sub data 0 (min max (Bytes.length data)), fl)
      else if Bytes.length data <= max then (data, fl)
      else begin
        s.partial <- Some (fl, Bytes.sub data max (Bytes.length data - max));
        (Bytes.sub data 0 max, fl)
      end)

(* Without boundary emulation the stream is coalesced: keep pulling queued
   packets until [max] is filled — the behaviour a real TCP stack is
   allowed to exhibit and which breaks boundary-reliant servers. *)
let take_stream s ~max =
  let buf = Buffer.create max in
  let fl = ref s.conn_flow in
  (try
     while Buffer.length buf < max do
       let data, f = take_packet s ~max:(max - Buffer.length buf) ~datagram:false in
       if Bytes.length data = 0 then raise Exit;
       fl := f;
       Buffer.add_bytes buf data
     done
   with Would_block _ | Exit -> ());
  if Buffer.length buf = 0 then begin
    if s.eof_pending || not s.peer_open then begin
      s.eof_pending <- false;
      (Bytes.empty, !fl)
    end
    else raise (Would_block (-1))
  end
  else (Bytes.of_string (Buffer.contents buf), !fl)

let recv t fd ~max =
  charge t (Nyx_sim.Cost.real_packet max);
  let s = sock_of_fd t fd in
  try
    let data, _ =
      if t.boundaries || s.proto = Udp then take_packet s ~max ~datagram:(s.proto = Udp)
      else take_stream s ~max
    in
    data
  with Would_block _ -> raise (Would_block fd)

let recvfrom t fd ~max =
  charge t (Nyx_sim.Cost.real_packet max);
  let s = sock_of_fd t fd in
  try
    let data, fl = take_packet s ~max ~datagram:true in
    s.reply_flow <- fl;
    (data, fl)
  with Would_block _ -> raise (Would_block fd)

let send t fd data =
  charge t (Nyx_sim.Cost.real_packet (Bytes.length data));
  let s = sock_of_fd t fd in
  if s.write_shut then invalid_arg "Net.send: socket shut down for writing (EPIPE)";
  let fl = if s.conn_flow >= 0 then s.conn_flow else s.reply_flow in
  s.out_rev <- (fl, Bytes.copy data) :: s.out_rev;
  Bytes.length data

let sendto t fd fl data =
  charge t (Nyx_sim.Cost.real_packet (Bytes.length data));
  let s = sock_of_fd t fd in
  s.out_rev <- (fl, Bytes.copy data) :: s.out_rev;
  Bytes.length data

let close t fd =
  charge_syscall t;
  let s = sock_of_fd t fd in
  (* The fd number disappears only when no process holds it any more;
     the socket itself dies with its last reference. *)
  (match Hashtbl.find_opt t.st.fds fd with
  | Some (sid, n) when n > 1 -> Hashtbl.replace t.st.fds fd (sid, n - 1)
  | _ -> Hashtbl.remove t.st.fds fd);
  s.refcount <- s.refcount - 1;
  if s.refcount <= 0 then begin
    if s.port <> 0 && Hashtbl.find_opt t.st.listeners s.port = Some s.sid then
      Hashtbl.remove t.st.listeners s.port;
    if s.conn_flow >= 0 then Hashtbl.remove t.st.flows s.conn_flow;
    Hashtbl.remove t.st.socks s.sid
  end

let dup t fd =
  charge_syscall t;
  let s = sock_of_fd t fd in
  attach_fd t s.sid

let connect_out t fd ~port =
  charge t Nyx_sim.Cost.real_connect;
  let s = sock_of_fd t fd in
  if s.conn_flow >= 0 then invalid_arg "Net.connect_out: already connected";
  s.port <- port;
  s.outbound <- true;
  let fl = t.st.next_flow in
  t.st.next_flow <- fl + 1;
  s.conn_flow <- fl;
  Hashtbl.replace t.st.flows fl s.sid;
  fl

let shutdown t fd how =
  charge_syscall t;
  let s = sock_of_fd t fd in
  (match how with
  | `Read | `Both ->
    s.inbox <- [];
    s.partial <- None;
    s.peer_open <- false;
    s.eof_pending <- true
  | `Write -> ());
  match how with `Write | `Both -> s.write_shut <- true | `Read -> ()

let peek t fd ~max =
  charge t (Nyx_sim.Cost.real_packet max);
  let s = sock_of_fd t fd in
  match s.partial with
  | Some (_, data) -> Bytes.sub data 0 (min max (Bytes.length data))
  | None -> (
    match s.inbox with
    | (_, data) :: _ -> Bytes.sub data 0 (min max (Bytes.length data))
    | [] ->
      if s.eof_pending || not s.peer_open then Bytes.empty else raise (Would_block fd))

let getpeername t fd =
  charge_syscall t;
  let s = sock_of_fd t fd in
  if s.conn_flow >= 0 then Some s.conn_flow else None

let getsockname t fd =
  charge_syscall t;
  (sock_of_fd t fd).port

let setsockopt t fd name value =
  charge_syscall t;
  let s = sock_of_fd t fd in
  s.options <- (name, value) :: List.remove_assoc name s.options

let getsockopt t fd name =
  charge_syscall t;
  let s = sock_of_fd t fd in
  Option.value ~default:0 (List.assoc_opt name s.options)

let fds_of_sid t sid =
  Hashtbl.fold (fun fd (s, _) acc -> if s = sid then fd :: acc else acc) t.st.fds []
  |> List.sort compare

let poll t =
  charge t Nyx_sim.Cost.real_syscall;
  let ready =
    Hashtbl.fold
      (fun sid s acc ->
        let event =
          if s.listening && s.proto <> Udp && s.backlog <> [] then Some `Accept
          else if s.inbox <> [] || s.partial <> None || s.eof_pending then Some `Read
          else None
        in
        match event with
        | None -> acc
        | Some ev -> (
          match fds_of_sid t sid with [] -> acc | fd :: _ -> (sid, fd, ev) :: acc))
      t.st.socks []
  in
  match List.sort compare ready with
  | [] -> None
  | (_, fd, `Accept) :: _ -> Some (`Accept fd)
  | (_, fd, `Read) :: _ -> Some (`Read fd)

let fork t =
  charge t Nyx_sim.Cost.fork;
  (* The child inherits every fd: bump the per-fd count and each socket's
     reference count. *)
  let entries = Hashtbl.fold (fun fd e acc -> (fd, e) :: acc) t.st.fds [] in
  List.iter
    (fun (fd, (sid, n)) ->
      Hashtbl.replace t.st.fds fd (sid, n + 1);
      let s = Hashtbl.find t.st.socks sid in
      s.refcount <- s.refcount + 1)
    entries;
  t.st.processes <- t.st.processes + 1;
  t.st.processes

(* Executor-side API *)

let connect_peer t ~port =
  (match t.backend with
  | Emulated -> Nyx_sim.Clock.advance t.clock Nyx_sim.Cost.emulated_syscall
  | Real -> Nyx_sim.Clock.advance t.clock Nyx_sim.Cost.real_connect);
  match Hashtbl.find_opt t.st.listeners port with
  | None -> None
  | Some sid ->
    let listener = Hashtbl.find t.st.socks sid in
    if (not listener.listening) || listener.proto = Udp then None
    else begin
      let conn = new_sock t listener.proto in
      let fl = t.st.next_flow in
      t.st.next_flow <- fl + 1;
      conn.conn_flow <- fl;
      conn.port <- 0;
      Hashtbl.replace t.st.flows fl conn.sid;
      listener.backlog <- listener.backlog @ [ conn.sid ];
      Some fl
    end

let sock_of_flow t fl =
  match Hashtbl.find_opt t.st.flows fl with
  | None -> invalid_arg (Printf.sprintf "Net: unknown flow %d" fl)
  | Some sid -> (
    match Hashtbl.find_opt t.st.socks sid with
    | None -> invalid_arg (Printf.sprintf "Net: flow %d socket closed" fl)
    | Some s -> s)

let inject_cost t len =
  match t.backend with
  | Emulated -> Nyx_sim.Clock.advance t.clock Nyx_sim.Cost.emulated_syscall
  | Real -> Nyx_sim.Clock.advance t.clock (Nyx_sim.Cost.real_packet len)

let send_peer t fl data =
  inject_cost t (Bytes.length data);
  (* A zero-length send transfers nothing; delivering it would read as an
     orderly shutdown on the receiving side. *)
  if Bytes.length data > 0 then begin
    let s = sock_of_flow t fl in
    s.inbox <- s.inbox @ [ (fl, Bytes.copy data) ]
  end

let udp_send_peer t ~port ?flow data =
  inject_cost t (Bytes.length data);
  match Hashtbl.find_opt t.st.listeners port with
  | None -> None
  | Some sid ->
    let s = Hashtbl.find t.st.socks sid in
    if s.proto <> Udp then None
    else begin
      let fl =
        match flow with
        | Some fl -> fl
        | None ->
          let fl = t.st.next_flow in
          t.st.next_flow <- fl + 1;
          Hashtbl.replace t.st.flows fl sid;
          fl
      in
      s.inbox <- s.inbox @ [ (fl, Bytes.copy data) ];
      Some fl
    end

let close_peer t fl =
  let s = sock_of_flow t fl in
  s.peer_open <- false;
  s.eof_pending <- true

let responses t fl =
  let collect s =
    let mine, rest = List.partition (fun (f, _) -> f = fl) (List.rev s.out_rev) in
    s.out_rev <- List.rev rest;
    List.map snd mine
  in
  (* The flow's own socket plus any UDP socket that replied via sendto. *)
  match Hashtbl.find_opt t.st.flows fl with
  | Some sid when Hashtbl.mem t.st.socks sid -> collect (Hashtbl.find t.st.socks sid)
  | _ ->
    Hashtbl.fold (fun _ s acc -> acc @ collect s) t.st.socks []

let outbound_flows t =
  Hashtbl.fold
    (fun _ s acc -> if s.outbound && s.conn_flow >= 0 then s.conn_flow :: acc else acc)
    t.st.socks []
  |> List.sort compare

let listening_ports t =
  Hashtbl.fold
    (fun port sid acc ->
      match Hashtbl.find_opt t.st.socks sid with
      | Some s when s.listening -> (port, s.proto) :: acc
      | _ -> acc)
    t.st.listeners []
  |> List.sort compare

let open_socket_count t = Hashtbl.length t.st.socks
let syscall_count t = t.st.syscalls
