(** Emulated POSIX networking — the Nyx-Net agent's hook surface (§3.3, §4.1).

    The real system injects an [LD_PRELOAD] library hooking ~30 libc
    functions so that reads on the target connection are served from the
    fuzzer's bytecode stream instead of the kernel. Here the same surface
    is a module: targets are written against {!socket}/{!accept}/{!recv}/
    {!poll}/... and the executor injects connections and packets from the
    other side.

    Two backends model the performance claim:
    - {!Emulated}: every hooked call costs {!Nyx_sim.Cost.emulated_syscall};
    - {!Real}: calls cross a real kernel (higher syscall cost, TCP
      handshakes, per-packet stack traversal) — what AFLNet and friends pay.

    Packet-boundary semantics follow §3.3: one [recv] never returns bytes
    of more than one injected packet (servers rely on this even though TCP
    does not guarantee it); setting [boundaries:false] coalesces the stream
    instead — an ablation knob.

    All state is closure-free and registered with {!Nyx_snapshot.Aux_state},
    so whole-VM snapshots capture and restore kernel socket state exactly
    like the real system. *)

type t

type fd = int
type flow = int
(** Executor-side connection identifier. *)

type proto = Tcp | Udp | Unix_sock

type backend = Emulated | Real

exception Would_block of fd
(** Raised when a call would block — targets must only call {!recv} /
    {!accept} after {!poll} reported readiness. *)

exception Bad_fd of fd

val create : ?backend:backend -> ?boundaries:bool -> Nyx_sim.Clock.t -> t
(** [boundaries] defaults to [true]. *)

val register_aux : t -> Nyx_snapshot.Aux_state.t -> unit
(** Register this stack's state for whole-VM snapshots. *)

val backend : t -> backend

(** {1 Target-side API (the hooked libc functions)} *)

val socket : t -> proto -> fd
val bind : t -> fd -> int -> unit
(** [bind t fd port]. @raise Invalid_argument if the port is taken. *)

val listen : t -> fd -> unit
val accept : t -> fd -> fd
(** @raise Would_block when the backlog is empty. *)

val connect_out : t -> fd -> port:int -> flow
(** Client-side connect: attach the socket to a remote service the fuzzer
    impersonates (§5.4 — fuzzing clients means playing the server). The
    returned flow is what the executor feeds with {!send_peer}; the
    executor discovers it via {!outbound_flows}. *)

val recv : t -> fd -> max:int -> bytes
(** Empty bytes = orderly shutdown (EOF). At most one packet's bytes per
    call when boundary emulation is on. @raise Would_block. *)

val recvfrom : t -> fd -> max:int -> bytes * flow
(** Datagram receive; excess bytes beyond [max] are truncated (UDP
    semantics). *)

val send : t -> fd -> bytes -> int
(** Send to the connected peer (TCP) or to the last {!recvfrom} peer
    (connectionless reply). Returns bytes written. *)

val sendto : t -> fd -> flow -> bytes -> int

val close : t -> fd -> unit
(** Drops one fd reference; the underlying socket closes when the last
    reference (dup'd fds, forked processes) goes away. *)

val dup : t -> fd -> fd

val shutdown : t -> fd -> [ `Read | `Write | `Both ] -> unit
(** Half-close: [`Read] discards queued input and makes further reads
    return EOF; [`Write] stops further sends ([send] then raises
    [Invalid_argument], as EPIPE). *)

val peek : t -> fd -> max:int -> bytes
(** recv with MSG_PEEK: returns the next packet's bytes without
    consuming them. @raise Would_block like {!recv}. *)

val getpeername : t -> fd -> flow option
(** The connected peer's flow id, if this is a connection socket. *)

val getsockname : t -> fd -> int
(** The socket's bound local port (0 when unbound). *)

val setsockopt : t -> fd -> string -> int -> unit
(** Record a socket option (servers set REUSEADDR/NODELAY and later
    read them back). *)

val getsockopt : t -> fd -> string -> int
(** Last value set, 0 by default. *)

val poll : t -> [ `Accept of fd | `Read of fd ] option
(** The select/poll/epoll emulation: the next ready descriptor, or [None]
    when the target would block. Deterministic order (lowest socket
    first). *)

val fork : t -> int
(** Fork bookkeeping: the child shares the fd table (how forking servers
    inherit the listening socket). Returns the new process count. *)

(** {1 Executor-side API (the fuzzer injecting traffic)} *)

val connect_peer : t -> port:int -> flow option
(** Open a client connection to a listening TCP/Unix socket; [None] when
    nothing listens (connection refused). *)

val send_peer : t -> flow -> bytes -> unit
(** Inject one packet on an established flow.
    @raise Invalid_argument on an unknown flow. *)

val udp_send_peer : t -> port:int -> ?flow:flow -> bytes -> flow option
(** Inject a datagram to a bound UDP socket, creating a flow on first use;
    [None] when no socket is bound to [port]. *)

val close_peer : t -> flow -> unit
(** Peer-side orderly shutdown: the target's next [recv] returns EOF. *)

val responses : t -> flow -> bytes list
(** Drain everything the target sent on this flow (oldest first). *)

val outbound_flows : t -> flow list
(** Flows created by the target's own {!connect_out} calls, oldest
    first — the attack surface of a client target. *)

val listening_ports : t -> (int * proto) list
(** Ports with listening/bound sockets — how the fuzzer discovers the
    attack surface during startup tracking. *)

val open_socket_count : t -> int
val syscall_count : t -> int
