(** Affine-typed opcode specifications (§2.2 "Nyx's Affine Typed Bytecode").

    A spec declares the interactions possible with a target: each {e node
    type} (opcode) may {e borrow} previously produced values, {e consume}
    them (affine use — at most once), produce {e outputs}, and carry raw
    {e data} fields. The fuzzer derives a bytecode format, an interpreter
    and mutators from the spec.

    Node type id 0 is always the reserved [snapshot] opcode the fuzzer
    injects to request an incremental snapshot (§4.3); it takes no
    arguments and carries no data. *)

type edge_ty = { et_id : int; et_name : string }
(** A value type flowing between opcodes (e.g. a connection handle). *)

type data_ty = { dt_id : int; dt_name : string; max_len : int }
(** A raw data field (e.g. packet payload). *)

type node_ty = {
  nt_id : int;
  nt_name : string;
  borrows : edge_ty list;
  consumes : edge_ty list;
  outputs : edge_ty list;
  data : data_ty list;
}

type t

val snapshot_node_id : int
(** Always 0. *)

(** {1 Declaring a spec} *)

type builder

val start : string -> builder
val edge_type : builder -> string -> edge_ty
val data_type : builder -> ?max_len:int -> string -> data_ty
(** [max_len] defaults to 4096. *)

val node_type :
  builder ->
  ?borrows:edge_ty list ->
  ?consumes:edge_ty list ->
  ?outputs:edge_ty list ->
  ?data:data_ty list ->
  string ->
  node_ty

val finalize : builder -> t

(** {1 Queries} *)

val name : t -> string
val node : t -> int -> node_ty
(** @raise Invalid_argument on unknown id. *)

val node_by_name : t -> string -> node_ty
(** @raise Not_found. *)

val nodes : t -> node_ty array
(** All node types, including the snapshot opcode at index 0. *)

val snapshot_node : t -> node_ty
