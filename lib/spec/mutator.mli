(** Packet-aware program mutation — the auto-generated "custom mutators"
    of §2.2.

    Mutations respect opcode structure: payload havoc inside one packet,
    opcode duplication/deletion/swap, splicing suffixes from other corpus
    entries, and appending fresh opcodes. A [frozen] prefix of ops is left
    untouched — this is how fuzzing "only the last 20 packets" behind an
    incremental snapshot works (§3.4): the executor freezes everything up
    to the snapshot opcode. Results are repaired and always validate. *)

val mutate :
  Nyx_sim.Rng.t ->
  ?frozen:int ->
  ?max_ops:int ->
  ?dict:bytes list ->
  ?corpus:Program.t array ->
  Program.t ->
  Program.t
(** [frozen] is a count of leading ops preserved verbatim (default 0).
    [max_ops] caps the result's length (default 24, like AFL's input size
    cap) — without it splice/append growth compounds across generations.
    The snapshot opcode, if present in the input, is preserved only when
    inside the frozen prefix; policies re-inject it afterwards. *)
