type handlers = {
  exec : Spec.node_ty -> int list -> bytes array -> int list;
  snapshot : unit -> unit;
}

type env = {
  mutable values : int array;
  mutable n : int;
  mutable consumed : Bytes.t option;
      (* [Some flags] iff the sanitizer is armed for this environment;
         flags.(i) <> '\000' marks value i as consumed. Lives in the env —
         not the interpreter — so the prefix/suffix split across snapshots
         carries the affine state with [copy_env]. *)
}

exception Violation of { op : int; code : string; detail : string }

let () =
  Printexc.register_printer (function
    | Violation { op; code; detail } ->
      Some (Printf.sprintf "Interp.Violation(op %d, %s: %s)" op code detail)
    | _ -> None)

(* Read NYX_SANITIZE once at load: the interpreter runs millions of ops
   per campaign and must not touch the environment per exec. *)
let sanitize_default =
  match Sys.getenv_opt "NYX_SANITIZE" with
  | Some ("1" | "true" | "yes" | "on") -> true
  | _ -> false

let total_outputs p =
  Array.fold_left
    (fun acc (op : Program.op) ->
      acc + List.length (Spec.node p.Program.spec op.node).Spec.outputs)
    0 p.Program.ops

let initial_env ?(sanitize = sanitize_default) p =
  let cap = max 1 (total_outputs p) in
  {
    values = Array.make cap 0;
    n = 0;
    consumed = (if sanitize then Some (Bytes.make cap '\000') else None);
  }

let copy_env e =
  { values = Array.copy e.values; n = e.n; consumed = Option.map Bytes.copy e.consumed }

let snapshot_op_index (p : Program.t) =
  let rec scan i =
    if i >= Array.length p.ops then None
    else if p.ops.(i).Program.node = Spec.snapshot_node_id then Some i
    else scan (i + 1)
  in
  scan 0

let push env v =
  if env.n >= Array.length env.values then begin
    let cap = max 8 (2 * Array.length env.values) in
    let bigger = Array.make cap 0 in
    Array.blit env.values 0 bigger 0 env.n;
    env.values <- bigger;
    match env.consumed with
    | Some flags ->
      let bigger_flags = Bytes.make cap '\000' in
      Bytes.blit flags 0 bigger_flags 0 env.n;
      env.consumed <- Some bigger_flags
    | None -> ()
  end;
  env.values.(env.n) <- v;
  env.n <- env.n + 1

(* Runtime assertions of the verifier's facts (sanitizer mode). These are
   conditions [Program.validate] + the mutator's invariants should make
   unreachable; a Violation here means a bug upstream, not a bad input. *)
let sanitize_check env i (op : Program.op) (nt : Spec.node_ty) flags =
  let fail code detail = raise (Violation { op = i; code; detail }) in
  if nt.Spec.nt_id = Spec.snapshot_node_id then begin
    if Array.length op.Program.args <> 0 || Array.length op.Program.data <> 0 then
      fail "snapshot-carries-payload" "snapshot opcode with arguments or data"
  end
  else begin
    let n_borrows = List.length nt.Spec.borrows in
    let expected = n_borrows + List.length nt.Spec.consumes in
    if Array.length op.Program.args <> expected then
      fail "bad-arity"
        (Printf.sprintf "%s expects %d argument(s), got %d" nt.Spec.nt_name expected
           (Array.length op.Program.args));
    Array.iteri
      (fun slot idx ->
        if idx < 0 || idx >= env.n then
          fail "dangling-arg"
            (Printf.sprintf "%s argument %d references value %d; %d value(s) exist"
               nt.Spec.nt_name slot idx env.n);
        if Bytes.get flags idx <> '\000' then
          fail "affine-use-after-consume"
            (Printf.sprintf "%s argument %d reuses consumed value %d" nt.Spec.nt_name
               slot idx);
        if slot >= n_borrows then Bytes.set flags idx '\001')
      op.Program.args
  end

let exec_op (p : Program.t) h env i =
  let op = p.ops.(i) in
  let nt = Spec.node p.spec op.Program.node in
  (match env.consumed with
  | Some flags -> sanitize_check env i op nt flags
  | None -> ());
  if nt.Spec.nt_id = Spec.snapshot_node_id then h.snapshot ()
  else begin
    let inputs = Array.to_list (Array.map (fun idx -> env.values.(idx)) op.Program.args) in
    let outputs = h.exec nt inputs op.Program.data in
    if List.length outputs <> List.length nt.Spec.outputs then
      invalid_arg (Printf.sprintf "Interp: handler for %s returned wrong output count"
                     nt.Spec.nt_name);
    List.iter (push env) outputs
  end

let run ?sanitize ?(from = 0) ?until ?env (p : Program.t) h =
  let env = match env with Some e -> e | None -> initial_env ?sanitize p in
  let stop =
    match until with
    | None -> Array.length p.ops
    | Some u -> min u (Array.length p.ops)
  in
  for i = from to stop - 1 do
    exec_op p h env i
  done;
  env

let run_until_snapshot ?sanitize (p : Program.t) h =
  match snapshot_op_index p with
  | None -> None
  | Some snap ->
    let env = initial_env ?sanitize p in
    for i = 0 to snap do
      exec_op p h env i
    done;
    Some (snap + 1, env)
