type handlers = {
  exec : Spec.node_ty -> int list -> bytes array -> int list;
  snapshot : unit -> unit;
}

type env = { mutable values : int array; mutable n : int }

let total_outputs p =
  Array.fold_left
    (fun acc (op : Program.op) ->
      acc + List.length (Spec.node p.Program.spec op.node).Spec.outputs)
    0 p.Program.ops

let initial_env p = { values = Array.make (max 1 (total_outputs p)) 0; n = 0 }

let copy_env e = { values = Array.copy e.values; n = e.n }

let snapshot_op_index (p : Program.t) =
  let rec scan i =
    if i >= Array.length p.ops then None
    else if p.ops.(i).Program.node = Spec.snapshot_node_id then Some i
    else scan (i + 1)
  in
  scan 0

let push env v =
  if env.n >= Array.length env.values then begin
    let bigger = Array.make (max 8 (2 * Array.length env.values)) 0 in
    Array.blit env.values 0 bigger 0 env.n;
    env.values <- bigger
  end;
  env.values.(env.n) <- v;
  env.n <- env.n + 1

let exec_op (p : Program.t) h env i =
  let op = p.ops.(i) in
  let nt = Spec.node p.spec op.Program.node in
  if nt.Spec.nt_id = Spec.snapshot_node_id then h.snapshot ()
  else begin
    let inputs = Array.to_list (Array.map (fun idx -> env.values.(idx)) op.Program.args) in
    let outputs = h.exec nt inputs op.Program.data in
    if List.length outputs <> List.length nt.Spec.outputs then
      invalid_arg (Printf.sprintf "Interp: handler for %s returned wrong output count"
                     nt.Spec.nt_name);
    List.iter (push env) outputs
  end

let run ?(from = 0) ?env (p : Program.t) h =
  let env = match env with Some e -> e | None -> initial_env p in
  for i = from to Array.length p.ops - 1 do
    exec_op p h env i
  done;
  env

let run_until_snapshot (p : Program.t) h =
  match snapshot_op_index p with
  | None -> None
  | Some snap ->
    let env = initial_env p in
    for i = 0 to snap do
      exec_op p h env i
    done;
    Some (snap + 1, env)
