(** The generic raw-packet network specification.

    The paper notes that for network targets the spec is usually trivial
    (§2.2): hook the first connection on a given port and deliver raw
    packets. This module provides that default spec — [connect] produces a
    connection handle, [packet] borrows one and carries a payload,
    [close] consumes the handle — which also covers multi-connection
    targets such as Firefox IPC (Listing 1). *)

type t = {
  spec : Spec.t;
  connect : Spec.node_ty;
  packet : Spec.node_ty;
  close : Spec.node_ty;
  conn : Spec.edge_ty;
  payload : Spec.data_ty;
}

val create : ?max_payload:int -> unit -> t
(** [max_payload] defaults to 4096. *)

val seed_of_packets : t -> bytes list -> Program.t
(** One connection, one [packet] op per payload — the shape produced by
    the PCAP importer for single-connection protocols. *)

val seed_of_connections : t -> bytes list list -> Program.t
(** One connection per outer list element, packets interleaved in round
    robin — multi-connection seeds. *)
