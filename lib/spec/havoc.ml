open Nyx_sim

let interesting_bytes = [| 0; 1; 16; 32; 64; 100; 127; 128; 255 |]

let clamp max_len b = if Bytes.length b > max_len then Bytes.sub b 0 max_len else b

let delete_range rng b =
  let len = Bytes.length b in
  if len < 2 then b
  else begin
    let start = Rng.int rng len in
    let dlen = 1 + Rng.int rng (min 16 (len - start)) in
    Bytes.cat (Bytes.sub b 0 start) (Bytes.sub b (start + dlen) (len - start - dlen))
  end

let duplicate_range rng b =
  let len = Bytes.length b in
  if len = 0 then b
  else begin
    let start = Rng.int rng len in
    let dlen = 1 + Rng.int rng (min 16 (len - start)) in
    let chunk = Bytes.sub b start dlen in
    let at = Rng.int rng (len + 1) in
    Bytes.concat Bytes.empty [ Bytes.sub b 0 at; chunk; Bytes.sub b at (len - at) ]
  end

let insert_random rng b =
  let len = Bytes.length b in
  let at = Rng.int rng (len + 1) in
  let chunk = Rng.bytes rng (1 + Rng.int rng 8) in
  Bytes.concat Bytes.empty [ Bytes.sub b 0 at; chunk; Bytes.sub b at (len - at) ]

let splice_dict rng dict b =
  match dict with
  | [] -> b
  | _ ->
    let token = Rng.choose_list rng dict in
    let len = Bytes.length b in
    let at = Rng.int rng (len + 1) in
    if Rng.bool rng && len > at + Bytes.length token then begin
      (* Overwrite in place. *)
      let out = Bytes.copy b in
      Bytes.blit token 0 out at (Bytes.length token);
      out
    end
    else Bytes.concat Bytes.empty [ Bytes.sub b 0 at; token; Bytes.sub b at (len - at) ]

let in_place_byte_op rng b f =
  let len = Bytes.length b in
  if len = 0 then b
  else begin
    let out = Bytes.copy b in
    let i = Rng.int rng len in
    Bytes.set out i (Char.chr (f (Char.code (Bytes.get out i)) land 0xff));
    out
  end

let mutate rng ?(dict = []) ?(max_len = 4096) ?(rounds = 8) data =
  let n = 1 + Rng.int rng rounds in
  let b = ref (Bytes.copy data) in
  for _ = 1 to n do
    let choice = Rng.int rng 8 in
    b :=
      (match choice with
      | 0 -> in_place_byte_op rng !b (fun c -> c lxor (1 lsl Rng.int rng 8))
      | 1 -> in_place_byte_op rng !b (fun _ -> Rng.choose rng interesting_bytes)
      | 2 -> in_place_byte_op rng !b (fun _ -> Char.code (Rng.byte rng))
      | 3 -> in_place_byte_op rng !b (fun c -> c + Rng.int_in rng (-16) 16)
      | 4 -> delete_range rng !b
      | 5 -> duplicate_range rng !b
      | 6 -> insert_random rng !b
      | 7 -> splice_dict rng dict !b
      | _ -> assert false)
  done;
  clamp max_len !b
