(** AFL-style byte-level havoc mutations.

    Shared by the Nyx-Net mutator (per-packet payload mutation) and the
    baseline fuzzers (AFLNet region mutation, AFLNwe whole-blob
    mutation). *)

val interesting_bytes : int array
(** AFL's interesting 8-bit values. *)

val mutate :
  Nyx_sim.Rng.t -> ?dict:bytes list -> ?max_len:int -> ?rounds:int -> bytes -> bytes
(** [mutate rng data] applies 1–[rounds] (default 8) stacked mutations:
    bit flips, interesting-value overwrites, random byte sets, arithmetic
    nudges, range deletion/duplication, random inserts and dictionary
    token splices. The result never exceeds [max_len] (default 4096) and
    is never physically shared with the input. *)
