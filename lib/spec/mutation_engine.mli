(** Pluggable mutation engines over the affine bytecode IR.

    An engine hosts a set of named {e mutators} — functions from a
    program to a candidate program — behind one deterministic,
    RNG-threaded entry point ({!mutate}). Mutators carry static base
    weights plus an EWMA {e coverage credit} the campaign feeds back
    after every execution ({!credit}): mutators whose candidates keep
    finding new coverage are selected more often, Fuzzilli-style.

    Determinism contract: every draw an engine makes comes from the
    [Rng.t] passed to {!mutate}; an engine holds no hidden randomness
    and no wall-clock state, so equal seeds give equal candidate
    sequences whatever NYX_DOMAINS says. A single-mutator engine makes
    {e no} selection draw — the byte/havoc engine therefore replays the
    exact historical draw sequence of the bare
    {!Nyx_spec.Mutator.mutate} call and keeps golden results
    byte-identical.

    Counter/credit updates ({!credit}) draw nothing and touch no clock:
    they are pure accumulator arithmetic, checkpointed via {!state} so
    kill+resume replays the same effective weights. *)

(** Per-call mutation context, assembled by the campaign each round. *)
type ctx = {
  mx_frozen : int;
      (** ops [0..mx_frozen) are the snapshot prefix and must survive
          mutation verbatim (0 for root-snapshot rounds) *)
  mx_max_ops : int;  (** total op cap, frozen prefix included *)
  mx_dict : bytes list;  (** token dictionary (target + auto-extracted) *)
  mx_corpus : Program.t array;  (** splice donor pool, newest first *)
}

type mutator = {
  m_name : string;  (** stable name: weights, stats and checkpoints key on it *)
  m_base : float;  (** static base weight (> 0) *)
  m_fn : Nyx_sim.Rng.t -> ctx -> Program.t -> Program.t option;
      (** [None] means "no candidate from this angle" (e.g. no
          state-compatible splice point, or the verifier rejected the
          candidate); the engine then falls back to mutator 0, which by
          convention must be total (never [None]). *)
}

type t

val create : name:string -> ?weights:(string * float) list -> mutator list -> t
(** [create ~name ms] builds an engine over [ms] (mutator 0 is the
    total fallback). [weights] overrides base weights by mutator name.
    @raise Invalid_argument on an empty mutator list, a duplicate or
    unknown weight name, or a non-positive weight. *)

val name : t -> string

val mutator_names : t -> string list

val mutate : t -> Nyx_sim.Rng.t -> ctx -> Program.t -> Program.t
(** Pick a mutator (no draw when there is only one) proportionally to
    [base * (0.1 + ewma_credit)], run it, and fall back to mutator 0 on
    [None]. The produced candidate is attributed to the mutator that
    made it for the next {!credit} call. *)

val credit : t -> novel:bool -> unit
(** Coverage news for the last {!mutate} candidate: bumps the producing
    mutator's accept counter and folds [novel] into its EWMA credit
    (alpha = 0.05). Draw-free and clock-free. *)

(** {2 Counters and checkpointing} *)

type stat = {
  s_name : string;
  s_attempts : int;  (** times selected (fallback re-attempts count) *)
  s_rejected : int;  (** times it returned [None] *)
  s_accepts : int;  (** candidates that produced new coverage *)
  s_credit : float;  (** current EWMA coverage credit in [0, 1] *)
}

val stats : t -> stat list
(** In mutator order. *)

type mstate = {
  ms_name : string;
  ms_attempts : int;
  ms_rejected : int;
  ms_accepts : int;
  ms_credit : int64;  (** EWMA credit as [Int64.bits_of_float] *)
}

type state = mstate list

val state : t -> state

val restore_state : t -> state -> unit
(** @raise Invalid_argument when the mutator names do not match the
    engine's (same names, same order) — e.g. a checkpoint from a
    different engine. *)

(** {2 The byte/havoc engine} *)

val havoc_mutator : mutator
(** The existing structural+byte mutator ({!Mutator.mutate}) wrapped as
    a total engine mutator — the conventional fallback at index 0. *)

val havoc : ?weights:(string * float) list -> unit -> t
(** The default engine: [havoc_mutator] alone. Bit-identical draw
    sequence to the historical direct [Mutator.mutate] call. *)
