type op = { node : int; args : int array; data : bytes array }
type t = { spec : Spec.t; ops : op array }

let op_inputs (nt : Spec.node_ty) = nt.Spec.borrows @ nt.Spec.consumes

let validate t =
  let open Spec in
  let exception Bad of string in
  try
    let value_types = ref [] (* newest first: (index, edge_ty, consumed ref) *) in
    let n_values = ref 0 in
    let snapshots = ref 0 in
    Array.iteri
      (fun opi op ->
        let nt =
          try Spec.node t.spec op.node
          with Invalid_argument m -> raise (Bad m)
        in
        if nt.nt_id = Spec.snapshot_node_id then begin
          incr snapshots;
          if !snapshots > 1 then raise (Bad "multiple snapshot opcodes");
          if Array.length op.args <> 0 || Array.length op.data <> 0 then
            raise (Bad "snapshot opcode carries no args or data")
        end;
        let inputs = op_inputs nt in
        if Array.length op.args <> List.length inputs then
          raise (Bad (Printf.sprintf "op %d (%s): wrong arity" opi nt.nt_name));
        List.iteri
          (fun i expected ->
            let idx = op.args.(i) in
            if idx < 0 || idx >= !n_values then
              raise (Bad (Printf.sprintf "op %d (%s): arg %d out of range" opi nt.nt_name i));
            let _, ty, consumed =
              List.find (fun (v, _, _) -> v = idx) !value_types
            in
            if !consumed then
              raise (Bad (Printf.sprintf "op %d (%s): value %d already consumed" opi nt.nt_name idx));
            if ty.et_id <> expected.et_id then
              raise
                (Bad
                   (Printf.sprintf "op %d (%s): arg %d has type %s, expected %s" opi
                      nt.nt_name i ty.et_name expected.et_name)))
          inputs;
        (* Mark consumed inputs. *)
        let n_borrows = List.length nt.borrows in
        List.iteri
          (fun i _ ->
            let idx = op.args.(n_borrows + i) in
            let _, _, consumed = List.find (fun (v, _, _) -> v = idx) !value_types in
            consumed := true)
          nt.consumes;
        if Array.length op.data <> List.length nt.data then
          raise (Bad (Printf.sprintf "op %d (%s): wrong data field count" opi nt.nt_name));
        List.iteri
          (fun i dt ->
            if Bytes.length op.data.(i) > dt.max_len then
              raise
                (Bad (Printf.sprintf "op %d (%s): data field %d too long" opi nt.nt_name i)))
          nt.data;
        List.iter
          (fun ty ->
            value_types := (!n_values, ty, ref false) :: !value_types;
            incr n_values)
          nt.outputs)
      t.ops;
    Ok ()
  with Bad m -> Error m

let packet_count t =
  Array.fold_left
    (fun acc op -> if op.node = Spec.snapshot_node_id then acc else acc + 1)
    0 t.ops

let snapshot_index t =
  let rec scan i packets =
    if i >= Array.length t.ops then None
    else if t.ops.(i).node = Spec.snapshot_node_id then Some packets
    else scan (i + 1) (packets + 1)
  in
  scan 0 0

let strip_snapshots t =
  { t with ops = Array.of_seq (Seq.filter (fun op -> op.node <> Spec.snapshot_node_id)
                                 (Array.to_seq t.ops)) }

let with_snapshot_at t i =
  let t = strip_snapshots t in
  let i = max 0 (min i (Array.length t.ops)) in
  let snap = { node = Spec.snapshot_node_id; args = [||]; data = [||] } in
  let ops =
    Array.concat [ Array.sub t.ops 0 i; [| snap |]; Array.sub t.ops i (Array.length t.ops - i) ]
  in
  { t with ops }

let repair ?rng t =
  let open Spec in
  let available = ref [] (* (value index, edge_ty), newest first, unconsumed *) in
  let n_values = ref 0 in
  let out = ref [] in
  let pick ty =
    let candidates = List.filter (fun (_, et) -> et.et_id = ty.et_id) !available in
    match candidates with
    | [] -> None
    | first :: _ -> (
      match rng with
      | None -> Some (fst first)
      | Some rng -> Some (fst (Nyx_sim.Rng.choose_list rng candidates)))
  in
  Array.iter
    (fun op ->
      match Spec.node t.spec op.node with
      | exception Invalid_argument _ -> () (* unknown opcode: drop *)
      | nt ->
        let inputs = op_inputs nt in
        let n_borrows = List.length nt.borrows in
        (* Try to keep existing bindings when they are still valid, fixing
           only the broken ones. Consumed slots must bind distinct values. *)
        let chosen = ref [] in
        let consumed_here = ref [] in
        let ok =
          List.for_all
            (fun (i, expected) ->
              let is_consume = i >= n_borrows in
              let usable v =
                List.exists (fun (v', et) -> v' = v && et.et_id = expected.et_id) !available
                && not (List.mem v !consumed_here)
              in
              let current = if i < Array.length op.args then op.args.(i) else -1 in
              let binding =
                if usable current then Some current
                else
                  match pick expected with
                  | Some v when usable v -> Some v
                  | _ ->
                    (* The random pick may collide with a value consumed by
                       an earlier slot of this op; fall back to the newest
                       usable one. *)
                    List.find_opt (fun (v, _) -> usable v) !available
                    |> Option.map fst
              in
              match binding with
              | None -> false
              | Some v ->
                chosen := !chosen @ [ v ];
                if is_consume then consumed_here := v :: !consumed_here;
                true)
            (List.mapi (fun i e -> (i, e)) inputs)
        in
        if ok then begin
          let args = Array.of_list !chosen in
          (* Consumed values leave the available pool. *)
          let n_borrows = List.length nt.borrows in
          List.iteri
            (fun i _ ->
              let v = args.(n_borrows + i) in
              available := List.filter (fun (v', _) -> v' <> v) !available)
            nt.consumes;
          let data =
            Array.of_list
              (List.mapi
                 (fun i dt ->
                   let d = if i < Array.length op.data then op.data.(i) else Bytes.empty in
                   if Bytes.length d > dt.max_len then Bytes.sub d 0 dt.max_len else d)
                 nt.data)
          in
          List.iter
            (fun ty ->
              available := (!n_values, ty) :: !available;
              incr n_values)
            nt.outputs;
          out := { node = op.node; args; data } :: !out
        end
        else
          (* Op dropped: still account for the values it would have produced
             so later indices stay consistent? No — later args are rebound
             against the real pool, so nothing else is needed. *)
          ())
    t.ops;
  let repaired = { t with ops = Array.of_list (List.rev !out) } in
  (* Deduplicate snapshot ops: keep the first. *)
  match validate repaired with
  | Ok () -> repaired
  | Error _ ->
    let seen_snapshot = ref false in
    let ops =
      Array.of_seq
        (Seq.filter
           (fun op ->
             if op.node = Spec.snapshot_node_id then
               if !seen_snapshot then false
               else begin
                 seen_snapshot := true;
                 true
               end
             else true)
           (Array.to_seq repaired.ops))
    in
    { repaired with ops }

(* Wire format *)

let magic = "NYXB1"

let serialize t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf magic;
  let add_u32 v =
    Buffer.add_char buf (Char.chr (v land 0xff));
    Buffer.add_char buf (Char.chr ((v lsr 8) land 0xff));
    Buffer.add_char buf (Char.chr ((v lsr 16) land 0xff));
    Buffer.add_char buf (Char.chr ((v lsr 24) land 0xff))
  in
  let add_u16 v =
    Buffer.add_char buf (Char.chr (v land 0xff));
    Buffer.add_char buf (Char.chr ((v lsr 8) land 0xff))
  in
  add_u32 (Array.length t.ops);
  Array.iter
    (fun op ->
      add_u16 op.node;
      Buffer.add_char buf (Char.chr (Array.length op.args land 0xff));
      Array.iter add_u32 op.args;
      Buffer.add_char buf (Char.chr (Array.length op.data land 0xff));
      Array.iter
        (fun d ->
          add_u32 (Bytes.length d);
          Buffer.add_bytes buf d)
        op.data)
    t.ops;
  Buffer.to_bytes buf

let parse spec b =
  let exception Bad of string in
  let pos = ref 0 in
  let len = Bytes.length b in
  let u8 () =
    if !pos >= len then raise (Bad "truncated");
    let v = Char.code (Bytes.get b !pos) in
    incr pos;
    v
  in
  let u16 () = let lo = u8 () in lo lor (u8 () lsl 8) in
  let u32 () =
    let a = u8 () in
    let b' = u8 () in
    let c = u8 () in
    let d = u8 () in
    a lor (b' lsl 8) lor (c lsl 16) lor (d lsl 24)
  in
  try
    if len < String.length magic || Bytes.sub_string b 0 (String.length magic) <> magic
    then raise (Bad "bad magic");
    pos := String.length magic;
    let n_ops = u32 () in
    if n_ops > 1_000_000 then raise (Bad "unreasonable op count");
    let ops =
      Array.init n_ops (fun _ ->
          let node = u16 () in
          let nargs = u8 () in
          let args = Array.init nargs (fun _ -> u32 ()) in
          let ndata = u8 () in
          let data =
            Array.init ndata (fun _ ->
                let dlen = u32 () in
                if !pos + dlen > len then raise (Bad "truncated data");
                let d = Bytes.sub b !pos dlen in
                pos := !pos + dlen;
                d)
          in
          { node; args; data })
    in
    if !pos <> len then raise (Bad "trailing bytes");
    let t = { spec; ops } in
    match validate t with Ok () -> Ok t | Error m -> Error m
  with Bad m -> Error m

let pp ppf t =
  Array.iteri
    (fun i op ->
      let nt = Spec.node t.spec op.node in
      let args = String.concat ", " (List.map string_of_int (Array.to_list op.args)) in
      let data =
        String.concat " "
          (List.map
             (fun d ->
               let s = Bytes.to_string d in
               let printable =
                 String.map (fun c -> if c >= ' ' && c < '\127' then c else '.') s
               in
               Printf.sprintf "%S" (if String.length printable > 40
                                    then String.sub printable 0 40 ^ "..."
                                    else printable))
             (Array.to_list op.data))
      in
      Format.fprintf ppf "%3d: %s(%s) %s@." i nt.Spec.nt_name args data)
    t.ops
