(** Bytecode programs: sequences of opcodes over a {!Spec.t}.

    A program is the fuzzer's test case: the flat serialized form is what
    lives in the corpus, and the structured form is what the interpreter
    executes and the mutators edit. Executing ops produces a global
    sequence of values; argument slots refer to earlier values by index.
    The [snapshot] opcode (node 0) may appear at most once and delimits
    the prefix executed before the incremental snapshot is taken. *)

type op = { node : int; args : int array; data : bytes array }

type t = { spec : Spec.t; ops : op array }

val validate : t -> (unit, string) result
(** Structural well-formedness: known nodes, arity, argument indices in
    range and type-correct, affine use (a consumed value is never used
    again), data lengths within bounds, at most one snapshot opcode. *)

val packet_count : t -> int
(** Number of ops excluding snapshot opcodes — the "input length" used by
    the snapshot placement policies. *)

val snapshot_index : t -> int option
(** Number of non-snapshot ops preceding the snapshot opcode, if present. *)

val with_snapshot_at : t -> int -> t
(** [with_snapshot_at p i] strips existing snapshot ops and inserts one
    after the first [i] packets. [i = 0] yields a leading snapshot;
    [i >= packet_count p] places it after the last packet (clamped). *)

val strip_snapshots : t -> t

val repair : ?rng:Nyx_sim.Rng.t -> t -> t
(** Rebind dangling or type-incorrect argument indices to available values
    of the right type (most recent by default, random with [rng]) and drop
    ops whose inputs cannot be satisfied; clamp oversized data. The result
    always passes {!validate}. *)

(** {1 Wire format} *)

val serialize : t -> bytes
val parse : Spec.t -> bytes -> (t, string) result
(** Parses and validates. *)

val pp : Format.formatter -> t -> unit
(** Human-readable listing, e.g. for crash reports. *)
