let is_token_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '-' || c = '_' || c = '/' || c = '.'

let words_of_payload payload =
  let s = Bytes.to_string payload in
  let out = ref [] in
  let start = ref (-1) in
  let flush i =
    if !start >= 0 then begin
      let len = i - !start in
      if len >= 3 && len <= 16 then out := String.sub s !start len :: !out;
      start := -1
    end
  in
  String.iteri (fun i c -> if is_token_char c then (if !start < 0 then start := i) else flush i) s;
  flush (String.length s);
  !out

let extract ?(max_tokens = 64) programs =
  let freq = Hashtbl.create 64 in
  List.iter
    (fun (p : Program.t) ->
      Array.iter
        (fun (op : Program.op) ->
          Array.iter
            (fun payload ->
              List.iter
                (fun w ->
                  Hashtbl.replace freq w
                    (1 + Option.value ~default:0 (Hashtbl.find_opt freq w)))
                (words_of_payload payload))
            op.Program.data)
        p.Program.ops)
    programs;
  Hashtbl.fold (fun w n acc -> (w, n) :: acc) freq []
  |> List.sort (fun (_, a) (_, b) -> compare b a)
  |> List.filteri (fun i _ -> i < max_tokens)
  |> List.map (fun (w, _) -> Bytes.of_string w)

let merge a b =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun t ->
      if Hashtbl.mem seen t then false
      else begin
        Hashtbl.replace seen t ();
        true
      end)
    (a @ b)
