(* Pluggable mutation engines: a weighted set of named mutators with
   EWMA coverage-credit assignment. See the .mli for the determinism
   contract; the load-bearing detail is that a single-mutator engine
   makes no selection draw, so the default havoc engine replays the
   historical Mutator.mutate draw sequence bit-for-bit. *)

open Nyx_sim

type ctx = {
  mx_frozen : int;
  mx_max_ops : int;
  mx_dict : bytes list;
  mx_corpus : Program.t array;
}

type mutator = {
  m_name : string;
  m_base : float;
  m_fn : Rng.t -> ctx -> Program.t -> Program.t option;
}

type t = {
  e_name : string;
  mutators : mutator array;
  weight : float array;  (* base weight after CLI/config overrides *)
  credit_ : float array;  (* EWMA coverage credit, in [0, 1] *)
  attempts : int array;
  rejected : int array;
  accepts : int array;
  mutable last : int;  (* mutator that produced the last candidate; -1 none *)
}

(* Selection weight floor: a mutator whose credit decays to 0 keeps
   [credit_floor * base] of selection mass, so it can recover when the
   campaign enters territory it is good at (no starvation). *)
let credit_floor = 0.1
let ewma_alpha = 0.05

let create ~name ?(weights = []) mutators =
  if mutators = [] then invalid_arg "Mutation_engine.create: no mutators";
  let mutators = Array.of_list mutators in
  let n = Array.length mutators in
  let names = Array.map (fun m -> m.m_name) mutators in
  Array.iteri
    (fun i nm ->
      for j = i + 1 to n - 1 do
        if names.(j) = nm then
          invalid_arg
            (Printf.sprintf "Mutation_engine.create: duplicate mutator %S" nm)
      done)
    names;
  let weight = Array.map (fun m -> m.m_base) mutators in
  let overridden = Hashtbl.create 4 in
  List.iter
    (fun (nm, w) ->
      if Hashtbl.mem overridden nm then
        invalid_arg
          (Printf.sprintf "Mutation_engine.create: duplicate weight for %S" nm);
      Hashtbl.replace overridden nm ();
      if w <= 0.0 || Float.is_nan w then
        invalid_arg
          (Printf.sprintf "Mutation_engine.create: weight for %S must be > 0" nm);
      match Array.find_index (fun n' -> n' = nm) names with
      | Some i -> weight.(i) <- w
      | None ->
        invalid_arg
          (Printf.sprintf "Mutation_engine.create: unknown mutator %S (have: %s)"
             nm
             (String.concat ", " (Array.to_list names))))
    weights;
  {
    e_name = name;
    mutators;
    weight;
    credit_ = Array.make n 0.0;
    attempts = Array.make n 0;
    rejected = Array.make n 0;
    accepts = Array.make n 0;
    last = -1;
  }

let name t = t.e_name
let mutator_names t = Array.to_list (Array.map (fun m -> m.m_name) t.mutators)

let apply t idx rng ctx p =
  t.attempts.(idx) <- t.attempts.(idx) + 1;
  t.last <- idx;
  t.mutators.(idx).m_fn rng ctx p

let mutate t rng ctx p =
  let n = Array.length t.mutators in
  let idx =
    if n = 1 then 0
    else
      Rng.weighted rng
        (List.init n (fun i ->
             (i, t.weight.(i) *. (credit_floor +. t.credit_.(i)))))
  in
  match apply t idx rng ctx p with
  | Some q -> q
  | None -> (
    t.rejected.(idx) <- t.rejected.(idx) + 1;
    (* Mutator 0 is total by convention; the double fallback to the
       input program is pure belt-and-braces. *)
    match if idx = 0 then None else apply t 0 rng ctx p with
    | Some q -> q
    | None -> p)

let credit t ~novel =
  if t.last >= 0 then begin
    if novel then t.accepts.(t.last) <- t.accepts.(t.last) + 1;
    t.credit_.(t.last) <-
      ((1.0 -. ewma_alpha) *. t.credit_.(t.last))
      +. (if novel then ewma_alpha else 0.0)
  end

(* ------------------------------------------------------------------ *)
(* Counters and checkpointing.                                         *)

type stat = {
  s_name : string;
  s_attempts : int;
  s_rejected : int;
  s_accepts : int;
  s_credit : float;
}

let stats t =
  List.init (Array.length t.mutators) (fun i ->
      {
        s_name = t.mutators.(i).m_name;
        s_attempts = t.attempts.(i);
        s_rejected = t.rejected.(i);
        s_accepts = t.accepts.(i);
        s_credit = t.credit_.(i);
      })

type mstate = {
  ms_name : string;
  ms_attempts : int;
  ms_rejected : int;
  ms_accepts : int;
  ms_credit : int64;
}

type state = mstate list

let state t =
  List.init (Array.length t.mutators) (fun i ->
      {
        ms_name = t.mutators.(i).m_name;
        ms_attempts = t.attempts.(i);
        ms_rejected = t.rejected.(i);
        ms_accepts = t.accepts.(i);
        ms_credit = Int64.bits_of_float t.credit_.(i);
      })

let restore_state t s =
  if List.length s <> Array.length t.mutators then
    invalid_arg "Mutation_engine.restore_state: mutator count mismatch";
  List.iteri
    (fun i ms ->
      if ms.ms_name <> t.mutators.(i).m_name then
        invalid_arg
          (Printf.sprintf
             "Mutation_engine.restore_state: mutator %d is %S, checkpoint says %S"
             i t.mutators.(i).m_name ms.ms_name);
      t.attempts.(i) <- ms.ms_attempts;
      t.rejected.(i) <- ms.ms_rejected;
      t.accepts.(i) <- ms.ms_accepts;
      t.credit_.(i) <- Int64.float_of_bits ms.ms_credit)
    s

(* ------------------------------------------------------------------ *)
(* The byte/havoc engine.                                              *)

let havoc_mutator =
  {
    m_name = "havoc";
    m_base = 1.0;
    m_fn =
      (fun rng ctx p ->
        Some
          (Mutator.mutate rng ~frozen:ctx.mx_frozen ~max_ops:ctx.mx_max_ops
             ~dict:ctx.mx_dict ~corpus:ctx.mx_corpus p));
  }

let havoc ?weights () = create ~name:"havoc" ?weights [ havoc_mutator ]
