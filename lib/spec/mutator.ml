open Nyx_sim

(* Pick a node type able to carry data (for fresh-op append); falls back to
   any non-snapshot node. *)
let random_node rng spec =
  let all = Spec.nodes spec in
  let candidates =
    Array.of_seq
      (Seq.filter (fun (nt : Spec.node_ty) -> nt.Spec.nt_id <> Spec.snapshot_node_id)
         (Array.to_seq all))
  in
  if Array.length candidates = 0 then None else Some (Rng.choose rng candidates)

let fresh_op rng spec =
  match random_node rng spec with
  | None -> None
  | Some nt ->
    let data =
      Array.of_list
        (List.map
           (fun (dt : Spec.data_ty) ->
             Rng.bytes rng (Rng.int rng (min 64 (dt.Spec.max_len + 1))))
           nt.Spec.data)
    in
    (* Args are placeholders; repair binds them to real values. *)
    let nargs = List.length nt.Spec.borrows + List.length nt.Spec.consumes in
    Some { Program.node = nt.Spec.nt_id; args = Array.make nargs 0; data }

let havoc_op rng dict (op : Program.op) spec =
  let nt = Spec.node spec op.Program.node in
  if Array.length op.Program.data = 0 then op
  else begin
    let i = Rng.int rng (Array.length op.Program.data) in
    let dt = List.nth nt.Spec.data i in
    let data = Array.copy op.Program.data in
    data.(i) <- Havoc.mutate rng ~dict ~max_len:dt.Spec.max_len data.(i);
    { op with Program.data }
  end

let mutate rng ?(frozen = 0) ?(max_ops = 24) ?(dict = []) ?(corpus = [||]) (p : Program.t) =
  let frozen = min frozen (Array.length p.Program.ops) in
  let prefix = Array.sub p.Program.ops 0 frozen in
  let suffix = ref (Array.to_list (Array.sub p.Program.ops frozen
                                     (Array.length p.Program.ops - frozen))) in
  (* Drop stray snapshot ops from the mutable region; policies re-inject. *)
  suffix := List.filter (fun op -> op.Program.node <> Spec.snapshot_node_id) !suffix;
  let n_rounds = 1 + Rng.int rng 4 in
  for _ = 1 to n_rounds do
    let ops = Array.of_list !suffix in
    let n = Array.length ops in
    let choice = Rng.weighted rng
        [ (`Havoc, 5.0); (`Dup, 1.0); (`Del, 1.0); (`Swap, 1.0); (`Splice, 1.5); (`Append, 1.0) ]
    in
    suffix :=
      (match choice with
      | `Havoc when n > 0 ->
        let i = Rng.int rng n in
        Array.to_list (Array.mapi (fun j op ->
            if j = i then havoc_op rng dict op p.Program.spec else op) ops)
      | `Dup when n > 0 ->
        let i = Rng.int rng n in
        let rec insert j = function
          | [] -> []
          | op :: rest -> if j = i then op :: op :: rest else op :: insert (j + 1) rest
        in
        insert 0 !suffix
      | `Del when n > 1 ->
        let i = Rng.int rng n in
        List.filteri (fun j _ -> j <> i) !suffix
      | `Swap when n > 1 ->
        let i = Rng.int rng (n - 1) in
        let a = ops.(i) in
        ops.(i) <- ops.(i + 1);
        ops.(i + 1) <- a;
        Array.to_list ops
      | `Splice when Array.length corpus > 0 ->
        let donor = Rng.choose rng corpus in
        let donor_ops =
          Array.to_list donor.Program.ops
          |> List.filter (fun op -> op.Program.node <> Spec.snapshot_node_id)
        in
        let keep = if n = 0 then 0 else Rng.int rng (n + 1) in
        let dlen = List.length donor_ops in
        let from = if dlen = 0 then 0 else Rng.int rng dlen in
        List.filteri (fun j _ -> j < keep) !suffix
        @ List.filteri (fun j _ -> j >= from) donor_ops
      | `Append -> (
        match fresh_op rng p.Program.spec with
        | Some op -> !suffix @ [ op ]
        | None -> !suffix)
      | _ -> !suffix)
  done;
  (* Cap total length: keep the frozen prefix, trim the suffix tail. *)
  let room = max 0 (max_ops - Array.length prefix) in
  if List.length !suffix > room then
    suffix := List.filteri (fun i _ -> i < room) !suffix;
  let candidate =
    { p with Program.ops = Array.append prefix (Array.of_list !suffix) }
  in
  Program.repair ~rng candidate
