type value = { idx : int; ty : Spec.edge_ty; mutable consumed : bool }

type t = {
  spec : Spec.t;
  mutable rev_ops : Program.op list;
  mutable n_values : int;
}

let create spec = { spec; rev_ops = []; n_values = 0 }

let call t node_name ?(data = []) inputs =
  let nt = Spec.node_by_name t.spec node_name in
  let expected = nt.Spec.borrows @ nt.Spec.consumes in
  if List.length inputs <> List.length expected then
    invalid_arg (Printf.sprintf "Builder.call %s: wrong arity" node_name);
  List.iter2
    (fun v e ->
      if v.consumed then
        invalid_arg (Printf.sprintf "Builder.call %s: value already consumed" node_name);
      if v.ty.Spec.et_id <> e.Spec.et_id then
        invalid_arg
          (Printf.sprintf "Builder.call %s: expected %s, got %s" node_name
             e.Spec.et_name v.ty.Spec.et_name))
    inputs expected;
  let n_borrows = List.length nt.Spec.borrows in
  List.iteri (fun i v -> if i >= n_borrows then v.consumed <- true) inputs;
  let data_fields =
    List.mapi
      (fun i (dt : Spec.data_ty) ->
        let d = match List.nth_opt data i with Some d -> d | None -> Bytes.empty in
        if Bytes.length d > dt.Spec.max_len then
          invalid_arg (Printf.sprintf "Builder.call %s: data field %d too long" node_name i);
        Bytes.copy d)
      nt.Spec.data
  in
  let op =
    {
      Program.node = nt.Spec.nt_id;
      args = Array.of_list (List.map (fun v -> v.idx) inputs);
      data = Array.of_list data_fields;
    }
  in
  t.rev_ops <- op :: t.rev_ops;
  let outputs =
    List.map
      (fun ty ->
        let v = { idx = t.n_values; ty; consumed = false } in
        t.n_values <- t.n_values + 1;
        v)
      nt.Spec.outputs
  in
  outputs

let snapshot t =
  t.rev_ops <- { Program.node = Spec.snapshot_node_id; args = [||]; data = [||] } :: t.rev_ops

let build t =
  let p = { Program.spec = t.spec; ops = Array.of_list (List.rev t.rev_ops) } in
  match Program.validate p with
  | Ok () -> p
  | Error m -> invalid_arg ("Builder.build: internal error: " ^ m)
