(** Seed construction (§4.4).

    The OCaml analogue of the paper's Python library: calling a node-type
    function logs the invocation, returns tracking values for its outputs,
    and [build] serializes the logged call graph into a flat bytecode
    program. Used by the PCAP importer and by hand-written seeds
    (Listing 2 of the paper). *)

type t
type value
(** A tracked value produced by an earlier call. *)

val create : Spec.t -> t

val call : t -> string -> ?data:bytes list -> value list -> value list
(** [call b node_name ~data inputs] logs one invocation. Inputs are given
    in borrow-then-consume order; missing data fields default to empty.
    @raise Not_found on an unknown node name.
    @raise Invalid_argument on arity/type errors or reuse of a consumed
    value. *)

val snapshot : t -> unit
(** Log an explicit snapshot opcode. *)

val build : t -> Program.t
(** The resulting program always passes {!Program.validate}. *)
