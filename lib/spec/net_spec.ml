type t = {
  spec : Spec.t;
  connect : Spec.node_ty;
  packet : Spec.node_ty;
  close : Spec.node_ty;
  conn : Spec.edge_ty;
  payload : Spec.data_ty;
}

let create ?(max_payload = 4096) () =
  let b = Spec.start "raw-network" in
  let conn = Spec.edge_type b "connection" in
  let payload = Spec.data_type b ~max_len:max_payload "payload" in
  let connect = Spec.node_type b ~outputs:[ conn ] "connect" in
  let packet = Spec.node_type b ~borrows:[ conn ] ~data:[ payload ] "packet" in
  let close = Spec.node_type b ~consumes:[ conn ] "close" in
  { spec = Spec.finalize b; connect; packet; close; conn; payload }

let seed_of_packets t payloads =
  let b = Builder.create t.spec in
  match Builder.call b "connect" [] with
  | [ con ] ->
    List.iter (fun p -> ignore (Builder.call b "packet" ~data:[ p ] [ con ])) payloads;
    Builder.build b
  | _ -> assert false

let seed_of_connections t conns =
  let b = Builder.create t.spec in
  let handles =
    List.map
      (fun packets ->
        match Builder.call b "connect" [] with
        | [ con ] -> (con, ref packets)
        | _ -> assert false)
      conns
  in
  (* Round-robin interleave so the seed exercises concurrent flows. *)
  let remaining = ref (List.length (List.concat conns)) in
  while !remaining > 0 do
    List.iter
      (fun (con, packets) ->
        match !packets with
        | [] -> ()
        | p :: rest ->
          ignore (Builder.call b "packet" ~data:[ p ] [ con ]);
          packets := rest;
          decr remaining)
      handles
  done;
  Builder.build b
