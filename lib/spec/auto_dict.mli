(** Automatic dictionary extraction from seed inputs.

    AFL-style auto-dictionaries: protocol keywords are usually visible in
    seed traffic, so tokenizing the seed payloads yields most of what a
    hand-written dictionary would contain. Campaigns merge this with the
    target's shipped dictionary. *)

val extract : ?max_tokens:int -> Program.t list -> bytes list
(** Printable words (3–16 chars, split at non-token bytes) from all
    payload fields, deduplicated, most frequent first, capped at
    [max_tokens] (default 64). *)

val merge : bytes list -> bytes list -> bytes list
(** Union, first list's order first, deduplicated. *)
