(** The bytecode interpreter — the auto-generated "custom VM" of §2.2.

    Runs a program against the executor's opcode handlers. Handler-domain
    values (connection flow ids, etc.) are plain integers stored in an
    environment indexed by the program's value numbering, so execution can
    be split at the snapshot opcode: run the prefix, let the engine take an
    incremental snapshot, and later re-run only the suffix against the
    captured environment.

    {2 Sanitizer mode}

    With [NYX_SANITIZE=1] in the environment (or [~sanitize:true]), the
    interpreter asserts at runtime the facts the static verifier
    ({!Nyx_analysis.Verifier}) proves offline: argument arity, value
    indices in bounds, and affine discipline (no use after consume). A
    failure raises {!Violation} — it means a bug in the mutator or engine,
    not a bad fuzz input. Off (the default) the only cost is one branch
    per op, and campaign results are bit-identical to builds without the
    sanitizer. The flag is read once at module load, never per exec. *)

type handlers = {
  exec : Spec.node_ty -> int list -> bytes array -> int list;
      (** [exec node inputs data] performs one interaction and returns the
          handler-domain values for the node's outputs. *)
  snapshot : unit -> unit;
      (** Invoked for the snapshot opcode (the agent's hypercall). *)
}

type env
(** Value environment: handler values produced so far. When the sanitizer
    is armed it also carries the consumed-flags, so the affine state
    survives the prefix/suffix split across {!copy_env}. *)

exception Violation of { op : int; code : string; detail : string }
(** Sanitizer assertion failure at op index [op]. Codes mirror the static
    verifier's: ["bad-arity"], ["dangling-arg"],
    ["affine-use-after-consume"], ["snapshot-carries-payload"]. *)

val sanitize_default : bool
(** Whether [NYX_SANITIZE] armed the sanitizer for this process. *)

val initial_env : ?sanitize:bool -> Program.t -> env
(** Fresh environment; [sanitize] defaults to {!sanitize_default}. *)

val copy_env : env -> env

val snapshot_op_index : Program.t -> int option
(** Index in [ops] of the snapshot opcode. *)

val run :
  ?sanitize:bool -> ?from:int -> ?until:int -> ?env:env -> Program.t ->
  handlers -> env
(** Execute ops starting at index [from] (default 0), stopping before
    index [until] (default — and clamped to — the program length), in the
    given environment (default fresh). Returns the final environment.
    Exceptions from handlers (crashes, protocol errors) propagate.
    [sanitize] only applies when no [env] is passed — an explicit
    environment keeps the mode it was created with. [until] is how the
    dynamic placement policy's boundary probe single-steps a program,
    hashing the target's protocol state between ops. *)

val run_until_snapshot :
  ?sanitize:bool -> Program.t -> handlers -> (int * env) option
(** Execute the prefix up to and including the snapshot opcode; returns
    the index of the first suffix op and the environment at the snapshot
    point, or [None] when the program has no snapshot opcode (in which
    case nothing is executed). *)
