(** The bytecode interpreter — the auto-generated "custom VM" of §2.2.

    Runs a program against the executor's opcode handlers. Handler-domain
    values (connection flow ids, etc.) are plain integers stored in an
    environment indexed by the program's value numbering, so execution can
    be split at the snapshot opcode: run the prefix, let the engine take an
    incremental snapshot, and later re-run only the suffix against the
    captured environment. *)

type handlers = {
  exec : Spec.node_ty -> int list -> bytes array -> int list;
      (** [exec node inputs data] performs one interaction and returns the
          handler-domain values for the node's outputs. *)
  snapshot : unit -> unit;
      (** Invoked for the snapshot opcode (the agent's hypercall). *)
}

type env
(** Value environment: handler values produced so far. *)

val initial_env : Program.t -> env
val copy_env : env -> env

val snapshot_op_index : Program.t -> int option
(** Index in [ops] of the snapshot opcode. *)

val run : ?from:int -> ?env:env -> Program.t -> handlers -> env
(** Execute ops starting at index [from] (default 0) in the given
    environment (default fresh). Returns the final environment. Exceptions
    from handlers (crashes, protocol errors) propagate. *)

val run_until_snapshot : Program.t -> handlers -> (int * env) option
(** Execute the prefix up to and including the snapshot opcode; returns
    the index of the first suffix op and the environment at the snapshot
    point, or [None] when the program has no snapshot opcode (in which
    case nothing is executed). *)
