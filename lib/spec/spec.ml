type edge_ty = { et_id : int; et_name : string }
type data_ty = { dt_id : int; dt_name : string; max_len : int }

type node_ty = {
  nt_id : int;
  nt_name : string;
  borrows : edge_ty list;
  consumes : edge_ty list;
  outputs : edge_ty list;
  data : data_ty list;
}

type t = { name : string; node_arr : node_ty array }

let snapshot_node_id = 0

type builder = {
  b_name : string;
  mutable rev_nodes : node_ty list;
  mutable next_edge : int;
  mutable next_data : int;
  mutable next_node : int;
}

let snapshot_ty =
  { nt_id = 0; nt_name = "snapshot"; borrows = []; consumes = []; outputs = []; data = [] }

let start name =
  { b_name = name; rev_nodes = [ snapshot_ty ]; next_edge = 0; next_data = 0; next_node = 1 }

let edge_type b et_name =
  let e = { et_id = b.next_edge; et_name } in
  b.next_edge <- b.next_edge + 1;
  e

let data_type b ?(max_len = 4096) dt_name =
  let d = { dt_id = b.next_data; dt_name; max_len } in
  b.next_data <- b.next_data + 1;
  d

let node_type b ?(borrows = []) ?(consumes = []) ?(outputs = []) ?(data = []) nt_name =
  let n = { nt_id = b.next_node; nt_name; borrows; consumes; outputs; data } in
  b.next_node <- b.next_node + 1;
  b.rev_nodes <- n :: b.rev_nodes;
  n

let finalize b = { name = b.b_name; node_arr = Array.of_list (List.rev b.rev_nodes) }

let name t = t.name

let node t id =
  if id < 0 || id >= Array.length t.node_arr then
    invalid_arg (Printf.sprintf "Spec.node: unknown node type %d" id);
  t.node_arr.(id)

let node_by_name t n =
  match Array.find_opt (fun nt -> nt.nt_name = n) t.node_arr with
  | Some nt -> nt
  | None -> raise Not_found

let nodes t = Array.copy t.node_arr
let snapshot_node t = t.node_arr.(0)
