let serialized_size p = Bytes.length (Nyx_spec.Program.serialize p)

let keep_crash_kind kind (r : Report.exec_result) =
  match r.Report.status with
  | Report.Crash { kind = k; _ } -> k = kind
  | Report.Pass | Report.Hang -> false

(* Remove the op range [start, start+len) and repair references. *)
let drop_ops p start len =
  let ops = p.Nyx_spec.Program.ops in
  let kept =
    Array.of_list
      (List.filteri
         (fun i _ -> i < start || i >= start + len)
         (Array.to_list ops))
  in
  Nyx_spec.Program.repair { p with Nyx_spec.Program.ops = kept }

let drop_payload_chunk p op_idx chunk_start chunk_len =
  let ops = Array.copy p.Nyx_spec.Program.ops in
  let op = ops.(op_idx) in
  if Array.length op.Nyx_spec.Program.data = 0 then None
  else begin
    let payload = op.Nyx_spec.Program.data.(0) in
    let len = Bytes.length payload in
    if chunk_start >= len then None
    else begin
      let chunk_len = min chunk_len (len - chunk_start) in
      let shrunk =
        Bytes.cat
          (Bytes.sub payload 0 chunk_start)
          (Bytes.sub payload (chunk_start + chunk_len) (len - chunk_start - chunk_len))
      in
      let data = Array.copy op.Nyx_spec.Program.data in
      data.(0) <- shrunk;
      ops.(op_idx) <- { op with Nyx_spec.Program.data };
      Some { p with Nyx_spec.Program.ops = ops }
    end
  end

let canonicalize_byte p op_idx byte_idx =
  let ops = Array.copy p.Nyx_spec.Program.ops in
  let op = ops.(op_idx) in
  if Array.length op.Nyx_spec.Program.data = 0 then None
  else begin
    let payload = op.Nyx_spec.Program.data.(0) in
    if byte_idx >= Bytes.length payload then None
    else if Bytes.get payload byte_idx = 'a' then None
    else begin
      let b = Bytes.copy payload in
      Bytes.set b byte_idx 'a';
      let data = Array.copy op.Nyx_spec.Program.data in
      data.(0) <- b;
      ops.(op_idx) <- { op with Nyx_spec.Program.data };
      Some { p with Nyx_spec.Program.ops = ops }
    end
  end

let minimize ~run ~keep program =
  if not (keep (run program)) then
    invalid_arg "Minimizer.minimize: program does not satisfy the predicate";
  let execs = ref 1 in
  let try_candidate current candidate =
    if candidate.Nyx_spec.Program.ops = current.Nyx_spec.Program.ops then None
    else begin
      incr execs;
      if keep (run candidate) then Some candidate else None
    end
  in
  (* Phase 1: drop op ranges, halving chunk sizes. *)
  let current = ref (Nyx_spec.Program.strip_snapshots program) in
  let chunk = ref (max 1 (Array.length !current.Nyx_spec.Program.ops / 2)) in
  while !chunk >= 1 do
    let start = ref 0 in
    while !start < Array.length !current.Nyx_spec.Program.ops do
      (match try_candidate !current (drop_ops !current !start !chunk) with
      | Some smaller -> current := smaller (* retry same offset *)
      | None -> start := !start + !chunk)
    done;
    if !chunk = 1 then chunk := 0 else chunk := !chunk / 2
  done;
  (* Phase 2: shrink payloads, halving chunk sizes per op. *)
  Array.iteri
    (fun op_idx _ ->
      let max_payload () =
        let op = !current.Nyx_spec.Program.ops.(op_idx) in
        if Array.length op.Nyx_spec.Program.data = 0 then 0
        else Bytes.length op.Nyx_spec.Program.data.(0)
      in
      let chunk = ref (max 1 (max_payload () / 2)) in
      while !chunk >= 1 do
        let pos = ref 0 in
        while !pos < max_payload () do
          (match drop_payload_chunk !current op_idx !pos !chunk with
          | None -> pos := max_payload ()
          | Some candidate -> (
            incr execs;
            if keep (run candidate) then current := candidate else pos := !pos + !chunk))
        done;
        if !chunk = 1 then chunk := 0 else chunk := !chunk / 2
      done)
    !current.Nyx_spec.Program.ops;
  (* Phase 3: canonicalize payload bytes to 'a' where the outcome allows. *)
  Array.iteri
    (fun op_idx op ->
      if Array.length op.Nyx_spec.Program.data > 0 then
        for byte_idx = 0 to Bytes.length op.Nyx_spec.Program.data.(0) - 1 do
          match canonicalize_byte !current op_idx byte_idx with
          | None -> ()
          | Some candidate ->
            incr execs;
            if keep (run candidate) then current := candidate
        done)
    !current.Nyx_spec.Program.ops;
  (!current, !execs)
