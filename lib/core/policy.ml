type kind = None_ | Balanced | Aggressive | Dynamic

(* Per-entry adaptive-placement state (kind = Dynamic). Candidate indices
   come from one protocol-state boundary probe per entry; the cost model
   then keeps running estimates of the quantities that decide where the
   incremental snapshot amortizes best. All fields are integers measured
   on the virtual clock, so every decision is deterministic. *)
type dyn = {
  mutable db_cands : int array;
      (* candidate snapshot indices, ascending, interior (1..packets-1);
         [packets-1] alone when the probe found no boundary *)
  mutable db_stale : int array;
      (* parallel to db_cands: consecutive no-news reuse rounds while the
         snapshot sat at that index *)
  mutable db_root_stale : int;
  mutable db_genuine : int; (* boundaries the probe actually found *)
  mutable db_probed : bool;
  mutable db_full_ns : int; (* EWMA of a full (root) execution *)
  mutable db_setup_ns : int; (* last measured prefix-replay + create ns *)
  mutable db_round_ns : int; (* last measured per-suffix-exec ns *)
  mutable db_pages : int; (* dirty pages copied by the last create *)
  mutable db_meas_idx : int; (* index db_setup_ns was measured at; 0 = none *)
  mutable db_cur : int; (* current placement: -1 unset, 0 root, else index *)
  mutable db_cooldown : int; (* reuse rounds before the next move is allowed *)
  mutable db_moves : int;
}

type t = {
  kind : kind;
  rng : Nyx_sim.Rng.t;
  cursor : (int, int) Hashtbl.t; (* aggressive: input id -> snapshot index *)
  dyn : (int, dyn) Hashtbl.t; (* dynamic: input id -> adaptive state *)
  mutable probes : int;
  mutable probe_hashes : int; (* state hashes taken across all probes *)
  mutable probe_skipped : int; (* hashes the static prior saved *)
  mutable last_move : (int * int * int) option; (* input, from, to *)
}

let name = function
  | None_ -> "nyx-net-none"
  | Balanced -> "nyx-net-balanced"
  | Aggressive -> "nyx-net-aggressive"
  | Dynamic -> "nyx-net-dynamic"

let of_name = function
  | "none" | "nyx-net-none" -> Ok None_
  | "balanced" | "nyx-net-balanced" -> Ok Balanced
  | "aggressive" | "nyx-net-aggressive" -> Ok Aggressive
  | "dynamic" | "nyx-net-dynamic" -> Ok Dynamic
  | s -> Error (Printf.sprintf "unknown policy %S (none|balanced|aggressive|dynamic)" s)

let reuse_count = 50

let create kind rng =
  { kind; rng; cursor = Hashtbl.create 64; dyn = Hashtbl.create 64; probes = 0;
    probe_hashes = 0; probe_skipped = 0; last_move = None }

let kind t = t.kind
let is_dynamic t = t.kind = Dynamic

let min_packets_for_snapshot = 5

(* ------------------------------------------------------------------ *)
(* Dynamic: probe lifecycle and measurements.                          *)

let fresh_dyn ~full_ns =
  {
    db_cands = [||];
    db_stale = [||];
    db_root_stale = 0;
    db_genuine = 0;
    db_probed = false;
    db_full_ns = max 1 full_ns;
    db_setup_ns = 0;
    db_round_ns = 0;
    db_pages = 0;
    db_meas_idx = 0;
    db_cur = -1;
    db_cooldown = 0;
    db_moves = 0;
  }

let dyn_entry t ~input_id ~full_ns =
  match Hashtbl.find_opt t.dyn input_id with
  | Some d -> d
  | None ->
    let d = fresh_dyn ~full_ns in
    Hashtbl.replace t.dyn input_id d;
    d

let prepare_dynamic t ~input_id ~packets ~full_ns =
  if t.kind <> Dynamic || packets < min_packets_for_snapshot then `Ready
  else
    let d = dyn_entry t ~input_id ~full_ns in
    if d.db_probed then `Ready else `Probe

let set_boundaries ?(hashed = 0) ?(skipped = 0) t ~input_id ~packets ~boundaries =
  match Hashtbl.find_opt t.dyn input_id with
  | None -> ()
  | Some d ->
    t.probe_hashes <- t.probe_hashes + hashed;
    t.probe_skipped <- t.probe_skipped + skipped;
    let interior = List.filter (fun i -> i >= 1 && i <= packets - 1) boundaries in
    let cands =
      match interior with [] -> [| packets - 1 |] | l -> Array.of_list l
    in
    Array.sort compare cands;
    d.db_cands <- cands;
    d.db_stale <- Array.make (Array.length cands) 0;
    d.db_genuine <- List.length interior;
    d.db_probed <- true;
    t.probes <- t.probes + 1

let observe_full t ~input_id ~ns =
  match Hashtbl.find_opt t.dyn input_id with
  | None -> ()
  | Some d -> d.db_full_ns <- max 1 (((3 * d.db_full_ns) + ns) / 4)

let observe_session t ~input_id ~idx ~setup_ns ~round_ns ~pages =
  match Hashtbl.find_opt t.dyn input_id with
  | None -> ()
  | Some d ->
    d.db_meas_idx <- idx;
    d.db_setup_ns <- max 0 setup_ns;
    d.db_round_ns <- max 1 round_ns;
    d.db_pages <- pages

(* ------------------------------------------------------------------ *)
(* Dynamic: the amortized cost model.                                  *)

(* Staleness penalty per consecutive no-news round: a placement that
   stopped producing coverage gets progressively more expensive, so the
   argmin drifts to fresher candidates — the adaptive analogue of the
   aggressive policy's walk-back, but constrained to state boundaries and
   weighed against each placement's measured cost. Scaled to the entry's
   execution cost so fast and slow targets feel the same pressure. *)
let stale_penalty d = max 1_000 (d.db_full_ns / 2)

let est_root d = d.db_full_ns + (d.db_root_stale * stale_penalty d)

(* Expected virtual ns per execution with the snapshot after [i] packets:
   the amortized setup (prefix replay + snapshot create, paid once per
   [reuse_count] suffix executions) plus one suffix execution, plus the
   placement's staleness penalty. Once a session at [db_meas_idx] has
   been measured, both terms scale from the measurement by packet counts
   — prefix cost grows with i, suffix cost with packets - i. Before any
   measurement the full-execution estimate is prorated the same way,
   which decreases in i: the policy starts at the deepest boundary (the
   aggressive heuristic) and lets measurements correct it. *)
let est_at d ~packets i =
  let stale =
    let rec find j =
      if j >= Array.length d.db_cands then 0
      else if d.db_cands.(j) = i then d.db_stale.(j)
      else find (j + 1)
    in
    find 0
  in
  let base =
    if d.db_meas_idx > 0 then
      let setup = d.db_setup_ns * i / d.db_meas_idx in
      let suffix =
        d.db_round_ns * (packets - i) / max 1 (packets - d.db_meas_idx)
      in
      (setup / reuse_count) + suffix
    else
      let prefix = d.db_full_ns * i / packets in
      let suffix = d.db_full_ns * (packets - i) / packets in
      (prefix / reuse_count) + suffix
  in
  base + (stale * stale_penalty d)

(* Hysteresis: moving re-pays a prefix replay and a snapshot create, so a
   move must promise at least this relative improvement (percent) over the
   current placement's estimate, and after a move the placement is frozen
   for [move_cooldown] reuse rounds. Together these make thrashing
   impossible: a move needs a strictly better estimate by a fixed margin,
   and estimates only change through measurements and staleness. *)
let move_margin_pct = 5
let move_cooldown = 1

let decide_dynamic t ~input_id ~packets =
  match Hashtbl.find_opt t.dyn input_id with
  | None -> `At (packets - 1) (* unreachable: prepare_dynamic ran first *)
  | Some d ->
    let best = ref 0 (* 0 = root *) and best_est = ref (est_root d) in
    Array.iter
      (fun i ->
        if i >= 1 && i <= packets - 1 then begin
          let e = est_at d ~packets i in
          if e < !best_est then begin
            best := i;
            best_est := e
          end
        end)
      d.db_cands;
    let placed =
      if d.db_cur < 0 then begin
        d.db_cur <- !best;
        !best
      end
      else if d.db_cooldown > 0 then begin
        d.db_cooldown <- d.db_cooldown - 1;
        d.db_cur
      end
      else begin
        let cur_est =
          if d.db_cur = 0 then est_root d else est_at d ~packets d.db_cur
        in
        if !best <> d.db_cur && !best_est * 100 < cur_est * (100 - move_margin_pct)
        then begin
          t.last_move <- Some (input_id, d.db_cur, !best);
          d.db_moves <- d.db_moves + 1;
          d.db_cooldown <- move_cooldown;
          d.db_cur <- !best;
          !best
        end
        else d.db_cur
      end
    in
    if placed = 0 then `Root else `At placed

let decide t ~input_id ~packets =
  t.last_move <- None;
  if packets < min_packets_for_snapshot then `Root
  else
    match t.kind with
    | None_ -> `Root
    | Balanced ->
      if Nyx_sim.Rng.chance t.rng 0.04 then `Root
      else if Nyx_sim.Rng.bool t.rng then `At (Nyx_sim.Rng.int_in t.rng 1 (packets - 1))
      else `At (Nyx_sim.Rng.int_in t.rng (packets / 2) (packets - 1))
    | Aggressive ->
      let idx =
        match Hashtbl.find_opt t.cursor input_id with
        | Some i when i >= 1 && i <= packets - 1 -> i
        | _ ->
          Hashtbl.replace t.cursor input_id (packets - 1);
          packets - 1
      in
      `At idx
    | Dynamic -> decide_dynamic t ~input_id ~packets

let last_move t = t.last_move

(* Staleness bookkeeping for the current placement. *)
let dyn_stale_bump d delta =
  if d.db_cur = 0 then d.db_root_stale <- max 0 (d.db_root_stale + delta)
  else
    Array.iteri
      (fun j i -> if i = d.db_cur then d.db_stale.(j) <- max 0 (d.db_stale.(j) + delta))
      d.db_cands

let notify_no_news t ~input_id =
  match t.kind with
  | None_ | Balanced -> ()
  | Aggressive -> (
    match Hashtbl.find_opt t.cursor input_id with
    | None -> ()
    | Some i ->
      (* One packet earlier; wrapping is handled lazily in [decide] when
         the index falls below 1 (it resets to the end). *)
      Hashtbl.replace t.cursor input_id (i - 1))
  | Dynamic -> (
    match Hashtbl.find_opt t.dyn input_id with
    | None -> ()
    | Some d -> dyn_stale_bump d 1)

let notify_news t ~input_id =
  match t.kind with
  | None_ | Balanced | Aggressive -> ()
  | Dynamic -> (
    match Hashtbl.find_opt t.dyn input_id with
    | None -> ()
    | Some d ->
      (* A productive placement sheds its accumulated staleness. *)
      if d.db_cur = 0 then d.db_root_stale <- 0
      else
        Array.iteri
          (fun j i -> if i = d.db_cur then d.db_stale.(j) <- 0)
          d.db_cands)

(* ------------------------------------------------------------------ *)
(* Placement statistics (for Report.campaign_result).                  *)

let placement_stats t =
  if t.kind <> Dynamic then None
  else begin
    let moves = ref 0 and bounds = ref 0 and placements = ref [] in
    Hashtbl.iter
      (fun id d ->
        moves := !moves + d.db_moves;
        bounds := !bounds + d.db_genuine;
        if d.db_cur >= 0 then placements := (id, d.db_cur) :: !placements)
      t.dyn;
    Some
      {
        Report.probes = t.probes;
        probe_hashes = t.probe_hashes;
        probe_hashes_skipped = t.probe_skipped;
        moves = !moves;
        boundary_count = !bounds;
        placements = List.sort compare !placements;
      }
  end

(* ------------------------------------------------------------------ *)
(* Checkpoint support: a policy is its rng state, the aggressive cursor
   table and the dynamic per-entry table, each serialized sorted by input
   id so the rendering is canonical whatever the tables' internal order. *)

type dyn_state = {
  ds_id : int;
  ds_cands : int list;
  ds_stale : int list;
  ds_root_stale : int;
  ds_genuine : int;
  ds_probed : bool;
  ds_full_ns : int;
  ds_setup_ns : int;
  ds_round_ns : int;
  ds_pages : int;
  ds_meas_idx : int;
  ds_cur : int;
  ds_cooldown : int;
  ds_moves : int;
}

type state = {
  st_rng : int64;
  st_cursor : (int * int) list;
  st_dyn : dyn_state list;
  st_probes : int;
  st_probe_hashes : int;
  st_probe_skipped : int;
}

let checkpoint_state t =
  {
    st_rng = Nyx_sim.Rng.state t.rng;
    st_cursor =
      List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.cursor []);
    st_dyn =
      List.sort compare
        (Hashtbl.fold
           (fun id d acc ->
             {
               ds_id = id;
               ds_cands = Array.to_list d.db_cands;
               ds_stale = Array.to_list d.db_stale;
               ds_root_stale = d.db_root_stale;
               ds_genuine = d.db_genuine;
               ds_probed = d.db_probed;
               ds_full_ns = d.db_full_ns;
               ds_setup_ns = d.db_setup_ns;
               ds_round_ns = d.db_round_ns;
               ds_pages = d.db_pages;
               ds_meas_idx = d.db_meas_idx;
               ds_cur = d.db_cur;
               ds_cooldown = d.db_cooldown;
               ds_moves = d.db_moves;
             }
             :: acc)
           t.dyn []);
    st_probes = t.probes;
    st_probe_hashes = t.probe_hashes;
    st_probe_skipped = t.probe_skipped;
  }

let restore_state t s =
  Nyx_sim.Rng.set_state t.rng s.st_rng;
  Hashtbl.reset t.cursor;
  List.iter (fun (k, v) -> Hashtbl.replace t.cursor k v) s.st_cursor;
  Hashtbl.reset t.dyn;
  List.iter
    (fun ds ->
      Hashtbl.replace t.dyn ds.ds_id
        {
          db_cands = Array.of_list ds.ds_cands;
          db_stale = Array.of_list ds.ds_stale;
          db_root_stale = ds.ds_root_stale;
          db_genuine = ds.ds_genuine;
          db_probed = ds.ds_probed;
          db_full_ns = ds.ds_full_ns;
          db_setup_ns = ds.ds_setup_ns;
          db_round_ns = ds.ds_round_ns;
          db_pages = ds.ds_pages;
          db_meas_idx = ds.ds_meas_idx;
          db_cur = ds.ds_cur;
          db_cooldown = ds.ds_cooldown;
          db_moves = ds.ds_moves;
        })
    s.st_dyn;
  t.probes <- s.st_probes;
  t.probe_hashes <- s.st_probe_hashes;
  t.probe_skipped <- s.st_probe_skipped;
  t.last_move <- None
