type kind = None_ | Balanced | Aggressive

type t = {
  kind : kind;
  rng : Nyx_sim.Rng.t;
  cursor : (int, int) Hashtbl.t; (* aggressive: input id -> snapshot index *)
}

let name = function
  | None_ -> "nyx-net-none"
  | Balanced -> "nyx-net-balanced"
  | Aggressive -> "nyx-net-aggressive"

let of_name = function
  | "none" | "nyx-net-none" -> Ok None_
  | "balanced" | "nyx-net-balanced" -> Ok Balanced
  | "aggressive" | "nyx-net-aggressive" -> Ok Aggressive
  | s -> Error (Printf.sprintf "unknown policy %S (none|balanced|aggressive)" s)

let reuse_count = 50

let create kind rng = { kind; rng; cursor = Hashtbl.create 64 }

let min_packets_for_snapshot = 5

let decide t ~input_id ~packets =
  if packets < min_packets_for_snapshot then `Root
  else
    match t.kind with
    | None_ -> `Root
    | Balanced ->
      if Nyx_sim.Rng.chance t.rng 0.04 then `Root
      else if Nyx_sim.Rng.bool t.rng then `At (Nyx_sim.Rng.int_in t.rng 1 (packets - 1))
      else `At (Nyx_sim.Rng.int_in t.rng (packets / 2) (packets - 1))
    | Aggressive ->
      let idx =
        match Hashtbl.find_opt t.cursor input_id with
        | Some i when i >= 1 && i <= packets - 1 -> i
        | _ ->
          Hashtbl.replace t.cursor input_id (packets - 1);
          packets - 1
      in
      `At idx

(* Checkpoint support: a policy is its rng state plus the aggressive
   cursor table, serialized as sorted (input_id, index) pairs so the
   rendering is canonical whatever the table's internal order. *)

type state = { st_rng : int64; st_cursor : (int * int) list }

let checkpoint_state t =
  {
    st_rng = Nyx_sim.Rng.state t.rng;
    st_cursor =
      List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.cursor []);
  }

let restore_state t s =
  Nyx_sim.Rng.set_state t.rng s.st_rng;
  Hashtbl.reset t.cursor;
  List.iter (fun (k, v) -> Hashtbl.replace t.cursor k v) s.st_cursor

let notify_no_news t ~input_id =
  match t.kind with
  | None_ | Balanced -> ()
  | Aggressive -> (
    match Hashtbl.find_opt t.cursor input_id with
    | None -> ()
    | Some i ->
      (* One packet earlier; wrapping is handled lazily in [decide] when
         the index falls below 1 (it resets to the end). *)
      Hashtbl.replace t.cursor input_id (i - 1))
