(** Crash-safe campaign checkpoints.

    A checkpoint captures the deterministic state a campaign needs to
    continue exactly where it left off; {!Campaign.resume} rebuilds the
    rest (guest memory, disk, devices) by re-booting the target, which is
    deterministic. The contract, enforced by the qcheck property in
    [test_resilience]: killing a campaign at {e any} checkpoint and
    resuming produces a bit-identical final {!Report.campaign_result}
    (modulo the informational wall-clock fields —
    {!Report.same_deterministic}).

    Files start with the magic ["NYXCKP1"], use flat big-endian int64
    framing throughout, and are written atomically (tmp + rename via
    {!Nyx_resilience.Atomic_io}) so a crash mid-write never corrupts the
    previous checkpoint. *)

type corpus_entry = {
  ce_program : bytes;  (** {!Nyx_spec.Program.serialize} form *)
  ce_exec_ns : int;
  ce_discovered_ns : int;
  ce_state_code : int;
}

type crash = {
  cr_kind : string;
  cr_detail : string;
  cr_found_ns : int;
  cr_found_exec : int;
  cr_input : bytes;
}

type t = {
  c_policy : string;  (** {!Policy.name} form *)
  c_budget_ns : int;
  c_max_execs : int;
  c_seed : int;
  c_asan : bool;
  c_stop_on_solve : bool;
  c_trim : bool;
  c_sample_interval_ns : int;
  c_target : string;
  c_clock_ns : int;
  c_execs : int;
  c_last_sample : int;
  c_solved_ns : int option;
  c_sched_rng : int64;
  c_mut_rng : int64;
  c_policy_state : Policy.state;
  c_corpus : corpus_entry list;  (** oldest first: ids re-assign in order *)
  c_virgin : bytes;  (** cumulative coverage map *)
  c_timeline : (int * int64) list;  (** oldest first; values as float bits *)
  c_crashes : crash list;  (** newest first, as the campaign stores them *)
  c_engine : Nyx_snapshot.Engine.persisted;
  c_dict : bytes list;
  c_max_ops : int;
  c_exec_timeline : (int * int64) list;
      (** execs-keyed coverage timeline, oldest first; values float bits *)
  c_mut_engine : string;  (** {!Engines.name} form *)
  c_mut_weights : (string * int64) list;
      (** per-mutator base-weight overrides; weights as float bits *)
  c_mut_state : Nyx_spec.Mutation_engine.state;
      (** per-mutator counters and EWMA credit, engine order *)
  c_faults : (string * Nyx_resilience.Plan.state) option;
      (** canonical fault spec + plan state, when a plan was armed *)
  c_profile : Nyx_obs.Profile.state option;
  c_peer : Nyx_peer.Peer_driver.state option;
      (** cooperating-peer counters, for [--mode peer] campaigns *)
}

val encode : t -> bytes
val decode : bytes -> t
(** @raise Corrupt on malformed input. *)

exception Corrupt of string

val save : string -> t -> (unit, string) result
(** Atomic write (tmp + rename). *)

val load : string -> (t, string) result
