open Nyx_targets
open Nyx_netemu

type t = {
  clock : Nyx_sim.Clock.t;
  ctx : Ctx.t;
  engine : Nyx_snapshot.Engine.t;
  ops : Op_handlers.t;
  target : Target.t;
  profile : Nyx_obs.Profile.t option;
  peer : Nyx_peer.Peer_driver.t option;
  mutable probe_hashed : int; (* state hashes taken by the last probe *)
  mutable probe_skipped : int; (* indices the static prior let it skip *)
}

(* Phase attribution (observational only: reads the clock, never advances
   it). One branch per site when profiling is off. *)
let prof t phase f =
  match t.profile with
  | None -> f ()
  | Some p -> Nyx_obs.Profile.span p phase t.clock f

let create ?(asan = false) ?(layout_cookie = 0) ?(boundaries = true)
    ?(vm_config = Nyx_vm.Vm.fuzz_config) ?custom ?peer ?profile ~net_spec:_ target =
  let clock = Nyx_sim.Clock.create () in
  let vm = Nyx_vm.Vm.create ~config:vm_config clock in
  let net = Net.create ~backend:Net.Emulated ~boundaries clock in
  let aux = Nyx_snapshot.Aux_state.create () in
  Net.register_aux net aux;
  let ctx = Ctx.of_vm ~asan ~layout_cookie ~net vm in
  let runtime = Target.boot target ctx in
  Target.pump runtime;
  (* Peer mode: build the cooperating-peer driver and register its
     session state as aux snapshot state *before* the root snapshot is
     taken, so every snapshot (root and incremental) captures the peer
     mid-conversation along with the kernel socket state. *)
  let peer =
    Option.map
      (fun script ->
        let d = Nyx_peer.Peer_driver.create ?profile ~clock ~net ~runtime ~target script in
        Nyx_peer.Peer_driver.register_aux d aux;
        d)
      peer
  in
  (* The agent detected the first read on the attack surface: take the
     root snapshot here, exactly where Nyx-Net places it automatically. *)
  let engine = Nyx_snapshot.Engine.create vm aux in
  let take_snapshot =
    match profile with
    | None -> fun () -> Nyx_snapshot.Engine.take_incremental engine
    | Some p ->
      fun () ->
        Nyx_obs.Profile.span p Nyx_obs.Profile.Snapshot_create clock (fun () ->
            Nyx_snapshot.Engine.take_incremental engine)
  in
  (* In peer mode the driver claims every connect/packet/close opcode
     (it wins over any [custom] handler — the two are not composed). *)
  let custom =
    match peer with
    | Some d -> Some (Nyx_peer.Peer_driver.handler d)
    | None -> custom
  in
  let ops =
    Op_handlers.create ~net ~runtime ~target ~on_snapshot:take_snapshot ?custom ()
  in
  { clock; ctx; engine; ops; target; profile; peer; probe_hashed = 0; probe_skipped = 0 }

let clock t = t.clock
let profile t = t.profile
let coverage t = t.ctx.Ctx.cov
let state_code t = t.ctx.Ctx.state_code
let snapshot_stats t = Nyx_snapshot.Engine.stats t.engine
let target_name t = t.target.Target.info.Target.name
let root_stored_bytes t = Nyx_snapshot.Engine.root_stored_bytes t.engine
let mirror_bytes t = Nyx_snapshot.Engine.mirror_pages t.engine * Nyx_vm.Page.size

let reset_exec_state t =
  Coverage.reset t.ctx.Ctx.cov;
  t.ctx.Ctx.state_code <- 0;
  Op_handlers.reset t.ops

(* ------------------------------------------------------------------ *)
(* Fault injection and recovery.                                       *)

let arm_faults t plan =
  Nyx_vm.Vm.arm_faults (Nyx_snapshot.Engine.vm t.engine) plan;
  Option.iter (fun d -> Nyx_peer.Peer_driver.arm d plan) t.peer

let peer_driver t = t.peer
let faults t = Nyx_vm.Vm.faults (Nyx_snapshot.Engine.vm t.engine)

let engine_checkpoint t = Nyx_snapshot.Engine.checkpoint t.engine
let engine_restore_checkpoint t p = Nyx_snapshot.Engine.restore_checkpoint t.engine p

(* Guest wedge: the target stops responding for the whole hang budget.
   The per-execution snapshot reset unconditionally clears a wedge, so it
   is recovered on the spot — after charging the budgeted wait — and the
   execution reports as a hang without running. *)
let wedge_status t =
  match faults t with
  | None -> None
  | Some plan -> (
    match
      Nyx_resilience.Plan.fire plan Nyx_resilience.Fault.Guest_wedge
        ~vns:(Nyx_sim.Clock.now_ns t.clock)
    with
    | None -> None
    | Some f ->
      Nyx_sim.Clock.advance t.clock Nyx_sim.Cost.guest_wedge;
      Nyx_resilience.Plan.record_recovered plan f;
      if Nyx_obs.Trace.on () then
        Nyx_obs.Trace.instant
          ~vns:(Nyx_sim.Clock.now_ns t.clock)
          "fault-wedge"
          [ ("seq", Nyx_obs.Trace.Int f.Nyx_resilience.Fault.seq) ];
      Some Report.Hang)

(* Graceful degradation (the paper's recreate-on-demand, §3.4): the active
   incremental snapshot carries an injected fault — discard it, rebuild it
   from the root by replaying the program's frozen prefix, and carry on.
   Recovery runs with the plan suppressed (it cannot itself fault); its
   full cost — root restore, prefix replay, snapshot re-take — is charged
   to virtual time like any other work. *)
let recover_incremental t program =
  match faults t with
  | None -> assert false (* Fault.Injected is only raised with a plan armed *)
  | Some plan ->
    let n_faults = List.length (Nyx_snapshot.Engine.pending t.engine) in
    Nyx_resilience.Plan.suppressed plan (fun () ->
        (* restore_root discards the faulted incremental and retires its
           pending faults as recovered. *)
        Nyx_snapshot.Engine.restore_root t.engine;
        reset_exec_state t;
        ignore
          (Nyx_spec.Interp.run_until_snapshot program (Op_handlers.handlers t.ops)));
    if Nyx_obs.Trace.on () then
      Nyx_obs.Trace.instant
        ~vns:(Nyx_sim.Clock.now_ns t.clock)
        "fault-recovered"
        [ ("faults", Nyx_obs.Trace.Int n_faults) ]

let status_of_run f =
  try
    f ();
    Report.Pass
  with
  | Ctx.Crash { kind = "hang"; detail = _ } -> Report.Hang
  | Ctx.Crash { kind; detail } -> Report.Crash { kind; detail }
  | Nyx_vm.Guest_heap.Heap_oob { base; off; len } ->
    Report.Crash
      {
        kind = "asan-heap-oob";
        detail = Printf.sprintf "region %d offset %d len %d" base off len;
      }
  | Nyx_vm.Memory.Fault { addr; size } ->
    Report.Crash { kind = "segfault"; detail = Printf.sprintf "addr %d size %d" addr size }
  | Nyx_vm.Guest_heap.Out_of_memory -> Report.Crash { kind = "oom"; detail = "guest heap" }
  | Net.Would_block fd ->
    Report.Crash
      { kind = "protocol-desync"; detail = Printf.sprintf "blocking read on fd %d" fd }
  | Net.Bad_fd fd -> Report.Crash { kind = "bad-fd"; detail = Printf.sprintf "fd %d" fd }

let status_str = function
  | Report.Pass -> "pass"
  | Report.Hang -> "hang"
  | Report.Crash { kind; _ } -> kind

let run_full t program =
  let t0 = Nyx_sim.Clock.now_ns t.clock in
  if Nyx_obs.Trace.on () then
    Nyx_obs.Trace.span_begin ~vns:t0 "exec" [ ("mode", Nyx_obs.Trace.Str "full") ];
  prof t Nyx_obs.Profile.Reset (fun () ->
      Nyx_snapshot.Engine.restore_root t.engine;
      reset_exec_state t);
  let status =
    match wedge_status t with
    | Some status -> status
    | None ->
      prof t Nyx_obs.Profile.Suffix_exec (fun () ->
          status_of_run (fun () ->
              ignore (Nyx_spec.Interp.run program (Op_handlers.handlers t.ops))))
  in
  (* If the program took an incremental snapshot mid-run, drop it. *)
  if Nyx_snapshot.Engine.has_incremental t.engine then
    prof t Nyx_obs.Profile.Reset (fun () -> Nyx_snapshot.Engine.restore_root t.engine);
  let exec_ns = Nyx_sim.Clock.now_ns t.clock - t0 in
  if Nyx_obs.Trace.on () then
    Nyx_obs.Trace.span_end ~vns:(t0 + exec_ns) "exec"
      [
        ("status", Nyx_obs.Trace.Str (status_str status));
        ("exec_ns", Nyx_obs.Trace.Int exec_ns);
      ];
  { Report.status; exec_ns; state_code = t.ctx.Ctx.state_code }

type session = {
  s_from : int;
  s_env : Nyx_spec.Interp.env;
  s_cov : Coverage.checkpoint;
  s_state_code : int;
  s_tokens : (int * int) list * int * int option * int;
}

let start_session t program =
  match Nyx_spec.Interp.snapshot_op_index program with
  | None -> Error { Report.status = Report.Hang; exec_ns = 0; state_code = 0 }
  | Some snap_idx -> (
    let t0 = Nyx_sim.Clock.now_ns t.clock in
    if Nyx_obs.Trace.on () then
      Nyx_obs.Trace.span_begin ~vns:t0 "prefix"
        [ ("snapshot_at", Nyx_obs.Trace.Int snap_idx) ];
    prof t Nyx_obs.Profile.Reset (fun () ->
        Nyx_snapshot.Engine.restore_root t.engine;
        reset_exec_state t);
    let result = ref None in
    let status =
      match wedge_status t with
      | Some status -> status
      | None ->
        prof t Nyx_obs.Profile.Prefix_replay (fun () ->
            status_of_run (fun () ->
                match
                  Nyx_spec.Interp.run_until_snapshot program (Op_handlers.handlers t.ops)
                with
                | Some (from, env) -> result := Some (from, env)
                | None -> ()))
    in
    let trace_close ok =
      if Nyx_obs.Trace.on () then
        Nyx_obs.Trace.span_end
          ~vns:(Nyx_sim.Clock.now_ns t.clock)
          "prefix"
          [
            ("ok", Nyx_obs.Trace.Bool ok);
            ("status", Nyx_obs.Trace.Str (status_str status));
          ]
    in
    match (status, !result) with
    | Report.Pass, Some (from, env) ->
      trace_close true;
      Ok
        {
          s_from = from;
          s_env = env;
          s_cov = Coverage.save t.ctx.Ctx.cov;
          s_state_code = t.ctx.Ctx.state_code;
          s_tokens = Op_handlers.save_tokens t.ops;
        }
    | status, _ ->
      if Nyx_snapshot.Engine.has_incremental t.engine then
        prof t Nyx_obs.Profile.Reset (fun () ->
            Nyx_snapshot.Engine.restore_root t.engine);
      trace_close false;
      Error
        {
          Report.status;
          exec_ns = Nyx_sim.Clock.now_ns t.clock - t0;
          state_code = t.ctx.Ctx.state_code;
        })

let suffix_start s = s.s_from

let run_suffix t session program =
  let t0 = Nyx_sim.Clock.now_ns t.clock in
  if Nyx_obs.Trace.on () then
    Nyx_obs.Trace.span_begin ~vns:t0 "exec" [ ("mode", Nyx_obs.Trace.Str "suffix") ];
  prof t Nyx_obs.Profile.Reset (fun () ->
      (try Nyx_snapshot.Engine.restore t.engine
       with Nyx_resilience.Fault.Injected _ ->
         (* The frozen prefix is preserved verbatim in every mutant, so
            replaying [program]'s prefix rebuilds the exact session. *)
         recover_incremental t program);
      Coverage.restore t.ctx.Ctx.cov session.s_cov;
      t.ctx.Ctx.state_code <- session.s_state_code;
      Op_handlers.load_tokens t.ops session.s_tokens);
  let env = Nyx_spec.Interp.copy_env session.s_env in
  let status =
    match wedge_status t with
    | Some status -> status
    | None ->
      prof t Nyx_obs.Profile.Suffix_exec (fun () ->
          status_of_run (fun () ->
              ignore
                (Nyx_spec.Interp.run ~from:session.s_from ~env program
                   (Op_handlers.handlers t.ops))))
  in
  let exec_ns = Nyx_sim.Clock.now_ns t.clock - t0 in
  if Nyx_obs.Trace.on () then
    Nyx_obs.Trace.span_end ~vns:(t0 + exec_ns) "exec"
      [
        ("status", Nyx_obs.Trace.Str (status_str status));
        ("exec_ns", Nyx_obs.Trace.Int exec_ns);
      ];
  { Report.status; exec_ns; state_code = t.ctx.Ctx.state_code }

let end_session t _session =
  prof t Nyx_obs.Profile.Reset (fun () -> Nyx_snapshot.Engine.restore_root t.engine)

(* ------------------------------------------------------------------ *)
(* Protocol-state probing (dynamic snapshot placement).                *)

let state_hash t = Target.state_hash t.ctx (Nyx_snapshot.Engine.aux t.engine)

let last_snapshot_pages t = Nyx_snapshot.Engine.last_create_pages t.engine

(* Single-step the (snapshot-stripped) program from the root, hashing the
   protocol state after every packet; a hash change at packet i+1 marks a
   state-machine boundary. Only interior indices are reported — placing
   the snapshot at 0 or past the last packet is never useful. A crash in
   the probe simply truncates the boundary list (the crashing mutant will
   be triaged by a real execution; the probe's job is placement only). The
   full probe cost — replay, per-step hashing — lands on the virtual
   clock, so placement decisions stay deterministic.

   [feasible] is the static prior from [Nyx_analysis.Dataflow]: the
   sorted interior indices at which a boundary can possibly appear. With
   it the probe hashes only at feasible indices — an inert op cannot
   move the hash, so the skipped comparisons are exactly the ones that
   always came back equal (and the hash after the last op, whose
   boundary would never be interior). Under NYX_SANITIZE the skipped
   indices are re-hashed anyway as a conformance check — off the virtual
   clock, so the sanitized timeline stays bit-identical — and a hash
   move at an infeasible index raises [Interp.Violation] with code
   [state-boundary-escape]: the static classification was unsound. *)
let state_boundaries ?feasible t program =
  let p = Nyx_spec.Program.strip_snapshots program in
  let n = Array.length p.Nyx_spec.Program.ops in
  let feasible_at =
    match feasible with
    | None -> fun _ -> true
    | Some fs ->
      let a = Array.make (n + 1) false in
      List.iter (fun b -> if b >= 0 && b <= n then a.(b) <- true) fs;
      fun b -> a.(b)
  in
  let sanitize = Nyx_spec.Interp.sanitize_default in
  t.probe_hashed <- 0;
  t.probe_skipped <- 0;
  prof t Nyx_obs.Profile.Reset (fun () ->
      Nyx_snapshot.Engine.restore_root t.engine;
      reset_exec_state t);
  let h = Op_handlers.handlers t.ops in
  let env = Nyx_spec.Interp.initial_env p in
  let boundaries = ref [] in
  let hash () =
    t.probe_hashed <- t.probe_hashed + 1;
    state_hash t
  in
  let prev = ref (hash ()) in
  ignore
    (status_of_run (fun () ->
         for i = 0 to n - 1 do
           ignore (Nyx_spec.Interp.run ~from:i ~until:(i + 1) ~env p h);
           if feasible_at (i + 1) then begin
             let cur = hash () in
             if cur <> !prev && i + 1 <= n - 1 then boundaries := (i + 1) :: !boundaries;
             prev := cur
           end
           else begin
             t.probe_skipped <- t.probe_skipped + 1;
             (* Boundary n (after the last op) is excluded from the prior
                by construction, not by inertness — it is never a
                placement candidate, so the hash there may legitimately
                move. Shadow-check interior boundaries only, mirroring
                the recording condition above. *)
             if sanitize && i + 1 <= n - 1 then begin
               (* Shadow hash for conformance only: roll the clock back so
                  the sanitized run keeps the prior-on timeline. *)
               let t0 = Nyx_sim.Clock.now_ns t.clock in
               let cur = state_hash t in
               Nyx_sim.Clock.set_ns t.clock t0;
               if cur <> !prev then
                 raise
                   (Nyx_spec.Interp.Violation
                      {
                        op = i;
                        code = "state-boundary-escape";
                        detail =
                          Printf.sprintf
                            "protocol-state hash moved at statically infeasible \
                             boundary %d (op classified inert)"
                            (i + 1);
                      })
             end
           end
         done));
  prof t Nyx_obs.Profile.Reset (fun () ->
      Nyx_snapshot.Engine.restore_root t.engine;
      reset_exec_state t);
  List.rev !boundaries

let last_probe_hashed t = t.probe_hashed
let last_probe_skipped t = t.probe_skipped
