(** Crash reproducer minimization (the afl-tmin of the toolchain).

    Given a program whose execution produces some outcome (typically a
    crash of a particular kind), shrink it while preserving the outcome:

    1. drop opcodes, binary-search style, largest chunks first;
    2. shrink each packet payload by removing chunks;
    3. canonicalize remaining payload bytes where possible.

    Every candidate is verified by re-executing, so the result is always a
    true reproducer. Minimization works on any predicate over execution
    results, so it can also minimize coverage witnesses. *)

val minimize :
  run:(Nyx_spec.Program.t -> Report.exec_result) ->
  keep:(Report.exec_result -> bool) ->
  Nyx_spec.Program.t ->
  Nyx_spec.Program.t * int
(** [minimize ~run ~keep program] returns the smallest found program still
    satisfying [keep], plus the number of verification executions spent.
    @raise Invalid_argument if [program] itself does not satisfy [keep]. *)

val keep_crash_kind : string -> Report.exec_result -> bool
(** Predicate: the run crashed with this kind. *)

val serialized_size : Nyx_spec.Program.t -> int
(** Size of the wire form — the quantity being minimized. *)
