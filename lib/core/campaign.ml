open Nyx_targets

type config = {
  policy : Policy.kind;
  budget_ns : int;
  max_execs : int;
  seed : int;
  asan : bool;
  stop_on_solve : bool;
  trim : bool;
  sample_interval_ns : int;
}

let default_config =
  {
    policy = Policy.Aggressive;
    budget_ns = 30_000_000_000;
    max_execs = 200_000;
    seed = 1;
    asan = false;
    stop_on_solve = false;
    trim = false;
    sample_interval_ns = 250_000_000;
  }

let net_spec () = Nyx_spec.Net_spec.create ()

let make_seeds entry spec = Registry.seed_programs entry spec

(* Campaign-internal mutable state threaded through triage. *)
type state = {
  cfg : config;
  exec : Executor.t;
  corpus : Corpus.t;
  cumulative : Coverage.Cumulative.t;
  timeline : Nyx_sim.Stats.Timeline.t;
  rng : Nyx_sim.Rng.t;
  mutable execs : int;
  mutable crashes : Report.crash_report list;
  mutable solved_ns : int option;
  mutable last_sample : int;
  mutable stop : bool;
}

let now st = Nyx_sim.Clock.now_ns (Executor.clock st.exec)

(* Campaign-level phase attribution (cov-merge, trim) goes to the same
   accumulator the executor writes. One branch per site when off. *)
let prof_span st phase f =
  match Executor.profile st.exec with
  | None -> f ()
  | Some p -> Nyx_obs.Profile.span p phase (Executor.clock st.exec) f

let prof_override st phase f =
  match Executor.profile st.exec with
  | None -> f ()
  | Some p -> Nyx_obs.Profile.with_override p phase f

let over_budget st =
  st.stop
  || now st >= st.cfg.budget_ns
  || st.execs >= st.cfg.max_execs

let sample ?(force = false) st =
  let t = now st in
  if force || t - st.last_sample >= st.cfg.sample_interval_ns then begin
    st.last_sample <- t;
    Nyx_sim.Stats.Timeline.record st.timeline t
      (float_of_int (Coverage.Cumulative.edge_count st.cumulative))
  end

(* AFL-style trim: binary-search the shortest op prefix whose execution
   produces the identical coverage map, so stored entries carry no dead
   tail (trailing packets the target never consumed). *)
let trim_program st program =
  (* One O(touched) checkpoint of the full run's map; each probe compares
     the fresh map against it via the journal view ([Coverage.matches]) —
     no 64 KiB copies and no structural map comparison per probe. *)
  let full_map = Coverage.save (Executor.coverage st.exec) in
  let same_cov_at len =
    let candidate =
      { program with
        Nyx_spec.Program.ops = Array.sub program.Nyx_spec.Program.ops 0 len }
    in
    match Nyx_spec.Program.validate candidate with
    | Error _ -> None
    | Ok () ->
      st.execs <- st.execs + 1;
      ignore (Executor.run_full st.exec candidate);
      if Coverage.matches (Executor.coverage st.exec) full_map then Some candidate
      else None
  in
  let n = Array.length program.Nyx_spec.Program.ops in
  let rec search lo hi best =
    (* Invariant: prefixes of length > hi are untested; length hi works
       when [best] says so; lo never works. *)
    if hi - lo <= 1 then best
    else begin
      let mid = (lo + hi) / 2 in
      match same_cov_at mid with
      | Some candidate -> search lo mid candidate
      | None -> search mid hi best
    end
  in
  if n <= 2 || over_budget st then program else search 1 n program

(* Record one executed test case: merge coverage, grow the corpus, log
   crashes. [stored] is the program to keep if the run found novelty. *)
let triage st (result : Report.exec_result) stored =
  st.execs <- st.execs + 1;
  let novel =
    prof_span st Nyx_obs.Profile.Cov_merge (fun () ->
        Coverage.Cumulative.merge st.cumulative (Executor.coverage st.exec))
  in
  if novel then begin
    let program = Nyx_spec.Program.strip_snapshots stored in
    let program =
      if st.cfg.trim then
        (* Everything trim runs internally (resets, probe executions) is
           charged to the [Trim] phase. *)
        prof_override st Nyx_obs.Profile.Trim (fun () -> trim_program st program)
      else program
    in
    ignore
      (Corpus.add st.corpus ~program ~exec_ns:result.Report.exec_ns
         ~discovered_ns:(now st) ~state_code:result.Report.state_code);
    sample ~force:true st
  end
  else sample st;
  (match result.Report.status with
  | Report.Pass | Report.Hang -> ()
  | Report.Crash { kind; detail } ->
    if not (List.exists (fun c -> c.Report.kind = kind) st.crashes) then
      st.crashes <-
        {
          Report.kind;
          detail;
          found_ns = now st;
          found_exec = st.execs;
          input = Nyx_spec.Program.serialize stored;
        }
        :: st.crashes;
    if kind = "level-solved" then begin
      if st.solved_ns = None then st.solved_ns <- Some (now st);
      if st.cfg.stop_on_solve then st.stop <- true
    end);
  novel

let run ?seeds ?custom ?(profile = false) cfg entry =
  let wall0 = Nyx_parallel.Wall.now_s () in
  let spec = net_spec () in
  let rng = Nyx_sim.Rng.create cfg.seed in
  let layout_cookie = Nyx_sim.Rng.int rng 1_000_000 in
  let prof = if profile then Some (Nyx_obs.Profile.create ()) else None in
  let exec =
    Executor.create ~asan:cfg.asan ~layout_cookie ?custom ?profile:prof
      ~net_spec:spec entry.Registry.target
  in
  let target_name = entry.Registry.target.Target.info.Target.name in
  if Nyx_obs.Trace.on () then
    Nyx_obs.Trace.span_begin
      ~vns:(Nyx_sim.Clock.now_ns (Executor.clock exec))
      "campaign"
      [
        ("target", Nyx_obs.Trace.Str target_name);
        ("fuzzer", Nyx_obs.Trace.Str (Policy.name cfg.policy));
        ("seed", Nyx_obs.Trace.Int cfg.seed);
      ];
  let st =
    {
      cfg;
      exec;
      corpus = Corpus.create ();
      cumulative = Coverage.Cumulative.create ();
      timeline = Nyx_sim.Stats.Timeline.create ();
      rng;
      execs = 0;
      crashes = [];
      solved_ns = None;
      last_sample = 0;
      stop = false;
    }
  in
  let policy = Policy.create cfg.policy (Nyx_sim.Rng.split rng) in
  let mut_rng = Nyx_sim.Rng.split rng in
  (* Seed the corpus. *)
  let seed_programs =
    match seeds with Some s -> s | None -> make_seeds entry spec
  in
  (* Dictionary: the target's shipped tokens plus AFL-style auto-extraction
     from the seeds. *)
  let dict =
    Nyx_spec.Auto_dict.merge
      (List.map Bytes.of_string entry.Registry.target.Target.info.Target.dict)
      (Nyx_spec.Auto_dict.extract seed_programs)
  in
  (* The input-length cap scales with the seeds: protocols with long
     message sequences (Mario levels, IPC sessions) need room beyond the
     default. *)
  let max_ops =
    List.fold_left
      (fun acc p -> max acc (2 * Array.length p.Nyx_spec.Program.ops))
      24 seed_programs
  in
  List.iter
    (fun program ->
      if not (over_budget st) then begin
        let r = Executor.run_full exec program in
        ignore (triage st r program)
      end)
    seed_programs;
  (* Ensure the corpus is never empty: an empty one-connection program. *)
  if Corpus.size st.corpus = 0 then
    ignore
      (Corpus.add st.corpus
         ~program:(Nyx_spec.Net_spec.seed_of_packets spec [])
         ~exec_ns:0 ~discovered_ns:(now st) ~state_code:0);
  while not (over_budget st) do
    let entry_sched = Corpus.schedule st.corpus st.rng in
    let packets = entry_sched.Corpus.packets in
    (* Cached newest-first snapshot; Corpus.programs only reallocates
       after growth, so steady-state rounds stop paying O(corpus). *)
    let corpus_progs = Corpus.programs st.corpus in
    match Policy.decide policy ~input_id:entry_sched.Corpus.id ~packets with
    | `Root ->
      let i = ref 0 in
      while !i < Policy.reuse_count && not (over_budget st) do
        incr i;
        let mutated =
          Nyx_obs.Trace.with_span
            ~vns_of:(fun () -> now st)
            "mutation"
            [ ("input", Nyx_obs.Trace.Int entry_sched.Corpus.id) ]
            (fun () ->
              Nyx_spec.Mutator.mutate mut_rng ~max_ops ~dict ~corpus:corpus_progs
                entry_sched.Corpus.program)
        in
        let r = Executor.run_full exec mutated in
        ignore (triage st r mutated)
      done
    | `At idx -> (
      let with_snap = Nyx_spec.Program.with_snapshot_at entry_sched.Corpus.program idx in
      match Executor.start_session exec with_snap with
      | Error r ->
        (* The prefix itself crashed or failed: still a test case. *)
        ignore (triage st r with_snap)
      | Ok session ->
        let frozen = Executor.suffix_start session in
        let news = ref false in
        let i = ref 0 in
        while !i < Policy.reuse_count && not (over_budget st) do
          incr i;
          let mutated =
            Nyx_obs.Trace.with_span
              ~vns_of:(fun () -> now st)
              "mutation"
              [ ("input", Nyx_obs.Trace.Int entry_sched.Corpus.id) ]
              (fun () ->
                Nyx_spec.Mutator.mutate mut_rng
                  ~max_ops:(max_ops + 1 (* snapshot op *))
                  ~dict ~frozen ~corpus:corpus_progs with_snap)
          in
          let r = Executor.run_suffix exec session mutated in
          if triage st r mutated then news := true
        done;
        Executor.end_session exec session;
        if not !news then Policy.notify_no_news policy ~input_id:entry_sched.Corpus.id)
  done;
  sample ~force:true st;
  let virtual_ns = now st in
  let final_edges = Coverage.Cumulative.edge_count st.cumulative in
  let wall_s = Nyx_parallel.Wall.now_s () -. wall0 in
  if Nyx_obs.Trace.on () then
    Nyx_obs.Trace.span_end ~vns:virtual_ns "campaign"
      [
        ("execs", Nyx_obs.Trace.Int st.execs);
        ("edges", Nyx_obs.Trace.Int final_edges);
        ("corpus", Nyx_obs.Trace.Int (Corpus.size st.corpus));
        ("crash_kinds", Nyx_obs.Trace.Int (List.length st.crashes));
      ];
  {
    Report.fuzzer = Policy.name cfg.policy;
    target = target_name;
    run_seed = cfg.seed;
    timeline = st.timeline;
    final_edges;
    execs = st.execs;
    virtual_ns;
    execs_per_sec =
      (if virtual_ns = 0 then 0.0
       else float_of_int st.execs /. (float_of_int virtual_ns /. 1e9));
    crashes = List.rev st.crashes;
    corpus_size = Corpus.size st.corpus;
    solved_ns = st.solved_ns;
    snapshot_stats = Some (Executor.snapshot_stats exec);
    wall_s;
    phase_profile =
      Option.map
        (fun p ->
          Nyx_obs.Profile.snapshot p ~total_virtual_ns:virtual_ns ~total_wall_s:wall_s)
        prof;
  }

let median_result results =
  match results with
  | [] -> invalid_arg "Campaign.median_result: no results"
  | _ ->
    let sorted =
      List.sort
        (fun a b -> compare a.Report.final_edges b.Report.final_edges)
        results
    in
    List.nth sorted (List.length sorted / 2)
