open Nyx_targets

type config = {
  policy : Policy.kind;
  budget_ns : int;
  max_execs : int;
  seed : int;
  asan : bool;
  stop_on_solve : bool;
  trim : bool;
  sample_interval_ns : int;
  engine : Engines.kind;
  mutator_weights : (string * float) list;
}

let default_config =
  {
    policy = Policy.Aggressive;
    budget_ns = 30_000_000_000;
    max_execs = 200_000;
    seed = 1;
    asan = false;
    stop_on_solve = false;
    trim = false;
    sample_interval_ns = 250_000_000;
    engine = Engines.Havoc;
    mutator_weights = [];
  }

let net_spec () = Nyx_spec.Net_spec.create ()

let make_seeds entry spec = Registry.seed_programs entry spec

(* Periodic crash-safe checkpointing (ISSUE: nyx_resilience). *)
type checkpoint_cfg = {
  ck_path : string;
  ck_interval_ns : int;
  ck_on_write : (int -> unit) option;
}

let checkpointing ?on_write ~path ~interval_ns () =
  if interval_ns <= 0 then
    invalid_arg "Campaign.checkpointing: interval_ns must be positive";
  { ck_path = path; ck_interval_ns = interval_ns; ck_on_write = on_write }

(* A program worth sharing with fleet peers: it grew this campaign's
   corpus, and its saved coverage map lets peers judge novelty against
   their own (or a fleet-wide) virgin map without re-executing it. *)
type export = {
  ex_program : Nyx_spec.Program.t;  (* post-trim, snapshot-stripped *)
  ex_cov : Coverage.checkpoint;  (* the discovering execution's map *)
  ex_cells : int;  (* saved hit cells; drives sync merge cost *)
  ex_exec_ns : int;
  ex_state_code : int;
}

(* Campaign-internal mutable state threaded through triage. *)
type state = {
  cfg : config;
  exec : Executor.t;
  corpus : Corpus.t;
  cumulative : Coverage.Cumulative.t;
  timeline : Nyx_sim.Stats.Timeline.t;
  exec_timeline : Nyx_sim.Stats.Timeline.t;
      (* coverage keyed by execs instead of virtual time, recorded at
         every coverage event — the bench's execs-to-frontier metric *)
  rng : Nyx_sim.Rng.t;  (* scheduling *)
  policy : Policy.t;
  mut_rng : Nyx_sim.Rng.t;
  engine : Nyx_spec.Mutation_engine.t;
  dict : bytes list;
  max_ops : int;
  plan : Nyx_resilience.Plan.t option;  (* armed fault plan, if any *)
  static_prior : bool;
      (* feed the Dataflow boundary prior to probes; off when a custom
         op handler is installed (its effects are outside the static
         model, so inertness claims would be unsound) *)
  prior_udp : bool;  (* target transport, for the inertness classification *)
  prof : Nyx_obs.Profile.t option;
  ck : checkpoint_cfg option;
  mutable ck_last : int;
  mutable ck_ordinal : int;
  mutable execs : int;
  mutable crashes : Report.crash_report list;
  mutable solved_ns : int option;
  mutable last_sample : int;
  mutable stop : bool;
  collect_exports : bool;
  mutable pending_exports : export list;  (* newest first *)
  mutable until_ns : int;  (* pause barrier for stepped runs *)
}

let now st = Nyx_sim.Clock.now_ns (Executor.clock st.exec)

(* Campaign-level phase attribution (cov-merge, trim) goes to the same
   accumulator the executor writes. One branch per site when off. *)
let prof_span st phase f =
  match Executor.profile st.exec with
  | None -> f ()
  | Some p -> Nyx_obs.Profile.span p phase (Executor.clock st.exec) f

let prof_override st phase f =
  match Executor.profile st.exec with
  | None -> f ()
  | Some p -> Nyx_obs.Profile.with_override p phase f

let over_budget st =
  st.stop
  || now st >= st.cfg.budget_ns
  || st.execs >= st.cfg.max_execs

(* Loop predicate for stepped (fleet-synced) runs: in addition to the
   budget, stop when the virtual clock crosses the sync barrier. A plain
   [run] keeps [until_ns = max_int], so [paused] reduces to
   [over_budget] and the unstepped path is bit-identical. *)
let paused st = over_budget st || now st >= st.until_ns

let sample ?(force = false) st =
  let t = now st in
  if force || t - st.last_sample >= st.cfg.sample_interval_ns then begin
    st.last_sample <- t;
    let edges = float_of_int (Coverage.Cumulative.edge_count st.cumulative) in
    Nyx_sim.Stats.Timeline.record st.timeline t edges;
    (* Forced samples fire exactly at coverage events (novelty, import),
       so the execs-keyed timeline captures every frontier advance. *)
    if force then Nyx_sim.Stats.Timeline.record st.exec_timeline st.execs edges;
    (* Trace-sink fault site, fired where the campaign actually records
       observability output. The plan draw happens whether or not tracing
       is on — the fault sequence must not depend on NYX_TRACE — but the
       sink failure only manifests when a sink exists, which then disables
       itself (degradation; counted as recovered either way). *)
    match st.plan with
    | None -> ()
    | Some plan -> (
      match
        Nyx_resilience.Plan.fire plan Nyx_resilience.Fault.Trace_sink ~vns:t
      with
      | None -> ()
      | Some f ->
        Nyx_resilience.Plan.record_recovered plan f;
        if Nyx_obs.Trace.on () then begin
          Nyx_obs.Trace.inject_flush_failure ();
          Nyx_obs.Trace.flush ()
        end)
  end

(* AFL-style trim: binary-search the shortest op prefix whose execution
   produces the identical coverage map, so stored entries carry no dead
   tail (trailing packets the target never consumed). *)
let trim_program st program =
  (* One O(touched) checkpoint of the full run's map; each probe compares
     the fresh map against it via the journal view ([Coverage.matches]) —
     no 64 KiB copies and no structural map comparison per probe. *)
  let full_map = Coverage.save (Executor.coverage st.exec) in
  let same_cov_at len =
    let candidate =
      { program with
        Nyx_spec.Program.ops = Array.sub program.Nyx_spec.Program.ops 0 len }
    in
    match Nyx_spec.Program.validate candidate with
    | Error _ -> None
    | Ok () ->
      st.execs <- st.execs + 1;
      ignore (Executor.run_full st.exec candidate);
      if Coverage.matches (Executor.coverage st.exec) full_map then Some candidate
      else None
  in
  let n = Array.length program.Nyx_spec.Program.ops in
  let rec search lo hi best =
    (* Invariant: prefixes of length > hi are untested; length hi works
       when [best] says so; lo never works. *)
    if hi - lo <= 1 then best
    else begin
      let mid = (lo + hi) / 2 in
      match same_cov_at mid with
      | Some candidate -> search lo mid candidate
      | None -> search mid hi best
    end
  in
  if n <= 2 || paused st then program else search 1 n program

(* Record one executed test case: merge coverage, grow the corpus, log
   crashes. [stored] is the program to keep if the run found novelty. *)
let triage st (result : Report.exec_result) stored =
  st.execs <- st.execs + 1;
  let novel =
    prof_span st Nyx_obs.Profile.Cov_merge (fun () ->
        Coverage.Cumulative.merge st.cumulative (Executor.coverage st.exec))
  in
  if novel then begin
    (* Export capture happens before trim reuses the map for probes: the
       saved checkpoint is the discovering execution's exact coverage,
       which trim preserves by construction in the stored program. *)
    let ex_cov =
      if st.collect_exports then Some (Coverage.save (Executor.coverage st.exec))
      else None
    in
    let program = Nyx_spec.Program.strip_snapshots stored in
    let program =
      if st.cfg.trim then
        (* Everything trim runs internally (resets, probe executions) is
           charged to the [Trim] phase. *)
        prof_override st Nyx_obs.Profile.Trim (fun () -> trim_program st program)
      else program
    in
    ignore
      (Corpus.add st.corpus ~program ~exec_ns:result.Report.exec_ns
         ~discovered_ns:(now st) ~state_code:result.Report.state_code);
    (match ex_cov with
    | Some cov ->
      st.pending_exports <-
        {
          ex_program = program;
          ex_cov = cov;
          ex_cells = Coverage.checkpoint_cells cov;
          ex_exec_ns = result.Report.exec_ns;
          ex_state_code = result.Report.state_code;
        }
        :: st.pending_exports
    | None -> ());
    sample ~force:true st
  end
  else sample st;
  (match result.Report.status with
  | Report.Pass | Report.Hang -> ()
  | Report.Crash { kind; detail } ->
    if not (List.exists (fun c -> c.Report.kind = kind) st.crashes) then
      st.crashes <-
        {
          Report.kind;
          detail;
          found_ns = now st;
          found_exec = st.execs;
          input = Nyx_spec.Program.serialize stored;
        }
        :: st.crashes;
    if kind = "level-solved" then begin
      if st.solved_ns = None then st.solved_ns <- Some (now st);
      if st.cfg.stop_on_solve then st.stop <- true
    end);
  novel

(* ------------------------------------------------------------------ *)
(* Checkpointing.                                                      *)

(* Only valid between scheduling rounds (loop top): the snapshot engine
   is back in root mode there, and all per-execution state is about to be
   reset anyway, so the campaign reduces to the fields below. *)
let capture st : Checkpoint.t =
  let cfg = st.cfg in
  {
    Checkpoint.c_policy = Policy.name cfg.policy;
    c_budget_ns = cfg.budget_ns;
    c_max_execs = cfg.max_execs;
    c_seed = cfg.seed;
    c_asan = cfg.asan;
    c_stop_on_solve = cfg.stop_on_solve;
    c_trim = cfg.trim;
    c_sample_interval_ns = cfg.sample_interval_ns;
    c_target = Executor.target_name st.exec;
    c_clock_ns = now st;
    c_execs = st.execs;
    c_last_sample = st.last_sample;
    c_solved_ns = st.solved_ns;
    c_sched_rng = Nyx_sim.Rng.state st.rng;
    c_mut_rng = Nyx_sim.Rng.state st.mut_rng;
    c_policy_state = Policy.checkpoint_state st.policy;
    c_corpus =
      (* entries are newest first; rev_map flips to oldest first so ids
         re-assign to their original values on resume. *)
      List.rev_map
        (fun (e : Corpus.entry) ->
          {
            Checkpoint.ce_program = Nyx_spec.Program.serialize e.Corpus.program;
            ce_exec_ns = e.Corpus.exec_ns;
            ce_discovered_ns = e.Corpus.discovered_ns;
            ce_state_code = e.Corpus.state_code;
          })
        (Corpus.entries st.corpus);
    c_virgin = Coverage.Cumulative.state_bytes st.cumulative;
    c_timeline =
      List.map
        (fun (t, v) -> (t, Int64.bits_of_float v))
        (Nyx_sim.Stats.Timeline.samples st.timeline);
    c_crashes =
      List.map
        (fun (c : Report.crash_report) ->
          {
            Checkpoint.cr_kind = c.Report.kind;
            cr_detail = c.Report.detail;
            cr_found_ns = c.Report.found_ns;
            cr_found_exec = c.Report.found_exec;
            cr_input = c.Report.input;
          })
        st.crashes;
    c_engine = Executor.engine_checkpoint st.exec;
    c_dict = st.dict;
    c_max_ops = st.max_ops;
    c_exec_timeline =
      List.map
        (fun (t, v) -> (t, Int64.bits_of_float v))
        (Nyx_sim.Stats.Timeline.samples st.exec_timeline);
    c_mut_engine = Engines.name cfg.engine;
    c_mut_weights =
      List.map (fun (n, w) -> (n, Int64.bits_of_float w)) cfg.mutator_weights;
    (* Valid at the loop top: no mutate→credit pair is in flight there,
       so the per-mutator counters fully describe the engine. *)
    c_mut_state = Nyx_spec.Mutation_engine.state st.engine;
    c_faults =
      Option.map
        (fun p ->
          (Nyx_resilience.Plan.spec_string p, Nyx_resilience.Plan.state p))
        st.plan;
    c_profile = Option.map Nyx_obs.Profile.state st.prof;
    c_peer =
      Option.map Nyx_peer.Peer_driver.state (Executor.peer_driver st.exec);
  }

let maybe_checkpoint st =
  match st.ck with
  | None -> ()
  | Some ck ->
    let t = now st in
    if t - st.ck_last >= ck.ck_interval_ns then begin
      st.ck_last <- t;
      match Checkpoint.save ck.ck_path (capture st) with
      | Ok () ->
        st.ck_ordinal <- st.ck_ordinal + 1;
        if Nyx_obs.Trace.on () then
          Nyx_obs.Trace.instant ~vns:t "checkpoint"
            [
              ("ordinal", Nyx_obs.Trace.Int st.ck_ordinal);
              ("execs", Nyx_obs.Trace.Int st.execs);
            ];
        (match ck.ck_on_write with Some f -> f st.ck_ordinal | None -> ())
      | Error m ->
        (* Checkpointing is a safety net, not a dependency: keep fuzzing. *)
        Printf.eprintf "nyx: checkpoint write failed (%s); continuing\n%!" m
    end

(* ------------------------------------------------------------------ *)
(* The main loop, shared by [run] and [resume].                        *)

(* Dynamic placement: one-time state-boundary probe for this entry plus
   the per-round cost-model evaluation, all under the [Snapshot_place]
   phase (the override pins the probe's internal resets and replays to it
   too). Static policies never reach this — their clock/RNG sequence, and
   so their campaign results, stay byte-identical. *)
let dynamic_prepare st (entry_sched : Corpus.entry) ~packets =
  (match
     Policy.prepare_dynamic st.policy ~input_id:entry_sched.Corpus.id ~packets
       ~full_ns:entry_sched.Corpus.exec_ns
   with
  | `Ready -> ()
  | `Probe ->
    prof_span st Nyx_obs.Profile.Snapshot_place (fun () ->
        prof_override st Nyx_obs.Profile.Snapshot_place (fun () ->
            (* The static boundary prior is pure analysis — no clock
               charge; the probe below hashes only at feasible indices. *)
            let feasible =
              if st.static_prior then
                Some
                  (Nyx_analysis.Dataflow.feasible_boundaries ~udp:st.prior_udp
                     entry_sched.Corpus.program)
              else None
            in
            let boundaries =
              Executor.state_boundaries ?feasible st.exec
                entry_sched.Corpus.program
            in
            Policy.set_boundaries st.policy ~input_id:entry_sched.Corpus.id
              ~hashed:(Executor.last_probe_hashed st.exec)
              ~skipped:(Executor.last_probe_skipped st.exec)
              ~packets ~boundaries;
            (* The probe replayed the entry once end-to-end. *)
            st.execs <- st.execs + 1;
            if Nyx_obs.Trace.on () then
              Nyx_obs.Trace.instant ~vns:(now st) "snap-probe"
                [
                  ("input", Nyx_obs.Trace.Int entry_sched.Corpus.id);
                  ("boundaries", Nyx_obs.Trace.Int (List.length boundaries));
                ])));
  prof_span st Nyx_obs.Profile.Snapshot_place (fun () ->
      Nyx_sim.Clock.advance (Executor.clock st.exec) Nyx_sim.Cost.place_decide)

let trace_move st =
  match Policy.last_move st.policy with
  | Some (input, from_, to_) when Nyx_obs.Trace.on () ->
    Nyx_obs.Trace.instant ~vns:(now st) "snap-move"
      [
        ("input", Nyx_obs.Trace.Int input);
        ("from", Nyx_obs.Trace.Int from_);
        ("to", Nyx_obs.Trace.Int to_);
      ]
  | _ -> ()

let main_loop st =
  let dyn = Policy.is_dynamic st.policy in
  while not (paused st) do
    maybe_checkpoint st;
    let entry_sched = Corpus.schedule st.corpus st.rng in
    let packets = entry_sched.Corpus.packets in
    (* Cached newest-first snapshot; Corpus.programs only reallocates
       after growth, so steady-state rounds stop paying O(corpus). *)
    let corpus_progs = Corpus.programs st.corpus in
    if dyn && packets >= Policy.min_packets_for_snapshot then
      dynamic_prepare st entry_sched ~packets;
    match Policy.decide st.policy ~input_id:entry_sched.Corpus.id ~packets with
    | `Root ->
      trace_move st;
      let news = ref false in
      let ns_sum = ref 0 and runs = ref 0 in
      let i = ref 0 in
      while !i < Policy.reuse_count && not (paused st) do
        incr i;
        let mutated =
          prof_span st Nyx_obs.Profile.Mutation (fun () ->
              Nyx_obs.Trace.with_span
                ~vns_of:(fun () -> now st)
                "mutation"
                [ ("input", Nyx_obs.Trace.Int entry_sched.Corpus.id) ]
                (fun () ->
                  Nyx_spec.Mutation_engine.mutate st.engine st.mut_rng
                    {
                      Nyx_spec.Mutation_engine.mx_frozen = 0;
                      mx_max_ops = st.max_ops;
                      mx_dict = st.dict;
                      mx_corpus = corpus_progs;
                    }
                    entry_sched.Corpus.program))
        in
        let r = Executor.run_full st.exec mutated in
        if dyn then begin
          ns_sum := !ns_sum + r.Report.exec_ns;
          incr runs
        end;
        let novel = triage st r mutated in
        Nyx_spec.Mutation_engine.credit st.engine ~novel;
        if novel then news := true
      done;
      (* Feed the cost model; static policies never observed root rounds
         (notify_no_news was historically session-only) and still don't. *)
      if dyn && !runs > 0 then begin
        Policy.observe_full st.policy ~input_id:entry_sched.Corpus.id
          ~ns:(!ns_sum / !runs);
        if !news then Policy.notify_news st.policy ~input_id:entry_sched.Corpus.id
        else Policy.notify_no_news st.policy ~input_id:entry_sched.Corpus.id
      end
    | `At idx -> (
      trace_move st;
      let with_snap =
        Nyx_spec.Program.with_snapshot_at entry_sched.Corpus.program idx
      in
      let setup0 = now st in
      match Executor.start_session st.exec with_snap with
      | Error r ->
        (* The prefix itself crashed or failed: still a test case. A
           dynamic placement whose prefix keeps failing accrues staleness
           so the cost model drifts away from it. *)
        ignore (triage st r with_snap);
        if dyn then Policy.notify_no_news st.policy ~input_id:entry_sched.Corpus.id
      | Ok session ->
        let setup_ns = now st - setup0 in
        let frozen = Executor.suffix_start session in
        let news = ref false in
        let ns_sum = ref 0 and rounds = ref 0 in
        let i = ref 0 in
        while !i < Policy.reuse_count && not (paused st) do
          incr i;
          let mutated =
            prof_span st Nyx_obs.Profile.Mutation (fun () ->
                Nyx_obs.Trace.with_span
                  ~vns_of:(fun () -> now st)
                  "mutation"
                  [ ("input", Nyx_obs.Trace.Int entry_sched.Corpus.id) ]
                  (fun () ->
                    Nyx_spec.Mutation_engine.mutate st.engine st.mut_rng
                      {
                        Nyx_spec.Mutation_engine.mx_frozen = frozen;
                        mx_max_ops = st.max_ops + 1 (* snapshot op *);
                        mx_dict = st.dict;
                        mx_corpus = corpus_progs;
                      }
                      with_snap))
          in
          let r = Executor.run_suffix st.exec session mutated in
          if dyn then begin
            ns_sum := !ns_sum + r.Report.exec_ns;
            incr rounds
          end;
          let novel = triage st r mutated in
          Nyx_spec.Mutation_engine.credit st.engine ~novel;
          if novel then news := true
        done;
        Executor.end_session st.exec session;
        if dyn && !rounds > 0 then
          Policy.observe_session st.policy ~input_id:entry_sched.Corpus.id ~idx
            ~setup_ns
            ~round_ns:(!ns_sum / !rounds)
            ~pages:(Executor.last_snapshot_pages st.exec);
        if not !news then
          Policy.notify_no_news st.policy ~input_id:entry_sched.Corpus.id
        else Policy.notify_news st.policy ~input_id:entry_sched.Corpus.id)
  done

let finish st wall0 =
  sample ~force:true st;
  let virtual_ns = now st in
  let final_edges = Coverage.Cumulative.edge_count st.cumulative in
  let wall_s = Nyx_parallel.Wall.now_s () -. wall0 in
  if Nyx_obs.Trace.on () then
    Nyx_obs.Trace.span_end ~vns:virtual_ns "campaign"
      [
        ("execs", Nyx_obs.Trace.Int st.execs);
        ("edges", Nyx_obs.Trace.Int final_edges);
        ("corpus", Nyx_obs.Trace.Int (Corpus.size st.corpus));
        ("crash_kinds", Nyx_obs.Trace.Int (List.length st.crashes));
      ];
  {
    Report.fuzzer = Policy.name st.cfg.policy;
    target = Executor.target_name st.exec;
    run_seed = st.cfg.seed;
    timeline = st.timeline;
    exec_timeline = st.exec_timeline;
    final_edges;
    execs = st.execs;
    virtual_ns;
    execs_per_sec =
      (if virtual_ns = 0 then 0.0
       else float_of_int st.execs /. (float_of_int virtual_ns /. 1e9));
    crashes = List.rev st.crashes;
    corpus_size = Corpus.size st.corpus;
    solved_ns = st.solved_ns;
    snapshot_stats = Some (Executor.snapshot_stats st.exec);
    wall_s;
    phase_profile =
      Option.map
        (fun p ->
          Nyx_obs.Profile.snapshot p ~total_virtual_ns:virtual_ns
            ~total_wall_s:wall_s)
        st.prof;
    resilience =
      Option.map
        (fun plan ->
          let t = Nyx_resilience.Plan.totals plan in
          {
            Report.faults_injected = t.Nyx_resilience.Plan.injected;
            faults_recovered = t.Nyx_resilience.Plan.recovered;
            faults_aborted =
              t.Nyx_resilience.Plan.injected - t.Nyx_resilience.Plan.recovered;
            restarts = 0;
            quarantined = false;
            backoff_ns = 0;
          })
        st.plan;
    placement = Policy.placement_stats st.policy;
    mutation =
      Some
        {
          Report.engine = Nyx_spec.Mutation_engine.name st.engine;
          mutators =
            List.map
              (fun (s : Nyx_spec.Mutation_engine.stat) ->
                {
                  Report.mut_name = s.Nyx_spec.Mutation_engine.s_name;
                  mut_attempts = s.Nyx_spec.Mutation_engine.s_attempts;
                  mut_rejected = s.Nyx_spec.Mutation_engine.s_rejected;
                  mut_accepts = s.Nyx_spec.Mutation_engine.s_accepts;
                  mut_credit = s.Nyx_spec.Mutation_engine.s_credit;
                })
              (Nyx_spec.Mutation_engine.stats st.engine);
        };
    peer =
      Option.map
        (fun d ->
          let s = Nyx_peer.Peer_driver.state d in
          {
            Report.peer_actions = s.Nyx_peer.Peer_driver.pd_actions;
            peer_fired = Nyx_peer.Peer_driver.fired_by_site d;
            peer_desyncs = s.Nyx_peer.Peer_driver.pd_desyncs;
            peer_restarts = s.Nyx_peer.Peer_driver.pd_restarts;
            peer_quarantines = s.Nyx_peer.Peer_driver.pd_quarantines;
            peer_backoff_ns = s.Nyx_peer.Peer_driver.pd_backoff_ns;
          })
        (Executor.peer_driver st.exec);
  }

let trace_campaign_begin st =
  if Nyx_obs.Trace.on () then
    Nyx_obs.Trace.span_begin ~vns:(now st) "campaign"
      [
        ("target", Nyx_obs.Trace.Str (Executor.target_name st.exec));
        ("fuzzer", Nyx_obs.Trace.Str (Policy.name st.cfg.policy));
        ("seed", Nyx_obs.Trace.Int st.cfg.seed);
      ]

(* ------------------------------------------------------------------ *)
(* Stepped instances: the resumable unit a shared-corpus fleet drives.
   [start] boots a campaign and runs the seed programs; [step] advances
   the main loop until the virtual clock reaches a sync barrier (or the
   budget); between steps the fleet drains exports and feeds imports;
   [finalize] produces the ordinary campaign result. [run] is exactly
   start + step-to-infinity + finalize, so the unstepped path is
   byte-identical to the historical one. *)

type inst = { st : state; wall0 : float }

let start ?seeds ?custom ?peer ?peer_faults ?(profile = false) ?faults
    ?checkpoint ?(collect_exports = false) cfg entry =
  let wall0 = Nyx_parallel.Wall.now_s () in
  let spec = net_spec () in
  let rng = Nyx_sim.Rng.create cfg.seed in
  let layout_cookie = Nyx_sim.Rng.int rng 1_000_000 in
  let prof = if profile then Some (Nyx_obs.Profile.create ()) else None in
  let exec =
    Executor.create ~asan:cfg.asan ~layout_cookie ?custom ?peer ?profile:prof
      ~net_spec:spec entry.Registry.target
  in
  let policy = Policy.create cfg.policy (Nyx_sim.Rng.split rng) in
  let mut_rng = Nyx_sim.Rng.split rng in
  (* Engine construction is pure (no RNG draws, no clock charges): the
     typed engine's analysis passes are static, so arming it changes
     nothing about the draw sequence until the first selection draw. *)
  let engine =
    Engines.create ~weights:cfg.mutator_weights cfg.engine
      spec.Nyx_spec.Net_spec.spec
  in
  (* Fault plan: [~faults] wins, else NYX_FAULTS; [~peer_faults] items
     (peer encoder sites) are appended. Its rng split happens ONLY when a
     plan with at least one non-zero rate is armed, so fault-free runs —
     including peer campaigns with every peer rate at zero — keep the
     historical draw sequence (golden results stay byte-identical). *)
  let plan =
    let base =
      match faults with Some _ -> faults | None -> Nyx_resilience.Plan.of_env ()
    in
    let merged =
      match (base, peer_faults) with
      | None, None -> None
      | Some a, None -> Some a
      | None, Some b -> Some b
      | Some a, Some b -> Some (a @ b)
    in
    match merged with
    | None -> None
    | Some sp when Nyx_resilience.Plan.spec_to_string sp = "" -> None
    | Some sp ->
      let p = Nyx_resilience.Plan.create sp (Nyx_sim.Rng.split rng) in
      Executor.arm_faults exec p;
      Some p
  in
  (* Seed the corpus: peer mode seeds with the script's canned honest
     sessions (action-selector payloads), bytecode mode with the
     target's raw packet seeds. *)
  let seed_programs =
    match seeds with
    | Some s -> s
    | None -> (
      match peer with
      | Some script -> Nyx_peer.Peer_script.seed_programs script spec
      | None -> make_seeds entry spec)
  in
  (* Dictionary: the target's shipped tokens plus AFL-style auto-extraction
     from the seeds. *)
  let dict =
    Nyx_spec.Auto_dict.merge
      (List.map Bytes.of_string entry.Registry.target.Target.info.Target.dict)
      (Nyx_spec.Auto_dict.extract seed_programs)
  in
  (* The input-length cap scales with the seeds: protocols with long
     message sequences (Mario levels, IPC sessions) need room beyond the
     default. *)
  let max_ops =
    List.fold_left
      (fun acc p -> max acc (2 * Array.length p.Nyx_spec.Program.ops))
      24 seed_programs
  in
  let st =
    {
      cfg;
      exec;
      corpus = Corpus.create ();
      cumulative = Coverage.Cumulative.create ();
      timeline = Nyx_sim.Stats.Timeline.create ();
      exec_timeline = Nyx_sim.Stats.Timeline.create ();
      rng;
      policy;
      mut_rng;
      engine;
      dict;
      max_ops;
      plan;
      (* off for custom handlers AND peer mode: both give packets
         semantics the static dataflow model cannot see *)
      static_prior = custom = None && peer = None;
      prior_udp =
        entry.Registry.target.Target.info.Target.proto = Nyx_netemu.Net.Udp;
      prof;
      ck = checkpoint;
      ck_last = Nyx_sim.Clock.now_ns (Executor.clock exec);
      ck_ordinal = 0;
      execs = 0;
      crashes = [];
      solved_ns = None;
      last_sample = 0;
      stop = false;
      collect_exports;
      pending_exports = [];
      until_ns = max_int;
    }
  in
  trace_campaign_begin st;
  List.iter
    (fun program ->
      if not (over_budget st) then begin
        let r = Executor.run_full exec program in
        ignore (triage st r program)
      end)
    seed_programs;
  (* Ensure the corpus is never empty: an empty one-connection program. *)
  if Corpus.size st.corpus = 0 then
    ignore
      (Corpus.add st.corpus
         ~program:(Nyx_spec.Net_spec.seed_of_packets spec [])
         ~exec_ns:0 ~discovered_ns:(now st) ~state_code:0);
  { st; wall0 }

let step inst ~until_ns =
  inst.st.until_ns <- until_ns;
  main_loop inst.st

let finished inst = over_budget inst.st
let clock_ns inst = now inst.st
let execs inst = inst.st.execs
let finalize inst = finish inst.st inst.wall0

(* At a sync barrier the instance is paused at the loop top (no open
   session, per-execution state about to be reset), which is exactly the
   state [capture] is valid in. *)
let checkpoint_now inst = capture inst.st

let drain_exports inst =
  let es = List.rev inst.st.pending_exports in
  inst.st.pending_exports <- [];
  es

(* Charge the virtual cost of judging [programs] candidates totalling
   [cells] saved hit cells against a shared map — what an exporting
   instance pays at a sync barrier for the fleet-wide novelty check. *)
let sync_charge inst ~programs ~cells =
  if programs > 0 || cells > 0 then
    let st = inst.st in
    prof_span st Nyx_obs.Profile.Corpus_sync (fun () ->
        Nyx_sim.Clock.advance (Executor.clock st.exec)
          ((programs * Nyx_sim.Cost.sync_judge_program)
          + (cells * Nyx_sim.Cost.sync_merge_per_cell)))

(* Import one peer export: judge it against this instance's own virgin
   map (O(saved cells), no re-execution) and adopt it into the corpus if
   it is coverage-novel here. All work is charged to the virtual clock
   under the [Corpus_sync] phase. Returns whether it was adopted. *)
let import inst (e : export) =
  let st = inst.st in
  prof_span st Nyx_obs.Profile.Corpus_sync (fun () ->
      Nyx_sim.Clock.advance (Executor.clock st.exec)
        (Nyx_sim.Cost.sync_judge_program
        + (e.ex_cells * Nyx_sim.Cost.sync_merge_per_cell));
      let novel = Coverage.Cumulative.merge_saved st.cumulative e.ex_cov in
      if novel then begin
        Nyx_sim.Clock.advance (Executor.clock st.exec)
          Nyx_sim.Cost.sync_import_program;
        ignore
          (Corpus.add st.corpus ~program:e.ex_program ~exec_ns:e.ex_exec_ns
             ~discovered_ns:(now st) ~state_code:e.ex_state_code);
        sample ~force:true st
      end;
      novel)

let run ?seeds ?custom ?peer ?peer_faults ?(profile = false) ?faults ?checkpoint
    cfg entry =
  let inst =
    start ?seeds ?custom ?peer ?peer_faults ~profile ?faults ?checkpoint cfg
      entry
  in
  step inst ~until_ns:max_int;
  finalize inst

let resume_inst ?custom ?(profile = false) ?checkpoint
    ?(collect_exports = false) (ckpt : Checkpoint.t) entry =
  let wall0 = Nyx_parallel.Wall.now_s () in
  let target_name = entry.Registry.target.Target.info.Target.name in
  if ckpt.Checkpoint.c_target <> target_name then
    invalid_arg
      (Printf.sprintf "Campaign.resume: checkpoint is for target %S, not %S"
         ckpt.Checkpoint.c_target target_name);
  let policy_kind =
    match Policy.of_name ckpt.Checkpoint.c_policy with
    | Ok k -> k
    | Error m -> invalid_arg ("Campaign.resume: " ^ m)
  in
  let engine_kind =
    match Engines.of_name ckpt.Checkpoint.c_mut_engine with
    | Ok k -> k
    | Error m -> invalid_arg ("Campaign.resume: " ^ m)
  in
  let cfg =
    {
      policy = policy_kind;
      budget_ns = ckpt.Checkpoint.c_budget_ns;
      max_execs = ckpt.Checkpoint.c_max_execs;
      seed = ckpt.Checkpoint.c_seed;
      asan = ckpt.Checkpoint.c_asan;
      stop_on_solve = ckpt.Checkpoint.c_stop_on_solve;
      trim = ckpt.Checkpoint.c_trim;
      sample_interval_ns = ckpt.Checkpoint.c_sample_interval_ns;
      engine = engine_kind;
      mutator_weights =
        List.map
          (fun (n, bits) -> (n, Int64.float_of_bits bits))
          ckpt.Checkpoint.c_mut_weights;
    }
  in
  let spec = net_spec () in
  let rng = Nyx_sim.Rng.create cfg.seed in
  (* Same draw as the original run: the layout cookie must match so the
     re-boot reproduces the original guest layout bit-for-bit. *)
  let layout_cookie = Nyx_sim.Rng.int rng 1_000_000 in
  let prof = if profile then Some (Nyx_obs.Profile.create ()) else None in
  (* Peer mode is inferred from the checkpoint (the c_peer field is Some
     exactly when the original campaign ran with a peer script), so
     resumers never need to re-supply the mode. *)
  let peer =
    match ckpt.Checkpoint.c_peer with
    | None -> None
    | Some _ -> (
      match Nyx_peer.Peer_script.find ckpt.Checkpoint.c_target with
      | Some script -> Some script
      | None ->
        invalid_arg
          (Printf.sprintf
             "Campaign.resume: checkpoint has peer state but target %S has no \
              peer script"
             ckpt.Checkpoint.c_target))
  in
  let exec =
    Executor.create ~asan:cfg.asan ~layout_cookie ?custom ?peer ?profile:prof
      ~net_spec:spec entry.Registry.target
  in
  (match (ckpt.Checkpoint.c_peer, Executor.peer_driver exec) with
  | Some s, Some d -> Nyx_peer.Peer_driver.restore_state d s
  | _ -> ());
  (match (prof, ckpt.Checkpoint.c_profile) with
  | Some p, Some s -> Nyx_obs.Profile.restore_state p s
  | _ -> ());
  (* Dummy-seeded RNGs below are immediately overwritten via set_state:
     only the restored states matter, never the creation seeds. *)
  Nyx_sim.Rng.set_state rng ckpt.Checkpoint.c_sched_rng;
  let policy = Policy.create cfg.policy (Nyx_sim.Rng.create 0) in
  Policy.restore_state policy ckpt.Checkpoint.c_policy_state;
  let mut_rng = Nyx_sim.Rng.create 0 in
  Nyx_sim.Rng.set_state mut_rng ckpt.Checkpoint.c_mut_rng;
  let engine =
    Engines.create ~weights:cfg.mutator_weights cfg.engine
      spec.Nyx_spec.Net_spec.spec
  in
  Nyx_spec.Mutation_engine.restore_state engine ckpt.Checkpoint.c_mut_state;
  let plan =
    match ckpt.Checkpoint.c_faults with
    | None -> None
    | Some (spec_str, pstate) ->
      let sp =
        match Nyx_resilience.Plan.parse_spec spec_str with
        | Ok sp -> sp
        | Error m -> invalid_arg ("Campaign.resume: stored fault spec: " ^ m)
      in
      let p = Nyx_resilience.Plan.create sp (Nyx_sim.Rng.create 0) in
      Nyx_resilience.Plan.restore_state p pstate;
      Executor.arm_faults exec p;
      Some p
  in
  (* Rebuild the corpus oldest-first so ids re-assign to their original
     values (Corpus.add numbers sequentially). *)
  let corpus = Corpus.create () in
  List.iter
    (fun (e : Checkpoint.corpus_entry) ->
      let program =
        match
          Nyx_spec.Program.parse spec.Nyx_spec.Net_spec.spec
            e.Checkpoint.ce_program
        with
        | Ok p -> p
        | Error m -> invalid_arg ("Campaign.resume: corpus entry: " ^ m)
      in
      ignore
        (Corpus.add corpus ~program ~exec_ns:e.Checkpoint.ce_exec_ns
           ~discovered_ns:e.Checkpoint.ce_discovered_ns
           ~state_code:e.Checkpoint.ce_state_code))
    ckpt.Checkpoint.c_corpus;
  let cumulative = Coverage.Cumulative.create () in
  Coverage.Cumulative.load_state cumulative ckpt.Checkpoint.c_virgin;
  let timeline = Nyx_sim.Stats.Timeline.create () in
  List.iter
    (fun (t, bits) ->
      Nyx_sim.Stats.Timeline.record timeline t (Int64.float_of_bits bits))
    ckpt.Checkpoint.c_timeline;
  let exec_timeline = Nyx_sim.Stats.Timeline.create () in
  List.iter
    (fun (t, bits) ->
      Nyx_sim.Stats.Timeline.record exec_timeline t (Int64.float_of_bits bits))
    ckpt.Checkpoint.c_exec_timeline;
  let crashes =
    List.map
      (fun (c : Checkpoint.crash) ->
        {
          Report.kind = c.Checkpoint.cr_kind;
          detail = c.Checkpoint.cr_detail;
          found_ns = c.Checkpoint.cr_found_ns;
          found_exec = c.Checkpoint.cr_found_exec;
          input = c.Checkpoint.cr_input;
        })
      ckpt.Checkpoint.c_crashes
  in
  Executor.engine_restore_checkpoint exec ckpt.Checkpoint.c_engine;
  (* Boot charged its costs onto the fresh clock; jump to the campaign's
     checkpointed virtual time, which already accounts for them. *)
  Nyx_sim.Clock.set_ns (Executor.clock exec) ckpt.Checkpoint.c_clock_ns;
  let st =
    {
      cfg;
      exec;
      corpus;
      cumulative;
      timeline;
      exec_timeline;
      rng;
      policy;
      mut_rng;
      engine;
      dict = ckpt.Checkpoint.c_dict;
      max_ops = ckpt.Checkpoint.c_max_ops;
      plan;
      static_prior = custom = None && peer = None;
      prior_udp =
        entry.Registry.target.Target.info.Target.proto = Nyx_netemu.Net.Udp;
      prof;
      ck = checkpoint;
      ck_last = ckpt.Checkpoint.c_clock_ns;
      ck_ordinal = 0;
      execs = ckpt.Checkpoint.c_execs;
      crashes;
      solved_ns = ckpt.Checkpoint.c_solved_ns;
      last_sample = ckpt.Checkpoint.c_last_sample;
      stop = false;
      collect_exports;
      pending_exports = [];
      until_ns = max_int;
    }
  in
  trace_campaign_begin st;
  { st; wall0 }

let resume ?custom ?(profile = false) ?checkpoint (ckpt : Checkpoint.t) entry =
  let inst = resume_inst ?custom ~profile ?checkpoint ckpt entry in
  step inst ~until_ns:max_int;
  finalize inst

let median_result results =
  match results with
  | [] -> invalid_arg "Campaign.median_result: no results"
  | _ ->
    let sorted =
      List.sort
        (fun a b -> compare a.Report.final_edges b.Report.final_edges)
        results
    in
    List.nth sorted (List.length sorted / 2)
