(** The Nyx-Net fuzzing campaign (the main loop of the system).

    Seeds the corpus from the target's canned traffic via the PCAP import
    pipeline, then repeatedly schedules an input, lets the snapshot
    placement policy choose where to snapshot, and runs
    {!Policy.reuse_count} mutated test cases against that snapshot before
    moving on. Coverage novelty grows the corpus; crashes are
    deduplicated by kind. All times are virtual. *)

type config = {
  policy : Policy.kind;
  budget_ns : int;
  max_execs : int;
  seed : int;
  asan : bool;
  stop_on_solve : bool;
  trim : bool;
      (** AFL-style queue-entry trimming: new corpus entries are truncated
          to the shortest prefix with identical coverage, so snapshot
          placement concentrates on the live part of long inputs (decisive
          on long message sequences such as deep Mario levels). Off by
          default. *)
  sample_interval_ns : int;
}

val default_config : config
(** 30 virtual seconds, 200k execs max, seed 1, no ASan. *)

val run :
  ?seeds:Nyx_spec.Program.t list ->
  ?custom:Op_handlers.custom_handler ->
  ?profile:bool ->
  config ->
  Nyx_targets.Registry.entry ->
  Report.campaign_result
(** [seeds] overrides the registry entry's canned seed programs (they must
    be built against a {!Nyx_spec.Net_spec.create} spec compatible with
    the internal one: use [make_seeds]).

    [profile] (default false) attaches a {!Nyx_obs.Profile.t} to the
    executor and fills the result's [phase_profile] with the per-phase
    virtual-time breakdown. Profiling is observational: every other
    result field is bit-identical with it on or off. *)

val make_seeds :
  Nyx_targets.Registry.entry -> Nyx_spec.Net_spec.t -> Nyx_spec.Program.t list

val net_spec : unit -> Nyx_spec.Net_spec.t
(** The spec campaigns use (raw packets, Listing 1-style). *)

val median_result : Report.campaign_result list -> Report.campaign_result
(** The run with median final coverage (ties broken by earlier time) —
    how multi-run cells of Table 2 are aggregated. *)
