(** The Nyx-Net fuzzing campaign (the main loop of the system).

    Seeds the corpus from the target's canned traffic via the PCAP import
    pipeline, then repeatedly schedules an input, lets the snapshot
    placement policy choose where to snapshot, and runs
    {!Policy.reuse_count} mutated test cases against that snapshot before
    moving on. Coverage novelty grows the corpus; crashes are
    deduplicated by kind. All times are virtual. *)

type config = {
  policy : Policy.kind;
  budget_ns : int;
  max_execs : int;
  seed : int;
  asan : bool;
  stop_on_solve : bool;
  trim : bool;
      (** AFL-style queue-entry trimming: new corpus entries are truncated
          to the shortest prefix with identical coverage, so snapshot
          placement concentrates on the live part of long inputs (decisive
          on long message sequences such as deep Mario levels). Off by
          default. *)
  sample_interval_ns : int;
  engine : Engines.kind;
      (** mutation engine (default [Havoc]). The havoc engine hosts a
          single mutator and therefore makes no selection draw — its
          candidate stream, and every golden result, is byte-identical
          to the pre-engine code. [Typed] adds typestate splicing and
          spec-driven generation with EWMA coverage-credit weighting. *)
  mutator_weights : (string * float) list;
      (** per-mutator base-weight overrides by name (CLI
          [--mutator-weights]); empty means engine defaults.
          Unknown names raise [Invalid_argument] at campaign start. *)
}

val default_config : config
(** 30 virtual seconds, 200k execs max, seed 1, no ASan, havoc engine. *)

(** {2 Crash-safe checkpointing} *)

type checkpoint_cfg
(** Periodic checkpoint policy: every [interval_ns] of virtual time the
    campaign serializes its deterministic state (corpus, cumulative
    coverage, RNG and clock state, fault plan, …) to [path] with an
    atomic tmp-then-rename write. A campaign killed at any point can then
    be continued with {!resume}, producing a final result bit-identical
    to the uninterrupted run ({!Report.same_deterministic}). *)

val checkpointing :
  ?on_write:(int -> unit) -> path:string -> interval_ns:int -> unit ->
  checkpoint_cfg
(** [on_write ordinal] runs after the [ordinal]-th (1-based) checkpoint
    has been durably written — the hook used by the kill-and-resume
    determinism test. @raise Invalid_argument if [interval_ns <= 0]. *)

val run :
  ?seeds:Nyx_spec.Program.t list ->
  ?custom:Op_handlers.custom_handler ->
  ?peer:Nyx_peer.Peer_script.t ->
  ?peer_faults:Nyx_resilience.Plan.spec ->
  ?profile:bool ->
  ?faults:Nyx_resilience.Plan.spec ->
  ?checkpoint:checkpoint_cfg ->
  config ->
  Nyx_targets.Registry.entry ->
  Report.campaign_result
(** [seeds] overrides the registry entry's canned seed programs (they must
    be built against a {!Nyx_spec.Net_spec.create} spec compatible with
    the internal one: use [make_seeds]).

    [peer] switches the campaign into peer mode ([--mode peer] on the
    CLI): instead of delivering program payloads as raw wire bytes, a
    scripted protocol-correct peer interprets each payload as an action
    selector plus an encoder-fault selector (see
    {!Nyx_peer.Peer_script.decode_payload}), speaks the protocol with the
    target, and recovers from desyncs under supervision (bounded backoff,
    session restart, quarantine after repeated failures — partial results,
    never campaign failure). The peer's session state lives in the
    snapshot aux area, so incremental snapshots capture mid-handshake
    peers. Seeds default to the script's honest sessions. The result's
    [peer] block reports action/fault/desync counters.

    [peer_faults] appends peer encoder-fault sites (see
    {!Nyx_peer.Peer_fault.parse_spec}) to the armed fault plan. With every
    rate at zero (or no spec at all) no plan is armed and the campaign's
    draw sequence — hence its result — is byte-identical to a fault-free
    peer run.

    [profile] (default false) attaches a {!Nyx_obs.Profile.t} to the
    executor and fills the result's [phase_profile] with the per-phase
    virtual-time breakdown. Profiling is observational: every other
    result field is bit-identical with it on or off.

    [faults] arms a deterministic fault-injection plan (overriding the
    [NYX_FAULTS] environment variable, which is consulted otherwise —
    see {!Nyx_resilience.Plan.of_env}). The plan's RNG is split from the
    campaign RNG only when a plan is armed, so fault-free runs keep the
    historical draw sequence and golden results stay byte-identical.
    When armed, the result's [resilience] block reports injected /
    recovered / aborted fault counts.

    [checkpoint] enables periodic crash-safe checkpointing (see
    {!checkpointing}). Checkpoint writes are observational: they advance
    no virtual time and draw no randomness, so a checkpointed run's
    result is bit-identical to an uncheckpointed one. *)

val resume :
  ?custom:Op_handlers.custom_handler ->
  ?profile:bool ->
  ?checkpoint:checkpoint_cfg ->
  Checkpoint.t ->
  Nyx_targets.Registry.entry ->
  Report.campaign_result
(** Continue a campaign from a checkpoint (typically
    {!Checkpoint.load}ed from disk after a crash or kill). The target is
    re-booted — deterministic given the checkpointed seed — and every
    RNG, the virtual clock, the corpus, cumulative coverage, crash log
    and snapshot-engine state are restored, after which the main loop
    continues exactly as the original run would have: the final result
    satisfies {!Report.same_deterministic} against the uninterrupted
    run's. [custom] must be the same handler the original run used.
    Peer mode is inferred from the checkpoint: when it carries peer
    counters the target's script is re-attached and the counters
    restored, so resumers never pass a peer flag.

    @raise Invalid_argument if the checkpoint's target does not match
    [entry], or the checkpoint stores an unknown policy/fault spec. *)

(** {2 Stepped instances (fleet corpus sync)}

    A shared-corpus fleet ({!Fleet.run} with sync epochs) drives
    campaigns through this resumable API instead of {!run}: [start] boots
    the campaign and executes the seed programs, each [step] advances the
    main loop until the virtual clock reaches the given barrier (or the
    budget/exec cap), and between steps the fleet drains coverage-novel
    {!export}s and feeds peer exports back via {!import}. [run] is
    exactly [start] + one step to infinity + [finalize], so the unstepped
    path is byte-identical to the historical one.

    Steps are deterministic: an instance paused at a barrier is at the
    main-loop top (no open snapshot session), so {!checkpoint_now} is
    valid there and stepping never alters the executed schedule except by
    where it pauses. *)

type inst
(** A live, pausable campaign. Owned by one domain at a time; the fleet
    hands an instance to at most one worker per epoch. *)

type export = {
  ex_program : Nyx_spec.Program.t;
      (** the stored (post-trim, snapshot-stripped) corpus entry *)
  ex_cov : Nyx_targets.Coverage.checkpoint;
      (** the discovering execution's coverage map, for O(touched)
          novelty judging without re-execution *)
  ex_cells : int;  (** saved hit cells — the sync merge cost driver *)
  ex_exec_ns : int;
  ex_state_code : int;
}
(** A program that grew the exporting instance's corpus, with enough
    coverage evidence for peers to judge it. *)

val start :
  ?seeds:Nyx_spec.Program.t list ->
  ?custom:Op_handlers.custom_handler ->
  ?peer:Nyx_peer.Peer_script.t ->
  ?peer_faults:Nyx_resilience.Plan.spec ->
  ?profile:bool ->
  ?faults:Nyx_resilience.Plan.spec ->
  ?checkpoint:checkpoint_cfg ->
  ?collect_exports:bool ->
  config ->
  Nyx_targets.Registry.entry ->
  inst
(** Boot a campaign and execute its seed programs (everything {!run}
    does before entering the main loop). [collect_exports] (default
    false) arms export capture: every coverage-novel corpus addition is
    also queued for {!drain_exports}. *)

val step : inst -> until_ns:int -> unit
(** Advance the main loop until the virtual clock reaches [until_ns] or
    the campaign is {!finished}. [step ~until_ns:max_int] runs to the
    budget — the unstepped path. *)

val finished : inst -> bool
(** The budget or exec cap is exhausted (or stop-on-solve fired):
    further steps are no-ops. *)

val clock_ns : inst -> int
(** The instance's virtual clock. *)

val execs : inst -> int

val finalize : inst -> Report.campaign_result
(** Freeze the result (identical to what {!run} would have returned for
    the same step schedule). Call once, after the last step. *)

val drain_exports : inst -> export list
(** Remove and return the exports queued since the last drain, in
    discovery order. *)

val import : inst -> export -> bool
(** Judge a peer export against this instance's virgin map (O(saved
    cells), no re-execution) and adopt it into the corpus if novel here.
    Charges deterministic virtual time under the [Corpus_sync] profile
    phase. Returns whether it was adopted. *)

val sync_charge : inst -> programs:int -> cells:int -> unit
(** Charge the exporting side's share of a sync barrier: judging
    [programs] candidates totalling [cells] saved hit cells against the
    fleet map. *)

val checkpoint_now : inst -> Checkpoint.t
(** Capture a checkpoint at a sync barrier (the instance is paused at
    the main-loop top, where captures are valid). *)

val resume_inst :
  ?custom:Op_handlers.custom_handler ->
  ?profile:bool ->
  ?checkpoint:checkpoint_cfg ->
  ?collect_exports:bool ->
  Checkpoint.t ->
  Nyx_targets.Registry.entry ->
  inst
(** {!resume}, stopped before the main loop: the fleet's kill+resume
    path rebuilds each instance with this and continues stepping.
    @raise Invalid_argument as {!resume}. *)

val make_seeds :
  Nyx_targets.Registry.entry -> Nyx_spec.Net_spec.t -> Nyx_spec.Program.t list

val net_spec : unit -> Nyx_spec.Net_spec.t
(** The spec campaigns use (raw packets, Listing 1-style). *)

val median_result : Report.campaign_result list -> Report.campaign_result
(** The run with median final coverage (ties broken by earlier time) —
    how multi-run cells of Table 2 are aggregated. *)
