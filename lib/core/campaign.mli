(** The Nyx-Net fuzzing campaign (the main loop of the system).

    Seeds the corpus from the target's canned traffic via the PCAP import
    pipeline, then repeatedly schedules an input, lets the snapshot
    placement policy choose where to snapshot, and runs
    {!Policy.reuse_count} mutated test cases against that snapshot before
    moving on. Coverage novelty grows the corpus; crashes are
    deduplicated by kind. All times are virtual. *)

type config = {
  policy : Policy.kind;
  budget_ns : int;
  max_execs : int;
  seed : int;
  asan : bool;
  stop_on_solve : bool;
  trim : bool;
      (** AFL-style queue-entry trimming: new corpus entries are truncated
          to the shortest prefix with identical coverage, so snapshot
          placement concentrates on the live part of long inputs (decisive
          on long message sequences such as deep Mario levels). Off by
          default. *)
  sample_interval_ns : int;
}

val default_config : config
(** 30 virtual seconds, 200k execs max, seed 1, no ASan. *)

(** {2 Crash-safe checkpointing} *)

type checkpoint_cfg
(** Periodic checkpoint policy: every [interval_ns] of virtual time the
    campaign serializes its deterministic state (corpus, cumulative
    coverage, RNG and clock state, fault plan, …) to [path] with an
    atomic tmp-then-rename write. A campaign killed at any point can then
    be continued with {!resume}, producing a final result bit-identical
    to the uninterrupted run ({!Report.same_deterministic}). *)

val checkpointing :
  ?on_write:(int -> unit) -> path:string -> interval_ns:int -> unit ->
  checkpoint_cfg
(** [on_write ordinal] runs after the [ordinal]-th (1-based) checkpoint
    has been durably written — the hook used by the kill-and-resume
    determinism test. @raise Invalid_argument if [interval_ns <= 0]. *)

val run :
  ?seeds:Nyx_spec.Program.t list ->
  ?custom:Op_handlers.custom_handler ->
  ?profile:bool ->
  ?faults:Nyx_resilience.Plan.spec ->
  ?checkpoint:checkpoint_cfg ->
  config ->
  Nyx_targets.Registry.entry ->
  Report.campaign_result
(** [seeds] overrides the registry entry's canned seed programs (they must
    be built against a {!Nyx_spec.Net_spec.create} spec compatible with
    the internal one: use [make_seeds]).

    [profile] (default false) attaches a {!Nyx_obs.Profile.t} to the
    executor and fills the result's [phase_profile] with the per-phase
    virtual-time breakdown. Profiling is observational: every other
    result field is bit-identical with it on or off.

    [faults] arms a deterministic fault-injection plan (overriding the
    [NYX_FAULTS] environment variable, which is consulted otherwise —
    see {!Nyx_resilience.Plan.of_env}). The plan's RNG is split from the
    campaign RNG only when a plan is armed, so fault-free runs keep the
    historical draw sequence and golden results stay byte-identical.
    When armed, the result's [resilience] block reports injected /
    recovered / aborted fault counts.

    [checkpoint] enables periodic crash-safe checkpointing (see
    {!checkpointing}). Checkpoint writes are observational: they advance
    no virtual time and draw no randomness, so a checkpointed run's
    result is bit-identical to an uncheckpointed one. *)

val resume :
  ?custom:Op_handlers.custom_handler ->
  ?profile:bool ->
  ?checkpoint:checkpoint_cfg ->
  Checkpoint.t ->
  Nyx_targets.Registry.entry ->
  Report.campaign_result
(** Continue a campaign from a checkpoint (typically
    {!Checkpoint.load}ed from disk after a crash or kill). The target is
    re-booted — deterministic given the checkpointed seed — and every
    RNG, the virtual clock, the corpus, cumulative coverage, crash log
    and snapshot-engine state are restored, after which the main loop
    continues exactly as the original run would have: the final result
    satisfies {!Report.same_deterministic} against the uninterrupted
    run's. [custom] must be the same handler the original run used.

    @raise Invalid_argument if the checkpoint's target does not match
    [entry], or the checkpoint stores an unknown policy/fault spec. *)

val make_seeds :
  Nyx_targets.Registry.entry -> Nyx_spec.Net_spec.t -> Nyx_spec.Program.t list

val net_spec : unit -> Nyx_spec.Net_spec.t
(** The spec campaigns use (raw packets, Listing 1-style). *)

val median_result : Report.campaign_result list -> Report.campaign_result
(** The run with median final coverage (ties broken by earlier time) —
    how multi-run cells of Table 2 are aggregated. *)
