type outcome = {
  instances : int;
  first_solve_ns : int option;
  solves : int;
  total_execs : int;
}

let run ?(instances = 52) ~config entry =
  let results =
    List.init instances (fun i ->
        Campaign.run { config with Campaign.seed = config.Campaign.seed + (1000 * i) } entry)
  in
  let solve_times = List.filter_map (fun r -> r.Report.solved_ns) results in
  {
    instances;
    first_solve_ns =
      (match solve_times with
      | [] -> None
      | ts -> Some (List.fold_left min max_int ts));
    solves = List.length solve_times;
    total_execs = List.fold_left (fun acc r -> acc + r.Report.execs) 0 results;
  }
