(* §5.3 parallel fleets: N instances share an immutable root snapshot and
   differ only in their RNG seed. Each instance owns its virtual clock,
   VM and corpus, so instances fan out across domains (Nyx_parallel.Pool);
   results are merged in submission order, making the outcome identical
   whatever NYX_DOMAINS says.

   The supervisor (ISSUE: nyx_resilience): an instance that dies with an
   exception is restarted with the same config after a capped exponential
   virtual-time backoff, up to [max_restarts] retries; an instance that
   keeps dying is quarantined and the fleet reports partial results from
   the survivors instead of propagating Pool.Task_error. *)

type outcome = {
  instances : int;
  first_solve_ns : int option;
  solves : int;
  total_execs : int;
  restarts : int;
  quarantined : int;
  results : Report.campaign_result list;
  wall_s : float; (* real wall-clock for the whole fleet *)
}

let backoff_base_ns = 1_000_000_000
let backoff_cap_ns = 60_000_000_000

let exn_brief exn =
  match Printexc.to_string exn with
  | s when String.length s > 200 -> String.sub s 0 200 ^ "..."
  | s -> s

(* Run one instance under supervision. Never raises: the pool's
   cancel-on-first-error contract must not see instance failures.
   Returns (survivor result if any, restarts used, total backoff_ns). *)
let supervise ~max_restarts ~run_one idx cfg =
  let rec go attempt backoff_ns =
    match run_one cfg with
    | result -> (Some result, attempt, backoff_ns)
    | exception exn ->
      if attempt >= max_restarts then begin
        Printf.eprintf
          "nyx: fleet instance %d (seed %d) failed (%s); quarantined after %d \
           restarts\n\
           %!"
          idx cfg.Campaign.seed (exn_brief exn) attempt;
        (None, attempt, backoff_ns)
      end
      else begin
        let d =
          Nyx_resilience.Backoff.delay_ns ~base_ns:backoff_base_ns ~cap_ns:backoff_cap_ns
            ~attempt
        in
        Printf.eprintf
          "nyx: fleet instance %d (seed %d) failed (%s); restarting (attempt \
           %d/%d) after %d ns backoff\n\
           %!"
          idx cfg.Campaign.seed (exn_brief exn) (attempt + 1) max_restarts d;
        go (attempt + 1) (backoff_ns + d)
      end
  in
  go 0 0

(* Fold the supervisor's bookkeeping into the survivor's resilience
   block, so per-instance reports carry their own restart history. *)
let amend_result (r : Report.campaign_result) ~restarts ~backoff_ns =
  if restarts = 0 then r
  else
    let base =
      match r.Report.resilience with
      | Some b -> b
      | None ->
        {
          Report.faults_injected = 0;
          faults_recovered = 0;
          faults_aborted = 0;
          restarts = 0;
          quarantined = false;
          backoff_ns = 0;
        }
    in
    { r with Report.resilience = Some { base with Report.restarts; backoff_ns } }

let run ?(instances = 52) ?domains ?(max_restarts = 3) ?run_instance ~config
    entry =
  let t0 = Nyx_parallel.Wall.now_s () in
  if Nyx_obs.Trace.on () then
    Nyx_obs.Trace.span_begin "fleet"
      [
        ( "target",
          Nyx_obs.Trace.Str
            entry.Nyx_targets.Registry.target.Nyx_targets.Target.info
              .Nyx_targets.Target.name );
        ("instances", Nyx_obs.Trace.Int instances);
      ];
  let run_one =
    match run_instance with
    | Some f -> f
    | None -> fun cfg -> Campaign.run cfg entry
  in
  let configs =
    List.init instances (fun i ->
        (i, { config with Campaign.seed = config.Campaign.seed + (1000 * i) }))
  in
  let raw =
    Nyx_parallel.Pool.map_list ?domains
      (fun (i, cfg) -> supervise ~max_restarts ~run_one i cfg)
      configs
  in
  let restarts = List.fold_left (fun acc (_, r, _) -> acc + r) 0 raw in
  let quarantined =
    List.fold_left
      (fun acc (res, _, _) -> if res = None then acc + 1 else acc)
      0 raw
  in
  let results =
    List.filter_map
      (fun (res, restarts, backoff_ns) ->
        Option.map (amend_result ~restarts ~backoff_ns) res)
      raw
  in
  let solve_times = List.filter_map (fun r -> r.Report.solved_ns) results in
  let outcome =
    {
      instances;
      first_solve_ns =
        (match solve_times with
        | [] -> None
        | ts -> Some (List.fold_left min max_int ts));
      solves = List.length solve_times;
      total_execs = List.fold_left (fun acc r -> acc + r.Report.execs) 0 results;
      restarts;
      quarantined;
      results;
      wall_s = Nyx_parallel.Wall.now_s () -. t0;
    }
  in
  if Nyx_obs.Trace.on () then begin
    Nyx_obs.Trace.span_end "fleet"
      [
        ("solves", Nyx_obs.Trace.Int outcome.solves);
        ("total_execs", Nyx_obs.Trace.Int outcome.total_execs);
        ( "first_solve_ns",
          Nyx_obs.Trace.Int (Option.value ~default:(-1) outcome.first_solve_ns) );
        ("restarts", Nyx_obs.Trace.Int outcome.restarts);
        ("quarantined", Nyx_obs.Trace.Int outcome.quarantined);
      ];
    (* Worker-domain buffers flushed at their campaign span ends; make the
       fleet's own events durable too. *)
    Nyx_obs.Trace.flush ()
  end;
  outcome
