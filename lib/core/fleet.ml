(* §5.3 parallel fleets: N instances share an immutable root snapshot and
   differ only in their RNG seed. Each instance owns its virtual clock,
   VM and corpus, so instances fan out across domains (Nyx_parallel.Pool);
   results are merged in submission order, making the outcome identical
   whatever NYX_DOMAINS says. *)

type outcome = {
  instances : int;
  first_solve_ns : int option;
  solves : int;
  total_execs : int;
  wall_s : float; (* real wall-clock for the whole fleet *)
}

let run ?(instances = 52) ?domains ~config entry =
  let t0 = Nyx_parallel.Wall.now_s () in
  let configs =
    List.init instances (fun i ->
        { config with Campaign.seed = config.Campaign.seed + (1000 * i) })
  in
  let results =
    Nyx_parallel.Pool.map_list ?domains (fun cfg -> Campaign.run cfg entry) configs
  in
  let solve_times = List.filter_map (fun r -> r.Report.solved_ns) results in
  {
    instances;
    first_solve_ns =
      (match solve_times with
      | [] -> None
      | ts -> Some (List.fold_left min max_int ts));
    solves = List.length solve_times;
    total_execs = List.fold_left (fun acc r -> acc + r.Report.execs) 0 results;
    wall_s = Nyx_parallel.Wall.now_s () -. t0;
  }
