(* §5.3 parallel fleets: N instances share an immutable root snapshot and
   differ only in their RNG seed. Each instance owns its virtual clock,
   VM and corpus, so instances fan out across domains (Nyx_parallel.Pool);
   results are merged in submission order, making the outcome identical
   whatever NYX_DOMAINS says. *)

type outcome = {
  instances : int;
  first_solve_ns : int option;
  solves : int;
  total_execs : int;
  wall_s : float; (* real wall-clock for the whole fleet *)
}

let run ?(instances = 52) ?domains ~config entry =
  let t0 = Nyx_parallel.Wall.now_s () in
  if Nyx_obs.Trace.on () then
    Nyx_obs.Trace.span_begin "fleet"
      [
        ( "target",
          Nyx_obs.Trace.Str
            entry.Nyx_targets.Registry.target.Nyx_targets.Target.info
              .Nyx_targets.Target.name );
        ("instances", Nyx_obs.Trace.Int instances);
      ];
  let configs =
    List.init instances (fun i ->
        { config with Campaign.seed = config.Campaign.seed + (1000 * i) })
  in
  let results =
    Nyx_parallel.Pool.map_list ?domains (fun cfg -> Campaign.run cfg entry) configs
  in
  let solve_times = List.filter_map (fun r -> r.Report.solved_ns) results in
  let outcome =
    {
      instances;
      first_solve_ns =
        (match solve_times with
        | [] -> None
        | ts -> Some (List.fold_left min max_int ts));
      solves = List.length solve_times;
      total_execs = List.fold_left (fun acc r -> acc + r.Report.execs) 0 results;
      wall_s = Nyx_parallel.Wall.now_s () -. t0;
    }
  in
  if Nyx_obs.Trace.on () then begin
    Nyx_obs.Trace.span_end "fleet"
      [
        ("solves", Nyx_obs.Trace.Int outcome.solves);
        ("total_execs", Nyx_obs.Trace.Int outcome.total_execs);
        ( "first_solve_ns",
          Nyx_obs.Trace.Int (Option.value ~default:(-1) outcome.first_solve_ns) );
      ];
    (* Worker-domain buffers flushed at their campaign span ends; make the
       fleet's own events durable too. *)
    Nyx_obs.Trace.flush ()
  end;
  outcome
