(* §5.3 parallel fleets: N instances share an immutable root snapshot and
   differ only in their RNG seed. Each instance owns its virtual clock,
   VM and corpus, so instances fan out across domains (Nyx_parallel.Pool);
   results are merged in submission order, making the outcome identical
   whatever NYX_DOMAINS says.

   Two modes:

   - Independent (sync off, the historical default): instances never
     communicate. The supervisor (ISSUE: nyx_resilience) restarts an
     instance that dies with an exception after a capped exponential
     virtual-time backoff, up to [max_restarts] retries, then quarantines
     it and reports partial results.

   - Shared-corpus (ISSUE: corpus-sync epochs): instances run their own
     campaigns but pause at periodic virtual-clock barriers (every
     [sync_ns]); at each barrier, in instance-index order, the
     coordinator drains the programs that grew each instance's corpus,
     judges them against a fleet-wide virgin map via the O(touched)
     saved-journal merge, and rebroadcasts the fleet-novel ones to every
     other live instance. All cross-instance communication happens at
     barriers on the coordinator, so the fleet is bit-reproducible at any
     NYX_DOMAINS and any Pool batch size. *)

module Coverage = Nyx_targets.Coverage
module Pool = Nyx_parallel.Pool

type sync_epoch = {
  se_epoch : int;
  se_at_ns : int;
  se_exports : int;
  se_broadcast : int;
  se_imports : int;
  se_union_edges : int;
  se_total_execs : int;
}

type outcome = {
  instances : int;
  first_solve_ns : int option;
  solves : int;
  total_execs : int;
  restarts : int;
  quarantined : int;
  results : Report.campaign_result list;
  wall_s : float; (* real wall-clock for the whole fleet *)
  domains : int;
  union_edges : int option;
  sync_epochs : sync_epoch list;
  work_ns : int;
  makespan_ns : int;
}

(* Mirror of Pool.resolve: the worker count the pool will actually use,
   needed up front for the makespan model and the outcome report. *)
let resolved_domains = function
  | Some d when d >= 1 -> min d Pool.max_domains
  | Some _ -> 1
  | None -> Pool.default_domains ()

(* Simulated fleet makespan: greedy list-scheduling of per-instance
   virtual-time segments onto [workers] identical workers (longest-
   processing-time order is NOT used — segments arrive in instance order,
   matching what a real dispatcher sees). With one worker this is the
   serial sum; the deterministic speedup the bench gates on is
   work_ns / makespan_ns, which honestly degrades under imbalance
   (stragglers, early finishers, tiny epochs). *)
let parallel_span ~workers segs =
  if workers <= 1 then List.fold_left ( + ) 0 segs
  else begin
    let load = Array.make workers 0 in
    List.iter
      (fun s ->
        let m = ref 0 in
        for w = 1 to workers - 1 do
          if load.(w) < load.(!m) then m := w
        done;
        load.(!m) <- load.(!m) + s)
      segs;
    Array.fold_left max 0 load
  end

let exn_brief exn =
  match Printexc.to_string exn with
  | s when String.length s > 200 -> String.sub s 0 200 ^ "..."
  | s -> s

let derived_configs ~instances ~config =
  List.init instances (fun i ->
      (i, { config with Campaign.seed = config.Campaign.seed + (1000 * i) }))

let trace_fleet_begin ~instances ~sync_ns entry =
  if Nyx_obs.Trace.on () then
    Nyx_obs.Trace.span_begin "fleet"
      [
        ( "target",
          Nyx_obs.Trace.Str
            entry.Nyx_targets.Registry.target.Nyx_targets.Target.info
              .Nyx_targets.Target.name );
        ("instances", Nyx_obs.Trace.Int instances);
        ("sync_ns", Nyx_obs.Trace.Int (Option.value ~default:0 sync_ns));
      ]

let trace_fleet_end outcome =
  if Nyx_obs.Trace.on () then begin
    Nyx_obs.Trace.span_end "fleet"
      [
        ("solves", Nyx_obs.Trace.Int outcome.solves);
        ("total_execs", Nyx_obs.Trace.Int outcome.total_execs);
        ( "first_solve_ns",
          Nyx_obs.Trace.Int (Option.value ~default:(-1) outcome.first_solve_ns) );
        ("restarts", Nyx_obs.Trace.Int outcome.restarts);
        ("quarantined", Nyx_obs.Trace.Int outcome.quarantined);
      ];
    (* Worker-domain buffers flushed at their campaign span ends; make the
       fleet's own events durable too. *)
    Nyx_obs.Trace.flush ()
  end

(* ------------------------------------------------------------------ *)
(* Independent mode (sync off): the historical supervised fleet.       *)

let backoff_base_ns = 1_000_000_000
let backoff_cap_ns = 60_000_000_000

(* Run one instance under supervision. Never raises: the pool's
   cancel-on-first-error contract must not see instance failures.
   Returns (survivor result if any, restarts used, total backoff_ns). *)
let supervise ~max_restarts ~run_one idx cfg =
  let rec go attempt backoff_ns =
    match run_one cfg with
    | result -> (Some result, attempt, backoff_ns)
    | exception exn ->
      if attempt >= max_restarts then begin
        Printf.eprintf
          "nyx: fleet instance %d (seed %d) failed (%s); quarantined after %d \
           restarts\n\
           %!"
          idx cfg.Campaign.seed (exn_brief exn) attempt;
        (None, attempt, backoff_ns)
      end
      else begin
        let d =
          Nyx_resilience.Backoff.delay_ns ~base_ns:backoff_base_ns ~cap_ns:backoff_cap_ns
            ~attempt
        in
        Printf.eprintf
          "nyx: fleet instance %d (seed %d) failed (%s); restarting (attempt \
           %d/%d) after %d ns backoff\n\
           %!"
          idx cfg.Campaign.seed (exn_brief exn) (attempt + 1) max_restarts d;
        go (attempt + 1) (backoff_ns + d)
      end
  in
  go 0 0

(* Fold the supervisor's bookkeeping into the survivor's resilience
   block, so per-instance reports carry their own restart history. *)
let amend_result (r : Report.campaign_result) ~restarts ~backoff_ns =
  if restarts = 0 then r
  else
    let base =
      match r.Report.resilience with
      | Some b -> b
      | None ->
        {
          Report.faults_injected = 0;
          faults_recovered = 0;
          faults_aborted = 0;
          restarts = 0;
          quarantined = false;
          backoff_ns = 0;
        }
    in
    { r with Report.resilience = Some { base with Report.restarts; backoff_ns } }

let run_independent ~instances ~workers ~max_restarts ~run_instance ~peer
    ~peer_faults ~profile ~config entry t0 =
  let run_one =
    match run_instance with
    | Some f -> f
    | None -> fun cfg -> Campaign.run ?peer ?peer_faults ~profile cfg entry
  in
  let raw =
    Pool.map_list ~domains:workers
      (fun (i, cfg) -> supervise ~max_restarts ~run_one i cfg)
      (derived_configs ~instances ~config)
  in
  let restarts = List.fold_left (fun acc (_, r, _) -> acc + r) 0 raw in
  let quarantined =
    List.fold_left
      (fun acc (res, _, _) -> if res = None then acc + 1 else acc)
      0 raw
  in
  let results =
    List.filter_map
      (fun (res, restarts, backoff_ns) ->
        Option.map (amend_result ~restarts ~backoff_ns) res)
      raw
  in
  let solve_times = List.filter_map (fun r -> r.Report.solved_ns) results in
  let segs = List.map (fun r -> r.Report.virtual_ns) results in
  {
    instances;
    first_solve_ns =
      (match solve_times with
      | [] -> None
      | ts -> Some (List.fold_left min max_int ts));
    solves = List.length solve_times;
    total_execs = List.fold_left (fun acc r -> acc + r.Report.execs) 0 results;
    restarts;
    quarantined;
    results;
    wall_s = Nyx_parallel.Wall.now_s () -. t0;
    domains = workers;
    union_edges = None;
    sync_epochs = [];
    work_ns = List.fold_left ( + ) 0 segs;
    makespan_ns = parallel_span ~workers segs;
  }

(* ------------------------------------------------------------------ *)
(* Shared-corpus mode: sync epochs on the virtual clock.               *)

type checkpoint_cfg = {
  fc_path : string;
  fc_every : int;  (* epochs between checkpoint writes *)
  fc_on_write : (int -> unit) option;
}

let checkpointing ?on_write ~path ~every_epochs () =
  if every_epochs <= 0 then
    invalid_arg "Fleet.checkpointing: every_epochs must be positive";
  { fc_path = path; fc_every = every_epochs; fc_on_write = on_write }

type slot = {
  idx : int;
  mutable inst : Campaign.inst option; (* None once quarantined *)
  mutable prev_ns : int; (* clock at the last segment accounting *)
}

type acc = {
  mutable epoch : int;
  mutable rows : sync_epoch list; (* newest first *)
  mutable work_ns : int;
  mutable makespan_ns : int;
  mutable ck_ordinal : int;
}

type sync_state = {
  slots : slot array;
  union : Coverage.Cumulative.t;
  acc : acc;
  sync_ns : int;
  sync_import : bool;
}

(* Fleet checkpoint codec: magic + flat big-endian int64 framing, one
   embedded Campaign checkpoint per live slot, written atomically. *)

let fleet_magic = "NYXFLT1"

let encode_fleet st : bytes =
  let b = Buffer.create 262_144 in
  let put v = Buffer.add_int64_be b (Int64.of_int v) in
  Buffer.add_string b fleet_magic;
  put st.sync_ns;
  put (if st.sync_import then 1 else 0);
  put st.acc.epoch;
  put st.acc.work_ns;
  put st.acc.makespan_ns;
  put st.acc.ck_ordinal;
  let um = Coverage.Cumulative.state_bytes st.union in
  put (Bytes.length um);
  Buffer.add_bytes b um;
  let rows = List.rev st.acc.rows in
  put (List.length rows);
  List.iter
    (fun r ->
      put r.se_epoch;
      put r.se_at_ns;
      put r.se_exports;
      put r.se_broadcast;
      put r.se_imports;
      put r.se_union_edges;
      put r.se_total_execs)
    rows;
  put (Array.length st.slots);
  Array.iter
    (fun s ->
      match s.inst with
      | None -> put 0
      | Some i ->
        put 1;
        put s.prev_ns;
        let ck = Checkpoint.encode (Campaign.checkpoint_now i) in
        put (Bytes.length ck);
        Buffer.add_bytes b ck)
    st.slots;
  Buffer.to_bytes b

type decoded_fleet = {
  d_sync_ns : int;
  d_sync_import : bool;
  d_acc : acc;
  d_virgin : bytes;
  d_slots : (int * Checkpoint.t) option array; (* prev_ns + checkpoint *)
}

let decode_fleet (buf : bytes) : (decoded_fleet, string) result =
  try
    let pos = ref 0 in
    let take n =
      let p = !pos in
      if p + n > Bytes.length buf then failwith "truncated";
      pos := p + n;
      p
    in
    let get () = Int64.to_int (Bytes.get_int64_be buf (take 8)) in
    let get_bytes n = Bytes.sub buf (take n) n in
    let m = Bytes.to_string (get_bytes (String.length fleet_magic)) in
    if m <> fleet_magic then failwith "bad magic";
    let d_sync_ns = get () in
    let d_sync_import = get () <> 0 in
    let epoch = get () in
    let work_ns = get () in
    let makespan_ns = get () in
    let ck_ordinal = get () in
    let um_len = get () in
    let d_virgin = get_bytes um_len in
    let n_rows = get () in
    let rows =
      List.init n_rows (fun _ ->
          let se_epoch = get () in
          let se_at_ns = get () in
          let se_exports = get () in
          let se_broadcast = get () in
          let se_imports = get () in
          let se_union_edges = get () in
          let se_total_execs = get () in
          {
            se_epoch;
            se_at_ns;
            se_exports;
            se_broadcast;
            se_imports;
            se_union_edges;
            se_total_execs;
          })
    in
    let n_slots = get () in
    let d_slots =
      Array.init n_slots (fun _ ->
          if get () = 0 then None
          else begin
            let prev_ns = get () in
            let len = get () in
            Some (prev_ns, Checkpoint.decode (get_bytes len))
          end)
    in
    Ok
      {
        d_sync_ns;
        d_sync_import;
        d_acc =
          {
            epoch;
            rows = List.rev rows;
            work_ns;
            makespan_ns;
            ck_ordinal;
          };
        d_virgin;
        d_slots;
      }
  with
  | Failure m -> Error ("fleet checkpoint: " ^ m)
  | Checkpoint.Corrupt m -> Error ("fleet checkpoint: " ^ m)
  | Invalid_argument _ -> Error "fleet checkpoint: truncated"

let write_fleet_checkpoint st ck =
  match Nyx_resilience.Atomic_io.write_file ck.fc_path (encode_fleet st) with
  | Ok () ->
    st.acc.ck_ordinal <- st.acc.ck_ordinal + 1;
    if Nyx_obs.Trace.on () then
      Nyx_obs.Trace.instant
        ~vns:(st.acc.epoch * st.sync_ns)
        "fleet-checkpoint"
        [
          ("ordinal", Nyx_obs.Trace.Int st.acc.ck_ordinal);
          ("epoch", Nyx_obs.Trace.Int st.acc.epoch);
        ];
    (match ck.fc_on_write with Some f -> f st.acc.ck_ordinal | None -> ())
  | Error m ->
    (* Checkpointing is a safety net, not a dependency: keep fuzzing. *)
    Printf.eprintf "nyx: fleet checkpoint write failed (%s); continuing\n%!" m

let slot_unfinished s =
  match s.inst with Some i -> not (Campaign.finished i) | None -> false

let any_unfinished st = Array.exists slot_unfinished st.slots

(* One sync barrier, sequentially on the coordinator in instance-index
   order: drain exports, judge them against the fleet union map, charge
   the exporters, rebroadcast fleet-novel programs to the other live
   instances. Returns the epoch's row. *)
let barrier st ~until =
  let n_exports = ref 0 in
  let n_imports = ref 0 in
  let broadcast = ref [] in
  Array.iter
    (fun s ->
      match s.inst with
      | None -> ()
      | Some i -> (
        match Campaign.drain_exports i with
        | [] -> ()
        | es ->
          let progs = ref 0 and cells = ref 0 in
          List.iter
            (fun (e : Campaign.export) ->
              incr progs;
              cells := !cells + e.Campaign.ex_cells;
              incr n_exports;
              if Coverage.Cumulative.merge_saved st.union e.Campaign.ex_cov
              then broadcast := (s.idx, e) :: !broadcast)
            es;
          (* The exporter pays for the fleet-map novelty judging of its
             own candidates; in observer mode (sync_import = false) the
             union merge is pure bookkeeping and charges nothing, so the
             observed fleet behaves exactly like a stepped independent
             one. *)
          if st.sync_import && not (Campaign.finished i) then
            Campaign.sync_charge i ~programs:!progs ~cells:!cells))
    st.slots;
  let broadcast = List.rev !broadcast in
  if st.sync_import then
    Array.iter
      (fun s ->
        match s.inst with
        | Some i when not (Campaign.finished i) ->
          List.iter
            (fun (j, e) ->
              if j <> s.idx && Campaign.import i e then incr n_imports)
            broadcast
        | _ -> ())
      st.slots;
  {
    se_epoch = st.acc.epoch;
    se_at_ns = until;
    se_exports = !n_exports;
    se_broadcast = List.length broadcast;
    se_imports = !n_imports;
    se_union_edges = Coverage.Cumulative.edge_count st.union;
    se_total_execs =
      Array.fold_left
        (fun t s ->
          match s.inst with Some i -> t + Campaign.execs i | None -> t)
        0 st.slots;
  }

(* Polymorphic fan-out over the fleet's persistent pool (used at several
   element types: boots, steps), hence the polymorphic record field. *)
type mapper = { fmap : 'a 'b. ('a -> 'b) -> 'a array -> 'b array }

(* The epoch loop shared by [run ~sync_ns] and [resume]. [fleet_map]
   fans the step tasks out (persistent pool or sequential). *)
let drive st ~fleet_map ~workers ~checkpoint =
  while any_unfinished st do
    st.acc.epoch <- st.acc.epoch + 1;
    let until = st.acc.epoch * st.sync_ns in
    let stepping =
      Array.of_list
        (List.filter
           (fun s ->
             match s.inst with
             | Some i -> not (Campaign.finished i) && Campaign.clock_ns i < until
             | None -> false)
           (Array.to_list st.slots))
    in
    (* Steps never raise into the pool: a dying instance is quarantined
       at the barrier (deterministic failures would only recur on
       restart, so sync mode skips the supervisor's retry loop). *)
    let errors =
      fleet_map.fmap
        (fun s ->
          match s.inst with
          | Some i -> ( try Campaign.step i ~until_ns:until; None with e -> Some e)
          | None -> None)
        stepping
    in
    Array.iteri
      (fun k err ->
        match err with
        | Some exn ->
          let s = stepping.(k) in
          Printf.eprintf
            "nyx: fleet instance %d failed (%s); quarantined at sync epoch %d\n%!"
            s.idx (exn_brief exn) st.acc.epoch;
          s.inst <- None
        | None -> ())
      errors;
    (* Segment accounting: everything each live instance's clock advanced
       since the previous barrier (step work plus the import/judge costs
       charged at that barrier) is one schedulable segment. *)
    let segs =
      Array.to_list st.slots
      |> List.filter_map (fun s ->
             match s.inst with
             | Some i ->
               let c = Campaign.clock_ns i in
               let d = c - s.prev_ns in
               s.prev_ns <- c;
               Some d
             | None -> None)
    in
    st.acc.work_ns <- st.acc.work_ns + List.fold_left ( + ) 0 segs;
    st.acc.makespan_ns <- st.acc.makespan_ns + parallel_span ~workers segs;
    if Nyx_obs.Trace.on () then
      Nyx_obs.Trace.span_begin ~vns:until "sync-epoch"
        [
          ("epoch", Nyx_obs.Trace.Int st.acc.epoch);
          ("stepped", Nyx_obs.Trace.Int (Array.length stepping));
        ];
    let row = barrier st ~until in
    st.acc.rows <- row :: st.acc.rows;
    if Nyx_obs.Trace.on () then
      Nyx_obs.Trace.span_end ~vns:until "sync-epoch"
        [
          ("exports", Nyx_obs.Trace.Int row.se_exports);
          ("broadcast", Nyx_obs.Trace.Int row.se_broadcast);
          ("imports", Nyx_obs.Trace.Int row.se_imports);
          ("union_edges", Nyx_obs.Trace.Int row.se_union_edges);
        ];
    match checkpoint with
    | Some ck when st.acc.epoch mod ck.fc_every = 0 && any_unfinished st ->
      write_fleet_checkpoint st ck
    | _ -> ()
  done;
  (* Final drain: when every instance finished before the first barrier
     (tiny budgets), exports discovered during seeding still reach the
     union map. In the normal flow the last barrier already drained
     everything and this is a no-op. *)
  Array.iter
    (fun s ->
      match s.inst with
      | Some i ->
        List.iter
          (fun (e : Campaign.export) ->
            ignore (Coverage.Cumulative.merge_saved st.union e.Campaign.ex_cov))
          (Campaign.drain_exports i)
      | None -> ())
    st.slots

let finalize_sync st ~instances ~workers t0 =
  let results =
    Array.to_list st.slots
    |> List.filter_map (fun s -> Option.map Campaign.finalize s.inst)
  in
  let quarantined =
    Array.fold_left
      (fun n s -> if s.inst = None then n + 1 else n)
      0 st.slots
  in
  let solve_times = List.filter_map (fun r -> r.Report.solved_ns) results in
  {
    instances;
    first_solve_ns =
      (match solve_times with
      | [] -> None
      | ts -> Some (List.fold_left min max_int ts));
    solves = List.length solve_times;
    total_execs = List.fold_left (fun acc r -> acc + r.Report.execs) 0 results;
    restarts = 0;
    quarantined;
    results;
    wall_s = Nyx_parallel.Wall.now_s () -. t0;
    domains = workers;
    union_edges = Some (Coverage.Cumulative.edge_count st.union);
    sync_epochs = List.rev st.acc.rows;
    work_ns = st.acc.work_ns;
    makespan_ns = st.acc.makespan_ns;
  }

(* Persistent pool for the whole synced run: worker domains are spawned
   once and reused across every epoch (batched submission amortizes the
   wake-ups within an epoch). *)
let with_fleet_pool ~workers ~instances ~batch f =
  if workers > 1 && instances > 1 then
    Pool.with_pool ~domains:(min workers instances) (fun pool ->
        f { fmap = (fun g arr -> Pool.map_pool pool ~batch g arr) })
  else f { fmap = (fun g arr -> Array.map g arr) }

let run_synced ~instances ~workers ~sync_ns ~sync_import ~batch ~peer
    ~peer_faults ~profile ~checkpoint ~config entry t0 =
  let st =
    {
      slots =
        Array.of_list
          (List.map
             (fun (idx, _) -> { idx; inst = None; prev_ns = 0 })
             (derived_configs ~instances ~config));
      union = Coverage.Cumulative.create ();
      acc = { epoch = 0; rows = []; work_ns = 0; makespan_ns = 0; ck_ordinal = 0 };
      sync_ns;
      sync_import;
    }
  in
  with_fleet_pool ~workers ~instances ~batch (fun fleet_map ->
      (* Boot the instances in parallel (pure per config, so the boot
         fan-out cannot perturb determinism). A failing boot quarantines
         the slot immediately. *)
      let boots =
        fleet_map.fmap
          (fun (_, cfg) ->
            try
              Some
                (Campaign.start ?peer ?peer_faults ~profile
                   ~collect_exports:true cfg entry)
            with exn ->
              Printf.eprintf "nyx: fleet instance boot failed (%s)\n%!"
                (exn_brief exn);
              None)
          (Array.of_list (derived_configs ~instances ~config))
      in
      Array.iteri (fun i b -> st.slots.(i).inst <- b) boots;
      drive st ~fleet_map ~workers ~checkpoint);
  finalize_sync st ~instances ~workers t0

(* ------------------------------------------------------------------ *)

let run ?(instances = 52) ?domains ?(max_restarts = 3) ?run_instance ?peer
    ?peer_faults ?(profile = false) ?sync_ns ?(sync_import = true) ?batch
    ?checkpoint ~config entry =
  let t0 = Nyx_parallel.Wall.now_s () in
  let workers = resolved_domains domains in
  trace_fleet_begin ~instances ~sync_ns entry;
  let outcome =
    match sync_ns with
    | None ->
      if checkpoint <> None then
        invalid_arg "Fleet.run: ~checkpoint requires ~sync_ns";
      run_independent ~instances ~workers ~max_restarts ~run_instance ~peer
        ~peer_faults ~profile ~config entry t0
    | Some s when s <= 0 -> invalid_arg "Fleet.run: sync_ns must be positive"
    | Some sync_ns ->
      if run_instance <> None then
        invalid_arg "Fleet.run: ~run_instance is independent-mode only";
      let batch =
        match batch with
        | Some b when b >= 1 -> b
        | Some _ | None -> max 1 (instances / max 1 workers)
      in
      run_synced ~instances ~workers ~sync_ns ~sync_import ~batch ~peer
        ~peer_faults ~profile ~checkpoint ~config entry t0
  in
  trace_fleet_end outcome;
  outcome

let resume ?domains ?batch ?(profile = false) ?checkpoint ~path entry =
  let t0 = Nyx_parallel.Wall.now_s () in
  let buf =
    match Nyx_resilience.Atomic_io.read_file path with
    | Ok b -> b
    | Error m -> invalid_arg ("Fleet.resume: " ^ m)
  in
  let d =
    match decode_fleet buf with
    | Ok d -> d
    | Error m -> invalid_arg ("Fleet.resume: " ^ m)
  in
  let instances = Array.length d.d_slots in
  let workers = resolved_domains domains in
  let batch =
    match batch with
    | Some b when b >= 1 -> b
    | Some _ | None -> max 1 (instances / max 1 workers)
  in
  trace_fleet_begin ~instances ~sync_ns:(Some d.d_sync_ns) entry;
  let union = Coverage.Cumulative.create () in
  Coverage.Cumulative.load_state union d.d_virgin;
  let st =
    {
      slots = Array.init instances (fun idx -> { idx; inst = None; prev_ns = 0 });
      union;
      acc = d.d_acc;
      sync_ns = d.d_sync_ns;
      sync_import = d.d_sync_import;
    }
  in
  with_fleet_pool ~workers ~instances ~batch (fun fleet_map ->
      (* Re-boot the surviving instances in parallel (deterministic per
         checkpoint, exactly like Campaign.resume). *)
      let boots =
        fleet_map.fmap
          (fun (idx, slot_data) ->
            match slot_data with
            | None -> None
            | Some (prev_ns, ckpt) -> (
              try
                Some
                  (prev_ns, Campaign.resume_inst ~profile ~collect_exports:true ckpt entry)
              with exn ->
                Printf.eprintf
                  "nyx: fleet instance %d resume failed (%s); quarantined\n%!"
                  idx (exn_brief exn);
                None))
          (Array.mapi (fun i s -> (i, s)) d.d_slots)
      in
      Array.iteri
        (fun i b ->
          match b with
          | Some (prev_ns, inst) ->
            st.slots.(i).inst <- Some inst;
            st.slots.(i).prev_ns <- prev_ns
          | None -> ())
        boots;
      drive st ~fleet_map ~workers ~checkpoint);
  let outcome = finalize_sync st ~instances ~workers t0 in
  trace_fleet_end outcome;
  outcome
