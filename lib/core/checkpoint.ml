(* Crash-safe campaign checkpoints.

   A checkpoint captures the deterministic state a campaign needs to
   continue exactly where it left off: configuration, virtual clock, RNG
   states, corpus, cumulative coverage, crash log, snapshot-engine shape
   and (when armed) the fault plan. Guest memory, disk overlays and
   device state are deliberately absent — they are reconstructed by
   re-booting the target (deterministic) plus the engine's observable
   state (see Engine.persisted); page contents are always overwritten
   before the resumed run can read them.

   Format: "NYXCKP1" magic followed by a flat big-endian binary encoding
   (int64 framing for every integer and length). Files are written via
   Atomic_io (tmp + rename), so a crash mid-write never corrupts the
   previous checkpoint. *)

let magic = "NYXCKP1"

type corpus_entry = {
  ce_program : bytes;  (* Program.serialize *)
  ce_exec_ns : int;
  ce_discovered_ns : int;
  ce_state_code : int;
}

type crash = {
  cr_kind : string;
  cr_detail : string;
  cr_found_ns : int;
  cr_found_exec : int;
  cr_input : bytes;
}

type t = {
  (* configuration (the resumed run validates/reuses it) *)
  c_policy : string;
  c_budget_ns : int;
  c_max_execs : int;
  c_seed : int;
  c_asan : bool;
  c_stop_on_solve : bool;
  c_trim : bool;
  c_sample_interval_ns : int;
  c_target : string;
  (* progress *)
  c_clock_ns : int;
  c_execs : int;
  c_last_sample : int;
  c_solved_ns : int option;
  (* randomness *)
  c_sched_rng : int64;
  c_mut_rng : int64;
  c_policy_state : Policy.state;
  (* discovered state *)
  c_corpus : corpus_entry list;  (* oldest first: ids re-assign in order *)
  c_virgin : bytes;  (* cumulative coverage map *)
  c_timeline : (int * int64) list;  (* oldest first; values as float bits *)
  c_crashes : crash list;  (* newest first, as the campaign stores them *)
  c_engine : Nyx_snapshot.Engine.persisted;
  (* derived-at-setup state that must not be re-derived from seeds *)
  c_dict : bytes list;
  c_max_ops : int;
  (* mutation engine *)
  c_exec_timeline : (int * int64) list;  (* oldest first; values as float bits *)
  c_mut_engine : string;  (* Engines.name form *)
  c_mut_weights : (string * int64) list;  (* weight overrides; float bits *)
  c_mut_state : Nyx_spec.Mutation_engine.state;
  (* resilience *)
  c_faults : (string * Nyx_resilience.Plan.state) option;
  c_profile : Nyx_obs.Profile.state option;
  (* cooperating peer (--mode peer); None for bytecode campaigns *)
  c_peer : Nyx_peer.Peer_driver.state option;
}

(* ------------------------------------------------------------------ *)
(* Encoding.                                                           *)

let add_i64 = Buffer.add_int64_be
let add_int b v = add_i64 b (Int64.of_int v)
let add_bool b v = Buffer.add_char b (if v then '\001' else '\000')

let add_bytes_v b s =
  add_int b (Bytes.length s);
  Buffer.add_bytes b s

let add_str b s =
  add_int b (String.length s);
  Buffer.add_string b s

let add_opt f b = function
  | None -> add_bool b false
  | Some v ->
    add_bool b true;
    f b v

let add_list f b l =
  add_int b (List.length l);
  List.iter (f b) l

let add_int_list = add_list add_int

let add_int_array b a =
  add_int b (Array.length a);
  Array.iter (add_int b) a

let add_corpus_entry b e =
  add_bytes_v b e.ce_program;
  add_int b e.ce_exec_ns;
  add_int b e.ce_discovered_ns;
  add_int b e.ce_state_code

let add_crash b c =
  add_str b c.cr_kind;
  add_str b c.cr_detail;
  add_int b c.cr_found_ns;
  add_int b c.cr_found_exec;
  add_bytes_v b c.cr_input

let add_sample b (t, bits) =
  add_int b t;
  add_i64 b bits

let add_dyn_state b (d : Policy.dyn_state) =
  add_int b d.Policy.ds_id;
  add_int_list b d.Policy.ds_cands;
  add_int_list b d.Policy.ds_stale;
  add_int b d.Policy.ds_root_stale;
  add_int b d.Policy.ds_genuine;
  add_bool b d.Policy.ds_probed;
  add_int b d.Policy.ds_full_ns;
  add_int b d.Policy.ds_setup_ns;
  add_int b d.Policy.ds_round_ns;
  add_int b d.Policy.ds_pages;
  add_int b d.Policy.ds_meas_idx;
  add_int b d.Policy.ds_cur;
  add_int b d.Policy.ds_cooldown;
  add_int b d.Policy.ds_moves

let add_policy_state b (s : Policy.state) =
  add_i64 b s.Policy.st_rng;
  add_list
    (fun b (k, v) ->
      add_int b k;
      add_int b v)
    b s.Policy.st_cursor;
  add_list add_dyn_state b s.Policy.st_dyn;
  add_int b s.Policy.st_probes;
  add_int b s.Policy.st_probe_hashes;
  add_int b s.Policy.st_probe_skipped

let add_engine b (p : Nyx_snapshot.Engine.persisted) =
  add_int_list b p.Nyx_snapshot.Engine.p_mirror;
  add_int b p.Nyx_snapshot.Engine.p_creates_since_remirror;
  let s = p.Nyx_snapshot.Engine.p_stats in
  add_int b s.Nyx_snapshot.Engine.root_restores;
  add_int b s.Nyx_snapshot.Engine.incremental_creates;
  add_int b s.Nyx_snapshot.Engine.incremental_restores;
  add_int b s.Nyx_snapshot.Engine.pages_restored;
  add_int b s.Nyx_snapshot.Engine.remirrors;
  add_int_list b p.Nyx_snapshot.Engine.p_dirty

let add_plan_state b ((spec, s) : string * Nyx_resilience.Plan.state) =
  add_str b spec;
  add_i64 b s.Nyx_resilience.Plan.st_rng;
  add_int b s.Nyx_resilience.Plan.st_seq;
  add_int_array b s.Nyx_resilience.Plan.st_injected;
  add_int_array b s.Nyx_resilience.Plan.st_recovered

let add_profile_state b (s : Nyx_obs.Profile.state) =
  add_int_array b s.Nyx_obs.Profile.ps_counts;
  add_int_array b s.Nyx_obs.Profile.ps_virt

let add_peer_state b (s : Nyx_peer.Peer_driver.state) =
  add_int b s.Nyx_peer.Peer_driver.pd_actions;
  add_int_array b s.Nyx_peer.Peer_driver.pd_fired;
  add_int b s.Nyx_peer.Peer_driver.pd_desyncs;
  add_int b s.Nyx_peer.Peer_driver.pd_restarts;
  add_int b s.Nyx_peer.Peer_driver.pd_quarantines;
  add_int b s.Nyx_peer.Peer_driver.pd_backoff_ns

let add_weight b (n, bits) =
  add_str b n;
  add_i64 b bits

let add_mut_state b (m : Nyx_spec.Mutation_engine.mstate) =
  add_str b m.Nyx_spec.Mutation_engine.ms_name;
  add_int b m.Nyx_spec.Mutation_engine.ms_attempts;
  add_int b m.Nyx_spec.Mutation_engine.ms_rejected;
  add_int b m.Nyx_spec.Mutation_engine.ms_accepts;
  add_i64 b m.Nyx_spec.Mutation_engine.ms_credit

let encode t =
  let b = Buffer.create 65536 in
  Buffer.add_string b magic;
  add_str b t.c_policy;
  add_int b t.c_budget_ns;
  add_int b t.c_max_execs;
  add_int b t.c_seed;
  add_bool b t.c_asan;
  add_bool b t.c_stop_on_solve;
  add_bool b t.c_trim;
  add_int b t.c_sample_interval_ns;
  add_str b t.c_target;
  add_int b t.c_clock_ns;
  add_int b t.c_execs;
  add_int b t.c_last_sample;
  add_opt add_int b t.c_solved_ns;
  add_i64 b t.c_sched_rng;
  add_i64 b t.c_mut_rng;
  add_policy_state b t.c_policy_state;
  add_list add_corpus_entry b t.c_corpus;
  add_bytes_v b t.c_virgin;
  add_list add_sample b t.c_timeline;
  add_list add_crash b t.c_crashes;
  add_engine b t.c_engine;
  add_list add_bytes_v b t.c_dict;
  add_int b t.c_max_ops;
  add_list add_sample b t.c_exec_timeline;
  add_str b t.c_mut_engine;
  add_list add_weight b t.c_mut_weights;
  add_list add_mut_state b t.c_mut_state;
  add_opt add_plan_state b t.c_faults;
  add_opt add_profile_state b t.c_profile;
  add_opt add_peer_state b t.c_peer;
  Buffer.to_bytes b

(* ------------------------------------------------------------------ *)
(* Decoding.                                                           *)

exception Corrupt of string

type cursor = { data : bytes; mutable pos : int }

let need c n =
  if c.pos + n > Bytes.length c.data then raise (Corrupt "truncated checkpoint")

let get_i64 c =
  need c 8;
  let v = Bytes.get_int64_be c.data c.pos in
  c.pos <- c.pos + 8;
  v

let get_int c =
  let v = Int64.to_int (get_i64 c) in
  v

let get_len c =
  let n = get_int c in
  if n < 0 || c.pos + n > Bytes.length c.data then
    raise (Corrupt "bad length field");
  n

let get_bool c =
  need c 1;
  let v = Bytes.get c.data c.pos in
  c.pos <- c.pos + 1;
  match v with
  | '\000' -> false
  | '\001' -> true
  | _ -> raise (Corrupt "bad boolean")

let get_bytes_v c =
  let n = get_len c in
  let s = Bytes.sub c.data c.pos n in
  c.pos <- c.pos + n;
  s

let get_str c = Bytes.to_string (get_bytes_v c)

let get_opt f c = if get_bool c then Some (f c) else None

let get_list f c =
  let n = get_int c in
  if n < 0 then raise (Corrupt "negative list length");
  List.init n (fun _ -> f c)

let get_int_list = get_list get_int

let get_int_array c = Array.of_list (get_int_list c)

let get_corpus_entry c =
  let ce_program = get_bytes_v c in
  let ce_exec_ns = get_int c in
  let ce_discovered_ns = get_int c in
  let ce_state_code = get_int c in
  { ce_program; ce_exec_ns; ce_discovered_ns; ce_state_code }

let get_crash c =
  let cr_kind = get_str c in
  let cr_detail = get_str c in
  let cr_found_ns = get_int c in
  let cr_found_exec = get_int c in
  let cr_input = get_bytes_v c in
  { cr_kind; cr_detail; cr_found_ns; cr_found_exec; cr_input }

let get_sample c =
  let t = get_int c in
  let bits = get_i64 c in
  (t, bits)

let get_dyn_state c =
  let ds_id = get_int c in
  let ds_cands = get_int_list c in
  let ds_stale = get_int_list c in
  let ds_root_stale = get_int c in
  let ds_genuine = get_int c in
  let ds_probed = get_bool c in
  let ds_full_ns = get_int c in
  let ds_setup_ns = get_int c in
  let ds_round_ns = get_int c in
  let ds_pages = get_int c in
  let ds_meas_idx = get_int c in
  let ds_cur = get_int c in
  let ds_cooldown = get_int c in
  let ds_moves = get_int c in
  {
    Policy.ds_id;
    ds_cands;
    ds_stale;
    ds_root_stale;
    ds_genuine;
    ds_probed;
    ds_full_ns;
    ds_setup_ns;
    ds_round_ns;
    ds_pages;
    ds_meas_idx;
    ds_cur;
    ds_cooldown;
    ds_moves;
  }

let get_policy_state c =
  let st_rng = get_i64 c in
  let st_cursor =
    get_list
      (fun c ->
        let k = get_int c in
        let v = get_int c in
        (k, v))
      c
  in
  let st_dyn = get_list get_dyn_state c in
  let st_probes = get_int c in
  let st_probe_hashes = get_int c in
  let st_probe_skipped = get_int c in
  { Policy.st_rng; st_cursor; st_dyn; st_probes; st_probe_hashes; st_probe_skipped }

let get_engine c =
  let p_mirror = get_int_list c in
  let p_creates_since_remirror = get_int c in
  let root_restores = get_int c in
  let incremental_creates = get_int c in
  let incremental_restores = get_int c in
  let pages_restored = get_int c in
  let remirrors = get_int c in
  let p_dirty = get_int_list c in
  {
    Nyx_snapshot.Engine.p_mirror;
    p_creates_since_remirror;
    p_stats =
      {
        Nyx_snapshot.Engine.root_restores;
        incremental_creates;
        incremental_restores;
        pages_restored;
        remirrors;
      };
    p_dirty;
  }

let get_plan_state c =
  let spec = get_str c in
  let st_rng = get_i64 c in
  let st_seq = get_int c in
  let st_injected = get_int_array c in
  let st_recovered = get_int_array c in
  (spec, { Nyx_resilience.Plan.st_rng; st_seq; st_injected; st_recovered })

let get_profile_state c =
  let ps_counts = get_int_array c in
  let ps_virt = get_int_array c in
  { Nyx_obs.Profile.ps_counts; ps_virt }

let get_peer_state c =
  let pd_actions = get_int c in
  let pd_fired = get_int_array c in
  let pd_desyncs = get_int c in
  let pd_restarts = get_int c in
  let pd_quarantines = get_int c in
  let pd_backoff_ns = get_int c in
  {
    Nyx_peer.Peer_driver.pd_actions;
    pd_fired;
    pd_desyncs;
    pd_restarts;
    pd_quarantines;
    pd_backoff_ns;
  }

let get_weight c =
  let n = get_str c in
  let bits = get_i64 c in
  (n, bits)

let get_mut_state c =
  let ms_name = get_str c in
  let ms_attempts = get_int c in
  let ms_rejected = get_int c in
  let ms_accepts = get_int c in
  let ms_credit = get_i64 c in
  { Nyx_spec.Mutation_engine.ms_name; ms_attempts; ms_rejected; ms_accepts; ms_credit }

let decode data =
  let c = { data; pos = 0 } in
  let m = Bytes.create (String.length magic) in
  need c (String.length magic);
  Bytes.blit c.data 0 m 0 (String.length magic);
  c.pos <- String.length magic;
  if Bytes.to_string m <> magic then raise (Corrupt "bad magic");
  let c_policy = get_str c in
  let c_budget_ns = get_int c in
  let c_max_execs = get_int c in
  let c_seed = get_int c in
  let c_asan = get_bool c in
  let c_stop_on_solve = get_bool c in
  let c_trim = get_bool c in
  let c_sample_interval_ns = get_int c in
  let c_target = get_str c in
  let c_clock_ns = get_int c in
  let c_execs = get_int c in
  let c_last_sample = get_int c in
  let c_solved_ns = get_opt get_int c in
  let c_sched_rng = get_i64 c in
  let c_mut_rng = get_i64 c in
  let c_policy_state = get_policy_state c in
  let c_corpus = get_list get_corpus_entry c in
  let c_virgin = get_bytes_v c in
  let c_timeline = get_list get_sample c in
  let c_crashes = get_list get_crash c in
  let c_engine = get_engine c in
  let c_dict = get_list get_bytes_v c in
  let c_max_ops = get_int c in
  let c_exec_timeline = get_list get_sample c in
  let c_mut_engine = get_str c in
  let c_mut_weights = get_list get_weight c in
  let c_mut_state = get_list get_mut_state c in
  let c_faults = get_opt get_plan_state c in
  let c_profile = get_opt get_profile_state c in
  let c_peer = get_opt get_peer_state c in
  if c.pos <> Bytes.length c.data then raise (Corrupt "trailing garbage");
  {
    c_policy;
    c_budget_ns;
    c_max_execs;
    c_seed;
    c_asan;
    c_stop_on_solve;
    c_trim;
    c_sample_interval_ns;
    c_target;
    c_clock_ns;
    c_execs;
    c_last_sample;
    c_solved_ns;
    c_sched_rng;
    c_mut_rng;
    c_policy_state;
    c_corpus;
    c_virgin;
    c_timeline;
    c_crashes;
    c_engine;
    c_dict;
    c_max_ops;
    c_exec_timeline;
    c_mut_engine;
    c_mut_weights;
    c_mut_state;
    c_faults;
    c_profile;
    c_peer;
  }

(* ------------------------------------------------------------------ *)
(* Files.                                                              *)

let save path t = Nyx_resilience.Atomic_io.write_file path (encode t)

let load path =
  match Nyx_resilience.Atomic_io.read_file path with
  | Error _ as e -> e
  | Ok data -> (
    match decode data with
    | t -> Ok t
    | exception Corrupt m -> Error (Printf.sprintf "%s: %s" path m))
