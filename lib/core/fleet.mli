(** Parallel fuzzing simulation (§5.3's 52-core experiments), supervised.

    The paper parallelizes Nyx-Net across physical cores with shared root
    snapshots; wall-clock time-to-result is then the minimum over the
    instances (they share nothing but the read-only root, so they are
    independent searches). We simulate a fleet by running [instances]
    campaigns with distinct seeds and taking the earliest event time.

    This is what makes some Mario levels solvable "faster than light":
    with enough instances, the earliest solve arrives in less wall-clock
    time than a flawless speedrun of the level takes to play once at 60
    FPS.

    Instances fan out across OCaml 5 domains via {!Nyx_parallel.Pool}
    (NYX_DOMAINS, or [?domains]). Each instance owns its clock, VM and
    RNG and results merge in submission order, so the outcome is
    identical whatever the domain count.

    {2 Supervision}

    A campaign that dies with an exception does not abort the fleet (and
    never reaches {!Nyx_parallel.Pool.Task_error}'s cancel-on-first-error
    path): the supervisor restarts it with the same config after a capped
    exponential virtual-time backoff (base 1 s, cap 60 s), up to
    [max_restarts] retries, then quarantines it. The fleet returns
    partial results from the survivors; each survivor's
    [Report.resilience] block carries the restarts it needed and the
    total backoff charged. Campaigns are deterministic, so a failure
    always recurs on retry — real fleets restart past transient host
    faults (OOM kills, lost workers), which the retry budget models; a
    deterministic crash simply exhausts it and quarantines, which is the
    property the tests pin down. *)

type outcome = {
  instances : int;
  first_solve_ns : int option;
      (** earliest virtual solve time across surviving instances *)
  solves : int;  (** how many instances solved within their budget *)
  total_execs : int;  (** summed over survivors *)
  restarts : int;  (** total supervisor restarts across the fleet *)
  quarantined : int;
      (** instances that exhausted their retry budget; [results] omits
          them, so [List.length results = instances - quarantined] *)
  results : Report.campaign_result list;
      (** per-survivor results in instance order *)
  wall_s : float;
      (** real wall-clock for the whole fleet — the field the domain pool
          shrinks; everything above is deterministic *)
}

val run :
  ?instances:int ->
  ?domains:int ->
  ?max_restarts:int ->
  ?run_instance:(Campaign.config -> Report.campaign_result) ->
  config:Campaign.config ->
  Nyx_targets.Registry.entry ->
  outcome
(** [instances] defaults to 52, the paper's core count. Each instance
    runs [config] with a distinct seed derived from [config.seed].
    [domains] overrides NYX_DOMAINS; [1] runs sequentially on the calling
    domain. [max_restarts] (default 3) bounds per-instance supervisor
    restarts before quarantine. [run_instance] replaces
    [Campaign.run cfg entry] as the per-instance body — the test seam for
    exercising the supervisor with injected failures; it must be safe to
    call concurrently from multiple domains. *)
