(** Parallel fuzzing simulation (§5.3's 52-core experiments).

    The paper parallelizes Nyx-Net across physical cores with shared root
    snapshots; wall-clock time-to-result is then the minimum over the
    instances (they share nothing but the read-only root, so they are
    independent searches). We simulate a fleet by running [instances]
    campaigns with distinct seeds and taking the earliest event time.

    This is what makes some Mario levels solvable "faster than light":
    with enough instances, the earliest solve arrives in less wall-clock
    time than a flawless speedrun of the level takes to play once at 60
    FPS.

    Instances fan out across OCaml 5 domains via {!Nyx_parallel.Pool}
    (NYX_DOMAINS, or [?domains]). Each instance owns its clock, VM and
    RNG and results merge in submission order, so the outcome is
    identical whatever the domain count. *)

type outcome = {
  instances : int;
  first_solve_ns : int option;
      (** earliest virtual solve time across the fleet *)
  solves : int;  (** how many instances solved within their budget *)
  total_execs : int;
  wall_s : float;
      (** real wall-clock for the whole fleet — the field the domain pool
          shrinks; everything above is deterministic *)
}

val run :
  ?instances:int ->
  ?domains:int ->
  config:Campaign.config ->
  Nyx_targets.Registry.entry ->
  outcome
(** [instances] defaults to 52, the paper's core count. Each instance
    runs [config] with a distinct seed derived from [config.seed].
    [domains] overrides NYX_DOMAINS; [1] runs sequentially on the calling
    domain. *)
