(** Parallel fuzzing simulation (§5.3's 52-core experiments).

    The paper parallelizes Nyx-Net across physical cores with shared root
    snapshots; wall-clock time-to-result is then the minimum over the
    instances (they share nothing but the read-only root, so they are
    independent searches). We simulate a fleet by running [instances]
    campaigns with distinct seeds and taking the earliest event time.

    This is what makes some Mario levels solvable "faster than light":
    with enough instances, the earliest solve arrives in less wall-clock
    time than a flawless speedrun of the level takes to play once at 60
    FPS. *)

type outcome = {
  instances : int;
  first_solve_ns : int option;
      (** earliest virtual solve time across the fleet *)
  solves : int;  (** how many instances solved within their budget *)
  total_execs : int;
}

val run :
  ?instances:int ->
  config:Campaign.config ->
  Nyx_targets.Registry.entry ->
  outcome
(** [instances] defaults to 52, the paper's core count. Each instance
    runs [config] with a distinct seed derived from [config.seed]. *)
