(** Parallel fuzzing simulation (§5.3's 52-core experiments), supervised,
    with optional shared-corpus sync epochs.

    The paper parallelizes Nyx-Net across physical cores with shared root
    snapshots; wall-clock time-to-result is then the minimum over the
    instances. We simulate a fleet by running [instances] campaigns with
    distinct seeds derived from [config.seed].

    Instances fan out across OCaml 5 domains via {!Nyx_parallel.Pool}
    (NYX_DOMAINS, or [?domains]). Each instance owns its clock, VM and
    RNG; all cross-instance communication happens at deterministic
    virtual-clock barriers in instance-index order on the coordinator, so
    the outcome is identical whatever the domain count or batch size.

    {2 Shared-corpus sync ([?sync_ns])}

    With [sync_ns] set, instances pause every [sync_ns] virtual
    nanoseconds at a sync barrier (driven by {!Campaign.step}). At each
    barrier the coordinator, in instance-index order:

    + drains each instance's coverage-novel exports (programs that grew
      its corpus, with the discovering execution's saved coverage map);
    + judges each export against a fleet-wide virgin map via the
      O(touched) saved-journal merge ({!Nyx_targets.Coverage.Cumulative.merge_saved})
      — no re-execution, no global lock on any hot path;
    + charges the exporter the judging cost and rebroadcasts fleet-novel
      programs to every other live instance, which adopts the ones novel
      against its own map ({!Campaign.import}), paying deterministic
      virtual time under the [Corpus_sync] profile phase.

    Sync epochs deduplicate the fleet's search: a program one instance
    discovered stops being re-discovered from scratch by the others,
    which is how AFL-style secondary instances share a corpus.

    [sync_import:false] is observer mode: the same epoch schedule and
    union-map bookkeeping, but no imports and no sync charges — the
    controlled "independent instances under identical stepping" baseline
    the dedup experiment in the bench compares against.

    {2 Determinism and makespan}

    Results are a pure function of (config, instances, sync schedule):
    [domains], [batch] and wall-clock never affect them. The outcome also
    reports a deterministic scaling model: [work_ns] (total virtual time
    across instances) and [makespan_ns], the simulated completion time of
    the per-epoch instance segments greedily list-scheduled onto
    [domains] workers with a barrier between epochs. [work_ns /
    makespan_ns] is the fleet speedup the bench gates on — it degrades
    honestly under imbalance (stragglers, early finishers, tiny epochs)
    and is reproducible on any host.

    {2 Supervision}

    Sync off: a campaign that dies with an exception is restarted with
    the same config after a capped exponential virtual-time backoff (base
    1 s, cap 60 s), up to [max_restarts] retries, then quarantined; the
    fleet returns partial results from the survivors (see PR 5).

    Sync on: failures are deterministic, so a dying instance is
    quarantined at the next barrier without retries; the fleet continues
    with the survivors. *)

type sync_epoch = {
  se_epoch : int;  (** 1-based epoch ordinal *)
  se_at_ns : int;  (** barrier virtual time ([epoch * sync_ns]) *)
  se_exports : int;  (** programs drained across instances *)
  se_broadcast : int;  (** fleet-novel exports rebroadcast to peers *)
  se_imports : int;  (** adoptions by peers (novel against their maps) *)
  se_union_edges : int;  (** fleet union map edges after the barrier *)
  se_total_execs : int;  (** summed execs of live instances *)
}

type outcome = {
  instances : int;
  first_solve_ns : int option;
      (** earliest virtual solve time across surviving instances *)
  solves : int;  (** how many instances solved within their budget *)
  total_execs : int;  (** summed over survivors *)
  restarts : int;  (** supervisor restarts (independent mode only) *)
  quarantined : int;
      (** instances that died; [results] omits them, so
          [List.length results = instances - quarantined] *)
  results : Report.campaign_result list;
      (** per-survivor results in instance order *)
  wall_s : float;
      (** real wall-clock for the whole fleet; informational only *)
  domains : int;  (** resolved worker count the fleet ran on *)
  union_edges : int option;
      (** fleet union coverage (sync modes only; [None] when sync off) *)
  sync_epochs : sync_epoch list;  (** oldest first; [[]] when sync off *)
  work_ns : int;  (** total virtual work across instances *)
  makespan_ns : int;
      (** simulated fleet completion time on [domains] workers (equals
          [work_ns] at [domains = 1]); deterministic *)
}

(** {2 Fleet checkpoints (sync mode)} *)

type checkpoint_cfg
(** Every [every_epochs] sync barriers the fleet atomically writes its
    whole state (per-instance campaign checkpoints, the union map, epoch
    accounting) to [path]; {!resume} continues a killed fleet to an
    outcome bit-identical to the uninterrupted run's (modulo wall-clock
    fields). *)

val checkpointing :
  ?on_write:(int -> unit) -> path:string -> every_epochs:int -> unit ->
  checkpoint_cfg
(** [on_write ordinal] runs after the [ordinal]-th (1-based) durable
    write — the kill-and-resume test hook.
    @raise Invalid_argument if [every_epochs <= 0]. *)

val run :
  ?instances:int ->
  ?domains:int ->
  ?max_restarts:int ->
  ?run_instance:(Campaign.config -> Report.campaign_result) ->
  ?peer:Nyx_peer.Peer_script.t ->
  ?peer_faults:Nyx_resilience.Plan.spec ->
  ?profile:bool ->
  ?sync_ns:int ->
  ?sync_import:bool ->
  ?batch:int ->
  ?checkpoint:checkpoint_cfg ->
  config:Campaign.config ->
  Nyx_targets.Registry.entry ->
  outcome
(** [instances] defaults to 52, the paper's core count. [domains]
    overrides NYX_DOMAINS; [1] runs sequentially on the calling domain.

    [peer] / [peer_faults] run every instance in peer mode (see
    {!Campaign.run}); both modes and {!resume} preserve the fleet's
    bit-reproducibility at any [domains] (peer session state snapshots
    with the executor, and each instance's peer counters ride in its
    campaign checkpoint).

    [sync_ns] arms shared-corpus sync epochs every that many virtual
    nanoseconds (must be positive); [sync_import] (default true) set to
    false gives observer mode. [batch] is the {!Nyx_parallel.Pool} chunk
    size per epoch fan-out (default [instances / domains], at least 1) —
    a pure performance knob that never affects results. [checkpoint]
    requires [sync_ns]. [profile] attaches per-instance phase profiles
    (observational; the [corpus-sync] phase shows what fraction of fleet
    virtual time sync costs).

    [max_restarts] (default 3) and [run_instance] apply to independent
    mode only ([run_instance] replaces [Campaign.run cfg entry] as the
    per-instance body — the supervisor test seam; it must be safe to call
    concurrently from multiple domains).
    @raise Invalid_argument on conflicting options. *)

val resume :
  ?domains:int ->
  ?batch:int ->
  ?profile:bool ->
  ?checkpoint:checkpoint_cfg ->
  path:string ->
  Nyx_targets.Registry.entry ->
  outcome
(** Continue a synced fleet from a checkpoint file written by a
    [run ~sync_ns ~checkpoint] that was killed. Surviving instances are
    re-booted deterministically ({!Campaign.resume_inst}) and the epoch
    loop continues; the outcome is bit-identical to the uninterrupted
    run's modulo wall-clock fields, at any [domains]/[batch].
    @raise Invalid_argument on unreadable or corrupt checkpoints, or if
    the checkpoint's target does not match [entry]. *)
