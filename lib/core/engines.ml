type kind = Havoc | Typed

let all = [ Havoc; Typed ]

let name = function Havoc -> "havoc" | Typed -> "typed"

let of_name = function
  | "havoc" -> Ok Havoc
  | "typed" -> Ok Typed
  | s ->
    Error
      (Printf.sprintf "unknown mutation engine %S (expected havoc or typed)" s)

let create ?weights kind spec =
  match kind with
  | Havoc -> Nyx_spec.Mutation_engine.havoc ?weights ()
  | Typed ->
    Nyx_spec.Mutation_engine.create ~name:"typed" ?weights
      (Nyx_analysis.Typed_mutators.mutators spec)

let parse_weights s =
  let parse_one item =
    match String.index_opt item ':' with
    | None -> Error (Printf.sprintf "bad weight %S (expected name:float)" item)
    | Some i -> (
      let nm = String.sub item 0 i in
      let v = String.sub item (i + 1) (String.length item - i - 1) in
      match float_of_string_opt v with
      | Some w when w > 0.0 -> Ok (nm, w)
      | _ -> Error (Printf.sprintf "weight for %S must be a positive float" nm))
  in
  let items =
    List.filter (fun x -> x <> "") (String.split_on_char ',' (String.trim s))
  in
  List.fold_left
    (fun acc item ->
      match (acc, parse_one item) with
      | Error _, _ -> acc
      | _, (Error _ as e) -> e
      | Ok l, Ok kv -> Ok (l @ [ kv ]))
    (Ok []) items

let weights_to_string ws =
  String.concat "," (List.map (fun (n, w) -> Printf.sprintf "%s:%g" n w) ws)
