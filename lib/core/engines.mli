(** Mutation-engine registry: the engines a campaign can run with.

    [Havoc] is the historical byte/structural mutator wrapped as a
    single-mutator engine — no selection draw, so its candidate stream
    (and every golden result) is byte-identical to the pre-engine code.
    [Typed] adds the analysis-backed mutators of
    {!Nyx_analysis.Typed_mutators}: typestate splicing between corpus
    entries and spec-driven generation from the State_graph
    constructibility fixpoint, both verified offline before execution,
    with EWMA coverage-credit weighting across all three mutators. *)

type kind = Havoc | Typed

val all : kind list

val name : kind -> string
(** ["havoc"] / ["typed"]. *)

val of_name : string -> (kind, string) result

val create :
  ?weights:(string * float) list -> kind -> Nyx_spec.Spec.t -> Nyx_spec.Mutation_engine.t
(** Build an engine instance for [spec]. [weights] overrides per-mutator
    base weights by name (CLI [--mutator-weights]).
    @raise Invalid_argument on an unknown weight name (surface the
    message to the user). *)

val parse_weights : string -> ((string * float) list, string) result
(** Parse a ["name:w,name:w"] override list; weights must be positive
    floats. *)

val weights_to_string : (string * float) list -> string
(** Canonical inverse of {!parse_weights}. *)
