(** Snapshot placement policies (§3.4).

    Decides, each time an input is scheduled, whether and where to inject
    the snapshot opcode:

    - {b none}: always the root snapshot (the baseline configuration);
    - {b balanced}: for inputs longer than four packets, 4% root,
      otherwise a random index over the whole input (50%) or only its
      second half (50%);
    - {b aggressive}: cycles indices starting at the end of the input;
      each time fuzzing a snapshot yields nothing new for a full reuse
      round, the snapshot moves one packet earlier, wrapping around;
    - {b dynamic}: adaptive placement driven by a measured amortized cost
      model. One protocol-state boundary probe per entry (the StateAFL
      idea: a fuzzy hash over the captured aux state) yields candidate
      indices; the policy then keeps per-entry running estimates of
      prefix-replay cost, per-suffix cost, dirty-set size and staleness,
      and places (and occasionally re-places) the snapshot at the index
      minimizing expected virtual ns per execution. A move must beat the
      current placement's estimate by a fixed margin and is followed by a
      cooldown, so thrashing is impossible. Every input is measured on the
      virtual clock — decisions are bit-identical across domain counts and
      checkpoint/resume. *)

type kind = None_ | Balanced | Aggressive | Dynamic

type t

val name : kind -> string
(** ["nyx-net-none"], ["nyx-net-balanced"], ["nyx-net-aggressive"],
    ["nyx-net-dynamic"]. *)

val of_name : string -> (kind, string) result

val create : kind -> Nyx_sim.Rng.t -> t

val kind : t -> kind

val is_dynamic : t -> bool

val reuse_count : int
(** How many mutated test cases run against one incremental snapshot
    before it is discarded (50 — §3.4's empirical constant). *)

val min_packets_for_snapshot : int

val decide : t -> input_id:int -> packets:int -> [ `Root | `At of int ]
(** [`At i] places the snapshot after the first [i] packets
    (0 < i < packets). Inputs of at most four packets always use the
    root. For [Dynamic], call {!prepare_dynamic} (and, if asked,
    {!set_boundaries}) first. *)

val notify_no_news : t -> input_id:int -> unit
(** The last reuse round for this input found nothing. Aggressive: move
    its snapshot index one packet earlier. Dynamic: charge staleness to
    the input's current placement, steering the cost model away from it.
    No-op for the other kinds. *)

val notify_news : t -> input_id:int -> unit
(** Dynamic only: the last round found new coverage — reset the current
    placement's staleness. No-op (and never called by the static
    campaign paths' behavior) for the other kinds. *)

(** {2 Dynamic placement lifecycle}

    All are no-ops / [`Ready] unless the policy is [Dynamic]. *)

val prepare_dynamic :
  t -> input_id:int -> packets:int -> full_ns:int -> [ `Probe | `Ready ]
(** Ensure the per-entry adaptive state exists, seeding the full-execution
    estimate with [full_ns] (typically the corpus entry's recorded
    [exec_ns]). [`Probe] means the entry still needs its one-time
    state-boundary probe — run {!Executor.state_boundaries} and feed the
    result to {!set_boundaries} before {!decide}. *)

val set_boundaries :
  ?hashed:int ->
  ?skipped:int ->
  t ->
  input_id:int ->
  packets:int ->
  boundaries:int list ->
  unit
(** Record the probe's result. Indices are clamped to the interior
    [1..packets-1]; an empty result degrades to the single candidate
    [packets-1] (deepest placement — the aggressive heuristic).
    [hashed]/[skipped] are the probe's hash counts
    ({!Executor.last_probe_hashed}/[last_probe_skipped]), accumulated
    into {!placement_stats} to surface what the static boundary prior
    saved. *)

val observe_full : t -> input_id:int -> ns:int -> unit
(** Fold a measured full (root) execution into the entry's EWMA. *)

val observe_session :
  t -> input_id:int -> idx:int -> setup_ns:int -> round_ns:int -> pages:int -> unit
(** Fold a measured session at snapshot index [idx]: [setup_ns] is the
    prefix replay + snapshot create, [round_ns] the average per-suffix
    execution, [pages] the dirty pages the create copied. *)

val last_move : t -> (int * int * int) option
(** [(input_id, from, to)] when the immediately preceding {!decide}
    relocated a snapshot ([from]/[to] are indices, 0 = root); cleared by
    every [decide]. Placement index 0 is the root. For trace emission. *)

val placement_stats : t -> Report.placement_stats option
(** Dynamic only ([None] otherwise): probe/move/boundary counters and the
    current placement of every placed entry. *)

(** {2 Checkpoint support} *)

type dyn_state = {
  ds_id : int;
  ds_cands : int list;
  ds_stale : int list;
  ds_root_stale : int;
  ds_genuine : int;
  ds_probed : bool;
  ds_full_ns : int;
  ds_setup_ns : int;
  ds_round_ns : int;
  ds_pages : int;
  ds_meas_idx : int;
  ds_cur : int;
  ds_cooldown : int;
  ds_moves : int;
}
(** One dynamic entry's adaptive state, all virtual-clock integers. *)

type state = {
  st_rng : int64;  (** policy RNG state *)
  st_cursor : (int * int) list;  (** aggressive cursor, sorted by input id *)
  st_dyn : dyn_state list;  (** dynamic table, sorted by input id *)
  st_probes : int;
  st_probe_hashes : int;
  st_probe_skipped : int;
}

val checkpoint_state : t -> state
val restore_state : t -> state -> unit
