(** Snapshot placement policies (§3.4).

    Decides, each time an input is scheduled, whether and where to inject
    the snapshot opcode:

    - {b none}: always the root snapshot (the baseline configuration);
    - {b balanced}: for inputs longer than four packets, 4% root,
      otherwise a random index over the whole input (50%) or only its
      second half (50%);
    - {b aggressive}: cycles indices starting at the end of the input;
      each time fuzzing a snapshot yields nothing new for a full reuse
      round, the snapshot moves one packet earlier, wrapping around. *)

type kind = None_ | Balanced | Aggressive

type t

val name : kind -> string
(** ["nyx-net-none"], ["nyx-net-balanced"], ["nyx-net-aggressive"]. *)

val of_name : string -> (kind, string) result

val create : kind -> Nyx_sim.Rng.t -> t

val reuse_count : int
(** How many mutated test cases run against one incremental snapshot
    before it is discarded (50 — §3.4's empirical constant). *)

val decide : t -> input_id:int -> packets:int -> [ `Root | `At of int ]
(** [`At i] places the snapshot after the first [i] packets
    (0 < i < packets). Inputs of at most four packets always use the
    root. *)

val notify_no_news : t -> input_id:int -> unit
(** Aggressive only: the last reuse round for this input found nothing —
    move its snapshot index one packet earlier. *)

(** {2 Checkpoint support} *)

type state = {
  st_rng : int64;  (** policy RNG state *)
  st_cursor : (int * int) list;  (** aggressive cursor, sorted by input id *)
}

val checkpoint_state : t -> state
val restore_state : t -> state -> unit
