(** The Nyx-Net executor: one fuzzing VM instance.

    Owns a simulated VM, the emulated network stack, a booted target and
    the snapshot engine. Test cases are bytecode programs executed through
    the interpreter; every injected packet is pumped through the target's
    event loop, and the VM is reset to the active snapshot between
    executions.

    The session API implements §3.4: [start_session] executes the prefix
    up to the snapshot opcode and takes the incremental snapshot;
    [run_suffix] then executes mutated suffixes against it (restoring the
    incremental snapshot and replaying the prefix's coverage and
    interpreter environment each time); [end_session] discards the
    snapshot and returns to the root. *)

type t

val create :
  ?asan:bool ->
  ?layout_cookie:int ->
  ?boundaries:bool ->
  ?vm_config:Nyx_vm.Vm.config ->
  ?custom:Op_handlers.custom_handler ->
  ?peer:Nyx_peer.Peer_script.t ->
  ?profile:Nyx_obs.Profile.t ->
  net_spec:Nyx_spec.Net_spec.t ->
  Nyx_targets.Target.t ->
  t
(** Boots the target (charging its startup cost), pumps it to its accept
    loop, and takes the root snapshot. [profile], when given, receives a
    per-phase virtual-time attribution of every execution this instance
    runs (reset / prefix-replay / suffix-exec / snapshot-create);
    accumulation is observational only and changes no result.

    [peer] switches the instance into peer mode: a {!Nyx_peer.Peer_driver}
    built from the script claims every connect/packet/close opcode (payloads
    select peer actions and encoder-fault arms instead of raw bytes), and
    its session state is registered as aux snapshot state before the root
    snapshot — incremental snapshots capture the peer mid-handshake.
    [peer] takes precedence over [custom]. *)

val clock : t -> Nyx_sim.Clock.t

val profile : t -> Nyx_obs.Profile.t option
(** The profile passed to {!create}, if any — campaign layers attribute
    their own phases (cov-merge, trim) to the same accumulator. *)

val coverage : t -> Nyx_targets.Coverage.t
(** The last execution's map. *)

val state_code : t -> int
val snapshot_stats : t -> Nyx_snapshot.Engine.stats
val target_name : t -> string

val root_stored_bytes : t -> int
(** Bytes held by the immutable root image — shareable across instances
    (§5.3 scalability). *)

val mirror_bytes : t -> int
(** Bytes held by this instance's private incremental mirror. *)

(** {2 Fault injection (ISSUE: nyx_resilience)} *)

val arm_faults : t -> Nyx_resilience.Plan.t -> unit
(** Arm a deterministic fault plan on this instance's VM. The snapshot
    engine then consults it when incremental snapshots are taken and
    restored; the executor consults its [Guest_wedge] site before each
    execution. With no plan armed every consultation is one branch. *)

val faults : t -> Nyx_resilience.Plan.t option

val peer_driver : t -> Nyx_peer.Peer_driver.t option
(** The cooperating-peer driver, when the instance runs in peer mode. *)

(** {2 Campaign checkpointing} *)

val engine_checkpoint : t -> Nyx_snapshot.Engine.persisted
val engine_restore_checkpoint : t -> Nyx_snapshot.Engine.persisted -> unit

val status_of_run : (unit -> unit) -> Report.status
(** Run a thunk, mapping the crash exceptions every executor must handle
    (target crashes, ASan violations, guest faults, protocol desyncs)
    to a {!Report.status}. Shared with the baseline executors. *)

val run_full : t -> Nyx_spec.Program.t -> Report.exec_result
(** Reset to the root snapshot and execute the whole program (snapshot
    opcodes, if any, take the incremental snapshot but the engine is
    returned to root mode afterwards — use sessions to exploit them). *)

type session

val start_session : t -> Nyx_spec.Program.t -> (session, Report.exec_result) result
(** The program must contain a snapshot opcode. [Error r] when the prefix
    itself crashed or the program has no snapshot opcode. The prefix cost
    is charged once, here. *)

val suffix_start : session -> int
(** Index of the first op after the snapshot opcode — the [frozen] prefix
    length for the mutator. *)

val run_suffix : t -> session -> Nyx_spec.Program.t -> Report.exec_result
(** Execute a program sharing the session's frozen prefix: only ops from
    {!suffix_start} run, against the incremental snapshot.

    When a fault plan is armed and the incremental snapshot turns out to
    be faulted (corrupted at creation, lossy dirty log, or a failed
    restore), the executor degrades gracefully: the snapshot is discarded
    and transparently rebuilt from the root by replaying the program's
    frozen prefix — the paper's recreate-on-demand path (§3.4) — with the
    recovery's full cost charged to virtual time and the faults counted
    as recovered in the plan. *)

val end_session : t -> session -> unit

(** {2 Protocol-state probing (dynamic snapshot placement)} *)

val state_hash : t -> int
(** {!Nyx_targets.Target.state_hash} of the instance's current state —
    fuzzy aux-state signature folded with the target's state-code
    annotation. Charges virtual time. *)

val state_boundaries : ?feasible:int list -> t -> Nyx_spec.Program.t -> int list
(** Single-step the program (snapshots stripped) from the root snapshot,
    hashing the protocol state after every packet. Returns the ascending
    interior packet indices [1 <= i <= packets-1] where the hash changed —
    the state-machine boundaries the dynamic placement policy snaps
    candidate snapshot points to. A crash mid-probe truncates the list.
    Leaves the instance reset to the root. Costs (replay + hashing) are
    charged to the virtual clock.

    [feasible] is the static boundary prior
    ({!Nyx_analysis.Dataflow.feasible_boundaries}): only those indices
    are hashed — sound because a statically inert op cannot move the
    hash — cutting the probe's hashing cost without changing the result.
    Under [NYX_SANITIZE] the skipped indices are shadow-hashed off the
    virtual clock as a conformance check; a hash move at one raises
    {!Nyx_spec.Interp.Violation} with code [state-boundary-escape]. *)

val last_probe_hashed : t -> int
(** State hashes taken by the most recent {!state_boundaries} probe. *)

val last_probe_skipped : t -> int
(** Indices the static prior let the most recent probe skip. *)

val last_snapshot_pages : t -> int
(** Pages copied by this instance's most recent incremental snapshot
    create — the dirty-set size the dynamic policy's cost model feeds on.
    Read it right after the session start it describes. *)
