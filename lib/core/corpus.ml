type entry = {
  id : int;
  program : Nyx_spec.Program.t;
  exec_ns : int;
  packets : int;
  discovered_ns : int;
  state_code : int;
}

(* Indexed growable array (hand-rolled: no stdlib Dynarray on 5.1),
   oldest-first so [store.(id)] is the entry with that id.  Replaces the
   reversed list whose [List.nth] made every scheduling round O(corpus).
   [freq] maintains per-state entry counts on [add] so state-aware
   scheduling never rebuilds its table; [progs_cache] memoizes the
   newest-first program snapshot handed to the mutator, rebuilt only
   after the corpus has grown. *)
type t = {
  mutable store : entry array;  (* dense prefix [0, count), oldest first *)
  mutable count : int;
  freq : (int, int) Hashtbl.t;  (* state_code -> number of entries *)
  mutable progs_cache : Nyx_spec.Program.t array;
  mutable progs_cache_count : int;
}

let create () =
  {
    store = [||];
    count = 0;
    freq = Hashtbl.create 16;
    progs_cache = [||];
    progs_cache_count = 0;
  }

let size t = t.count

let add t ~program ~exec_ns ~discovered_ns ~state_code =
  let entry =
    {
      id = t.count;
      program;
      exec_ns;
      packets = Nyx_spec.Program.packet_count program;
      discovered_ns;
      state_code;
    }
  in
  let cap = Array.length t.store in
  if t.count = cap then
    t.store <- Array.append t.store (Array.make (max 16 cap) entry);
  t.store.(t.count) <- entry;
  t.count <- t.count + 1;
  Hashtbl.replace t.freq state_code
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.freq state_code));
  if Nyx_obs.Trace.on () then
    Nyx_obs.Trace.instant ~vns:discovered_ns "corpus-add"
      [
        ("id", Nyx_obs.Trace.Int entry.id);
        ("state", Nyx_obs.Trace.Int state_code);
        ("packets", Nyx_obs.Trace.Int entry.packets);
        ("exec_ns", Nyx_obs.Trace.Int exec_ns);
      ];
  entry

let nth_newest t i =
  if i < 0 || i >= t.count then invalid_arg "Corpus.nth_newest: out of bounds";
  t.store.(t.count - 1 - i)

let schedule t rng =
  if t.count = 0 then invalid_arg "Corpus.schedule: empty corpus";
  if Nyx_sim.Rng.bool rng then nth_newest t (Nyx_sim.Rng.int rng t.count)
  else nth_newest t (Nyx_sim.Rng.int rng (max 1 (t.count / 4)))

let schedule_state_aware t rng =
  if t.count = 0 then invalid_arg "Corpus.schedule: empty corpus";
  (* Weight inversely by how common each entry's protocol state is, from
     the maintained table.  Weights accumulate newest-first in the exact
     order the old list-based path summed them, so the float totals — and
     therefore the RNG draw and the pick — are bit-for-bit unchanged. *)
  let weight e = 1.0 /. float_of_int (Hashtbl.find t.freq e.state_code) in
  let total = ref 0.0 in
  for i = t.count - 1 downto 0 do
    total := !total +. weight t.store.(i)
  done;
  let target = Nyx_sim.Rng.float rng !total in
  let rec pick acc i =
    if i = 0 then t.store.(0)
    else begin
      let e = t.store.(i) in
      let w = weight e in
      if acc +. w > target then e else pick (acc +. w) (i - 1)
    end
  in
  pick 0.0 (t.count - 1)

let programs t =
  if t.progs_cache_count <> t.count then begin
    t.progs_cache <-
      Array.init t.count (fun i -> t.store.(t.count - 1 - i).program);
    t.progs_cache_count <- t.count
  end;
  t.progs_cache

let entries t = List.init t.count (fun i -> t.store.(t.count - 1 - i))
