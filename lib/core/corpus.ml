type entry = {
  id : int;
  program : Nyx_spec.Program.t;
  exec_ns : int;
  packets : int;
  discovered_ns : int;
  state_code : int;
}

type t = { mutable rev_entries : entry list; mutable count : int }

let create () = { rev_entries = []; count = 0 }

let size t = t.count

let add t ~program ~exec_ns ~discovered_ns ~state_code =
  let entry =
    {
      id = t.count;
      program;
      exec_ns;
      packets = Nyx_spec.Program.packet_count program;
      discovered_ns;
      state_code;
    }
  in
  t.rev_entries <- entry :: t.rev_entries;
  t.count <- t.count + 1;
  entry

let nth_newest t i = List.nth t.rev_entries i

let schedule t rng =
  if t.count = 0 then invalid_arg "Corpus.schedule: empty corpus";
  if Nyx_sim.Rng.bool rng then nth_newest t (Nyx_sim.Rng.int rng t.count)
  else nth_newest t (Nyx_sim.Rng.int rng (max 1 (t.count / 4)))

let schedule_state_aware t rng =
  if t.count = 0 then invalid_arg "Corpus.schedule: empty corpus";
  (* Weight inversely by how common each entry's protocol state is. *)
  let freq = Hashtbl.create 16 in
  List.iter
    (fun e ->
      Hashtbl.replace freq e.state_code
        (1 + Option.value ~default:0 (Hashtbl.find_opt freq e.state_code)))
    t.rev_entries;
  let weighted =
    List.map
      (fun e ->
        (e, 1.0 /. float_of_int (Option.value ~default:1 (Hashtbl.find_opt freq e.state_code))))
      t.rev_entries
  in
  Nyx_sim.Rng.weighted rng weighted

let entries t = t.rev_entries
