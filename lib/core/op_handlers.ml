open Nyx_targets
open Nyx_netemu

type custom_handler =
  send:(bytes -> unit) -> Nyx_spec.Spec.node_ty -> int list -> bytes array -> int list option

type t = {
  net : Net.t;
  runtime : Target.runtime;
  target : Target.t;
  after_packet : unit -> unit;
  on_snapshot : unit -> unit;
  custom : custom_handler option;
  udp_flows : (int, int) Hashtbl.t;
  mutable next_token : int;
  mutable implicit_flow : int option;
  mutable adopted : int; (* client targets: outbound flows claimed so far *)
}

let create ~net ~runtime ~target ?(after_packet = fun () -> ())
    ?(on_snapshot = fun () -> ()) ?custom () =
  {
    net;
    runtime;
    target;
    after_packet;
    on_snapshot;
    custom;
    udp_flows = Hashtbl.create 8;
    next_token = -1;
    implicit_flow = None;
    adopted = 0;
  }

let refused = -1_000_000

let is_udp t = t.target.Target.info.Target.proto = Net.Udp
let is_client t = t.target.Target.info.Target.role = Target.Client
let port t = t.target.Target.info.Target.port

(* Client targets dial out themselves; a [connect] opcode adopts the next
   unclaimed outbound flow instead of opening a new connection. *)
let adopt_outbound t =
  let flows = Net.outbound_flows t.net in
  match List.nth_opt flows t.adopted with
  | Some fl ->
    t.adopted <- t.adopted + 1;
    Some fl
  | None -> None

(* Deliver one packet on the implicit connection, opening it lazily —
   how typed specs talk to the target without modeling connections. *)
let implicit_send t payload =
  let flow =
    match t.implicit_flow with
    | Some fl -> Some fl
    | None ->
      let fl =
        if is_udp t then None (* created by the first datagram below *)
        else Net.connect_peer t.net ~port:(port t)
      in
      (match fl with
      | Some _ ->
        t.implicit_flow <- fl;
        Target.pump t.runtime
      | None -> ());
      fl
  in
  if is_udp t then begin
    match Net.udp_send_peer t.net ~port:(port t) ?flow:t.implicit_flow payload with
    | Some fl ->
      t.implicit_flow <- Some fl;
      Target.pump t.runtime;
      t.after_packet ()
    | None -> ()
  end
  else
    match flow with
    | None -> ()
    | Some fl -> (
      match Net.send_peer t.net fl payload with
      | () ->
        Target.pump t.runtime;
        t.after_packet ();
        (try ignore (Net.responses t.net fl) with Invalid_argument _ -> ())
      | exception Invalid_argument _ -> ())

let handlers t =
  let exec (nt : Nyx_spec.Spec.node_ty) inputs data =
    let custom_result =
      match t.custom with
      | Some f -> f ~send:(implicit_send t) nt inputs data
      | None -> None
    in
    match custom_result with
    | Some outputs -> outputs
    | None ->
    match nt.Nyx_spec.Spec.nt_name with
    | "connect" when is_client t -> (
      match adopt_outbound t with Some fl -> [ fl ] | None -> [ refused ])
    | "connect" ->
      if is_udp t then begin
        let token = t.next_token in
        t.next_token <- token - 1;
        [ token ]
      end
      else begin
        match Net.connect_peer t.net ~port:(port t) with
        | Some flow ->
          Target.pump t.runtime;
          [ flow ]
        | None -> [ refused ]
      end
    | "packet" ->
      let con = match inputs with [ c ] -> c | _ -> refused in
      let payload = if Array.length data > 0 then data.(0) else Bytes.empty in
      (if con = refused then ()
       else if is_udp t then begin
         let flow = Hashtbl.find_opt t.udp_flows con in
         match Net.udp_send_peer t.net ~port:(port t) ?flow payload with
         | Some fl ->
           Hashtbl.replace t.udp_flows con fl;
           Target.pump t.runtime;
           t.after_packet ()
         | None -> ()
       end
       else begin
         (* The server may have closed this connection: a send then fails
            with EPIPE and the packet is simply lost, as with a real
            socket. *)
         match Net.send_peer t.net con payload with
         | () ->
           Target.pump t.runtime;
           t.after_packet ()
         | exception Invalid_argument _ -> ()
       end);
      (* Drain responses so server writes don't accumulate. *)
      (if con <> refused then
         match if is_udp t then Hashtbl.find_opt t.udp_flows con else Some con with
         | Some fl -> ( try ignore (Net.responses t.net fl) with Invalid_argument _ -> ())
         | None -> ());
      []
    | "close" ->
      let con = match inputs with [ c ] -> c | _ -> refused in
      (if con = refused then ()
       else
         let flow = if is_udp t then Hashtbl.find_opt t.udp_flows con else Some con in
         match flow with
         | Some fl -> (
           try
             Net.close_peer t.net fl;
             Target.pump t.runtime
           with Invalid_argument _ -> ())
         | None -> ());
      []
    | other -> invalid_arg (Printf.sprintf "Op_handlers: unknown opcode %s" other)
  in
  { Nyx_spec.Interp.exec; snapshot = t.on_snapshot }

let reset t =
  Hashtbl.reset t.udp_flows;
  t.next_token <- -1;
  t.implicit_flow <- None;
  t.adopted <- 0

let save_tokens t =
  ( Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.udp_flows [],
    t.next_token,
    t.implicit_flow,
    t.adopted )

let load_tokens t (pairs, next, implicit, adopted) =
  Hashtbl.reset t.udp_flows;
  List.iter (fun (k, v) -> Hashtbl.replace t.udp_flows k v) pairs;
  t.next_token <- next;
  t.implicit_flow <- implicit;
  t.adopted <- adopted
