(** The fuzzing queue. *)

type entry = {
  id : int;
  program : Nyx_spec.Program.t;
  exec_ns : int;  (** cost of the discovering execution *)
  packets : int;
  discovered_ns : int;
  state_code : int;
}

type t

val create : unit -> t
val size : t -> int

val add :
  t ->
  program:Nyx_spec.Program.t ->
  exec_ns:int ->
  discovered_ns:int ->
  state_code:int ->
  entry

val schedule : t -> Nyx_sim.Rng.t -> entry
(** Pick the next input: half the time uniformly, half the time biased to
    the newest quarter of the queue (favoring fresh coverage finders, as
    AFL-style queue culling does). O(1): the queue is an indexed array.
    @raise Invalid_argument when empty. *)

val schedule_state_aware : t -> Nyx_sim.Rng.t -> entry
(** AFLNet-style: bias towards entries that reached rarely-seen protocol
    states. The per-state frequency table is maintained on [add] (never
    rebuilt per call), and the weighted walk allocates nothing. *)

val programs : t -> Nyx_spec.Program.t array
(** Newest-first snapshot of every stored program, for the mutator's
    splice donor pool. Cached: rebuilt only after the corpus has grown,
    so steady-state scheduling rounds pay O(1), not O(corpus). Callers
    must treat the array as read-only and must not hold it across [add]
    if they need to observe the growth. *)

val entries : t -> entry list
(** Newest first. Reporting-only: allocates a fresh list per call. *)
