(** The fuzzing queue. *)

type entry = {
  id : int;
  program : Nyx_spec.Program.t;
  exec_ns : int;  (** cost of the discovering execution *)
  packets : int;
  discovered_ns : int;
  state_code : int;
}

type t

val create : unit -> t
val size : t -> int

val add :
  t ->
  program:Nyx_spec.Program.t ->
  exec_ns:int ->
  discovered_ns:int ->
  state_code:int ->
  entry

val schedule : t -> Nyx_sim.Rng.t -> entry
(** Pick the next input: half the time uniformly, half the time biased to
    the newest quarter of the queue (favoring fresh coverage finders, as
    AFL-style queue culling does).
    @raise Invalid_argument when empty. *)

val schedule_state_aware : t -> Nyx_sim.Rng.t -> entry
(** AFLNet-style: bias towards entries that reached rarely-seen protocol
    states. *)

val entries : t -> entry list
(** Newest first. *)
