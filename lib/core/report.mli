(** Result types shared by all fuzzers under evaluation. *)

type status =
  | Pass
  | Crash of { kind : string; detail : string }
  | Hang

type exec_result = {
  status : status;
  exec_ns : int;  (** virtual time spent on this execution, reset included *)
  state_code : int;  (** protocol state annotation after the run *)
}

type crash_report = {
  kind : string;
  detail : string;
  found_ns : int;  (** virtual campaign time of first occurrence *)
  found_exec : int;
  input : bytes;  (** serialized reproducer program *)
}

type resilience = {
  faults_injected : int;  (** faults the armed plan fired *)
  faults_recovered : int;  (** faults survived via degradation/recovery *)
  faults_aborted : int;  (** [injected - recovered]: faults that ended the run *)
  restarts : int;  (** fleet-supervisor restarts of this instance *)
  quarantined : bool;  (** instance gave up after exhausting its retry budget *)
  backoff_ns : int;  (** virtual backoff the supervisor charged before retries *)
}

type placement_stats = {
  probes : int;  (** state-boundary probes run (one per long-enough entry) *)
  probe_hashes : int;  (** state hashes the probes took *)
  probe_hashes_skipped : int;
      (** hashes the static boundary prior let the probes skip *)
  moves : int;  (** snapshot relocations after the initial placement *)
  boundary_count : int;  (** protocol-state boundaries the probes found *)
  placements : (int * int) list;
      (** final [(input id, snapshot index)] per placed entry, sorted by
          input id; index 0 means the entry settled on the root *)
}

type campaign_result = {
  fuzzer : string;
  target : string;
  run_seed : int;
  timeline : Nyx_sim.Stats.Timeline.t;  (** cumulative branch coverage over time *)
  final_edges : int;
  execs : int;
  virtual_ns : int;
  execs_per_sec : float;
  crashes : crash_report list;  (** deduplicated by kind *)
  corpus_size : int;
  solved_ns : int option;  (** Mario: virtual time of the first solve *)
  snapshot_stats : Nyx_snapshot.Engine.stats option;
      (** snapshot engine counters (Nyx-Net campaigns only) *)
  wall_s : float;
      (** real wall-clock the campaign took. Informational only: every
          other field is a deterministic function of the config, so two
          same-seed campaigns agree on everything but this. *)
  phase_profile : Nyx_obs.Profile.snapshot option;
      (** per-phase cost breakdown (reset / prefix-replay / suffix-exec /
          snapshot-create / cov-merge / trim / other) when the campaign
          ran with profiling on; its virtual times sum to [virtual_ns].
          [None] for baselines and unprofiled campaigns. *)
  resilience : resilience option;
      (** fault-injection and supervision counters; [Some] only when a
          fault plan was armed ([NYX_FAULTS] / [~faults]) or a fleet
          supervisor restarted the instance. [None] campaigns are
          byte-identical to pre-resilience results. *)
  placement : placement_stats option;
      (** adaptive snapshot-placement counters; [Some] only for the
          dynamic policy. Deterministic — placement decisions run on the
          virtual clock. *)
}

val crashed : campaign_result -> bool
(** Any crash other than a Mario solve. *)

val found_kind : campaign_result -> string -> bool

val pp_summary : Format.formatter -> campaign_result -> unit

val pp_resilience : Format.formatter -> resilience -> unit

val same_deterministic : campaign_result -> campaign_result -> bool
(** Structural equality over every deterministic field — wall-clock
    fields (top-level [wall_s] and the profile's wall columns) are
    masked, since two same-seed runs (or a straight run and a
    kill+resume one) legitimately differ there. *)
