(** Result types shared by all fuzzers under evaluation. *)

type status =
  | Pass
  | Crash of { kind : string; detail : string }
  | Hang

type exec_result = {
  status : status;
  exec_ns : int;  (** virtual time spent on this execution, reset included *)
  state_code : int;  (** protocol state annotation after the run *)
}

type crash_report = {
  kind : string;
  detail : string;
  found_ns : int;  (** virtual campaign time of first occurrence *)
  found_exec : int;
  input : bytes;  (** serialized reproducer program *)
}

type resilience = {
  faults_injected : int;  (** faults the armed plan fired *)
  faults_recovered : int;  (** faults survived via degradation/recovery *)
  faults_aborted : int;  (** [injected - recovered]: faults that ended the run *)
  restarts : int;  (** fleet-supervisor restarts of this instance *)
  quarantined : bool;  (** instance gave up after exhausting its retry budget *)
  backoff_ns : int;  (** virtual backoff the supervisor charged before retries *)
}

type peer_stats = {
  peer_actions : int;  (** scripted peer actions executed *)
  peer_fired : (string * int) list;
      (** encoder faults fired per peer site, {!Nyx_resilience.Fault.peer_sites}
          order *)
  peer_desyncs : int;  (** conversations that fell out of sync *)
  peer_restarts : int;  (** supervised session restarts after a desync *)
  peer_quarantines : int;
      (** sessions quarantined after repeated desyncs (execution finished
          with partial results) *)
  peer_backoff_ns : int;  (** virtual backoff charged before restarts *)
}

type placement_stats = {
  probes : int;  (** state-boundary probes run (one per long-enough entry) *)
  probe_hashes : int;  (** state hashes the probes took *)
  probe_hashes_skipped : int;
      (** hashes the static boundary prior let the probes skip *)
  moves : int;  (** snapshot relocations after the initial placement *)
  boundary_count : int;  (** protocol-state boundaries the probes found *)
  placements : (int * int) list;
      (** final [(input id, snapshot index)] per placed entry, sorted by
          input id; index 0 means the entry settled on the root *)
}

type mutator_stat = {
  mut_name : string;  (** mutator name within its engine (e.g. ["splice"]) *)
  mut_attempts : int;  (** times the engine selected this mutator *)
  mut_rejected : int;
      (** attempts whose candidate failed offline verification (the
          engine fell back to the first mutator for those draws) *)
  mut_accepts : int;  (** candidates that survived triage into the corpus *)
  mut_credit : float;
      (** EWMA coverage credit in [0,1]: the recent fraction of this
          mutator's candidates that produced coverage news *)
}

type mutation_stats = {
  engine : string;  (** engine name, ["havoc"] or ["typed"] *)
  mutators : mutator_stat list;  (** fixed engine declaration order *)
}

type campaign_result = {
  fuzzer : string;
  target : string;
  run_seed : int;
  timeline : Nyx_sim.Stats.Timeline.t;  (** cumulative branch coverage over time *)
  exec_timeline : Nyx_sim.Stats.Timeline.t;
      (** cumulative branch coverage keyed by executions instead of
          virtual time (recorded at every coverage event), for
          execs-to-frontier comparisons between mutation engines *)
  final_edges : int;
  execs : int;
  virtual_ns : int;
  execs_per_sec : float;
  crashes : crash_report list;  (** deduplicated by kind *)
  corpus_size : int;
  solved_ns : int option;  (** Mario: virtual time of the first solve *)
  snapshot_stats : Nyx_snapshot.Engine.stats option;
      (** snapshot engine counters (Nyx-Net campaigns only) *)
  wall_s : float;
      (** real wall-clock the campaign took. Informational only: every
          other field is a deterministic function of the config, so two
          same-seed campaigns agree on everything but this. *)
  phase_profile : Nyx_obs.Profile.snapshot option;
      (** per-phase cost breakdown (reset / prefix-replay / suffix-exec /
          snapshot-create / cov-merge / trim / other) when the campaign
          ran with profiling on; its virtual times sum to [virtual_ns].
          [None] for baselines and unprofiled campaigns. *)
  resilience : resilience option;
      (** fault-injection and supervision counters; [Some] only when a
          fault plan was armed ([NYX_FAULTS] / [~faults]) or a fleet
          supervisor restarted the instance. [None] campaigns are
          byte-identical to pre-resilience results. *)
  placement : placement_stats option;
      (** adaptive snapshot-placement counters; [Some] only for the
          dynamic policy. Deterministic — placement decisions run on the
          virtual clock. *)
  mutation : mutation_stats option;
      (** per-mutator attempt/accept/coverage-credit counters from the
          mutation engine; [Some] for every nyx campaign, [None] for the
          baseline fuzzers. Deterministic. *)
  peer : peer_stats option;
      (** cooperating-peer counters; [Some] only for [--mode peer]
          campaigns. Deterministic. *)
}

val crashed : campaign_result -> bool
(** Any crash other than a Mario solve. *)

val found_kind : campaign_result -> string -> bool

val pp_summary : Format.formatter -> campaign_result -> unit

val pp_resilience : Format.formatter -> resilience -> unit

val pp_peer : Format.formatter -> peer_stats -> unit

val same_deterministic : campaign_result -> campaign_result -> bool
(** Structural equality over every deterministic field — wall-clock
    fields (top-level [wall_s] and the profile's wall columns) are
    masked, since two same-seed runs (or a straight run and a
    kill+resume one) legitimately differ there. *)
