type status = Pass | Crash of { kind : string; detail : string } | Hang

type exec_result = { status : status; exec_ns : int; state_code : int }

type crash_report = {
  kind : string;
  detail : string;
  found_ns : int;
  found_exec : int;
  input : bytes;
}

type resilience = {
  faults_injected : int;
  faults_recovered : int;
  faults_aborted : int;
  restarts : int;
  quarantined : bool;
  backoff_ns : int;
}

type peer_stats = {
  peer_actions : int;
  peer_fired : (string * int) list; (* encoder faults fired, per peer site *)
  peer_desyncs : int;
  peer_restarts : int;
  peer_quarantines : int;
  peer_backoff_ns : int;
}

type placement_stats = {
  probes : int;
  probe_hashes : int; (* state hashes taken across all boundary probes *)
  probe_hashes_skipped : int; (* hashes the static boundary prior saved *)
  moves : int;
  boundary_count : int;
  placements : (int * int) list;
}

type mutator_stat = {
  mut_name : string;
  mut_attempts : int;
  mut_rejected : int;
  mut_accepts : int;
  mut_credit : float;
}

type mutation_stats = { engine : string; mutators : mutator_stat list }

type campaign_result = {
  fuzzer : string;
  target : string;
  run_seed : int;
  timeline : Nyx_sim.Stats.Timeline.t;
  exec_timeline : Nyx_sim.Stats.Timeline.t;
  final_edges : int;
  execs : int;
  virtual_ns : int;
  execs_per_sec : float;
  crashes : crash_report list;
  corpus_size : int;
  solved_ns : int option;
  snapshot_stats : Nyx_snapshot.Engine.stats option;
  wall_s : float;
      (* real wall-clock the campaign took; informational only — every
         other field is a deterministic function of the config. *)
  phase_profile : Nyx_obs.Profile.snapshot option;
      (* per-phase virtual-time cost breakdown; Some only when the
         campaign ran with profiling requested. Virtual fields are
         deterministic; wall fields informational. *)
  resilience : resilience option;
      (* Some only when a fault plan was armed or a fleet supervisor
         restarted this instance; None -> byte-identical to pre-resilience
         results. *)
  placement : placement_stats option;
      (* dynamic snapshot placement counters; Some only for --policy
         dynamic. Fully deterministic (virtual-clock driven). *)
  mutation : mutation_stats option;
      (* per-mutator attempt/accept/coverage-credit counters from the
         mutation engine; Some for every nyx campaign, None for the
         baseline fuzzers. Deterministic. *)
  peer : peer_stats option;
      (* cooperating-peer counters; Some only for --mode peer campaigns.
         Deterministic. *)
}

let crashed r = List.exists (fun c -> c.kind <> "level-solved") r.crashes

let found_kind r kind = List.exists (fun c -> c.kind = kind) r.crashes

let pp_summary ppf r =
  Format.fprintf ppf
    "%s on %s: %d edges, %d execs in %a virtual (%.1f execs/s), %d crash kinds, corpus %d"
    r.fuzzer r.target r.final_edges r.execs Nyx_sim.Clock.pp_duration r.virtual_ns
    r.execs_per_sec (List.length r.crashes) r.corpus_size

let pp_resilience ppf (r : resilience) =
  Format.fprintf ppf
    "faults: %d injected, %d recovered, %d aborted; restarts: %d%s; backoff: %a"
    r.faults_injected r.faults_recovered r.faults_aborted r.restarts
    (if r.quarantined then " (quarantined)" else "")
    Nyx_sim.Clock.pp_duration r.backoff_ns

let pp_peer ppf (p : peer_stats) =
  let fired = List.fold_left (fun acc (_, n) -> acc + n) 0 p.peer_fired in
  Format.fprintf ppf
    "peer: %d actions, %d encoder faults fired%s; desyncs: %d, restarts: %d, \
     quarantines: %d; backoff: %a"
    p.peer_actions fired
    (if fired = 0 then ""
     else
       Printf.sprintf " (%s)"
         (String.concat ", "
            (List.filter_map
               (fun (site, n) ->
                 if n = 0 then None else Some (Printf.sprintf "%s:%d" site n))
               p.peer_fired)))
    p.peer_desyncs p.peer_restarts p.peer_quarantines Nyx_sim.Clock.pp_duration
    p.peer_backoff_ns

(* Deterministic comparison: everything but the informational wall-clock
   fields, which legitimately differ between two same-seed runs (and
   between a straight run and a kill+resume one). *)
let strip_wall r =
  let strip_profile (s : Nyx_obs.Profile.snapshot) =
    {
      s with
      Nyx_obs.Profile.entries =
        List.map (fun e -> { e with Nyx_obs.Profile.wall_s = 0.0 }) s.entries;
      total_wall_s = 0.0;
    }
  in
  { r with wall_s = 0.0; phase_profile = Option.map strip_profile r.phase_profile }

let same_deterministic a b = strip_wall a = strip_wall b
