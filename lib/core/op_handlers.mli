(** Shared opcode dispatch: turns the raw-network spec's opcodes
    (connect / packet / close / snapshot) into actions on an emulated
    network stack and a booted target.

    Used by the Nyx-Net executor and by the reimplemented baseline
    fuzzers, which differ only in costs, reset strategy and hooks — not in
    how opcodes drive the target. *)

type t

type custom_handler =
  send:(bytes -> unit) -> Nyx_spec.Spec.node_ty -> int list -> bytes array -> int list option
(** Hook for spec-specific opcodes (typed specs like the Firefox-IPC one):
    receives a [send] that delivers one packet on the implicit connection
    (opened lazily) and returns [Some outputs] when it handled the op. *)

val create :
  net:Nyx_netemu.Net.t ->
  runtime:Nyx_targets.Target.runtime ->
  target:Nyx_targets.Target.t ->
  ?after_packet:(unit -> unit) ->
  ?on_snapshot:(unit -> unit) ->
  ?custom:custom_handler ->
  unit ->
  t
(** [after_packet] runs after each delivered packet (baselines charge
    their response-wait here). [on_snapshot] handles the snapshot opcode
    (defaults to a no-op for fuzzers without incremental snapshots).
    [custom] is consulted first for opcodes the raw-network dispatch does
    not know. *)

val handlers : t -> Nyx_spec.Interp.handlers

val reset : t -> unit
(** Clear per-execution bookkeeping (UDP flow tokens). *)

val save_tokens : t -> (int * int) list * int * int option * int
(** Snapshot the UDP token, implicit-connection and outbound-adoption
    bookkeeping (for incremental-snapshot sessions). *)

val load_tokens : t -> (int * int) list * int * int option * int -> unit
