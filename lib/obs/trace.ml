type value = Int of int | Float of float | Str of string | Bool of bool

type event = {
  name : string;
  ph : [ `B | `E | `I ];
  dom : int;
  depth : int;
  vns : int;
  wall_ns : int;
  fields : (string * value) list;
}

(* ------------------------------------------------------------------ *)
(* Sinks.                                                              *)

type sink =
  | File of out_channel
  | Memory of event list ref
      (* test sink: events appended (reversed) under [sink_mutex] *)

(* Domain-safety: every flush/append to the shared sink holds
   [sink_mutex]; per-domain buffers (below) are domain-local. *)
let sink_mutex = Mutex.create ()

(* The armed sink. Written once at load (from NYX_TRACE, before any
   worker domain exists) and by [with_memory_sink] in single-writer
   tests; hot-path readers do one load + branch. Domain-safe: see
   [sink_mutex] for all mutation of the sink's contents. *)
let sink : sink option ref =
  ref
    (match Sys.getenv_opt "NYX_TRACE" with
    | None | Some "" -> None
    | Some path -> (
      match open_out_gen [ Open_wronly; Open_creat; Open_trunc ] 0o644 path with
      | chan -> Some (File chan)
      | exception Sys_error m ->
        Printf.eprintf "NYX_TRACE: cannot open %s (%s); tracing disabled\n%!" path m;
        None))

let on () = !sink <> None

(* ------------------------------------------------------------------ *)
(* Per-domain buffers.                                                 *)

type dstate = {
  buf : Buffer.t;  (* pending JSONL bytes, flushed under [sink_mutex] *)
  mutable stack : string list;  (* open span names, innermost first *)
}

(* Domain-safety: domain-local storage — each domain gets its own buffer
   and span stack from this key, so event sites never contend. *)
let dls : dstate Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { buf = Buffer.create 4096; stack = [] })

let flush_threshold = 1 lsl 16

(* Fault hook: make the next file-sink flush fail as if the descriptor
   had been closed under us. Domain-safe: read/cleared under [sink_mutex]. *)
let fail_next_flush = ref false

let inject_flush_failure () =
  Mutex.lock sink_mutex;
  fail_next_flush := true;
  Mutex.unlock sink_mutex

let flush_dstate d =
  if Buffer.length d.buf > 0 then begin
    (match !sink with
    | Some (File chan) -> (
      Mutex.lock sink_mutex;
      let result =
        if !fail_next_flush then begin
          fail_next_flush := false;
          Error "injected failure"
        end
        else
          match
            Buffer.output_buffer chan d.buf;
            Stdlib.flush chan
          with
          | () -> Ok ()
          | exception Sys_error m -> Error m
      in
      (match result with
      | Ok () -> ()
      | Error m ->
        (* Tracing is observational — a dead sink must not kill the
           campaign. Disable it (so this warns exactly once) and go on. *)
        close_out_noerr chan;
        sink := None;
        Printf.eprintf "nyx_obs: trace sink write failed (%s); tracing disabled\n%!"
          m);
      Mutex.unlock sink_mutex)
    | Some (Memory _) | None -> ());
    Buffer.clear d.buf
  end

let flush () = flush_dstate (Domain.DLS.get dls)

let () = at_exit flush

(* ------------------------------------------------------------------ *)
(* JSON encoding.                                                      *)

let add_json_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let add_value b = function
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f -> Buffer.add_string b (Printf.sprintf "%.6g" f)
  | Str s -> add_json_string b s
  | Bool v -> Buffer.add_string b (string_of_bool v)

let add_event_json b e =
  Buffer.add_string b "{\"ev\":";
  add_json_string b e.name;
  Buffer.add_string b ",\"ph\":\"";
  Buffer.add_char b (match e.ph with `B -> 'B' | `E -> 'E' | `I -> 'I');
  Buffer.add_string b "\",\"dom\":";
  Buffer.add_string b (string_of_int e.dom);
  Buffer.add_string b ",\"depth\":";
  Buffer.add_string b (string_of_int e.depth);
  Buffer.add_string b ",\"vt\":";
  Buffer.add_string b (string_of_int e.vns);
  Buffer.add_string b ",\"wt\":";
  Buffer.add_string b (string_of_int e.wall_ns);
  List.iter
    (fun (k, v) ->
      Buffer.add_char b ',';
      add_json_string b k;
      Buffer.add_char b ':';
      add_value b v)
    e.fields;
  Buffer.add_char b '}'

let event_json e =
  let b = Buffer.create 128 in
  add_event_json b e;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Emission.                                                           *)

let wall_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

let emit d e =
  match !sink with
  | None -> ()
  | Some (Memory events) ->
    Mutex.lock sink_mutex;
    events := e :: !events;
    Mutex.unlock sink_mutex
  | Some (File _) ->
    add_event_json d.buf e;
    Buffer.add_char d.buf '\n';
    if Buffer.length d.buf >= flush_threshold || (e.ph = `E && e.depth = 0) then
      flush_dstate d

let mk d ph ~vns name fields =
  {
    name;
    ph;
    dom = (Domain.self () :> int);
    depth = List.length d.stack;
    vns;
    wall_ns = wall_ns ();
    fields;
  }

let instant ?(vns = 0) name fields =
  if on () then begin
    let d = Domain.DLS.get dls in
    emit d (mk d `I ~vns name fields)
  end

let span_begin ?(vns = 0) name fields =
  if on () then begin
    let d = Domain.DLS.get dls in
    emit d (mk d `B ~vns name fields);
    d.stack <- name :: d.stack
  end

let span_end ?(vns = 0) name fields =
  if on () then begin
    let d = Domain.DLS.get dls in
    (match d.stack with [] -> () | _ :: tl -> d.stack <- tl);
    emit d (mk d `E ~vns name fields)
  end

let with_span ?vns_of name fields f =
  if not (on ()) then f ()
  else begin
    let vns = match vns_of with Some g -> g () | None -> 0 in
    span_begin ~vns name fields;
    Fun.protect
      ~finally:(fun () ->
        let vns = match vns_of with Some g -> g () | None -> 0 in
        span_end ~vns name [])
      f
  end

(* ------------------------------------------------------------------ *)
(* Test sink.                                                          *)

let with_memory_sink f =
  let events = ref [] in
  let saved = !sink in
  (* Flush any pending file-sink bytes so they are not re-attributed. *)
  flush ();
  sink := Some (Memory events);
  let restore () = sink := saved in
  let r = Fun.protect ~finally:restore f in
  (r, List.rev !events)

let with_file_sink path f =
  let chan = open_out_bin path in
  let saved = !sink in
  flush ();
  sink := Some (File chan);
  let restore () =
    flush ();
    (* The sink may have disabled itself (flush failure closed [chan]). *)
    (match !sink with Some (File c) when c == chan -> close_out_noerr c | _ -> ());
    sink := saved
  in
  Fun.protect ~finally:restore f
