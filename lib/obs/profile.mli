(** Per-phase cost profile of a fuzzing campaign (the paper's Table 3 /
    Figure 6 breakdown, applied to ourselves).

    A profile accumulates, per phase, how much {e virtual} time the
    campaign spent and how often the phase ran, plus the real wall-clock
    self-time as an informational column. Spans nest: a span records its
    self-time (its clock extent minus that of spans opened inside it), so
    phase totals never double-count and — together with the [Other]
    remainder computed by {!snapshot} — always sum to exactly the
    campaign's [virtual_ns].

    Phases map to the paper's reset-cost analysis (Table 3) as follows:
    [Reset] is snapshot-restore work (root and incremental), the paper's
    "reset" column; [Prefix_replay] is executing the message prefix up to
    the snapshot opcode (charged once per session); [Suffix_exec] is test
    execution proper (both whole-program runs from the root and suffix
    runs against an incremental snapshot); [Snapshot_create] is
    incremental-snapshot creation (Figure 6's create cost); [Snapshot_place] is the
    dynamic placement policy's own work — protocol-state boundary probes
    and cost-model decisions (zero for the static policies); [Cov_merge]
    and [Trim] are fuzzer bookkeeping with no paper analogue (virtually
    free and trim-only respectively); [Corpus_sync] is fleet sync-epoch
    work (judging and importing peer-exported programs — what fraction of
    fleet virtual time corpus sharing costs); [Mutation] is the mutation
    engine's candidate construction (splice/generate walks and offline
    verification — virtually free like the real system's mutation CPU,
    so the count and wall columns carry the signal); [Peer] is the
    cooperating peer driver's work in [--mode peer] campaigns — scripted
    encoding, fault application and supervised desync recovery (zero for
    bytecode campaigns); [Other] is everything unattributed (target boot,
    root-snapshot creation).

    Accumulation is purely observational: it reads the virtual clock and
    the wall clock but never advances either, so a profiled campaign
    produces bit-identical results to an unprofiled one. A profile is
    owned by a single campaign (one domain) — it holds no locks. *)

type phase =
  | Reset
  | Prefix_replay
  | Suffix_exec
  | Snapshot_create
  | Snapshot_place
  | Cov_merge
  | Trim
  | Corpus_sync
  | Mutation
  | Peer
  | Other

val phase_name : phase -> string
(** Lowercase hyphenated name, e.g. ["prefix-replay"]. *)

type t

val create : unit -> t

val span : t -> phase -> Nyx_sim.Clock.t -> (unit -> 'a) -> 'a
(** [span t phase clock f] runs [f], attributing the virtual time it
    advances [clock] by — minus any nested [span]'s share — to [phase]
    (self-time accounting). Under {!with_override} the given [phase] is
    ignored in favour of the override. Exceptions propagate; the span is
    still recorded. *)

val with_override : t -> phase -> (unit -> 'a) -> 'a
(** Attribute every span opened during [f] to the given phase, whatever
    phase its site names — how trim charges its internal resets and
    executions to [Trim]. Restores the previous override on exit. *)

(** {2 Checkpoint support} *)

type state = {
  ps_counts : int array;  (** span counts per phase, declaration order *)
  ps_virt : int array;  (** virtual self-time per phase *)
}

val state : t -> state
(** The deterministic accumulators (counts and virtual self-times).
    Wall-clock columns are informational and excluded. *)

val restore_state : t -> state -> unit
(** Overwrite the deterministic accumulators; wall-clock columns restart
    from zero (a resumed campaign reports only post-resume wall time). *)

(** {2 Snapshots} *)

type entry = {
  phase : phase;
  count : int;  (** spans recorded *)
  virtual_ns : int;  (** virtual self-time *)
  wall_s : float;  (** wall-clock self-time; informational only *)
}

type snapshot = {
  entries : entry list;  (** one per phase, fixed declaration order *)
  total_virtual_ns : int;
  total_wall_s : float;
}

val snapshot : t -> total_virtual_ns:int -> total_wall_s:float -> snapshot
(** Freeze the accumulated profile. [Other] receives the remainder
    [total_virtual_ns - sum(measured)], so the snapshot's virtual times
    sum to [total_virtual_ns] exactly. *)

val sum_virtual_ns : snapshot -> int
(** Sum of the entries' [virtual_ns] — equals [total_virtual_ns] by
    construction; exposed so tests can assert the identity. *)

val pp : Format.formatter -> snapshot -> unit
(** Pretty table: phase, count, virtual ns, share of total, wall s. *)

val to_json : snapshot -> string
(** The snapshot as a JSON object (phases array + totals). *)
