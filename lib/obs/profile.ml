type phase =
  | Reset
  | Prefix_replay
  | Suffix_exec
  | Snapshot_create
  | Snapshot_place
  | Cov_merge
  | Trim
  | Corpus_sync
  | Mutation
  | Peer
  | Other

let phases =
  [
    Reset;
    Prefix_replay;
    Suffix_exec;
    Snapshot_create;
    Snapshot_place;
    Cov_merge;
    Trim;
    Corpus_sync;
    Mutation;
    Peer;
    Other;
  ]

let num_phases = List.length phases

let index = function
  | Reset -> 0
  | Prefix_replay -> 1
  | Suffix_exec -> 2
  | Snapshot_create -> 3
  | Snapshot_place -> 4
  | Cov_merge -> 5
  | Trim -> 6
  | Corpus_sync -> 7
  | Mutation -> 8
  | Peer -> 9
  | Other -> 10

let phase_name = function
  | Reset -> "reset"
  | Prefix_replay -> "prefix-replay"
  | Suffix_exec -> "suffix-exec"
  | Snapshot_create -> "snapshot-create"
  | Snapshot_place -> "snapshot-place"
  | Cov_merge -> "cov-merge"
  | Trim -> "trim"
  | Corpus_sync -> "corpus-sync"
  | Mutation -> "mutation"
  | Peer -> "peer"
  | Other -> "other"

(* One campaign owns one profile on one domain (no locks): the fields are
   plain mutable accumulators. [inner_v]/[inner_w] implement self-time:
   while a span runs they accumulate the clock extent of spans nested
   inside it, which the enclosing span subtracts from its own extent. *)
type t = {
  counts : int array;
  virt : int array;
  wall : float array;
  mutable override_ : phase option;
  mutable inner_v : int;
  mutable inner_w : float;
}

let create () =
  {
    counts = Array.make num_phases 0;
    virt = Array.make num_phases 0;
    wall = Array.make num_phases 0.0;
    override_ = None;
    inner_v = 0;
    inner_w = 0.0;
  }

let span t phase clock f =
  let ph = match t.override_ with Some p -> p | None -> phase in
  let v0 = Nyx_sim.Clock.now_ns clock in
  let w0 = Unix.gettimeofday () in
  let outer_v = t.inner_v and outer_w = t.inner_w in
  t.inner_v <- 0;
  t.inner_w <- 0.0;
  let finish () =
    let dv = Nyx_sim.Clock.now_ns clock - v0 in
    let dw = Unix.gettimeofday () -. w0 in
    let i = index ph in
    t.counts.(i) <- t.counts.(i) + 1;
    t.virt.(i) <- t.virt.(i) + (dv - t.inner_v);
    t.wall.(i) <- t.wall.(i) +. (dw -. t.inner_w);
    (* Report our whole extent to the enclosing span (if any). *)
    t.inner_v <- outer_v + dv;
    t.inner_w <- outer_w +. dw
  in
  Fun.protect ~finally:finish f

let with_override t phase f =
  let saved = t.override_ in
  t.override_ <- Some phase;
  Fun.protect ~finally:(fun () -> t.override_ <- saved) f

(* Checkpoint support: the deterministic accumulators only. Wall-clock
   columns are informational and restart from zero on resume. *)

type state = { ps_counts : int array; ps_virt : int array }

let state t = { ps_counts = Array.copy t.counts; ps_virt = Array.copy t.virt }

let restore_state t s =
  if Array.length s.ps_counts <> num_phases || Array.length s.ps_virt <> num_phases
  then invalid_arg "Profile.restore_state: phase arity mismatch";
  Array.blit s.ps_counts 0 t.counts 0 num_phases;
  Array.blit s.ps_virt 0 t.virt 0 num_phases

(* ------------------------------------------------------------------ *)
(* Snapshots.                                                          *)

type entry = { phase : phase; count : int; virtual_ns : int; wall_s : float }

type snapshot = {
  entries : entry list;
  total_virtual_ns : int;
  total_wall_s : float;
}

let snapshot t ~total_virtual_ns ~total_wall_s =
  let measured_v = Array.fold_left ( + ) 0 t.virt in
  let measured_w = Array.fold_left ( +. ) 0.0 t.wall in
  let entries =
    List.map
      (fun phase ->
        let i = index phase in
        match phase with
        | Other ->
          {
            phase;
            count = t.counts.(i);
            virtual_ns = t.virt.(i) + (total_virtual_ns - measured_v);
            wall_s = t.wall.(i) +. (total_wall_s -. measured_w);
          }
        | _ ->
          { phase; count = t.counts.(i); virtual_ns = t.virt.(i); wall_s = t.wall.(i) })
      phases
  in
  { entries; total_virtual_ns; total_wall_s }

let sum_virtual_ns s = List.fold_left (fun acc e -> acc + e.virtual_ns) 0 s.entries

let share total ns =
  if total = 0 then 0.0 else 100.0 *. float_of_int ns /. float_of_int total

let pp ppf s =
  Format.fprintf ppf "%-16s %10s %16s %7s %12s@." "phase" "count" "virtual ns" "%"
    "wall s";
  List.iter
    (fun e ->
      Format.fprintf ppf "%-16s %10d %16d %6.1f%% %12.4f@." (phase_name e.phase)
        e.count e.virtual_ns
        (share s.total_virtual_ns e.virtual_ns)
        e.wall_s)
    s.entries;
  Format.fprintf ppf "%-16s %10s %16d %6.1f%% %12.4f@." "total" "" s.total_virtual_ns
    100.0 s.total_wall_s

let to_json s =
  let b = Buffer.create 512 in
  Buffer.add_string b "{\n  \"phases\": [\n";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b
        (Printf.sprintf
           "    {\"phase\": %S, \"count\": %d, \"virtual_ns\": %d, \"share\": %.4f, \
            \"wall_s\": %.6f}"
           (phase_name e.phase) e.count e.virtual_ns
           (share s.total_virtual_ns e.virtual_ns /. 100.0)
           e.wall_s))
    s.entries;
  Buffer.add_string b
    (Printf.sprintf "\n  ],\n  \"total_virtual_ns\": %d,\n  \"total_wall_s\": %.6f\n}"
       s.total_virtual_ns s.total_wall_s);
  Buffer.contents b
