(** Structured tracing: JSONL event streams from the fuzzing hot paths.

    Off by default and zero-cost when off: every event site is guarded by
    [if Trace.on () then ...], a single load + branch, and field lists are
    only allocated inside that guard. Setting [NYX_TRACE=<path>] in the
    environment (read once at load, like [NYX_SANITIZE]) arms the tracer
    and appends one JSON object per line to [<path>].

    Events carry two timestamps: [vns], the deterministic virtual-time
    stamp supplied by the instrumentation site (same-seed runs produce
    identical [vns] sequences), and [wall_ns], the real wall clock
    (informational only — determinism tests mask it). Span begin/end
    events additionally carry the per-domain nesting [depth], so a trace
    is a well-nested forest per domain.

    Domain-safety: each domain accumulates events into its own buffer
    (domain-local storage); buffers are flushed to the shared sink under
    a mutex, so lines from concurrent domains never interleave
    mid-record. The [dom] field identifies the emitting domain. *)

type value = Int of int | Float of float | Str of string | Bool of bool

type event = {
  name : string;
  ph : [ `B  (** span begin *) | `E  (** span end *) | `I  (** instant *) ];
  dom : int;  (** emitting domain id *)
  depth : int;  (** span nesting level in that domain (B and its E agree) *)
  vns : int;  (** virtual-time stamp; deterministic for a fixed seed *)
  wall_ns : int;  (** wall-clock stamp; informational, masked in tests *)
  fields : (string * value) list;
}

val on : unit -> bool
(** Whether a sink is armed ([NYX_TRACE] at load, or a test sink). The
    guard every event site checks before building fields. *)

val instant : ?vns:int -> string -> (string * value) list -> unit
(** Emit a point event (default [vns] 0). No-op when off. *)

val span_begin : ?vns:int -> string -> (string * value) list -> unit
(** Open a span on the current domain: emits a [`B] event and pushes the
    span on the domain's nesting stack. *)

val span_end : ?vns:int -> string -> (string * value) list -> unit
(** Close the innermost span: emits a [`E] event with the matching
    depth. The [name] should equal the matching [span_begin]'s. *)

val with_span :
  ?vns_of:(unit -> int) -> string -> (string * value) list -> (unit -> 'a) -> 'a
(** [with_span ~vns_of name fields f] wraps [f] in a begin/end pair,
    stamping each end-point via [vns_of] (the span's virtual extent).
    The end event is emitted even when [f] raises. When tracing is off
    this is exactly [f ()]. *)

val flush : unit -> unit
(** Flush the calling domain's buffer to the sink. Buffers also
    auto-flush when a domain's nesting returns to depth 0 and when they
    exceed an internal size threshold; the main domain flushes [at_exit]. *)

val event_json : event -> string
(** The JSONL encoding of one event (no trailing newline) — the format
    the file sink writes. Exposed for tests and external consumers. *)

val with_memory_sink : (unit -> 'a) -> 'a * event list
(** Run [f] with tracing temporarily armed into an in-memory sink and
    return the events emitted (in emission order). Test-only: replaces
    any file sink for the duration and restores it afterwards. Events
    from all domains are collected under a mutex. *)

val with_file_sink : string -> (unit -> 'a) -> 'a
(** Run [f] with tracing armed into a fresh file at [path] (test helper;
    restores the previous sink and closes the file afterwards). *)

val inject_flush_failure : unit -> unit
(** Fault hook: the next file-sink flush fails as if the descriptor had
    been closed. A failed flush never raises into the campaign — the sink
    disables itself with a single stderr warning and subsequent event
    sites see tracing off. *)
