type tile = Air | Solid | Spike | Flag

type t = {
  name : string;
  grid : tile array array;
  width : int;
  height : int;
  spawn_col : int;
  flag_col : int;
}

let tile_px = 16

let tile_of_char = function
  | '#' -> Solid
  | '^' -> Spike
  | 'F' -> Flag
  | _ -> Air

let parse ~name rows =
  match rows with
  | [] -> invalid_arg "Level.parse: empty level"
  | first :: _ ->
    let width = String.length first in
    if not (List.for_all (fun r -> String.length r = width) rows) then
      invalid_arg "Level.parse: ragged rows";
    let grid =
      Array.of_list
        (List.map (fun row -> Array.init width (fun c -> tile_of_char row.[c])) rows)
    in
    let height = Array.length grid in
    let flag_col = ref (-1) in
    Array.iter
      (fun row ->
        Array.iteri (fun c t -> if t = Flag && !flag_col < 0 then flag_col := c) row)
      grid;
    if !flag_col < 0 then invalid_arg "Level.parse: no flag";
    { name; grid; width; height; spawn_col = 2; flag_col = !flag_col }

let tile_at t ~col ~row =
  if col < 0 then Solid
  else if col >= t.width || row < 0 || row >= t.height then Air
  else t.grid.(row).(col)

(* Hand-crafted 1-1: gentle gaps, a hurdle, a staircase, pipes-as-walls. *)
let level_1_1 =
  parse ~name:"1-1"
    [
      "                                                                                                         ";
      "                                                                                                         ";
      "                                                                                                         ";
      "                                                                                                         ";
      "                                                                                                   F     ";
      "                         ##                                                        #               F     ";
      "              ####                    ##        #            #                    ##               F     ";
      "                                               ##           ##          ###      ###               F     ";
      "                                              ###          ###                  ####               F     ";
      "                                             ####         ####                 #####               F     ";
      "                                                                                                   F     ";
      "                                                                                                   F     ";
      "######################################   ######################   ###################################### ";
      "######################################   ######################   ###################################### ";
    ]

(* Deterministic generated layouts for the remaining levels. *)

let height = 18
let ground_row = 16

type canvas = { mutable cols : tile array list (* reversed columns *) }

let air_column () = Array.make height Air

let ground_column ?(ground_height = 2) () =
  let col = air_column () in
  for r = height - ground_height to height - 1 do
    col.(r) <- Solid
  done;
  col

let push canvas col = canvas.cols <- col :: canvas.cols

let flat canvas n =
  for _ = 1 to n do
    push canvas (ground_column ())
  done

let gap canvas n =
  for _ = 1 to n do
    push canvas (air_column ())
  done

let hurdle canvas h =
  (* A wall of height [h] standing on the ground. *)
  let col = ground_column () in
  for r = ground_row - h to ground_row - 1 do
    col.(r) <- Solid
  done;
  push canvas col

let staircase canvas h =
  for step = 1 to h do
    let col = ground_column () in
    for r = ground_row - step to ground_row - 1 do
      col.(r) <- Solid
    done;
    push canvas col
  done;
  for step = h downto 1 do
    let col = ground_column () in
    for r = ground_row - step to ground_row - 1 do
      col.(r) <- Solid
    done;
    push canvas col
  done

let spikes canvas n =
  for _ = 1 to n do
    let col = ground_column () in
    col.(ground_row - 1) <- Spike;
    push canvas col
  done

let platform_gap canvas width =
  (* A gap too wide to clear directly, with a stepping platform two tiles
     up spanning the middle third. *)
  let mid = width / 2 in
  for i = 1 to width do
    let col = air_column () in
    if i >= mid - 1 && i <= mid + 1 then col.(ground_row - 2) <- Solid;
    push canvas col
  done

(* The 2-1 cliff: 12 tiles high. A normal jump gains ~3.5 tiles, so the
   only way up is chaining wall-jump glitches against the cliff face. *)
let cliff canvas rise =
  for _ = 1 to 12 do
    let col = air_column () in
    for r = height - rise - 2 to height - 1 do
      col.(r) <- Solid
    done;
    (* Carve a 1-wide shaft so the player stands next to the wall. *)
    push canvas col
  done

let elevated_flat canvas rise n =
  for _ = 1 to n do
    let col = air_column () in
    for r = height - rise - 2 to height - 1 do
      col.(r) <- Solid
    done;
    push canvas col
  done

let finish canvas ~elevated_rise =
  let mk () =
    if elevated_rise > 0 then begin
      let col = air_column () in
      for r = height - elevated_rise - 2 to height - 1 do
        col.(r) <- Solid
      done;
      col
    end
    else ground_column ()
  in
  for _ = 1 to 4 do
    push canvas (mk ())
  done;
  let flag = mk () in
  let top = if elevated_rise > 0 then height - elevated_rise - 2 else ground_row in
  for r = 3 to top - 1 do
    flag.(r) <- Flag
  done;
  push canvas flag;
  for _ = 1 to 3 do
    push canvas (mk ())
  done

let generate ~world ~stage =
  let name = Printf.sprintf "%d-%d" world stage in
  if name = "1-1" then level_1_1
  else begin
    let difficulty = ((world - 1) * 4) + stage in
    let rng = Nyx_sim.Rng.create (1000 + (world * 37) + stage) in
    let canvas = { cols = [] } in
    flat canvas 8;
    let sections = 10 + min 14 difficulty in
    let is_shaft_level = world = 2 && stage = 1 in
    for s = 1 to sections do
      if is_shaft_level && s = sections / 3 then begin
        (* The wall-jump shaft, then continue on the plateau. *)
        flat canvas 3;
        cliff canvas 12;
        elevated_flat canvas 12 6
      end
      else begin
        (match Nyx_sim.Rng.int rng 5 with
        | 0 -> gap canvas (2 + min 2 (Nyx_sim.Rng.int rng (1 + (difficulty / 8))))
        | 1 -> hurdle canvas (1 + Nyx_sim.Rng.int rng (min 3 (1 + (difficulty / 6))))
        | 2 -> staircase canvas (1 + Nyx_sim.Rng.int rng 3)
        | 3 -> if difficulty >= 4 then spikes canvas (1 + Nyx_sim.Rng.int rng 2) else flat canvas 2
        | _ -> if difficulty >= 10 then platform_gap canvas 6 else gap canvas 2);
        flat canvas (4 + Nyx_sim.Rng.int rng 6)
      end
    done;
    finish canvas ~elevated_rise:(if is_shaft_level then 12 else 0);
    let cols = Array.of_list (List.rev canvas.cols) in
    let width = Array.length cols in
    let grid = Array.init height (fun r -> Array.init width (fun c -> cols.(c).(r))) in
    let flag_col = ref (width - 4) in
    Array.iteri
      (fun c col -> if Array.exists (fun t -> t = Flag) col && c < !flag_col then flag_col := c)
      cols;
    { name; grid; width; height; spawn_col = 2; flag_col = !flag_col }
  end

let all () =
  List.concat_map
    (fun world -> List.map (fun stage -> generate ~world ~stage) [ 1; 2; 3; 4 ])
    [ 1; 2; 3; 4; 5; 6; 7; 8 ]

let find name =
  List.find_opt (fun l -> l.name = name) (all ())

(* Run speed is 56 sixteenths (3.5 px) per frame; obstacles force jump
   arcs that cost roughly 10% extra. *)
let speedrun_frames t =
  let px = (t.flag_col - t.spawn_col) * tile_px in
  px * 16 / 56 * 11 / 10

let render ?(path = []) t =
  let buf = Buffer.create (t.width * t.height) in
  let path_cells =
    List.map (fun (x, y) -> (x / tile_px, y / tile_px)) path
  in
  for r = 0 to t.height - 1 do
    for c = 0 to t.width - 1 do
      let ch =
        if List.mem (c, r) path_cells then 'o'
        else
          match t.grid.(r).(c) with
          | Air -> ' '
          | Solid -> '#'
          | Spike -> '^'
          | Flag -> 'F'
      in
      Buffer.add_char buf ch
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf
