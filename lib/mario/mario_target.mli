(** Adapter exposing a Mario level as a message-based fuzz target.

    Input packets are frame-input chunks delivered over the emulated
    network (the game "plays" whatever buttons arrive), so the whole
    snapshot/executor machinery applies unchanged: incremental snapshots
    freeze the game mid-level exactly as in Figure 2. Reaching the flag
    raises {!Game.Level_solved}, which the executor reports like a crash
    with kind ["level-solved"]. *)

val target : Level.t -> Nyx_targets.Target.t
(** Fresh target for one level (port 6000, UDP-style datagram input). *)

val seeds : Level.t -> bytes list list
(** "Hold right and run" input chunks long enough to cross the level if
    it were flat — the natural starting corpus. *)

val packet_bytes : int
(** Input bytes per packet (16 ⇒ 64 frames). *)
