(** Super Mario Bros.-style levels.

    The paper's §5.3 experiment recreates IJON's Super Mario setup with 32
    levels (worlds 1–8, stages 1–4). Ours are tile maps: level 1-1 is
    hand-crafted; the rest are generated deterministically from the
    (world, stage) pair with difficulty-scaled obstacles. Level 2-1
    contains a shaft that cannot be crossed with a normal jump — only the
    wall-jump glitch escapes it, reproducing the level IJON's authors
    believed unsolvable. *)

type tile = Air | Solid | Spike | Flag

type t = {
  name : string;
  grid : tile array array;  (** [grid.(row).(col)], row 0 at top *)
  width : int;  (** columns *)
  height : int;  (** rows *)
  spawn_col : int;
  flag_col : int;
}

val tile_px : int
(** Pixels per tile (16). *)

val parse : name:string -> string list -> t
(** Rows top to bottom: ['#'] solid, ['^'] spike, ['F'] flag pole,
    [' '] air.
    @raise Invalid_argument on ragged rows or a missing flag. *)

val generate : world:int -> stage:int -> t
(** Deterministic layout; difficulty grows with [4 * world + stage]. *)

val all : unit -> t list
(** All 32 levels, 1-1 … 8-4. *)

val find : string -> t option
(** Look up by name, e.g. ["1-1"]. *)

val tile_at : t -> col:int -> row:int -> tile
(** Out-of-range columns are air; out-of-range rows above are air, below
    are air too (falling off the world is handled by the game). *)

val speedrun_frames : t -> int
(** Frames a flawless player needs to cross the level at full running
    speed (a small allowance added for mandatory jumps) — the yardstick
    behind the paper's "faster than light" comparison: at the native
    60 FPS, playing the level once takes [speedrun_frames / 60]
    seconds. *)

val render : ?path:(int * int) list -> t -> string
(** ASCII rendering, optionally overlaying a trajectory (pixel
    coordinates) with ['o'] marks — the Figure 2 visualization. *)
