open Nyx_targets

let packet_bytes = 16

(* The booted Game.t is stored per-context via the global state block: the
   state address Game allocates is recorded at g+0 so each boot has its own
   instance. The Game.t wrapper itself is reconstructed per packet. *)

let target level =
  let game_ref : (Ctx.t * Game.t) option ref = ref None in
  let on_init ctx ~g:_ =
    game_ref := Some (ctx, Game.boot ctx level)
  in
  let on_packet ctx ~g:_ ~conn:_ ~reply:_ data =
    match !game_ref with
    | Some (boot_ctx, game) when boot_ctx == ctx -> (
      try Game.run_input game data
      with Game.Level_solved { frames } ->
        Ctx.crash ctx ~kind:"level-solved" (Printf.sprintf "solved in %d frames" frames))
    | _ -> Ctx.crash ctx ~kind:"harness" "game not booted for this context"
  in
  {
    Target.info =
      {
        Target.name = "mario-" ^ level.Level.name;
        role = Target.Server;
        port = 6000;
        proto = Nyx_netemu.Net.Udp;
        dissector = Nyx_pcap.Dissector.Datagram;
        startup_ns = 100_000_000;
        work_ns = 0 (* frames charge their own cost *);
        desock_compat = false;
        forking = false;
        max_recv = 256;
        dict = [];
      };
    hooks = { Target.default_hooks with on_init; on_packet };
  }

let seeds level =
  (* Enough hold-right-and-run packets to cross the level at max speed if
     it were flat. The fuzzer has to discover every jump itself. *)
  let px_needed = (level.Level.flag_col + 2) * Level.tile_px in
  let frames = px_needed * 16 / 40 (* walk speed *) in
  let bytes_needed = 1 + (frames / Game.frames_per_byte) in
  let n_packets = 1 + (bytes_needed / packet_bytes) in
  let run_right = Char.chr 0b1001 (* right+run *) in
  [ List.init n_packets (fun _ -> Bytes.make packet_bytes run_right) ]
