open Nyx_vm
open Nyx_targets

type t = { ctx : Ctx.t; level : Level.t; base : int }

type buttons = { right : bool; left : bool; jump : bool; run : bool }

exception Level_solved of { frames : int }

let frames_per_byte = 4
let frame_cost_ns = 50_000

let buttons_of_byte b =
  {
    right = b land 1 <> 0;
    left = b land 2 <> 0;
    jump = b land 4 <> 0;
    run = b land 8 <> 0;
  }

(* Guest-state field offsets (i32, sixteenths of a pixel for kinematics). *)
let f_x = 0
let f_y = 4
let f_vx = 8
let f_vy = 12
let f_on_ground = 16
let f_alive = 20
let f_won = 24
let f_frame = 28
let f_wall = 32 (* -1 touching left wall, 1 right wall, 0 none *)
let f_max_x = 36
let f_prev_jump = 40
let state_size = 44

(* Physics constants, in sixteenths of a pixel per frame. *)
let gravity = 8
let move_accel = 6
let friction = 4
let max_vx_walk = 40
let max_vx_run = 56
let jump_velocity = 120
let max_fall = 80

(* Player hitbox in pixels. *)
let body_w = 12
let body_h = 14

let px16 v = v * 16

let boot ctx level =
  let base = Guest_heap.alloc ctx.Ctx.heap state_size in
  let set off v = Guest_heap.set_i32 ctx.Ctx.heap (base + off) v in
  set f_x (px16 (level.Level.spawn_col * Level.tile_px));
  set f_y (px16 ((level.Level.height - 4) * Level.tile_px));
  set f_alive 1;
  { ctx; level; base }

let get t off = Guest_heap.get_i32 t.ctx.Ctx.heap (t.base + off)

(* The frame loop reads and writes the whole state block once per frame
   instead of field by field: one guest transaction each way. *)
let decode_i32 buf off =
  let v = ref 0 in
  for i = 3 downto 0 do
    v := (!v lsl 8) lor Char.code (Bytes.get buf (off + i))
  done;
  (!v lsl (Sys.int_size - 32)) asr (Sys.int_size - 32)

let encode_i32 buf off v =
  for i = 0 to 3 do
    Bytes.set buf (off + i) (Char.chr ((v lsr (8 * i)) land 0xff))
  done

let alive t = get t f_alive = 1
let won t = get t f_won = 1
let x_px t = get t f_x / 16
let y_px t = get t f_y / 16
let frame t = get t f_frame
let max_x_px t = get t f_max_x / 16

(* Does the player's box at (x16, y16) overlap a tile equal to [tile]?
   Allocation-free: this runs several times per frame. *)
let box_hits t tile x16 y16 =
  let x = x16 / 16 and y = y16 / 16 in
  let c0 = x / Level.tile_px and c1 = (x + body_w - 1) / Level.tile_px in
  let r0 = y / Level.tile_px
  and r1 = (y + (body_h / 2)) / Level.tile_px
  and r2 = (y + body_h - 1) / Level.tile_px in
  let at col row = Level.tile_at t.level ~col ~row == tile in
  at c0 r0 || at c0 r1 || at c0 r2 || at c1 r0 || at c1 r1 || at c1 r2

let step t (b : buttons) =
  let state = Guest_heap.get_bytes t.ctx.Ctx.heap t.base state_size in
  if decode_i32 state f_alive <> 1 || decode_i32 state f_won = 1 then ()
  else begin
    Ctx.work t.ctx frame_cost_ns;
    let x = decode_i32 state f_x and y = decode_i32 state f_y in
    let vx = decode_i32 state f_vx and vy = decode_i32 state f_vy in
    let on_ground = decode_i32 state f_on_ground = 1 in
    let wall = decode_i32 state f_wall in
    let prev_jump = decode_i32 state f_prev_jump = 1 in
    (* Horizontal control. *)
    let max_vx = if b.run then max_vx_run else max_vx_walk in
    let vx =
      if b.right && not b.left then min max_vx (vx + move_accel)
      else if b.left && not b.right then max (-max_vx) (vx - move_accel)
      else if vx > 0 then max 0 (vx - friction)
      else min 0 (vx + friction)
    in
    (* Jumping: grounded jumps, plus the wall-jump glitch (a fresh jump
       press while falling against a wall, pushing into it). *)
    let jump_pressed = b.jump && not prev_jump in
    let vy =
      if jump_pressed && on_ground then -jump_velocity
      else if
        (* The glitch window is tight: the press must land just after the
           apex, while drifting down slowly against the wall. *)
        jump_pressed && (not on_ground) && vy > 0 && vy < 56
        && ((wall = 1 && b.right) || (wall = -1 && b.left))
      then begin
        Ctx.hit t.ctx "mario/walljump-glitch";
        -jump_velocity
      end
      else vy
    in
    let vy = min max_fall (vy + gravity) in
    (* Horizontal move and wall resolution. *)
    let new_x = max 0 (x + vx) in
    let x, vx, wall =
      if box_hits t Level.Solid new_x y then begin
        (* Clamp to the tile edge we ran into. *)
        let dir = if vx > 0 then 1 else -1 in
        let col =
          if vx > 0 then ((new_x / 16) + body_w - 1) / Level.tile_px
          else new_x / 16 / Level.tile_px
        in
        let clamped =
          if vx > 0 then px16 (col * Level.tile_px) - px16 body_w
          else px16 ((col + 1) * Level.tile_px)
        in
        (clamped, 0, dir)
      end
      else begin
        (* Still touching a wall if pushing against an adjacent tile. *)
        let touching_right = box_hits t Level.Solid (new_x + 16) y in
        let touching_left = new_x >= 16 && box_hits t Level.Solid (new_x - 16) y in
        (new_x, vx, if touching_right then 1 else if touching_left then -1 else 0)
      end
    in
    (* Vertical move, landing and ceilings. *)
    let new_y = y + vy in
    let y, vy =
      if box_hits t Level.Solid x new_y then begin
        if vy > 0 then begin
          let row = ((new_y / 16) + body_h - 1) / Level.tile_px in
          (px16 (row * Level.tile_px) - px16 body_h, 0)
        end
        else begin
          let row = new_y / 16 / Level.tile_px in
          (px16 ((row + 1) * Level.tile_px), 0)
        end
      end
      else (new_y, vy)
    in
    (* Grounded when solid ground sits one pixel below the feet (the
       landing clamp leaves the hitbox just above the tile). *)
    let on_ground = vy >= 0 && box_hits t Level.Solid x (y + 16) in
    (* Hazards and goals. *)
    let alive_now = ref true in
    if box_hits t Level.Spike x y then begin
      Ctx.hit t.ctx "mario/death:spike";
      alive_now := false
    end;
    if y / 16 > t.level.Level.height * Level.tile_px then begin
      Ctx.hit t.ctx "mario/death:pit";
      alive_now := false
    end;
    let frame = decode_i32 state f_frame + 1 in
    let won_now = !alive_now && x / 16 >= t.level.Level.flag_col * Level.tile_px in
    encode_i32 state f_x x;
    encode_i32 state f_y y;
    encode_i32 state f_vx vx;
    encode_i32 state f_vy vy;
    encode_i32 state f_on_ground (if on_ground then 1 else 0);
    encode_i32 state f_wall wall;
    encode_i32 state f_prev_jump (if b.jump then 1 else 0);
    encode_i32 state f_frame frame;
    encode_i32 state f_alive (if !alive_now then 1 else 0);
    if x > decode_i32 state f_max_x then encode_i32 state f_max_x x;
    if won_now then encode_i32 state f_won 1;
    Guest_heap.set_bytes t.ctx.Ctx.heap t.base state;
    (* IJON-style position feedback: a coverage site per 32x32-px cell
       (integer site ids: this runs every frame). *)
    Ctx.hit_id t.ctx (0x4d00 + (977 * (x / 16 / 32)) + (31 * (y / 16 / 32)));
    if won_now then begin
      Ctx.hit t.ctx "mario/win";
      raise (Level_solved { frames = frame })
    end
  end

let run_input t data =
  Bytes.iter
    (fun c ->
      let b = buttons_of_byte (Char.code c) in
      for _ = 1 to frames_per_byte do
        step t b
      done)
    data
