(** The platformer engine.

    Deterministic fixed-point physics; all mutable game state lives in
    guest memory so whole-VM snapshots capture mid-level positions — the
    property Figure 2 visualizes. Includes the wall-jump glitch: pressing
    jump while airborne, falling, and pushing against a wall resets
    vertical velocity, letting the player climb vertical faces (how 2-1
    becomes solvable).

    Coverage feedback is IJON-style: every frame hits a coverage site
    derived from the player's position bucket, so new screen areas count
    as new coverage for every fuzzer under comparison. *)

type t

type buttons = { right : bool; left : bool; jump : bool; run : bool }

val buttons_of_byte : int -> buttons
(** bit 0 right, bit 1 left, bit 2 jump, bit 3 run. *)

val frames_per_byte : int
(** Each input byte holds its buttons for this many frames (4). *)

val frame_cost_ns : int
(** Simulated cost of emulating one frame. *)

val boot : Nyx_targets.Ctx.t -> Level.t -> t
(** Allocate game state in the guest heap at the spawn position. *)

val step : t -> buttons -> unit
(** Advance one frame (no-op once dead or won). *)

val run_input : t -> bytes -> unit
(** Feed one input packet: {!frames_per_byte} frames per byte. *)

val alive : t -> bool
val won : t -> bool
val x_px : t -> int
val y_px : t -> int
val frame : t -> int
val max_x_px : t -> int

exception Level_solved of { frames : int }
(** Raised by {!step} on reaching the flag — the "crash" the fuzzers hunt
    for in the Mario experiment (IJON instruments the win the same way). *)
