(** The Nyx-Net snapshot engine: one root snapshot plus at most one
    incremental snapshot, recreated on demand (§3.4, §4.2).

    The incremental snapshot is backed by a persistent {e mirror}: a table
    of page copies that, together with copy-on-write references to the root
    image, looks like a complete second snapshot of physical memory. Taking
    an incremental snapshot costs roughly one restore: stale mirror entries
    are overwritten with root content, then the pages dirtied since the
    root snapshot are copied in. Entries accumulate (worst case one full
    extra image), so the mirror is re-mirrored to a clean state every
    [remirror_interval] creations (2,000 in the paper). *)

type t

type stats = {
  root_restores : int;
  incremental_creates : int;
  incremental_restores : int;
  pages_restored : int;
  remirrors : int;
}

val create :
  ?remirror_interval:int -> Nyx_vm.Vm.t -> Aux_state.t -> t
(** Take the root snapshot of the VM's current state (expensive: copies
    every materialized page). [remirror_interval] defaults to 2000. *)

val vm : t -> Nyx_vm.Vm.t

val aux : t -> Aux_state.t
(** The auxiliary-state registry the engine captures alongside memory —
    also the input of the fuzzy protocol-state hash. *)

val has_incremental : t -> bool

val last_create_pages : t -> int
(** Pages copied by the most recent {!take_incremental} (0 before the
    first) — the measured dirty-set size behind the dynamic placement
    policy's cost model. Advisory: read it right after the create it
    describes; it is not checkpointed. *)

val take_incremental : t -> unit
(** Snapshot the current VM state as the secondary snapshot. The engine
    must be in root mode.
    @raise Invalid_argument if an incremental snapshot is already active. *)

val restore : t -> unit
(** Reset the VM to the active snapshot: the incremental one when present,
    the root otherwise. This is the per-test-case reset.
    @raise Nyx_resilience.Fault.Injected
      when the VM has a fault plan armed and the active incremental
      snapshot carries a latent fault (corrupted at creation, lossy dirty
      log, or a restore failure injected now). The engine state is left
      untouched; recover by calling {!restore_root}, which discards the
      faulted incremental and rebuilds from the root — the paper's
      recreate-on-demand path (§3.4). *)

val restore_root : t -> unit
(** Discard the incremental snapshot (if any) and reset to the root —
    what happens when the fuzzer schedules the next input. Retires any
    pending injected faults as recovered. *)

val pending : t -> Nyx_resilience.Fault.t list
(** Latent injected faults on the active incremental snapshot (empty when
    no fault plan is armed). *)

val stats : t -> stats

val mirror_pages : t -> int
(** Pages currently held by the incremental mirror (accumulation metric
    behind the 2,000-create re-mirror policy). *)

val root_stored_bytes : t -> int
(** Bytes held by the (shareable, immutable) root image — the quantity
    behind the §5.3 scalability claim that 80 instances need ~2× the
    memory of one. *)

(** {2 Checkpoint support}

    An engine's observable state between executions reduces to the mirror
    key set, the counters, and the dirty-stack order; page contents are
    always overwritten before they are next read. *)

type persisted = {
  p_mirror : int list;  (** mirror pfns, sorted *)
  p_creates_since_remirror : int;
  p_stats : stats;
  p_dirty : int list;  (** dirty pfns, in dirtying order *)
}

val checkpoint : t -> persisted
(** @raise Invalid_argument if an incremental snapshot is active. *)

val restore_checkpoint : t -> persisted -> unit
(** Re-establish a checkpointed engine state on a freshly booted engine
    for the same target. Cost-free: the caller restores the virtual clock
    separately. @raise Invalid_argument if an incremental is active. *)
