open Nyx_vm

type stats = {
  root_restores : int;
  incremental_creates : int;
  incremental_restores : int;
  pages_restored : int;
  remirrors : int;
}

type t = {
  vm : Vm.t;
  aux : Aux_state.t;
  root : Root.t;
  mirror : (int, Bytes.t) Hashtbl.t;
  remirror_interval : int;
  mutable creates_since_remirror : int;
  mutable inc_device : bytes option;
  mutable inc_aux : Aux_state.capture option;
  mutable active : bool;
  mutable pending : Nyx_resilience.Fault.t list;
      (* latent faults on the active incremental snapshot (injected at
         creation or at a failed restore); detected — raised — at the
         next incremental restore, retired as recovered by restore_root *)
  mutable s_root_restores : int;
  mutable s_inc_creates : int;
  mutable s_inc_restores : int;
  mutable s_pages_restored : int;
  mutable s_remirrors : int;
  mutable last_create_pages : int;
      (* pages copied by the most recent take_incremental — the measured
         dirty-set size the dynamic placement policy's cost model reads *)
}

let create ?(remirror_interval = 2000) vm aux =
  let root = Root.create vm aux in
  {
    vm;
    aux;
    root;
    mirror = Hashtbl.create 256;
    remirror_interval;
    creates_since_remirror = 0;
    inc_device = None;
    inc_aux = None;
    active = false;
    pending = [];
    s_root_restores = 0;
    s_inc_creates = 0;
    s_inc_restores = 0;
    s_pages_restored = 0;
    s_remirrors = 0;
    last_create_pages = 0;
  }

let vm t = t.vm
let aux t = t.aux
let has_incremental t = t.active
let last_create_pages t = t.last_create_pages

let charge_page t = Nyx_sim.Clock.advance t.vm.clock Nyx_sim.Cost.page_copy

let root_page_or_zero t pfn =
  match Root.page t.root pfn with Some p -> p | None -> Page.zero ()

(* Remap the mirror back onto a clean CoW view of the root image: drop all
   accumulated real copies. A page-table remap, far cheaper than copying. *)
let remirror t =
  Nyx_sim.Clock.advance t.vm.clock
    (Hashtbl.length t.mirror * Nyx_sim.Cost.dirty_stack_entry);
  Hashtbl.reset t.mirror;
  t.creates_since_remirror <- 0;
  t.s_remirrors <- t.s_remirrors + 1

(* Virtual time of this engine's VM — the [vns] stamp on trace events. *)
let vnow t = Nyx_sim.Clock.now_ns t.vm.clock

let take_incremental t =
  if t.active then invalid_arg "Engine.take_incremental: already active";
  let trace_v0 = vnow t in
  if t.creates_since_remirror >= t.remirror_interval then remirror t;
  let dirty = Memory.dirty t.vm.mem in
  (* Overwrite stale mirror entries (left by a previous incremental
     snapshot) with root content so the mirror again equals the root
     everywhere except the pages we are about to copy. *)
  let stale =
    Hashtbl.fold
      (fun pfn _ acc -> if Dirty_log.is_dirty dirty pfn then acc else pfn :: acc)
      t.mirror []
  in
  List.iter
    (fun pfn ->
      charge_page t;
      Hashtbl.replace t.mirror pfn (Bytes.copy (root_page_or_zero t pfn)))
    stale;
  (* Copy the pages dirtied since the root snapshot: this is the actual
     content of the incremental snapshot. *)
  let copied = ref (List.length stale) in
  Dirty_log.iter_stack dirty t.vm.clock (fun pfn ->
      charge_page t;
      incr copied;
      match Memory.page_content t.vm.mem pfn with
      | Some content -> Hashtbl.replace t.mirror pfn content
      | None -> Hashtbl.replace t.mirror pfn (Page.zero ()));
  Nyx_sim.Clock.advance t.vm.clock Nyx_sim.Cost.device_fast_reset;
  t.inc_device <- Some (Device_state.capture t.vm.device);
  t.inc_aux <- Some (Aux_state.capture t.aux t.vm.clock);
  Disk.freeze_incremental t.vm.disk;
  Dirty_log.clear dirty;
  t.active <- true;
  t.creates_since_remirror <- t.creates_since_remirror + 1;
  t.s_inc_creates <- t.s_inc_creates + 1;
  t.last_create_pages <- !copied;
  (* Fault injection (simulated — the image data is not actually damaged,
     the engine just behaves as if it were): a corrupted image or a lossy
     dirty log leaves a latent fault on this incremental snapshot,
     detected at its next restore. *)
  (match Vm.faults t.vm with
  | None -> ()
  | Some plan -> (
    (match
       Nyx_resilience.Plan.fire plan Nyx_resilience.Fault.Snap_corrupt ~vns:(vnow t)
     with
    | Some f -> t.pending <- t.pending @ [ f ]
    | None -> ());
    match Vm.dirty_loss_fault t.vm with
    | Some f -> t.pending <- t.pending @ [ f ]
    | None -> ()));
  if Nyx_obs.Trace.on () then
    Nyx_obs.Trace.instant ~vns:(vnow t) "snapshot-create"
      [
        ("pages", Nyx_obs.Trace.Int !copied);
        ("mirror", Nyx_obs.Trace.Int (Hashtbl.length t.mirror));
        ("cost_ns", Nyx_obs.Trace.Int (vnow t - trace_v0));
      ]

let restore_incremental t =
  let dirty = Memory.dirty t.vm.mem in
  let restored = ref 0 in
  Dirty_log.iter_stack dirty t.vm.clock (fun pfn ->
      charge_page t;
      incr restored;
      match Hashtbl.find_opt t.mirror pfn with
      | Some content -> Memory.set_page t.vm.mem pfn content
      | None -> (
        match Root.page t.root pfn with
        | Some content -> Memory.set_page t.vm.mem pfn content
        | None -> Memory.drop_page t.vm.mem pfn));
  Dirty_log.clear dirty;
  (match (t.inc_device, t.inc_aux) with
  | Some dev, Some aux ->
    Device_state.restore_fast t.vm.device t.vm.clock dev;
    Aux_state.restore t.aux t.vm.clock aux
  | _ -> assert false);
  Disk.reset_to_incremental t.vm.disk;
  t.s_pages_restored <- t.s_pages_restored + !restored;
  t.s_inc_restores <- t.s_inc_restores + 1

let restore_root t =
  let trace_v0 = vnow t and trace_p0 = t.s_pages_restored in
  (* Discarding the faulted incremental and rebuilding from the root IS
     the paper's recreate-on-demand recovery (§3.4): retire any latent
     faults as recovered. The internal restore_incremental step below is
     still usable — the corruption is simulated, not real damage. *)
  if t.pending <> [] then begin
    (match Vm.faults t.vm with
    | Some plan -> List.iter (Nyx_resilience.Plan.record_recovered plan) t.pending
    | None -> ());
    t.pending <- []
  end;
  if t.active then begin
    (* First reset the suffix writes to the incremental image, then revert
       every mirror entry to root content. Together this puts guest memory
       back at the root image while keeping the accumulated mirror pages
       around as stale copies (reverted again at the next create). *)
    restore_incremental t;
    t.s_inc_restores <- t.s_inc_restores - 1 (* internal step, not a test reset *);
    Hashtbl.iter
      (fun pfn _ ->
        charge_page t;
        match Root.page t.root pfn with
        | Some content -> Memory.set_page t.vm.mem pfn content
        | None -> Memory.drop_page t.vm.mem pfn)
      t.mirror;
    Disk.drop_incremental t.vm.disk;
    t.inc_device <- None;
    t.inc_aux <- None;
    t.active <- false
  end;
  let restored = Root.restore t.vm t.aux t.root in
  t.s_pages_restored <- t.s_pages_restored + restored;
  t.s_root_restores <- t.s_root_restores + 1;
  if Nyx_obs.Trace.on () then
    Nyx_obs.Trace.instant ~vns:(vnow t) "snapshot-restore"
      [
        ("mode", Nyx_obs.Trace.Str "root");
        ("pages", Nyx_obs.Trace.Int (t.s_pages_restored - trace_p0));
        ("cost_ns", Nyx_obs.Trace.Int (vnow t - trace_v0));
      ]

let restore t =
  if t.active then begin
    (* Restore itself can fail (the incremental image unreadable at load
       time); detection happens here, before any engine state mutates, so
       the caller sees a consistent engine it can hand to restore_root. *)
    (match Vm.faults t.vm with
    | None -> ()
    | Some plan -> (
      match Nyx_resilience.Plan.fire plan Nyx_resilience.Fault.Restore_fail ~vns:(vnow t) with
      | Some f -> t.pending <- t.pending @ [ f ]
      | None -> ()));
    match t.pending with
    | f :: _ -> raise (Nyx_resilience.Fault.Injected f)
    | [] ->
      let trace_v0 = vnow t and trace_p0 = t.s_pages_restored in
      restore_incremental t;
      if Nyx_obs.Trace.on () then
        Nyx_obs.Trace.instant ~vns:(vnow t) "snapshot-restore"
          [
            ("mode", Nyx_obs.Trace.Str "incremental");
            ("pages", Nyx_obs.Trace.Int (t.s_pages_restored - trace_p0));
            ("cost_ns", Nyx_obs.Trace.Int (vnow t - trace_v0));
          ]
  end
  else restore_root t

let pending t = t.pending

let stats t =
  {
    root_restores = t.s_root_restores;
    incremental_creates = t.s_inc_creates;
    incremental_restores = t.s_inc_restores;
    pages_restored = t.s_pages_restored;
    remirrors = t.s_remirrors;
  }

let mirror_pages t = Hashtbl.length t.mirror
let root_stored_bytes t = Root.stored_bytes t.root

(* Checkpoint support. Persist only what later behavior can observe: the
   mirror KEY set (every entry's content is overwritten at the next
   take_incremental — stale entries from root, dirty ones from memory —
   before any restore reads it), the re-mirror/stat counters, and the
   dirty STACK order (Root.restore overwrites dirty page contents from the
   root image; only the per-entry cost charges depend on the stack). *)

type persisted = {
  p_mirror : int list;  (* sorted pfns *)
  p_creates_since_remirror : int;
  p_stats : stats;
  p_dirty : int list;  (* pfns in dirtying order *)
}

let checkpoint t =
  if t.active then invalid_arg "Engine.checkpoint: incremental snapshot active";
  {
    p_mirror =
      List.sort compare (Hashtbl.fold (fun pfn _ acc -> pfn :: acc) t.mirror []);
    p_creates_since_remirror = t.creates_since_remirror;
    p_stats = stats t;
    p_dirty = Dirty_log.to_list (Memory.dirty t.vm.mem);
  }

(* Cost-free: the restored clock value already includes every charge the
   original run paid to build this state. *)
let restore_checkpoint t p =
  if t.active then
    invalid_arg "Engine.restore_checkpoint: incremental snapshot active";
  Hashtbl.reset t.mirror;
  List.iter
    (fun pfn ->
      Hashtbl.replace t.mirror pfn (Bytes.copy (root_page_or_zero t pfn)))
    p.p_mirror;
  t.creates_since_remirror <- p.p_creates_since_remirror;
  t.s_root_restores <- p.p_stats.root_restores;
  t.s_inc_creates <- p.p_stats.incremental_creates;
  t.s_inc_restores <- p.p_stats.incremental_restores;
  t.s_pages_restored <- p.p_stats.pages_restored;
  t.s_remirrors <- p.p_stats.remirrors;
  let dirty = Memory.dirty t.vm.mem in
  Dirty_log.clear dirty;
  List.iter (fun pfn -> ignore (Dirty_log.mark dirty pfn)) p.p_dirty
