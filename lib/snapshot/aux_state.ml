type handler = { name : string; save : unit -> bytes; load : bytes -> unit }

type t = {
  mutable handlers : handler list; (* reversed *)
  mutable hash_views : (string * (unit -> bytes)) list;
}

type capture = (string * bytes) list

let create () = { handlers = []; hash_views = [] }

let register t h = t.handlers <- h :: t.handlers

let register_hash_view t ~name view =
  t.hash_views <- (name, view) :: List.remove_assoc name t.hash_views

let in_order t = List.rev t.handlers

let capture t clock =
  List.map
    (fun h ->
      let b = h.save () in
      Nyx_sim.Clock.advance clock (Nyx_sim.Cost.aux_state_per_byte (Bytes.length b));
      (h.name, b))
    (in_order t)

(* Like [capture], but a handler that registered a hash view is read
   through it instead of [save]. The view lets a component present a
   *normalized* byte image to the fuzzy protocol-state hash (telemetry
   counters zeroed) while snapshots keep capturing the exact state.
   Charges the same per-byte cost as a capture of the viewed bytes. *)
let hash_capture t clock =
  List.map
    (fun h ->
      let b =
        match List.assoc_opt h.name t.hash_views with
        | Some view -> view ()
        | None -> h.save ()
      in
      Nyx_sim.Clock.advance clock (Nyx_sim.Cost.aux_state_per_byte (Bytes.length b));
      (h.name, b))
    (in_order t)

let restore t clock cap =
  let handlers = in_order t in
  if List.length handlers <> List.length cap then
    invalid_arg "Aux_state.restore: handler set changed since capture";
  List.iter2
    (fun h (name, b) ->
      if h.name <> name then invalid_arg "Aux_state.restore: handler set changed since capture";
      Nyx_sim.Clock.advance clock (Nyx_sim.Cost.aux_state_per_byte (Bytes.length b));
      h.load b)
    handlers cap

let size_bytes cap = List.fold_left (fun acc (_, b) -> acc + Bytes.length b) 0 cap

(* StateAFL-style fuzzy state hash. The captured aux state mixes real
   protocol state (socket tables, agent bookkeeping) with payload echoes
   (flow buffers), so a byte-exact hash would see a "new state" in every
   packet. Instead each handler's bytes are folded in 64-byte chunks,
   and each chunk contributes only a coarse signature — its non-zero
   population in buckets of 8 and its byte sum in buckets of 256 — so
   payload-level jitter inside a chunk usually leaves the hash unchanged
   while structural changes (a connection appearing, a state-machine
   advance, buffers growing past a chunk) move it. Deterministic: plain
   arithmetic over the capture bytes, no randomized seeds. *)

let chunk_size = 64

let fnv_prime = 0x100000001B3

(* FNV-1a's 64-bit offset basis truncated to OCaml's 63-bit int range. *)
let fnv_offset = 0x0BF29CE484222325

let fuzzy_hash (cap : capture) =
  let h = ref fnv_offset in
  let mix v = h := (!h lxor v) * fnv_prime in
  List.iter
    (fun (name, b) ->
      String.iter (fun c -> mix (Char.code c)) name;
      let n = Bytes.length b in
      mix (n / chunk_size);
      let i = ref 0 in
      while !i < n do
        let stop = min n (!i + chunk_size) in
        let sum = ref 0 and nonzero = ref 0 in
        for j = !i to stop - 1 do
          let c = Char.code (Bytes.unsafe_get b j) in
          sum := !sum + c;
          if c <> 0 then incr nonzero
        done;
        mix (((!nonzero / 8) * 61) lxor (!sum / 256));
        i := stop
      done)
    cap;
  !h land max_int
