type handler = { name : string; save : unit -> bytes; load : bytes -> unit }

type t = { mutable handlers : handler list (* reversed *) }

type capture = (string * bytes) list

let create () = { handlers = [] }

let register t h = t.handlers <- h :: t.handlers

let in_order t = List.rev t.handlers

let capture t clock =
  List.map
    (fun h ->
      let b = h.save () in
      Nyx_sim.Clock.advance clock (Nyx_sim.Cost.aux_state_per_byte (Bytes.length b));
      (h.name, b))
    (in_order t)

let restore t clock cap =
  let handlers = in_order t in
  if List.length handlers <> List.length cap then
    invalid_arg "Aux_state.restore: handler set changed since capture";
  List.iter2
    (fun h (name, b) ->
      if h.name <> name then invalid_arg "Aux_state.restore: handler set changed since capture";
      Nyx_sim.Clock.advance clock (Nyx_sim.Cost.aux_state_per_byte (Bytes.length b));
      h.load b)
    handlers cap

let size_bytes cap = List.fold_left (fun acc (_, b) -> acc + Bytes.length b) 0 cap
