(** Auxiliary snapshot state.

    A whole-VM snapshot captures more than guest RAM: kernel socket state,
    the agent's bookkeeping, etc. Components holding such state (notably
    the emulated network stack) register save/load handlers here; the
    snapshot engines capture and restore them alongside memory and devices.
    Handlers must serialize closure-free data only. *)

type handler = {
  name : string;
  save : unit -> bytes;
  load : bytes -> unit;
}

type t

val create : unit -> t

val register : t -> handler -> unit
(** Handlers are captured/restored in registration order. *)

val register_hash_view : t -> name:string -> (unit -> bytes) -> unit
(** Attach a normalized byte view to the handler named [name], used by
    {!hash_capture} in place of [save]. Lets a component exclude pure
    telemetry (e.g. a syscall counter) from the protocol-state signature
    while snapshots keep capturing the exact state. Re-registering under
    the same name replaces the previous view. *)

type capture

val capture : t -> Nyx_sim.Clock.t -> capture
(** Snapshot all registered state, charging per byte. *)

val hash_capture : t -> Nyx_sim.Clock.t -> capture
(** Like {!capture}, but handlers with a registered hash view are read
    through it. Input to {!fuzzy_hash} only — never {!restore}. Charges
    per byte of the viewed image. *)

val restore : t -> Nyx_sim.Clock.t -> capture -> unit
(** Restore a previous capture, charging per byte.
    @raise Invalid_argument if the handler set changed since capture. *)

val size_bytes : capture -> int

val fuzzy_hash : capture -> int
(** StateAFL-style fuzzy protocol-state signature of a capture: each
    handler's bytes are folded in 64-byte chunks whose contribution is
    quantized (non-zero population and byte-sum buckets), so small
    payload-level differences usually hash identically while structural
    state changes move the hash. Deterministic and non-negative; two
    captures of byte-identical state always agree. *)
