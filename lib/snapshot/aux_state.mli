(** Auxiliary snapshot state.

    A whole-VM snapshot captures more than guest RAM: kernel socket state,
    the agent's bookkeeping, etc. Components holding such state (notably
    the emulated network stack) register save/load handlers here; the
    snapshot engines capture and restore them alongside memory and devices.
    Handlers must serialize closure-free data only. *)

type handler = {
  name : string;
  save : unit -> bytes;
  load : bytes -> unit;
}

type t

val create : unit -> t

val register : t -> handler -> unit
(** Handlers are captured/restored in registration order. *)

type capture

val capture : t -> Nyx_sim.Clock.t -> capture
(** Snapshot all registered state, charging per byte. *)

val restore : t -> Nyx_sim.Clock.t -> capture -> unit
(** Restore a previous capture, charging per byte.
    @raise Invalid_argument if the handler set changed since capture. *)

val size_bytes : capture -> int
