open Nyx_vm

type t = {
  pages : (int, Bytes.t) Hashtbl.t;
  device : bytes;
  aux : Aux_state.capture;
}

let create (vm : Vm.t) aux_reg =
  let pages = Hashtbl.create 1024 in
  Seq.iter
    (fun (pfn, content) ->
      Nyx_sim.Clock.advance vm.clock Nyx_sim.Cost.page_copy;
      Hashtbl.replace pages pfn (Bytes.copy content))
    (Memory.materialized vm.mem);
  let device = Device_state.capture vm.device in
  Nyx_sim.Clock.advance vm.clock Nyx_sim.Cost.device_fast_reset;
  let aux = Aux_state.capture aux_reg vm.clock in
  Memory.clear_dirty vm.mem;
  Disk.discard_overlays vm.disk;
  { pages; device; aux }

let page t pfn = Hashtbl.find_opt t.pages pfn

let restore ?(disk = true) (vm : Vm.t) aux_reg t =
  let dirty = Memory.dirty vm.mem in
  let restored = ref 0 in
  Dirty_log.iter_stack dirty vm.clock (fun pfn ->
      Nyx_sim.Clock.advance vm.clock Nyx_sim.Cost.page_copy;
      (match page t pfn with
      | Some content -> Memory.set_page vm.mem pfn content
      | None -> Memory.drop_page vm.mem pfn);
      incr restored);
  Dirty_log.clear dirty;
  Device_state.restore_fast vm.device vm.clock t.device;
  if disk then Disk.discard_overlays vm.disk;
  Aux_state.restore aux_reg vm.clock t.aux;
  !restored

let pages_stored t = Hashtbl.length t.pages
let stored_bytes t = pages_stored t * Page.size
