(** The root snapshot.

    Created once after target startup (expensive: copies every materialized
    page of guest memory, §4.2). Restores are cheap: only the pages
    dirtied since the snapshot are overwritten, enumerated through Nyx's
    dirty stack rather than a bitmap scan. Device state uses Nyx's fast
    custom reset; disk overlays are discarded. *)

type t

val create : Nyx_vm.Vm.t -> Aux_state.t -> t
(** Capture the current VM state and clear the dirty log so subsequent
    execution is tracked against this snapshot. *)

val restore : ?disk:bool -> Nyx_vm.Vm.t -> Aux_state.t -> t -> int
(** Reset the VM to the snapshot. Returns the number of pages restored.
    Cost: one {!Nyx_sim.Cost.page_copy} per dirty page plus the dirty-stack
    walk and the fast device reset. [disk:false] leaves the disk overlays
    in place — used to model restart-based fuzzers whose cleanup scripts
    miss spool files (a whole-VM snapshot never has this problem). *)

val page : t -> int -> bytes option
(** Content of a page in the snapshot image ([None] = zero page). The
    returned bytes are shared with the snapshot; callers must not
    mutate them. *)

val pages_stored : t -> int
(** Materialized pages held by the snapshot (for memory accounting). *)

val stored_bytes : t -> int
