(** Agamotto-style checkpointing (the comparison system of §5.3/Figure 6).

    Agamotto maintains a {e tree} of incremental checkpoints, each storing
    the pages dirtied since its parent. Three properties distinguish it
    from the Nyx-Net engine and produce Figure 6's gap:

    - dirty pages are enumerated by scanning KVM's whole per-page bitmap
      (cost proportional to VM size, not to the number of dirty pages);
    - device state goes through QEMU's generic serialization;
    - checkpoints are cached under a memory budget (1 GB in the paper)
      with LRU eviction, whose cleanup work slows the steady state. *)

type t
type node_id

val create : ?budget_bytes:int -> Nyx_vm.Vm.t -> Aux_state.t -> t
(** Take the root checkpoint. [budget_bytes] defaults to 1 GiB. *)

val root : t -> node_id
val current : t -> node_id

val checkpoint : t -> node_id
(** Checkpoint the current VM state as a child of {!current}. *)

val restore : t -> node_id -> unit
(** Reset the VM to a checkpoint. @raise Invalid_argument if the node was
    evicted. *)

val stored_bytes : t -> int
val evictions : t -> int
val node_count : t -> int
