open Nyx_vm

type node = {
  id : int;
  parent : int option;
  pages : (int, Bytes.t) Hashtbl.t;
  device : bytes;
  aux : Aux_state.capture;
  mutable last_used : int;
  mutable evicted : bool;
}

type node_id = int

type t = {
  vm : Vm.t;
  aux_reg : Aux_state.t;
  nodes : (int, node) Hashtbl.t;
  budget : int;
  mutable next_id : int;
  mutable current_id : int;
  mutable tick : int;
  mutable stored : int;
  mutable evicted_count : int;
}

let node_bytes n = (Hashtbl.length n.pages * Page.size) + Bytes.length n.device

let create ?(budget_bytes = 1 lsl 30) (vm : Vm.t) aux_reg =
  (* Root checkpoint: a full copy of all materialized pages. *)
  let pages = Hashtbl.create 1024 in
  Seq.iter
    (fun (pfn, content) ->
      Nyx_sim.Clock.advance vm.clock Nyx_sim.Cost.page_copy;
      Hashtbl.replace pages pfn (Bytes.copy content))
    (Memory.materialized vm.mem);
  Nyx_sim.Clock.advance vm.clock Nyx_sim.Cost.device_serialize_reset;
  let root =
    {
      id = 0;
      parent = None;
      pages;
      device = Device_state.capture vm.device;
      aux = Aux_state.capture aux_reg vm.clock;
      last_used = 0;
      evicted = false;
    }
  in
  Memory.clear_dirty vm.mem;
  let nodes = Hashtbl.create 64 in
  Hashtbl.replace nodes 0 root;
  {
    vm;
    aux_reg;
    nodes;
    budget = budget_bytes;
    next_id = 1;
    current_id = 0;
    tick = 1;
    stored = node_bytes root;
    evicted_count = 0;
  }

let root _t = 0
let current t = t.current_id

let get_node t id =
  match Hashtbl.find_opt t.nodes id with
  | Some n when not n.evicted -> n
  | _ -> invalid_arg "Agamotto: unknown or evicted checkpoint"

(* Find page content along the ancestor chain; each hop is a hashmap probe
   we charge a stack-entry's worth of work for. *)
let rec lookup_page t node pfn =
  Nyx_sim.Clock.advance t.vm.clock Nyx_sim.Cost.dirty_stack_entry;
  match Hashtbl.find_opt node.pages pfn with
  | Some content -> Some content
  | None -> (
    match node.parent with
    | None -> None
    | Some pid -> lookup_page t (get_node t pid) pfn)

let is_ancestor t anc id =
  let rec walk id =
    if id = anc then true
    else
      match (Hashtbl.find t.nodes id).parent with
      | None -> false
      | Some pid -> walk pid
  in
  walk id

(* LRU eviction of leaf checkpoints off the current path; the cleanup work
   is what slows Agamotto down once the 1 GB budget is hit (§5.3). *)
let evict_until_under_budget t =
  let has_live_child n =
    Hashtbl.fold
      (fun _ c acc -> acc || ((not c.evicted) && c.parent = Some n.id))
      t.nodes false
  in
  let continue = ref true in
  while t.stored > t.budget && !continue do
    let candidate =
      Hashtbl.fold
        (fun _ n best ->
          if n.evicted || n.id = 0 || is_ancestor t n.id t.current_id
             || has_live_child n
          then best
          else
            match best with
            | Some b when b.last_used <= n.last_used -> best
            | _ -> Some n)
        t.nodes None
    in
    match candidate with
    | None -> continue := false
    | Some n ->
      Nyx_sim.Clock.advance t.vm.clock
        (Hashtbl.length n.pages * Nyx_sim.Cost.dirty_stack_entry);
      t.stored <- t.stored - node_bytes n;
      n.evicted <- true;
      Hashtbl.reset n.pages;
      t.evicted_count <- t.evicted_count + 1
  done

let checkpoint t =
  let dirty = Memory.dirty t.vm.mem in
  let pages = Hashtbl.create 64 in
  (* Agamotto walks the whole dirty bitmap to find the delta. *)
  Dirty_log.iter_bitmap dirty t.vm.clock (fun pfn ->
      Nyx_sim.Clock.advance t.vm.clock Nyx_sim.Cost.page_copy;
      match Memory.page_content t.vm.mem pfn with
      | Some content -> Hashtbl.replace pages pfn content
      | None -> Hashtbl.replace pages pfn (Page.zero ()));
  Nyx_sim.Clock.advance t.vm.clock Nyx_sim.Cost.device_serialize_reset;
  let n =
    {
      id = t.next_id;
      parent = Some t.current_id;
      pages;
      device = Device_state.capture t.vm.device;
      aux = Aux_state.capture t.aux_reg t.vm.clock;
      last_used = t.tick;
      evicted = false;
    }
  in
  t.next_id <- t.next_id + 1;
  t.tick <- t.tick + 1;
  Hashtbl.replace t.nodes n.id n;
  t.stored <- t.stored + node_bytes n;
  Dirty_log.clear dirty;
  t.current_id <- n.id;
  evict_until_under_budget t;
  n.id

let ancestors t id =
  let rec walk acc id =
    match (Hashtbl.find t.nodes id).parent with
    | None -> id :: acc
    | Some pid -> walk (id :: acc) pid
  in
  walk [] id (* root first *)

let restore t id =
  let target = get_node t id in
  let dirty = Memory.dirty t.vm.mem in
  (* Pages to reset: everything dirtied since the current checkpoint, plus
     the deltas recorded on the tree path between the current node and the
     target (below their lowest common ancestor) — moving across the tree
     must undo intermediate checkpoints' writes. *)
  let to_reset = Hashtbl.create 64 in
  Dirty_log.iter_bitmap dirty t.vm.clock (fun pfn ->
      Hashtbl.replace to_reset pfn ());
  let rec strip_common = function
    | a :: resta, b :: restb when a = b -> strip_common (resta, restb)
    | pair -> pair
  in
  let cur_path, tgt_path = strip_common (ancestors t t.current_id, ancestors t id) in
  List.iter
    (fun nid ->
      let n = Hashtbl.find t.nodes nid in
      if n.evicted then invalid_arg "Agamotto: unknown or evicted checkpoint";
      Hashtbl.iter (fun pfn _ -> Hashtbl.replace to_reset pfn ()) n.pages)
    (cur_path @ tgt_path);
  Hashtbl.iter
    (fun pfn () ->
      Nyx_sim.Clock.advance t.vm.clock Nyx_sim.Cost.page_copy;
      match lookup_page t target pfn with
      | Some content -> Memory.set_page t.vm.mem pfn content
      | None -> Memory.drop_page t.vm.mem pfn)
    to_reset;
  Dirty_log.clear dirty;
  Device_state.restore_serialized t.vm.device t.vm.clock target.device;
  Aux_state.restore t.aux_reg t.vm.clock target.aux;
  target.last_used <- t.tick;
  t.tick <- t.tick + 1;
  t.current_id <- id

let stored_bytes t = t.stored
let evictions t = t.evicted_count
let node_count t = Hashtbl.fold (fun _ n acc -> if n.evicted then acc else acc + 1) t.nodes 0
