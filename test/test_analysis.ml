(* Tests for the nyx_analysis layer: the program verifier, the spec
   linter, the audit aggregator, the interpreter sanitizer and the
   domain-safety source lint. *)

open Nyx_spec
open Nyx_analysis

let net () = Net_spec.create ()

let op node args data = { Program.node; args; data }
let no_data = [||]
let payload s = [| Bytes.of_string s |]

(* Net-spec programs. Node ids via the typed record. *)
let connect_op ns = op ns.Net_spec.connect.Spec.nt_id [||] no_data
let packet_op ns arg s = op ns.Net_spec.packet.Spec.nt_id [| arg |] (payload s)
let close_op ns arg = op ns.Net_spec.close.Spec.nt_id [| arg |] no_data
let snapshot_op = op Spec.snapshot_node_id [||] no_data

let prog ns ops = { Program.spec = ns.Net_spec.spec; ops = Array.of_list ops }

let codes diags = List.map (fun d -> d.Diag.code) diags

let contains hay needle =
  let hl = String.length hay and nl = String.length needle in
  let rec scan i = i + nl <= hl && (String.sub hay i nl = needle || scan (i + 1)) in
  scan 0

let has_code c diags = List.mem c (codes diags)

let check_code name c diags =
  Alcotest.(check bool) (name ^ ": emits " ^ c) true (has_code c diags)

(* --- verifier: error diagnostics --- *)

let test_affine_use_after_consume () =
  let ns = net () in
  let diags =
    Verifier.check (prog ns [ connect_op ns; close_op ns 0; packet_op ns 0 "x" ])
  in
  check_code "close then packet" "affine-use-after-consume" diags;
  (* Provenance chain: the message names both the producing and the
     consuming op. *)
  let d = List.find (fun d -> d.Diag.code = "affine-use-after-consume") diags in
  Alcotest.(check bool) "provenance mentions producer op" true
    (contains d.Diag.msg "produced at op 0");
  Alcotest.(check bool) "provenance mentions consumer op" true
    (contains d.Diag.msg "consumed at op 1")

let test_dangling_arg () =
  let ns = net () in
  check_code "packet with no connect" "dangling-arg"
    (Verifier.check (prog ns [ packet_op ns 0 "x" ]))

let test_bad_arity () =
  let ns = net () in
  let bad = op ns.Net_spec.packet.Spec.nt_id [||] (payload "x") in
  check_code "packet with no args" "bad-arity"
    (Verifier.check (prog ns [ connect_op ns; bad ]))

let test_unknown_opcode () =
  let ns = net () in
  check_code "node 99" "unknown-opcode"
    (Verifier.check (prog ns [ op 99 [||] no_data ]))

let test_multiple_snapshots () =
  let ns = net () in
  check_code "two snapshots" "multiple-snapshots"
    (Verifier.check
       (prog ns [ connect_op ns; snapshot_op; packet_op ns 0 "x"; snapshot_op;
                  packet_op ns 0 "y" ]))

let test_snapshot_carries_payload () =
  let ns = net () in
  let bad = op Spec.snapshot_node_id [| 0 |] no_data in
  check_code "snapshot with an arg" "snapshot-carries-payload"
    (Verifier.check (prog ns [ connect_op ns; bad; packet_op ns 0 "x" ]))

let test_data_too_long () =
  let ns = net () in
  let huge = String.make (ns.Net_spec.payload.Spec.max_len + 1) 'a' in
  check_code "oversized payload" "data-too-long"
    (Verifier.check (prog ns [ connect_op ns; packet_op ns 0 huge ]))

let test_bad_data_arity () =
  let ns = net () in
  let bad = op ns.Net_spec.packet.Spec.nt_id [| 0 |] no_data in
  check_code "packet without payload field" "bad-data-arity"
    (Verifier.check (prog ns [ connect_op ns; bad ]))

(* --- verifier: warning diagnostics --- *)

let test_dead_value () =
  let ns = net () in
  let diags = Verifier.check (prog ns [ connect_op ns ]) in
  check_code "unused connection" "dead-value" diags;
  Alcotest.(check int) "dead-value is a warning, not an error" 0
    (List.length (List.filter Diag.is_error diags))

let test_noop_interaction () =
  let ns = net () in
  check_code "empty packet" "noop-interaction"
    (Verifier.check (prog ns [ connect_op ns; packet_op ns 0 "" ]))

let test_leading_snapshot () =
  let ns = net () in
  check_code "snapshot first" "leading-snapshot"
    (Verifier.check (prog ns [ snapshot_op; connect_op ns; packet_op ns 0 "x" ]))

let test_trailing_snapshot () =
  let ns = net () in
  check_code "snapshot last" "trailing-snapshot"
    (Verifier.check (prog ns [ connect_op ns; packet_op ns 0 "x"; snapshot_op ]))

let test_data_at_bound () =
  let ns = net () in
  let full = String.make ns.Net_spec.payload.Spec.max_len 'a' in
  check_code "saturated payload" "data-at-bound"
    (Verifier.check (prog ns [ connect_op ns; packet_op ns 0 full ]))

let test_well_placed_snapshot_clean () =
  let ns = net () in
  let p =
    prog ns [ connect_op ns; packet_op ns 0 "hello"; snapshot_op;
              packet_op ns 0 "world"; close_op ns 0 ]
  in
  Alcotest.(check (list string)) "mid-program snapshot program is clean" []
    (codes (Verifier.check p))

(* All error findings are reported in one pass, not just the first. *)
let test_reports_all_findings () =
  let ns = net () in
  let huge = String.make (ns.Net_spec.payload.Spec.max_len + 1) 'a' in
  let diags =
    Verifier.check
      (prog ns [ connect_op ns; close_op ns 0; packet_op ns 0 huge; packet_op ns 7 "x" ])
  in
  check_code "multi" "affine-use-after-consume" diags;
  check_code "multi" "data-too-long" diags;
  check_code "multi" "dangling-arg" diags

(* --- spec linter --- *)

let test_spec_lint_unconstructible () =
  (* [use] needs an edge type nothing outputs; [boot] is a bootstrap
     cycle (the only producer of y needs a y). Both are unconstructible. *)
  let b = Spec.start "bad" in
  let x = Spec.edge_type b "x" in
  let y = Spec.edge_type b "y" in
  let _use = Spec.node_type b ~borrows:[ x ] "use" in
  let _boot = Spec.node_type b ~borrows:[ y ] ~outputs:[ y ] "boot" in
  let diags = Spec_lint.check (Spec.finalize b) in
  Alcotest.(check int) "both nodes flagged" 2
    (List.length (List.filter (fun d -> d.Diag.code = "unconstructible-node") diags))

let test_spec_lint_unused_edge () =
  let b = Spec.start "bad" in
  let x = Spec.edge_type b "x" in
  let _mk = Spec.node_type b ~outputs:[ x ] "mk" in
  check_code "output-only edge" "unused-edge-type" (Spec_lint.check (Spec.finalize b))

let test_spec_lint_zero_data_bound () =
  let b = Spec.start "bad" in
  let d = Spec.data_type b ~max_len:0 "empty" in
  let _n = Spec.node_type b ~data:[ d ] "send" in
  check_code "max_len 0" "zero-data-bound" (Spec_lint.check (Spec.finalize b))

let test_spec_lint_node_name_collision () =
  let b = Spec.start "bad" in
  let _a = Spec.node_type b "dup" in
  let _b = Spec.node_type b "dup" in
  check_code "two nodes named dup" "node-name-collision"
    (Spec_lint.check (Spec.finalize b))

let test_spec_lint_shipped_specs_clean () =
  let ns = net () in
  Alcotest.(check (list string)) "raw-network spec" []
    (codes (Spec_lint.check ns.Net_spec.spec));
  let ipc = Nyx_targets.Ipc_spec.create () in
  Alcotest.(check (list string)) "firefox-ipc-typed spec" []
    (codes (Spec_lint.check ipc.Nyx_targets.Ipc_spec.spec))

(* --- audit aggregation --- *)

let test_audit_report_and_json () =
  let ns = net () in
  let clean = Audit.program ~subject:"clean" (prog ns [ connect_op ns; close_op ns 0 ]) in
  let broken =
    Audit.program ~subject:"broken" (prog ns [ connect_op ns; close_op ns 0; packet_op ns 0 "x" ])
  in
  let audit = Audit.of_entries [ clean; broken ] in
  Alcotest.(check int) "subjects" 2 (Audit.subjects audit);
  Alcotest.(check int) "errors" 1 (Audit.errors audit);
  Alcotest.(check bool) "not clean" false (Audit.is_clean audit);
  Alcotest.(check int) "only broken flagged" 1 (List.length (Audit.flagged audit));
  let json = Audit.to_json audit in
  Alcotest.(check bool) "json names the subject" true
    (contains json {|"subject":"broken"|});
  Alcotest.(check bool) "json names the code" true
    (contains json "affine-use-after-consume");
  let pretty = Format.asprintf "%a" Audit.pp audit in
  Alcotest.(check bool) "report names the subject" true
    (contains pretty "broken")

(* --- interpreter sanitizer --- *)

(* Handlers that count interactions and mint outputs mechanically. *)
let counting_handlers hits =
  {
    Interp.exec =
      (fun nt _inputs _data ->
        incr hits;
        List.map (fun _ -> 0) nt.Spec.outputs);
    snapshot = ignore;
  }

let test_sanitizer_catches_affine_violation () =
  let ns = net () in
  let p = prog ns [ connect_op ns; close_op ns 0; packet_op ns 0 "x" ] in
  let hits = ref 0 in
  (* Off (explicitly): the bad program runs to completion — handlers in
     this reproduction tolerate stale values. *)
  let _ = Interp.run ~sanitize:false p (counting_handlers hits) in
  Alcotest.(check int) "all 3 ops executed unsanitized" 3 !hits;
  (* On: the same program trips the affine assertion at op 2. *)
  let code =
    try
      let _ = Interp.run ~sanitize:true p (counting_handlers (ref 0)) in
      "no-violation"
    with Interp.Violation { op; code; _ } ->
      Alcotest.(check int) "violation at op 2" 2 op;
      code
  in
  Alcotest.(check string) "affine violation" "affine-use-after-consume" code

let test_sanitizer_catches_dangling_arg () =
  let ns = net () in
  let p = prog ns [ packet_op ns 3 "x" ] in
  let code =
    try
      let _ = Interp.run ~sanitize:true p (counting_handlers (ref 0)) in
      "no-violation"
    with Interp.Violation { code; _ } -> code
  in
  Alcotest.(check string) "dangling arg" "dangling-arg" code

let test_sanitizer_ok_on_valid_programs () =
  let ns = net () in
  let p =
    prog ns [ connect_op ns; packet_op ns 0 "a"; snapshot_op; packet_op ns 0 "b";
              close_op ns 0 ]
  in
  let hits = ref 0 in
  let _ = Interp.run ~sanitize:true p (counting_handlers hits) in
  Alcotest.(check int) "4 interactions" 4 !hits;
  (* The affine state must survive the prefix/suffix split: close (a
     consume) in the suffix is legal exactly once. *)
  match Interp.run_until_snapshot ~sanitize:true p (counting_handlers (ref 0)) with
  | None -> Alcotest.fail "program has a snapshot"
  | Some (resume, env) ->
    let env2 = Interp.copy_env env in
    let _ = Interp.run ~from:resume ~env:env2 p (counting_handlers (ref 0)) in
    (* Re-running the suffix on a fresh copy must also succeed: the first
       run's consume of value 0 must not leak into the snapshot env. *)
    let env3 = Interp.copy_env env in
    let _ = Interp.run ~from:resume ~env:env3 p (counting_handlers (ref 0)) in
    ()

let test_sanitizer_consume_leaks_across_suffixes_without_copy () =
  let ns = net () in
  let p = prog ns [ connect_op ns; snapshot_op; close_op ns 0 ] in
  match Interp.run_until_snapshot ~sanitize:true p (counting_handlers (ref 0)) with
  | None -> Alcotest.fail "program has a snapshot"
  | Some (resume, env) -> (
    (* Deliberately reuse the same env for two suffix runs: the second
       close must trip the sanitizer, proving the consumed flags live in
       the env (and that copy_env is what isolates suffix runs). *)
    let _ = Interp.run ~from:resume ~env p (counting_handlers (ref 0)) in
    try
      let _ = Interp.run ~from:resume ~env p (counting_handlers (ref 0)) in
      Alcotest.fail "second close on shared env must violate"
    with Interp.Violation { code; _ } ->
      Alcotest.(check string) "double consume" "affine-use-after-consume" code)

(* --- domain-safety source lint --- *)

let findings_of src = Source_lint.lint_string ~file:"x.ml" src

let test_source_lint_flags_unannotated () =
  let fs = findings_of "let cache = Hashtbl.create 64\n" in
  Alcotest.(check int) "one finding" 1 (List.length fs);
  let f = List.hd fs in
  Alcotest.(check string) "binding" "cache" f.Source_lint.binding;
  Alcotest.(check string) "pattern" "Hashtbl.create" f.Source_lint.pattern;
  Alcotest.(check int) "line" 1 f.Source_lint.line

let test_source_lint_annotation_suppresses () =
  let src = "(* Domain-safety: guarded by the registry mutex. *)\nlet cache = Hashtbl.create 64\n" in
  Alcotest.(check int) "annotated binding is quiet" 0 (List.length (findings_of src))

let test_source_lint_ignores_functions_and_closures () =
  let src =
    "let make_table () = Hashtbl.create 64\n\
     let of_seed seed rng = ref (seed + Nyx.run rng)\n\
     let thunk = fun () -> Array.make 4 0\n"
  in
  Alcotest.(check int) "functions allocate per call" 0 (List.length (findings_of src))

let test_source_lint_word_boundaries () =
  let src = "let label = status_of \"refused\"\nlet p = prefix_len\n" in
  Alcotest.(check int) "no substring false positives" 0 (List.length (findings_of src));
  let fs = findings_of "let total = ref 0\n" in
  Alcotest.(check int) "bare ref still caught" 1 (List.length fs)

let test_source_lint_multiline_rhs () =
  let src = "let table =\n  Hashtbl.create\n    128\n" in
  let fs = findings_of src in
  Alcotest.(check int) "continuation lines scanned" 1 (List.length fs);
  Alcotest.(check string) "pattern" "Hashtbl.create" (List.hd fs).Source_lint.pattern

let test_ml_files_under_skips_build_dirs () =
  let root = Filename.temp_file "nyx_lint" "" in
  Sys.remove root;
  Unix.mkdir root 0o755;
  let mkdir d = Unix.mkdir (Filename.concat root d) 0o755 in
  let touch f = close_out (open_out (Filename.concat root f)) in
  List.iter mkdir [ "sub"; "_build"; "_opam"; ".git" ];
  Unix.mkdir (Filename.concat root "_build/default") 0o755;
  List.iter touch
    [
      "a.ml"; "notes.txt"; "sub/b.ml"; "_build/default/gen.ml"; "_opam/pkg.ml";
      ".git/hook.ml";
    ];
  let found =
    List.map
      (fun p -> String.sub p (String.length root + 1) (String.length p - String.length root - 1))
      (Source_lint.ml_files_under root)
  in
  Alcotest.(check (list string))
    "only real sources, deterministic order" [ "a.ml"; "sub/b.ml" ] found;
  let single = Source_lint.ml_files_under (Filename.concat root "a.ml") in
  Alcotest.(check int) "a file is returned as itself" 1 (List.length single)

(* --- static protocol state graph --- *)

let test_state_graph_net_spec () =
  let ns = net () in
  let g = State_graph.build ns.Net_spec.spec in
  (* Raw network protocol: {} <-> {connection}. *)
  Alcotest.(check int) "two abstract states" 2 (State_graph.state_count g);
  Alcotest.(check (list int)) "no dead states" [] (State_graph.dead_states g);
  Alcotest.(check bool) "close/connect cycle is a chatter region" true
    (State_graph.chatter_regions g <> []);
  Alcotest.(check (list string)) "shipped spec graph is lint-clean" []
    (codes (State_graph.check ns.Net_spec.spec));
  let dot = State_graph.to_dot g in
  Alcotest.(check bool) "dot names the transitions" true
    (contains dot "label=\"connect\"" && contains dot "label=\"packet\"");
  let json = State_graph.to_json g in
  Alcotest.(check bool) "json carries the state count" true
    (contains json "\"state_count\":2")

let test_state_graph_dead_state () =
  (* Every node needs a conn but nothing can produce one: the start
     state enables no opcode — every program over this spec is empty. *)
  let b = Spec.start "dead-end" in
  let conn = Spec.edge_type b "conn" in
  let _ = Spec.node_type b ~borrows:[ conn ] "use" in
  let spec = Spec.finalize b in
  let g = State_graph.build spec in
  Alcotest.(check (list int)) "start state is dead" [ 0 ] (State_graph.dead_states g);
  check_code "dead state warning" "state-graph-dead-state" (State_graph.check spec)

(* --- dataflow typestate pass --- *)

let test_dataflow_affecting_classification () =
  let ns = net () in
  (* connect / data packet / two empty packets on the drained conn. *)
  let p =
    prog ns
      [
        connect_op ns; packet_op ns 0 "USER x"; op ns.Net_spec.packet.Spec.nt_id
          [| 0 |] (payload ""); op ns.Net_spec.packet.Spec.nt_id [| 0 |] (payload "");
      ]
  in
  Alcotest.(check (list bool))
    "only empty packets on a drained conn are inert" [ true; true; false; false ]
    (Array.to_list (Dataflow.affecting p));
  Alcotest.(check (list int)) "feasible boundaries" [ 1; 2 ]
    (Dataflow.feasible_boundaries p);
  (* UDP delivers empty datagrams: nothing is inert. *)
  Alcotest.(check (list int)) "udp keeps every interior index" [ 1; 2; 3 ]
    (Dataflow.feasible_boundaries ~udp:true p);
  (* An empty packet on an undrained conn still drains it: affecting. *)
  let p2 =
    prog ns [ connect_op ns; op ns.Net_spec.packet.Spec.nt_id [| 0 |] (payload "") ]
  in
  Alcotest.(check (list bool)) "first empty packet drains the banner"
    [ true; true ]
    (Array.to_list (Dataflow.affecting p2))

let test_dataflow_state_path () =
  let ns = net () in
  let p = prog ns [ connect_op ns; packet_op ns 0 "x"; close_op ns 0 ] in
  let conn_bit = 1 lsl ns.Net_spec.conn.Spec.et_id in
  Alcotest.(check (list int)) "live edge-type path"
    [ 0; conn_bit; conn_bit; 0 ]
    (Array.to_list (Dataflow.state_path p))

let test_dataflow_state_unreachable_op () =
  let ns = net () in
  check_code "packet before any connect" "state-unreachable-op"
    (Dataflow.check (prog ns [ packet_op ns 0 "x" ]));
  Alcotest.(check (list string)) "valid program emits nothing" []
    (codes (Dataflow.check (prog ns [ connect_op ns; packet_op ns 0 "x" ])))

let test_dataflow_redundant_prefix () =
  let ns = net () in
  let empty_pkt = op ns.Net_spec.packet.Spec.nt_id [| 0 |] (payload "") in
  let diags =
    Dataflow.check
      (prog ns [ connect_op ns; packet_op ns 0 "x"; empty_pkt; empty_pkt ])
  in
  check_code "inert run flagged" "redundant-prefix" diags;
  let d = List.find (fun d -> d.Diag.code = "redundant-prefix") diags in
  Alcotest.(check bool) "names the run" true (contains d.Diag.msg "2..3")

let test_dataflow_snapshot_past_last_transition () =
  let ns = net () in
  let empty_pkt = op ns.Net_spec.packet.Spec.nt_id [| 0 |] (payload "") in
  let diags =
    Dataflow.check
      (prog ns
         [ connect_op ns; packet_op ns 0 "x"; empty_pkt; snapshot_op; empty_pkt ])
  in
  check_code "snapshot beyond last feasible boundary"
    "snapshot-past-last-transition" diags;
  (* Snapshot at a feasible boundary is quiet. *)
  let ok =
    Dataflow.check
      (prog ns
         [ connect_op ns; snapshot_op; packet_op ns 0 "x"; empty_pkt; empty_pkt ])
  in
  Alcotest.(check bool) "well-placed snapshot is quiet" false
    (has_code "snapshot-past-last-transition" ok)

let () =
  Alcotest.run "nyx_analysis"
    [
      ( "verifier-errors",
        [
          Alcotest.test_case "affine use after consume" `Quick test_affine_use_after_consume;
          Alcotest.test_case "dangling arg" `Quick test_dangling_arg;
          Alcotest.test_case "bad arity" `Quick test_bad_arity;
          Alcotest.test_case "unknown opcode" `Quick test_unknown_opcode;
          Alcotest.test_case "multiple snapshots" `Quick test_multiple_snapshots;
          Alcotest.test_case "snapshot carries payload" `Quick test_snapshot_carries_payload;
          Alcotest.test_case "data too long" `Quick test_data_too_long;
          Alcotest.test_case "bad data arity" `Quick test_bad_data_arity;
          Alcotest.test_case "all findings in one pass" `Quick test_reports_all_findings;
        ] );
      ( "verifier-warnings",
        [
          Alcotest.test_case "dead value" `Quick test_dead_value;
          Alcotest.test_case "noop interaction" `Quick test_noop_interaction;
          Alcotest.test_case "leading snapshot" `Quick test_leading_snapshot;
          Alcotest.test_case "trailing snapshot" `Quick test_trailing_snapshot;
          Alcotest.test_case "data at bound" `Quick test_data_at_bound;
          Alcotest.test_case "well-placed snapshot clean" `Quick test_well_placed_snapshot_clean;
        ] );
      ( "spec-lint",
        [
          Alcotest.test_case "unconstructible node" `Quick test_spec_lint_unconstructible;
          Alcotest.test_case "unused edge type" `Quick test_spec_lint_unused_edge;
          Alcotest.test_case "zero data bound" `Quick test_spec_lint_zero_data_bound;
          Alcotest.test_case "node name collision" `Quick test_spec_lint_node_name_collision;
          Alcotest.test_case "shipped specs clean" `Quick test_spec_lint_shipped_specs_clean;
        ] );
      ( "audit",
        [ Alcotest.test_case "report and json" `Quick test_audit_report_and_json ] );
      ( "sanitizer",
        [
          Alcotest.test_case "catches affine violation" `Quick
            test_sanitizer_catches_affine_violation;
          Alcotest.test_case "catches dangling arg" `Quick test_sanitizer_catches_dangling_arg;
          Alcotest.test_case "clean programs pass" `Quick test_sanitizer_ok_on_valid_programs;
          Alcotest.test_case "consumed flags live in env" `Quick
            test_sanitizer_consume_leaks_across_suffixes_without_copy;
        ] );
      ( "source-lint",
        [
          Alcotest.test_case "flags unannotated" `Quick test_source_lint_flags_unannotated;
          Alcotest.test_case "annotation suppresses" `Quick test_source_lint_annotation_suppresses;
          Alcotest.test_case "functions exempt" `Quick
            test_source_lint_ignores_functions_and_closures;
          Alcotest.test_case "word boundaries" `Quick test_source_lint_word_boundaries;
          Alcotest.test_case "multiline rhs" `Quick test_source_lint_multiline_rhs;
          Alcotest.test_case "ml_files_under skips build dirs" `Quick
            test_ml_files_under_skips_build_dirs;
        ] );
      ( "state-graph",
        [
          Alcotest.test_case "net spec graph" `Quick test_state_graph_net_spec;
          Alcotest.test_case "dead state detected" `Quick test_state_graph_dead_state;
        ] );
      ( "dataflow",
        [
          Alcotest.test_case "affecting classification" `Quick
            test_dataflow_affecting_classification;
          Alcotest.test_case "abstract state path" `Quick test_dataflow_state_path;
          Alcotest.test_case "state-unreachable-op" `Quick
            test_dataflow_state_unreachable_op;
          Alcotest.test_case "redundant-prefix" `Quick test_dataflow_redundant_prefix;
          Alcotest.test_case "snapshot-past-last-transition" `Quick
            test_dataflow_snapshot_past_last_transition;
        ] );
    ]
