open Nyx_vm
open Nyx_snapshot

let check_int = Alcotest.(check int)
let b = Bytes.of_string

let mk_vm ?(pages = 128) () =
  let clock = Nyx_sim.Clock.create () in
  let vm =
    Vm.create ~config:{ Vm.mem_pages = pages; device_size = 64; disk_sectors = 8 } clock
  in
  (vm, clock)

let mem_fingerprint (vm : Vm.t) =
  (* Hash of all materialized non-zero content plus zero semantics. *)
  let acc = ref [] in
  Seq.iter
    (fun (pfn, content) ->
      if Bytes.exists (fun c -> c <> '\000') content then
        acc := (pfn, Bytes.to_string content) :: !acc)
    (Memory.materialized vm.Vm.mem);
  List.sort compare !acc

(* Aux state *)

let test_aux_roundtrip () =
  let reg = Aux_state.create () in
  let value = ref 1 in
  Aux_state.register reg
    {
      Aux_state.name = "counter";
      save = (fun () -> Bytes.of_string (string_of_int !value));
      load = (fun bts -> value := int_of_string (Bytes.to_string bts));
    };
  let clock = Nyx_sim.Clock.create () in
  let cap = Aux_state.capture reg clock in
  value := 99;
  Aux_state.restore reg clock cap;
  check_int "restored" 1 !value;
  check_int "size" 1 (Aux_state.size_bytes cap)

let test_aux_handler_mismatch () =
  let reg = Aux_state.create () in
  let clock = Nyx_sim.Clock.create () in
  let cap = Aux_state.capture reg clock in
  Aux_state.register reg
    { Aux_state.name = "late"; save = (fun () -> Bytes.empty); load = ignore };
  Alcotest.check_raises "changed registry"
    (Invalid_argument "Aux_state.restore: handler set changed since capture")
    (fun () -> Aux_state.restore reg clock cap)

(* Root snapshot *)

let test_root_restore_memory () =
  let vm, _ = mk_vm () in
  Memory.write vm.Vm.mem 0 (b "boot-state");
  let reg = Aux_state.create () in
  let root = Root.create vm reg in
  let baseline = mem_fingerprint vm in
  Memory.write vm.Vm.mem 0 (b "corrupted!");
  Memory.write vm.Vm.mem 5000 (b "more-noise");
  let restored = Root.restore vm reg root in
  Alcotest.(check bool) "pages restored" true (restored >= 2);
  Alcotest.(check bool) "memory identical" true (mem_fingerprint vm = baseline);
  check_int "dirty log clean" 0 (Vm.dirty_pages vm)

let test_root_restore_unmaterialized_page () =
  let vm, _ = mk_vm () in
  let reg = Aux_state.create () in
  let root = Root.create vm reg in
  (* Dirty a page that did not exist in the root image: restore must drop
     it back to the zero page. *)
  Memory.write vm.Vm.mem 9000 (b "ghost");
  ignore (Root.restore vm reg root);
  Alcotest.(check string) "reads zero" "\000\000\000\000\000"
    (Bytes.to_string (Memory.read vm.Vm.mem 9000 5))

let test_root_restores_device_and_disk () =
  let vm, _ = mk_vm () in
  Device_state.write vm.Vm.device 0 (b "pristine");
  Disk.write_base vm.Vm.disk 0 (Bytes.make 512 'B');
  let reg = Aux_state.create () in
  let root = Root.create vm reg in
  Device_state.write vm.Vm.device 0 (b "scribble");
  Disk.write_sector vm.Vm.disk 0 (Bytes.make 512 'X');
  ignore (Root.restore vm reg root);
  Alcotest.(check string) "device" "pristine"
    (Bytes.to_string (Device_state.read vm.Vm.device 0 8));
  Alcotest.(check char) "disk" 'B' (Bytes.get (Disk.read_sector vm.Vm.disk 0) 0)

let test_root_restore_cost_proportional_to_dirty () =
  let vm, clock = mk_vm ~pages:128 () in
  let reg = Aux_state.create () in
  let root = Root.create vm reg in
  Memory.write_u8 vm.Vm.mem (10 * Page.size) 1;
  let t0 = Nyx_sim.Clock.now_ns clock in
  ignore (Root.restore vm reg root);
  let one_page = Nyx_sim.Clock.now_ns clock - t0 in
  for p = 10 to 59 do
    Memory.write_u8 vm.Vm.mem (p * Page.size) 1
  done;
  let t1 = Nyx_sim.Clock.now_ns clock in
  ignore (Root.restore vm reg root);
  let fifty_pages = Nyx_sim.Clock.now_ns clock - t1 in
  Alcotest.(check bool) "scales with dirty pages" true
    (fifty_pages > 20 * (one_page - Nyx_sim.Cost.device_fast_reset))

(* Incremental engine *)

let setup_engine ?remirror_interval () =
  let vm, clock = mk_vm () in
  Memory.write vm.Vm.mem 0 (b "root-image");
  let reg = Aux_state.create () in
  let eng = Engine.create ?remirror_interval vm reg in
  (eng, vm, clock)

let test_engine_root_mode_restore () =
  let eng, vm, _ = setup_engine () in
  let baseline = mem_fingerprint vm in
  Memory.write vm.Vm.mem 100 (b "testcase");
  Engine.restore eng;
  Alcotest.(check bool) "restored to root" true (mem_fingerprint vm = baseline);
  check_int "one root restore" 1 (Engine.stats eng).Engine.root_restores

let test_engine_incremental_cycle () =
  let eng, vm, _ = setup_engine () in
  (* Execute a "prefix". *)
  Memory.write vm.Vm.mem 2000 (b "prefix-state");
  Engine.take_incremental eng;
  Alcotest.(check bool) "active" true (Engine.has_incremental eng);
  let prefix_view = mem_fingerprint vm in
  (* Fuzz several "suffixes". *)
  for i = 1 to 5 do
    Memory.write vm.Vm.mem 3000 (b (Printf.sprintf "suffix-%d" i));
    Engine.restore eng;
    Alcotest.(check bool) "back to prefix" true (mem_fingerprint vm = prefix_view)
  done;
  let s = Engine.stats eng in
  check_int "inc restores" 5 s.Engine.incremental_restores;
  check_int "inc creates" 1 s.Engine.incremental_creates

let test_engine_restore_root_discards_incremental () =
  let eng, vm, _ = setup_engine () in
  let root_view = mem_fingerprint vm in
  Memory.write vm.Vm.mem 2000 (b "prefix-state");
  Engine.take_incremental eng;
  Memory.write vm.Vm.mem 3000 (b "suffix");
  Engine.restore_root eng;
  Alcotest.(check bool) "inactive" false (Engine.has_incremental eng);
  Alcotest.(check bool) "memory back at root" true (mem_fingerprint vm = root_view);
  check_int "no dirty" 0 (Vm.dirty_pages vm)

let test_engine_double_take_rejected () =
  let eng, vm, _ = setup_engine () in
  Memory.write vm.Vm.mem 2000 (b "prefix");
  Engine.take_incremental eng;
  Alcotest.check_raises "second take"
    (Invalid_argument "Engine.take_incremental: already active") (fun () ->
      Engine.take_incremental eng)

let test_engine_second_snapshot_after_root_return () =
  let eng, vm, _ = setup_engine () in
  Memory.write vm.Vm.mem 2000 (b "prefix-A");
  Engine.take_incremental eng;
  Memory.write vm.Vm.mem 3000 (b "suffix");
  Engine.restore_root eng;
  (* New input, new prefix, new snapshot: mirror entries from the first
     snapshot are stale and must be reverted. *)
  Memory.write vm.Vm.mem 4000 (b "prefix-B");
  Engine.take_incremental eng;
  let view = mem_fingerprint vm in
  Memory.write vm.Vm.mem 2000 (b "noise-on-A");
  Engine.restore eng;
  Alcotest.(check bool) "prefix-B view restored" true (mem_fingerprint vm = view);
  Alcotest.(check string) "old prefix region back at root value"
    "\000" (Bytes.to_string (Memory.read vm.Vm.mem 2000 1))

let test_engine_remirror_bounds_accumulation () =
  let eng, vm, _ = setup_engine ~remirror_interval:4 () in
  for i = 0 to 15 do
    (* Touch a different page each round so the mirror accumulates. *)
    Memory.write vm.Vm.mem (((i mod 16) + 8) * Page.size) (b "x");
    Engine.take_incremental eng;
    Engine.restore eng;
    Engine.restore_root eng
  done;
  let s = Engine.stats eng in
  Alcotest.(check bool) "remirrored at least twice" true (s.Engine.remirrors >= 2);
  Alcotest.(check bool) "mirror bounded" true (Engine.mirror_pages eng <= 16)

let test_engine_incremental_restore_cost_excludes_prefix () =
  let eng, vm, clock = setup_engine () in
  (* Expensive prefix: 40 dirty pages. *)
  for p = 20 to 59 do
    Memory.write_u8 vm.Vm.mem (p * Page.size) 7
  done;
  Engine.take_incremental eng;
  (* Cheap suffix: 1 dirty page. *)
  Memory.write_u8 vm.Vm.mem (70 * Page.size) 7;
  let t0 = Nyx_sim.Clock.now_ns clock in
  Engine.restore eng;
  let inc_cost = Nyx_sim.Clock.now_ns clock - t0 in
  (* Compare with a root restore of the same suffix + prefix. *)
  Engine.restore_root eng;
  for p = 20 to 59 do
    Memory.write_u8 vm.Vm.mem (p * Page.size) 7
  done;
  Memory.write_u8 vm.Vm.mem (70 * Page.size) 7;
  let t1 = Nyx_sim.Clock.now_ns clock in
  Engine.restore eng;
  let root_cost = Nyx_sim.Clock.now_ns clock - t1 in
  Alcotest.(check bool) "incremental reset avoids prefix cost" true
    (inc_cost * 3 < root_cost)

let test_engine_disk_incremental () =
  let eng, vm, _ = setup_engine () in
  Disk.write_sector vm.Vm.disk 1 (Bytes.make 512 'P');
  Engine.take_incremental eng;
  Disk.write_sector vm.Vm.disk 1 (Bytes.make 512 'S');
  Engine.restore eng;
  Alcotest.(check char) "prefix sector" 'P' (Bytes.get (Disk.read_sector vm.Vm.disk 1) 0);
  Engine.restore_root eng;
  Alcotest.(check char) "root sector" '\000'
    (Bytes.get (Disk.read_sector vm.Vm.disk 1) 0)

(* Agamotto *)

let setup_agamotto ?budget_bytes () =
  let vm, clock = mk_vm () in
  Memory.write vm.Vm.mem 0 (b "root-image");
  let reg = Aux_state.create () in
  let ag = Agamotto.create ?budget_bytes vm reg in
  (ag, vm, clock)

let test_agamotto_checkpoint_restore () =
  let ag, vm, _ = setup_agamotto () in
  Memory.write vm.Vm.mem 1000 (b "state-A");
  let a = Agamotto.checkpoint ag in
  let view_a = mem_fingerprint vm in
  Memory.write vm.Vm.mem 2000 (b "state-B");
  let b_id = Agamotto.checkpoint ag in
  let view_b = mem_fingerprint vm in
  Memory.write vm.Vm.mem 3000 (b "garbage");
  Agamotto.restore ag a;
  Alcotest.(check bool) "back to A" true (mem_fingerprint vm = view_a);
  Agamotto.restore ag b_id;
  Alcotest.(check bool) "forward to B" true (mem_fingerprint vm = view_b);
  Agamotto.restore ag (Agamotto.root ag);
  Alcotest.(check string) "root clean" "\000"
    (Bytes.to_string (Memory.read vm.Vm.mem 1000 1))

let test_agamotto_restore_charges_bitmap_walk () =
  let ag, vm, clock = setup_agamotto () in
  Memory.write_u8 vm.Vm.mem (5 * Page.size) 1;
  let cp = Agamotto.checkpoint ag in
  Memory.write_u8 vm.Vm.mem (6 * Page.size) 1;
  let t0 = Nyx_sim.Clock.now_ns clock in
  Agamotto.restore ag cp;
  let cost = Nyx_sim.Clock.now_ns clock - t0 in
  let bitmap_floor = Memory.num_pages vm.Vm.mem * Nyx_sim.Cost.bitmap_scan_per_page in
  Alcotest.(check bool) "cost includes full bitmap scan" true (cost >= bitmap_floor)

let test_agamotto_lru_eviction () =
  (* Budget fits the root plus roughly one checkpoint; the second forces
     an eviction of the least recently used leaf. *)
  let ag, vm, _ = setup_agamotto ~budget_bytes:(3 * Page.size) () in
  Memory.write vm.Vm.mem 1000 (b "A");
  let a = Agamotto.checkpoint ag in
  Agamotto.restore ag (Agamotto.root ag);
  Memory.write vm.Vm.mem 2000 (b "B");
  let b_id = Agamotto.checkpoint ag in
  Agamotto.restore ag (Agamotto.root ag);
  Memory.write vm.Vm.mem 3000 (b "C");
  let c = Agamotto.checkpoint ag in
  ignore b_id;
  ignore c;
  Alcotest.(check bool) "evicted something" true (Agamotto.evictions ag >= 1);
  Alcotest.check_raises "evicted node unusable"
    (Invalid_argument "Agamotto: unknown or evicted checkpoint") (fun () ->
      Agamotto.restore ag a)

let test_agamotto_nyx_speed_gap () =
  (* The Figure 6 claim in miniature: for few dirty pages on a big VM,
     Nyx-Net's create+restore is much faster than Agamotto's. *)
  let pages = 65_536 in
  let run_nyx () =
    let clock = Nyx_sim.Clock.create () in
    let vm =
      Vm.create ~config:{ Vm.mem_pages = pages; device_size = 64; disk_sectors = 8 } clock
    in
    let eng = Engine.create vm (Aux_state.create ()) in
    for p = 100 to 163 do
      Memory.write_u8 vm.Vm.mem (p * Page.size) 1
    done;
    let t0 = Nyx_sim.Clock.now_ns clock in
    Engine.take_incremental eng;
    Memory.write_u8 vm.Vm.mem (200 * Page.size) 1;
    Engine.restore eng;
    Nyx_sim.Clock.now_ns clock - t0
  in
  let run_agamotto () =
    let clock = Nyx_sim.Clock.create () in
    let vm =
      Vm.create ~config:{ Vm.mem_pages = pages; device_size = 64; disk_sectors = 8 } clock
    in
    let ag = Agamotto.create vm (Aux_state.create ()) in
    for p = 100 to 163 do
      Memory.write_u8 vm.Vm.mem (p * Page.size) 1
    done;
    let t0 = Nyx_sim.Clock.now_ns clock in
    let cp = Agamotto.checkpoint ag in
    Memory.write_u8 vm.Vm.mem (200 * Page.size) 1;
    Agamotto.restore ag cp;
    Nyx_sim.Clock.now_ns clock - t0
  in
  let nyx = run_nyx () and aga = run_agamotto () in
  Alcotest.(check bool)
    (Printf.sprintf "nyx (%d ns) ~10x faster than agamotto (%d ns)" nyx aga)
    true
    (aga > 5 * nyx)

(* Properties *)

let writes_gen =
  QCheck.(
    small_list (pair (int_bound ((128 * Page.size) - 16)) (string_of_size QCheck.Gen.(int_range 1 16))))

let apply_writes vm writes =
  List.iter (fun (addr, s) -> Memory.write vm.Vm.mem addr (Bytes.of_string s)) writes

let prop_root_restore_identity =
  QCheck.Test.make ~name:"root restore is identity on memory" ~count:100
    QCheck.(pair writes_gen writes_gen)
    (fun (boot_writes, test_writes) ->
      let vm, _ = mk_vm () in
      apply_writes vm boot_writes;
      let reg = Aux_state.create () in
      let root = Root.create vm reg in
      let baseline = mem_fingerprint vm in
      apply_writes vm test_writes;
      ignore (Root.restore vm reg root);
      mem_fingerprint vm = baseline)

let prop_incremental_restore_identity =
  QCheck.Test.make ~name:"incremental restore is identity on prefix state" ~count:100
    QCheck.(triple writes_gen writes_gen writes_gen)
    (fun (boot_writes, prefix_writes, suffix_writes) ->
      let vm, _ = mk_vm () in
      apply_writes vm boot_writes;
      let eng = Engine.create vm (Aux_state.create ()) in
      apply_writes vm prefix_writes;
      Engine.take_incremental eng;
      let prefix_view = mem_fingerprint vm in
      apply_writes vm suffix_writes;
      Engine.restore eng;
      mem_fingerprint vm = prefix_view)

let prop_root_return_after_incremental =
  QCheck.Test.make ~name:"root return undoes prefix and suffix" ~count:100
    QCheck.(triple writes_gen writes_gen writes_gen)
    (fun (boot_writes, prefix_writes, suffix_writes) ->
      let vm, _ = mk_vm () in
      apply_writes vm boot_writes;
      let eng = Engine.create vm (Aux_state.create ()) in
      let root_view = mem_fingerprint vm in
      apply_writes vm prefix_writes;
      Engine.take_incremental eng;
      apply_writes vm suffix_writes;
      Engine.restore_root eng;
      mem_fingerprint vm = root_view)

let prop_agamotto_restore_identity =
  QCheck.Test.make ~name:"agamotto restore is identity" ~count:60
    QCheck.(triple writes_gen writes_gen writes_gen)
    (fun (boot_writes, a_writes, b_writes) ->
      let vm, _ = mk_vm () in
      apply_writes vm boot_writes;
      let ag = Agamotto.create vm (Aux_state.create ()) in
      apply_writes vm a_writes;
      let cp = Agamotto.checkpoint ag in
      let view = mem_fingerprint vm in
      apply_writes vm b_writes;
      Agamotto.restore ag cp;
      mem_fingerprint vm = view)


(* Stateful model test: drive the engine with an arbitrary interleaving of
   writes, incremental takes, restores and root returns, mirroring each
   step against a pure model of what memory should contain. *)

type engine_op = Write of int * string | Take | Restore | Root

let engine_op_gen =
  QCheck.Gen.(
    frequency
      [
        (4, map2 (fun a s -> Write (a, s)) (int_bound ((128 * Page.size) - 16))
             (string_size ~gen:printable (int_range 1 8)));
        (2, return Take);
        (3, return Restore);
        (2, return Root);
      ])

(* domain-safe: qcheck property closure, run on a single domain *)
let prop_engine_model =
  QCheck.Test.make ~name:"engine matches a pure model under random op sequences"
    ~count:120
    (QCheck.make QCheck.Gen.(list_size (int_range 1 40) engine_op_gen))
    (fun ops ->
      let vm, _ = mk_vm () in
      Memory.write vm.Vm.mem 64 (b "boot");
      let eng = Engine.create vm (Aux_state.create ()) in
      (* The model: the root view, the view at the incremental snapshot
         (if active), and the live view. *)
      let root_view = mem_fingerprint vm in
      let snap_view = ref None in
      List.for_all
        (fun op ->
          match op with
          | Write (addr, s) ->
            Memory.write vm.Vm.mem addr (Bytes.of_string s);
            true
          | Take ->
            if Engine.has_incremental eng then true (* illegal; skip *)
            else begin
              Engine.take_incremental eng;
              snap_view := Some (mem_fingerprint vm);
              true
            end
          | Restore ->
            Engine.restore eng;
            let expected =
              match !snap_view with Some v -> v | None -> root_view
            in
            mem_fingerprint vm = expected
          | Root ->
            Engine.restore_root eng;
            snap_view := None;
            mem_fingerprint vm = root_view)
        ops)

let () =
  Alcotest.run "nyx_snapshot"
    [
      ( "aux",
        [
          Alcotest.test_case "roundtrip" `Quick test_aux_roundtrip;
          Alcotest.test_case "mismatch" `Quick test_aux_handler_mismatch;
        ] );
      ( "root",
        [
          Alcotest.test_case "restore memory" `Quick test_root_restore_memory;
          Alcotest.test_case "unmaterialized page" `Quick test_root_restore_unmaterialized_page;
          Alcotest.test_case "device and disk" `Quick test_root_restores_device_and_disk;
          Alcotest.test_case "cost proportional" `Quick test_root_restore_cost_proportional_to_dirty;
          QCheck_alcotest.to_alcotest prop_root_restore_identity;
        ] );
      ( "incremental",
        [
          Alcotest.test_case "root mode" `Quick test_engine_root_mode_restore;
          Alcotest.test_case "cycle" `Quick test_engine_incremental_cycle;
          Alcotest.test_case "root return" `Quick test_engine_restore_root_discards_incremental;
          Alcotest.test_case "double take" `Quick test_engine_double_take_rejected;
          Alcotest.test_case "second snapshot" `Quick test_engine_second_snapshot_after_root_return;
          Alcotest.test_case "remirror" `Quick test_engine_remirror_bounds_accumulation;
          Alcotest.test_case "cost excludes prefix" `Quick test_engine_incremental_restore_cost_excludes_prefix;
          Alcotest.test_case "disk layers" `Quick test_engine_disk_incremental;
          QCheck_alcotest.to_alcotest prop_incremental_restore_identity;
          QCheck_alcotest.to_alcotest prop_engine_model;
          QCheck_alcotest.to_alcotest prop_root_return_after_incremental;
        ] );
      ( "agamotto",
        [
          Alcotest.test_case "checkpoint/restore" `Quick test_agamotto_checkpoint_restore;
          Alcotest.test_case "bitmap walk cost" `Quick test_agamotto_restore_charges_bitmap_walk;
          Alcotest.test_case "lru eviction" `Quick test_agamotto_lru_eviction;
          Alcotest.test_case "nyx speed gap" `Quick test_agamotto_nyx_speed_gap;
          QCheck_alcotest.to_alcotest prop_agamotto_restore_identity;
        ] );
    ]
