(* Adaptive snapshot placement (ISSUE: dynamic policy): the fuzzy
   protocol-state hash, the state-boundary probe, the cost-model
   hysteresis, placement stats in reports, and the determinism contract
   (same seed, NYX_DOMAINS=1 vs 4, kill+resume) for dynamic campaigns. *)

open Nyx_core

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let echo_entry () = Option.get (Nyx_targets.Registry.find "echo")
let ftp_entry () = Option.get (Nyx_targets.Registry.find "lightftp")

(* ------------------------------------------------------------------ *)
(* Fuzzy state hash (StateAFL-style signature over aux state)          *)

let aux_with state =
  let t = Nyx_snapshot.Aux_state.create () in
  Nyx_snapshot.Aux_state.register t
    {
      Nyx_snapshot.Aux_state.name = "conn";
      save = (fun () -> Bytes.of_string !state);
      load = (fun b -> state := Bytes.to_string b);
    };
  t

let hash_of s =
  let clock = Nyx_sim.Clock.create () in
  let aux = aux_with (ref s) in
  Nyx_snapshot.Aux_state.fuzzy_hash (Nyx_snapshot.Aux_state.capture aux clock)

let prop_fuzzy_hash_deterministic =
  QCheck.Test.make ~name:"fuzzy hash: pure function of the state bytes"
    ~count:100
    QCheck.(string_of_size Gen.(0 -- 300))
    (fun s ->
      let h = hash_of s in
      (* Two independent captures of byte-identical state agree, and the
         hash is usable as a table key (non-negative). *)
      h >= 0 && h = hash_of s)

let test_fuzzy_hash_stable_over_restore () =
  let clock = Nyx_sim.Clock.create () in
  let state = ref "220 service ready\r\n" in
  let aux = aux_with state in
  let c1 = Nyx_snapshot.Aux_state.capture aux clock in
  let h1 = Nyx_snapshot.Aux_state.fuzzy_hash c1 in
  (* Mutate the live state, then roll it back from the capture: the
     signature of a fresh capture must match the original exactly. *)
  state := String.make 200 'x';
  Nyx_snapshot.Aux_state.restore aux clock c1;
  let c2 = Nyx_snapshot.Aux_state.capture aux clock in
  check_int "hash survives save/restore round-trip" h1
    (Nyx_snapshot.Aux_state.fuzzy_hash c2);
  check_int "payload restored byte-for-byte"
    (Nyx_snapshot.Aux_state.size_bytes c1)
    (Nyx_snapshot.Aux_state.size_bytes c2)

(* ------------------------------------------------------------------ *)
(* Executor state-boundary probe                                       *)

let test_state_boundaries_interior () =
  let entry = Option.get (Nyx_targets.Registry.find "exim") in
  let ns = Campaign.net_spec () in
  let exec = Executor.create ~net_spec:ns entry.Nyx_targets.Registry.target in
  let packets =
    [ "EHLO c\r\n"; "MAIL FROM:<a@b>\r\n"; "RCPT TO:<c@d>\r\n"; "DATA\r\n"; "hi\r\n.\r\n" ]
  in
  let p = Nyx_spec.Net_spec.seed_of_packets ns (List.map Bytes.of_string packets) in
  let n = Array.length p.Nyx_spec.Program.ops in
  let b1 = Executor.state_boundaries exec p in
  check_bool "SMTP dialogue crosses protocol states" true (b1 <> []);
  check_bool "boundaries are interior indices" true
    (List.for_all (fun i -> i >= 1 && i <= n - 1) b1);
  check_bool "boundaries are sorted" true (List.sort compare b1 = b1);
  (* The probe replays the program and must leave the instance clean:
     probing twice gives the same answer. *)
  Alcotest.(check (list int)) "probe is repeatable" b1 (Executor.state_boundaries exec p)

(* ------------------------------------------------------------------ *)
(* Dynamic policy unit behaviour                                       *)

let dyn_policy () = Policy.create Policy.Dynamic (Nyx_sim.Rng.create 1)

let full_ns = 1_000_000

let test_boundaries_clamped_to_interior () =
  let p = dyn_policy () in
  (match Policy.prepare_dynamic p ~input_id:3 ~packets:8 ~full_ns with
  | `Probe -> ()
  | `Ready -> Alcotest.fail "fresh entry must ask for a probe");
  Policy.set_boundaries p ~input_id:3 ~packets:8 ~boundaries:[ 0; 3; 99 ];
  (match Policy.prepare_dynamic p ~input_id:3 ~packets:8 ~full_ns with
  | `Ready -> ()
  | `Probe -> Alcotest.fail "probed entry must not probe again");
  (* 0 and 99 are not interior; the single surviving boundary wins the
     bootstrap cost model outright. *)
  match Policy.decide p ~input_id:3 ~packets:8 with
  | `At 3 -> ()
  | `At i -> Alcotest.failf "snapped to %d, wanted boundary 3" i
  | `Root -> Alcotest.fail "bootstrap estimate must beat the root"

let test_no_boundaries_degrades_to_deepest () =
  let p = dyn_policy () in
  ignore (Policy.prepare_dynamic p ~input_id:1 ~packets:8 ~full_ns);
  Policy.set_boundaries p ~input_id:1 ~packets:8 ~boundaries:[];
  (match Policy.decide p ~input_id:1 ~packets:8 with
  | `At 7 -> ()
  | _ -> Alcotest.fail "empty probe must fall back to packets-1");
  (* The fallback candidate is synthetic, not a genuine boundary. *)
  match Policy.placement_stats p with
  | Some s -> check_int "no genuine boundary counted" 0 s.Report.boundary_count
  | None -> Alcotest.fail "dynamic policy must report stats"

let test_short_inputs_stay_on_root () =
  let p = dyn_policy () in
  (match Policy.prepare_dynamic p ~input_id:9 ~packets:4 ~full_ns with
  | `Ready -> ()
  | `Probe -> Alcotest.fail "short inputs must not be probed");
  match Policy.decide p ~input_id:9 ~packets:4 with
  | `Root -> ()
  | `At _ -> Alcotest.fail "inputs below the minimum always use the root"

let test_hysteresis_margin_and_cooldown () =
  let p = dyn_policy () in
  ignore (Policy.prepare_dynamic p ~input_id:7 ~packets:8 ~full_ns);
  Policy.set_boundaries p ~input_id:7 ~packets:8 ~boundaries:[ 2; 6 ];
  (* Bootstrap prorates the full cost: the deepest boundary is cheapest. *)
  (match Policy.decide p ~input_id:7 ~packets:8 with
  | `At 6 -> ()
  | _ -> Alcotest.fail "bootstrap must adopt the deepest boundary");
  check_bool "adoption is not a move" true (Policy.last_move p = None);
  (* One dry round makes index 2 nominally cheaper, but not by the move
     margin: the placement must hold. *)
  Policy.notify_no_news p ~input_id:7;
  (match Policy.decide p ~input_id:7 ~packets:8 with
  | `At 6 -> ()
  | _ -> Alcotest.fail "a sub-margin improvement must not trigger a move");
  check_bool "no move recorded" true (Policy.last_move p = None);
  (* A second dry round pushes the staleness penalty past the margin. *)
  Policy.notify_no_news p ~input_id:7;
  (match Policy.decide p ~input_id:7 ~packets:8 with
  | `At 2 -> ()
  | _ -> Alcotest.fail "past the margin the snapshot must relocate");
  (match Policy.last_move p with
  | Some (7, 6, 2) -> ()
  | _ -> Alcotest.fail "the move must be reported as (input 7, 6 -> 2)");
  (* Immediately after a move the cooldown pins the placement even if the
     model already prefers somewhere else — thrashing is impossible. *)
  Policy.notify_no_news p ~input_id:7;
  (match Policy.decide p ~input_id:7 ~packets:8 with
  | `At 2 -> ()
  | _ -> Alcotest.fail "cooldown must pin the fresh placement");
  check_bool "cooldown decide clears last_move" true (Policy.last_move p = None);
  match Policy.placement_stats p with
  | Some s ->
    check_int "one probe" 1 s.Report.probes;
    check_int "exactly one move" 1 s.Report.moves;
    check_int "two genuine boundaries" 2 s.Report.boundary_count;
    Alcotest.(check (list (pair int int))) "final placement" [ (7, 2) ]
      s.Report.placements
  | None -> Alcotest.fail "dynamic policy must report stats"

let test_news_resets_staleness () =
  let p = dyn_policy () in
  ignore (Policy.prepare_dynamic p ~input_id:5 ~packets:8 ~full_ns);
  Policy.set_boundaries p ~input_id:5 ~packets:8 ~boundaries:[ 2; 6 ];
  ignore (Policy.decide p ~input_id:5 ~packets:8);
  (* Dry, dry, then news: the reset must cancel the pending relocation. *)
  Policy.notify_no_news p ~input_id:5;
  Policy.notify_no_news p ~input_id:5;
  Policy.notify_news p ~input_id:5;
  (match Policy.decide p ~input_id:5 ~packets:8 with
  | `At 6 -> ()
  | _ -> Alcotest.fail "news must shed the staleness and keep the placement");
  match Policy.placement_stats p with
  | Some s -> check_int "no move after reset" 0 s.Report.moves
  | None -> Alcotest.fail "stats"

let test_static_policies_report_no_stats () =
  List.iter
    (fun k ->
      let p = Policy.create k (Nyx_sim.Rng.create 1) in
      check_bool (Policy.name k ^ " reports no placement stats") true
        (Policy.placement_stats p = None))
    [ Policy.None_; Policy.Balanced; Policy.Aggressive ]

let test_policy_state_roundtrip () =
  (* The adaptive table survives checkpoint_state/restore_state exactly:
     a restored policy makes the same next decision, including the
     armed (one-dry-round-from-moving) staleness. *)
  let p1 = dyn_policy () in
  ignore (Policy.prepare_dynamic p1 ~input_id:7 ~packets:8 ~full_ns);
  Policy.set_boundaries p1 ~input_id:7 ~packets:8 ~boundaries:[ 2; 6 ];
  ignore (Policy.decide p1 ~input_id:7 ~packets:8);
  Policy.notify_no_news p1 ~input_id:7;
  let st = Policy.checkpoint_state p1 in
  let p2 = dyn_policy () in
  Policy.restore_state p2 st;
  check_bool "restored state is re-checkpointable identically" true
    (Policy.checkpoint_state p2 = st);
  Policy.notify_no_news p1 ~input_id:7;
  Policy.notify_no_news p2 ~input_id:7;
  let a = Policy.decide p1 ~input_id:7 ~packets:8 in
  let b = Policy.decide p2 ~input_id:7 ~packets:8 in
  check_bool "original and restored policies decide alike" true (a = b);
  check_bool "both relocated to the shallow boundary" true (a = `At 2)

(* ------------------------------------------------------------------ *)
(* Dynamic campaigns: stats, determinism, fleet and kill+resume        *)

let dyn_config ?(seed = 7) ?(budget_ns = 2_000_000_000) ?(max_execs = 2_000) () =
  {
    Campaign.default_config with
    Campaign.budget_ns;
    max_execs;
    policy = Policy.Dynamic;
    seed;
  }

let test_dynamic_campaign_reports_placement () =
  let r = Campaign.run (dyn_config ()) (ftp_entry ()) in
  match r.Report.placement with
  | None -> Alcotest.fail "dynamic campaign must attach placement stats"
  | Some s ->
    check_bool "probed at least the seed entry" true (s.Report.probes >= 1);
    check_bool "found protocol-state boundaries" true (s.Report.boundary_count > 0);
    check_bool "placed at least one entry" true (s.Report.placements <> []);
    List.iter
      (fun (id, idx) ->
        check_bool (Printf.sprintf "entry %d placed at sane index %d" id idx)
          true (idx >= 0))
      s.Report.placements

let test_static_campaign_reports_none () =
  let cfg = { (dyn_config ()) with Campaign.policy = Policy.Aggressive } in
  let r = Campaign.run cfg (ftp_entry ()) in
  check_bool "static campaigns carry no placement stats" true
    (r.Report.placement = None)

let prop_dynamic_same_seed_bit_identical =
  QCheck.Test.make ~name:"dynamic campaign: same seed, same report" ~count:4
    QCheck.(int_range 1 1000)
    (fun seed ->
      let cfg = dyn_config ~seed ~budget_ns:1_200_000_000 ~max_execs:1_500 () in
      let entry = ftp_entry () in
      Report.same_deterministic (Campaign.run cfg entry) (Campaign.run cfg entry))

(* Deterministic projection of a fleet outcome, as in test_fleet_sync. *)
let core (o : Fleet.outcome) =
  ( ( o.Fleet.instances,
      o.Fleet.first_solve_ns,
      o.Fleet.solves,
      o.Fleet.total_execs,
      o.Fleet.quarantined ),
    (o.Fleet.union_edges, o.Fleet.sync_epochs, o.Fleet.work_ns) )

let same_outcome a b =
  core a = core b
  && List.length a.Fleet.results = List.length b.Fleet.results
  && List.for_all2 Report.same_deterministic a.Fleet.results b.Fleet.results

let test_dynamic_fleet_domain_independent () =
  let entry = ftp_entry () in
  let config = dyn_config ~budget_ns:1_200_000_000 ~max_execs:3_000 () in
  let seq =
    Fleet.run ~instances:4 ~domains:1 ~sync_ns:200_000_000 ~config entry
  in
  let par =
    Fleet.run ~instances:4 ~domains:4 ~sync_ns:200_000_000 ~config entry
  in
  check_bool "dynamic fleet: 4 domains == 1 domain" true (same_outcome seq par);
  check_bool "dynamic instances carry placement stats" true
    (List.for_all (fun r -> r.Report.placement <> None) seq.Fleet.results)

(* Kill+resume, the resilience harness pointed at a dynamic campaign on
   a multi-state target (lightftp: 7 program packets, so the adaptive
   table is populated when the checkpoint lands). *)

exception Killed

let run_with_kill ~kill_at path =
  let ck =
    Campaign.checkpointing ~path ~interval_ns:100_000_000
      ~on_write:(fun ordinal -> if ordinal = kill_at then raise Killed)
      ()
  in
  match Campaign.run ~checkpoint:ck (dyn_config ()) (ftp_entry ()) with
  | r -> Some r
  | exception Killed -> None

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "checkpoint load failed: %s" e

(* domain-safe: test-only lazy baseline, forced on a single domain *)
let prop_dynamic_kill_resume_bit_identical =
  let expected = lazy (Campaign.run (dyn_config ()) (ftp_entry ())) in
  QCheck.Test.make
    ~name:"dynamic: kill at any checkpoint + resume == straight run" ~count:6
    QCheck.(int_range 1 10)
    (fun kill_at ->
      let expected = Lazy.force expected in
      let path = Filename.temp_file "nyx_place_ckpt" ".bin" in
      Fun.protect
        ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
        (fun () ->
          match run_with_kill ~kill_at path with
          | Some finished -> Report.same_deterministic finished expected
          | None ->
            let resumed =
              Campaign.resume (ok (Checkpoint.load path)) (ftp_entry ())
            in
            Report.same_deterministic resumed expected))

(* ------------------------------------------------------------------ *)
(* Spec lint: the dynamic-degenerate warning                           *)

let codes diags = List.map (fun d -> d.Nyx_analysis.Diag.code) diags

let contains hay needle =
  let hl = String.length hay and nl = String.length needle in
  let rec scan i = i + nl <= hl && (String.sub hay i nl = needle || scan (i + 1)) in
  scan 0

let test_lint_degenerate_single_opcode () =
  (* One constructible non-snapshot opcode: every generated program is a
     run of "send"s, so the boundary probe can never fire after index 0. *)
  let b = Nyx_spec.Spec.start "mono" in
  let d = Nyx_spec.Spec.data_type b ~max_len:8 "payload" in
  let _send = Nyx_spec.Spec.node_type b ~data:[ d ] "send" in
  let diags = Nyx_analysis.Spec_lint.check (Nyx_spec.Spec.finalize b) in
  check_bool "warns dynamic-degenerate" true
    (List.mem "dynamic-degenerate" (codes diags));
  match
    List.find_opt (fun d -> d.Nyx_analysis.Diag.code = "dynamic-degenerate") diags
  with
  | Some d ->
    check_bool "provenance names the surviving opcode" true
      (contains d.Nyx_analysis.Diag.msg "\"send\"")
  | None -> Alcotest.fail "finding vanished"

let test_lint_degenerate_nothing_constructible () =
  (* Zero constructible opcodes is the degenerate case too (on top of the
     unconstructible-node errors). *)
  let b = Nyx_spec.Spec.start "stuck" in
  let x = Nyx_spec.Spec.edge_type b "x" in
  let _use = Nyx_spec.Spec.node_type b ~borrows:[ x ] "use" in
  let diags = Nyx_analysis.Spec_lint.check (Nyx_spec.Spec.finalize b) in
  check_bool "warns dynamic-degenerate" true
    (List.mem "dynamic-degenerate" (codes diags));
  check_bool "still reports the constructibility error" true
    (List.mem "unconstructible-node" (codes diags))

let test_lint_shipped_net_spec_not_degenerate () =
  let ns = Campaign.net_spec () in
  check_bool "raw network spec has a real state surface" false
    (List.mem "dynamic-degenerate"
       (codes (Nyx_analysis.Spec_lint.check ns.Nyx_spec.Net_spec.spec)))

(* ------------------------------------------------------------------ *)

let () =
  ignore (echo_entry ());
  Alcotest.run "nyx_placement"
    [
      ( "fuzzy-hash",
        [
          QCheck_alcotest.to_alcotest prop_fuzzy_hash_deterministic;
          Alcotest.test_case "stable over save/restore" `Quick
            test_fuzzy_hash_stable_over_restore;
        ] );
      ( "state-probe",
        [
          Alcotest.test_case "boundaries are interior and repeatable" `Quick
            test_state_boundaries_interior;
        ] );
      ( "policy",
        [
          Alcotest.test_case "boundaries clamped to interior" `Quick
            test_boundaries_clamped_to_interior;
          Alcotest.test_case "empty probe degrades to deepest" `Quick
            test_no_boundaries_degrades_to_deepest;
          Alcotest.test_case "short inputs stay on root" `Quick
            test_short_inputs_stay_on_root;
          Alcotest.test_case "hysteresis margin and cooldown" `Quick
            test_hysteresis_margin_and_cooldown;
          Alcotest.test_case "news resets staleness" `Quick
            test_news_resets_staleness;
          Alcotest.test_case "static policies report no stats" `Quick
            test_static_policies_report_no_stats;
          Alcotest.test_case "state roundtrip" `Quick test_policy_state_roundtrip;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "dynamic campaign reports placement" `Slow
            test_dynamic_campaign_reports_placement;
          Alcotest.test_case "static campaign reports none" `Slow
            test_static_campaign_reports_none;
          QCheck_alcotest.to_alcotest prop_dynamic_same_seed_bit_identical;
          Alcotest.test_case "fleet: 4 domains == 1 domain" `Slow
            test_dynamic_fleet_domain_independent;
          QCheck_alcotest.to_alcotest prop_dynamic_kill_resume_bit_identical;
        ] );
      ( "lint",
        [
          Alcotest.test_case "single-opcode spec is degenerate" `Quick
            test_lint_degenerate_single_opcode;
          Alcotest.test_case "nothing-constructible spec is degenerate" `Quick
            test_lint_degenerate_nothing_constructible;
          Alcotest.test_case "shipped net spec is not degenerate" `Quick
            test_lint_shipped_net_spec_not_degenerate;
        ] );
    ]
