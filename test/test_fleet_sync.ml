(* Shared-corpus fleet (ISSUE: corpus-sync epochs): determinism across
   domain counts and batch sizes, the sync-off golden, fleet
   kill+resume, and the observability of sync epochs. *)

open Nyx_core

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let echo_entry () = Option.get (Nyx_targets.Registry.find "echo")
let ftp_entry () = Option.get (Nyx_targets.Registry.find "lightftp")

let cfg ?(seed = 5) ?(budget_ns = 1_500_000_000) ?(max_execs = 4_000) () =
  {
    Campaign.default_config with
    Campaign.budget_ns;
    max_execs;
    policy = Policy.Balanced;
    seed;
  }

(* The deterministic projection of an outcome: everything except wall
   clock and the worker-count-dependent reporting fields ([domains],
   [makespan_ns] — the makespan model depends on the worker count by
   design, the fuzzing results must not). *)
let core (o : Fleet.outcome) =
  ( ( o.Fleet.instances,
      o.Fleet.first_solve_ns,
      o.Fleet.solves,
      o.Fleet.total_execs,
      o.Fleet.quarantined ),
    (o.Fleet.union_edges, o.Fleet.sync_epochs, o.Fleet.work_ns) )

let same_outcome a b =
  core a = core b
  && List.length a.Fleet.results = List.length b.Fleet.results
  && List.for_all2 Report.same_deterministic a.Fleet.results b.Fleet.results

(* --- sync off: the historical independent fleet, byte for byte ----- *)

let test_sync_off_golden () =
  let entry = echo_entry () in
  let config = cfg () in
  let fleet = Fleet.run ~instances:3 ~domains:1 ~config entry in
  (* The independent fleet is definitionally N separate campaigns with
     derived seeds — reproduce it by hand. *)
  let solo =
    List.init 3 (fun i ->
        Campaign.run
          { config with Campaign.seed = config.Campaign.seed + (1000 * i) }
          entry)
  in
  check_int "results" 3 (List.length fleet.Fleet.results);
  List.iter2
    (fun a b ->
      check_bool "fleet instance == solo campaign" true
        (Report.same_deterministic a b))
    fleet.Fleet.results solo;
  check_bool "no union map when sync off" true (fleet.Fleet.union_edges = None);
  check_bool "no sync epochs when sync off" true (fleet.Fleet.sync_epochs = []);
  check_int "work is the summed virtual time"
    (List.fold_left (fun acc r -> acc + r.Report.virtual_ns) 0 solo)
    fleet.Fleet.work_ns;
  check_int "one worker: makespan == work" fleet.Fleet.work_ns
    fleet.Fleet.makespan_ns

(* --- synced fleet: domain-count and batch-size independence --------- *)

let sync_run ?(domains = 1) ?batch ?(sync_import = true) ?(instances = 4)
    ?(sync_ns = 200_000_000) ?profile ?checkpoint config entry =
  Fleet.run ~instances ~domains ?batch ?profile ~sync_ns ~sync_import
    ?checkpoint ~config entry

let test_sync_domains_deterministic () =
  let entry = echo_entry () in
  let config = cfg () in
  let seq = sync_run ~domains:1 config entry in
  let par = sync_run ~domains:4 config entry in
  check_bool "synced fleet: 4 domains == 1 domain" true (same_outcome seq par);
  check_int "reported domains differ" 4 par.Fleet.domains;
  check_bool "sync epochs recorded" true (List.length seq.Fleet.sync_epochs > 0)

let test_sync_batch_deterministic () =
  let entry = echo_entry () in
  let config = cfg () in
  let b1 = sync_run ~domains:4 ~batch:1 config entry in
  let b3 = sync_run ~domains:4 ~batch:3 config entry in
  check_bool "batch=3 == batch=1" true (same_outcome b1 b3);
  (* Batch is a pure submission knob: even the makespan model agrees. *)
  check_int "same makespan" b1.Fleet.makespan_ns b3.Fleet.makespan_ns

let prop_synced_fleet_bit_identical =
  QCheck.Test.make
    ~name:"synced fleet bit-identical across NYX_DOMAINS and batch" ~count:6
    QCheck.(
      triple (int_range 1 1000) (int_range 2 3)
        (oneofl [ 80_000_000; 137_000_000; 300_000_000 ]))
    (fun (seed, instances, sync_ns) ->
      let entry = echo_entry () in
      let config = cfg ~seed ~budget_ns:800_000_000 ~max_execs:1_500 () in
      let a =
        Fleet.run ~instances ~domains:1 ~sync_ns ~config entry
      in
      let b =
        Fleet.run ~instances ~domains:3 ~batch:2 ~sync_ns ~config entry
      in
      same_outcome a b)

(* --- corpus sharing actually happens ------------------------------- *)

let test_sync_shares_coverage () =
  let entry = ftp_entry () in
  let config = cfg ~budget_ns:2_000_000_000 () in
  let o = sync_run ~instances:4 ~sync_ns:150_000_000 config entry in
  let union = Option.get o.Fleet.union_edges in
  let exports =
    List.fold_left (fun a r -> a + r.Fleet.se_exports) 0 o.Fleet.sync_epochs
  in
  let imports =
    List.fold_left (fun a r -> a + r.Fleet.se_imports) 0 o.Fleet.sync_epochs
  in
  check_bool "instances exported" true (exports > 0);
  check_bool "peers imported" true (imports > 0);
  List.iter
    (fun r ->
      check_bool "union covers every instance" true
        (union >= r.Report.final_edges))
    o.Fleet.results;
  (* Rows are cumulative and ordered. *)
  ignore
    (List.fold_left
       (fun prev (r : Fleet.sync_epoch) ->
         check_bool "union monotone" true (r.Fleet.se_union_edges >= prev);
         r.Fleet.se_union_edges)
       0 o.Fleet.sync_epochs)

let test_observer_mode_no_imports () =
  let entry = echo_entry () in
  let config = cfg () in
  let o = sync_run ~sync_import:false config entry in
  List.iter
    (fun (r : Fleet.sync_epoch) ->
      check_int "observer: no imports" 0 r.Fleet.se_imports)
    o.Fleet.sync_epochs;
  check_bool "observer still tracks the union" true
    (o.Fleet.union_edges <> None);
  (* Observer instances never communicate, so each one must match the
     same instance stepped at a different domain count. *)
  let o' = sync_run ~sync_import:false ~domains:4 config entry in
  check_bool "observer deterministic across domains" true (same_outcome o o')

(* --- kill + resume -------------------------------------------------- *)

exception Kill

let test_kill_resume_bit_identical () =
  let entry = echo_entry () in
  let config = cfg () in
  let expected = sync_run ~instances:3 ~sync_ns:150_000_000 config entry in
  List.iter
    (fun kill_at ->
      let path = Filename.temp_file "nyx_fleet_ckpt" ".bin" in
      Fun.protect
        ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
        (fun () ->
          let checkpoint =
            Fleet.checkpointing
              ~on_write:(fun ordinal -> if ordinal = kill_at then raise Kill)
              ~path ~every_epochs:2 ()
          in
          match
            sync_run ~instances:3 ~sync_ns:150_000_000 ~checkpoint config entry
          with
          | finished ->
            (* Fewer than kill_at checkpoints fired: nothing was killed;
               the checkpointed run must already match (writes are
               observational). *)
            check_bool "checkpointed run matches" true
              (same_outcome finished expected)
          | exception Kill ->
            (* Resume on a different domain count than the original run:
               results must not care. *)
            let resumed = Fleet.resume ~domains:2 ~path entry in
            check_bool
              (Printf.sprintf "kill at checkpoint %d + resume == straight run"
                 kill_at)
              true
              (same_outcome resumed expected);
            (* The makespan model is domain-count-dependent by design;
               at the original worker count it must be continuous across
               the kill. *)
            let resumed1 = Fleet.resume ~domains:1 ~path entry in
            check_int "resumed makespan matches at equal domains"
              expected.Fleet.makespan_ns resumed1.Fleet.makespan_ns))
    [ 1; 2 ]

let test_resume_rejects_garbage () =
  let path = Filename.temp_file "nyx_fleet_bad" ".bin" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let oc = open_out_bin path in
      output_string oc "not a fleet checkpoint";
      close_out oc;
      match Fleet.resume ~path (echo_entry ()) with
      | _ -> Alcotest.fail "resume must reject garbage"
      | exception Invalid_argument _ -> ())

let test_checkpoint_requires_sync () =
  let path = Filename.temp_file "nyx_fleet_req" ".bin" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let checkpoint = Fleet.checkpointing ~path ~every_epochs:1 () in
      match
        Fleet.run ~instances:2 ~domains:1 ~checkpoint ~config:(cfg ())
          (echo_entry ())
      with
      | _ -> Alcotest.fail "checkpoint without sync_ns must be rejected"
      | exception Invalid_argument _ -> ())

(* --- observability -------------------------------------------------- *)

let test_profile_has_corpus_sync_phase () =
  let entry = echo_entry () in
  let config = cfg () in
  let plain = sync_run config entry in
  let profiled = sync_run ~profile:true config entry in
  (* Profiling is observational: identical outcome except that results
     additionally carry a [phase_profile] snapshot. *)
  check_bool "profiling is observational (fleet core)" true
    (core plain = core profiled);
  check_bool "profiling is observational (per instance)" true
    (List.for_all2
       (fun a b ->
         Report.same_deterministic a { b with Report.phase_profile = None })
       plain.Fleet.results profiled.Fleet.results);
  let sync_spans = ref 0 and sync_ns = ref 0 in
  List.iter
    (fun (r : Report.campaign_result) ->
      match r.Report.phase_profile with
      | None -> Alcotest.fail "profiled fleet result lacks a profile"
      | Some snap ->
        check_int "phases sum to the instance's virtual time"
          snap.Nyx_obs.Profile.total_virtual_ns
          (Nyx_obs.Profile.sum_virtual_ns snap);
        List.iter
          (fun (e : Nyx_obs.Profile.entry) ->
            if e.Nyx_obs.Profile.phase = Nyx_obs.Profile.Corpus_sync then begin
              sync_spans := !sync_spans + e.Nyx_obs.Profile.count;
              sync_ns := !sync_ns + e.Nyx_obs.Profile.virtual_ns
            end)
          snap.Nyx_obs.Profile.entries)
    profiled.Fleet.results;
  check_bool "corpus-sync spans recorded" true (!sync_spans > 0);
  check_bool "corpus-sync costs virtual time" true (!sync_ns > 0)

let test_trace_sync_epoch_spans () =
  let entry = echo_entry () in
  let config = cfg () in
  let o, events =
    Nyx_obs.Trace.with_memory_sink (fun () -> sync_run config entry)
  in
  let count ph =
    List.length
      (List.filter
         (fun (e : Nyx_obs.Trace.event) ->
           e.Nyx_obs.Trace.name = "sync-epoch" && e.Nyx_obs.Trace.ph = ph)
         events)
  in
  let epochs = List.length o.Fleet.sync_epochs in
  check_bool "epochs happened" true (epochs > 0);
  check_int "one begin span per epoch" epochs (count `B);
  check_int "one end span per epoch" epochs (count `E);
  (* Barrier stamps are the deterministic epoch boundaries. *)
  List.iter2
    (fun (row : Fleet.sync_epoch) (e : Nyx_obs.Trace.event) ->
      check_int "span stamped at the barrier" row.Fleet.se_at_ns
        e.Nyx_obs.Trace.vns)
    o.Fleet.sync_epochs
    (List.filter
       (fun (e : Nyx_obs.Trace.event) ->
         e.Nyx_obs.Trace.name = "sync-epoch" && e.Nyx_obs.Trace.ph = `B)
       events)

let () =
  Alcotest.run "nyx_fleet_sync"
    [
      ( "golden",
        [
          Alcotest.test_case "sync off == independent campaigns" `Quick
            test_sync_off_golden;
          Alcotest.test_case "checkpoint requires sync" `Quick
            test_checkpoint_requires_sync;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "4 domains == 1 domain" `Quick
            test_sync_domains_deterministic;
          Alcotest.test_case "batch sizes agree" `Quick
            test_sync_batch_deterministic;
          QCheck_alcotest.to_alcotest prop_synced_fleet_bit_identical;
        ] );
      ( "sharing",
        [
          Alcotest.test_case "exports reach peers" `Quick
            test_sync_shares_coverage;
          Alcotest.test_case "observer mode" `Quick
            test_observer_mode_no_imports;
        ] );
      ( "resume",
        [
          Alcotest.test_case "kill + resume bit-identical" `Quick
            test_kill_resume_bit_identical;
          Alcotest.test_case "rejects garbage" `Quick
            test_resume_rejects_garbage;
        ] );
      ( "observability",
        [
          Alcotest.test_case "corpus-sync profile phase" `Quick
            test_profile_has_corpus_sync_phase;
          Alcotest.test_case "sync-epoch trace spans" `Quick
            test_trace_sync_epoch_spans;
        ] );
    ]
