open Nyx_spec

let check_int = Alcotest.(check int)

let net () = Net_spec.create ()

let seed3 ns =
  Net_spec.seed_of_packets ns
    [ Bytes.of_string "one"; Bytes.of_string "two"; Bytes.of_string "three" ]

(* Spec declaration *)

let test_spec_declaration () =
  let ns = net () in
  let spec = ns.Net_spec.spec in
  check_int "snapshot node is id 0" 0 Spec.snapshot_node_id;
  Alcotest.(check string) "snapshot node name" "snapshot"
    (Spec.snapshot_node ns.Net_spec.spec).Spec.nt_name;
  check_int "connect has one output" 1 (List.length (Spec.node_by_name spec "connect").Spec.outputs);
  check_int "packet borrows one" 1 (List.length (Spec.node_by_name spec "packet").Spec.borrows);
  check_int "close consumes one" 1 (List.length (Spec.node_by_name spec "close").Spec.consumes);
  Alcotest.check_raises "unknown node" Not_found (fun () ->
      ignore (Spec.node_by_name spec "frobnicate"))

(* Builder *)

let test_builder_happy_path () =
  let ns = net () in
  let b = Builder.create ns.Net_spec.spec in
  (match Builder.call b "connect" [] with
  | [ con ] ->
    ignore (Builder.call b "packet" ~data:[ Bytes.of_string "GET /" ] [ con ]);
    Builder.snapshot b;
    ignore (Builder.call b "packet" ~data:[ Bytes.of_string "HOST: x" ] [ con ]);
    ignore (Builder.call b "close" [ con ])
  | _ -> Alcotest.fail "connect must return one value");
  let p = Builder.build b in
  check_int "five ops" 5 (Array.length p.Program.ops);
  Alcotest.(check (option int)) "snapshot after 2 packets" (Some 2) (Program.snapshot_index p)

let test_builder_rejects_type_error () =
  let ns = net () in
  let b = Builder.create ns.Net_spec.spec in
  Alcotest.check_raises "packet without connection"
    (Invalid_argument "Builder.call packet: wrong arity") (fun () ->
      ignore (Builder.call b "packet" ~data:[ Bytes.of_string "x" ] []))

let test_builder_rejects_use_after_consume () =
  let ns = net () in
  let b = Builder.create ns.Net_spec.spec in
  match Builder.call b "connect" [] with
  | [ con ] ->
    ignore (Builder.call b "close" [ con ]);
    Alcotest.check_raises "affine violation"
      (Invalid_argument "Builder.call packet: value already consumed") (fun () ->
        ignore (Builder.call b "packet" ~data:[ Bytes.of_string "x" ] [ con ]))
  | _ -> Alcotest.fail "connect"

(* Validation *)

let test_validate_catches_bad_ref () =
  let ns = net () in
  let p = seed3 ns in
  let bad_op = { Program.node = ns.Net_spec.packet.Spec.nt_id;
                 args = [| 99 |]; data = [| Bytes.empty |] } in
  let bad = { p with Program.ops = Array.append p.Program.ops [| bad_op |] } in
  Alcotest.(check bool) "rejected" true (Result.is_error (Program.validate bad))

let test_validate_catches_double_snapshot () =
  let ns = net () in
  let p = Program.with_snapshot_at (seed3 ns) 1 in
  let snap = { Program.node = Spec.snapshot_node_id; args = [||]; data = [||] } in
  let bad = { p with Program.ops = Array.append p.Program.ops [| snap |] } in
  Alcotest.(check bool) "rejected" true (Result.is_error (Program.validate bad))

(* Snapshot placement *)

let test_snapshot_placement () =
  let ns = net () in
  let p = seed3 ns in
  check_int "4 packets (connect + 3)" 4 (Program.packet_count p);
  let p1 = Program.with_snapshot_at p 2 in
  Alcotest.(check (option int)) "index 2" (Some 2) (Program.snapshot_index p1);
  check_int "packet count unchanged" 4 (Program.packet_count p1);
  (* Re-placement strips the old snapshot first. *)
  let p2 = Program.with_snapshot_at p1 3 in
  Alcotest.(check (option int)) "moved" (Some 3) (Program.snapshot_index p2);
  check_int "one snapshot op" 5 (Array.length p2.Program.ops);
  let stripped = Program.strip_snapshots p2 in
  Alcotest.(check (option int)) "stripped" None (Program.snapshot_index stripped);
  (* Clamping. *)
  Alcotest.(check (option int)) "clamped high" (Some 4)
    (Program.snapshot_index (Program.with_snapshot_at p 100))

(* Serialization *)

let test_serialize_roundtrip () =
  let ns = net () in
  let p = Program.with_snapshot_at (seed3 ns) 2 in
  match Program.parse ns.Net_spec.spec (Program.serialize p) with
  | Error m -> Alcotest.fail m
  | Ok p' ->
    check_int "op count" (Array.length p.Program.ops) (Array.length p'.Program.ops);
    Alcotest.(check bool) "ops equal" true (p.Program.ops = p'.Program.ops)

let test_parse_rejects_garbage () =
  let ns = net () in
  Alcotest.(check bool) "bad magic" true
    (Result.is_error (Program.parse ns.Net_spec.spec (Bytes.of_string "not a program")));
  let valid = Program.serialize (seed3 ns) in
  let truncated = Bytes.sub valid 0 (Bytes.length valid - 3) in
  Alcotest.(check bool) "truncated" true
    (Result.is_error (Program.parse ns.Net_spec.spec truncated))

(* Interpreter *)

let trace_handlers log =
  {
    Interp.exec =
      (fun nt inputs data ->
        log := (nt.Spec.nt_name, inputs, Array.length data) :: !log;
        (* Fresh handler value per output. *)
        List.mapi (fun i _ -> 100 + List.length !log + i) nt.Spec.outputs);
    snapshot = (fun () -> log := ("<snapshot>", [], 0) :: !log);
  }

let test_interp_order_and_values () =
  let ns = net () in
  let p = seed3 ns in
  let log = ref [] in
  ignore (Interp.run p (trace_handlers log));
  let names = List.rev_map (fun (n, _, _) -> n) !log in
  Alcotest.(check (list string)) "order" [ "connect"; "packet"; "packet"; "packet" ] names;
  (* All packets received the connect handler's value. *)
  let packet_inputs =
    List.filter_map (fun (n, i, _) -> if n = "packet" then Some i else None) !log
  in
  Alcotest.(check bool) "same connection value" true
    (List.for_all (fun i -> i = [ 101 ]) packet_inputs)

let test_interp_split_at_snapshot () =
  let ns = net () in
  let p = Program.with_snapshot_at (seed3 ns) 2 in
  let log = ref [] in
  let h = trace_handlers log in
  match Interp.run_until_snapshot p h with
  | None -> Alcotest.fail "expected snapshot"
  | Some (from, env) ->
    check_int "ops before suffix" 3 from;
    check_int "prefix executed" 3 (List.length !log);
    (* Run the suffix twice from the captured environment. *)
    ignore (Interp.run ~from ~env:(Interp.copy_env env) p h);
    ignore (Interp.run ~from ~env:(Interp.copy_env env) p h);
    let packets = List.length (List.filter (fun (n, _, _) -> n = "packet") !log) in
    check_int "1 prefix packet + 2x2 suffix packets" 5 packets

(* Havoc *)

let test_havoc_bounded () =
  let rng = Nyx_sim.Rng.create 7 in
  for _ = 1 to 200 do
    let out = Havoc.mutate rng ~max_len:64 (Bytes.of_string "hello world") in
    Alcotest.(check bool) "bounded" true (Bytes.length out <= 64)
  done

let test_havoc_changes_input () =
  let rng = Nyx_sim.Rng.create 7 in
  let input = Bytes.of_string "the quick brown fox jumps over the lazy dog" in
  let changed = ref 0 in
  for _ = 1 to 50 do
    if Havoc.mutate rng input <> input then incr changed
  done;
  Alcotest.(check bool) "usually changes" true (!changed > 40)

let test_havoc_uses_dict () =
  let rng = Nyx_sim.Rng.create 7 in
  let dict = [ Bytes.of_string "MAGICTOKEN" ] in
  let found = ref false in
  for _ = 1 to 300 do
    let out = Havoc.mutate rng ~dict ~max_len:256 (Bytes.of_string "padding-padding") in
    let s = Bytes.to_string out in
    if String.length s >= 10 then
      for i = 0 to String.length s - 10 do
        if String.sub s i 10 = "MAGICTOKEN" then found := true
      done
  done;
  Alcotest.(check bool) "dictionary token spliced eventually" true !found


(* Auto-dictionary *)

let test_auto_dict_extracts_keywords () =
  let ns = net () in
  let p =
    Net_spec.seed_of_packets ns
      [ Bytes.of_string "USER anonymous\r\n"; Bytes.of_string "PASS guest\r\nUSER again\r\n" ]
  in
  let dict = List.map Bytes.to_string (Auto_dict.extract [ p ]) in
  Alcotest.(check bool) "finds USER" true (List.mem "USER" dict);
  Alcotest.(check bool) "finds anonymous" true (List.mem "anonymous" dict);
  (* Most frequent first: USER appears twice. *)
  Alcotest.(check string) "frequency order" "USER" (List.hd dict);
  Alcotest.(check bool) "short tokens dropped" true (not (List.mem "\r\n" dict))

let test_auto_dict_cap_and_merge () =
  let ns = net () in
  let many =
    Net_spec.seed_of_packets ns
      [ Bytes.of_string (String.concat " " (List.init 100 (fun i -> Printf.sprintf "tok%03d" i))) ]
  in
  Alcotest.(check int) "capped" 10 (List.length (Auto_dict.extract ~max_tokens:10 [ many ]));
  let merged =
    Auto_dict.merge
      [ Bytes.of_string "A"; Bytes.of_string "B" ]
      [ Bytes.of_string "B"; Bytes.of_string "C" ]
  in
  Alcotest.(check (list string)) "deduplicated union" [ "A"; "B"; "C" ]
    (List.map Bytes.to_string merged)

(* Mutator *)


let test_mutator_caps_length () =
  let ns = net () in
  let rng = Nyx_sim.Rng.create 3 in
  let p = ref (seed3 ns) in
  for _ = 1 to 200 do
    p := Mutator.mutate rng ~max_ops:12 ~corpus:[| seed3 ns |] !p
  done;
  Alcotest.(check bool) "bounded across generations" true
    (Array.length !p.Program.ops <= 12)

(* domain-safe: qcheck property closure, run on a single domain *)
let prop_mutator_output_valid =
  QCheck.Test.make ~name:"mutated programs always validate" ~count:300 QCheck.small_int
    (fun seed ->
      let ns = net () in
      let rng = Nyx_sim.Rng.create seed in
      let p = ref (seed3 ns) in
      for _ = 1 to 10 do
        p := Mutator.mutate rng ~corpus:[| seed3 ns |] !p
      done;
      Result.is_ok (Program.validate !p))

let prop_mutator_respects_frozen_prefix =
  QCheck.Test.make ~name:"frozen prefix is preserved verbatim" ~count:200 QCheck.small_int
    (fun seed ->
      let ns = net () in
      let rng = Nyx_sim.Rng.create seed in
      let p = Program.with_snapshot_at (seed3 ns) 2 in
      let frozen = 3 (* connect + packet + snapshot *) in
      let m = Mutator.mutate rng ~frozen ~corpus:[| p |] p in
      Array.length m.Program.ops >= frozen
      && Array.sub m.Program.ops 0 frozen = Array.sub p.Program.ops 0 frozen)

let prop_repair_always_validates =
  QCheck.Test.make ~name:"repair fixes arbitrary op soup" ~count:300
    QCheck.(pair small_int (list_of_size Gen.(int_range 0 12) (pair (int_bound 3) (int_bound 5))))
    (fun (seed, raw_ops) ->
      let ns = net () in
      let rng = Nyx_sim.Rng.create seed in
      let ops =
        List.map
          (fun (node, arg) ->
            { Program.node; args = [| arg |]; data = [| Bytes.of_string "d" |] })
          raw_ops
      in
      let p = { Program.spec = ns.Net_spec.spec; ops = Array.of_list ops } in
      Result.is_ok (Program.validate (Program.repair ~rng p)))

(* Stronger than validate: the static verifier re-derives every structural
   fact with its own lattice walk, so repair output must also carry zero
   error-severity findings (warnings like dead-value are fine — repair
   does not promise liveness). *)
let prop_repair_verifier_clean =
  QCheck.Test.make ~name:"repair output has zero verifier errors" ~count:300
    QCheck.(pair small_int (list_of_size Gen.(int_range 0 12) (pair (int_bound 3) (int_bound 5))))
    (fun (seed, raw_ops) ->
      let ns = net () in
      let rng = Nyx_sim.Rng.create seed in
      let ops =
        List.map
          (fun (node, arg) ->
            { Program.node; args = [| arg |]; data = [| Bytes.of_string "d" |] })
          raw_ops
      in
      let p = { Program.spec = ns.Net_spec.spec; ops = Array.of_list ops } in
      let repaired = Program.repair ~rng p in
      Result.is_ok (Program.validate repaired)
      && Nyx_analysis.Verifier.errors repaired = [])

let test_mutator_changes_programs () =
  let ns = net () in
  let rng = Nyx_sim.Rng.create 11 in
  let p = seed3 ns in
  let distinct = ref 0 in
  for _ = 1 to 50 do
    if (Mutator.mutate rng ~corpus:[| p |] p).Program.ops <> p.Program.ops then incr distinct
  done;
  Alcotest.(check bool) "mostly different" true (!distinct > 35)

let () =
  Alcotest.run "nyx_spec"
    [
      ( "spec",
        [
          Alcotest.test_case "declaration" `Quick test_spec_declaration;
        ] );
      ( "builder",
        [
          Alcotest.test_case "happy path" `Quick test_builder_happy_path;
          Alcotest.test_case "type error" `Quick test_builder_rejects_type_error;
          Alcotest.test_case "affine" `Quick test_builder_rejects_use_after_consume;
        ] );
      ( "validate",
        [
          Alcotest.test_case "bad ref" `Quick test_validate_catches_bad_ref;
          Alcotest.test_case "double snapshot" `Quick test_validate_catches_double_snapshot;
        ] );
      ( "snapshot placement",
        [ Alcotest.test_case "placement" `Quick test_snapshot_placement ] );
      ( "wire format",
        [
          Alcotest.test_case "roundtrip" `Quick test_serialize_roundtrip;
          Alcotest.test_case "garbage" `Quick test_parse_rejects_garbage;
        ] );
      ( "interp",
        [
          Alcotest.test_case "order" `Quick test_interp_order_and_values;
          Alcotest.test_case "split at snapshot" `Quick test_interp_split_at_snapshot;
        ] );
      ( "havoc",
        [
          Alcotest.test_case "bounded" `Quick test_havoc_bounded;
          Alcotest.test_case "changes input" `Quick test_havoc_changes_input;
          Alcotest.test_case "dictionary" `Quick test_havoc_uses_dict;
        ] );
      ( "auto_dict",
        [
          Alcotest.test_case "extracts keywords" `Quick test_auto_dict_extracts_keywords;
          Alcotest.test_case "cap and merge" `Quick test_auto_dict_cap_and_merge;
        ] );
      ( "mutator",
        [
          Alcotest.test_case "changes programs" `Quick test_mutator_changes_programs;
          Alcotest.test_case "length cap" `Quick test_mutator_caps_length;
          QCheck_alcotest.to_alcotest prop_mutator_output_valid;
          QCheck_alcotest.to_alcotest prop_mutator_respects_frozen_prefix;
          QCheck_alcotest.to_alcotest prop_repair_always_validates;
          QCheck_alcotest.to_alcotest prop_repair_verifier_clean;
        ] );
    ]
