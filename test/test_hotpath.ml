(* Hot-loop equivalence suite (journaled coverage + O(1) corpus).

   Two layers of proof that the O(touched) hot path changed nothing but
   mechanical cost:
   - property tests: the journaled implementations agree with the
     [_slow] full-scan references (and with an independent model of the
     AFL hashing scheme) under randomized hit sequences, and the indexed
     corpus makes bit-identical scheduling picks to a reimplementation
     of the pre-change list-based corpus;
   - campaign identity: fixed-seed campaigns reproduce, field for field,
     the results recorded from the pre-change implementation (captured
     at commit 25b4f18, before the journal/array rewrite). *)

open Nyx_core
module Coverage = Nyx_targets.Coverage

let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* An independent model of the coverage map: plain int array, same
   AFL hashing (site ^ prev, prev = site >> 1), saturating counts.     *)

module Model = struct
  type t = { map : int array; mutable prev : int }

  let create () = { map = Array.make Coverage.map_size 0; prev = 0 }

  let hit m site =
    let site = site land (Coverage.map_size - 1) in
    let idx = (site lxor m.prev) land (Coverage.map_size - 1) in
    if m.map.(idx) < 255 then m.map.(idx) <- m.map.(idx) + 1;
    m.prev <- site lsr 1

  let signature m =
    let cells = ref [] in
    Array.iteri (fun i c -> if c <> 0 then cells := (i, c) :: !cells) m.map;
    Array.of_list (List.sort compare !cells)

  let edge_count m = Array.length (signature m)
end

let sites_gen = QCheck.(list_of_size Gen.(int_range 0 300) (int_bound 1_000_000))

let prop_journal_matches_model =
  QCheck.Test.make ~name:"journaled map == model under random hits" ~count:100
    sites_gen (fun sites ->
      let cov = Coverage.create () in
      let m = Model.create () in
      List.iter
        (fun s ->
          Coverage.hit cov s;
          Model.hit m s)
        sites;
      Coverage.signature cov = Model.signature m
      && Coverage.edge_count cov = Model.edge_count m
      && Coverage.edge_count cov = Coverage.edge_count_slow cov)

let prop_reset_equiv_slow =
  QCheck.Test.make ~name:"journaled reset == full-fill reset" ~count:100
    (QCheck.pair sites_gen sites_gen) (fun (a, b) ->
      let c1 = Coverage.create () and c2 = Coverage.create () in
      List.iter (Coverage.hit c1) a;
      List.iter (Coverage.hit c2) a;
      Coverage.reset c1;
      Coverage.reset_slow c2;
      (* Both must land in the pristine state: replaying a second
         sequence gives identical maps. *)
      List.iter (Coverage.hit c1) b;
      List.iter (Coverage.hit c2) b;
      Coverage.signature c1 = Coverage.signature c2
      && Coverage.edge_count c1 = Coverage.edge_count_slow c1)

let prop_merge_equiv_slow =
  QCheck.Test.make ~name:"journaled merge == iter_hits merge" ~count:60
    QCheck.(list_of_size Gen.(int_range 1 10) sites_gen)
    (fun execs ->
      let fast = Coverage.Cumulative.create () in
      let slow = Coverage.Cumulative.create () in
      let cov = Coverage.create () in
      List.for_all
        (fun sites ->
          Coverage.reset cov;
          List.iter (Coverage.hit cov) sites;
          let nf = Coverage.Cumulative.merge fast cov in
          let ns = Coverage.Cumulative.merge_slow slow cov in
          nf = ns
          && Coverage.Cumulative.edge_count fast
             = Coverage.Cumulative.edge_count_slow fast
          && Coverage.Cumulative.edge_count fast
             = Coverage.Cumulative.edge_count_slow slow)
        execs)

let prop_save_restore =
  QCheck.Test.make ~name:"save/restore round-trips through the journal" ~count:100
    (QCheck.triple sites_gen sites_gen sites_gen) (fun (a, b, c) ->
      let cov = Coverage.create () in
      let m = Model.create () in
      List.iter
        (fun s ->
          Coverage.hit cov s;
          Model.hit m s)
        a;
      let cp = Coverage.save cov in
      let sig_a = Coverage.signature cov in
      Coverage.matches cov cp
      && begin
           List.iter (Coverage.hit cov) b;
           Coverage.restore cov cp;
           Coverage.signature cov = sig_a
           && Coverage.matches cov cp
           && begin
                (* The previous-location register must be restored too:
                   continuing from the checkpoint behaves exactly like a
                   run that never diverged. *)
                List.iter
                  (fun s ->
                    Coverage.hit cov s;
                    Model.hit m s)
                  c;
                Coverage.signature cov = Model.signature m
              end
         end)

(* ------------------------------------------------------------------ *)
(* Corpus: the pre-change list-based implementation, reproduced
   verbatim, must make bit-identical picks to the indexed array.       *)

module Ref_corpus = struct
  type entry = { id : int; state_code : int }
  type t = { mutable rev_entries : entry list; mutable count : int }

  let create () = { rev_entries = []; count = 0 }

  let add t ~state_code =
    let entry = { id = t.count; state_code } in
    t.rev_entries <- entry :: t.rev_entries;
    t.count <- t.count + 1;
    entry

  let nth_newest t i = List.nth t.rev_entries i

  let schedule t rng =
    if Nyx_sim.Rng.bool rng then nth_newest t (Nyx_sim.Rng.int rng t.count)
    else nth_newest t (Nyx_sim.Rng.int rng (max 1 (t.count / 4)))

  let schedule_state_aware t rng =
    let freq = Hashtbl.create 16 in
    List.iter
      (fun e ->
        Hashtbl.replace freq e.state_code
          (1 + Option.value ~default:0 (Hashtbl.find_opt freq e.state_code)))
      t.rev_entries;
    let weighted =
      List.map
        (fun e ->
          ( e,
            1.0
            /. float_of_int (Option.value ~default:1 (Hashtbl.find_opt freq e.state_code))
          ))
        t.rev_entries
    in
    Nyx_sim.Rng.weighted rng weighted
end

type corpus_op = Add of int | Schedule | ScheduleStateAware

let corpus_script_gen =
  QCheck.(
    list_of_size
      Gen.(int_range 1 60)
      (oneof
         [
           map (fun s -> Add (s mod 5)) (int_bound 1000);
           always Schedule;
           always ScheduleStateAware;
         ]))

let mk_program () =
  Nyx_spec.Net_spec.seed_of_packets (Campaign.net_spec ()) [ Bytes.of_string "x" ]

let prop_corpus_picks_identical =
  QCheck.Test.make ~name:"indexed corpus picks == list-based reference" ~count:100
    (QCheck.pair QCheck.small_int corpus_script_gen) (fun (seed, script) ->
      let program = mk_program () in
      let c = Corpus.create () in
      let r = Ref_corpus.create () in
      let rng_c = Nyx_sim.Rng.create seed in
      let rng_r = Nyx_sim.Rng.create seed in
      (* Seed both so schedules never hit the empty corpus. *)
      ignore (Corpus.add c ~program ~exec_ns:0 ~discovered_ns:0 ~state_code:0);
      ignore (Ref_corpus.add r ~state_code:0);
      List.for_all
        (fun op ->
          match op with
          | Add state_code ->
            let e = Corpus.add c ~program ~exec_ns:0 ~discovered_ns:0 ~state_code in
            let e' = Ref_corpus.add r ~state_code in
            e.Corpus.id = e'.Ref_corpus.id
          | Schedule ->
            (Corpus.schedule c rng_c).Corpus.id
            = (Ref_corpus.schedule r rng_r).Ref_corpus.id
          | ScheduleStateAware ->
            (Corpus.schedule_state_aware c rng_c).Corpus.id
            = (Ref_corpus.schedule_state_aware r rng_r).Ref_corpus.id)
        script)

let test_corpus_programs_cached () =
  let c = Corpus.create () in
  let p = mk_program () in
  for i = 0 to 4 do
    ignore (Corpus.add c ~program:p ~exec_ns:0 ~discovered_ns:i ~state_code:i)
  done;
  let a1 = Corpus.programs c in
  check_int "snapshot length" 5 (Array.length a1);
  Alcotest.(check bool) "cached between growths" true (Corpus.programs c == a1);
  (* Must equal the (newest-first) entries view. *)
  Alcotest.(check bool) "matches entries order" true
    (Array.to_list a1 = List.map (fun e -> e.Corpus.program) (Corpus.entries c));
  ignore (Corpus.add c ~program:p ~exec_ns:0 ~discovered_ns:9 ~state_code:9);
  let a2 = Corpus.programs c in
  Alcotest.(check bool) "rebuilt after growth" true (a2 != a1);
  check_int "grown snapshot" 6 (Array.length a2)

(* ------------------------------------------------------------------ *)
(* Campaign identity: fixed-seed results recorded from the pre-change
   implementation. Every field below (budget 8 virtual seconds, seed 7)
   was captured by running the list-based/full-scan code.              *)

type golden = {
  g_final_edges : int;
  g_execs : int;
  g_virtual_ns : int;
  g_corpus_size : int;
  g_crashes : (string * int * int) list;  (* kind, found_ns, found_exec *)
  g_timeline_n : int;
}

let check_golden name g (r : Report.campaign_result) =
  check_int (name ^ ": final_edges") g.g_final_edges r.Report.final_edges;
  check_int (name ^ ": execs") g.g_execs r.Report.execs;
  check_int (name ^ ": virtual_ns") g.g_virtual_ns r.Report.virtual_ns;
  check_int (name ^ ": corpus_size") g.g_corpus_size r.Report.corpus_size;
  Alcotest.(check (list (triple string int int)))
    (name ^ ": crashes") g.g_crashes
    (List.map
       (fun c -> (c.Report.kind, c.Report.found_ns, c.Report.found_exec))
       r.Report.crashes);
  check_int
    (name ^ ": timeline samples")
    g.g_timeline_n
    (List.length (Nyx_sim.Stats.Timeline.samples r.Report.timeline))

let identity_cfg policy trim =
  {
    Campaign.default_config with
    Campaign.budget_ns = 8_000_000_000;
    max_execs = 25_000;
    policy;
    trim;
    seed = 7;
  }

let echo_entry () = Option.get (Nyx_targets.Registry.find "echo")

let test_identity_balanced_echo () =
  check_golden "nyx-balanced/echo"
    {
      g_final_edges = 27;
      g_execs = 23151;
      g_virtual_ns = 8_000_443_636;
      g_corpus_size = 68;
      g_crashes = [ ("assertion", 20_932_397, 149) ];
      g_timeline_n = 88;
    }
    (Campaign.run (identity_cfg Policy.Balanced false) (echo_entry ()))

let test_identity_aggressive_trim_echo () =
  (* Exercises trim_program's journal-view comparison on the hot path. *)
  check_golden "nyx-aggressive-trim/echo"
    {
      g_final_edges = 27;
      g_execs = 25_000;
      g_virtual_ns = 7_977_534_076;
      g_corpus_size = 65;
      g_crashes = [ ("assertion", 48_414_257, 403) ];
      g_timeline_n = 91;
    }
    (Campaign.run (identity_cfg Policy.Aggressive true) (echo_entry ()))

let test_identity_aflnet_state_aware () =
  (* Exercises schedule_state_aware's float-sum-order-preserving walk. *)
  let entry = Option.get (Nyx_targets.Registry.find "lightftp") in
  match
    Nyx_baselines.Fuzzers.run Nyx_baselines.Fuzzers.aflnet ~budget_ns:8_000_000_000
      ~max_execs:4_000 ~seed:7 entry
  with
  | None -> Alcotest.fail "aflnet should run on lightftp"
  | Some r ->
    check_golden "aflnet/lightftp"
      {
        g_final_edges = 33;
        g_execs = 72;
        g_virtual_ns = 8_011_418_870;
        g_corpus_size = 21;
        g_crashes = [];
        g_timeline_n = 34;
      }
      r

let () =
  Alcotest.run "nyx_hotpath"
    [
      ( "coverage journal",
        [
          QCheck_alcotest.to_alcotest prop_journal_matches_model;
          QCheck_alcotest.to_alcotest prop_reset_equiv_slow;
          QCheck_alcotest.to_alcotest prop_merge_equiv_slow;
          QCheck_alcotest.to_alcotest prop_save_restore;
        ] );
      ( "corpus",
        [
          QCheck_alcotest.to_alcotest prop_corpus_picks_identical;
          Alcotest.test_case "programs snapshot cached" `Quick
            test_corpus_programs_cached;
        ] );
      ( "campaign identity",
        [
          Alcotest.test_case "nyx balanced (echo)" `Quick test_identity_balanced_echo;
          Alcotest.test_case "nyx aggressive + trim (echo)" `Quick
            test_identity_aggressive_trim_echo;
          Alcotest.test_case "aflnet state-aware (lightftp)" `Quick
            test_identity_aflnet_state_aware;
        ] );
    ]
