open Nyx_mario

let check_int = Alcotest.(check int)

let mk_ctx () =
  let clock = Nyx_sim.Clock.create () in
  let vm = Nyx_vm.Vm.create clock in
  let net = Nyx_netemu.Net.create clock in
  (Nyx_targets.Ctx.of_vm ~net vm, vm, clock)

let boot_level name =
  let level = Option.get (Level.find name) in
  let ctx, vm, clock = mk_ctx () in
  (Game.boot ctx level, level, vm, clock)

let hold ?(frames = 1) game byte =
  let b = Game.buttons_of_byte byte in
  for _ = 1 to frames do
    Game.step game b
  done

let right = 0b0001
let right_run = 0b1001
let right_run_jump = 0b1101
let jump = 0b0100

(* Levels *)

let test_levels_exist () =
  check_int "32 levels" 32 (List.length (Level.all ()));
  List.iter
    (fun world ->
      List.iter
        (fun stage ->
          let name = Printf.sprintf "%d-%d" world stage in
          match Level.find name with
          | None -> Alcotest.fail ("missing level " ^ name)
          | Some l ->
            Alcotest.(check bool) (name ^ " has flag") true (l.Level.flag_col > 0);
            Alcotest.(check bool) (name ^ " wide enough") true (l.Level.width > 40))
        [ 1; 2; 3; 4 ])
    [ 1; 2; 3; 4; 5; 6; 7; 8 ]

let test_level_generation_deterministic () =
  let a = Level.generate ~world:3 ~stage:2 and b = Level.generate ~world:3 ~stage:2 in
  Alcotest.(check bool) "same grid" true (a.Level.grid = b.Level.grid)

let test_level_difficulty_grows () =
  let easy = Level.generate ~world:1 ~stage:2 and hard = Level.generate ~world:8 ~stage:4 in
  Alcotest.(check bool) "later worlds are longer" true
    (hard.Level.width > easy.Level.width)

let test_level_parse_rejects_bad_input () =
  Alcotest.check_raises "ragged" (Invalid_argument "Level.parse: ragged rows") (fun () ->
      ignore (Level.parse ~name:"x" [ "##"; "#" ]));
  Alcotest.check_raises "no flag" (Invalid_argument "Level.parse: no flag") (fun () ->
      ignore (Level.parse ~name:"x" [ "  "; "##" ]))

let test_level_render () =
  let l = Option.get (Level.find "1-1") in
  let art = Level.render l in
  Alcotest.(check bool) "contains flag" true (String.contains art 'F');
  Alcotest.(check bool) "contains ground" true (String.contains art '#');
  let with_path = Level.render ~path:[ (40, 180) ] l in
  Alcotest.(check bool) "path marker" true (String.contains with_path 'o')

(* Physics *)

let test_gravity_and_ground () =
  let game, _, _, _ = boot_level "1-1" in
  let y0 = Game.y_px game in
  hold ~frames:60 game 0;
  (* Idle: lands on the ground and stays. *)
  let y1 = Game.y_px game in
  hold ~frames:30 game 0;
  Alcotest.(check bool) "fell to ground" true (y1 >= y0);
  check_int "stable on ground" y1 (Game.y_px game)

let test_running_moves_right () =
  let game, _, _, _ = boot_level "1-1" in
  hold ~frames:30 game 0 (* settle *);
  let x0 = Game.x_px game in
  hold ~frames:30 game right_run;
  Alcotest.(check bool) "moved right" true (Game.x_px game > x0 + 30)

let test_run_is_faster_than_walk () =
  let dist byte =
    let game, _, _, _ = boot_level "1-1" in
    hold ~frames:30 game 0;
    let x0 = Game.x_px game in
    hold ~frames:40 game byte;
    Game.x_px game - x0
  in
  Alcotest.(check bool) "running faster" true (dist right_run > dist right)

let test_jump_rises_and_lands () =
  let game, _, _, _ = boot_level "1-1" in
  hold ~frames:30 game 0;
  let ground_y = Game.y_px game in
  hold game jump;
  hold ~frames:10 game 0;
  Alcotest.(check bool) "rose" true (Game.y_px game < ground_y);
  hold ~frames:60 game 0;
  check_int "landed back" ground_y (Game.y_px game)

let test_no_double_jump () =
  let game, _, _, _ = boot_level "1-1" in
  hold ~frames:30 game 0;
  let ground_y = Game.y_px game in
  hold game jump;
  hold ~frames:8 game 0;
  let apex_ish = Game.y_px game in
  (* Release and press jump again mid-air (away from any wall): no boost. *)
  hold game 0;
  hold game jump;
  hold ~frames:4 game jump;
  Alcotest.(check bool) "no mid-air boost" true (Game.y_px game >= apex_ish - 60);
  hold ~frames:120 game 0;
  check_int "eventually grounded" ground_y (Game.y_px game)

(* domain-safe: test-only lazy fixture, forced on a single domain *)
let gap_level =
  lazy
    (Level.parse ~name:"gap-test"
       [
         "                 F   ";
         "                 F   ";
         "                 F   ";
         "########   ##########";
         "########   ##########";
       ])

let boot_custom level =
  let ctx, vm, clock = mk_ctx () in
  (Game.boot ctx level, vm, clock)

let test_pit_death () =
  let game, _, _ = boot_custom (Lazy.force gap_level) in
  (* Run right without jumping: the gap kills. *)
  (try hold ~frames:2000 game right_run with Game.Level_solved _ -> ());
  Alcotest.(check bool) "died in a pit" true (not (Game.alive game));
  let frozen_x = Game.x_px game in
  hold ~frames:10 game right_run;
  check_int "dead player does not move" frozen_x (Game.x_px game)

let test_jump_clears_gap () =
  (* Some run-and-jump cadence clears the gap and reaches the flag. *)
  let try_cadence cadence =
    let game, _, _ = boot_custom (Lazy.force gap_level) in
    match
      for _ = 1 to 500 do
        hold ~frames:cadence game right_run;
        hold game right_run_jump
      done
    with
    | () -> false
    | exception Game.Level_solved _ -> Game.alive game
  in
  Alcotest.(check bool) "some cadence solves it" true
    (List.exists try_cadence [ 3; 4; 5; 6; 7; 8; 10; 12 ])

let test_determinism () =
  let run () =
    let game, _, _, _ = boot_level "1-3" in
    (try
       for i = 0 to 400 do
         hold game (if i mod 7 = 0 then right_run_jump else right_run)
       done
     with Game.Level_solved _ -> ());
    (Game.x_px game, Game.y_px game, Game.frame game, Game.alive game)
  in
  Alcotest.(check bool) "identical replays" true (run () = run ())

let test_wall_jump_glitch_climbs () =
  (* 2-1's cliff: only wall jumps get the player up. *)
  let game, level, _, _ = boot_level "2-1" in
  ignore level;
  (* Run to the cliff face, then mash jump while pushing right. *)
  (try
     hold ~frames:600 game right_run;
     let x_blocked = Game.x_px game in
     let y_blocked = Game.y_px game in
     for _ = 1 to 120 do
       hold game right_run_jump;
       hold game right_run
     done;
     Alcotest.(check bool)
       (Printf.sprintf "climbed (was %d,%d now %d,%d)" x_blocked y_blocked (Game.x_px game)
          (Game.y_px game))
       true
       (Game.y_px game < y_blocked - 32 || Game.x_px game > x_blocked + 32)
   with Game.Level_solved _ -> ())

let test_solved_exception_carries_frames () =
  let game, _, _, _ = boot_level "1-1" in
  match
    for _ = 1 to 4000 do
      hold game right_run;
      hold game right_run_jump
    done
  with
  | () -> Alcotest.fail "alternating run+jump should solve 1-1"
  | exception Game.Level_solved { frames } ->
    Alcotest.(check bool) "positive frame count" true (frames > 0);
    Alcotest.(check bool) "won flag set" true (Game.won game)

let test_state_in_guest_memory_snapshots () =
  (* The whole point: a snapshot taken mid-level restores the position. *)
  let level = Option.get (Level.find "1-1") in
  let clock = Nyx_sim.Clock.create () in
  let vm = Nyx_vm.Vm.create clock in
  let net = Nyx_netemu.Net.create clock in
  let ctx = Nyx_targets.Ctx.of_vm ~net vm in
  let game = Game.boot ctx level in
  let aux = Nyx_snapshot.Aux_state.create () in
  let engine = Nyx_snapshot.Engine.create vm aux in
  hold ~frames:120 game right_run;
  let mid_x = Game.x_px game and mid_frame = Game.frame game in
  Nyx_snapshot.Engine.take_incremental engine;
  hold ~frames:60 game right_run;
  Alcotest.(check bool) "moved past snapshot" true (Game.x_px game > mid_x);
  Nyx_snapshot.Engine.restore engine;
  check_int "x restored" mid_x (Game.x_px game);
  check_int "frame restored" mid_frame (Game.frame game)

let test_input_packets_drive_game () =
  let game, _, _, _ = boot_level "1-1" in
  hold ~frames:30 game 0;
  let x0 = Game.x_px game in
  Game.run_input game (Bytes.make 10 (Char.chr right_run));
  check_int "frames consumed" (30 + (10 * Game.frames_per_byte)) (Game.frame game);
  Alcotest.(check bool) "moved" true (Game.x_px game > x0)

let test_frame_costs_charged () =
  let game, _, _, clock = boot_level "1-1" in
  let t0 = Nyx_sim.Clock.now_ns clock in
  hold ~frames:10 game right;
  Alcotest.(check bool) "10 frames cost charged" true
    (Nyx_sim.Clock.now_ns clock - t0 >= 10 * Game.frame_cost_ns)

let prop_physics_deterministic =
  QCheck.Test.make ~name:"random input replays identically" ~count:50
    QCheck.(list_of_size Gen.(int_range 1 60) (int_bound 15))
    (fun inputs ->
      let run () =
        let game, _, _, _ = boot_level "1-4" in
        (try List.iter (fun b -> hold ~frames:4 game b) inputs
         with Game.Level_solved _ -> ());
        (Game.x_px game, Game.y_px game, Game.alive game, Game.frame game)
      in
      run () = run ())

let prop_player_stays_in_bounds =
  QCheck.Test.make ~name:"player never escapes level bounds horizontally" ~count:50
    QCheck.(list_of_size Gen.(int_range 1 80) (int_bound 15))
    (fun inputs ->
      let game, level, _, _ = boot_level "1-3" in
      (try List.iter (fun b -> hold ~frames:4 game b) inputs
       with Game.Level_solved _ -> ());
      Game.x_px game >= 0 && Game.x_px game <= (level.Level.width + 2) * 16)


let test_hard_levels_solvable () =
  (* Expensive: samples harder worlds to guard the generator against
     producing unsolvable layouts. Enable with NYX_TEST_SLOW=1. *)
  if Sys.getenv_opt "NYX_TEST_SLOW" = None then Alcotest.skip ()
  else begin
    (* Deep levels are stochastic at this budget: require a majority. *)
    let solved =
      List.filter
        (fun name ->
          let level = Option.get (Level.find name) in
          let entry =
            {
              Nyx_targets.Registry.target = Nyx_mario.Mario_target.target level;
              seeds = Nyx_mario.Mario_target.seeds level;
            }
          in
          let cfg =
            {
              Nyx_core.Campaign.default_config with
              Nyx_core.Campaign.budget_ns = 3_600_000_000_000;
              max_execs = 120_000;
              policy = Nyx_core.Policy.Aggressive;
              stop_on_solve = true;
              trim = true;
              seed = 2;
            }
          in
          (Nyx_core.Campaign.run cfg entry).Nyx_core.Report.solved_ns <> None)
        [ "3-2"; "5-4"; "8-1" ]
    in
    Alcotest.(check bool)
      (Printf.sprintf "majority of hard levels solvable (%d/3)" (List.length solved))
      true
      (List.length solved >= 2)
  end

let () =
  Alcotest.run "nyx_mario"
    [
      ( "levels",
        [
          Alcotest.test_case "all exist" `Quick test_levels_exist;
          Alcotest.test_case "deterministic" `Quick test_level_generation_deterministic;
          Alcotest.test_case "difficulty" `Quick test_level_difficulty_grows;
          Alcotest.test_case "parse errors" `Quick test_level_parse_rejects_bad_input;
          Alcotest.test_case "render" `Quick test_level_render;
        ] );
      ( "physics",
        [
          Alcotest.test_case "gravity" `Quick test_gravity_and_ground;
          Alcotest.test_case "running" `Quick test_running_moves_right;
          Alcotest.test_case "run vs walk" `Quick test_run_is_faster_than_walk;
          Alcotest.test_case "jump" `Quick test_jump_rises_and_lands;
          Alcotest.test_case "no double jump" `Quick test_no_double_jump;
          Alcotest.test_case "pit death" `Quick test_pit_death;
          Alcotest.test_case "jump clears gap" `Quick test_jump_clears_gap;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "wall jump glitch" `Quick test_wall_jump_glitch_climbs;
          Alcotest.test_case "solve exception" `Quick test_solved_exception_carries_frames;
          QCheck_alcotest.to_alcotest prop_physics_deterministic;
          QCheck_alcotest.to_alcotest prop_player_stays_in_bounds;
        ] );
      ( "integration",
        [
          Alcotest.test_case "hard levels solvable" `Slow test_hard_levels_solvable;
          Alcotest.test_case "snapshots" `Quick test_state_in_guest_memory_snapshots;
          Alcotest.test_case "input packets" `Quick test_input_packets_drive_game;
          Alcotest.test_case "frame costs" `Quick test_frame_costs_charged;
        ] );
    ]
