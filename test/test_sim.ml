open Nyx_sim

let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

(* Clock *)

let test_clock_advance () =
  let c = Clock.create () in
  check_int "starts at zero" 0 (Clock.now_ns c);
  Clock.advance c 1_500;
  Clock.advance c 500;
  check_int "accumulates" 2_000 (Clock.now_ns c);
  check_float "seconds" 2e-6 (Clock.now_s c)

let test_clock_negative () =
  let c = Clock.create () in
  Alcotest.check_raises "negative rejected"
    (Invalid_argument "Clock.advance: negative duration") (fun () ->
      Clock.advance c (-1))

let test_clock_reset () =
  let c = Clock.create () in
  Clock.advance c 42;
  Clock.reset c;
  check_int "reset to zero" 0 (Clock.now_ns c)

let test_clock_pp () =
  let s = Format.asprintf "%a" Clock.pp_duration 3_723_004_000_000 in
  Alcotest.(check string) "formats h:m:s.ms" "01:02:03.004" s

(* Rng *)

let test_rng_deterministic () =
  let a = Rng.create 7 and b = Rng.create 7 in
  for _ = 1 to 100 do
    check_int "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_split_independent () =
  let a = Rng.create 7 in
  let child = Rng.split a in
  (* The child must not replay the parent's stream. *)
  let xs = List.init 20 (fun _ -> Rng.int a 1_000_000) in
  let ys = List.init 20 (fun _ -> Rng.int child 1_000_000) in
  Alcotest.(check bool) "streams differ" false (xs = ys)

let test_rng_bounds () =
  let r = Rng.create 3 in
  for _ = 1 to 1000 do
    let v = Rng.int r 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done;
  Alcotest.check_raises "zero bound"
    (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Rng.int r 0))

let test_rng_int_in () =
  let r = Rng.create 9 in
  for _ = 1 to 500 do
    let v = Rng.int_in r 5 9 in
    Alcotest.(check bool) "inclusive range" true (v >= 5 && v <= 9)
  done

let test_rng_weighted () =
  let r = Rng.create 11 in
  let counts = Hashtbl.create 3 in
  for _ = 1 to 3000 do
    let x = Rng.weighted r [ ("a", 1.0); ("b", 8.0); ("c", 1.0) ] in
    Hashtbl.replace counts x (1 + Option.value ~default:0 (Hashtbl.find_opt counts x))
  done;
  let get k = Option.value ~default:0 (Hashtbl.find_opt counts k) in
  Alcotest.(check bool) "b dominates" true (get "b" > get "a" && get "b" > get "c");
  Alcotest.(check bool) "all present" true (get "a" > 0 && get "c" > 0)

let test_rng_shuffle_permutation () =
  let r = Rng.create 13 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

(* Stats *)

let test_stats_basics () =
  check_float "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ]);
  check_float "median odd" 2.0 (Stats.median [ 3.0; 1.0; 2.0 ]);
  check_float "median even" 2.5 (Stats.median [ 4.0; 1.0; 2.0; 3.0 ]);
  check_float "empty mean" 0.0 (Stats.mean []);
  check_float "stddev" 1.0 (Stats.stddev [ 1.0; 2.0; 3.0 ])

let test_mann_whitney_distinct () =
  let xs = [ 1.0; 2.0; 3.0; 4.0; 5.0; 1.5; 2.5; 3.5; 4.5; 5.5 ] in
  let ys = List.map (fun x -> x +. 100.0) xs in
  let p = Stats.mann_whitney_u xs ys in
  Alcotest.(check bool) "clearly significant" true (p < 0.05)

let test_mann_whitney_identical () =
  let xs = [ 1.0; 2.0; 3.0; 4.0; 5.0 ] in
  let p = Stats.mann_whitney_u xs xs in
  Alcotest.(check bool) "not significant" true (p > 0.5)

let test_timeline () =
  let tl = Stats.Timeline.create () in
  Stats.Timeline.record tl 10 1.0;
  Stats.Timeline.record tl 20 5.0;
  Stats.Timeline.record tl 30 7.0;
  check_float "before first" 0.0 (Stats.Timeline.value_at tl 5);
  check_float "at sample" 1.0 (Stats.Timeline.value_at tl 10);
  check_float "between" 5.0 (Stats.Timeline.value_at tl 25);
  check_float "final" 7.0 (Stats.Timeline.final tl);
  Alcotest.(check (option int)) "first reaching" (Some 20)
    (Stats.Timeline.first_time_reaching tl 5.0);
  Alcotest.(check (option int)) "never reaching" None
    (Stats.Timeline.first_time_reaching tl 100.0)

let test_timeline_monotonic_time () =
  let tl = Stats.Timeline.create () in
  Stats.Timeline.record tl 10 1.0;
  Alcotest.check_raises "rejects backwards time"
    (Invalid_argument "Timeline.record: time went backwards") (fun () ->
      Stats.Timeline.record tl 5 2.0)

let test_timeline_median_across () =
  let mk samples =
    let tl = Stats.Timeline.create () in
    List.iter (fun (t, v) -> Stats.Timeline.record tl t v) samples;
    tl
  in
  let tls = [ mk [ (0, 1.0); (10, 3.0) ]; mk [ (0, 2.0) ]; mk [ (0, 9.0); (10, 9.0) ] ] in
  let med = Stats.Timeline.median_across tls [ 0; 10 ] in
  Alcotest.(check (list (pair int (float 1e-9)))) "pointwise medians"
    [ (0, 2.0); (10, 3.0) ]
    med

let test_counters () =
  let c = Stats.Counters.create () in
  Stats.Counters.incr c "execs";
  Stats.Counters.add c "execs" 4;
  Stats.Counters.incr c "crashes";
  check_int "accumulated" 5 (Stats.Counters.get c "execs");
  check_int "missing is zero" 0 (Stats.Counters.get c "nope");
  Alcotest.(check (list (pair string int))) "sorted list"
    [ ("crashes", 1); ("execs", 5) ]
    (Stats.Counters.to_list c)

(* Property tests *)

let prop_rng_int_in_range =
  QCheck.Test.make ~name:"rng ints stay in bounds" ~count:200
    QCheck.(pair int small_int)
    (fun (seed, bound) ->
      QCheck.assume (bound > 0);
      let r = Rng.create seed in
      let v = Rng.int r bound in
      v >= 0 && v < bound)

let prop_median_between_min_max =
  QCheck.Test.make ~name:"median lies within range" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 20) (float_bound_inclusive 1000.0))
    (fun xs ->
      let m = Stats.median xs in
      m >= List.fold_left min infinity xs && m <= List.fold_left max neg_infinity xs)

let prop_mann_whitney_symmetric =
  QCheck.Test.make ~name:"mann-whitney p is symmetric" ~count:100
    QCheck.(
      pair
        (list_of_size Gen.(int_range 3 12) (float_bound_inclusive 100.0))
        (list_of_size Gen.(int_range 3 12) (float_bound_inclusive 100.0)))
    (fun (xs, ys) ->
      let p1 = Stats.mann_whitney_u xs ys and p2 = Stats.mann_whitney_u ys xs in
      abs_float (p1 -. p2) < 1e-9)

let () =
  Alcotest.run "nyx_sim"
    [
      ( "clock",
        [
          Alcotest.test_case "advance" `Quick test_clock_advance;
          Alcotest.test_case "negative" `Quick test_clock_negative;
          Alcotest.test_case "reset" `Quick test_clock_reset;
          Alcotest.test_case "pp_duration" `Quick test_clock_pp;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "split" `Quick test_rng_split_independent;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "int_in" `Quick test_rng_int_in;
          Alcotest.test_case "weighted" `Quick test_rng_weighted;
          Alcotest.test_case "shuffle" `Quick test_rng_shuffle_permutation;
          QCheck_alcotest.to_alcotest prop_rng_int_in_range;
        ] );
      ( "stats",
        [
          Alcotest.test_case "basics" `Quick test_stats_basics;
          Alcotest.test_case "mann-whitney distinct" `Quick test_mann_whitney_distinct;
          Alcotest.test_case "mann-whitney identical" `Quick test_mann_whitney_identical;
          Alcotest.test_case "timeline" `Quick test_timeline;
          Alcotest.test_case "timeline monotonic" `Quick test_timeline_monotonic_time;
          Alcotest.test_case "timeline median" `Quick test_timeline_median_across;
          Alcotest.test_case "counters" `Quick test_counters;
          QCheck_alcotest.to_alcotest prop_median_between_min_max;
          QCheck_alcotest.to_alcotest prop_mann_whitney_symmetric;
        ] );
    ]
