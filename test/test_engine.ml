(* Mutation engines (ISSUE 9): typed splice/generate candidates are
   verifier-clean, the havoc engine replays the bare mutator's draw
   sequence, weight parsing/overrides, the degenerate-spec fallback, and
   the typed engine's determinism contract (NYX_DOMAINS identity,
   kill+resume). *)

open Nyx_core
module Rng = Nyx_sim.Rng
module Program = Nyx_spec.Program
module Mutator = Nyx_spec.Mutator
module ME = Nyx_spec.Mutation_engine
module TM = Nyx_analysis.Typed_mutators

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let echo_entry () = Option.get (Nyx_targets.Registry.find "echo")
let ftp_entry () = Option.get (Nyx_targets.Registry.find "lightftp")

(* domain-safe: test-only lazy fixtures, forced on a single domain *)
let net_spec = lazy (Campaign.net_spec ())
let spec () = (Lazy.force net_spec).Nyx_spec.Net_spec.spec

(* domain-safe: test-only lazy fixture, forced on a single domain *)
let seeds = lazy (Campaign.make_seeds (ftp_entry ()) (Lazy.force net_spec))

(* ------------------------------------------------------------------ *)
(* Typed mutators: every candidate is verifier-clean and valid         *)

let invalid_arg f = match f () with
  | _ -> false
  | exception Invalid_argument _ -> true

(* A pseudo-random but deterministic corpus program: a seed pushed
   through a few rounds of the byte mutator. *)
let scramble rng rounds p =
  let corpus = Array.of_list (Lazy.force seeds) in
  let q = ref p in
  for _ = 1 to rounds do
    q := Mutator.mutate rng ~max_ops:24 ~corpus !q
  done;
  !q

let prefix_preserved ~frozen (p : Program.t) (q : Program.t) =
  let n = min frozen (min (Array.length p.Program.ops) (Array.length q.Program.ops)) in
  Array.sub p.Program.ops 0 n = Array.sub q.Program.ops 0 n

let clean_candidate ~frozen p = function
  | None -> true (* "no candidate from this angle" is always acceptable *)
  | Some q ->
    Nyx_analysis.Verifier.is_clean q
    && Result.is_ok (Program.validate q)
    && prefix_preserved ~frozen p q

(* domain-safe: test-only lazy mutator fixture, forced on a single domain *)
let prop_typed_candidates_clean =
  (* The engine's central promise: generate-verify-execute means only
     verifier-clean programs ever leave splice/generate, whatever the
     input, corpus, frozen prefix or RNG state. *)
  let gen_mut = lazy (TM.generate_mutator (spec ())) in
  QCheck.Test.make ~name:"splice/generate candidates verifier-clean"
    ~count:120
    QCheck.(triple (int_range 0 1_000_000) (int_range 0 6) (int_range 0 4))
    (fun (seed, rounds, frozen) ->
      let base = List.nth (Lazy.force seeds) (seed mod List.length (Lazy.force seeds)) in
      let rng = Rng.create seed in
      let p = scramble rng rounds base in
      let frozen = min frozen (Array.length p.Program.ops) in
      let ctx =
        {
          ME.mx_frozen = frozen;
          mx_max_ops = 24;
          mx_dict = [ Bytes.of_string "USER"; Bytes.of_string "ls" ];
          mx_corpus = Array.of_list (Lazy.force seeds);
        }
      in
      clean_candidate ~frozen p (TM.splice_mutator.ME.m_fn rng ctx p)
      && clean_candidate ~frozen p ((Lazy.force gen_mut).ME.m_fn rng ctx p))

(* ------------------------------------------------------------------ *)
(* The havoc engine replays the bare mutator's draw sequence           *)

let test_havoc_engine_is_bare_mutator () =
  let ctx =
    {
      ME.mx_frozen = 1;
      mx_max_ops = 20;
      mx_dict = [ Bytes.of_string "tok" ];
      mx_corpus = Array.of_list (Lazy.force seeds);
    }
  in
  let p = List.hd (Lazy.force seeds) in
  let engine = ME.havoc () in
  for seed = 1 to 20 do
    let a = ME.mutate engine (Rng.create seed) ctx p in
    let b =
      Mutator.mutate (Rng.create seed) ~frozen:ctx.ME.mx_frozen
        ~max_ops:ctx.ME.mx_max_ops ~dict:ctx.ME.mx_dict
        ~corpus:ctx.ME.mx_corpus p
    in
    check_bool "no selection draw: engine == bare Mutator.mutate" true (a = b)
  done

(* ------------------------------------------------------------------ *)
(* Credit bookkeeping                                                  *)

let test_credit_ewma () =
  let ctx =
    { ME.mx_frozen = 0; mx_max_ops = 24; mx_dict = []; mx_corpus = [||] }
  in
  let p = List.hd (Lazy.force seeds) in
  let engine = ME.havoc () in
  ignore (ME.mutate engine (Rng.create 1) ctx p);
  ME.credit engine ~novel:true;
  (match ME.stats engine with
  | [ s ] ->
    check_string "name" "havoc" s.ME.s_name;
    check_int "attempts" 1 s.ME.s_attempts;
    check_int "accepts" 1 s.ME.s_accepts;
    (* EWMA from 0 with alpha 0.05: 0.95*0 + 0.05*1 *)
    check_bool "credit folded" true (Float.abs (s.ME.s_credit -. 0.05) < 1e-9)
  | l -> Alcotest.failf "expected one mutator, got %d" (List.length l));
  ME.credit engine ~novel:false;
  (match ME.stats engine with
  | [ s ] ->
    check_int "accepts unchanged on stale" 1 s.ME.s_accepts;
    check_bool "credit decays" true (s.ME.s_credit < 0.05)
  | _ -> Alcotest.fail "mutator vanished")

let test_state_roundtrip_and_mismatch () =
  let engine = Engines.create Engines.Typed (spec ()) in
  let st = ME.state engine in
  ME.restore_state engine st;
  check_bool "restore of own state is a no-op" true (ME.state engine = st);
  let foreign = ME.havoc () in
  check_bool "foreign state rejected" true
    (invalid_arg (fun () -> ME.restore_state foreign st))

let test_create_rejects_bad_weights () =
  check_bool "empty mutator list" true
    (invalid_arg (fun () -> ME.create ~name:"x" []));
  check_bool "unknown weight name" true
    (invalid_arg (fun () ->
         ME.create ~name:"x" ~weights:[ ("nope", 1.0) ] [ ME.havoc_mutator ]));
  check_bool "non-positive weight" true
    (invalid_arg (fun () ->
         ME.create ~name:"x" ~weights:[ ("havoc", 0.0) ] [ ME.havoc_mutator ]));
  check_bool "duplicate weight name" true
    (invalid_arg (fun () ->
         ME.create ~name:"x"
           ~weights:[ ("havoc", 1.0); ("havoc", 2.0) ]
           [ ME.havoc_mutator ]))

(* ------------------------------------------------------------------ *)
(* Engine registry: names and weight parsing                           *)

let test_engine_names () =
  check_bool "havoc" true (Engines.of_name "havoc" = Ok Engines.Havoc);
  check_bool "typed" true (Engines.of_name "typed" = Ok Engines.Typed);
  check_bool "unknown engine" true
    (Result.is_error (Engines.of_name "radamsa"));
  List.iter
    (fun k -> check_bool "name roundtrip" true (Engines.of_name (Engines.name k) = Ok k))
    Engines.all

let test_parse_weights () =
  (match Engines.parse_weights "splice:2.5,generate:0.5" with
  | Ok ws ->
    check_bool "parsed" true
      (ws = [ ("splice", 2.5); ("generate", 0.5) ]);
    check_string "canonical inverse" "splice:2.5,generate:0.5"
      (Engines.weights_to_string ws)
  | Error m -> Alcotest.failf "parse failed: %s" m);
  check_bool "bad format" true (Result.is_error (Engines.parse_weights "splice"));
  check_bool "non-numeric" true
    (Result.is_error (Engines.parse_weights "splice:lots"));
  check_bool "non-positive" true
    (Result.is_error (Engines.parse_weights "splice:0"));
  check_bool "unknown weight name at create" true
    (invalid_arg (fun () ->
         Engines.create ~weights:[ ("nope", 1.0) ] Engines.Typed (spec ())))

(* ------------------------------------------------------------------ *)
(* Degenerate specs: the generator stands down, havoc carries           *)

let mono_spec () =
  (* One constructible non-snapshot opcode — Spec_lint flags this
     dynamic-degenerate, and the generator must not arm. *)
  let b = Nyx_spec.Spec.start "mono" in
  let d = Nyx_spec.Spec.data_type b ~max_len:8 "payload" in
  let _send = Nyx_spec.Spec.node_type b ~data:[ d ] "send" in
  Nyx_spec.Spec.finalize b

let test_degenerate_spec_falls_back () =
  let s = mono_spec () in
  check_bool "shipped net spec is generative" true (TM.generative (spec ()));
  check_bool "mono spec is not" false (TM.generative s);
  check_bool "generate_mutator refuses" true
    (invalid_arg (fun () -> TM.generate_mutator s));
  check_int "typed list drops generate" 2 (List.length (TM.mutators s));
  let engine = Engines.create Engines.Typed s in
  check_bool "engine mutators" true
    (ME.mutator_names engine = [ "havoc"; "splice" ]);
  (* The degraded engine still mutates: havoc is total at index 0. *)
  let p = List.hd (Lazy.force seeds) in
  let ctx =
    { ME.mx_frozen = 0; mx_max_ops = 24; mx_dict = []; mx_corpus = [||] }
  in
  let q = ME.mutate engine (Rng.create 3) ctx p in
  check_bool "candidate valid" true (Result.is_ok (Program.validate q))

(* ------------------------------------------------------------------ *)
(* Typed engine end-to-end determinism: NYX_DOMAINS identity            *)

let typed_cfg ?(seed = 5) ?(budget_ns = 1_200_000_000) ?(max_execs = 3_000) () =
  {
    Campaign.default_config with
    Campaign.budget_ns;
    max_execs;
    policy = Policy.Balanced;
    seed;
    engine = Engines.Typed;
  }

(* The deterministic projection of a fleet outcome (mirrors
   test_fleet_sync): everything except wall clock and the
   worker-count-dependent fields. *)
let core (o : Fleet.outcome) =
  ( ( o.Fleet.instances,
      o.Fleet.first_solve_ns,
      o.Fleet.solves,
      o.Fleet.total_execs,
      o.Fleet.quarantined ),
    (o.Fleet.union_edges, o.Fleet.sync_epochs, o.Fleet.work_ns) )

let same_outcome a b =
  core a = core b
  && List.length a.Fleet.results = List.length b.Fleet.results
  && List.for_all2 Report.same_deterministic a.Fleet.results b.Fleet.results

let test_typed_fleet_domains_deterministic () =
  let entry = echo_entry () in
  let config = typed_cfg () in
  let seq =
    Fleet.run ~instances:3 ~domains:1 ~sync_ns:200_000_000 ~config entry
  in
  let par =
    Fleet.run ~instances:3 ~domains:4 ~sync_ns:200_000_000 ~config entry
  in
  check_bool "typed engine: 4 domains == 1 domain" true (same_outcome seq par);
  List.iter
    (fun r ->
      match r.Report.mutation with
      | Some m -> check_string "typed engine reported" "typed" m.Report.engine
      | None -> Alcotest.fail "campaign result carries no mutation stats")
    seq.Fleet.results

(* ------------------------------------------------------------------ *)
(* Typed engine kill+resume == uninterrupted                           *)

exception Killed

let ck_config =
  {
    Campaign.default_config with
    Campaign.budget_ns = 1_500_000_000;
    max_execs = 2_000;
    policy = Policy.Aggressive;
    seed = 7;
    engine = Engines.Typed;
  }

let run_with_kill ~kill_at path =
  let ck =
    Campaign.checkpointing ~path ~interval_ns:100_000_000
      ~on_write:(fun ordinal -> if ordinal = kill_at then raise Killed)
      ()
  in
  match Campaign.run ~checkpoint:ck ck_config (echo_entry ()) with
  | r -> Some r
  | exception Killed -> None

(* domain-safe: test-only lazy baseline, forced on a single domain *)
let prop_typed_kill_resume =
  (* Kill at any checkpoint + resume must replay the typed engine's
     selection stream and EWMA credits bit-for-bit (the engine state
     rides in the NYXCKP1 c_mut_* fields). *)
  let base = lazy (Campaign.run ck_config (echo_entry ())) in
  QCheck.Test.make
    ~name:"typed engine: kill at any checkpoint + resume == straight run"
    ~count:6
    QCheck.(int_range 1 8)
    (fun kill_at ->
      let expected = Lazy.force base in
      let path = Filename.temp_file "nyx_ckpt_engine" ".bin" in
      Fun.protect
        ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
        (fun () ->
          match run_with_kill ~kill_at path with
          | Some finished -> Report.same_deterministic finished expected
          | None ->
            let ckpt =
              match Checkpoint.load path with
              | Ok c -> c
              | Error m -> Alcotest.failf "checkpoint load: %s" m
            in
            let resumed = Campaign.resume ckpt (echo_entry ()) in
            Report.same_deterministic resumed expected
            && resumed.Report.mutation <> None))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "nyx_engine"
    [
      ( "typed-mutators",
        [
          QCheck_alcotest.to_alcotest prop_typed_candidates_clean;
          Alcotest.test_case "degenerate spec falls back to havoc" `Quick
            test_degenerate_spec_falls_back;
        ] );
      ( "engine",
        [
          Alcotest.test_case "havoc engine == bare mutator" `Quick
            test_havoc_engine_is_bare_mutator;
          Alcotest.test_case "credit EWMA bookkeeping" `Quick test_credit_ewma;
          Alcotest.test_case "state roundtrip + mismatch" `Quick
            test_state_roundtrip_and_mismatch;
          Alcotest.test_case "create rejects bad weights" `Quick
            test_create_rejects_bad_weights;
        ] );
      ( "registry",
        [
          Alcotest.test_case "engine names" `Quick test_engine_names;
          Alcotest.test_case "weight parsing" `Quick test_parse_weights;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "typed fleet: domains identity" `Quick
            test_typed_fleet_domains_deterministic;
          QCheck_alcotest.to_alcotest prop_typed_kill_resume;
        ] );
    ]
