(* Minimizer coverage: a synthetic crash oracle (crash iff some payload
   contains the "BOOM" token) exercises the shrinker without an
   executor, so qcheck can afford hundreds of minimizations. The
   invariants under test: the minimized program still satisfies the
   predicate, is verifier-clean (drop_ops must repair references, not
   leave dangling args), and is never larger than the input. *)

open Nyx_core

(* domain-safe: test-only lazy fixture, forced on a single domain *)
let ns = lazy (Campaign.net_spec ())

let program_of packets =
  Nyx_spec.Net_spec.seed_of_packets (Lazy.force ns)
    (List.map Bytes.of_string packets)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec scan i =
    i + nl <= hl && (String.sub hay i nl = needle || scan (i + 1))
  in
  scan 0

(* The synthetic target: crashes iff any data field carries "BOOM". *)
let boom_run (p : Nyx_spec.Program.t) =
  let hit =
    Array.exists
      (fun (op : Nyx_spec.Program.op) ->
        Array.exists
          (fun d -> contains ~needle:"BOOM" (Bytes.to_string d))
          op.Nyx_spec.Program.data)
      p.Nyx_spec.Program.ops
  in
  {
    Report.status =
      (if hit then Report.Crash { kind = "boom"; detail = "token" } else Report.Pass);
    exec_ns = 1;
    state_code = 0;
  }

let keep = Minimizer.keep_crash_kind "boom"

let test_golden_fixed_seed () =
  (* Deterministic input, deterministic shrink: the witness collapses to
     a single packet carrying exactly the four BOOM bytes. *)
  let noisy =
    program_of
      [ "USER anon\r\n"; "MODE raw\r\n"; "xxBOOMyy"; "QUIT\r\n"; "trailing noise\r\n" ]
  in
  let minimized, execs = Minimizer.minimize ~run:boom_run ~keep noisy in
  Alcotest.(check bool) "verification executions spent" true (execs > 1);
  Alcotest.(check bool) "still a witness" true (keep (boom_run minimized));
  Alcotest.(check bool) "verifier-clean" true
    (Nyx_analysis.Verifier.is_clean minimized);
  Alcotest.(check bool) "smaller" true
    (Minimizer.serialized_size minimized < Minimizer.serialized_size noisy);
  let payload =
    Array.to_list minimized.Nyx_spec.Program.ops
    |> List.concat_map (fun (op : Nyx_spec.Program.op) ->
           Array.to_list op.Nyx_spec.Program.data)
    |> List.map Bytes.to_string |> String.concat ""
  in
  Alcotest.(check string) "payload shrunk to the token" "BOOM" payload

(* domain-safe: qcheck property closure, run on a single domain *)
let prop_minimized_witness_is_clean =
  QCheck.Test.make ~name:"minimized witness still crashes and is verifier-clean"
    ~count:100 QCheck.small_int (fun seed ->
      let rng = Nyx_sim.Rng.create (seed + 1) in
      let rand_packet () =
        let len = Nyx_sim.Rng.int rng 12 in
        String.init len (fun _ -> Char.chr (97 + Nyx_sim.Rng.int rng 26))
      in
      let n = 1 + Nyx_sim.Rng.int rng 6 in
      let packets = List.init n (fun _ -> rand_packet ()) in
      let slot = Nyx_sim.Rng.int rng n in
      let packets =
        List.mapi
          (fun i p -> if i = slot then p ^ "BOOM" ^ rand_packet () else p)
          packets
      in
      let p = program_of packets in
      let minimized, _ = Minimizer.minimize ~run:boom_run ~keep p in
      keep (boom_run minimized)
      && Nyx_analysis.Verifier.is_clean minimized
      && Minimizer.serialized_size minimized <= Minimizer.serialized_size p)

let test_rejects_non_witness () =
  let benign = program_of [ "hello\r\n" ] in
  Alcotest.check_raises "not a witness"
    (Invalid_argument "Minimizer.minimize: program does not satisfy the predicate")
    (fun () -> ignore (Minimizer.minimize ~run:boom_run ~keep benign))

let () =
  Alcotest.run "nyx_minimizer"
    [
      ( "minimizer",
        [
          Alcotest.test_case "fixed-seed golden" `Quick test_golden_fixed_seed;
          Alcotest.test_case "rejects non-witness" `Quick test_rejects_non_witness;
          QCheck_alcotest.to_alcotest prop_minimized_witness_is_clean;
        ] );
    ]
